* one bit of a 64-bit bus: long route, two receiver branches
.title bus_bit
.input drv
Rd drv b0 620
Cd b0 0 9f
Rw1 b0 b1 210
Cw1 b1 0 31f
Rw2 b1 b2 210
Cw2 b2 0 31f
Rw3 b2 b3 210
Cw3 b3 0 31f
Rw4 b3 b4 210
Cw4 b4 0 31f
Rw5 b4 b5 210
Cw5 b5 0 31f
Rw6 b5 b6 210
Cw6 b6 0 31f
Rw7 b6 b7 210
Cw7 b7 0 31f
Rw8 b7 b8 210
Cw8 b8 0 31f
Rw9 b8 b9 210
Cw9 b9 0 31f
Rw10 b9 b10 210
Cw10 b10 0 31f
Rw11 b10 b11 210
Cw11 b11 0 31f
Rw12 b11 b12 210
Cw12 b12 0 31f
Rbr1 b6 rx1 330
Cbr1 rx1 0 24f
Rbr2 b12 rx2 280
Cbr2 rx2 0 26f
.probe rx1
.probe rx2
.end
