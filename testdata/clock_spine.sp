* clock spine: 3-level spine with per-tap stubs
.title clock_spine
.input clkroot
Rsp1 clkroot sp1 85
Csp1 sp1 0 42f
Rsp2 sp1 sp2 85
Csp2 sp2 0 42f
Rta2 sp2 tap2a 140
Cta2 tap2a 0 18f
Rtb2 tap2a tap2b 160
Ctb2 tap2b 0 55f
.probe tap2b
Rsp3 sp2 sp3 85
Csp3 sp3 0 42f
Rsp4 sp3 sp4 85
Csp4 sp4 0 42f
Rta4 sp4 tap4a 140
Cta4 tap4a 0 18f
Rtb4 tap4a tap4b 160
Ctb4 tap4b 0 55f
.probe tap4b
Rsp5 sp4 sp5 85
Csp5 sp5 0 42f
Rsp6 sp5 sp6 85
Csp6 sp6 0 42f
Rta6 sp6 tap6a 140
Cta6 tap6a 0 18f
Rtb6 tap6a tap6b 160
Ctb6 tap6b 0 55f
.probe tap6b
Rsp7 sp6 sp7 85
Csp7 sp7 0 42f
Rsp8 sp7 sp8 85
Csp8 sp8 0 42f
Rta8 sp8 tap8a 140
Cta8 tap8a 0 18f
Rtb8 tap8a tap8b 160
Ctb8 tap8b 0 55f
.probe tap8b
Rsp9 sp8 sp9 85
Csp9 sp9 0 42f
Rsp10 sp9 sp10 85
Csp10 sp10 0 42f
Rta10 sp10 tap10a 140
Cta10 tap10a 0 18f
Rtb10 tap10a tap10b 160
Ctb10 tap10b 0 55f
.probe tap10b
.probe sp10
.end
