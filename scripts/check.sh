#!/usr/bin/env bash
# Sanitizer + lint gate for the concurrent engine (and everything else).
#
#   0. Source lint: the hot analysis layers must not call the per-walk
#      RCTree accessors (use analysis::TreeContext arrays instead).
#   0b. Robustness lint: src/{rctree,core,engine} must throw typed
#      robust::Error (or std::invalid_argument for caller bugs), never bare
#      std::runtime_error — the engine's failure records depend on codes.
#   1. ThreadSanitizer build; runs the engine tests (thread pool, net cache,
#      batch analyzer), the shared-TreeContext tests, the obs registry/tracer
#      tests, the robustness tests (deadline/retry/fault injection), the
#      timing-server tests (concurrent clients, disk store) and the CLI
#      batch/serve end-to-end tests under TSan.
#   2. Trace validation: the TSan-built CLI emits a Chrome trace + metrics
#      snapshot, checked against a small JSON schema (python3); the
#      Prometheus exposition is validated structurally twice — once from a
#      --metrics-out file and once scraped over GET /metrics from a live
#      TSan-built daemon (scripts/validate_prom.py).
#   2b. Chaos gate: a live TSan-built daemon with socket faults armed via
#      RCT_FAULT (mid-request disconnect, torn write); the retry client
#      must land every command and a disrupted report must match an
#      undisturbed rerun byte-for-byte.
#   3. AddressSanitizer+UBSan build; runs the full ctest suite, then drives
#      the ASan CLI over every deck in testdata/malformed (strict + lenient):
#      each must exit 1 with a diagnostic — never crash, never succeed;
#      finally re-runs the store-GC crash-recovery and socket-chaos suites
#      by name so a renamed/deleted suite cannot pass silently.
#   4. Perf gate (full runs only): rebuilds the benches in Release, re-runs
#      perf_batch / perf_report / perf_serve / perf_parse on the baseline
#      workloads and diffs against the committed BENCH_*.json with
#      scripts/perf_compare.py; a >PERF_THRESHOLD (default 10%) real_time
#      growth fails the gate.
#
# Usage: scripts/check.sh [--tsan-only|--asan-only|--perf-only]
# Build trees land in build-tsan/, build-asan/ and build-perf/ (gitignored).

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
MODE="${1:-all}"

# --- lint: no per-call tree walks in the derived-array consumers ------------
# RCTree::depth / RCTree::path_resistance / RCTree::subtree_capacitance cost
# O(depth) or O(subtree) per call; code in these layers must read the
# TreeContext arrays instead.  Add a file here (regex, one per line) only
# with a comment justifying the exemption.
LINT_DIRS=(src/core src/moments src/sim src/sta src/engine)
LINT_ALLOWLIST_RE='^$'  # no exemptions today
echo "== lint: per-call RCTree accessors in ${LINT_DIRS[*]} =="
LINT_HITS=$(grep -rnE '\.(depth|path_resistance|subtree_capacitance)\(' "${LINT_DIRS[@]}" \
  | grep -vE "$LINT_ALLOWLIST_RE" || true)
if [[ -n "$LINT_HITS" ]]; then
  echo "$LINT_HITS"
  echo "lint: per-call RCTree accessor in a derived-array layer; use"
  echo "      analysis::TreeContext (or extend LINT_ALLOWLIST_RE with a reason)"
  exit 1
fi

# --- lint: raw stderr writes in the engine and the server -------------------
# The engine and the serve daemon report through obs::log (structured,
# rate-limited, routable); a raw fprintf(stderr, ...) bypasses --log-out,
# breaks JSON-lines consumers and dodges the rate limiter.  The daemon case
# is worse: its stderr may be detached entirely.
echo "== lint: raw fprintf(stderr, ...) in src/engine src/server =="
STDERR_HITS=$(grep -rn 'fprintf(stderr' src/engine src/server || true)
if [[ -n "$STDERR_HITS" ]]; then
  echo "$STDERR_HITS"
  echo "lint: use obs::log::{debug,info,warn,error} instead of fprintf(stderr, ...)"
  exit 1
fi

# --- lint: untyped runtime_error throws in the robustness-covered layers ----
# Parsers, core analysis and the engine report failures as robust::Error so
# per-net records carry a code and category.  Lower layers (sim, linalg)
# are exempt: their exceptions get classified at the engine boundary.
ROBUST_DIRS=(src/rctree src/core src/engine)
echo "== lint: bare 'throw std::runtime_error' in ${ROBUST_DIRS[*]} =="
ROBUST_HITS=$(grep -rn 'throw std::runtime_error' "${ROBUST_DIRS[@]}" || true)
if [[ -n "$ROBUST_HITS" ]]; then
  echo "$ROBUST_HITS"
  echo "lint: use robust::Error with a typed Code instead of std::runtime_error"
  exit 1
fi

configure_and_build() {
  local dir="$1" sanitize="$2"
  shift 2
  cmake -B "$dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRCT_SANITIZE="$sanitize" \
    -DRCT_BUILD_BENCH=OFF -DRCT_BUILD_EXAMPLES=OFF
  cmake --build "$dir" -j"$JOBS" "$@"
}

if [[ "$MODE" == "all" || "$MODE" == "--tsan-only" ]]; then
  echo "== ThreadSanitizer: engine + analysis + obs + server tests =="
  configure_and_build build-tsan thread --target test_engine --target test_analysis \
    --target test_obs --target test_report_equivalence --target test_robust \
    --target test_server --target test_cli --target test_spef_parallel --target rct_cli
  (cd build-tsan &&
    TSAN_OPTIONS="halt_on_error=1" ./tests/test_engine &&
    TSAN_OPTIONS="halt_on_error=1" ./tests/test_spef_parallel &&
    TSAN_OPTIONS="halt_on_error=1" ./tests/test_analysis &&
    TSAN_OPTIONS="halt_on_error=1" ./tests/test_obs &&
    TSAN_OPTIONS="halt_on_error=1" ./tests/test_report_equivalence &&
    TSAN_OPTIONS="halt_on_error=1" ./tests/test_robust &&
    TSAN_OPTIONS="halt_on_error=1" ./tests/test_server &&
    TSAN_OPTIONS="halt_on_error=1" ./tests/test_cli \
      --gtest_filter='Cli.Batch*:Cli.SpefMetricsOut:Cli.Fault*:Cli.Serve*:Cli.Client*')

  echo "== trace/metrics schema validation (TSan-built CLI) =="
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/rct batch testdata/two_nets.spef \
    --jobs 4 --trace-out build-tsan/trace.json --metrics-out build-tsan/metrics.json \
    > /dev/null 2> /dev/null
  python3 - build-tsan/trace.json build-tsan/metrics.json <<'PY'
import json, sys
trace = json.load(open(sys.argv[1]))
assert trace["displayTimeUnit"] == "ms", "displayTimeUnit"
events = trace["traceEvents"]
assert isinstance(events, list) and events, "traceEvents empty"
cats = set()
for e in events:
    assert {"name", "ph", "pid", "tid"} <= e.keys(), f"missing keys: {e}"
    if e["ph"] == "M":
        continue
    assert e["ph"] == "X", f"unexpected phase {e['ph']}"
    assert isinstance(e["ts"], (int, float)) and isinstance(e["dur"], (int, float))
    assert e["dur"] >= 0, "negative duration"
    cats.add(e["cat"])
assert {"cli", "engine", "pool", "analysis", "core"} <= cats, f"layers missing: {cats}"

metrics = json.load(open(sys.argv[2]))
assert metrics["schema_version"] == 1, "schema_version"
for section in ("counters", "gauges", "histograms"):
    assert isinstance(metrics[section], dict), section
for name in ("engine.cache.hits", "engine.context.built", "pool.tasks.run"):
    assert name in metrics["counters"], f"counter missing: {name}"
for name in ("engine.net.analyze_seconds", "analysis.context.build_seconds"):
    hist = metrics["histograms"][name]
    assert hist["buckets"][-1]["le"] == "inf", f"{name}: no overflow bucket"
    assert sum(b["count"] for b in hist["buckets"]) == hist["count"], f"{name}: counts"
print(f"trace OK ({len(events)} events, layers: {sorted(cats)}); metrics OK "
      f"({len(metrics['counters'])} counters, {len(metrics['histograms'])} histograms)")
PY

  echo "== Prometheus exposition validation (TSan-built CLI) =="
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/rct batch testdata/two_nets.spef \
    --jobs 4 --metrics-format prom --metrics-out build-tsan/metrics.prom \
    > /dev/null 2> /dev/null
  python3 scripts/validate_prom.py build-tsan/metrics.prom

  echo "== live GET /metrics from a TSan-built daemon =="
  # The same structural validator, but against the HTTP telemetry listener
  # of a running (TSan-built) daemon instead of a --metrics-out file: start
  # the daemon with an ephemeral telemetry port, feed it one load+report,
  # scrape /metrics with python's stdlib (no curl in the image) and pipe
  # the body through validate_prom.py.
  SERVE_SOCK=build-tsan/check-serve.sock
  SERVE_OUT=build-tsan/check-serve.out
  rm -f "$SERVE_SOCK"
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/rct serve \
    --listen "$SERVE_SOCK" --http 0 > "$SERVE_OUT" 2>&1 &
  SERVE_PID=$!
  trap 'kill "$SERVE_PID" 2> /dev/null || true' EXIT
  for _ in $(seq 1 250); do
    if TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/rct client "$SERVE_SOCK" ping \
        > /dev/null 2>&1; then break; fi
    sleep 0.02
  done
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/rct client "$SERVE_SOCK" \
    load testdata/two_nets.spef > /dev/null
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/rct client "$SERVE_SOCK" \
    report net_a > /dev/null
  HTTP_PORT=$(sed -n 's#^telemetry on http://127\.0\.0\.1:##p' "$SERVE_OUT")
  [[ -n "$HTTP_PORT" ]] || { echo "FAIL: no telemetry announce line"; cat "$SERVE_OUT"; exit 1; }
  python3 - "$HTTP_PORT" <<'PY' | python3 scripts/validate_prom.py -
import sys, urllib.request
with urllib.request.urlopen(f"http://127.0.0.1:{sys.argv[1]}/metrics", timeout=10) as r:
    assert r.status == 200, f"GET /metrics: {r.status}"
    ct = r.headers.get("Content-Type", "")
    assert "version=0.0.4" in ct, f"Content-Type {ct!r}"
    sys.stdout.write(r.read().decode())
PY
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/rct client "$SERVE_SOCK" shutdown \
    > /dev/null
  wait "$SERVE_PID" 2> /dev/null || true
  trap - EXIT

  echo "== chaos: fault-injected daemon vs retry client (TSan) =="
  # A live daemon with socket-layer faults armed through RCT_FAULT: the
  # first response send hits a mid-request disconnect, a later one a torn
  # write.  The client's --retries reconnect+backoff must land every
  # command anyway, and a disrupted-then-retried report must be
  # byte-identical to an undisturbed rerun.
  CHAOS_SOCK=build-tsan/check-chaos.sock
  CHAOS_OUT=build-tsan/check-chaos.out
  rm -f "$CHAOS_SOCK"
  RCT_FAULT='server.conn.disconnect=throwx1; server.conn.write=throwx1' \
    TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/rct serve \
    --listen "$CHAOS_SOCK" > "$CHAOS_OUT" 2>&1 &
  CHAOS_PID=$!
  trap 'kill "$CHAOS_PID" 2> /dev/null || true' EXIT
  for _ in $(seq 1 250); do
    if TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/rct client "$CHAOS_SOCK" ping \
        --retries 5 > /dev/null 2>&1; then break; fi
    sleep 0.02
  done
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/rct client "$CHAOS_SOCK" \
    load testdata/two_nets.spef --retries 5 > /dev/null
  CHAOS_A=$(TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/rct client "$CHAOS_SOCK" \
    report net_a --retries 5)
  echo "$CHAOS_A" | grep -q '"ok":true' \
    || { echo "FAIL: chaos report did not succeed: $CHAOS_A"; exit 1; }
  # Both faults are consumed by now; two quiet reruns must agree with each
  # other AND with the row payload of the disrupted run.
  CHAOS_B=$(TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/rct client "$CHAOS_SOCK" \
    report net_a --retries 5)
  CHAOS_C=$(TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/rct client "$CHAOS_SOCK" \
    report net_a --retries 5)
  [[ "$CHAOS_B" == "$CHAOS_C" ]] \
    || { echo "FAIL: chaos reruns differ"; echo "$CHAOS_B"; echo "$CHAOS_C"; exit 1; }
  [[ "${CHAOS_A#*\"rows\"}" == "${CHAOS_B#*\"rows\"}" ]] \
    || { echo "FAIL: disrupted run's rows differ from the clean rerun"; exit 1; }
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/rct client "$CHAOS_SOCK" shutdown \
    --retries 5 > /dev/null
  wait "$CHAOS_PID" 2> /dev/null || true
  trap - EXIT
  echo "chaos daemon: all commands landed through injected socket faults"
fi

if [[ "$MODE" == "all" || "$MODE" == "--asan-only" ]]; then
  echo "== AddressSanitizer+UBSan: full suite =="
  configure_and_build build-asan address,undefined
  (cd build-asan &&
    ASAN_OPTIONS="detect_leaks=0" UBSAN_OPTIONS="halt_on_error=1" \
      ctest --output-on-failure -j"$JOBS")

  echo "== malformed corpus through the ASan CLI (strict + lenient) =="
  for deck in testdata/malformed/*.spef; do
    for args in "batch $deck" "batch $deck --lenient --jobs 4" \
                "batch $deck --lenient --parse-jobs 2" "validate $deck" \
                "validate $deck --parse-jobs 4"; do
      set +e
      ASAN_OPTIONS="detect_leaks=0" UBSAN_OPTIONS="halt_on_error=1" \
        ./build-asan/tools/rct $args > /dev/null 2> /dev/null
      status=$?
      set -e
      # Structured failure (1) or lenient success (0); anything else —
      # usage error, sanitizer abort, signal — fails the gate.
      if [[ "$status" -ne 0 && "$status" -ne 1 ]]; then
        echo "FAIL: rct $args exited $status (expected 0 or 1)"
        exit 1
      fi
    done
  done
  echo "malformed corpus: every deck handled without a crash"

  echo "== store GC crash-recovery + socket chaos under ASan =="
  # The DiskStoreGc suite injects a crash between the eviction journal
  # write and the first unlink, then recovers on reopen; the Chaos suite
  # drives torn writes / short reads / oversized lines over real sockets.
  # Already part of the full ctest run above, but gated by name so a
  # filter-level regression (renamed/deleted suite) cannot pass silently.
  (cd build-asan &&
    ASAN_OPTIONS="detect_leaks=0" UBSAN_OPTIONS="halt_on_error=1" \
      ./tests/test_server --gtest_filter='DiskStoreGc.*:Chaos.*' --gtest_fail_fast)
fi

if [[ "$MODE" == "all" || "$MODE" == "--perf-only" ]]; then
  PERF_THRESHOLD="${PERF_THRESHOLD:-0.10}"
  echo "== perf gate: committed BENCH_*.json baselines (threshold ${PERF_THRESHOLD}) =="
  cmake -B build-perf -S . \
    -DCMAKE_BUILD_TYPE=Release -DRCT_SANITIZE="" -DRCT_BUILD_BENCH=ON > /dev/null
  cmake --build build-perf -j"$JOBS" \
    --target perf_batch --target perf_report --target perf_serve --target perf_parse
  # Workloads must match the ones the committed baselines were generated
  # with — see each BENCH_*.json "context" block.  BENCH_obs.json is a
  # metrics snapshot, not a perf_compare-compatible benchmark file, so it
  # is deliberately not gated here.
  ./build-perf/bench/perf_batch 200 40 2 \
    --benchmark_out=build-perf/BENCH_batch.json > /dev/null
  ./build-perf/bench/perf_report \
    --benchmark_out=build-perf/BENCH_report.json > /dev/null
  ./build-perf/bench/perf_serve \
    --benchmark_out=build-perf/BENCH_serve.json > /dev/null
  ./build-perf/bench/perf_parse 20000 16 4 \
    --benchmark_out=build-perf/BENCH_parse.json > /dev/null
  for bench in batch report serve parse; do
    echo "-- perf_compare: BENCH_${bench}.json --"
    python3 scripts/perf_compare.py "BENCH_${bench}.json" \
      "build-perf/BENCH_${bench}.json" --threshold "$PERF_THRESHOLD"
  done
fi

echo "check.sh: all sanitizer passes green"
