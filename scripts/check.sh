#!/usr/bin/env bash
# Sanitizer + lint gate for the concurrent engine (and everything else).
#
#   0. Source lint: the hot analysis layers must not call the per-walk
#      RCTree accessors (use analysis::TreeContext arrays instead).
#   1. ThreadSanitizer build; runs the engine tests (thread pool, net cache,
#      batch analyzer), the shared-TreeContext tests and the CLI batch
#      end-to-end tests under TSan.
#   2. AddressSanitizer+UBSan build; runs the full ctest suite.
#
# Usage: scripts/check.sh [--tsan-only|--asan-only]
# Build trees land in build-tsan/ and build-asan/ (gitignored).

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
MODE="${1:-all}"

# --- lint: no per-call tree walks in the derived-array consumers ------------
# RCTree::depth / RCTree::path_resistance / RCTree::subtree_capacitance cost
# O(depth) or O(subtree) per call; code in these layers must read the
# TreeContext arrays instead.  Add a file here (regex, one per line) only
# with a comment justifying the exemption.
LINT_DIRS=(src/core src/moments src/sim src/sta src/engine)
LINT_ALLOWLIST_RE='^$'  # no exemptions today
echo "== lint: per-call RCTree accessors in ${LINT_DIRS[*]} =="
LINT_HITS=$(grep -rnE '\.(depth|path_resistance|subtree_capacitance)\(' "${LINT_DIRS[@]}" \
  | grep -vE "$LINT_ALLOWLIST_RE" || true)
if [[ -n "$LINT_HITS" ]]; then
  echo "$LINT_HITS"
  echo "lint: per-call RCTree accessor in a derived-array layer; use"
  echo "      analysis::TreeContext (or extend LINT_ALLOWLIST_RE with a reason)"
  exit 1
fi

configure_and_build() {
  local dir="$1" sanitize="$2"
  shift 2
  cmake -B "$dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRCT_SANITIZE="$sanitize" \
    -DRCT_BUILD_BENCH=OFF -DRCT_BUILD_EXAMPLES=OFF
  cmake --build "$dir" -j"$JOBS" "$@"
}

if [[ "$MODE" != "--asan-only" ]]; then
  echo "== ThreadSanitizer: engine + analysis tests =="
  configure_and_build build-tsan thread --target test_engine --target test_analysis \
    --target test_report_equivalence --target test_cli --target rct_cli
  (cd build-tsan &&
    TSAN_OPTIONS="halt_on_error=1" ./tests/test_engine &&
    TSAN_OPTIONS="halt_on_error=1" ./tests/test_analysis &&
    TSAN_OPTIONS="halt_on_error=1" ./tests/test_report_equivalence &&
    TSAN_OPTIONS="halt_on_error=1" ./tests/test_cli --gtest_filter='Cli.Batch*')
fi

if [[ "$MODE" != "--tsan-only" ]]; then
  echo "== AddressSanitizer+UBSan: full suite =="
  configure_and_build build-asan address,undefined
  (cd build-asan &&
    ASAN_OPTIONS="detect_leaks=0" UBSAN_OPTIONS="halt_on_error=1" \
      ctest --output-on-failure -j"$JOBS")
fi

echo "check.sh: all sanitizer passes green"
