#!/usr/bin/env bash
# Sanitizer gate for the concurrent engine (and everything else).
#
#   1. ThreadSanitizer build; runs the engine tests (thread pool, net cache,
#      batch analyzer) and the CLI batch end-to-end tests under TSan.
#   2. AddressSanitizer+UBSan build; runs the full ctest suite.
#
# Usage: scripts/check.sh [--tsan-only|--asan-only]
# Build trees land in build-tsan/ and build-asan/ (gitignored).

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
MODE="${1:-all}"

configure_and_build() {
  local dir="$1" sanitize="$2"
  shift 2
  cmake -B "$dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRCT_SANITIZE="$sanitize" \
    -DRCT_BUILD_BENCH=OFF -DRCT_BUILD_EXAMPLES=OFF
  cmake --build "$dir" -j"$JOBS" "$@"
}

if [[ "$MODE" != "--asan-only" ]]; then
  echo "== ThreadSanitizer: engine tests =="
  configure_and_build build-tsan thread --target test_engine --target test_cli --target rct_cli
  (cd build-tsan &&
    TSAN_OPTIONS="halt_on_error=1" ./tests/test_engine &&
    TSAN_OPTIONS="halt_on_error=1" ./tests/test_cli --gtest_filter='Cli.Batch*')
fi

if [[ "$MODE" != "--tsan-only" ]]; then
  echo "== AddressSanitizer+UBSan: full suite =="
  configure_and_build build-asan address,undefined
  (cd build-asan &&
    ASAN_OPTIONS="detect_leaks=0" UBSAN_OPTIONS="halt_on_error=1" \
      ctest --output-on-failure -j"$JOBS")
fi

echo "check.sh: all sanitizer passes green"
