#!/usr/bin/env bash
# One-shot reproduction: build, run the full test suite, regenerate every
# table/figure/ablation, and leave the transcripts next to the sources.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "==== $(basename "$b") ====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done

echo
echo "done: see test_output.txt and bench_output.txt"
