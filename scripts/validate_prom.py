#!/usr/bin/env python3
"""Structural validator for Prometheus text exposition format 0.0.4.

Usage: validate_prom.py [FILE]    (reads stdin when FILE is absent or "-")

Checks the invariants a scraper relies on: every TYPE has a HELP, metric
names are sanitized rct_* identifiers, histogram _bucket series are
cumulative and monotone with a trailing +Inf bucket that equals _count.
Exits nonzero with a diagnostic on the first violation.  Used by check.sh
both on --metrics-out files and on live GET /metrics scrapes.
"""
import re
import sys


def validate(text, source="<stdin>"):
    helps, types, samples = set(), {}, {}
    for ln in text.splitlines():
        if not ln:
            continue
        if ln.startswith("# HELP "):
            helps.add(ln.split()[2])
        elif ln.startswith("# TYPE "):
            _, _, name, kind = ln.split()
            types[name] = kind
        else:
            m = re.match(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$', ln)
            assert m, f"malformed sample line: {ln!r}"
            samples.setdefault(m.group(1), []).append((m.group(2) or "", float(m.group(3))))
    assert types, "no TYPE lines"
    for name, kind in types.items():
        assert name in helps, f"{name}: TYPE without HELP"
        assert re.fullmatch(r"rct_[a-z0-9_]+", name), f"unsanitized name: {name}"
        assert kind in ("counter", "gauge", "histogram"), f"{name}: bad type {kind}"
    hist = [n for n, k in types.items() if k == "histogram"]
    assert hist, "no histograms in exposition"
    for name in hist:
        buckets = [(l, v) for l, v in samples.get(name + "_bucket", [])]
        assert buckets, f"{name}: no _bucket samples"
        les = [re.search(r'le="([^"]+)"', l).group(1) for l, _ in buckets]
        assert les[-1] == "+Inf", f"{name}: last bucket le={les[-1]}, want +Inf"
        bounds = [float("inf") if le == "+Inf" else float(le) for le in les]
        assert bounds == sorted(bounds), f"{name}: le bounds not sorted"
        counts = [v for _, v in buckets]
        assert counts == sorted(counts), f"{name}: cumulative bucket counts not monotone"
        (_, total), = samples[name + "_count"]
        assert counts[-1] == total, f"{name}: +Inf bucket {counts[-1]} != _count {total}"
        (_, s), = samples[name + "_sum"]
        assert s >= 0 or total == 0, f"{name}: negative _sum"
    print(f"prometheus OK: {source} ({len(types)} metrics, {len(hist)} histograms, "
          f"{sum(len(v) for v in samples.values())} samples)")


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "-"
    text = sys.stdin.read() if path == "-" else open(path).read()
    try:
        validate(text, source=path)
    except AssertionError as err:
        print(f"validate_prom: {path}: {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
