#!/usr/bin/env python3
"""Compare two benchmark JSON files and flag regressions.

Usage:
    scripts/perf_compare.py BASELINE.json CURRENT.json [--threshold 0.10]

Accepts the JSON written by bench/perf_report (google-benchmark's native
--benchmark_out format) and bench/perf_batch (the same shape, hand-emitted).
Benchmarks are matched by name; for each pair the relative change in
real_time is reported.  A benchmark whose real_time grew by more than the
threshold (default 10%) is flagged as a regression and the exit code is 1.

Benchmarks present in only one file are listed but never flagged — adding
or retiring a benchmark is not a regression.

Exit codes: 0 = no regressions, 1 = at least one regression, 2 = bad input.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """Returns {name: real_time_seconds} for one benchmark JSON file."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.stderr.write(f"error: cannot read '{path}': {e}\n")
        sys.exit(2)
    benches = doc.get("benchmarks")
    if not isinstance(benches, list):
        sys.stderr.write(f"error: '{path}' has no 'benchmarks' array\n")
        sys.exit(2)
    out = {}
    for b in benches:
        name = b.get("name")
        time = b.get("real_time")
        if name is None or time is None:
            continue
        # Aggregate entries (mean/median/stddev) would double-count; keep
        # plain iterations plus explicit means when present.
        run_type = b.get("run_type", "iteration")
        if run_type == "aggregate" and b.get("aggregate_name") != "mean":
            continue
        # Informational datapoints (e.g. the serve overload phase, whose
        # wall time shrinks when MORE load is shed) are recorded but never
        # gated on real_time.
        if b.get("informational"):
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}.get(unit)
        if scale is None:
            sys.stderr.write(f"error: unknown time_unit '{unit}' in '{path}'\n")
            sys.exit(2)
        out[name] = time * scale
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative real_time growth that counts as a regression "
                         "(default 0.10 = 10%%)")
    args = ap.parse_args()

    base = load_benchmarks(args.baseline)
    cur = load_benchmarks(args.current)

    shared = sorted(set(base) & set(cur))
    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))

    regressions = []
    print(f"{'benchmark':<48} {'baseline':>12} {'current':>12} {'change':>9}")
    for name in shared:
        b, c = base[name], cur[name]
        change = (c - b) / b if b > 0 else float("inf")
        flag = ""
        if change > args.threshold:
            flag = "  REGRESSION"
            regressions.append(name)
        elif change < -args.threshold:
            flag = "  improved"
        print(f"{name:<48} {b:>11.4g}s {c:>11.4g}s {change:>+8.1%}{flag}")

    for name in only_base:
        print(f"{name:<48} {base[name]:>11.4g}s {'-':>12}   (removed)")
    for name in only_cur:
        print(f"{name:<48} {'-':>12} {cur[name]:>11.4g}s   (new)")

    if not shared:
        sys.stderr.write("warning: no shared benchmarks between the two files\n")

    if regressions:
        print(f"\n{len(regressions)} regression(s) over "
              f"{args.threshold:.0%}: " + ", ".join(regressions))
        return 1
    print(f"\nno regressions over {args.threshold:.0%} "
          f"({len(shared)} shared benchmark(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
