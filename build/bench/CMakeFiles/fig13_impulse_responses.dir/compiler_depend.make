# Empty compiler generated dependencies file for fig13_impulse_responses.
# This may be replaced when dependencies are built.
