file(REMOVE_RECURSE
  "CMakeFiles/fig13_impulse_responses.dir/fig13_impulse_responses.cpp.o"
  "CMakeFiles/fig13_impulse_responses.dir/fig13_impulse_responses.cpp.o.d"
  "fig13_impulse_responses"
  "fig13_impulse_responses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_impulse_responses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
