file(REMOVE_RECURSE
  "CMakeFiles/fig12_delay_curves.dir/fig12_delay_curves.cpp.o"
  "CMakeFiles/fig12_delay_curves.dir/fig12_delay_curves.cpp.o.d"
  "fig12_delay_curves"
  "fig12_delay_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_delay_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
