# Empty dependencies file for fig12_delay_curves.
# This may be replaced when dependencies are built.
