# Empty compiler generated dependencies file for ablation_rlc_counterexample.
# This may be replaced when dependencies are built.
