file(REMOVE_RECURSE
  "CMakeFiles/ablation_rlc_counterexample.dir/ablation_rlc_counterexample.cpp.o"
  "CMakeFiles/ablation_rlc_counterexample.dir/ablation_rlc_counterexample.cpp.o.d"
  "ablation_rlc_counterexample"
  "ablation_rlc_counterexample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rlc_counterexample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
