file(REMOVE_RECURSE
  "CMakeFiles/ablation_tightness.dir/ablation_tightness.cpp.o"
  "CMakeFiles/ablation_tightness.dir/ablation_tightness.cpp.o.d"
  "ablation_tightness"
  "ablation_tightness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tightness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
