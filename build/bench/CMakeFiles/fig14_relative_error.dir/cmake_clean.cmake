file(REMOVE_RECURSE
  "CMakeFiles/fig14_relative_error.dir/fig14_relative_error.cpp.o"
  "CMakeFiles/fig14_relative_error.dir/fig14_relative_error.cpp.o.d"
  "fig14_relative_error"
  "fig14_relative_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_relative_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
