# Empty dependencies file for fig14_relative_error.
# This may be replaced when dependencies are built.
