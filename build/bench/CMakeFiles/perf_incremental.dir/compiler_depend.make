# Empty compiler generated dependencies file for perf_incremental.
# This may be replaced when dependencies are built.
