file(REMOVE_RECURSE
  "CMakeFiles/perf_incremental.dir/perf_incremental.cpp.o"
  "CMakeFiles/perf_incremental.dir/perf_incremental.cpp.o.d"
  "perf_incremental"
  "perf_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
