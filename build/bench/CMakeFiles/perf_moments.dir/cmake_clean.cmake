file(REMOVE_RECURSE
  "CMakeFiles/perf_moments.dir/perf_moments.cpp.o"
  "CMakeFiles/perf_moments.dir/perf_moments.cpp.o.d"
  "perf_moments"
  "perf_moments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_moments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
