# Empty dependencies file for perf_moments.
# This may be replaced when dependencies are built.
