# Empty compiler generated dependencies file for fig3_fig5_responses.
# This may be replaced when dependencies are built.
