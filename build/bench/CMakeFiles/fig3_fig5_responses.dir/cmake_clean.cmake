file(REMOVE_RECURSE
  "CMakeFiles/fig3_fig5_responses.dir/fig3_fig5_responses.cpp.o"
  "CMakeFiles/fig3_fig5_responses.dir/fig3_fig5_responses.cpp.o.d"
  "fig3_fig5_responses"
  "fig3_fig5_responses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_fig5_responses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
