# Empty dependencies file for table2_rise_time.
# This may be replaced when dependencies are built.
