# Empty dependencies file for rct_moments.
# This may be replaced when dependencies are built.
