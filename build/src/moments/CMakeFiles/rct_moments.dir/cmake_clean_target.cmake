file(REMOVE_RECURSE
  "librct_moments.a"
)
