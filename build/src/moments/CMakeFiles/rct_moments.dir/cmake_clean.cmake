file(REMOVE_RECURSE
  "CMakeFiles/rct_moments.dir/admittance.cpp.o"
  "CMakeFiles/rct_moments.dir/admittance.cpp.o.d"
  "CMakeFiles/rct_moments.dir/central.cpp.o"
  "CMakeFiles/rct_moments.dir/central.cpp.o.d"
  "CMakeFiles/rct_moments.dir/incremental.cpp.o"
  "CMakeFiles/rct_moments.dir/incremental.cpp.o.d"
  "CMakeFiles/rct_moments.dir/path_tracing.cpp.o"
  "CMakeFiles/rct_moments.dir/path_tracing.cpp.o.d"
  "librct_moments.a"
  "librct_moments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rct_moments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
