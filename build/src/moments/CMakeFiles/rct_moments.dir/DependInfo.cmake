
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/moments/admittance.cpp" "src/moments/CMakeFiles/rct_moments.dir/admittance.cpp.o" "gcc" "src/moments/CMakeFiles/rct_moments.dir/admittance.cpp.o.d"
  "/root/repo/src/moments/central.cpp" "src/moments/CMakeFiles/rct_moments.dir/central.cpp.o" "gcc" "src/moments/CMakeFiles/rct_moments.dir/central.cpp.o.d"
  "/root/repo/src/moments/incremental.cpp" "src/moments/CMakeFiles/rct_moments.dir/incremental.cpp.o" "gcc" "src/moments/CMakeFiles/rct_moments.dir/incremental.cpp.o.d"
  "/root/repo/src/moments/path_tracing.cpp" "src/moments/CMakeFiles/rct_moments.dir/path_tracing.cpp.o" "gcc" "src/moments/CMakeFiles/rct_moments.dir/path_tracing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rctree/CMakeFiles/rct_rctree.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rct_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
