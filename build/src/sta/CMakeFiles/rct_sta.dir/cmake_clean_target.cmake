file(REMOVE_RECURSE
  "librct_sta.a"
)
