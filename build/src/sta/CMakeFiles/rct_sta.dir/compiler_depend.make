# Empty compiler generated dependencies file for rct_sta.
# This may be replaced when dependencies are built.
