file(REMOVE_RECURSE
  "CMakeFiles/rct_sta.dir/buffering.cpp.o"
  "CMakeFiles/rct_sta.dir/buffering.cpp.o.d"
  "CMakeFiles/rct_sta.dir/design.cpp.o"
  "CMakeFiles/rct_sta.dir/design.cpp.o.d"
  "CMakeFiles/rct_sta.dir/gate.cpp.o"
  "CMakeFiles/rct_sta.dir/gate.cpp.o.d"
  "CMakeFiles/rct_sta.dir/liberty.cpp.o"
  "CMakeFiles/rct_sta.dir/liberty.cpp.o.d"
  "CMakeFiles/rct_sta.dir/nldm.cpp.o"
  "CMakeFiles/rct_sta.dir/nldm.cpp.o.d"
  "CMakeFiles/rct_sta.dir/path_timer.cpp.o"
  "CMakeFiles/rct_sta.dir/path_timer.cpp.o.d"
  "librct_sta.a"
  "librct_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rct_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
