
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sta/buffering.cpp" "src/sta/CMakeFiles/rct_sta.dir/buffering.cpp.o" "gcc" "src/sta/CMakeFiles/rct_sta.dir/buffering.cpp.o.d"
  "/root/repo/src/sta/design.cpp" "src/sta/CMakeFiles/rct_sta.dir/design.cpp.o" "gcc" "src/sta/CMakeFiles/rct_sta.dir/design.cpp.o.d"
  "/root/repo/src/sta/gate.cpp" "src/sta/CMakeFiles/rct_sta.dir/gate.cpp.o" "gcc" "src/sta/CMakeFiles/rct_sta.dir/gate.cpp.o.d"
  "/root/repo/src/sta/liberty.cpp" "src/sta/CMakeFiles/rct_sta.dir/liberty.cpp.o" "gcc" "src/sta/CMakeFiles/rct_sta.dir/liberty.cpp.o.d"
  "/root/repo/src/sta/nldm.cpp" "src/sta/CMakeFiles/rct_sta.dir/nldm.cpp.o" "gcc" "src/sta/CMakeFiles/rct_sta.dir/nldm.cpp.o.d"
  "/root/repo/src/sta/path_timer.cpp" "src/sta/CMakeFiles/rct_sta.dir/path_timer.cpp.o" "gcc" "src/sta/CMakeFiles/rct_sta.dir/path_timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/moments/CMakeFiles/rct_moments.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rctree/CMakeFiles/rct_rctree.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rct_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
