file(REMOVE_RECURSE
  "CMakeFiles/rct_rctree.dir/circuits.cpp.o"
  "CMakeFiles/rct_rctree.dir/circuits.cpp.o.d"
  "CMakeFiles/rct_rctree.dir/dot_export.cpp.o"
  "CMakeFiles/rct_rctree.dir/dot_export.cpp.o.d"
  "CMakeFiles/rct_rctree.dir/generators.cpp.o"
  "CMakeFiles/rct_rctree.dir/generators.cpp.o.d"
  "CMakeFiles/rct_rctree.dir/graph_builder.cpp.o"
  "CMakeFiles/rct_rctree.dir/graph_builder.cpp.o.d"
  "CMakeFiles/rct_rctree.dir/netlist_parser.cpp.o"
  "CMakeFiles/rct_rctree.dir/netlist_parser.cpp.o.d"
  "CMakeFiles/rct_rctree.dir/rctree.cpp.o"
  "CMakeFiles/rct_rctree.dir/rctree.cpp.o.d"
  "CMakeFiles/rct_rctree.dir/routing.cpp.o"
  "CMakeFiles/rct_rctree.dir/routing.cpp.o.d"
  "CMakeFiles/rct_rctree.dir/spef.cpp.o"
  "CMakeFiles/rct_rctree.dir/spef.cpp.o.d"
  "CMakeFiles/rct_rctree.dir/transform.cpp.o"
  "CMakeFiles/rct_rctree.dir/transform.cpp.o.d"
  "CMakeFiles/rct_rctree.dir/units.cpp.o"
  "CMakeFiles/rct_rctree.dir/units.cpp.o.d"
  "librct_rctree.a"
  "librct_rctree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rct_rctree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
