file(REMOVE_RECURSE
  "librct_rctree.a"
)
