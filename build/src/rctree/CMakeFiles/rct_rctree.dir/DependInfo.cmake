
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rctree/circuits.cpp" "src/rctree/CMakeFiles/rct_rctree.dir/circuits.cpp.o" "gcc" "src/rctree/CMakeFiles/rct_rctree.dir/circuits.cpp.o.d"
  "/root/repo/src/rctree/dot_export.cpp" "src/rctree/CMakeFiles/rct_rctree.dir/dot_export.cpp.o" "gcc" "src/rctree/CMakeFiles/rct_rctree.dir/dot_export.cpp.o.d"
  "/root/repo/src/rctree/generators.cpp" "src/rctree/CMakeFiles/rct_rctree.dir/generators.cpp.o" "gcc" "src/rctree/CMakeFiles/rct_rctree.dir/generators.cpp.o.d"
  "/root/repo/src/rctree/graph_builder.cpp" "src/rctree/CMakeFiles/rct_rctree.dir/graph_builder.cpp.o" "gcc" "src/rctree/CMakeFiles/rct_rctree.dir/graph_builder.cpp.o.d"
  "/root/repo/src/rctree/netlist_parser.cpp" "src/rctree/CMakeFiles/rct_rctree.dir/netlist_parser.cpp.o" "gcc" "src/rctree/CMakeFiles/rct_rctree.dir/netlist_parser.cpp.o.d"
  "/root/repo/src/rctree/rctree.cpp" "src/rctree/CMakeFiles/rct_rctree.dir/rctree.cpp.o" "gcc" "src/rctree/CMakeFiles/rct_rctree.dir/rctree.cpp.o.d"
  "/root/repo/src/rctree/routing.cpp" "src/rctree/CMakeFiles/rct_rctree.dir/routing.cpp.o" "gcc" "src/rctree/CMakeFiles/rct_rctree.dir/routing.cpp.o.d"
  "/root/repo/src/rctree/spef.cpp" "src/rctree/CMakeFiles/rct_rctree.dir/spef.cpp.o" "gcc" "src/rctree/CMakeFiles/rct_rctree.dir/spef.cpp.o.d"
  "/root/repo/src/rctree/transform.cpp" "src/rctree/CMakeFiles/rct_rctree.dir/transform.cpp.o" "gcc" "src/rctree/CMakeFiles/rct_rctree.dir/transform.cpp.o.d"
  "/root/repo/src/rctree/units.cpp" "src/rctree/CMakeFiles/rct_rctree.dir/units.cpp.o" "gcc" "src/rctree/CMakeFiles/rct_rctree.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
