# Empty compiler generated dependencies file for rct_rctree.
# This may be replaced when dependencies are built.
