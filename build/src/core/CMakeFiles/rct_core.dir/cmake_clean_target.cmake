file(REMOVE_RECURSE
  "librct_core.a"
)
