file(REMOVE_RECURSE
  "CMakeFiles/rct_core.dir/awe.cpp.o"
  "CMakeFiles/rct_core.dir/awe.cpp.o.d"
  "CMakeFiles/rct_core.dir/bounds.cpp.o"
  "CMakeFiles/rct_core.dir/bounds.cpp.o.d"
  "CMakeFiles/rct_core.dir/effective_capacitance.cpp.o"
  "CMakeFiles/rct_core.dir/effective_capacitance.cpp.o.d"
  "CMakeFiles/rct_core.dir/generalized_input.cpp.o"
  "CMakeFiles/rct_core.dir/generalized_input.cpp.o.d"
  "CMakeFiles/rct_core.dir/metrics.cpp.o"
  "CMakeFiles/rct_core.dir/metrics.cpp.o.d"
  "CMakeFiles/rct_core.dir/penfield_rubinstein.cpp.o"
  "CMakeFiles/rct_core.dir/penfield_rubinstein.cpp.o.d"
  "CMakeFiles/rct_core.dir/pi_model.cpp.o"
  "CMakeFiles/rct_core.dir/pi_model.cpp.o.d"
  "CMakeFiles/rct_core.dir/prima.cpp.o"
  "CMakeFiles/rct_core.dir/prima.cpp.o.d"
  "CMakeFiles/rct_core.dir/report.cpp.o"
  "CMakeFiles/rct_core.dir/report.cpp.o.d"
  "CMakeFiles/rct_core.dir/sensitivity.cpp.o"
  "CMakeFiles/rct_core.dir/sensitivity.cpp.o.d"
  "CMakeFiles/rct_core.dir/variation.cpp.o"
  "CMakeFiles/rct_core.dir/variation.cpp.o.d"
  "librct_core.a"
  "librct_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rct_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
