
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/awe.cpp" "src/core/CMakeFiles/rct_core.dir/awe.cpp.o" "gcc" "src/core/CMakeFiles/rct_core.dir/awe.cpp.o.d"
  "/root/repo/src/core/bounds.cpp" "src/core/CMakeFiles/rct_core.dir/bounds.cpp.o" "gcc" "src/core/CMakeFiles/rct_core.dir/bounds.cpp.o.d"
  "/root/repo/src/core/effective_capacitance.cpp" "src/core/CMakeFiles/rct_core.dir/effective_capacitance.cpp.o" "gcc" "src/core/CMakeFiles/rct_core.dir/effective_capacitance.cpp.o.d"
  "/root/repo/src/core/generalized_input.cpp" "src/core/CMakeFiles/rct_core.dir/generalized_input.cpp.o" "gcc" "src/core/CMakeFiles/rct_core.dir/generalized_input.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/rct_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/rct_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/penfield_rubinstein.cpp" "src/core/CMakeFiles/rct_core.dir/penfield_rubinstein.cpp.o" "gcc" "src/core/CMakeFiles/rct_core.dir/penfield_rubinstein.cpp.o.d"
  "/root/repo/src/core/pi_model.cpp" "src/core/CMakeFiles/rct_core.dir/pi_model.cpp.o" "gcc" "src/core/CMakeFiles/rct_core.dir/pi_model.cpp.o.d"
  "/root/repo/src/core/prima.cpp" "src/core/CMakeFiles/rct_core.dir/prima.cpp.o" "gcc" "src/core/CMakeFiles/rct_core.dir/prima.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/rct_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/rct_core.dir/report.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/rct_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/rct_core.dir/sensitivity.cpp.o.d"
  "/root/repo/src/core/variation.cpp" "src/core/CMakeFiles/rct_core.dir/variation.cpp.o" "gcc" "src/core/CMakeFiles/rct_core.dir/variation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/moments/CMakeFiles/rct_moments.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rctree/CMakeFiles/rct_rctree.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rct_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
