# Empty compiler generated dependencies file for rct_core.
# This may be replaced when dependencies are built.
