
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/dense_matrix.cpp" "src/linalg/CMakeFiles/rct_linalg.dir/dense_matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/rct_linalg.dir/dense_matrix.cpp.o.d"
  "/root/repo/src/linalg/nelder_mead.cpp" "src/linalg/CMakeFiles/rct_linalg.dir/nelder_mead.cpp.o" "gcc" "src/linalg/CMakeFiles/rct_linalg.dir/nelder_mead.cpp.o.d"
  "/root/repo/src/linalg/polynomial.cpp" "src/linalg/CMakeFiles/rct_linalg.dir/polynomial.cpp.o" "gcc" "src/linalg/CMakeFiles/rct_linalg.dir/polynomial.cpp.o.d"
  "/root/repo/src/linalg/power_series.cpp" "src/linalg/CMakeFiles/rct_linalg.dir/power_series.cpp.o" "gcc" "src/linalg/CMakeFiles/rct_linalg.dir/power_series.cpp.o.d"
  "/root/repo/src/linalg/root_find.cpp" "src/linalg/CMakeFiles/rct_linalg.dir/root_find.cpp.o" "gcc" "src/linalg/CMakeFiles/rct_linalg.dir/root_find.cpp.o.d"
  "/root/repo/src/linalg/symmetric_eigen.cpp" "src/linalg/CMakeFiles/rct_linalg.dir/symmetric_eigen.cpp.o" "gcc" "src/linalg/CMakeFiles/rct_linalg.dir/symmetric_eigen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
