file(REMOVE_RECURSE
  "librct_linalg.a"
)
