# Empty dependencies file for rct_linalg.
# This may be replaced when dependencies are built.
