file(REMOVE_RECURSE
  "CMakeFiles/rct_linalg.dir/dense_matrix.cpp.o"
  "CMakeFiles/rct_linalg.dir/dense_matrix.cpp.o.d"
  "CMakeFiles/rct_linalg.dir/nelder_mead.cpp.o"
  "CMakeFiles/rct_linalg.dir/nelder_mead.cpp.o.d"
  "CMakeFiles/rct_linalg.dir/polynomial.cpp.o"
  "CMakeFiles/rct_linalg.dir/polynomial.cpp.o.d"
  "CMakeFiles/rct_linalg.dir/power_series.cpp.o"
  "CMakeFiles/rct_linalg.dir/power_series.cpp.o.d"
  "CMakeFiles/rct_linalg.dir/root_find.cpp.o"
  "CMakeFiles/rct_linalg.dir/root_find.cpp.o.d"
  "CMakeFiles/rct_linalg.dir/symmetric_eigen.cpp.o"
  "CMakeFiles/rct_linalg.dir/symmetric_eigen.cpp.o.d"
  "librct_linalg.a"
  "librct_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rct_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
