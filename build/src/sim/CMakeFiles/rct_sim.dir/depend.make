# Empty dependencies file for rct_sim.
# This may be replaced when dependencies are built.
