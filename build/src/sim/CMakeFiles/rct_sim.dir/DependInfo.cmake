
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/ac.cpp" "src/sim/CMakeFiles/rct_sim.dir/ac.cpp.o" "gcc" "src/sim/CMakeFiles/rct_sim.dir/ac.cpp.o.d"
  "/root/repo/src/sim/convolve.cpp" "src/sim/CMakeFiles/rct_sim.dir/convolve.cpp.o" "gcc" "src/sim/CMakeFiles/rct_sim.dir/convolve.cpp.o.d"
  "/root/repo/src/sim/distributed.cpp" "src/sim/CMakeFiles/rct_sim.dir/distributed.cpp.o" "gcc" "src/sim/CMakeFiles/rct_sim.dir/distributed.cpp.o.d"
  "/root/repo/src/sim/exact.cpp" "src/sim/CMakeFiles/rct_sim.dir/exact.cpp.o" "gcc" "src/sim/CMakeFiles/rct_sim.dir/exact.cpp.o.d"
  "/root/repo/src/sim/mna.cpp" "src/sim/CMakeFiles/rct_sim.dir/mna.cpp.o" "gcc" "src/sim/CMakeFiles/rct_sim.dir/mna.cpp.o.d"
  "/root/repo/src/sim/rlc_line.cpp" "src/sim/CMakeFiles/rct_sim.dir/rlc_line.cpp.o" "gcc" "src/sim/CMakeFiles/rct_sim.dir/rlc_line.cpp.o.d"
  "/root/repo/src/sim/sources.cpp" "src/sim/CMakeFiles/rct_sim.dir/sources.cpp.o" "gcc" "src/sim/CMakeFiles/rct_sim.dir/sources.cpp.o.d"
  "/root/repo/src/sim/transient.cpp" "src/sim/CMakeFiles/rct_sim.dir/transient.cpp.o" "gcc" "src/sim/CMakeFiles/rct_sim.dir/transient.cpp.o.d"
  "/root/repo/src/sim/tree_solver.cpp" "src/sim/CMakeFiles/rct_sim.dir/tree_solver.cpp.o" "gcc" "src/sim/CMakeFiles/rct_sim.dir/tree_solver.cpp.o.d"
  "/root/repo/src/sim/waveform.cpp" "src/sim/CMakeFiles/rct_sim.dir/waveform.cpp.o" "gcc" "src/sim/CMakeFiles/rct_sim.dir/waveform.cpp.o.d"
  "/root/repo/src/sim/waveform_io.cpp" "src/sim/CMakeFiles/rct_sim.dir/waveform_io.cpp.o" "gcc" "src/sim/CMakeFiles/rct_sim.dir/waveform_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rctree/CMakeFiles/rct_rctree.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rct_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
