file(REMOVE_RECURSE
  "CMakeFiles/rct_sim.dir/ac.cpp.o"
  "CMakeFiles/rct_sim.dir/ac.cpp.o.d"
  "CMakeFiles/rct_sim.dir/convolve.cpp.o"
  "CMakeFiles/rct_sim.dir/convolve.cpp.o.d"
  "CMakeFiles/rct_sim.dir/distributed.cpp.o"
  "CMakeFiles/rct_sim.dir/distributed.cpp.o.d"
  "CMakeFiles/rct_sim.dir/exact.cpp.o"
  "CMakeFiles/rct_sim.dir/exact.cpp.o.d"
  "CMakeFiles/rct_sim.dir/mna.cpp.o"
  "CMakeFiles/rct_sim.dir/mna.cpp.o.d"
  "CMakeFiles/rct_sim.dir/rlc_line.cpp.o"
  "CMakeFiles/rct_sim.dir/rlc_line.cpp.o.d"
  "CMakeFiles/rct_sim.dir/sources.cpp.o"
  "CMakeFiles/rct_sim.dir/sources.cpp.o.d"
  "CMakeFiles/rct_sim.dir/transient.cpp.o"
  "CMakeFiles/rct_sim.dir/transient.cpp.o.d"
  "CMakeFiles/rct_sim.dir/tree_solver.cpp.o"
  "CMakeFiles/rct_sim.dir/tree_solver.cpp.o.d"
  "CMakeFiles/rct_sim.dir/waveform.cpp.o"
  "CMakeFiles/rct_sim.dir/waveform.cpp.o.d"
  "CMakeFiles/rct_sim.dir/waveform_io.cpp.o"
  "CMakeFiles/rct_sim.dir/waveform_io.cpp.o.d"
  "librct_sim.a"
  "librct_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rct_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
