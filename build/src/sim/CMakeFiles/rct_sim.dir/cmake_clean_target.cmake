file(REMOVE_RECURSE
  "librct_sim.a"
)
