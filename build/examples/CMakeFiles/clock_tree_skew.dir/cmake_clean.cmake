file(REMOVE_RECURSE
  "CMakeFiles/clock_tree_skew.dir/clock_tree_skew.cpp.o"
  "CMakeFiles/clock_tree_skew.dir/clock_tree_skew.cpp.o.d"
  "clock_tree_skew"
  "clock_tree_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_tree_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
