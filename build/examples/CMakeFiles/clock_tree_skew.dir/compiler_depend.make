# Empty compiler generated dependencies file for clock_tree_skew.
# This may be replaced when dependencies are built.
