file(REMOVE_RECURSE
  "CMakeFiles/repeater_insertion.dir/repeater_insertion.cpp.o"
  "CMakeFiles/repeater_insertion.dir/repeater_insertion.cpp.o.d"
  "repeater_insertion"
  "repeater_insertion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repeater_insertion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
