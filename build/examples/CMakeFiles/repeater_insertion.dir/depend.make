# Empty dependencies file for repeater_insertion.
# This may be replaced when dependencies are built.
