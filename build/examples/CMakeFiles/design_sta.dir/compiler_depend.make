# Empty compiler generated dependencies file for design_sta.
# This may be replaced when dependencies are built.
