file(REMOVE_RECURSE
  "CMakeFiles/design_sta.dir/design_sta.cpp.o"
  "CMakeFiles/design_sta.dir/design_sta.cpp.o.d"
  "design_sta"
  "design_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
