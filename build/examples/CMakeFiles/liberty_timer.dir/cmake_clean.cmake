file(REMOVE_RECURSE
  "CMakeFiles/liberty_timer.dir/liberty_timer.cpp.o"
  "CMakeFiles/liberty_timer.dir/liberty_timer.cpp.o.d"
  "liberty_timer"
  "liberty_timer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberty_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
