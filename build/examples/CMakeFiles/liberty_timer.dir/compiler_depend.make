# Empty compiler generated dependencies file for liberty_timer.
# This may be replaced when dependencies are built.
