# Empty dependencies file for net_router.
# This may be replaced when dependencies are built.
