file(REMOVE_RECURSE
  "CMakeFiles/net_router.dir/net_router.cpp.o"
  "CMakeFiles/net_router.dir/net_router.cpp.o.d"
  "net_router"
  "net_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
