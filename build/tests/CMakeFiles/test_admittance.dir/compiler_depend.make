# Empty compiler generated dependencies file for test_admittance.
# This may be replaced when dependencies are built.
