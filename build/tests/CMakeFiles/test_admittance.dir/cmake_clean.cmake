file(REMOVE_RECURSE
  "CMakeFiles/test_admittance.dir/test_admittance.cpp.o"
  "CMakeFiles/test_admittance.dir/test_admittance.cpp.o.d"
  "test_admittance"
  "test_admittance.pdb"
  "test_admittance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_admittance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
