
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_waveform.cpp" "tests/CMakeFiles/test_waveform.dir/test_waveform.cpp.o" "gcc" "tests/CMakeFiles/test_waveform.dir/test_waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/rct_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/moments/CMakeFiles/rct_moments.dir/DependInfo.cmake"
  "/root/repo/build/src/rctree/CMakeFiles/rct_rctree.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/rct_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
