file(REMOVE_RECURSE
  "CMakeFiles/test_awe.dir/test_awe.cpp.o"
  "CMakeFiles/test_awe.dir/test_awe.cpp.o.d"
  "test_awe"
  "test_awe.pdb"
  "test_awe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_awe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
