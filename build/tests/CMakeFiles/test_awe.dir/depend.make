# Empty dependencies file for test_awe.
# This may be replaced when dependencies are built.
