file(REMOVE_RECURSE
  "CMakeFiles/test_symmetric_eigen.dir/test_symmetric_eigen.cpp.o"
  "CMakeFiles/test_symmetric_eigen.dir/test_symmetric_eigen.cpp.o.d"
  "test_symmetric_eigen"
  "test_symmetric_eigen.pdb"
  "test_symmetric_eigen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symmetric_eigen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
