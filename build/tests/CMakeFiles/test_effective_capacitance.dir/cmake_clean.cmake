file(REMOVE_RECURSE
  "CMakeFiles/test_effective_capacitance.dir/test_effective_capacitance.cpp.o"
  "CMakeFiles/test_effective_capacitance.dir/test_effective_capacitance.cpp.o.d"
  "test_effective_capacitance"
  "test_effective_capacitance.pdb"
  "test_effective_capacitance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_effective_capacitance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
