# Empty dependencies file for test_effective_capacitance.
# This may be replaced when dependencies are built.
