# Empty compiler generated dependencies file for test_convolve.
# This may be replaced when dependencies are built.
