file(REMOVE_RECURSE
  "CMakeFiles/test_root_find.dir/test_root_find.cpp.o"
  "CMakeFiles/test_root_find.dir/test_root_find.cpp.o.d"
  "test_root_find"
  "test_root_find.pdb"
  "test_root_find[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_root_find.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
