# Empty compiler generated dependencies file for test_root_find.
# This may be replaced when dependencies are built.
