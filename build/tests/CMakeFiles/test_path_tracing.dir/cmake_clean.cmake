file(REMOVE_RECURSE
  "CMakeFiles/test_path_tracing.dir/test_path_tracing.cpp.o"
  "CMakeFiles/test_path_tracing.dir/test_path_tracing.cpp.o.d"
  "test_path_tracing"
  "test_path_tracing.pdb"
  "test_path_tracing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
