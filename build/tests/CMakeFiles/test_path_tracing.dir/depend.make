# Empty dependencies file for test_path_tracing.
# This may be replaced when dependencies are built.
