# Empty compiler generated dependencies file for test_power_series.
# This may be replaced when dependencies are built.
