file(REMOVE_RECURSE
  "CMakeFiles/test_power_series.dir/test_power_series.cpp.o"
  "CMakeFiles/test_power_series.dir/test_power_series.cpp.o.d"
  "test_power_series"
  "test_power_series.pdb"
  "test_power_series[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
