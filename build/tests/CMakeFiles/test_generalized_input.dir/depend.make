# Empty dependencies file for test_generalized_input.
# This may be replaced when dependencies are built.
