file(REMOVE_RECURSE
  "CMakeFiles/test_generalized_input.dir/test_generalized_input.cpp.o"
  "CMakeFiles/test_generalized_input.dir/test_generalized_input.cpp.o.d"
  "test_generalized_input"
  "test_generalized_input.pdb"
  "test_generalized_input[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generalized_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
