# Empty compiler generated dependencies file for test_nldm.
# This may be replaced when dependencies are built.
