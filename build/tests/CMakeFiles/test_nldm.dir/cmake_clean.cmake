file(REMOVE_RECURSE
  "CMakeFiles/test_nldm.dir/test_nldm.cpp.o"
  "CMakeFiles/test_nldm.dir/test_nldm.cpp.o.d"
  "test_nldm"
  "test_nldm.pdb"
  "test_nldm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nldm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
