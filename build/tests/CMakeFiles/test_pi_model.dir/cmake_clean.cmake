file(REMOVE_RECURSE
  "CMakeFiles/test_pi_model.dir/test_pi_model.cpp.o"
  "CMakeFiles/test_pi_model.dir/test_pi_model.cpp.o.d"
  "test_pi_model"
  "test_pi_model.pdb"
  "test_pi_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pi_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
