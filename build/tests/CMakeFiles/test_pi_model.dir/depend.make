# Empty dependencies file for test_pi_model.
# This may be replaced when dependencies are built.
