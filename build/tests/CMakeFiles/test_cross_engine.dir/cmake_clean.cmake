file(REMOVE_RECURSE
  "CMakeFiles/test_cross_engine.dir/test_cross_engine.cpp.o"
  "CMakeFiles/test_cross_engine.dir/test_cross_engine.cpp.o.d"
  "test_cross_engine"
  "test_cross_engine.pdb"
  "test_cross_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
