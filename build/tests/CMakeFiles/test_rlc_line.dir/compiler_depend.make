# Empty compiler generated dependencies file for test_rlc_line.
# This may be replaced when dependencies are built.
