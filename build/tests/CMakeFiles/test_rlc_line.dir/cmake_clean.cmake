file(REMOVE_RECURSE
  "CMakeFiles/test_rlc_line.dir/test_rlc_line.cpp.o"
  "CMakeFiles/test_rlc_line.dir/test_rlc_line.cpp.o.d"
  "test_rlc_line"
  "test_rlc_line.pdb"
  "test_rlc_line[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rlc_line.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
