file(REMOVE_RECURSE
  "CMakeFiles/test_waveform_io.dir/test_waveform_io.cpp.o"
  "CMakeFiles/test_waveform_io.dir/test_waveform_io.cpp.o.d"
  "test_waveform_io"
  "test_waveform_io.pdb"
  "test_waveform_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_waveform_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
