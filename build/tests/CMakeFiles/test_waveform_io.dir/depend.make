# Empty dependencies file for test_waveform_io.
# This may be replaced when dependencies are built.
