# Empty dependencies file for test_testdata.
# This may be replaced when dependencies are built.
