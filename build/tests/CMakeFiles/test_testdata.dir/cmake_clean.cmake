file(REMOVE_RECURSE
  "CMakeFiles/test_testdata.dir/test_testdata.cpp.o"
  "CMakeFiles/test_testdata.dir/test_testdata.cpp.o.d"
  "test_testdata"
  "test_testdata.pdb"
  "test_testdata[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_testdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
