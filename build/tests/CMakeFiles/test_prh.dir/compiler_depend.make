# Empty compiler generated dependencies file for test_prh.
# This may be replaced when dependencies are built.
