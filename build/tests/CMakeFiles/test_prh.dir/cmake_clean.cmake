file(REMOVE_RECURSE
  "CMakeFiles/test_prh.dir/test_prh.cpp.o"
  "CMakeFiles/test_prh.dir/test_prh.cpp.o.d"
  "test_prh"
  "test_prh.pdb"
  "test_prh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
