# Empty compiler generated dependencies file for test_nelder_mead.
# This may be replaced when dependencies are built.
