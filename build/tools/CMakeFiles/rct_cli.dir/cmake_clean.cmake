file(REMOVE_RECURSE
  "CMakeFiles/rct_cli.dir/rct_cli.cpp.o"
  "CMakeFiles/rct_cli.dir/rct_cli.cpp.o.d"
  "rct"
  "rct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rct_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
