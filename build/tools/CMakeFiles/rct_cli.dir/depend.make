# Empty dependencies file for rct_cli.
# This may be replaced when dependencies are built.
