# Empty compiler generated dependencies file for fit_fig1.
# This may be replaced when dependencies are built.
