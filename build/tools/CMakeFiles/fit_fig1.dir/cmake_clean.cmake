file(REMOVE_RECURSE
  "CMakeFiles/fit_fig1.dir/fit_fig1.cpp.o"
  "CMakeFiles/fit_fig1.dir/fit_fig1.cpp.o.d"
  "fit_fig1"
  "fit_fig1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fit_fig1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
