#include "sim/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "rctree/generators.hpp"
#include "sim/exact.hpp"

namespace rct::sim {
namespace {

TransientOptions opts(double t_end, std::size_t steps, Method m) {
  TransientOptions o;
  o.t_end = t_end;
  o.steps = steps;
  o.method = m;
  return o;
}

TEST(Transient, SingleRcAgainstClosedForm) {
  const double tau = 1e-9;
  const RCTree t = testing::single_rc(1000.0, 1e-12);
  const StepSource step;
  const auto res = simulate(t, step, {0}, opts(6.0 * tau, 6000, Method::kTrapezoidal));
  for (std::size_t k = 0; k < res.time.size(); k += 500) {
    const double want = 1.0 - std::exp(-res.time[k] / tau);
    EXPECT_NEAR(res.values[0][k], want, 2e-6);
  }
}

TEST(Transient, TrapezoidalBeatsBackwardEuler) {
  const RCTree t = testing::two_rc();
  const ExactAnalysis exact(t);
  const StepSource step;
  const double t_end = 8.0 * exact.dominant_time_constant();
  const auto be = simulate(t, step, {1}, opts(t_end, 400, Method::kBackwardEuler));
  const auto tr = simulate(t, step, {1}, opts(t_end, 400, Method::kTrapezoidal));
  double err_be = 0.0;
  double err_tr = 0.0;
  for (std::size_t k = 0; k < be.time.size(); ++k) {
    const double want = exact.step_response(1, be.time[k]);
    err_be = std::max(err_be, std::abs(be.values[0][k] - want));
    err_tr = std::max(err_tr, std::abs(tr.values[0][k] - want));
  }
  EXPECT_LT(err_tr, err_be);
  EXPECT_LT(err_tr, 1e-4);
}

class TransientVsExact : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransientVsExact, RandomTreesMatchEigenSolution) {
  const RCTree t = gen::random_tree(30, GetParam());
  const ExactAnalysis exact(t);
  const StepSource step;
  const double t_end = 10.0 * exact.dominant_time_constant();
  const NodeId probe = t.size() - 1;
  const auto res = simulate(t, step, {probe}, opts(t_end, 4000, Method::kTrapezoidal));
  for (std::size_t k = 0; k < res.time.size(); k += 97) {
    EXPECT_NEAR(res.values[0][k], exact.step_response(probe, res.time[k]), 5e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransientVsExact, ::testing::Values(11, 22, 33, 44));

TEST(Transient, RampInputMatchesExactClosedForm) {
  const RCTree t = testing::small_tree();
  const ExactAnalysis exact(t);
  const double tau = exact.dominant_time_constant();
  const SaturatedRampSource ramp(2.0 * tau);
  const NodeId probe = t.at("c");
  const auto res = simulate(t, ramp, {probe}, opts(12.0 * tau, 6000, Method::kTrapezoidal));
  for (std::size_t k = 0; k < res.time.size(); k += 301)
    EXPECT_NEAR(res.values[0][k], exact.ramp_response(probe, res.time[k], 2.0 * tau), 5e-5);
}

TEST(Transient, SettlesToDcForAllSources) {
  const RCTree t = testing::small_tree();
  const ExactAnalysis exact(t);
  const double tau = exact.dominant_time_constant();
  const StepSource step;
  const RaisedCosineSource cosine(tau);
  const ExponentialSource expo(0.5 * tau);
  for (const Source* s : std::initializer_list<const Source*>{&step, &cosine, &expo}) {
    const auto res = simulate(t, *s, {t.at("d")},
                              opts(40.0 * tau + s->settle_time(), 8000, Method::kTrapezoidal));
    EXPECT_NEAR(res.values[0].back(), 1.0, 1e-6) << s->describe();
  }
}

TEST(Transient, WaveformAccessor) {
  const RCTree t = testing::single_rc();
  const StepSource step;
  const auto res = simulate(t, step, {0}, opts(1e-9, 100, Method::kBackwardEuler));
  const Waveform w = res.waveform(0);
  EXPECT_EQ(w.size(), 101u);
  EXPECT_TRUE(w.is_monotone_nondecreasing(1e-12));
}

TEST(Transient, Validation) {
  const RCTree t = testing::single_rc();
  const StepSource step;
  EXPECT_THROW((void)simulate(t, step, {0}, opts(0.0, 10, Method::kBackwardEuler)),
               std::invalid_argument);
  EXPECT_THROW((void)simulate(t, step, {5}, opts(1e-9, 10, Method::kBackwardEuler)),
               std::invalid_argument);
  TransientOptions bad;
  bad.t_end = 1e-9;
  bad.steps = 0;
  EXPECT_THROW((void)simulate(t, step, {0}, bad), std::invalid_argument);
}

}  // namespace
}  // namespace rct::sim
