// src/obs tests: histogram bucket semantics, counter exactness under
// concurrency (run under TSan by scripts/check.sh), Chrome-trace JSON
// well-formedness (parsed back with a minimal JSON reader below) and
// metrics snapshot schema stability.
//
// All tests share the process-global registry/tracer, so each one works on
// uniquely-named instruments or resets/disarms what it touched.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace rct;

// --- minimal recursive-descent JSON reader (tests only) ---------------------

struct Json {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  [[nodiscard]] const Json& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }
  char peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) throw std::runtime_error(std::string("expected '") + c + "'");
    ++pos_;
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return keyword("true", bool_value(true));
      case 'f': return keyword("false", bool_value(false));
      case 'n': return keyword("null", Json{});
      default: return number();
    }
  }

  static Json bool_value(bool b) {
    Json v;
    v.kind = Json::Kind::Bool;
    v.boolean = b;
    return v;
  }

  Json keyword(std::string_view word, Json v) {
    if (text_.substr(pos_, word.size()) != word) throw std::runtime_error("bad keyword");
    pos_ += word.size();
    return v;
  }

  Json object() {
    Json v;
    v.kind = Json::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      Json key = string_value();
      skip_ws();
      expect(':');
      v.object.emplace(std::move(key.str), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    Json v;
    v.kind = Json::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Json string_value() {
    Json v;
    v.kind = Json::Kind::String;
    expect('"');
    while (peek() != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u': {
            const unsigned long code = std::stoul(std::string(text_.substr(pos_, 4)), nullptr, 16);
            pos_ += 4;
            c = static_cast<char>(code);  // tests only emit ASCII escapes
            break;
          }
          default: throw std::runtime_error("bad escape");
        }
      }
      v.str += c;
    }
    ++pos_;
    return v;
  }

  Json number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) throw std::runtime_error("bad number");
    Json v;
    v.kind = Json::Kind::Number;
    v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Json parse_json(const std::string& text) { return JsonParser(text).parse(); }

// --- histograms -------------------------------------------------------------

TEST(ObsHistogram, BucketBoundariesAreUpperInclusive) {
  obs::Histogram h({1.0, 2.0, 5.0});
  for (const double v : {0.5, 1.0, 1.5, 2.0, 5.0, 6.0}) h.observe(v);
  // le semantics: a sample lands in the first bucket whose bound >= value.
  EXPECT_EQ(h.bucket_count(0), 2u);  // 0.5, 1.0
  EXPECT_EQ(h.bucket_count(1), 2u);  // 1.5, 2.0
  EXPECT_EQ(h.bucket_count(2), 1u);  // 5.0
  EXPECT_EQ(h.bucket_count(3), 1u);  // 6.0 -> +inf overflow
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 6.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 6.0);
}

TEST(ObsHistogram, EmptyHistogramHasZeroStats) {
  obs::Histogram h({1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(ObsHistogram, RejectsNonIncreasingBounds) {
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(ObsHistogram, DefaultLatencyBoundsAreStrictlyIncreasing) {
  const auto& b = obs::Histogram::default_latency_bounds();
  ASSERT_GE(b.size(), 20u);
  EXPECT_DOUBLE_EQ(b.front(), 1e-6);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
}

TEST(ObsHistogram, ResetZeroes) {
  obs::Histogram h({1.0});
  h.observe(0.5);
  h.observe(2.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(0), 0u);
  EXPECT_EQ(h.bucket_count(1), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

// --- counters / gauges under concurrency ------------------------------------

TEST(ObsConcurrency, CounterIsExactUnder8Threads) {
  obs::Counter& c = obs::registry().counter("test.obs.concurrent_counter");
  c.reset();
  constexpr std::size_t kThreads = 8, kPerThread = 20000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (std::size_t i = 0; i < kPerThread; ++i) c.add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsConcurrency, HistogramCountAndSumAreExactUnder8Threads) {
  obs::Histogram& h = obs::registry().histogram("test.obs.concurrent_hist_seconds");
  h.reset();
  constexpr std::size_t kThreads = 8, kPerThread = 5000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&h] {
      for (std::size_t i = 0; i < kPerThread; ++i) h.observe(1e-5);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_NEAR(h.sum(), 1e-5 * static_cast<double>(kThreads * kPerThread), 1e-9);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i <= h.bounds().size(); ++i) bucket_total += h.bucket_count(i);
  EXPECT_EQ(bucket_total, h.count());
}

TEST(ObsConcurrency, GaugeAddIsExactUnder8Threads) {
  obs::Gauge& g = obs::registry().gauge("test.obs.concurrent_gauge");
  g.reset();
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 8; ++t)
    threads.emplace_back([&g] {
      for (std::size_t i = 0; i < 5000; ++i) g.add(1.0);
    });
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), 40000.0);
}

TEST(ObsGauge, SetAndMaxOf) {
  obs::Gauge g;
  g.set(3.0);
  g.max_of(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.max_of(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

// --- registry ---------------------------------------------------------------

TEST(ObsRegistry, SameNameReturnsSameInstrument) {
  obs::Counter& a = obs::registry().counter("test.obs.same_name");
  obs::Counter& b = obs::registry().counter("test.obs.same_name");
  EXPECT_EQ(&a, &b);
}

TEST(ObsRegistry, CounterValueOfAbsentNameIsZero) {
  EXPECT_EQ(obs::registry().counter_value("test.obs.never_created"), 0u);
}

TEST(ObsRegistry, ResetZeroesButKeepsReferencesValid) {
  obs::Counter& c = obs::registry().counter("test.obs.reset_counter");
  c.add(5);
  obs::registry().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);  // the reference survives reset
  EXPECT_EQ(obs::registry().counter_value("test.obs.reset_counter"), 2u);
}

TEST(ObsRegistry, ScopedTimerObservesElapsedSeconds) {
  obs::Histogram& h = obs::registry().histogram("test.obs.timer_seconds");
  h.reset();
  { const obs::ScopedTimer t(h); }
#if RCT_OBS_ENABLED
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.min(), 0.0);
  EXPECT_LT(h.max(), 1.0);  // an empty scope is far below a second
#else
  EXPECT_EQ(h.count(), 0u);
#endif
}

// --- metrics snapshot schema ------------------------------------------------

TEST(ObsSnapshot, SchemaIsStableAndParsesBack) {
  obs::registry().counter("test.obs.snap_counter").add(3);
  obs::registry().gauge("test.obs.snap_gauge").set(2.5);
  obs::Histogram& h = obs::registry().histogram("test.obs.snap_hist_seconds");
  h.reset();
  h.observe(1e-3);

  const Json snap = parse_json(obs::registry().to_json());
  ASSERT_EQ(snap.kind, Json::Kind::Object);
  EXPECT_DOUBLE_EQ(snap.at("schema_version").number, 1.0);
  ASSERT_EQ(snap.at("counters").kind, Json::Kind::Object);
  ASSERT_EQ(snap.at("gauges").kind, Json::Kind::Object);
  ASSERT_EQ(snap.at("histograms").kind, Json::Kind::Object);

  EXPECT_DOUBLE_EQ(snap.at("counters").at("test.obs.snap_counter").number, 3.0);
  EXPECT_DOUBLE_EQ(snap.at("gauges").at("test.obs.snap_gauge").number, 2.5);

  const Json& hist = snap.at("histograms").at("test.obs.snap_hist_seconds");
  ASSERT_EQ(hist.at("buckets").kind, Json::Kind::Array);
  ASSERT_EQ(hist.at("buckets").array.size(), h.bounds().size() + 1);
  // Every bucket entry is {"le": number-or-"inf", "count": n}; the last is inf.
  for (const Json& bucket : hist.at("buckets").array) {
    EXPECT_TRUE(bucket.has("le"));
    EXPECT_TRUE(bucket.has("count"));
  }
  EXPECT_EQ(hist.at("buckets").array.back().at("le").str, "inf");
  EXPECT_DOUBLE_EQ(hist.at("count").number, 1.0);
  EXPECT_NEAR(hist.at("sum").number, 1e-3, 1e-12);
  EXPECT_TRUE(hist.has("min"));
  EXPECT_TRUE(hist.has("max"));
}

// --- tracing ----------------------------------------------------------------

#if RCT_OBS_ENABLED

TEST(ObsTrace, SpanRecordsOnlyWhileArmed) {
  obs::tracer().clear();
  obs::tracer().set_enabled(false);
  { const obs::Span s("test.obs.disarmed", "test"); }
  EXPECT_TRUE(obs::tracer().events().empty());

  obs::tracer().set_enabled(true);
  { const obs::Span s("test.obs.armed", "test", "detail-1"); }
  obs::tracer().set_enabled(false);
  const auto events = obs::tracer().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.obs.armed");
  EXPECT_STREQ(events[0].cat, "test");
  EXPECT_EQ(events[0].detail, "detail-1");
  EXPECT_GT(events[0].tid, 0u);
  obs::tracer().clear();
}

TEST(ObsTrace, NestedSpansHaveContainedTimestamps) {
  obs::tracer().clear();
  obs::tracer().set_enabled(true);
  {
    const obs::Span outer("test.obs.outer", "test");
    const obs::Span inner("test.obs.inner", "test");
  }
  obs::tracer().set_enabled(false);
  const auto events = obs::tracer().events();  // sorted by start time
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "test.obs.outer");
  EXPECT_STREQ(events[1].name, "test.obs.inner");
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_LE(events[1].ts_ns + events[1].dur_ns, events[0].ts_ns + events[0].dur_ns);
  obs::tracer().clear();
}

TEST(ObsTrace, ChromeJsonParsesBackWithPerThreadIds) {
  obs::tracer().clear();
  obs::tracer().set_enabled(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < 10; ++i) {
        const obs::Span s("test.obs.worker", "test", "iteration");
      }
    });
  for (auto& t : threads) t.join();
  obs::tracer().set_enabled(false);

  const Json trace = parse_json(obs::tracer().to_chrome_json());
  ASSERT_EQ(trace.kind, Json::Kind::Object);
  EXPECT_EQ(trace.at("displayTimeUnit").str, "ms");
  const Json& events = trace.at("traceEvents");
  ASSERT_EQ(events.kind, Json::Kind::Array);

  std::size_t spans = 0, metadata = 0;
  std::map<double, std::size_t> by_tid;
  for (const Json& e : events.array) {
    ASSERT_TRUE(e.has("name"));
    ASSERT_TRUE(e.has("ph"));
    ASSERT_TRUE(e.has("pid"));
    ASSERT_TRUE(e.has("tid"));
    if (e.at("ph").str == "M") {
      ++metadata;
      continue;
    }
    ASSERT_EQ(e.at("ph").str, "X");
    ASSERT_TRUE(e.has("cat"));
    ASSERT_TRUE(e.has("ts"));
    ASSERT_TRUE(e.has("dur"));
    EXPECT_GE(e.at("dur").number, 0.0);
    ++spans;
    ++by_tid[e.at("tid").number];
  }
  EXPECT_EQ(spans, 40u);
  EXPECT_EQ(by_tid.size(), 4u);  // one tid per recording thread
  EXPECT_EQ(metadata, by_tid.size());
  for (const auto& [tid, n] : by_tid) EXPECT_EQ(n, 10u);
  obs::tracer().clear();
}

TEST(ObsTrace, ClearDropsEvents) {
  obs::tracer().set_enabled(true);
  { const obs::Span s("test.obs.cleared", "test"); }
  obs::tracer().set_enabled(false);
  obs::tracer().clear();
  EXPECT_TRUE(obs::tracer().events().empty());
}

#endif  // RCT_OBS_ENABLED

}  // namespace
