// src/obs tests: histogram bucket semantics, counter exactness under
// concurrency (run under TSan by scripts/check.sh), Chrome-trace JSON
// well-formedness (parsed back with a minimal JSON reader below) and
// metrics snapshot schema stability.
//
// All tests share the process-global registry/tracer, so each one works on
// uniquely-named instruments or resets/disarms what it touched.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "robust/error.hpp"

namespace {

using namespace rct;

// --- minimal recursive-descent JSON reader (tests only) ---------------------

struct Json {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  [[nodiscard]] const Json& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }
  char peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) throw std::runtime_error(std::string("expected '") + c + "'");
    ++pos_;
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return keyword("true", bool_value(true));
      case 'f': return keyword("false", bool_value(false));
      case 'n': return keyword("null", Json{});
      default: return number();
    }
  }

  static Json bool_value(bool b) {
    Json v;
    v.kind = Json::Kind::Bool;
    v.boolean = b;
    return v;
  }

  Json keyword(std::string_view word, Json v) {
    if (text_.substr(pos_, word.size()) != word) throw std::runtime_error("bad keyword");
    pos_ += word.size();
    return v;
  }

  Json object() {
    Json v;
    v.kind = Json::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      Json key = string_value();
      skip_ws();
      expect(':');
      v.object.emplace(std::move(key.str), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    Json v;
    v.kind = Json::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Json string_value() {
    Json v;
    v.kind = Json::Kind::String;
    expect('"');
    while (peek() != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u': {
            const unsigned long code = std::stoul(std::string(text_.substr(pos_, 4)), nullptr, 16);
            pos_ += 4;
            c = static_cast<char>(code);  // tests only emit ASCII escapes
            break;
          }
          default: throw std::runtime_error("bad escape");
        }
      }
      v.str += c;
    }
    ++pos_;
    return v;
  }

  Json number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) throw std::runtime_error("bad number");
    Json v;
    v.kind = Json::Kind::Number;
    v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Json parse_json(const std::string& text) { return JsonParser(text).parse(); }

// --- histograms -------------------------------------------------------------

TEST(ObsHistogram, BucketBoundariesAreUpperInclusive) {
  obs::Histogram h({1.0, 2.0, 5.0});
  for (const double v : {0.5, 1.0, 1.5, 2.0, 5.0, 6.0}) h.observe(v);
  // le semantics: a sample lands in the first bucket whose bound >= value.
  EXPECT_EQ(h.bucket_count(0), 2u);  // 0.5, 1.0
  EXPECT_EQ(h.bucket_count(1), 2u);  // 1.5, 2.0
  EXPECT_EQ(h.bucket_count(2), 1u);  // 5.0
  EXPECT_EQ(h.bucket_count(3), 1u);  // 6.0 -> +inf overflow
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 6.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 6.0);
}

TEST(ObsHistogram, EmptyHistogramHasZeroStats) {
  obs::Histogram h({1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(ObsHistogram, RejectsNonIncreasingBounds) {
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(ObsHistogram, DefaultLatencyBoundsAreStrictlyIncreasing) {
  const auto& b = obs::Histogram::default_latency_bounds();
  ASSERT_GE(b.size(), 20u);
  EXPECT_DOUBLE_EQ(b.front(), 1e-6);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
}

TEST(ObsHistogram, ResetZeroes) {
  obs::Histogram h({1.0});
  h.observe(0.5);
  h.observe(2.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(0), 0u);
  EXPECT_EQ(h.bucket_count(1), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

// --- counters / gauges under concurrency ------------------------------------

TEST(ObsConcurrency, CounterIsExactUnder8Threads) {
  obs::Counter& c = obs::registry().counter("test.obs.concurrent_counter");
  c.reset();
  constexpr std::size_t kThreads = 8, kPerThread = 20000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (std::size_t i = 0; i < kPerThread; ++i) c.add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsConcurrency, HistogramCountAndSumAreExactUnder8Threads) {
  obs::Histogram& h = obs::registry().histogram("test.obs.concurrent_hist_seconds");
  h.reset();
  constexpr std::size_t kThreads = 8, kPerThread = 5000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&h] {
      for (std::size_t i = 0; i < kPerThread; ++i) h.observe(1e-5);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_NEAR(h.sum(), 1e-5 * static_cast<double>(kThreads * kPerThread), 1e-9);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i <= h.bounds().size(); ++i) bucket_total += h.bucket_count(i);
  EXPECT_EQ(bucket_total, h.count());
}

TEST(ObsConcurrency, GaugeAddIsExactUnder8Threads) {
  obs::Gauge& g = obs::registry().gauge("test.obs.concurrent_gauge");
  g.reset();
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 8; ++t)
    threads.emplace_back([&g] {
      for (std::size_t i = 0; i < 5000; ++i) g.add(1.0);
    });
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), 40000.0);
}

TEST(ObsGauge, SetAndMaxOf) {
  obs::Gauge g;
  g.set(3.0);
  g.max_of(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.max_of(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

// --- registry ---------------------------------------------------------------

TEST(ObsRegistry, SameNameReturnsSameInstrument) {
  obs::Counter& a = obs::registry().counter("test.obs.same_name");
  obs::Counter& b = obs::registry().counter("test.obs.same_name");
  EXPECT_EQ(&a, &b);
}

TEST(ObsRegistry, CounterValueOfAbsentNameIsZero) {
  EXPECT_EQ(obs::registry().counter_value("test.obs.never_created"), 0u);
}

TEST(ObsRegistry, ResetZeroesButKeepsReferencesValid) {
  obs::Counter& c = obs::registry().counter("test.obs.reset_counter");
  c.add(5);
  obs::registry().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);  // the reference survives reset
  EXPECT_EQ(obs::registry().counter_value("test.obs.reset_counter"), 2u);
}

TEST(ObsRegistry, ScopedTimerObservesElapsedSeconds) {
  obs::Histogram& h = obs::registry().histogram("test.obs.timer_seconds");
  h.reset();
  { const obs::ScopedTimer t(h); }
#if RCT_OBS_ENABLED
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.min(), 0.0);
  EXPECT_LT(h.max(), 1.0);  // an empty scope is far below a second
#else
  EXPECT_EQ(h.count(), 0u);
#endif
}

// --- metrics snapshot schema ------------------------------------------------

TEST(ObsSnapshot, SchemaIsStableAndParsesBack) {
  obs::registry().counter("test.obs.snap_counter").add(3);
  obs::registry().gauge("test.obs.snap_gauge").set(2.5);
  obs::Histogram& h = obs::registry().histogram("test.obs.snap_hist_seconds");
  h.reset();
  h.observe(1e-3);

  const Json snap = parse_json(obs::registry().to_json());
  ASSERT_EQ(snap.kind, Json::Kind::Object);
  EXPECT_DOUBLE_EQ(snap.at("schema_version").number, 1.0);
  ASSERT_EQ(snap.at("counters").kind, Json::Kind::Object);
  ASSERT_EQ(snap.at("gauges").kind, Json::Kind::Object);
  ASSERT_EQ(snap.at("histograms").kind, Json::Kind::Object);

  EXPECT_DOUBLE_EQ(snap.at("counters").at("test.obs.snap_counter").number, 3.0);
  EXPECT_DOUBLE_EQ(snap.at("gauges").at("test.obs.snap_gauge").number, 2.5);

  const Json& hist = snap.at("histograms").at("test.obs.snap_hist_seconds");
  ASSERT_EQ(hist.at("buckets").kind, Json::Kind::Array);
  ASSERT_EQ(hist.at("buckets").array.size(), h.bounds().size() + 1);
  // Every bucket entry is {"le": number-or-"inf", "count": n}; the last is inf.
  for (const Json& bucket : hist.at("buckets").array) {
    EXPECT_TRUE(bucket.has("le"));
    EXPECT_TRUE(bucket.has("count"));
  }
  EXPECT_EQ(hist.at("buckets").array.back().at("le").str, "inf");
  EXPECT_DOUBLE_EQ(hist.at("count").number, 1.0);
  EXPECT_NEAR(hist.at("sum").number, 1e-3, 1e-12);
  EXPECT_TRUE(hist.has("min"));
  EXPECT_TRUE(hist.has("max"));
  // Quantile summaries ride along (additive — still schema_version 1).
  EXPECT_TRUE(hist.has("p50"));
  EXPECT_TRUE(hist.has("p95"));
  EXPECT_TRUE(hist.has("p99"));
  EXPECT_NEAR(hist.at("p50").number, 1e-3, 1e-9);
}

// --- tracing ----------------------------------------------------------------

#if RCT_OBS_ENABLED

TEST(ObsTrace, SpanRecordsOnlyWhileArmed) {
  obs::tracer().clear();
  obs::tracer().set_enabled(false);
  { const obs::Span s("test.obs.disarmed", "test"); }
  EXPECT_TRUE(obs::tracer().events().empty());

  obs::tracer().set_enabled(true);
  { const obs::Span s("test.obs.armed", "test", "detail-1"); }
  obs::tracer().set_enabled(false);
  const auto events = obs::tracer().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.obs.armed");
  EXPECT_STREQ(events[0].cat, "test");
  EXPECT_EQ(events[0].detail, "detail-1");
  EXPECT_GT(events[0].tid, 0u);
  obs::tracer().clear();
}

TEST(ObsTrace, NestedSpansHaveContainedTimestamps) {
  obs::tracer().clear();
  obs::tracer().set_enabled(true);
  {
    const obs::Span outer("test.obs.outer", "test");
    const obs::Span inner("test.obs.inner", "test");
  }
  obs::tracer().set_enabled(false);
  const auto events = obs::tracer().events();  // sorted by start time
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "test.obs.outer");
  EXPECT_STREQ(events[1].name, "test.obs.inner");
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_LE(events[1].ts_ns + events[1].dur_ns, events[0].ts_ns + events[0].dur_ns);
  obs::tracer().clear();
}

TEST(ObsTrace, ChromeJsonParsesBackWithPerThreadIds) {
  obs::tracer().clear();
  obs::tracer().set_enabled(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < 10; ++i) {
        const obs::Span s("test.obs.worker", "test", "iteration");
      }
    });
  for (auto& t : threads) t.join();
  obs::tracer().set_enabled(false);

  const Json trace = parse_json(obs::tracer().to_chrome_json());
  ASSERT_EQ(trace.kind, Json::Kind::Object);
  EXPECT_EQ(trace.at("displayTimeUnit").str, "ms");
  const Json& events = trace.at("traceEvents");
  ASSERT_EQ(events.kind, Json::Kind::Array);

  std::size_t spans = 0, metadata = 0;
  std::map<double, std::size_t> by_tid;
  for (const Json& e : events.array) {
    ASSERT_TRUE(e.has("name"));
    ASSERT_TRUE(e.has("ph"));
    ASSERT_TRUE(e.has("pid"));
    ASSERT_TRUE(e.has("tid"));
    if (e.at("ph").str == "M") {
      ++metadata;
      continue;
    }
    ASSERT_EQ(e.at("ph").str, "X");
    ASSERT_TRUE(e.has("cat"));
    ASSERT_TRUE(e.has("ts"));
    ASSERT_TRUE(e.has("dur"));
    EXPECT_GE(e.at("dur").number, 0.0);
    ++spans;
    ++by_tid[e.at("tid").number];
  }
  EXPECT_EQ(spans, 40u);
  EXPECT_EQ(by_tid.size(), 4u);  // one tid per recording thread
  EXPECT_EQ(metadata, by_tid.size());
  for (const auto& [tid, n] : by_tid) EXPECT_EQ(n, 10u);
  obs::tracer().clear();
}

TEST(ObsTrace, ClearDropsEvents) {
  obs::tracer().set_enabled(true);
  { const obs::Span s("test.obs.cleared", "test"); }
  obs::tracer().set_enabled(false);
  obs::tracer().clear();
  EXPECT_TRUE(obs::tracer().events().empty());
}

#endif  // RCT_OBS_ENABLED

// --- quantile estimation ----------------------------------------------------

TEST(ObsQuantile, EmptyHistogramIsZero) {
  const obs::Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(ObsQuantile, AllSamplesInOneBucketClampToObservedValue) {
  obs::Histogram h({1.0, 2.0, 5.0});
  for (int i = 0; i < 4; ++i) h.observe(1.5);
  // Interpolation inside the (1, 2] bucket is clamped to [min, max] = [1.5, 1.5].
  for (const double q : {0.01, 0.5, 0.99, 1.0}) EXPECT_DOUBLE_EQ(h.quantile(q), 1.5);
}

TEST(ObsQuantile, SampleExactlyOnBucketUpperBound) {
  obs::Histogram h({1.0, 2.0, 5.0});
  h.observe(2.0);  // le semantics: lands in the (1, 2] bucket, not (2, 5]
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
}

TEST(ObsQuantile, MassInOverflowBucketStaysWithinObservedRange) {
  obs::Histogram h({1.0});
  h.observe(5.0);
  h.observe(10.0);  // both land in the +Inf bucket, which has no upper bound
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 5.0);
  EXPECT_LE(p50, 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);  // capped at the observed max
}

TEST(ObsQuantile, MonotoneInQ) {
  obs::Histogram h({1.0, 2.0, 5.0, 10.0});
  for (const double v : {0.5, 1.5, 1.7, 3.0, 4.0, 7.0, 9.0, 12.0}) h.observe(v);
  double prev = h.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev) << "quantile not monotone at q=" << q;
    prev = cur;
  }
  EXPECT_GE(h.quantile(0.0), 0.5);
  EXPECT_LE(h.quantile(1.0), 12.0);
}

TEST(ObsConcurrency, QuantileIsSaneUnder8ConcurrentObservers) {
  obs::Histogram& h = obs::registry().histogram("test.obs.concurrent_quantile");
  h.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h] {
      for (int i = 1; i <= kPerThread; ++i)
        h.observe(1e-6 * static_cast<double>(i % 1000 + 1));
    });
  // Read quantiles while the observers hammer the histogram: the estimate
  // may lag in-flight samples but must stay inside the possible range.
  for (int i = 0; i < 200; ++i) {
    const double p95 = h.quantile(0.95);
    EXPECT_GE(p95, 0.0);
    EXPECT_LE(p95, 1e-3 + 1e-9);
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const double p50 = h.quantile(0.5);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 1e-3 + 1e-9);
}

// --- Prometheus exposition --------------------------------------------------

TEST(ObsPrometheus, CountersGaugesAndHistogramsExposeSanitizedNames) {
  obs::registry().reset();
  obs::registry().counter("test.prom.counter").add(7);
  obs::registry().gauge("test.prom.gauge").set(1.5);
  obs::Histogram& h = obs::registry().histogram("test.prom.hist_seconds");
  h.observe(3e-6);
  h.observe(100.0);  // overflow bucket

  const std::string text = obs::registry().to_prometheus();
  EXPECT_NE(text.find("# HELP rct_test_prom_counter rct counter test.prom.counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rct_test_prom_counter counter\n"), std::string::npos);
  EXPECT_NE(text.find("rct_test_prom_counter 7\n"), std::string::npos);
  EXPECT_NE(text.find("rct_test_prom_gauge 1.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rct_test_prom_hist_seconds histogram\n"), std::string::npos);
  EXPECT_NE(text.find("rct_test_prom_hist_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("rct_test_prom_hist_seconds_count 2\n"), std::string::npos);
}

TEST(ObsPrometheus, HistogramBucketsAreCumulative) {
  obs::registry().reset();
  obs::Histogram& h = obs::registry().histogram("test.prom.cumulative");
  (void)h;
  obs::registry().histogram("test.prom.cumulative");  // same instrument
  h.observe(1.5e-6);
  h.observe(3e-6);
  h.observe(3e-6);

  const std::string text = obs::registry().to_prometheus();
  // Parse every bucket line of this histogram and check the counts never
  // decrease as le increases (exposition order is ascending le).
  std::uint64_t prev = 0;
  std::size_t buckets = 0;
  std::size_t pos = 0;
  const std::string needle = "rct_test_prom_cumulative_bucket{le=\"";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    const std::size_t count_at = text.find("} ", pos);
    ASSERT_NE(count_at, std::string::npos);
    const std::uint64_t count = std::strtoull(text.c_str() + count_at + 2, nullptr, 10);
    EXPECT_GE(count, prev);
    prev = count;
    ++buckets;
    ++pos;
  }
  EXPECT_GT(buckets, 2u);
  EXPECT_EQ(prev, 3u);  // +Inf bucket holds every sample
}

// --- structured log ---------------------------------------------------------

TEST(ObsLog, ParseLevelRoundTrips) {
  obs::log::Level level = obs::log::Level::kOff;
  EXPECT_TRUE(obs::log::parse_level("debug", level));
  EXPECT_EQ(level, obs::log::Level::kDebug);
  EXPECT_TRUE(obs::log::parse_level("warn", level));
  EXPECT_EQ(level, obs::log::Level::kWarn);
  EXPECT_FALSE(obs::log::parse_level("verbose", level));
  EXPECT_EQ(level, obs::log::Level::kWarn);  // untouched on failure
}

/// Reads a whole file into a string.
std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    if (end > pos) lines.push_back(text.substr(pos, end - pos));
    pos = end + 1;
  }
  return lines;
}

TEST(ObsLog, EmitsParseableJsonLinesAndFiltersByLevel) {
  const std::string path = testing::TempDir() + "rct_obs_log_test.jsonl";
  obs::log::Logger& log = obs::log::logger();
  ASSERT_TRUE(log.open(path));
  log.set_level(obs::log::Level::kInfo);
  EXPECT_TRUE(log.enabled(obs::log::Level::kWarn));
  EXPECT_FALSE(log.enabled(obs::log::Level::kDebug));

  obs::log::debug("test.log.suppressed", {{"n", std::uint64_t{1}}});
  obs::log::info("test.log.kept",
                 {{"net", "clk\"quoted\""}, {"count", std::uint64_t{3}}, {"ok", true},
                  {"ratio", 0.5}});
  obs::log::warn("test.log.warned", {});
  log.close();
  EXPECT_FALSE(log.enabled(obs::log::Level::kError));  // sink detached

  const std::vector<std::string> lines = lines_of(slurp(path));
  ASSERT_EQ(lines.size(), 2u);
  const Json first = parse_json(lines[0]);
  EXPECT_EQ(first.at("event").str, "test.log.kept");
  EXPECT_EQ(first.at("level").str, "info");
  EXPECT_GT(first.at("ts_us").number, 0.0);
  EXPECT_EQ(first.at("net").str, "clk\"quoted\"");  // escaping round-trips
  EXPECT_DOUBLE_EQ(first.at("count").number, 3.0);
  EXPECT_EQ(first.at("ok").kind, Json::Kind::Bool);
  EXPECT_DOUBLE_EQ(first.at("ratio").number, 0.5);
  EXPECT_EQ(parse_json(lines[1]).at("event").str, "test.log.warned");
  std::remove(path.c_str());
}

TEST(ObsLog, RateLimiterShedsAndReportsDrops) {
  const std::string path = testing::TempDir() + "rct_obs_log_rate_test.jsonl";
  obs::log::Logger& log = obs::log::logger();
  ASSERT_TRUE(log.open(path));
  log.set_level(obs::log::Level::kInfo);
  log.set_rate_limit(10);  // tiny budget: the burst is 10 events
  const std::uint64_t dropped_before = log.dropped();
  for (int i = 0; i < 1000; ++i) obs::log::info("test.log.flood", {});
  log.close();
  log.set_rate_limit(10000);  // restore the default for other tests

  EXPECT_GT(log.dropped(), dropped_before);
  const std::vector<std::string> lines = lines_of(slurp(path));
  // Far fewer lines than emits, and the tail records the shed count.
  EXPECT_LT(lines.size(), 1000u);
  ASSERT_FALSE(lines.empty());
  bool saw_drop_report = false;
  for (const std::string& line : lines)
    if (parse_json(line).at("event").str == "obs.log.dropped") saw_drop_report = true;
  EXPECT_TRUE(saw_drop_report);
  std::remove(path.c_str());
}

TEST(ObsLog, ConcurrentEmittersProduceWholeLines) {
  const std::string path = testing::TempDir() + "rct_obs_log_mt_test.jsonl";
  obs::log::Logger& log = obs::log::logger();
  ASSERT_TRUE(log.open(path));
  log.set_level(obs::log::Level::kInfo);
  log.set_rate_limit(0);  // unlimited: this test wants every line
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i)
        obs::log::info("test.log.mt", {{"thread", static_cast<std::uint64_t>(t)}});
    });
  for (std::thread& t : threads) t.join();
  log.close();
  log.set_rate_limit(10000);

  const std::vector<std::string> lines = lines_of(slurp(path));
  EXPECT_EQ(lines.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  for (const std::string& line : lines) EXPECT_NO_THROW((void)parse_json(line));
  std::remove(path.c_str());
}

// --- flight recorder --------------------------------------------------------

TEST(ObsFlight, DisarmedRecorderRecordsNothing) {
  obs::flight::Recorder rec(8);
  auto h = rec.begin("net_a", "analyze");
  rec.end(h, obs::flight::Outcome::kOk);
  rec.record("net_b", "analyze", obs::flight::Outcome::kFailed, robust::Code::kTaskFailure, 5);
  EXPECT_TRUE(rec.events().empty());
}

TEST(ObsFlight, BeginEndCompletesEventInPlace) {
  obs::flight::Recorder rec(8);
  rec.set_enabled(true);
  auto h = rec.begin("net_a", "analyze");
  {
    const auto running = rec.events();
    ASSERT_EQ(running.size(), 1u);
    EXPECT_EQ(running[0].outcome, obs::flight::Outcome::kRunning);
  }
  rec.end(h, obs::flight::Outcome::kTimeout, robust::Code::kTimeout);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].net, "net_a");
  EXPECT_STREQ(events[0].phase, "analyze");
  EXPECT_EQ(events[0].outcome, obs::flight::Outcome::kTimeout);
  EXPECT_EQ(events[0].code, robust::Code::kTimeout);
}

TEST(ObsFlight, RingEvictsOldestAndCounts) {
  obs::flight::Recorder rec(4);
  rec.set_enabled(true);
  for (int i = 0; i < 10; ++i)
    rec.record("net_" + std::to_string(i), "analyze", obs::flight::Outcome::kOk,
               robust::Code::kNone, 1);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);  // ring capacity
  EXPECT_EQ(rec.evicted(), 6u);
  // The survivors are the newest four, still in begin order.
  EXPECT_STREQ(events[0].net, "net_6");
  EXPECT_STREQ(events[3].net, "net_9");
}

TEST(ObsFlight, LongNetNamesAreTruncatedNotOverflowed) {
  obs::flight::Recorder rec(4);
  rec.set_enabled(true);
  const std::string lang(200, 'x');
  rec.record(lang, "analyze", obs::flight::Outcome::kOk, robust::Code::kNone, 1);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].net).size(), obs::flight::Event::kNetCapacity - 1);
}

TEST(ObsFlight, JsonDumpParsesBackWithSchemaVersion) {
  obs::flight::Recorder rec(8);
  rec.set_enabled(true);
  rec.record("net_a", "analyze", obs::flight::Outcome::kFailed, robust::Code::kNanValue, 42);
  const Json dump = parse_json(rec.to_json());
  EXPECT_DOUBLE_EQ(dump.at("schema_version").number, 1.0);
  EXPECT_DOUBLE_EQ(dump.at("evicted").number, 0.0);
  ASSERT_EQ(dump.at("events").array.size(), 1u);
  const Json& e = dump.at("events").array[0];
  EXPECT_EQ(e.at("net").str, "net_a");
  EXPECT_EQ(e.at("phase").str, "analyze");
  EXPECT_EQ(e.at("outcome").str, "failed");
  EXPECT_EQ(e.at("code").str, "nan-value");
  EXPECT_DOUBLE_EQ(e.at("dur_ns").number, 42.0);
}

TEST(ObsFlight, EventsMergeAcrossThreadsBySequence) {
  obs::flight::Recorder rec(64);
  rec.set_enabled(true);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < 8; ++i)
        rec.record("net_t" + std::to_string(t), "analyze", obs::flight::Outcome::kOk,
                   robust::Code::kNone, 1);
    });
  for (std::thread& t : threads) t.join();
  const auto events = rec.events();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads) * 8);
  for (std::size_t i = 1; i < events.size(); ++i) EXPECT_LT(events[i - 1].seq, events[i].seq);
  std::vector<std::uint32_t> tids;
  for (const auto& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST(ObsFlight, FormatTextNamesFailedNets) {
  obs::flight::Recorder rec(8);
  rec.set_enabled(true);
  rec.record("net_bad", "retry", obs::flight::Outcome::kFailed, robust::Code::kTaskFailure, 1000);
  const std::string text = rec.format_text();
  EXPECT_NE(text.find("net_bad"), std::string::npos);
  EXPECT_NE(text.find("retry"), std::string::npos);
  EXPECT_NE(text.find("failed"), std::string::npos);
  EXPECT_NE(text.find("task-failure"), std::string::npos);
}

}  // namespace
