// src/server tests: the NDJSON protocol codec, the content-addressed
// DiskStore (round trip, restart, corruption), and the Server itself —
// driven both in-process through handle_line() and end-to-end over real
// sockets with concurrent clients (the TSan workload).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/report.hpp"
#include "engine/net_cache.hpp"
#include "obs/metrics.hpp"
#include "rctree/generators.hpp"
#include "rctree/spef.hpp"
#include "robust/fault.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/request_trace.hpp"
#include "server/server.hpp"
#include "server/store.hpp"

#ifndef RCT_TESTDATA_DIR
#define RCT_TESTDATA_DIR "testdata"
#endif

namespace {

using namespace rct;

/// Fresh scratch directory under /tmp, removed on destruction.
struct ScratchDir {
  std::string path;
  explicit ScratchDir(const char* tag) {
    path = "/tmp/rct_server_test_" + std::string(tag) + "_" +
           std::to_string(static_cast<unsigned long>(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() { std::filesystem::remove_all(path); }
};

/// Writes a small generated SPEF deck (deterministic content per seed).
std::string write_deck(const std::string& dir, const char* name, std::size_t nets,
                       std::size_t nodes, std::uint64_t seed) {
  SpefFile file;
  file.design = name;
  for (std::size_t i = 0; i < nets; ++i) {
    SpefNet net;
    net.name = "net_" + std::to_string(i);
    net.tree = gen::random_tree(nodes, seed + i);
    net.driver = "drv";  // separate port name; the tree root is its far end
    for (const NodeId leaf : net.tree.leaves()) net.loads.push_back(leaf);
    file.nets.push_back(std::move(net));
  }
  const std::string path = dir + "/" + name + ".spef";
  std::ofstream out(path);
  out << write_spef(file);
  return path;
}

std::vector<core::NodeReport> sample_rows(std::size_t nodes, std::uint64_t seed) {
  const RCTree tree = gen::random_tree(nodes, seed);
  return core::build_report(tree);
}

/// Minimal HTTP/1.0 GET over a raw TCP socket; returns the full response
/// (status line through body) or "" on any socket failure.  Deliberately
/// does not reuse HttpServer-side code, so the wire format is checked by an
/// independent peer.
std::string http_request(int port, const std::string& request_text) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request_text.size()) {
    const ssize_t n = ::send(fd, request_text.data() + sent, request_text.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(int port, const std::string& path) {
  return http_request(port, "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n");
}

/// Raw unix-socket connect, for tests that need byte-level control of the
/// NDJSON stream (short reads, oversized lines, silent stalls).
int unix_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Reads one newline-terminated line ("" on EOF before any byte).
std::string recv_line(int fd) {
  std::string line;
  char c = 0;
  for (;;) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n <= 0 || c == '\n') break;
    line.push_back(c);
  }
  return line;
}

// ---------------------------------------------------------------- protocol

TEST(Protocol, EncodeParseRoundTrip) {
  server::Request request;
  request.id = 42;
  request.cmd = "report";
  request.design = "a1b2c3d4e5f6";
  request.net = "clk \"7\"\n";  // quotes and newline must survive escaping
  request.leaves_only = true;
  request.with_exact = false;
  request.has_with_exact = true;
  request.exact_limit = 500;
  request.timeout_ms = 250;
  request.fraction = 0.9;

  const std::string line = server::encode_request(request);
  const server::ParsedRequest parsed = server::parse_request(line);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const server::Request& r = parsed.request;
  EXPECT_EQ(r.id, 42u);
  EXPECT_EQ(r.cmd, "report");
  EXPECT_EQ(r.design, "a1b2c3d4e5f6");
  EXPECT_EQ(r.net, request.net);
  EXPECT_TRUE(r.leaves_only);
  EXPECT_TRUE(r.has_with_exact);
  EXPECT_FALSE(r.with_exact);
  EXPECT_EQ(r.exact_limit, 500u);
  EXPECT_EQ(r.timeout_ms, 250u);
  EXPECT_DOUBLE_EQ(r.fraction, 0.9);
  // encode(parse(encode(x))) is a fixed point.
  EXPECT_EQ(server::encode_request(r), line);
}

TEST(Protocol, DefaultsOmittedAndAbsentFieldsStayDefault) {
  server::Request request;
  request.id = 1;
  request.cmd = "ping";
  const std::string line = server::encode_request(request);
  EXPECT_EQ(line, "{\"id\":1,\"cmd\":\"ping\"}");
  const server::ParsedRequest parsed = server::parse_request(line);
  ASSERT_TRUE(parsed.ok);
  EXPECT_FALSE(parsed.request.has_with_exact);
  EXPECT_TRUE(parsed.request.with_exact);  // default stays on
  EXPECT_EQ(parsed.request.timeout_ms, 0u);
}

TEST(Protocol, ToleratesWhitespaceUnknownKeysAndNull) {
  const server::ParsedRequest parsed = server::parse_request(
      "  { \"cmd\" : \"load\" , \"path\" : \"a.spef\", \"future_knob\": 17,"
      " \"nested\": {\"x\": [1,2]}, \"design\": null }  ");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.request.cmd, "load");
  EXPECT_EQ(parsed.request.path, "a.spef");
  EXPECT_TRUE(parsed.request.design.empty());
}

TEST(Protocol, RejectsMalformedLines) {
  EXPECT_FALSE(server::parse_request("").ok);
  EXPECT_FALSE(server::parse_request("not json").ok);
  EXPECT_FALSE(server::parse_request("{\"cmd\":\"ping\"").ok);        // unterminated
  EXPECT_FALSE(server::parse_request("{\"id\":1}").ok);               // missing cmd
  EXPECT_FALSE(server::parse_request("{\"cmd\":\"x\"} trailing").ok); // trailing bytes
  EXPECT_FALSE(server::parse_request("{\"cmd\":\"x\",\"id\":\"seven\"}").ok);  // bad type
}

TEST(Protocol, TraceContextRoundTrip) {
  server::Request request;
  request.id = 9;
  request.cmd = "report";
  request.net = "clk";
  request.trace = "0123456789abcdef";
  request.span = "fedcba9876543210";
  const std::string line = server::encode_request(request);
  EXPECT_NE(line.find("\"trace\":\"0123456789abcdef\""), std::string::npos);
  const server::ParsedRequest parsed = server::parse_request(line);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.request.trace, request.trace);
  EXPECT_EQ(parsed.request.span, request.span);
  EXPECT_EQ(server::encode_request(parsed.request), line);
  // Untraced requests stay byte-identical to the pre-trace wire format.
  server::Request plain;
  plain.id = 1;
  plain.cmd = "ping";
  EXPECT_EQ(server::encode_request(plain), "{\"id\":1,\"cmd\":\"ping\"}");
}

// ------------------------------------------------------------ request trace

TEST(RequestTrace, StoreRecordsFetchesAndEvictsFifo) {
  server::RequestTraceStore store(2);
  store.record("aaaa", {"server.request", "report clk", 100, 50});
  store.record("aaaa", {"server.render", "", 120, 10});
  store.record("bbbb", {"server.request", "", 200, 5});
  EXPECT_EQ(store.size(), 2u);

  const std::vector<server::TraceSpan> spans = store.fetch("aaaa");
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "server.request");
  EXPECT_EQ(spans[0].detail, "report clk");
  EXPECT_EQ(spans[1].ts_ns, 120u);

  // A third trace evicts the oldest ("aaaa"); known ids stay resident.
  store.record("cccc", {"server.request", "", 300, 5});
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.fetch("aaaa").empty());
  EXPECT_FALSE(store.fetch("bbbb").empty());
  EXPECT_TRUE(store.fetch("unknown").empty());

  // Empty ids are dropped, not recorded under "".
  store.record("", {"x", "", 1, 1});
  EXPECT_TRUE(store.fetch("").empty());
}

TEST(RequestTrace, SpanJsonRoundTripAndTolerance) {
  const std::vector<server::TraceSpan> spans = {
      {"server.request", "report \"clk\"\n", 1234567890123ULL, 4567ULL},
      {"server.queue_wait", "", 0, 12},
  };
  std::string payload = "{\"id\":1,\"ok\":true,";
  server::append_trace_spans_json(payload, spans);
  payload.push_back('}');

  std::vector<server::TraceSpan> back;
  ASSERT_TRUE(server::parse_trace_spans(payload, back));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name, spans[0].name);
  EXPECT_EQ(back[0].detail, spans[0].detail);  // escapes survive
  EXPECT_EQ(back[0].ts_ns, spans[0].ts_ns);
  EXPECT_EQ(back[0].dur_ns, spans[0].dur_ns);
  EXPECT_EQ(back[1].name, "server.queue_wait");
  EXPECT_TRUE(back[1].detail.empty());

  // Unknown keys from a newer server are skipped, not fatal.
  std::vector<server::TraceSpan> tolerant;
  ASSERT_TRUE(server::parse_trace_spans(
      "{\"spans\":[{\"name\":\"x\",\"ts_ns\":5,\"dur_ns\":2,\"cpu\":\"7\",\"flags\":3}]}",
      tolerant));
  ASSERT_EQ(tolerant.size(), 1u);
  EXPECT_EQ(tolerant[0].ts_ns, 5u);

  // Empty array and malformed payloads.
  std::vector<server::TraceSpan> empty;
  EXPECT_TRUE(server::parse_trace_spans("{\"ok\":true,\"spans\":[]}", empty));
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(server::parse_trace_spans("{\"ok\":true}", empty));
  EXPECT_FALSE(server::parse_trace_spans("{\"spans\":[{\"name\":}", empty));
}

TEST(RequestTrace, RebaseCentersServerRootInClientWindow) {
  // Server clock is wildly offset from the client's; the root span is 40ns
  // of handling inside a 100ns client window, so 30ns of slack lands on
  // each leg after the midpoint rebase.
  std::vector<server::TraceSpan> spans = {
      {"server.request", "", 900100, 40},
      {"server.render", "", 900120, 10},
  };
  server::rebase_spans(spans, 1000, 1100);
  EXPECT_EQ(spans[0].ts_ns, 1030u);  // 1000 + (100 - 40) / 2
  EXPECT_EQ(spans[1].ts_ns, 1050u);  // relative offset +20 preserved
  EXPECT_EQ(spans[0].dur_ns, 40u);   // durations never change

  // A server clock far ahead shifts spans backward, clamping at zero
  // rather than wrapping.
  std::vector<server::TraceSpan> ahead = {{"server.request", "", 5000, 10}};
  server::rebase_spans(ahead, 0, 4);
  EXPECT_EQ(ahead[0].ts_ns, 0u);
}

TEST(RequestTrace, StitchedChromeJsonCarriesBothProcesses) {
  server::StitchedTrace trace;
  trace.trace_id = "00ff00ff00ff00ff";
  trace.client_spans = {{"client.request", "report clk", 100, 90}};
  trace.server_spans = {{"server.request", "report clk", 120, 40}};
  const std::string json = server::stitched_chrome_json({trace});
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rct client\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rct serve\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"client.request\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"server.request\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\":\"00ff00ff00ff00ff\""), std::string::npos);
  // ts/dur are fixed-format microseconds (0.100, 0.090) — no exponents.
  EXPECT_NE(json.find("\"ts\":0.100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":0.090"), std::string::npos);
}

TEST(RequestTrace, GeneratedIdsAreDistinctSixteenHex) {
  const std::string a = server::generate_trace_id();
  const std::string b = server::generate_trace_id();
  EXPECT_EQ(a.size(), 16u);
  EXPECT_NE(a, b);
  for (const char c : a)
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << a;
}

TEST(Protocol, ErrorResponseShape) {
  const std::string line = server::error_response(7, "timeout", "deadline \"exceeded\"");
  EXPECT_NE(line.find("\"id\":7"), std::string::npos);
  EXPECT_NE(line.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(line.find("\"code\":\"timeout\""), std::string::npos);
  EXPECT_NE(line.find("\\\"exceeded\\\""), std::string::npos);
  EXPECT_FALSE(server::response_ok(line));
  EXPECT_TRUE(server::response_ok("{\"id\":1,\"ok\":true}"));
}

// ------------------------------------------------------------- serialization

TEST(ReportSerialization, RoundTripsBitExact) {
  std::vector<core::NodeReport> rows = sample_rows(24, 7);
  ASSERT_FALSE(rows.empty());
  rows[0].degraded = true;
  rows[1].exact_delay.reset();  // mixed optional presence
  const std::string blob = core::serialize_report(rows);
  const auto back = core::deserialize_report(blob);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ((*back)[i].name, rows[i].name);
    EXPECT_EQ((*back)[i].depth, rows[i].depth);
    EXPECT_EQ((*back)[i].elmore, rows[i].elmore);  // bit-exact, not approx
    EXPECT_EQ((*back)[i].sigma, rows[i].sigma);
    EXPECT_EQ((*back)[i].exact_delay.has_value(), rows[i].exact_delay.has_value());
    if (rows[i].exact_delay) {
      EXPECT_EQ(*(*back)[i].exact_delay, *rows[i].exact_delay);
    }
    EXPECT_EQ((*back)[i].degraded, rows[i].degraded);
  }
}

TEST(ReportSerialization, RejectsTruncationAndGarbage) {
  const std::vector<core::NodeReport> rows = sample_rows(8, 3);
  const std::string blob = core::serialize_report(rows);
  for (const std::size_t cut : {std::size_t{0}, std::size_t{4}, blob.size() / 2,
                                blob.size() - 1}) {
    EXPECT_FALSE(core::deserialize_report(std::string_view(blob).substr(0, cut)).has_value())
        << "cut at " << cut;
  }
  EXPECT_FALSE(core::deserialize_report(blob + "x").has_value());  // trailing garbage
  std::string huge = blob;
  huge[0] = '\xff';  // row count far beyond the payload
  EXPECT_FALSE(core::deserialize_report(huge).has_value());
}

// ------------------------------------------------------------------ store

TEST(DiskStore, SaveLoadRoundTripAndRestart) {
  const ScratchDir dir("store_rt");
  const RCTree tree = gen::random_tree(16, 11);
  const core::ReportOptions options;
  const engine::NetKey key = engine::NetKey::of(tree, options);
  const std::vector<core::NodeReport> rows = core::build_report(tree, options);
  {
    server::DiskStore store(dir.path);
    ASSERT_TRUE(store.ok()) << store.error();
    EXPECT_FALSE(store.load(key).has_value());  // cold
    store.save(key, rows);
    EXPECT_EQ(store.entry_count(), 1u);
    const auto back = store.load(key);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->size(), rows.size());
    EXPECT_EQ((*back)[1].elmore, rows[1].elmore);
  }
  // A new store instance over the same directory (a "restart") still hits.
  server::DiskStore reopened(dir.path);
  ASSERT_TRUE(reopened.ok());
  const auto back = reopened.load(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), rows.size());
  // A different key (different options) misses without touching the entry.
  core::ReportOptions other;
  other.leaves_only = true;
  EXPECT_FALSE(reopened.load(engine::NetKey::of(tree, other)).has_value());
}

TEST(DiskStore, CorruptEntriesReadAsMissesWithDiagnostic) {
  const ScratchDir dir("store_corrupt");
  const RCTree tree = gen::random_tree(16, 13);
  const engine::NetKey key = engine::NetKey::of(tree, {});
  const std::vector<core::NodeReport> rows = core::build_report(tree);
  server::DiskStore store(dir.path);
  ASSERT_TRUE(store.ok());
  store.save(key, rows);

  // Locate the one entry file.
  std::string entry;
  for (const auto& e : std::filesystem::recursive_directory_iterator(dir.path))
    if (e.is_regular_file()) entry = e.path().string();
  ASSERT_FALSE(entry.empty());
  const auto corrupt_before = obs::registry().counter_value("store.load.corrupt");

  // Bit-flip in the middle: checksum mismatch.
  {
    std::fstream f(entry, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(std::filesystem::file_size(entry) / 2));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  EXPECT_FALSE(store.load(key).has_value());

  // Truncation: shorter than its framing claims.
  store.save(key, rows);
  std::filesystem::resize_file(entry, std::filesystem::file_size(entry) / 2);
  EXPECT_FALSE(store.load(key).has_value());

  // Garbage magic.
  {
    std::ofstream f(entry, std::ios::binary | std::ios::trunc);
    f << "not an rct store entry";
  }
  EXPECT_FALSE(store.load(key).has_value());

  EXPECT_GE(obs::registry().counter_value("store.load.corrupt"), corrupt_before + 3);

  // A save over the damaged slot repairs it.
  store.save(key, rows);
  EXPECT_TRUE(store.load(key).has_value());
}

TEST(DiskStore, UnusableDirectoryDegradesToNoop) {
  server::DiskStore store("/proc/definitely/not/writable");
  EXPECT_FALSE(store.ok());
  EXPECT_FALSE(store.error().empty());
  const engine::NetKey key = engine::NetKey::of(gen::random_tree(4, 1), {});
  store.save(key, sample_rows(4, 1));  // must not throw
  EXPECT_FALSE(store.load(key).has_value());
}

// ---------------------------------------------------- server (in-process)

TEST(Server, HandleLineCommandSurface) {
  const ScratchDir dir("inproc");
  const std::string deck = write_deck(dir.path, "alpha", 3, 12, 100);
  server::ServeOptions options;
  options.jobs = 2;
  server::Server server(options);

  // Unknown command and malformed line fail without killing the server.
  EXPECT_NE(server.handle_line("{\"id\":1,\"cmd\":\"frobnicate\"}")
                .find("\"code\":\"unsupported\""),
            std::string::npos);
  EXPECT_NE(server.handle_line("garbage").find("\"code\":\"syntax\""), std::string::npos);

  // Report before any load: a clean typed error.
  EXPECT_NE(server.handle_line("{\"id\":2,\"cmd\":\"report\",\"net\":\"net_0\"}")
                .find("no design loaded"),
            std::string::npos);

  server::Request load;
  load.id = 3;
  load.cmd = "load";
  load.path = deck;
  const std::string loaded = server.handle_line(server::encode_request(load));
  ASSERT_TRUE(server::response_ok(loaded)) << loaded;
  EXPECT_NE(loaded.find("\"nets\":3"), std::string::npos);

  // First report computes, the repeat is served from memory.
  server::Request report;
  report.id = 4;
  report.cmd = "report";
  report.net = "net_1";
  const std::string first = server.handle_line(server::encode_request(report));
  ASSERT_TRUE(server::response_ok(first)) << first;
  EXPECT_NE(first.find("\"source\":\"computed\""), std::string::npos);
  EXPECT_NE(first.find("\"exact_delay\":"), std::string::npos);
  const std::string second = server.handle_line(server::encode_request(report));
  EXPECT_NE(second.find("\"source\":\"memory\""), std::string::npos);
  EXPECT_EQ(first.substr(first.find("\"rows\"")), second.substr(second.find("\"rows\"")));

  // bounds: leaves only, no exact columns.
  server::Request bounds;
  bounds.id = 5;
  bounds.cmd = "bounds";
  bounds.net = "net_1";
  const std::string b = server.handle_line(server::encode_request(bounds));
  ASSERT_TRUE(server::response_ok(b)) << b;
  EXPECT_EQ(b.find("\"exact_delay\""), std::string::npos);
  EXPECT_NE(b.find("\"prh_tmax\""), std::string::npos);

  // Unknown net.
  EXPECT_NE(server.handle_line("{\"id\":6,\"cmd\":\"report\",\"net\":\"nope\"}")
                .find("unknown net"),
            std::string::npos);

  // stats sees the design and the cache traffic.
  const std::string stats = server.handle_line("{\"id\":7,\"cmd\":\"stats\"}");
  EXPECT_NE(stats.find("\"designs\":1"), std::string::npos);
  EXPECT_NE(stats.find("\"hits\":1"), std::string::npos);

  // evict clears everything; the net is gone until the next load.
  const std::string evicted = server.handle_line("{\"id\":8,\"cmd\":\"evict\"}");
  EXPECT_NE(evicted.find("\"designs_evicted\":1"), std::string::npos);
  EXPECT_NE(server.handle_line(server::encode_request(report)).find("no design loaded"),
            std::string::npos);
}

TEST(Server, RequestDeadlineTimesOutViaFaultInjection) {
  const ScratchDir dir("deadline");
  const std::string deck = write_deck(dir.path, "slow", 1, 10, 200);
  server::Server server({});
  server::Request load;
  load.id = 1;
  load.cmd = "load";
  load.path = deck;
  ASSERT_TRUE(server::response_ok(server.handle_line(server::encode_request(load))));

  robust::fault::arm("server.report", robust::fault::Action::kSleep, 30, 1);
  server::Request report;
  report.id = 2;
  report.cmd = "report";
  report.net = "net_0";
  report.timeout_ms = 5;
  const std::string response = server.handle_line(server::encode_request(report));
  robust::fault::disarm_all();
  EXPECT_FALSE(server::response_ok(response));
  EXPECT_NE(response.find("\"code\":\"timeout\""), std::string::npos) << response;

  // Same request without the fault completes.
  const std::string ok = server.handle_line(server::encode_request(report));
  EXPECT_TRUE(server::response_ok(ok)) << ok;
}

TEST(Server, ContentIdenticalNetsShareCacheAcrossDesigns) {
  const ScratchDir dir("shared");
  // Two decks, same seeds => content-identical trees under different names.
  const std::string deck_a = write_deck(dir.path, "one", 2, 14, 300);
  const std::string deck_b = write_deck(dir.path, "two", 2, 14, 300);
  server::Server server({});
  server::Request load;
  load.cmd = "load";
  load.id = 1;
  load.path = deck_a;
  ASSERT_TRUE(server::response_ok(server.handle_line(server::encode_request(load))));
  const std::string first =
      server.handle_line("{\"id\":2,\"cmd\":\"report\",\"net\":\"net_0\"}");
  EXPECT_NE(first.find("\"source\":\"computed\""), std::string::npos);

  load.id = 3;
  load.path = deck_b;
  ASSERT_TRUE(server::response_ok(server.handle_line(server::encode_request(load))));
  // Identical content, new design: the rows come straight from memory.
  const std::string second =
      server.handle_line("{\"id\":4,\"cmd\":\"report\",\"net\":\"net_0\"}");
  EXPECT_NE(second.find("\"source\":\"memory\""), std::string::npos) << second;
}

// ------------------------------------------------- server (over sockets)

TEST(Server, UnixSocketEndToEnd) {
  const ScratchDir dir("sock");
  const std::string deck = write_deck(dir.path, "e2e", 2, 10, 400);
  server::ServeOptions options;
  options.listen = dir.path + "/rct.sock";
  server::Server server(options);
  ASSERT_TRUE(server.start()) << server.error();
  EXPECT_EQ(server.address(), "unix:" + options.listen);

  server::Client client;
  ASSERT_TRUE(client.connect(options.listen)) << client.error();
  std::string response;
  ASSERT_TRUE(client.roundtrip("{\"id\":1,\"cmd\":\"ping\"}", response));
  EXPECT_EQ(response.rfind("{\"id\":1,\"ok\":true,\"uptime_s\":", 0), 0u) << response;
  EXPECT_NE(response.find("\"pid\":"), std::string::npos);

  server::Request load;
  load.id = 2;
  load.cmd = "load";
  load.path = deck;
  ASSERT_TRUE(client.roundtrip(server::encode_request(load), response));
  ASSERT_TRUE(server::response_ok(response)) << response;

  ASSERT_TRUE(client.roundtrip("{\"id\":3,\"cmd\":\"report\",\"net\":\"net_1\"}", response));
  EXPECT_NE(response.find("\"source\":\"computed\""), std::string::npos);

  // A second client sees the same server state.
  server::Client other;
  ASSERT_TRUE(other.connect(options.listen));
  ASSERT_TRUE(other.roundtrip("{\"id\":4,\"cmd\":\"report\",\"net\":\"net_1\"}", response));
  EXPECT_NE(response.find("\"source\":\"memory\""), std::string::npos);

  ASSERT_TRUE(client.roundtrip("{\"id\":5,\"cmd\":\"shutdown\"}", response));
  EXPECT_NE(response.find("\"shutdown\":true"), std::string::npos);
  server.wait();  // returns because the client asked for shutdown
  server.stop();
  // The socket file is gone after stop().
  EXPECT_FALSE(std::filesystem::exists(options.listen));
}

TEST(Server, TcpEphemeralPortEndToEnd) {
  server::ServeOptions options;
  options.listen = "0";  // ephemeral
  server::Server server(options);
  ASSERT_TRUE(server.start()) << server.error();
  ASSERT_GT(server.port(), 0);
  server::Client client;
  ASSERT_TRUE(client.connect(std::to_string(server.port()))) << client.error();
  std::string response;
  ASSERT_TRUE(client.roundtrip("{\"id\":1,\"cmd\":\"ping\"}", response));
  EXPECT_TRUE(server::response_ok(response));
  server.stop();
}

TEST(Server, WarmStoreSurvivesRestart) {
  const ScratchDir dir("warm");
  const std::string deck = write_deck(dir.path, "warm", 3, 12, 500);
  const std::string store_dir = dir.path + "/store";
  server::Request load;
  load.cmd = "load";
  load.id = 1;
  load.path = deck;
  {
    server::ServeOptions options;
    options.store_dir = store_dir;
    server::Server first(options);
    ASSERT_TRUE(server::response_ok(first.handle_line(server::encode_request(load))));
    for (int i = 0; i < 3; ++i) {
      const std::string response = first.handle_line(
          "{\"id\":2,\"cmd\":\"report\",\"net\":\"net_" + std::to_string(i) + "\"}");
      ASSERT_TRUE(server::response_ok(response)) << response;
      EXPECT_NE(response.find("\"source\":\"computed\""), std::string::npos);
    }
  }
  // New server, same store: every net is served from disk, not recomputed.
  server::ServeOptions options;
  options.store_dir = store_dir;
  server::Server second(options);
  ASSERT_TRUE(server::response_ok(second.handle_line(server::encode_request(load))));
  for (int i = 0; i < 3; ++i) {
    const std::string response = second.handle_line(
        "{\"id\":3,\"cmd\":\"report\",\"net\":\"net_" + std::to_string(i) + "\"}");
    ASSERT_TRUE(server::response_ok(response)) << response;
    EXPECT_NE(response.find("\"source\":\"store\""), std::string::npos) << response;
  }
}

TEST(Server, CorruptStoreEntryFallsBackToRecompute) {
  const ScratchDir dir("fallback");
  const std::string deck = write_deck(dir.path, "fb", 1, 12, 600);
  const std::string store_dir = dir.path + "/store";
  server::Request load;
  load.cmd = "load";
  load.id = 1;
  load.path = deck;
  std::string expected_rows;
  {
    server::ServeOptions options;
    options.store_dir = store_dir;
    server::Server first(options);
    ASSERT_TRUE(server::response_ok(first.handle_line(server::encode_request(load))));
    const std::string response =
        first.handle_line("{\"id\":2,\"cmd\":\"report\",\"net\":\"net_0\"}");
    ASSERT_TRUE(server::response_ok(response));
    expected_rows = response.substr(response.find("\"rows\""));
  }
  // Flip one payload byte in every stored entry.
  std::size_t corrupted = 0;
  for (const auto& e : std::filesystem::recursive_directory_iterator(store_dir)) {
    if (!e.is_regular_file()) continue;
    std::fstream f(e.path(), std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(std::filesystem::file_size(e.path()) - 12));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x01);
    f.write(&byte, 1);
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0u);

  const auto corrupt_before = obs::registry().counter_value("store.load.corrupt");
  server::ServeOptions options;
  options.store_dir = store_dir;
  server::Server second(options);
  ASSERT_TRUE(server::response_ok(second.handle_line(server::encode_request(load))));
  const std::string response =
      second.handle_line("{\"id\":3,\"cmd\":\"report\",\"net\":\"net_0\"}");
  // Not a crash, not an error: the damaged entry reads as a miss, the rows
  // are recomputed and byte-identical to the pre-corruption answer.
  ASSERT_TRUE(server::response_ok(response)) << response;
  EXPECT_NE(response.find("\"source\":\"computed\""), std::string::npos) << response;
  EXPECT_EQ(response.substr(response.find("\"rows\"")), expected_rows);
  EXPECT_GT(obs::registry().counter_value("store.load.corrupt"), corrupt_before);
}

TEST(Server, ConcurrentClientsMixedWorkload) {
  const ScratchDir dir("concurrent");
  const std::string store_dir = dir.path + "/store";
  std::vector<std::string> decks;
  for (int d = 0; d < 2; ++d)
    decks.push_back(write_deck(dir.path, ("deck" + std::to_string(d)).c_str(), 4, 10,
                               700 + static_cast<std::uint64_t>(d) * 10));
  server::ServeOptions options;
  options.listen = dir.path + "/rct.sock";
  options.store_dir = store_dir;
  options.jobs = 4;
  options.cache_max_entries = 64;
  server::Server server(options);
  ASSERT_TRUE(server.start()) << server.error();

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 25;
  std::atomic<int> failures{0};
  std::atomic<int> responses{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      server::Client client;
      if (!client.connect(options.listen)) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        server::Request request;
        request.id = static_cast<std::uint64_t>(c) * 1000 + static_cast<std::uint64_t>(i);
        switch (i % 5) {
          case 0:
            request.cmd = "load";
            request.path = decks[static_cast<std::size_t>(c) % decks.size()];
            break;
          case 4:
            request.cmd = "stats";
            break;
          default:
            request.cmd = "report";
            request.design = "";  // last loaded — races with other clients by design
            request.net = "net_" + std::to_string(i % 4);
            break;
        }
        std::string response;
        if (!client.roundtrip(server::encode_request(request), response)) {
          failures.fetch_add(1);
          return;
        }
        responses.fetch_add(1);
        // "report" may legitimately fail while another client's evict/load
        // races it, but only with a clean typed error, never a broken line.
        if (!server::response_ok(response) &&
            response.find("\"code\":") == std::string::npos)
          failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(responses.load(), kClients * kRequestsPerClient);
  server.stop();
  EXPECT_GE(server.requests_served(), static_cast<std::uint64_t>(kClients * kRequestsPerClient));
}

// ----------------------------------------------------- server observability

TEST(Server, PingReportsUptimeVersionAndPid) {
  server::Server server({});
  const std::string response = server.handle_line("{\"id\":1,\"cmd\":\"ping\"}");
  ASSERT_TRUE(server::response_ok(response)) << response;
  EXPECT_NE(response.find("\"uptime_s\":"), std::string::npos);
  EXPECT_NE(response.find("\"version\":\""), std::string::npos);
  EXPECT_NE(response.find("\"pid\":" + std::to_string(::getpid())), std::string::npos);
  EXPECT_GE(server.uptime_seconds(), 0.0);
}

TEST(Server, AdoptsClientTraceAndServesItBack) {
  const ScratchDir dir("trace");
  const std::string deck = write_deck(dir.path, "traced", 1, 10, 800);
  server::Server server({});
  server::Request load;
  load.id = 1;
  load.cmd = "load";
  load.path = deck;
  ASSERT_TRUE(server::response_ok(server.handle_line(server::encode_request(load))));

  // A traced report: the server records its phase spans under the
  // client-minted id.
  server::Request report;
  report.id = 2;
  report.cmd = "report";
  report.net = "net_0";
  report.trace = server::generate_trace_id();
  report.span = server::generate_trace_id();
  ASSERT_TRUE(server::response_ok(server.handle_line(server::encode_request(report))));

  server::Request fetch;
  fetch.id = 3;
  fetch.cmd = "trace";
  fetch.trace = report.trace;
  const std::string response = server.handle_line(server::encode_request(fetch));
  ASSERT_TRUE(server::response_ok(response)) << response;
  std::vector<server::TraceSpan> spans;
  ASSERT_TRUE(server::parse_trace_spans(response, spans));
  // The full phase tape: root request plus queue/cache/context/report/render.
  std::vector<std::string> names;
  names.reserve(spans.size());
  for (const server::TraceSpan& s : spans) names.push_back(s.name);
  for (const char* expected : {"server.request", "server.queue_wait", "server.cache.lookup",
                               "server.context.build", "server.report.build", "server.render"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing span " << expected;
  // Spans arrive sorted by start time, inside the root's window.
  for (std::size_t i = 1; i < spans.size(); ++i)
    EXPECT_GE(spans[i].ts_ns, spans[i - 1].ts_ns);

  // Unknown (or evicted) ids answer ok with an empty slice; fetching a
  // trace never tapes the fetch itself.
  fetch.id = 4;
  fetch.trace = "00000000000000aa";
  const std::string empty = server.handle_line(server::encode_request(fetch));
  ASSERT_TRUE(server::response_ok(empty)) << empty;
  ASSERT_TRUE(server::parse_trace_spans(empty, spans));
  EXPECT_TRUE(spans.empty());

  // trace without an id is a typed error.
  EXPECT_NE(server.handle_line("{\"id\":5,\"cmd\":\"trace\"}").find("\"code\":\"unsupported\""),
            std::string::npos);

  // Untraced requests leave no tape behind.
  server::Request untraced;
  untraced.id = 6;
  untraced.cmd = "report";
  untraced.net = "net_0";
  ASSERT_TRUE(server::response_ok(server.handle_line(server::encode_request(untraced))));
  fetch.id = 7;
  fetch.trace = report.trace;
  ASSERT_TRUE(server::parse_trace_spans(server.handle_line(server::encode_request(fetch)),
                                        spans));
  const std::size_t before = spans.size();
  EXPECT_GT(before, 0u);  // the traced request's tape is still there
}

TEST(Server, BoundGapHistogramObservesReportRows) {
  const ScratchDir dir("gap");
  const std::string deck = write_deck(dir.path, "gap", 1, 14, 900);
  server::Server server({});
  server::Request load;
  load.id = 1;
  load.cmd = "load";
  load.path = deck;
  ASSERT_TRUE(server::response_ok(server.handle_line(server::encode_request(load))));

  const obs::Histogram* gap = obs::registry().find_histogram("core.report.bound_gap");
  const std::uint64_t before = gap != nullptr ? gap->count() : 0;
  ASSERT_TRUE(server::response_ok(
      server.handle_line("{\"id\":2,\"cmd\":\"report\",\"net\":\"net_0\"}")));
  gap = obs::registry().find_histogram("core.report.bound_gap");
  ASSERT_NE(gap, nullptr);
  EXPECT_GT(gap->count(), before);
  // The gap is relative: every sample sits in [0, 1] for finite rows.
  EXPECT_GE(gap->min(), 0.0);
  EXPECT_LE(gap->max(), 1.0);
  // The exact engine ran too, so the Elmore-vs-exact error histogram moved.
  const obs::Histogram* err =
      obs::registry().find_histogram("core.report.exact_vs_elmore_error");
  ASSERT_NE(err, nullptr);
  EXPECT_GT(err->count(), 0u);
}

TEST(Server, PerCommandHistogramsSplitByVocabulary) {
  server::Server server({});
  const obs::Histogram* ping_h =
      obs::registry().find_histogram("server.request.ping.seconds");
  const std::uint64_t before = ping_h != nullptr ? ping_h->count() : 0;
  ASSERT_TRUE(server::response_ok(server.handle_line("{\"id\":1,\"cmd\":\"ping\"}")));
  ping_h = obs::registry().find_histogram("server.request.ping.seconds");
  ASSERT_NE(ping_h, nullptr);
#if RCT_OBS_ENABLED
  // ScopedTimer is compiled out under -DRCT_OBS=OFF, so the count only
  // moves in instrumented builds; the vocabulary gating below holds in both.
  EXPECT_GT(ping_h->count(), before);
#else
  (void)before;
#endif
  // Unknown commands must not mint new instruments.
  (void)server.handle_line("{\"id\":2,\"cmd\":\"frobnicate\"}");
  EXPECT_EQ(obs::registry().find_histogram("server.request.frobnicate.seconds"), nullptr);
}

TEST(Server, HttpTelemetryEndpoints) {
  const ScratchDir dir("http");
  const std::string deck = write_deck(dir.path, "telemetry", 2, 10, 1000);
  server::ServeOptions options;
  options.listen = dir.path + "/rct.sock";
  options.http = "0";  // ephemeral TCP
  server::Server server(options);
  ASSERT_TRUE(server.start()) << server.error();
  ASSERT_GT(server.http_port(), 0);
  EXPECT_EQ(server.http_address(),
            "http://127.0.0.1:" + std::to_string(server.http_port()));

  // Load a design and run a report through the protocol socket first, so
  // the scrape sees real levels.
  server::Client client;
  ASSERT_TRUE(client.connect(options.listen)) << client.error();
  server::Request load;
  load.id = 1;
  load.cmd = "load";
  load.path = deck;
  std::string response;
  ASSERT_TRUE(client.roundtrip(server::encode_request(load), response));
  ASSERT_TRUE(server::response_ok(response)) << response;
  ASSERT_TRUE(client.roundtrip("{\"id\":2,\"cmd\":\"report\",\"net\":\"net_0\"}", response));
  ASSERT_TRUE(server::response_ok(response)) << response;

  // /metrics: Prometheus 0.0.4 text with the server's own instruments.
  const std::string metrics = http_get(server.http_port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE rct_server_requests counter"), std::string::npos);
  EXPECT_NE(metrics.find("rct_server_designs 1"), std::string::npos);
  EXPECT_NE(metrics.find("rct_server_request_report_seconds_count"), std::string::npos);
  EXPECT_NE(metrics.find("rct_core_report_bound_gap_bucket"), std::string::npos);

  // /healthz: liveness JSON with uptime, version, pid.
  const std::string healthz = http_get(server.http_port(), "/healthz");
  EXPECT_NE(healthz.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(healthz.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(healthz.find("\"uptime_s\":"), std::string::npos);
  EXPECT_NE(healthz.find("\"pid\":" + std::to_string(::getpid())), std::string::npos);

  // /varz: the JSON metrics snapshot (same schema as --metrics-out).
  const std::string varz = http_get(server.http_port(), "/varz");
  EXPECT_NE(varz.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(varz.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(varz.find("server.designs"), std::string::npos);

  // /flight: the flight-recorder dump.
  const std::string flight = http_get(server.http_port(), "/flight");
  EXPECT_NE(flight.find("HTTP/1.0 200 OK"), std::string::npos);

  // Unknown paths 404; query strings are stripped before routing.
  EXPECT_NE(http_get(server.http_port(), "/nope").find("HTTP/1.0 404"), std::string::npos);
  EXPECT_NE(http_get(server.http_port(), "/healthz?probe=1").find("HTTP/1.0 200"),
            std::string::npos);

  // Non-GET methods 405; malformed request lines 400.
  EXPECT_NE(http_request(server.http_port(), "POST /metrics HTTP/1.0\r\n\r\n")
                .find("HTTP/1.0 405"),
            std::string::npos);
  EXPECT_NE(http_request(server.http_port(), "garbage\r\n\r\n").find("HTTP/1.0 400"),
            std::string::npos);

  server.stop();
}

TEST(Server, HttpOnUnixSocketPath) {
  const ScratchDir dir("http_unix");
  server::ServeOptions options;
  options.listen = dir.path + "/rct.sock";
  options.http = dir.path + "/http.sock";
  server::Server server(options);
  ASSERT_TRUE(server.start()) << server.error();
  EXPECT_EQ(server.http_address(), "unix:" + options.http);
  EXPECT_TRUE(std::filesystem::exists(options.http));
  server.stop();
  EXPECT_FALSE(std::filesystem::exists(options.http));
}

TEST(Server, ConcurrentScrapeWhileServing) {
  const ScratchDir dir("scrape");
  const std::string deck = write_deck(dir.path, "scraped", 4, 10, 1100);
  server::ServeOptions options;
  options.listen = dir.path + "/rct.sock";
  options.http = "0";
  options.jobs = 2;
  server::Server server(options);
  ASSERT_TRUE(server.start()) << server.error();
  const int http_port = server.http_port();
  ASSERT_GT(http_port, 0);

  constexpr int kProtocolClients = 4;
  constexpr int kScrapers = 4;
  constexpr int kIterations = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kProtocolClients + kScrapers);
  for (int c = 0; c < kProtocolClients; ++c) {
    threads.emplace_back([&, c] {
      server::Client client;
      if (!client.connect(options.listen)) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kIterations; ++i) {
        server::Request request;
        request.id = static_cast<std::uint64_t>(c) * 1000 + static_cast<std::uint64_t>(i);
        if (i == 0) {
          request.cmd = "load";
          request.path = deck;
        } else {
          request.cmd = "report";
          request.net = "net_" + std::to_string(i % 4);
          request.trace = server::generate_trace_id();  // tracing under load
        }
        std::string response;
        if (!client.roundtrip(server::encode_request(request), response)) {
          failures.fetch_add(1);
          return;
        }
        if (!server::response_ok(response) &&
            response.find("\"code\":") == std::string::npos)
          failures.fetch_add(1);
      }
    });
  }
  const char* kPaths[] = {"/metrics", "/healthz", "/varz", "/flight"};
  for (int s = 0; s < kScrapers; ++s) {
    threads.emplace_back([&, s] {
      for (int i = 0; i < kIterations; ++i) {
        const std::string response =
            http_get(http_port, kPaths[(s + i) % 4]);
        if (response.find("HTTP/1.0 200 OK") == std::string::npos) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  server.stop();
}

// ------------------------------------------------ protocol (overload)

TEST(Protocol, OverloadedResponseCarriesRetryAfterHint) {
  const std::string line = server::overloaded_response(7, 125, "queue full");
  EXPECT_FALSE(server::response_ok(line));
  EXPECT_EQ(server::response_error_code(line), "overloaded");
  EXPECT_EQ(server::response_retry_after_ms(line), 125u);
  EXPECT_NE(line.find("\"id\":7"), std::string::npos);
}

TEST(Protocol, ResponseErrorCodeExtraction) {
  EXPECT_EQ(server::response_error_code("{\"id\":1,\"ok\":true}"), "");
  EXPECT_EQ(server::response_error_code(server::error_response(1, "timeout", "x")), "timeout");
  EXPECT_EQ(server::response_error_code("{\"id\":1,\"ok\":false,\"error\":\"no code\"}"), "");
  EXPECT_EQ(server::response_retry_after_ms(server::error_response(1, "timeout", "x")), 0u);
}

// --------------------------------------------------- admission control

TEST(Server, OverloadShedsWithTypedResponseAndRetryHint) {
  const ScratchDir dir("overload");
  const std::string deck = write_deck(dir.path, "busy", 2, 10, 1200);
  server::ServeOptions options;
  options.listen = dir.path + "/rct.sock";
  options.jobs = 1;
  options.max_queue_depth = 1;
  server::Server server(options);
  server::Request load;
  load.id = 1;
  load.cmd = "load";
  load.path = deck;
  ASSERT_TRUE(server::response_ok(server.handle_line(server::encode_request(load))));
  ASSERT_TRUE(server.start()) << server.error();

  // Occupy the single worker (and the whole queue) with a slow report.
  robust::fault::arm("server.report", robust::fault::Action::kSleep, 400, 1);
  std::string slow_response;
  std::thread busy([&server, &slow_response] {
    slow_response = server.handle_line("{\"id\":2,\"cmd\":\"report\",\"net\":\"net_0\"}");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Second pool-bound request: shed, typed, with a backoff hint.
  const std::string shed =
      server.handle_line("{\"id\":3,\"cmd\":\"report\",\"net\":\"net_1\"}");
  EXPECT_EQ(server::response_error_code(shed), "overloaded") << shed;
  EXPECT_GT(server::response_retry_after_ms(shed), 0u) << shed;

  // Control commands still answer while the queue is full, and a recent
  // shed shows up as the degraded overlay.
  const std::string stats = server.handle_line("{\"id\":4,\"cmd\":\"stats\"}");
  EXPECT_TRUE(server::response_ok(stats)) << stats;
  EXPECT_NE(stats.find("\"state\":\"degraded\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"shed\":"), std::string::npos);
  EXPECT_GE(server.requests_shed(), 1u);

  busy.join();
  robust::fault::disarm_all();
  EXPECT_TRUE(server::response_ok(slow_response)) << slow_response;

  // Once the queue drains, the same request is admitted.
  const std::string retried =
      server.handle_line("{\"id\":5,\"cmd\":\"report\",\"net\":\"net_1\"}");
  EXPECT_TRUE(server::response_ok(retried)) << retried;
  server.stop();
}

TEST(Server, ConnectionCapRejectsWithTypedLine) {
  const ScratchDir dir("conncap");
  server::ServeOptions options;
  options.listen = dir.path + "/rct.sock";
  options.max_connections = 1;
  server::Server server(options);
  ASSERT_TRUE(server.start()) << server.error();

  server::Client first;
  ASSERT_TRUE(first.connect(options.listen)) << first.error();
  std::string response;
  ASSERT_TRUE(first.roundtrip("{\"id\":1,\"cmd\":\"ping\"}", response));
  ASSERT_TRUE(server::response_ok(response));

  // Second connection: accepted just long enough to say "overloaded".
  const int fd = unix_connect(options.listen);
  ASSERT_GE(fd, 0);
  const std::string line = recv_line(fd);
  ::close(fd);
  EXPECT_EQ(server::response_error_code(line), "overloaded") << line;
  EXPECT_GT(server::response_retry_after_ms(line), 0u) << line;

  // The admitted connection is unaffected.
  ASSERT_TRUE(first.roundtrip("{\"id\":2,\"cmd\":\"ping\"}", response));
  EXPECT_TRUE(server::response_ok(response));
  server.stop();
}

// ------------------------------------------------------- socket hygiene

TEST(Server, OversizedLineGetsTypedErrorAndConnectionSurvives) {
  const ScratchDir dir("toolarge");
  server::ServeOptions options;
  options.listen = dir.path + "/rct.sock";
  server::Server server(options);
  ASSERT_TRUE(server.start()) << server.error();
  const int fd = unix_connect(options.listen);
  ASSERT_GE(fd, 0);

  // One line well past the cap, no newline yet: the server answers as soon
  // as the buffered prefix exceeds the cap, then discards to the newline.
  const std::string huge(server::Server::kMaxRequestLine + 4096, 'x');
  std::size_t sent = 0;
  while (sent < huge.size()) {
    const ssize_t n = ::send(fd, huge.data() + sent, huge.size() - sent, 0);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
  const std::string error_line = recv_line(fd);
  EXPECT_EQ(server::response_error_code(error_line), "request-too-large") << error_line;

  // Terminate the runaway line; the connection stays usable.
  const std::string follow_up = "\n{\"id\":2,\"cmd\":\"ping\"}\n";
  ASSERT_EQ(::send(fd, follow_up.data(), follow_up.size(), 0),
            static_cast<ssize_t>(follow_up.size()));
  const std::string pong = recv_line(fd);
  EXPECT_TRUE(server::response_ok(pong)) << pong;
  EXPECT_NE(pong.find("\"id\":2"), std::string::npos);
  ::close(fd);
  server.stop();
}

TEST(Chaos, ShortReadsByteByByteStillParse) {
  const ScratchDir dir("shortreads");
  server::ServeOptions options;
  options.listen = dir.path + "/rct.sock";
  server::Server server(options);
  ASSERT_TRUE(server.start()) << server.error();
  const int fd = unix_connect(options.listen);
  ASSERT_GE(fd, 0);
  const std::string request = "{\"id\":9,\"cmd\":\"ping\"}\n";
  for (const char c : request) {
    ASSERT_EQ(::send(fd, &c, 1, 0), 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::string response = recv_line(fd);
  EXPECT_TRUE(server::response_ok(response)) << response;
  ::close(fd);
  server.stop();
}

TEST(Chaos, SilentConnectionIsClosedByIdleTimeout) {
  const ScratchDir dir("idle");
  server::ServeOptions options;
  options.listen = dir.path + "/rct.sock";
  options.idle_timeout_ms = 300;
  server::Server server(options);
  ASSERT_TRUE(server.start()) << server.error();
  const int fd = unix_connect(options.listen);
  ASSERT_GE(fd, 0);
  const auto start = std::chrono::steady_clock::now();
  // Say nothing; the server must hang up on its own (recv returns EOF).
  char c = 0;
  const ssize_t n = ::recv(fd, &c, 1, 0);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(n, 0);
  EXPECT_LT(elapsed.count(), 5000);
  ::close(fd);
  EXPECT_GE(obs::registry().counter_value("server.conn.idle_closed"), 1u);
  server.stop();
}

// -------------------------------------------------------- chaos + retry

TEST(Chaos, MidRequestDisconnectRetriesToByteIdenticalResult) {
  const ScratchDir dir("disconnect");
  const std::string deck = write_deck(dir.path, "chaos", 1, 10, 1300);
  server::ServeOptions options;
  options.listen = dir.path + "/rct.sock";
  server::Server server(options);
  server::Request load;
  load.id = 1;
  load.cmd = "load";
  load.path = deck;
  ASSERT_TRUE(server::response_ok(server.handle_line(server::encode_request(load))));
  ASSERT_TRUE(server.start()) << server.error();

  server::Client client;
  ASSERT_TRUE(client.connect(options.listen)) << client.error();
  const std::string report_line = "{\"id\":2,\"cmd\":\"report\",\"net\":\"net_0\"}";
  // Warm the cache so every later answer has source "memory" — that makes
  // the byte-identical comparison meaningful across retries.
  std::string warm;
  ASSERT_TRUE(client.roundtrip(report_line, warm));
  std::string clean;
  ASSERT_TRUE(client.roundtrip(report_line, clean));
  ASSERT_NE(clean.find("\"source\":\"memory\""), std::string::npos);

  server::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff_ms = 5;

  // The server hangs up before answering; the retry reconnects and the
  // rerun is byte-identical to the clean response.
  robust::fault::arm("server.conn.disconnect", robust::fault::Action::kThrow, 0, 1);
  std::string after_disconnect;
  ASSERT_TRUE(client.request(report_line, after_disconnect, policy)) << client.error();
  EXPECT_EQ(after_disconnect, clean);
  EXPECT_GE(client.last_retries(), 1u);

  // A torn write (half the response, then the connection dies) likewise.
  robust::fault::arm("server.conn.write", robust::fault::Action::kThrow, 0, 1);
  std::string after_torn_write;
  ASSERT_TRUE(client.request(report_line, after_torn_write, policy)) << client.error();
  EXPECT_EQ(after_torn_write, clean);
  robust::fault::disarm_all();
  server.stop();
}

TEST(ClientRetry, SurvivesServerRestartMidBatch) {
  const ScratchDir dir("restart");
  const std::string deck = write_deck(dir.path, "durable", 1, 10, 1400);
  const std::string sock = dir.path + "/rct.sock";
  const std::string store_dir = dir.path + "/store";
  const std::string load_line = "{\"id\":1,\"cmd\":\"load\",\"path\":\"" + deck + "\"}";
  const std::string report_line = "{\"id\":2,\"cmd\":\"report\",\"net\":\"net_0\"}";

  server::ServeOptions options;
  options.listen = sock;
  options.store_dir = store_dir;

  server::Client client;
  std::string first_rows;
  {
    server::Server first(options);
    ASSERT_TRUE(first.start()) << first.error();
    ASSERT_TRUE(client.connect(sock)) << client.error();
    std::string response;
    ASSERT_TRUE(client.roundtrip(load_line, response));
    ASSERT_TRUE(server::response_ok(response)) << response;
    ASSERT_TRUE(client.roundtrip(report_line, response));
    ASSERT_TRUE(server::response_ok(response)) << response;
    first_rows = response.substr(response.find("\"rows\""));
    first.stop();
  }
  // The server the client was talking to is gone; a new one owns the same
  // socket and the same warm store.
  server::Server second(options);
  ASSERT_TRUE(second.start()) << second.error();

  server::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_backoff_ms = 10;
  std::string response;
  ASSERT_TRUE(client.request(load_line, response, policy)) << client.error();
  EXPECT_TRUE(server::response_ok(response)) << response;
  ASSERT_TRUE(client.request(report_line, response, policy)) << client.error();
  ASSERT_TRUE(server::response_ok(response)) << response;
  // Served from the shared store, and row-identical to the pre-restart run.
  EXPECT_NE(response.find("\"source\":\"store\""), std::string::npos) << response;
  EXPECT_EQ(response.substr(response.find("\"rows\"")), first_rows);
  second.stop();
}

// ------------------------------------------------------- graceful drain

TEST(Server, DrainCancelsInFlightPastDeadline) {
  const ScratchDir dir("drain");
  const std::string deck = write_deck(dir.path, "draining", 1, 10, 1500);
  server::ServeOptions options;
  options.listen = dir.path + "/rct.sock";
  options.jobs = 1;
  options.drain_timeout_ms = 50;
  server::Server server(options);
  server::Request load;
  load.id = 1;
  load.cmd = "load";
  load.path = deck;
  ASSERT_TRUE(server::response_ok(server.handle_line(server::encode_request(load))));
  ASSERT_TRUE(server.start()) << server.error();

  // An in-flight report that will outlive the drain budget by a lot.
  robust::fault::arm("server.report", robust::fault::Action::kSleep, 600, 1);
  std::string response;
  bool got_response = false;
  std::thread slow([&] {
    server::Client client;
    ASSERT_TRUE(client.connect(dir.path + "/rct.sock"));
    got_response = client.roundtrip("{\"id\":2,\"cmd\":\"report\",\"net\":\"net_0\"}", response);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  const auto start = std::chrono::steady_clock::now();
  server.request_drain();  // what the SIGTERM handler does
  server.stop();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  slow.join();
  robust::fault::disarm_all();

  // stop() returned promptly (bounded by the sleep, not by a hang), and the
  // straggler got a typed cancellation instead of a dropped connection.
  EXPECT_LT(elapsed.count(), 5000);
  ASSERT_TRUE(got_response) << "in-flight request never got an answer";
  EXPECT_EQ(server::response_error_code(response), "cancelled") << response;
}

TEST(Server, HealthzReportsDrainingAs503) {
  const ScratchDir dir("drain503");
  const std::string deck = write_deck(dir.path, "draining", 1, 10, 1700);
  server::ServeOptions options;
  options.listen = dir.path + "/rct.sock";
  options.http = "0";
  options.jobs = 1;
  options.drain_timeout_ms = 2000;
  server::Server server(options);
  server::Request load;
  load.id = 1;
  load.cmd = "load";
  load.path = deck;
  ASSERT_TRUE(server::response_ok(server.handle_line(server::encode_request(load))));
  ASSERT_TRUE(server.start()) << server.error();
  const int http_port = server.http_port();
  ASSERT_GT(http_port, 0);
  const std::string healthy = http_get(http_port, "/healthz");
  EXPECT_NE(healthy.find("HTTP/1.0 200"), std::string::npos) << healthy;
  EXPECT_NE(healthy.find("\"state\":\"serving\""), std::string::npos) << healthy;

  // Pin one request in flight, then stop() from another thread: while the
  // drain waits for it, /healthz must flip to 503 "draining" so load
  // balancers pull the instance before its socket disappears.
  robust::fault::arm("server.report", robust::fault::Action::kSleep, 500, 1);
  std::thread slow([&] {
    server::Client client;
    ASSERT_TRUE(client.connect(options.listen));
    std::string response;
    (void)client.roundtrip("{\"id\":2,\"cmd\":\"report\",\"net\":\"net_0\"}", response);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::thread stopper([&server] { server.stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const std::string draining = http_get(http_port, "/healthz");
  EXPECT_NE(draining.find("HTTP/1.0 503"), std::string::npos) << draining;
  EXPECT_NE(draining.find("\"state\":\"draining\""), std::string::npos) << draining;
  stopper.join();
  slow.join();
  robust::fault::disarm_all();
}

// --------------------------------------------------------- evict races

TEST(Server, ConcurrentEvictRacesReportAndLoad) {
  const ScratchDir dir("evictrace");
  const std::string deck = write_deck(dir.path, "raced", 2, 10, 1600);
  const std::string store_dir = dir.path + "/store";
  server::ServeOptions options;
  options.jobs = 2;
  options.store_dir = store_dir;
  server::Server server(options);
  const std::string load_line = "{\"id\":1,\"cmd\":\"load\",\"path\":\"" + deck + "\"}";
  ASSERT_TRUE(server::response_ok(server.handle_line(load_line)));

  // Reports and loads race a full evict for ~200ms.  Requests may come
  // back "no design loaded" — that is fine; what must hold is that nothing
  // crashes, hangs, or races (the TSan build runs this test too).
  std::atomic<bool> go{true};
  std::atomic<int> answered{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&server, &go, &answered, t] {
      while (go.load(std::memory_order_relaxed)) {
        const std::string net = "net_" + std::to_string(t);
        const std::string r = server.handle_line(
            "{\"id\":5,\"cmd\":\"report\",\"net\":\"" + net + "\"}");
        ASSERT_FALSE(r.empty());
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  workers.emplace_back([&server, &go, &load_line, &answered] {
    while (go.load(std::memory_order_relaxed)) {
      ASSERT_FALSE(server.handle_line(load_line).empty());
      answered.fetch_add(1, std::memory_order_relaxed);
    }
  });
  workers.emplace_back([&server, &go, &answered] {
    while (go.load(std::memory_order_relaxed)) {
      ASSERT_FALSE(server.handle_line("{\"id\":6,\"cmd\":\"evict\"}").empty());
      answered.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  go.store(false, std::memory_order_relaxed);
  for (std::thread& w : workers) w.join();
  EXPECT_GT(answered.load(), 0);

  // After the dust settles the server still works end to end.
  ASSERT_TRUE(server::response_ok(server.handle_line(load_line)));
  EXPECT_TRUE(server::response_ok(
      server.handle_line("{\"id\":7,\"cmd\":\"report\",\"net\":\"net_0\"}")));
}

// ------------------------------------------------------------- store GC

TEST(DiskStoreGc, CapEnforcedWithLruByAtimeVictims) {
  const ScratchDir dir("gc_cap");
  // Measure one entry's on-disk size so the cap maths is fs-independent.
  std::uint64_t entry_size = 0;
  {
    server::DiskStore probe(dir.path + "/probe");
    const RCTree tree = gen::random_tree(16, 21);
    probe.save(engine::NetKey::of(tree, {}), core::build_report(tree));
    entry_size = probe.total_bytes();
  }
  ASSERT_GT(entry_size, 0u);
  const std::uint64_t cap = entry_size * 3 + entry_size / 2;  // fits 3 entries, not 4

  const std::string gc_dir = dir.path + "/gc";
  server::DiskStore store(gc_dir, cap);
  ASSERT_TRUE(store.ok()) << store.error();
  EXPECT_EQ(store.max_bytes(), cap);
  std::vector<engine::NetKey> keys;
  for (int i = 0; i < 3; ++i) {
    const RCTree tree = gen::random_tree(16, 30 + i);
    keys.push_back(engine::NetKey::of(tree, {}));
    store.save(keys.back(), core::build_report(tree));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(store.entry_count(), 3u);
  // Read the oldest entry: the explicit atime bump makes it most recently
  // used, so the sweep must spare it.
  ASSERT_TRUE(store.load(keys[0]).has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  const RCTree straw = gen::random_tree(16, 99);
  store.save(engine::NetKey::of(straw, {}), core::build_report(straw));  // crosses the cap

  EXPECT_LE(store.total_bytes(), cap);
  EXPECT_LT(store.entry_count(), 4u);
  EXPECT_TRUE(store.load(keys[0]).has_value()) << "LRU evicted the recently-read entry";
  EXPECT_FALSE(store.load(keys[1]).has_value()) << "oldest-by-atime entry survived the sweep";
  EXPECT_FALSE(std::filesystem::exists(gc_dir + "/gc.journal"));
  EXPECT_GE(obs::registry().counter_value("store.gc.sweeps"), 1u);
  EXPECT_GE(obs::registry().counter_value("store.gc.evicted"), 1u);
}

TEST(DiskStoreGc, CrashMidSweepLeavesJournalAndRecoversOnRestart) {
  const ScratchDir dir("gc_crash");
  std::uint64_t entry_size = 0;
  {
    server::DiskStore probe(dir.path + "/probe");
    const RCTree tree = gen::random_tree(16, 41);
    probe.save(engine::NetKey::of(tree, {}), core::build_report(tree));
    entry_size = probe.total_bytes();
  }
  ASSERT_GT(entry_size, 0u);
  const std::uint64_t cap = entry_size * 2 + entry_size / 2;  // fits 2 entries, not 3
  const std::string gc_dir = dir.path + "/gc";

  std::vector<engine::NetKey> keys;
  std::vector<std::vector<core::NodeReport>> rows;
  const std::uint64_t fired_before = robust::fault::fired_count("store.gc.sweep");
  {
    server::DiskStore store(gc_dir, cap);
    for (int i = 0; i < 2; ++i) {
      const RCTree tree = gen::random_tree(16, 50 + i);
      keys.push_back(engine::NetKey::of(tree, {}));
      rows.push_back(core::build_report(tree));
      store.save(keys.back(), rows.back());
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    // The third save crosses the cap; the sweep journals its victims and
    // then "crashes" (injected) before the first unlink.
    robust::fault::arm("store.gc.sweep", robust::fault::Action::kThrow, 0, 1);
    const RCTree tree = gen::random_tree(16, 60);
    keys.push_back(engine::NetKey::of(tree, {}));
    rows.push_back(core::build_report(tree));
    store.save(keys.back(), rows.back());
    robust::fault::disarm_all();
    EXPECT_EQ(robust::fault::fired_count("store.gc.sweep"), fired_before + 1);
    EXPECT_TRUE(std::filesystem::exists(gc_dir + "/gc.journal"));
    EXPECT_EQ(store.entry_count(), 3u);  // nothing deleted before the crash
    EXPECT_GE(obs::registry().counter_value("store.gc.errors"), 1u);
  }

  // "Restart": the constructor replays the journal, finishing the sweep.
  server::DiskStore reopened(gc_dir, cap);
  ASSERT_TRUE(reopened.ok()) << reopened.error();
  EXPECT_FALSE(std::filesystem::exists(gc_dir + "/gc.journal"));
  EXPECT_LT(reopened.entry_count(), 3u);
  EXPECT_LE(reopened.total_bytes(), cap);
  EXPECT_GE(obs::registry().counter_value("store.gc.recovered"), 1u);
  // Every surviving entry still round-trips bit-exact — no corruption.
  std::size_t survivors = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto back = reopened.load(keys[i]);
    if (!back.has_value()) continue;
    ++survivors;
    ASSERT_EQ(back->size(), rows[i].size());
    EXPECT_EQ((*back)[1].elmore, rows[i][1].elmore);
  }
  EXPECT_EQ(survivors, reopened.entry_count());
}

TEST(DiskStoreGc, ConcurrentSaveLoadUnderCapStaysConsistent) {
  const ScratchDir dir("gc_race");
  std::uint64_t entry_size = 0;
  {
    server::DiskStore probe(dir.path + "/probe");
    const RCTree tree = gen::random_tree(16, 71);
    probe.save(engine::NetKey::of(tree, {}), core::build_report(tree));
    entry_size = probe.total_bytes();
  }
  const std::uint64_t cap = entry_size * 4;
  server::DiskStore store(dir.path + "/gc", cap);
  // Writers push entries past the cap (triggering sweeps) while readers
  // load whatever is resident: loads are hits or clean misses, never junk.
  std::vector<engine::NetKey> keys;
  std::vector<std::vector<core::NodeReport>> rows;
  for (int i = 0; i < 12; ++i) {
    const RCTree tree = gen::random_tree(16, 80 + i);
    keys.push_back(engine::NetKey::of(tree, {}));
    rows.push_back(core::build_report(tree));
  }
  std::atomic<bool> go{true};
  std::thread writer([&] {
    for (int round = 0; round < 3; ++round)
      for (std::size_t i = 0; i < keys.size(); ++i) store.save(keys[i], rows[i]);
    go.store(false, std::memory_order_relaxed);
  });
  std::thread reader([&] {
    std::size_t i = 0;
    while (go.load(std::memory_order_relaxed)) {
      const auto back = store.load(keys[i % keys.size()]);
      if (back.has_value()) {
        EXPECT_EQ(back->size(), rows[i % keys.size()].size());
      }
      ++i;
    }
  });
  writer.join();
  reader.join();
  EXPECT_LE(store.total_bytes(), cap);
  EXPECT_FALSE(std::filesystem::exists(dir.path + "/gc/gc.journal"));
}

}  // namespace
