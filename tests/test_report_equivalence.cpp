// Equivalence gate for the analysis::TreeContext refactor.
//
// build_report() used to derive everything itself: per-node impulse stats,
// PRH bounds, and an O(depth) RCTree::depth walk per row.  This suite pins
// the refactored pipeline (tree overload -> TreeContext overload -> batch
// engine) to a golden replica of that pre-refactor algorithm, captured here
// as reference_build_report(): every field of every row must be
// bit-identical on every checked-in testdata deck and the paper circuits,
// under all ReportOptions the CLI can produce.  The batch renderers must in
// turn be byte-identical across thread counts and cache settings.

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "analysis/tree_context.hpp"
#include "core/penfield_rubinstein.hpp"
#include "core/report.hpp"
#include "engine/batch.hpp"
#include "moments/central.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/circuits.hpp"
#include "rctree/generators.hpp"
#include "rctree/netlist_parser.hpp"
#include "rctree/spef.hpp"
#include "sim/exact.hpp"

namespace rct {
namespace {

std::string testdata(const std::string& name) {
  return std::string(RCT_TESTDATA_DIR) + "/" + name;
}

/// Pre-refactor build_report(), transcribed verbatim: per-call derivations,
/// walk-based depth accessor, member-function PRH bounds.  The refactored
/// pipeline must reproduce this bit for bit.
std::vector<core::NodeReport> reference_build_report(const RCTree& tree,
                                                     const core::ReportOptions& options) {
  const auto stats = moments::impulse_stats(tree);
  const core::PrhBounds prh(tree);
  std::optional<sim::ExactAnalysis> exact;
  if (options.with_exact && tree.size() <= options.exact_node_limit) exact.emplace(tree);

  std::vector<core::NodeReport> rows;
  for (NodeId i = 0; i < tree.size(); ++i) {
    if (options.leaves_only && !tree.is_leaf(i)) continue;
    core::NodeReport r;
    r.name = tree.name(i);
    r.depth = tree.depth(i);
    r.elmore = stats[i].mean;
    r.sigma = stats[i].sigma;
    r.skewness = stats[i].skewness;
    r.lower_bound = std::max(r.elmore - r.sigma, 0.0);
    r.single_pole = -std::log(1.0 - options.fraction) * r.elmore;
    r.prh_tmin = prh.t_min(i, options.fraction);
    r.prh_tmax = prh.t_max(i, options.fraction);
    if (exact) {
      r.exact_delay = exact->step_delay(i, options.fraction);
      r.exact_rise = exact->step_rise_time_10_90(i);
    }
    rows.push_back(std::move(r));
  }
  return rows;
}

void expect_rows_bitwise(const std::vector<core::NodeReport>& got,
                         const std::vector<core::NodeReport>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].name, want[i].name);
    EXPECT_EQ(got[i].depth, want[i].depth);
    EXPECT_EQ(got[i].elmore, want[i].elmore);
    EXPECT_EQ(got[i].sigma, want[i].sigma);
    EXPECT_EQ(got[i].skewness, want[i].skewness);
    EXPECT_EQ(got[i].lower_bound, want[i].lower_bound);
    EXPECT_EQ(got[i].single_pole, want[i].single_pole);
    EXPECT_EQ(got[i].prh_tmin, want[i].prh_tmin);
    EXPECT_EQ(got[i].prh_tmax, want[i].prh_tmax);
    EXPECT_EQ(got[i].exact_delay, want[i].exact_delay);
    EXPECT_EQ(got[i].exact_rise, want[i].exact_rise);
  }
}

std::vector<core::ReportOptions> option_variants() {
  std::vector<core::ReportOptions> variants;
  variants.push_back({});  // defaults: exact on, 50%, all nodes
  core::ReportOptions no_exact;
  no_exact.with_exact = false;
  variants.push_back(no_exact);
  core::ReportOptions leaves;
  leaves.leaves_only = true;
  variants.push_back(leaves);
  core::ReportOptions ninety;
  ninety.fraction = 0.9;
  ninety.with_exact = false;
  variants.push_back(ninety);
  return variants;
}

void check_tree(const RCTree& tree) {
  for (const core::ReportOptions& opt : option_variants()) {
    const auto want = reference_build_report(tree, opt);
    expect_rows_bitwise(core::build_report(tree, opt), want);
    const analysis::TreeContext ctx(tree);
    expect_rows_bitwise(core::build_report(ctx, opt), want);
  }
}

TEST(ReportEquivalence, PaperCircuits) {
  check_tree(circuits::fig1());
  check_tree(circuits::tree25());
}

TEST(ReportEquivalence, NetlistDecks) {
  for (const char* deck : {"bus_bit.sp", "clock_spine.sp"})
    check_tree(parse_netlist_file(testdata(deck)).tree);
}

TEST(ReportEquivalence, SpefNets) {
  const SpefFile file = parse_spef_file(testdata("two_nets.spef"));
  ASSERT_FALSE(file.nets.empty());
  for (const SpefNet& net : file.nets) check_tree(net.tree);
}

TEST(ReportEquivalence, GeneratedTopologies) {
  check_tree(gen::line(64, 100.0, 0.1e-12, 50.0, 0.05e-12));
  check_tree(gen::random_tree(80, 29));
}

// ---------------------------------------------------------------------------
// Batch engine: byte-identical output for every --jobs / cache combination
// ---------------------------------------------------------------------------

TEST(BatchEquivalence, RenderersByteIdenticalAcrossJobsAndCache) {
  const SpefFile file = parse_spef_file(testdata("two_nets.spef"));
  engine::BatchOptions base;
  base.jobs = 1;
  const engine::BatchResult baseline = engine::analyze_batch(file, base);
  const std::string text = engine::format_batch(baseline);
  const std::string json = engine::format_batch_json(baseline);
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (const bool use_cache : {true, false}) {
      engine::BatchOptions opt;
      opt.jobs = jobs;
      opt.use_cache = use_cache;
      const engine::BatchResult r = engine::analyze_batch(file, opt);
      EXPECT_EQ(engine::format_batch(r), text) << jobs << " cache=" << use_cache;
      EXPECT_EQ(engine::format_batch_json(r), json) << jobs << " cache=" << use_cache;
    }
  }
}

TEST(BatchEquivalence, BatchRowsMatchReferenceReport) {
  const SpefFile file = parse_spef_file(testdata("two_nets.spef"));
  engine::BatchOptions opt;
  opt.jobs = 2;
  const engine::BatchResult r = engine::analyze_batch(file, opt);
  ASSERT_EQ(r.nets.size(), file.nets.size());
  for (std::size_t i = 0; i < file.nets.size(); ++i) {
    ASSERT_TRUE(r.nets[i].ok());
    expect_rows_bitwise(r.nets[i].rows, reference_build_report(file.nets[i].tree, opt.report));
  }
}

TEST(BatchEquivalence, ContextCountersObserveSharing) {
  // Five stamps of one physical net plus one unique net.
  const RCTree base = gen::random_tree(30, 7);
  auto renamed = [](const RCTree& t, const std::string& prefix) {
    RCTreeBuilder b;
    for (NodeId i = 0; i < t.size(); ++i)
      b.add_node(prefix + std::to_string(i), t.parent(i), t.resistance(i), t.capacitance(i));
    return std::move(b).build();
  };
  auto make_net = [](std::string name, RCTree tree) {
    SpefNet net;
    net.name = std::move(name);
    net.driver = tree.name(tree.children_of_source().front());
    net.loads = tree.leaves();
    net.tree = std::move(tree);
    return net;
  };
  std::vector<SpefNet> nets;
  for (int i = 0; i < 5; ++i)
    nets.push_back(make_net("stamp" + std::to_string(i), renamed(base, "s" + std::to_string(i) + "_")));
  nets.push_back(make_net("unique", renamed(gen::random_tree(30, 8), "u_")));

  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    engine::BatchOptions opt;
    opt.jobs = jobs;
    opt.report.with_exact = false;
    const engine::BatchResult with_cache = engine::analyze_nets(nets, opt);
    // Every analyzed net either built its context or adopted a shared one.
    EXPECT_EQ(with_cache.stats.contexts_built + with_cache.stats.context_reuses,
              with_cache.stats.tasks_run);
    EXPECT_GE(with_cache.stats.contexts_built, 2u);  // two distinct contents

    opt.use_cache = false;
    const engine::BatchResult no_cache = engine::analyze_nets(nets, opt);
    EXPECT_EQ(no_cache.stats.tasks_run, nets.size());
    EXPECT_EQ(no_cache.stats.contexts_built, nets.size());
    EXPECT_EQ(no_cache.stats.context_reuses, 0u);

    // Sharing must not leak donor names or perturb values.
    for (std::size_t i = 0; i < nets.size(); ++i) {
      ASSERT_TRUE(with_cache.nets[i].ok());
      expect_rows_bitwise(with_cache.nets[i].rows, no_cache.nets[i].rows);
      for (const auto& row : with_cache.nets[i].rows)
        EXPECT_EQ(row.name.substr(0, 2), nets[i].tree.name(0).substr(0, 2));
    }
  }
}

}  // namespace
}  // namespace rct
