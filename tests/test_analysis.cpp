// Tests for src/analysis: the shared TreeContext derived-array layer.
//
// The load-bearing guarantees:
//   * every eager array matches the per-call RCTree accessor it replaces,
//   * every derived quantity is bit-identical to the src/moments free
//     function it memoizes (consumers may swap freely without perturbing
//     a ULP),
//   * lazy extension is incremental and thread-safe,
//   * the context-taking overloads across core/sim agree with their
//     tree-taking originals.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "analysis/tree_context.hpp"
#include "core/bounds.hpp"
#include "core/metrics.hpp"
#include "core/report.hpp"
#include "core/sensitivity.hpp"
#include "helpers.hpp"
#include "moments/central.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/circuits.hpp"
#include "rctree/generators.hpp"
#include "sim/mna.hpp"
#include "sim/sources.hpp"

namespace rct::analysis {
namespace {

using testing::ExpectRel;

std::vector<RCTree> sample_trees() {
  std::vector<RCTree> trees;
  trees.push_back(testing::single_rc());
  trees.push_back(testing::two_rc());
  trees.push_back(testing::small_tree());
  trees.push_back(circuits::fig1());
  trees.push_back(circuits::tree25());
  trees.push_back(gen::line(40, 100.0, 0.1e-12, 50.0, 0.05e-12));
  trees.push_back(gen::random_tree(60, 17));
  trees.push_back(gen::random_tree(60, 18, {.bushiness = 0.0}));  // line-like
  return trees;
}

// ---------------------------------------------------------------------------
// Eager arrays
// ---------------------------------------------------------------------------

TEST(TreeContext, EagerArraysMatchAccessors) {
  for (const RCTree& t : sample_trees()) {
    const TreeContext ctx(t);
    ASSERT_EQ(ctx.size(), t.size());
    EXPECT_EQ(ctx.total_capacitance(), t.total_capacitance());
    for (NodeId i = 0; i < t.size(); ++i) {
      EXPECT_EQ(ctx.depth(i), t.depth(i));
      // The walk-based accessors sum in a different order, so compare to a
      // relative tolerance; the array-based moments functions are compared
      // bitwise below.
      ExpectRel(ctx.path_resistance(i), t.path_resistance(i), 1e-12);
      ExpectRel(ctx.subtree_capacitance(i), t.subtree_capacitance(i), 1e-12);
    }
  }
}

TEST(TreeContext, EagerArraysBitIdenticalToMomentsFunctions) {
  for (const RCTree& t : sample_trees()) {
    const TreeContext ctx(t);
    const auto rpath = moments::path_resistances(t);
    const auto ctot = moments::subtree_capacitances(t);
    const auto td = moments::elmore_delays(t);
    for (NodeId i = 0; i < t.size(); ++i) {
      EXPECT_EQ(ctx.path_resistances()[i], rpath[i]);
      EXPECT_EQ(ctx.subtree_capacitances()[i], ctot[i]);
      EXPECT_EQ(ctx.elmore_delays()[i], td[i]);
      EXPECT_EQ(ctx.elmore_delay(i), td[i]);
    }
  }
}

// ---------------------------------------------------------------------------
// Pre-order and subtree intervals
// ---------------------------------------------------------------------------

/// Reference ancestor-or-self test by parent walk.
bool in_subtree_slow(const RCTree& t, NodeId root, NodeId node) {
  for (NodeId v = node; v != kSource; v = t.parent(v))
    if (v == root) return true;
  return false;
}

TEST(TreeContext, PreorderIsParentFirstPermutation) {
  for (const RCTree& t : sample_trees()) {
    const TreeContext ctx(t);
    const auto pre = ctx.preorder();
    ASSERT_EQ(pre.size(), t.size());
    std::vector<char> seen(t.size(), 0);
    for (std::size_t pos = 0; pos < pre.size(); ++pos) {
      const NodeId v = pre[pos];
      ASSERT_LT(v, t.size());
      EXPECT_FALSE(seen[v]);
      seen[v] = 1;
      EXPECT_EQ(ctx.preorder_index()[v], pos);
      const NodeId p = t.parent(v);
      if (p != kSource) EXPECT_LT(ctx.preorder_index()[p], pos);
    }
  }
}

TEST(TreeContext, SubtreeIntervalsMatchParentWalk) {
  for (const RCTree& t : sample_trees()) {
    const TreeContext ctx(t);
    for (NodeId root = 0; root < t.size(); ++root) {
      std::size_t members = 0;
      for (NodeId node = 0; node < t.size(); ++node) {
        const bool expect = in_subtree_slow(t, root, node);
        EXPECT_EQ(ctx.in_subtree(root, node), expect) << root << " " << node;
        if (expect) ++members;
      }
      EXPECT_EQ(ctx.subtree_size(root), members);
      EXPECT_EQ(ctx.subtree_end(root) - ctx.subtree_begin(root), members);
    }
  }
}

TEST(TreeContext, SubtreeIntervalIsContiguousPreorderRun) {
  const RCTree t = gen::random_tree(50, 23);
  const TreeContext ctx(t);
  for (NodeId root = 0; root < t.size(); ++root) {
    for (std::size_t pos = ctx.subtree_begin(root); pos < ctx.subtree_end(root); ++pos)
      EXPECT_TRUE(in_subtree_slow(t, root, ctx.preorder()[pos]));
  }
}

// ---------------------------------------------------------------------------
// Lazy memoization
// ---------------------------------------------------------------------------

TEST(TreeContext, MomentsExtendIncrementallyAndBitIdentical) {
  const RCTree t = circuits::tree25();
  const TreeContext ctx(t);
  EXPECT_EQ(ctx.moments_computed(), 0u);
  ctx.ensure_moments(2);
  EXPECT_EQ(ctx.moments_computed(), 3u);  // m_0..m_2
  ctx.ensure_moments(1);                  // no-op, never shrinks
  EXPECT_EQ(ctx.moments_computed(), 3u);

  // Extending 2 -> 5 must land exactly where a fresh full run lands.
  const auto direct = moments::transfer_moments(t, 5);
  for (std::size_t k = 0; k <= 5; ++k) {
    const auto& mk = ctx.transfer_moment(k);
    ASSERT_EQ(mk.size(), t.size());
    for (NodeId i = 0; i < t.size(); ++i) EXPECT_EQ(mk[i], direct[k][i]);
  }
  EXPECT_EQ(ctx.moments_computed(), 6u);
}

TEST(TreeContext, ImpulseStatsAndPrhTermsBitIdentical) {
  for (const RCTree& t : sample_trees()) {
    const TreeContext ctx(t);
    const auto stats = moments::impulse_stats(t);
    const auto got = ctx.impulse_stats();
    ASSERT_EQ(got.size(), stats.size());
    for (NodeId i = 0; i < t.size(); ++i) {
      EXPECT_EQ(got[i].mean, stats[i].mean);
      EXPECT_EQ(got[i].mu2, stats[i].mu2);
      EXPECT_EQ(got[i].mu3, stats[i].mu3);
      EXPECT_EQ(got[i].sigma, stats[i].sigma);
      EXPECT_EQ(got[i].skewness, stats[i].skewness);
    }
    const moments::PrhTerms want = moments::prh_terms(t);
    const moments::PrhTerms& prh = ctx.prh_terms();
    EXPECT_EQ(prh.tp, want.tp);
    EXPECT_EQ(prh.td, want.td);
    EXPECT_EQ(prh.tr, want.tr);
  }
}

TEST(TreeContext, ReturnedReferencesSurviveLazyExtension) {
  const RCTree t = gen::random_tree(30, 5);
  const TreeContext ctx(t);
  const std::vector<double>& m1 = ctx.transfer_moment(1);
  const double first = m1[0];
  ctx.ensure_moments(8);  // deque growth must not move earlier vectors
  EXPECT_EQ(&m1, &ctx.transfer_moment(1));
  EXPECT_EQ(m1[0], first);
}

TEST(TreeContext, ConcurrentLazyAccessIsConsistent) {
  const RCTree t = gen::random_tree(80, 41);
  const TreeContext ctx(t);
  const auto direct = moments::transfer_moments(t, 6);
  const auto stats = moments::impulse_stats(t);
  const moments::PrhTerms want_prh = moments::prh_terms(t);
  std::vector<std::thread> threads;
  for (int w = 0; w < 8; ++w) {
    threads.emplace_back([&ctx, &direct, &stats, &want_prh, w] {
      // Every thread races extension and reads; memoization must hand all of
      // them the same (bit-identical) arrays.
      const auto& mk = ctx.transfer_moment(1 + static_cast<std::size_t>(w % 6));
      EXPECT_EQ(mk, direct[1 + static_cast<std::size_t>(w % 6)]);
      const auto s = ctx.impulse_stats();
      EXPECT_EQ(s[w].mean, stats[w].mean);
      const moments::PrhTerms& prh = ctx.prh_terms();
      EXPECT_EQ(prh.td[w], want_prh.td[w]);
      ctx.ensure_moments(6);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ctx.moments_computed(), 7u);
}

TEST(TreeContext, OwningConstructorKeepsTreeAlive) {
  std::unique_ptr<TreeContext> ctx;
  {
    auto tree = std::make_shared<const RCTree>(testing::small_tree());
    ctx = std::make_unique<TreeContext>(tree);
  }  // the shared_ptr in this scope is gone; the context still owns the tree
  EXPECT_EQ(ctx->tree().name(0), "a");
  EXPECT_EQ(ctx->impulse_stats().size(), 4u);
  EXPECT_THROW(TreeContext(std::shared_ptr<const RCTree>{}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Context-taking overloads agree with their tree-taking originals
// ---------------------------------------------------------------------------

TEST(ContextOverloads, CoreAnalysesMatchTreeVersions) {
  for (const RCTree& t : sample_trees()) {
    const TreeContext ctx(t);

    const auto db_tree = core::delay_bounds(t);
    const auto db_ctx = core::delay_bounds(ctx);
    ASSERT_EQ(db_tree.size(), db_ctx.size());
    for (NodeId i = 0; i < t.size(); ++i) {
      EXPECT_EQ(db_tree[i].elmore, db_ctx[i].elmore);
      EXPECT_EQ(db_tree[i].sigma, db_ctx[i].sigma);
      EXPECT_EQ(db_tree[i].lower, db_ctx[i].lower);
      EXPECT_EQ(db_tree[i].upper, db_ctx[i].upper);
    }
    const NodeId last = t.size() - 1;
    EXPECT_EQ(core::delay_bounds_at(t, last).lower, core::delay_bounds_at(ctx, last).lower);
    EXPECT_EQ(core::rise_time_estimate(t, last), core::rise_time_estimate(ctx, last));

    const sim::SaturatedRampSource ramp(1e-9);
    const auto gb_tree = core::generalized_bounds(t, last, ramp);
    const auto gb_ctx = core::generalized_bounds(ctx, last, ramp);
    EXPECT_EQ(gb_tree.out_mean, gb_ctx.out_mean);
    EXPECT_EQ(gb_tree.out_sigma, gb_ctx.out_sigma);
    EXPECT_EQ(gb_tree.delay_upper, gb_ctx.delay_upper);
    EXPECT_EQ(gb_tree.delay_lower, gb_ctx.delay_lower);

    const auto dm_tree = core::delay_metrics(t);
    const auto dm_ctx = core::delay_metrics(ctx);
    ASSERT_EQ(dm_tree.size(), dm_ctx.size());
    for (NodeId i = 0; i < t.size(); ++i) {
      EXPECT_EQ(dm_tree[i].elmore, dm_ctx[i].elmore);
      EXPECT_EQ(dm_tree[i].d2m, dm_ctx[i].d2m);
      EXPECT_EQ(dm_tree[i].scaled_elmore, dm_ctx[i].scaled_elmore);
      EXPECT_EQ(dm_tree[i].lower_unimodal, dm_ctx[i].lower_unimodal);
    }

    EXPECT_EQ(core::elmore_cap_sensitivities(t, last),
              core::elmore_cap_sensitivities(ctx, last));
    EXPECT_EQ(core::elmore_res_sensitivities(t, last),
              core::elmore_res_sensitivities(ctx, last));
  }
}

TEST(ContextOverloads, MnaMatchesTreeVersion) {
  const RCTree t = testing::small_tree();
  const TreeContext ctx(t);
  const sim::Mna a = sim::assemble_mna(t);
  const sim::Mna b = sim::assemble_mna(ctx);
  EXPECT_EQ(a.capacitance, b.capacitance);
  EXPECT_EQ(a.injection, b.injection);
  for (NodeId i = 0; i < t.size(); ++i)
    for (NodeId j = 0; j < t.size(); ++j) EXPECT_EQ(a.conductance(i, j), b.conductance(i, j));
  EXPECT_EQ(sim::mna_moments(t, 3), sim::mna_moments(ctx, 3));
}

}  // namespace
}  // namespace rct::analysis
