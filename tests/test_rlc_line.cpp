#include "sim/rlc_line.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rctree/generators.hpp"
#include "sim/exact.hpp"

namespace rct::sim {
namespace {

TEST(RlcLine, Validation) {
  EXPECT_THROW(RlcLine(0, 1.0, 1.0, 1e-9, 1e-12), std::invalid_argument);
  EXPECT_THROW(RlcLine(2, 1.0, 1.0, 0.0, 1e-12), std::invalid_argument);
  EXPECT_THROW(RlcLine(2, 1.0, 1.0, 1e-9, 0.0), std::invalid_argument);
  EXPECT_THROW(RlcLine(2, -1.0, 1.0, 1e-9, 1e-12), std::invalid_argument);
}

TEST(RlcLine, ElmoreMatchesRcLadderFormula) {
  const RlcLine line(4, 50.0, 100.0, 1e-12, 20e-15);
  // C * sum_k (Rd + kR) = 20f * (4*50 + 100*(1+2+3+4)).
  EXPECT_NEAR(line.elmore_delay(), 20e-15 * (4 * 50.0 + 100.0 * 10.0), 1e-27);
}

TEST(RlcLine, TinyInductanceRecoversRcBehaviour) {
  // With negligible L the RLC ladder must match the RC tree exact solver.
  const std::size_t n = 6;
  const double rd = 80.0;
  const double r = 120.0;
  const double c = 30e-15;
  const RlcLine rlc(n, rd, r, 1e-16, c);  // ~zero inductance
  const RCTree rc = gen::line(n - 1, rd + r, c, r, c);
  // gen::line(n-1 segments) gives n nodes with first edge rd+r: same ladder.
  const ExactAnalysis exact(rc);
  const double t_end = 12.0 * exact.dominant_time_constant();
  const Waveform w = rlc.step_response(t_end, 6000);
  for (std::size_t k = 600; k < w.size(); k += 900)
    EXPECT_NEAR(w.value(k), exact.step_response(rc.size() - 1, w.time(k)), 2e-3);
}

TEST(RlcLine, OverdampedIsMonotoneUnderdampedIsNot) {
  // Heavy R: monotone like an RC line.  Light R: rings.
  const RlcLine damped(4, 200.0, 500.0, 0.1e-9, 50e-15);
  const Waveform wd = damped.step_response(damped.settle_horizon(), 8000);
  EXPECT_TRUE(wd.is_monotone_nondecreasing(1e-4));
  EXPECT_LT(damped.overshoot(), 1.001);

  const RlcLine ringing(4, 5.0, 2.0, 2e-9, 50e-15);
  EXPECT_GT(ringing.overshoot(), 1.2);
  const Waveform wr = ringing.step_response(ringing.settle_horizon(), 8000);
  EXPECT_FALSE(wr.is_monotone_nondecreasing(1e-3));
}

TEST(RlcLine, SettlesToOne) {
  const RlcLine line(5, 30.0, 60.0, 0.5e-9, 40e-15);
  const Waveform w = line.step_response(line.settle_horizon(), 8000);
  EXPECT_NEAR(w.values().back(), 1.0, 1e-3);
}

TEST(RlcLine, ElmoreBoundFailsForHighQ) {
  // THE counterexample: a low-loss ladder has a tiny RC first moment but a
  // sqrt(LC)-scale rise — the 50% delay exceeds the "Elmore delay" and the
  // paper's bound genuinely does not apply outside RC trees.
  const RlcLine line(6, 1.0, 0.5, 5e-9, 50e-15);
  const double td = line.elmore_delay();
  const double actual = line.step_delay(0.5);
  EXPECT_GT(actual, 3.0 * td);
}

TEST(RlcLine, ElmoreBoundHoldsWhenHeavilyDamped) {
  // ... and reappears in the RC-like limit, as the theorem promises.
  const RlcLine line(6, 150.0, 300.0, 1e-12, 50e-15);
  EXPECT_LE(line.step_delay(0.5), line.elmore_delay());
}

TEST(RlcLine, ImpulseUnimodalityFailsWhenRinging) {
  // Lemma 1's conclusion (unimodal h) fails with inductance: the numeric
  // derivative of a ringing step response has multiple humps.
  const RlcLine ringing(4, 5.0, 2.0, 2e-9, 50e-15);
  const Waveform w = ringing.step_response(ringing.settle_horizon(), 16000);
  const Waveform h = w.derivative();
  double peak = 0.0;
  for (double v : h.values()) peak = std::max(peak, std::abs(v));
  EXPECT_FALSE(h.is_unimodal(1e-4 * peak));
}

}  // namespace
}  // namespace rct::sim
