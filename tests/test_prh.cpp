#include "core/penfield_rubinstein.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "rctree/circuits.hpp"
#include "rctree/generators.hpp"
#include "sim/exact.hpp"

namespace rct::core {
namespace {

TEST(Prh, SingleRcBoundsAreExact) {
  // With one RC section T_P = T_D = T_R, and both bounds collapse onto the
  // exact response: t = -tau ln(1 - v).
  const double tau = 1e-9;
  const RCTree t = testing::single_rc(1000.0, 1e-12);
  const PrhBounds prh(t);
  for (double v : {0.1, 0.5, 0.9, 0.99}) {
    const double want = -tau * std::log(1.0 - v);
    EXPECT_NEAR(prh.t_min(0, v), want, 1e-12 * want);
    EXPECT_NEAR(prh.t_max(0, v), want, 1e-12 * want);
  }
}

TEST(Prh, TermsAccessors) {
  const RCTree t = testing::small_tree();
  const PrhBounds prh(t);
  EXPECT_GT(prh.tp(), 0.0);
  EXPECT_LE(prh.td(t.at("c")), prh.tp());
  EXPECT_LE(prh.tr(t.at("c")), prh.td(t.at("c")));
}

TEST(Prh, FractionValidation) {
  const PrhBounds prh(testing::single_rc());
  EXPECT_THROW((void)prh.t_min(0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)prh.t_max(0, -0.1), std::invalid_argument);
  EXPECT_EQ(prh.t_min(0, 0.0), 0.0);
}

TEST(Prh, BoundsAreOrderedAndMonotoneInThreshold) {
  const RCTree t = circuits::fig1();
  const PrhBounds prh(t);
  for (NodeId i = 0; i < t.size(); ++i) {
    double prev_min = -1.0;
    double prev_max = -1.0;
    for (double v = 0.05; v < 0.999; v += 0.05) {
      const double lo = prh.t_min(i, v);
      const double hi = prh.t_max(i, v);
      EXPECT_LE(lo, hi * (1 + 1e-12));
      EXPECT_GE(lo, prev_min - 1e-18);
      EXPECT_GE(hi, prev_max - 1e-18);
      prev_min = lo;
      prev_max = hi;
    }
  }
}

class PrhContainment : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrhContainment, ExactCrossingInsideBoundsEverywhere) {
  // The PRH theorem itself: t_min(v) <= t_exact(v) <= t_max(v) for all
  // nodes and thresholds, on random trees.
  const RCTree t = gen::random_tree(20, GetParam());
  const PrhBounds prh(t);
  const sim::ExactAnalysis e(t);
  for (NodeId i = 0; i < t.size(); ++i) {
    for (double v : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      const double exact = e.step_delay(i, v);
      EXPECT_LE(prh.t_min(i, v), exact * (1 + 1e-9)) << "node " << i << " v " << v;
      EXPECT_GE(prh.t_max(i, v), exact * (1 - 1e-9)) << "node " << i << " v " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrhContainment, ::testing::Values(101, 202, 303, 404, 505));

TEST(Prh, DrivingPointTmaxEqualsElmoreAtHalf) {
  // Paper observation (Table I): at the driving point T_R = T_D, so
  // t_max(0.5) = 2 T_D - T_R = T_D whenever 0.5 <= 1 - T_D/T_P.
  const RCTree t = circuits::fig1();
  const PrhBounds prh(t);
  const NodeId n1 = t.at("n1");
  if (0.5 <= 1.0 - prh.td(n1) / prh.tp()) {
    EXPECT_NEAR(prh.t_max(n1, 0.5), prh.td(n1), 1e-9 * prh.td(n1));
  }
}

TEST(Prh, ElmoreTighterAtLeavesPrhTighterAtRoot) {
  // Paper Table I structure: t_max > T_D at the loads, t_max == T_D at the
  // driving point.
  const RCTree t = circuits::fig1();
  const PrhBounds prh(t);
  EXPECT_NEAR(prh.t_max(t.at("n1"), 0.5), prh.td(t.at("n1")), 1e-9 * prh.td(t.at("n1")));
  EXPECT_GT(prh.t_max(t.at("n5"), 0.5), prh.td(t.at("n5")));
  EXPECT_GT(prh.t_max(t.at("n7"), 0.5), prh.td(t.at("n7")));
}

}  // namespace
}  // namespace rct::core
