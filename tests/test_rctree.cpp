#include "rctree/rctree.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "helpers.hpp"
#include "rctree/netlist_parser.hpp"

namespace rct {
namespace {

TEST(RCTreeBuilder, SingleNode) {
  const RCTree t = testing::single_rc(1000.0, 1e-12);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.parent(0), kSource);
  EXPECT_DOUBLE_EQ(t.resistance(0), 1000.0);
  EXPECT_DOUBLE_EQ(t.capacitance(0), 1e-12);
  EXPECT_EQ(t.name(0), "n1");
  EXPECT_TRUE(t.is_leaf(0));
}

TEST(RCTreeBuilder, RejectsEmptyName) {
  RCTreeBuilder b;
  EXPECT_THROW((void)b.add_node("", kSource, 1.0, 1.0), std::invalid_argument);
}

TEST(RCTreeBuilder, RejectsDuplicateName) {
  RCTreeBuilder b;
  b.add_node("x", kSource, 1.0, 1.0);
  EXPECT_THROW((void)b.add_node("x", 0, 1.0, 1.0), std::invalid_argument);
}

TEST(RCTreeBuilder, RejectsNonexistentParent) {
  RCTreeBuilder b;
  EXPECT_THROW((void)b.add_node("x", 5, 1.0, 1.0), std::invalid_argument);
}

TEST(RCTreeBuilder, RejectsNonPositiveResistance) {
  RCTreeBuilder b;
  EXPECT_THROW((void)b.add_node("x", kSource, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)b.add_node("x", kSource, -1.0, 1.0), std::invalid_argument);
}

TEST(RCTreeBuilder, RejectsNegativeCapacitance) {
  RCTreeBuilder b;
  EXPECT_THROW((void)b.add_node("x", kSource, 1.0, -1e-15), std::invalid_argument);
}

TEST(RCTreeBuilder, ZeroCapacitanceAllowed) {
  RCTreeBuilder b;
  b.add_node("x", kSource, 1.0, 0.0);
  const RCTree t = std::move(b).build();
  EXPECT_DOUBLE_EQ(t.capacitance(0), 0.0);
}

TEST(RCTreeBuilder, EmptyBuildThrows) {
  RCTreeBuilder b;
  EXPECT_THROW((void)std::move(b).build(), std::invalid_argument);
}

TEST(RCTree, ChildrenAndLeaves) {
  const RCTree t = testing::small_tree();
  const NodeId a = t.at("a");
  ASSERT_EQ(t.children(a).size(), 2u);
  EXPECT_EQ(t.children_of_source().size(), 1u);
  EXPECT_EQ(t.children_of_source()[0], a);
  const auto leaves = t.leaves();
  ASSERT_EQ(leaves.size(), 2u);
  EXPECT_EQ(t.name(leaves[0]), "c");
  EXPECT_EQ(t.name(leaves[1]), "d");
}

TEST(RCTree, DepthAndPathResistance) {
  const RCTree t = testing::small_tree();
  EXPECT_EQ(t.depth(t.at("a")), 1u);
  EXPECT_EQ(t.depth(t.at("c")), 3u);
  EXPECT_DOUBLE_EQ(t.path_resistance(t.at("c")), 600.0);
  EXPECT_DOUBLE_EQ(t.path_resistance(t.at("d")), 250.0);
}

TEST(RCTree, CapacitanceAggregates) {
  const RCTree t = testing::small_tree();
  EXPECT_DOUBLE_EQ(t.total_capacitance(), 5e-12);
  EXPECT_DOUBLE_EQ(t.subtree_capacitance(t.at("b")), 2.5e-12);
  EXPECT_DOUBLE_EQ(t.subtree_capacitance(t.at("a")), 5e-12);
}

TEST(RCTree, FindAndAt) {
  const RCTree t = testing::small_tree();
  EXPECT_TRUE(t.find("b").has_value());
  EXPECT_FALSE(t.find("nope").has_value());
  EXPECT_THROW((void)t.at("nope"), std::out_of_range);
}

TEST(RCTree, ScaledMultipliesComponents) {
  const RCTree t = testing::small_tree().scaled(2.0, 0.5);
  EXPECT_DOUBLE_EQ(t.resistance(t.at("a")), 200.0);
  EXPECT_DOUBLE_EQ(t.capacitance(t.at("b")), 1e-12);
}

TEST(RCTree, ScaledRejectsBadFactors) {
  EXPECT_THROW((void)testing::small_tree().scaled(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)testing::small_tree().scaled(1.0, -1.0), std::invalid_argument);
}

TEST(RCTree, NetlistRoundTrip) {
  const RCTree t = testing::small_tree();
  const ParsedNetlist parsed = parse_netlist(t.to_netlist("round trip"));
  const RCTree& u = parsed.tree;
  ASSERT_EQ(u.size(), t.size());
  for (NodeId i = 0; i < t.size(); ++i) {
    const NodeId j = u.at(t.name(i));
    EXPECT_DOUBLE_EQ(u.capacitance(j), t.capacitance(i));
    EXPECT_NEAR(u.path_resistance(j), t.path_resistance(i), 1e-9 * t.path_resistance(i));
  }
}

TEST(RCTree, MultipleRootsAllowed) {
  RCTreeBuilder b;
  b.add_node("r1", kSource, 10.0, 1e-12);
  b.add_node("r2", kSource, 20.0, 2e-12);
  const RCTree t = std::move(b).build();
  EXPECT_EQ(t.children_of_source().size(), 2u);
}

}  // namespace
}  // namespace rct
