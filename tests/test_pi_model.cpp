#include "core/pi_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "moments/admittance.hpp"
#include "moments/central.hpp"
#include "rctree/generators.hpp"

namespace rct::core {
namespace {

using rct::testing::ExpectRel;

TEST(PiModel, MatchesFirstThreeAdmittanceMoments) {
  // The defining property (eq. 26): the pi's own m1..m3 equal the tree's.
  for (std::uint64_t seed : {1u, 4u, 9u, 16u}) {
    const RCTree t = gen::random_tree(30, seed);
    const auto y = moments::input_admittance(t, 3);
    const PiModel pi = input_pi_model(t);
    ExpectRel(pi.m1(), y[1], 1e-10);
    ExpectRel(pi.m2(), y[2], 1e-10);
    ExpectRel(pi.m3(), y[3], 1e-10);
  }
}

TEST(PiModel, ComponentsArePhysical) {
  for (std::uint64_t seed : {2u, 8u, 32u}) {
    const PiModel pi = input_pi_model(gen::random_tree(25, seed));
    EXPECT_GT(pi.c1, 0.0);
    EXPECT_GT(pi.c2, 0.0);
    EXPECT_GT(pi.r2, 0.0);
  }
}

TEST(PiModel, TotalCapacitancePreserved) {
  // C1 + C2 = m1(Y) = total tree capacitance.
  const RCTree t = gen::random_tree(40, 5);
  const PiModel pi = input_pi_model(t);
  ExpectRel(pi.c1 + pi.c2, t.total_capacitance(), 1e-10);
}

TEST(PiModel, ExactForActualPiCircuit) {
  // Reducing a literal C1-R2-C2 circuit returns its own components.
  RCTreeBuilder b;
  const NodeId n1 = b.add_node("n1", kSource, 123.0, 3e-12);  // R1 feeds the pi
  b.add_node("n2", n1, 456.0, 2e-12);
  const RCTree t = std::move(b).build();
  const PiModel pi = subtree_pi_model(t, t.at("n1"));
  ExpectRel(pi.c1, 3e-12, 1e-10);
  ExpectRel(pi.c2, 2e-12, 1e-10);
  ExpectRel(pi.r2, 456.0, 1e-10);
}

TEST(PiModel, SingleCapacitorSubtreeRejected) {
  // A bare capacitor has m2 = m3 = 0: not reducible, must throw.
  const RCTree t = testing::single_rc();
  EXPECT_THROW((void)subtree_pi_model(t, 0), std::invalid_argument);
}

TEST(PiModel, NeedsOrderThree) {
  linalg::PowerSeries y(2);
  y[1] = 1e-12;
  EXPECT_THROW((void)pi_model_from_moments(y), std::invalid_argument);
}

TEST(AppendixB, CentralMomentsMatchGeneralFormula) {
  // eq. 28-29 closed forms vs the generic transfer-moment machinery on the
  // literal R1 + pi circuit.
  const double r1 = 200.0;
  const PiModel pi{1.5e-12, 0.8e-12, 350.0};
  RCTreeBuilder b;
  const NodeId n1 = b.add_node("n1", kSource, r1, pi.c1);
  b.add_node("n2", n1, pi.r2, pi.c2);
  const RCTree t = std::move(b).build();

  const auto stats = moments::impulse_stats(t)[t.at("n1")];
  const auto ab = appendix_b_central_moments(r1, pi);
  ExpectRel(ab.mu2, stats.mu2, 1e-12);
  ExpectRel(ab.mu3, stats.mu3, 1e-12);
}

TEST(AppendixB, MomentsNonNegative) {
  // The Lemma 2 induction base: mu2, mu3 >= 0 for any physical pi.
  for (double r1 : {10.0, 100.0, 1000.0}) {
    for (double r2 : {10.0, 1000.0}) {
      const PiModel pi{1e-12, 0.3e-12, r2};
      const auto ab = appendix_b_central_moments(r1, pi);
      EXPECT_GE(ab.mu2, 0.0);
      EXPECT_GE(ab.mu3, 0.0);
    }
  }
}

TEST(PiModel, DrivingPointElmoreOfReducedMatchesOriginal) {
  // Loading a driver resistance with the pi instead of the full tree
  // preserves the driving-point Elmore delay (first moment match).
  const RCTree full = gen::random_tree(30, 41);
  const double r_drv = 75.0;

  RCTreeBuilder wrap_full;
  // driver -> full tree: emulate by scaling: build driver + original tree.
  const NodeId drv = wrap_full.add_node("drv", kSource, r_drv, 0.0);
  for (NodeId i = 0; i < full.size(); ++i) {
    const NodeId p = full.parent(i);
    wrap_full.add_node(full.name(i), p == kSource ? drv : p + 1, full.resistance(i),
                       full.capacitance(i));
  }
  const RCTree loaded_full = std::move(wrap_full).build();

  const PiModel pi = input_pi_model(full);
  RCTreeBuilder wrap_pi;
  const NodeId d2 = wrap_pi.add_node("drv", kSource, r_drv, pi.c1);
  wrap_pi.add_node("far", d2, pi.r2, pi.c2);
  const RCTree loaded_pi = std::move(wrap_pi).build();

  const auto full_stats = moments::impulse_stats(loaded_full)[loaded_full.at("drv")];
  const auto pi_stats = moments::impulse_stats(loaded_pi)[loaded_pi.at("drv")];
  ExpectRel(pi_stats.mean, full_stats.mean, 1e-9);
  // Second/third central moments at the driving point also match, because
  // they depend only on Y's first three moments (Appendix A).
  ExpectRel(pi_stats.mu2, full_stats.mu2, 1e-9);
  ExpectRel(pi_stats.mu3, full_stats.mu3, 1e-9);
}

}  // namespace
}  // namespace rct::core
