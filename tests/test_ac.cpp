#include "sim/ac.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/generators.hpp"

namespace rct::sim {
namespace {

TEST(Ac, SingleRcClosedForm) {
  // H(jw) = 1/(1 + jw tau): |H| = 1/sqrt(1 + (w tau)^2), -3dB at w = 1/tau.
  const double tau = 1e-9;
  const ExactAnalysis e(testing::single_rc(1000.0, 1e-12));
  const AcAnalysis ac(e);
  EXPECT_NEAR(ac.magnitude(0, 0.0), 1.0, 1e-9);
  const double f1 = 1.0 / (2.0 * M_PI * tau);
  EXPECT_NEAR(ac.magnitude(0, f1), 1.0 / std::sqrt(2.0), 1e-6);
  EXPECT_NEAR(ac.phase(0, f1), -M_PI / 4.0, 1e-6);
  EXPECT_NEAR(ac.bandwidth_3db(0), f1, 1e-6 * f1);
}

TEST(Ac, DcGainOneEverywhere) {
  const RCTree t = gen::random_tree(25, 5);
  const ExactAnalysis e(t);
  const AcAnalysis ac(e);
  for (NodeId i = 0; i < t.size(); ++i) EXPECT_NEAR(ac.magnitude(i, 0.0), 1.0, 1e-9);
}

TEST(Ac, MagnitudeMonotoneDecreasing) {
  const RCTree t = gen::random_tree(20, 8);
  const ExactAnalysis e(t);
  const AcAnalysis ac(e);
  const NodeId leaf = t.size() - 1;
  double prev = 1.0;
  const double f0 = e.poles().front() / (2.0 * M_PI);
  for (double mult : {0.1, 0.3, 1.0, 3.0, 10.0, 100.0}) {
    const double m = ac.magnitude(leaf, mult * f0);
    EXPECT_LT(m, prev);
    prev = m;
  }
}

TEST(Ac, BandwidthInverselyTracksElmore) {
  // A classic rule of thumb the toolkit makes checkable: BW * T_D is
  // roughly constant (within a small factor) across nodes and trees.
  double lo = 1e300;
  double hi = 0.0;
  for (std::uint64_t seed : {3u, 7u, 11u}) {
    const RCTree t = gen::random_tree(20, seed);
    const ExactAnalysis e(t);
    const AcAnalysis ac(e);
    const auto td = moments::elmore_delays(t);
    const NodeId leaf = t.size() - 1;
    const double prod = ac.bandwidth_3db(leaf) * td[leaf];
    lo = std::min(lo, prod);
    hi = std::max(hi, prod);
  }
  // For a single pole the product is ln-free: f_bw * T_D = 1/(2 pi) ~ 0.159.
  EXPECT_GT(lo, 0.05);
  EXPECT_LT(hi, 0.5);
}

TEST(Ac, BodeSweepShapes) {
  const RCTree t = testing::two_rc();
  const ExactAnalysis e(t);
  const AcAnalysis ac(e);
  const double f0 = e.poles().front() / (2.0 * M_PI);
  const auto pts = ac.bode(1, 0.01 * f0, 100.0 * f0, 20);
  ASSERT_EQ(pts.size(), 20u);
  EXPECT_NEAR(pts.front().magnitude_db, 0.0, 0.1);   // flat at DC
  EXPECT_LT(pts.back().magnitude_db, -20.0);          // well into rolloff
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i].magnitude_db, pts[i - 1].magnitude_db + 1e-9);
    EXPECT_GT(pts[i].freq_hz, pts[i - 1].freq_hz);
  }
}

TEST(Ac, BodeValidation) {
  const ExactAnalysis e(testing::single_rc());
  const AcAnalysis ac(e);
  EXPECT_THROW((void)ac.bode(0, 0.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW((void)ac.bode(0, 2.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW((void)ac.bode(0, 1.0, 2.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace rct::sim
