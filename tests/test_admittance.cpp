#include "moments/admittance.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/generators.hpp"

namespace rct::moments {
namespace {

using linalg::PowerSeries;
using rct::testing::ExpectRel;

TEST(SeriesResistor, ClosedFormForPureCapacitor) {
  // Y = cs through r: cs/(1 + rcs) = cs - rc^2 s^2 + r^2 c^3 s^3 - ...
  const double c = 1e-12;
  const double r = 1000.0;
  PowerSeries y(4);
  y[1] = c;
  const PowerSeries out = through_series_resistor(y, r);
  EXPECT_NEAR(out[0], 0.0, 1e-30);
  ExpectRel(out[1], c, 1e-14);
  ExpectRel(out[2], -r * c * c, 1e-14);
  ExpectRel(out[3], r * r * c * c * c, 1e-14);
  ExpectRel(out[4], -r * r * r * c * c * c * c, 1e-14);
}

TEST(NodeAdmittance, LeafIsJustItsCapacitor) {
  const RCTree t = testing::small_tree();
  const PowerSeries y = node_admittance(t, t.at("c"), 3);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 0.5e-12);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
  EXPECT_DOUBLE_EQ(y[3], 0.0);
}

TEST(NodeAdmittance, FirstMomentIsSubtreeCapacitance) {
  // m1(Y at node i) = total downstream capacitance, for any tree.
  const RCTree t = gen::random_tree(60, 6);
  const auto ctot = subtree_capacitances(t);
  for (NodeId i = 0; i < t.size(); ++i) {
    const PowerSeries y = node_admittance(t, i, 2);
    ExpectRel(y[1], ctot[i], 1e-12);
  }
}

TEST(InputAdmittance, MomentSignsAlternate) {
  const RCTree t = gen::random_tree(40, 9);
  const PowerSeries y = input_admittance(t, 5);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  for (std::size_t k = 1; k <= 5; ++k) {
    if (k % 2)
      EXPECT_GT(y[k], 0.0) << k;
    else
      EXPECT_LT(y[k], 0.0) << k;
  }
}

TEST(InputAdmittance, SecondMomentClosedFormForSingleRc) {
  // Y_in(s) = cs/(1+rcs): moments c, -rc^2, r^2c^3 ...
  const double r = 500.0;
  const double c = 2e-12;
  const PowerSeries y = input_admittance(testing::single_rc(r, c), 3);
  ExpectRel(y[1], c, 1e-14);
  ExpectRel(y[2], -r * c * c, 1e-14);
  ExpectRel(y[3], r * r * c * c * c, 1e-14);
}

TEST(TransferFromAdmittance, MatchesPathTracingAtRoot) {
  // eq. (A1)/(A3): H_1 from Y_1 must equal path-traced transfer moments at
  // the root node — for any tree.
  for (std::uint64_t seed : {3u, 13u, 23u}) {
    const RCTree t = gen::random_tree(35, seed);
    const NodeId root = t.children_of_source()[0];
    const PowerSeries h = transfer_from_admittance(t, root, 4);
    const auto m = transfer_moments(t, 4);
    for (std::size_t k = 0; k <= 4; ++k) {
      const double scale = std::abs(m[k][root]) + 1e-300;
      EXPECT_NEAR(h[k] / scale, m[k][root] / scale, 1e-9) << "k=" << k;
    }
  }
}

TEST(TransferFromAdmittance, RejectsNonRootNode) {
  const RCTree t = testing::small_tree();
  EXPECT_THROW((void)transfer_from_admittance(t, t.at("b"), 3), std::invalid_argument);
}

TEST(NodeAdmittance, OutOfRangeThrows) {
  const RCTree t = testing::single_rc();
  EXPECT_THROW((void)node_admittance(t, 5, 3), std::invalid_argument);
}

TEST(InputAdmittance, ParallelRootsAdd) {
  // Two root branches: admittance moments are the sum of each branch's.
  RCTreeBuilder b;
  b.add_node("r1", kSource, 100.0, 1e-12);
  b.add_node("r2", kSource, 300.0, 2e-12);
  const RCTree both = std::move(b).build();

  const PowerSeries ya = input_admittance(testing::single_rc(100.0, 1e-12), 3);
  const PowerSeries yb = input_admittance(testing::single_rc(300.0, 2e-12), 3);
  const PowerSeries y = input_admittance(both, 3);
  for (std::size_t k = 0; k <= 3; ++k) EXPECT_NEAR(y[k], ya[k] + yb[k], 1e-12 * std::abs(y[k]));
}

}  // namespace
}  // namespace rct::moments
