#include "sta/nldm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "moments/path_tracing.hpp"
#include "rctree/generators.hpp"
#include "sim/exact.hpp"
#include "sim/sources.hpp"
#include "sta/path_timer.hpp"

namespace rct::sta {
namespace {

TEST(DelayTable, Validation) {
  EXPECT_THROW(DelayTable({}, {1.0}, {}), std::invalid_argument);
  EXPECT_THROW(DelayTable({1.0, 1.0}, {1.0}, {0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(DelayTable({1.0}, {1.0, 2.0}, {0.0}), std::invalid_argument);
}

TEST(DelayTable, ExactOnGridBilinearBetween) {
  // values(s, l) = 2s + 3l is reproduced exactly by bilinear interpolation.
  const std::vector<double> s{1.0, 2.0, 4.0};
  const std::vector<double> l{10.0, 20.0};
  std::vector<double> v;
  for (double ss : s)
    for (double ll : l) v.push_back(2.0 * ss + 3.0 * ll);
  const DelayTable t(s, l, v);
  EXPECT_DOUBLE_EQ(t.lookup(2.0, 20.0), 2 * 2.0 + 3 * 20.0);
  EXPECT_NEAR(t.lookup(3.0, 15.0), 2 * 3.0 + 3 * 15.0, 1e-12);
  EXPECT_NEAR(t.lookup(1.5, 10.0), 2 * 1.5 + 3 * 10.0, 1e-12);
}

TEST(DelayTable, ClampsOutsideGrid) {
  const DelayTable t({1.0, 2.0}, {1.0, 2.0}, {10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(t.lookup(0.0, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(t.lookup(99.0, 99.0), 40.0);
  EXPECT_DOUBLE_EQ(t.lookup(0.0, 99.0), 20.0);
}

TEST(Characterize, FastInputMatchesStepClosedForm) {
  // Near-step input: delay -> intrinsic + ln2 * R * C_load.
  Gate g{"g", 5e-15, 1000.0, 10e-12};
  const auto cg = characterize(g, {1e-13, 1e-10}, {10e-15, 100e-15});
  const double want = 10e-12 + std::log(2.0) * 1000.0 * 10e-15;
  EXPECT_NEAR(cg.delay.lookup(1e-13, 10e-15), want, 1e-3 * want);
}

TEST(Characterize, MonotoneInLoadAndSlewBehaviour) {
  Gate g{"g", 5e-15, 800.0, 15e-12};
  const std::vector<double> slews{10e-12, 100e-12, 400e-12};
  const std::vector<double> loads{5e-15, 20e-15, 80e-15};
  const auto cg = characterize(g, slews, loads);
  // Delay grows with load at fixed slew.
  for (double s : slews) {
    double prev = -1.0;
    for (double l : loads) {
      const double d = cg.delay.lookup(s, l);
      EXPECT_GT(d, prev);
      prev = d;
    }
  }
  // Output slew grows with load and (weakly) shrinks toward the RC limit.
  EXPECT_GT(cg.out_slew.lookup(10e-12, 80e-15), cg.out_slew.lookup(10e-12, 5e-15));
}

TEST(Characterize, DelayClimbsWithRiseTimeTowardElmore) {
  // Corollary 3 inside a gate table: the 50-50 stage delay climbs with the
  // input rise time and asymptotes at T_D = R * C_load from below.
  Gate g{"g", 5e-15, 1000.0, 0.0};
  const std::vector<double> slews{1e-12, 1e-10, 1e-9, 5e-9};
  const auto cg = characterize(g, slews, {50e-15});
  double prev = 0.0;
  for (double s : slews) {
    const double d = cg.delay.lookup(s, 50e-15);
    EXPECT_GE(d, prev * (1 - 1e-9));
    prev = d;
  }
  // Asymptote: tau = 50 ps.
  EXPECT_LT(prev, 1000.0 * 50e-15 * (1 + 1e-6));
  EXPECT_GT(prev, 0.9 * 1000.0 * 50e-15);
}

double exact_stage_delay(const Gate& g, const RCTree& wire, const char* sink,
                         double input_slew) {
  const RCTree full = load_net(wire, g.drive_resistance, {});
  const sim::ExactAnalysis exact(full);
  const sim::SaturatedRampSource ramp(input_slew);
  return exact.delay_50_50(full.at(sink), ramp);
}

TEST(TableStage, AccurateOnDriverDominatedStage) {
  // When the gate resistance dominates the wire, Ceff + table lookup is the
  // textbook-accurate estimate (within ~10%).
  Gate g{"g", 5e-15, 2400.0, 0.0};
  const auto cg = characterize(g, {1e-12, 50e-12, 200e-12, 800e-12},
                               {5e-15, 20e-15, 60e-15, 200e-15, 600e-15});
  const RCTree wire = gen::line(6, 15.0, 2e-15, 40.0, 25e-15);
  const double input_slew = 100e-12;
  const auto est = table_stage_delay(cg, wire, wire.at("n7"), input_slew);
  const double truth = exact_stage_delay(g, wire, "n7", input_slew);
  EXPECT_NEAR(est.delay, truth, 0.10 * truth);
  EXPECT_GT(est.ceff, 0.0);
  EXPECT_LE(est.ceff, wire.total_capacitance() * (1 + 1e-9));
}

TEST(TableStage, KnownBiasOnWireDominatedStage) {
  // Wire-dominated stages expose the method's documented bias (the Ceff
  // waveform approximation); it stays within ~35% here while the paper's
  // Elmore bound stays *sound* — the trade the repo exists to illustrate.
  Gate g{"g", 5e-15, 600.0, 0.0};
  const auto cg = characterize(g, {1e-12, 50e-12, 200e-12, 800e-12},
                               {5e-15, 20e-15, 60e-15, 200e-15, 600e-15});
  const RCTree wire = gen::line(6, 15.0, 2e-15, 120.0, 25e-15);
  const double input_slew = 100e-12;
  const auto est = table_stage_delay(cg, wire, wire.at("n7"), input_slew);
  const double truth = exact_stage_delay(g, wire, "n7", input_slew);
  EXPECT_NEAR(est.delay, truth, 0.35 * truth);
  // The guaranteed upper bound (driver Elmore stage) still contains truth.
  const RCTree full = load_net(wire, g.drive_resistance, {});
  const double bound = moments::elmore_delays(full)[full.at("n7")];
  EXPECT_LE(truth, bound * (1 + 1e-9));
}

TEST(TableStage, Validation) {
  Gate g{"g", 5e-15, 600.0, 0.0};
  const auto cg = characterize(g, {1e-12, 1e-10}, {1e-15, 1e-13});
  const RCTree wire = gen::line(3, 15.0, 2e-15, 120.0, 25e-15);
  EXPECT_THROW((void)table_stage_delay(cg, wire, 99, 1e-11), std::invalid_argument);
}

}  // namespace
}  // namespace rct::sta
