#include "rctree/spef.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/generators.hpp"

namespace rct {
namespace {

constexpr const char* kSpef = R"(*SPEF "IEEE 1481-1998"
*DESIGN "demo_chip"
*DATE "2026"
*VENDOR "rct"
*T_UNIT 1 NS
*C_UNIT 1 PF
*R_UNIT 1 OHM

*D_NET clk_leaf 0.24
*CONN
*P drv I
*I u1:A O
*I u2:A O
*CAP
1 n1 0.08
2 u1:A 0.10
3 u2:A 0.06
*RES
1 drv n1 120
2 n1 u1:A 80
3 n1 u2:A 95
*END

*D_NET small 0.01
*CONN
*P p2 I
*I s1 O
*CAP
1 s1 0.01
*RES
1 p2 s1 50
*END
)";

TEST(SpefParser, ParsesHeaderAndUnits) {
  const SpefFile f = parse_spef(kSpef);
  EXPECT_EQ(f.design, "demo_chip");
  EXPECT_DOUBLE_EQ(f.time_unit, 1e-9);
  EXPECT_DOUBLE_EQ(f.cap_unit, 1e-12);
  EXPECT_DOUBLE_EQ(f.res_unit, 1.0);
  ASSERT_EQ(f.nets.size(), 2u);
}

TEST(SpefParser, BuildsTreeWithScaledValues) {
  const SpefFile f = parse_spef(kSpef);
  const SpefNet& net = f.nets[0];
  EXPECT_EQ(net.name, "clk_leaf");
  EXPECT_EQ(net.driver, "drv");
  ASSERT_EQ(net.tree.size(), 3u);
  EXPECT_DOUBLE_EQ(net.tree.capacitance(net.tree.at("n1")), 0.08e-12);
  EXPECT_DOUBLE_EQ(net.tree.resistance(net.tree.at("u1:A")), 80.0);
  ASSERT_EQ(net.loads.size(), 2u);
  EXPECT_EQ(net.tree.name(net.loads[0]), "u1:A");
}

TEST(SpefParser, AlternateUnitsScale) {
  const SpefFile f = parse_spef(
      "*C_UNIT 1 FF\n*R_UNIT 1 KOHM\n"
      "*D_NET n 1\n*CONN\n*P a I\n*CAP\n1 b 5\n*RES\n1 a b 2\n*END\n");
  EXPECT_DOUBLE_EQ(f.nets[0].tree.capacitance(0), 5e-15);
  EXPECT_DOUBLE_EQ(f.nets[0].tree.resistance(0), 2000.0);
}

TEST(SpefParser, CouplingCapRejected) {
  EXPECT_THROW((void)parse_spef("*D_NET n 1\n*CONN\n*P a I\n*CAP\n1 b c 5\n*RES\n1 a b 2\n*END\n"),
               SpefError);
}

TEST(SpefParser, InductanceRejected) {
  EXPECT_THROW((void)parse_spef("*D_NET n 1\n*CONN\n*P a I\n*INDUC\n"), SpefError);
}

TEST(SpefParser, MissingDriverRejected) {
  EXPECT_THROW(
      (void)parse_spef("*D_NET n 1\n*CONN\n*I b O\n*CAP\n1 b 5\n*RES\n1 a b 2\n*END\n"),
      SpefError);
}

TEST(SpefParser, LoopRejectedWithLineNumber) {
  try {
    (void)parse_spef(
        "*D_NET n 1\n*CONN\n*P a I\n*CAP\n1 b 1\n1 c 1\n*RES\n"
        "1 a b 2\n2 a c 2\n3 b c 2\n*END\n");
    FAIL() << "expected SpefError";
  } catch (const SpefError& e) {
    EXPECT_NE(std::string(e.what()).find("loop"), std::string::npos);
  }
}

TEST(SpefParser, EmptyFileRejected) {
  EXPECT_THROW((void)parse_spef("*SPEF \"x\"\n"), SpefError);
}

TEST(SpefParser, UnknownLoadPinRejected) {
  EXPECT_THROW((void)parse_spef("*D_NET n 1\n*CONN\n*P a I\n*I zz O\n*CAP\n1 b 1\n*RES\n"
                                "1 a b 2\n*END\n"),
               SpefError);
}

TEST(SpefWriter, RoundTripPreservesElmore) {
  // random tree -> SPEF text -> parse -> same Elmore delays per node name.
  const RCTree t = gen::random_tree(30, 123);
  const SpefFile out = spef_from_tree(t, "rt_net");
  const SpefFile back = parse_spef(write_spef(out));
  ASSERT_EQ(back.nets.size(), 1u);
  const RCTree& u = back.nets[0].tree;
  ASSERT_EQ(u.size(), t.size());
  const auto td_t = moments::elmore_delays(t);
  const auto td_u = moments::elmore_delays(u);
  for (NodeId i = 0; i < t.size(); ++i) {
    const NodeId j = u.at(t.name(i));
    EXPECT_NEAR(td_u[j], td_t[i], 1e-5 * td_t[i]) << t.name(i);
  }
}

TEST(SpefWriter, ShortestFormattingRoundTripsExactly) {
  // write_spef emits shortest-round-trip decimals (std::to_chars), so
  // resistances — written unscaled, OHM units — must survive write -> parse
  // BIT-exactly, even for values the old "%.6g" truncated.
  RCTreeBuilder builder;
  const NodeId a = builder.add_node("a", kSource, 1.0 / 3.0, 0.1e-12);
  const NodeId b = builder.add_node("b", a, 123.456789012345678, 2.5e-15);
  (void)builder.add_node("c", b, 1e-3 + 1e-19, 7.000000000000001e-13);
  const SpefFile out = spef_from_tree(std::move(builder).build(), "exact");
  const RCTree& t = out.nets[0].tree;
  const SpefFile back = parse_spef(write_spef(out));
  const RCTree& u = back.nets[0].tree;
  ASSERT_EQ(u.size(), t.size());
  for (NodeId i = 0; i < t.size(); ++i) {
    const NodeId j = u.at(t.name(i));
    EXPECT_EQ(u.resistance(j), t.resistance(i)) << t.name(i);
  }
  // Caps cross the PF scaling (c / 1e-12 on write, * 1e-12 on parse), so a
  // single cycle may move the value by an ulp — but the cycle must be a
  // fixed point: a second write/parse changes nothing.
  const SpefFile twice = parse_spef(write_spef(back));
  EXPECT_EQ(write_spef(back), write_spef(twice));
  for (NodeId i = 0; i < u.size(); ++i) {
    const NodeId j = twice.nets[0].tree.at(u.name(i));
    EXPECT_EQ(twice.nets[0].tree.capacitance(j), u.capacitance(i)) << u.name(i);
  }
}

TEST(SpefWriter, LoadsSurviveRoundTrip) {
  const RCTree t = testing::small_tree();
  const SpefFile back = parse_spef(write_spef(spef_from_tree(t, "n")));
  ASSERT_EQ(back.nets[0].loads.size(), t.leaves().size());
}

TEST(SpefParser, FileNotFoundThrows) {
  EXPECT_THROW((void)parse_spef_file("/nonexistent.spef"), SpefError);
}

}  // namespace
}  // namespace rct
