// Scaling and numerical-convergence properties that cut across modules:
// every Elmore-family quantity scales as kr*kc under component scaling,
// the transient integrators converge at their theoretical orders, and the
// exact engine is invariant under node relabeling of the same circuit.

#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "core/penfield_rubinstein.hpp"
#include "helpers.hpp"
#include "moments/central.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/generators.hpp"
#include "sim/exact.hpp"
#include "sim/transient.hpp"

namespace rct {
namespace {

using rct::testing::ExpectRel;

class ScalingInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScalingInvariance, AllTimeQuantitiesScaleAsKrKc) {
  const RCTree t = gen::random_tree(25, GetParam());
  const double kr = 3.7;
  const double kc = 0.21;
  const double k = kr * kc;
  const RCTree s = t.scaled(kr, kc);

  const auto td_t = moments::elmore_delays(t);
  const auto td_s = moments::elmore_delays(s);
  const auto st_t = moments::impulse_stats(t);
  const auto st_s = moments::impulse_stats(s);
  const auto prh_t = moments::prh_terms(t);
  const auto prh_s = moments::prh_terms(s);
  ExpectRel(prh_s.tp, k * prh_t.tp, 1e-12);
  for (NodeId i = 0; i < t.size(); ++i) {
    ExpectRel(td_s[i], k * td_t[i], 1e-12);
    ExpectRel(st_s[i].sigma, k * st_t[i].sigma, 1e-12);
    ExpectRel(st_s[i].mu3, k * k * k * st_t[i].mu3, 1e-12);
    // Skewness is dimensionless: invariant (absolute floor absorbs the
    // catastrophic cancellation on near-symmetric nodes).
    ExpectRel(st_s[i].skewness, st_t[i].skewness, 1e-9, 1e-7);
    ExpectRel(prh_s.tr[i], k * prh_t.tr[i], 1e-12);
  }

  // Exact 50% delays scale identically (time axis stretch).
  const sim::ExactAnalysis et(t);
  const sim::ExactAnalysis es(s);
  for (NodeId i : {NodeId{0}, t.size() - 1})
    ExpectRel(es.step_delay(i), k * et.step_delay(i), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalingInvariance, ::testing::Values(4, 8, 15, 16, 23, 42));

TEST(Convergence, BackwardEulerIsFirstOrder) {
  // Halving the step should roughly halve the endpoint-time error.
  const RCTree t = testing::two_rc();
  const sim::ExactAnalysis exact(t);
  const sim::StepSource step;
  const double t_end = 3.0 * exact.dominant_time_constant();
  auto max_err = [&](std::size_t steps) {
    sim::TransientOptions o;
    o.t_end = t_end;
    o.steps = steps;
    o.method = sim::Method::kBackwardEuler;
    const auto res = sim::simulate(t, step, {1}, o);
    double err = 0.0;
    for (std::size_t k2 = 1; k2 < res.time.size(); ++k2)
      err = std::max(err, std::abs(res.values[0][k2] - exact.step_response(1, res.time[k2])));
    return err;
  };
  const double e1 = max_err(200);
  const double e2 = max_err(400);
  const double ratio = e1 / e2;
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.6);
}

TEST(Convergence, TrapezoidalIsSecondOrder) {
  const RCTree t = testing::two_rc();
  const sim::ExactAnalysis exact(t);
  // Smooth input avoids the t=0 corner that degrades the observed order.
  const sim::RaisedCosineSource src(2.0 * exact.dominant_time_constant());
  const double t_end = 6.0 * exact.dominant_time_constant();
  auto max_err = [&](std::size_t steps) {
    sim::TransientOptions o;
    o.t_end = t_end;
    o.steps = steps;
    o.method = sim::Method::kTrapezoidal;
    const auto res = sim::simulate(t, src, {1}, o);
    double err = 0.0;
    for (std::size_t k2 = 1; k2 < res.time.size(); ++k2)
      err = std::max(err,
                     std::abs(res.values[0][k2] - exact.response(1, src, res.time[k2])));
    return err;
  };
  const double e1 = max_err(100);
  const double e2 = max_err(200);
  const double ratio = e1 / e2;
  EXPECT_GT(ratio, 3.0);  // ~4 for a second-order method
  EXPECT_LT(ratio, 6.0);
}

TEST(Relabeling, NodeOrderDoesNotChangePhysics) {
  // The same circuit built in two different (valid) topological orders must
  // produce identical metrics per node name.
  RCTreeBuilder a;
  const NodeId a1 = a.add_node("x", kSource, 100.0, 1e-12);
  const NodeId a2 = a.add_node("y", a1, 200.0, 2e-12);
  a.add_node("z", a2, 300.0, 0.5e-12);
  a.add_node("w", a1, 150.0, 1.5e-12);
  const RCTree ta = std::move(a).build();

  RCTreeBuilder b;
  const NodeId b1 = b.add_node("x", kSource, 100.0, 1e-12);
  b.add_node("w", b1, 150.0, 1.5e-12);  // branch first this time
  const NodeId b2 = b.add_node("y", b1, 200.0, 2e-12);
  b.add_node("z", b2, 300.0, 0.5e-12);
  const RCTree tb = std::move(b).build();

  const auto td_a = moments::elmore_delays(ta);
  const auto td_b = moments::elmore_delays(tb);
  const sim::ExactAnalysis ea(ta);
  const sim::ExactAnalysis eb(tb);
  for (const char* n : {"x", "y", "z", "w"}) {
    ExpectRel(td_b[tb.at(n)], td_a[ta.at(n)], 1e-12);
    ExpectRel(eb.step_delay(tb.at(n)), ea.step_delay(ta.at(n)), 1e-9);
  }
}

TEST(Scaling, BoundsScaleConsistently) {
  const RCTree t = gen::random_tree(20, 99);
  const double k = 2.5 * 0.4;
  const RCTree s = t.scaled(2.5, 0.4);
  const auto bt = core::delay_bounds(t);
  const auto bs = core::delay_bounds(s);
  const core::PrhBounds pt(t);
  const core::PrhBounds ps(s);
  for (NodeId i = 0; i < t.size(); ++i) {
    ExpectRel(bs[i].lower, k * bt[i].lower, 1e-9, 1e-30);
    ExpectRel(ps.t_max(i, 0.5), k * pt.t_max(i, 0.5), 1e-12);
    ExpectRel(ps.t_min(i, 0.5), k * pt.t_min(i, 0.5), 1e-12, 1e-30);
  }
}

}  // namespace
}  // namespace rct
