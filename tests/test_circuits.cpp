#include "rctree/circuits.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "moments/path_tracing.hpp"

namespace rct::circuits {
namespace {

using rct::testing::ExpectRel;

TEST(Fig1, Topology) {
  const RCTree t = fig1();
  ASSERT_EQ(t.size(), 7u);
  EXPECT_EQ(t.parent(t.at("n1")), kSource);
  EXPECT_EQ(t.parent(t.at("n5")), t.at("n4"));
  EXPECT_EQ(t.parent(t.at("n6")), t.at("n1"));
  EXPECT_EQ(t.parent(t.at("n7")), t.at("n6"));
  // Two leaves: the end of the main chain and the end of the side branch.
  EXPECT_EQ(t.leaves().size(), 2u);
}

TEST(Fig1, ObservedNodesInPaperOrder) {
  const RCTree t = fig1();
  const auto obs = fig1_observed(t);
  EXPECT_EQ(t.name(obs[0]), "n1");
  EXPECT_EQ(t.name(obs[1]), "n5");
  EXPECT_EQ(t.name(obs[2]), "n7");
}

TEST(Fig1, CalibratedElmoreMatchesTable1) {
  // Calibration target: Elmore delays within ~3% of the published Table I.
  const RCTree t = fig1();
  const auto td = moments::elmore_delays(t);
  const auto obs = fig1_observed(t);
  const auto pub = table1_published();
  for (int k = 0; k < 3; ++k) ExpectRel(td[obs[k]], pub[k].elmore, 0.03);
}

TEST(Tree25, TopologyHas25Nodes) {
  const RCTree t = tree25();
  EXPECT_EQ(t.size(), 25u);
  EXPECT_EQ(t.depth(t.at("A")), 1u);
  EXPECT_GT(t.depth(t.at("C")), t.depth(t.at("B")));
}

TEST(Tree25, CalibratedElmoreMatchesTable2) {
  const RCTree t = tree25();
  const auto td = moments::elmore_delays(t);
  const auto obs = tree25_observed(t);
  const auto pub = table2_published();
  for (int k = 0; k < 3; ++k) ExpectRel(td[obs[k]], pub[k].elmore, 0.03);
}

TEST(PublishedTables, SanityRelationsHold) {
  // In the published data the Elmore value always upper-bounds the actual
  // delay (the paper's theorem) and the PRH bounds bracket it.
  for (const auto& row : table1_published()) {
    EXPECT_GE(row.elmore, row.actual_delay);
    EXPECT_LE(row.prh_tmin, row.actual_delay);
    EXPECT_GE(row.prh_tmax, row.actual_delay);
    EXPECT_LE(row.lower_bound, row.actual_delay);
  }
  for (const auto& row : table2_published()) {
    EXPECT_GE(row.elmore, row.delay_1ns);
    EXPECT_GE(row.delay_5ns, row.delay_1ns);
    EXPECT_GE(row.delay_10ns, row.delay_5ns);
    EXPECT_GT(row.error_1ns, row.error_5ns);
    EXPECT_GT(row.error_5ns, row.error_10ns);
  }
}

}  // namespace
}  // namespace rct::circuits
