#include "core/report.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "rctree/circuits.hpp"

namespace rct::core {
namespace {

TEST(Report, RowsCoverAllNodes) {
  const RCTree t = circuits::fig1();
  const auto rows = build_report(t);
  ASSERT_EQ(rows.size(), t.size());
  for (const auto& r : rows) {
    EXPECT_FALSE(r.name.empty());
    EXPECT_TRUE(r.exact_delay.has_value());
    EXPECT_TRUE(r.exact_rise.has_value());
  }
}

TEST(Report, LeavesOnlyFilter) {
  const RCTree t = circuits::fig1();
  ReportOptions opt;
  opt.leaves_only = true;
  const auto rows = build_report(t, opt);
  ASSERT_EQ(rows.size(), 2u);  // n5 and n7
}

TEST(Report, WithoutExactSkipsEigensolve) {
  const RCTree t = circuits::fig1();
  ReportOptions opt;
  opt.with_exact = false;
  const auto rows = build_report(t, opt);
  for (const auto& r : rows) EXPECT_FALSE(r.exact_delay.has_value());
}

TEST(Report, InvariantsPerRow) {
  const RCTree t = circuits::tree25();
  for (const auto& r : build_report(t)) {
    EXPECT_GE(*r.exact_delay, r.prh_tmin * (1 - 1e-9));
    EXPECT_LE(*r.exact_delay, r.prh_tmax * (1 + 1e-9));
    EXPECT_LE(*r.exact_delay, r.elmore * (1 + 1e-9));
    EXPECT_GE(*r.exact_delay, r.lower_bound * (1 - 1e-9));
    EXPECT_GE(r.skewness, 0.0);
    EXPECT_GT(r.sigma, 0.0);
  }
}

TEST(Report, CustomFraction) {
  const RCTree t = circuits::fig1();
  ReportOptions opt;
  opt.fraction = 0.9;
  const auto rows = build_report(t, opt);
  // 90% delays exceed 50% delays.
  const auto rows50 = build_report(t);
  for (std::size_t i = 0; i < rows.size(); ++i)
    EXPECT_GT(*rows[i].exact_delay, *rows50[i].exact_delay);
}

TEST(Report, FormatContainsHeaderAndEveryNode) {
  const RCTree t = circuits::fig1();
  const std::string text = format_report(build_report(t));
  EXPECT_NE(text.find("elmore"), std::string::npos);
  for (NodeId i = 0; i < t.size(); ++i)
    EXPECT_NE(text.find(t.name(i)), std::string::npos) << t.name(i);
}

}  // namespace
}  // namespace rct::core
