#include "linalg/power_series.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace rct::linalg {
namespace {

TEST(PowerSeries, ZeroConstruction) {
  PowerSeries p(3);
  EXPECT_EQ(p.order(), 3u);
  for (std::size_t k = 0; k <= 3; ++k) EXPECT_EQ(p[k], 0.0);
}

TEST(PowerSeries, AdditionAndSubtraction) {
  PowerSeries a(std::vector<double>{1.0, 2.0, 3.0});
  PowerSeries b(std::vector<double>{0.5, -1.0, 4.0});
  const PowerSeries s = a + b;
  EXPECT_DOUBLE_EQ(s[0], 1.5);
  EXPECT_DOUBLE_EQ(s[1], 1.0);
  EXPECT_DOUBLE_EQ(s[2], 7.0);
  const PowerSeries d = s - b;
  EXPECT_DOUBLE_EQ(d[0], a[0]);
  EXPECT_DOUBLE_EQ(d[1], a[1]);
  EXPECT_DOUBLE_EQ(d[2], a[2]);
}

TEST(PowerSeries, ScalarMultiply) {
  PowerSeries a(std::vector<double>{1.0, -2.0});
  const PowerSeries b = a * 3.0;
  EXPECT_DOUBLE_EQ(b[0], 3.0);
  EXPECT_DOUBLE_EQ(b[1], -6.0);
}

TEST(PowerSeries, TruncatedProduct) {
  // (1 + s)(1 - s + s^2) = 1 + s^3 -> truncated at order 2: 1 + 0 s + 0 s^2.
  PowerSeries a(std::vector<double>{1.0, 1.0, 0.0});
  PowerSeries b(std::vector<double>{1.0, -1.0, 1.0});
  const PowerSeries p = a.multiply(b);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_NEAR(p[1], 0.0, 1e-15);
  EXPECT_NEAR(p[2], 0.0, 1e-15);
}

TEST(PowerSeries, ReciprocalOfGeometric) {
  // 1/(1 - s) = 1 + s + s^2 + s^3.
  PowerSeries a(std::vector<double>{1.0, -1.0, 0.0, 0.0});
  const PowerSeries r = a.reciprocal();
  for (std::size_t k = 0; k <= 3; ++k) EXPECT_NEAR(r[k], 1.0, 1e-15);
}

TEST(PowerSeries, ReciprocalRoundTrip) {
  PowerSeries a(std::vector<double>{2.0, 0.3, -0.7, 1.1, 0.05});
  const PowerSeries prod = a.multiply(a.reciprocal());
  EXPECT_NEAR(prod[0], 1.0, 1e-14);
  for (std::size_t k = 1; k <= 4; ++k) EXPECT_NEAR(prod[k], 0.0, 1e-13);
}

TEST(PowerSeries, ReciprocalOfZeroConstantThrows) {
  PowerSeries a(std::vector<double>{0.0, 1.0});
  EXPECT_THROW((void)a.reciprocal(), std::invalid_argument);
}

TEST(PowerSeries, DivisionMatchesAnalytic) {
  // s / (1 + s) = s - s^2 + s^3 - ...
  PowerSeries num(std::vector<double>{0.0, 1.0, 0.0, 0.0, 0.0});
  PowerSeries den(std::vector<double>{1.0, 1.0, 0.0, 0.0, 0.0});
  const PowerSeries q = num.divide(den);
  EXPECT_NEAR(q[0], 0.0, 1e-15);
  EXPECT_NEAR(q[1], 1.0, 1e-15);
  EXPECT_NEAR(q[2], -1.0, 1e-15);
  EXPECT_NEAR(q[3], 1.0, 1e-15);
  EXPECT_NEAR(q[4], -1.0, 1e-15);
}

TEST(PowerSeries, ExponentialSeriesProductIdentity) {
  // exp-series truncations: e^a * e^b coefficients = e^{a+b} coefficients.
  auto exp_series = [](double x, std::size_t ord) {
    PowerSeries p(ord);
    double term = 1.0;
    for (std::size_t k = 0; k <= ord; ++k) {
      p[k] = term;
      term *= x / static_cast<double>(k + 1);
    }
    return p;
  };
  const auto ea = exp_series(0.3, 6);
  const auto eb = exp_series(0.5, 6);
  const auto eab = exp_series(0.8, 6);
  const auto prod = ea.multiply(eb);
  for (std::size_t k = 0; k <= 6; ++k) EXPECT_NEAR(prod[k], eab[k], 1e-12);
}

}  // namespace
}  // namespace rct::linalg
