#include "rctree/units.hpp"

#include <gtest/gtest.h>

namespace rct {
namespace {

TEST(ParseEngineering, PlainNumbers) {
  EXPECT_DOUBLE_EQ(*parse_engineering("100"), 100.0);
  EXPECT_DOUBLE_EQ(*parse_engineering("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*parse_engineering("-3"), -3.0);
  EXPECT_DOUBLE_EQ(*parse_engineering("1e-12"), 1e-12);
}

TEST(ParseEngineering, SpiceSuffixes) {
  EXPECT_DOUBLE_EQ(*parse_engineering("1f"), 1e-15);
  EXPECT_DOUBLE_EQ(*parse_engineering("2p"), 2e-12);
  EXPECT_DOUBLE_EQ(*parse_engineering("3n"), 3e-9);
  EXPECT_DOUBLE_EQ(*parse_engineering("4u"), 4e-6);
  EXPECT_DOUBLE_EQ(*parse_engineering("5m"), 5e-3);
  EXPECT_DOUBLE_EQ(*parse_engineering("6k"), 6e3);
  EXPECT_DOUBLE_EQ(*parse_engineering("7meg"), 7e6);
  EXPECT_DOUBLE_EQ(*parse_engineering("8g"), 8e9);
  EXPECT_DOUBLE_EQ(*parse_engineering("9t"), 9e12);
}

TEST(ParseEngineering, CaseInsensitiveAndUnitsIgnored) {
  EXPECT_DOUBLE_EQ(*parse_engineering("2.5P"), 2.5e-12);
  EXPECT_DOUBLE_EQ(*parse_engineering("100pF"), 100e-12);
  EXPECT_DOUBLE_EQ(*parse_engineering("1kohm"), 1000.0);
  EXPECT_DOUBLE_EQ(*parse_engineering("3MEG"), 3e6);
  EXPECT_DOUBLE_EQ(*parse_engineering("5F"), 5e-15);  // SPICE: trailing F is femto
}

TEST(ParseEngineering, MegBeforeMilli) {
  // 'm' alone is milli; 'meg' is mega — the classic SPICE trap.
  EXPECT_DOUBLE_EQ(*parse_engineering("1m"), 1e-3);
  EXPECT_DOUBLE_EQ(*parse_engineering("1meg"), 1e6);
}

TEST(ParseEngineering, Malformed) {
  EXPECT_FALSE(parse_engineering("").has_value());
  EXPECT_FALSE(parse_engineering("abc").has_value());
  EXPECT_FALSE(parse_engineering("nan").has_value());
  EXPECT_FALSE(parse_engineering("inf").has_value());
}

TEST(FormatEngineering, RoundTripScales) {
  EXPECT_EQ(format_engineering(2.5e-12, "F"), "2.5pF");
  EXPECT_EQ(format_engineering(1000.0), "1k");
  EXPECT_EQ(format_engineering(0.0, "s"), "0s");
  EXPECT_EQ(format_engineering(1e6), "1M");
}

TEST(FormatTime, NsScale) { EXPECT_EQ(format_time(0.919e-9), "919ps"); }

}  // namespace
}  // namespace rct
