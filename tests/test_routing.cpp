#include "rctree/routing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "moments/path_tracing.hpp"
#include "sim/exact.hpp"

namespace rct::route {
namespace {

TEST(RouteNet, Validation) {
  const Pin drv{"drv", 0.0, 0.0};
  EXPECT_THROW((void)route_net(drv, {}), std::invalid_argument);
  EXPECT_THROW((void)route_net(drv, {{"drv", 1.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW((void)route_net(drv, {{"a", 1, 0}, {"a", 2, 0}}), std::invalid_argument);
  RouteOptions bad;
  bad.driver_resistance = 0.0;
  EXPECT_THROW((void)route_net(drv, {{"a", 1, 0}}, bad), std::invalid_argument);
  RouteOptions bad2;
  bad2.segments_per_100um = 0;
  EXPECT_THROW((void)route_net(drv, {{"a", 1, 0}}, bad2), std::invalid_argument);
}

TEST(RouteNet, TwoPinWirelengthIsManhattan) {
  const Pin drv{"drv", 0.0, 0.0};
  const Pin sink{"s1", 120.0, 80.0, 20e-15};
  const RoutedNet net = route_net(drv, {sink});
  EXPECT_NEAR(net.total_wirelength, 200.0, 1e-9);
  ASSERT_EQ(net.edges.size(), 1u);
  EXPECT_EQ(net.edges[0].from, "drv");
  EXPECT_EQ(net.edges[0].to, "s1");
  // Sink node carries its load.
  const NodeId s = net.sink_nodes[0];
  EXPECT_EQ(net.tree.name(s), "s1");
  EXPECT_GE(net.tree.capacitance(s), 20e-15);
}

TEST(RouteNet, TwoPinElmoreMatchesClosedForm) {
  // Straight-line 100um route: T_D ~ Rd(C_wire + C_load) + R C / 2 + R C_L.
  RouteOptions opt;
  opt.segments_per_100um = 40;  // fine discretization for the comparison
  const Pin drv{"drv", 0.0, 0.0};
  const Pin sink{"s1", 100.0, 0.0, 15e-15};
  const RoutedNet net = route_net(drv, {sink}, opt);
  const double r = opt.wire.res_per_length * 100.0;
  const double c = opt.wire.cap_per_length * 100.0;
  const double want = opt.driver_resistance * (c + 15e-15) + 0.5 * r * c + r * 15e-15;
  const double got = moments::elmore_delays(net.tree)[net.sink_nodes[0]];
  EXPECT_NEAR(got, want, 0.02 * want);
}

TEST(RouteNet, AllSinksRoutedAndNamed) {
  const Pin drv{"clk", 0.0, 0.0};
  const std::vector<Pin> sinks{
      {"a", 50, 30, 8e-15}, {"b", -40, 10, 8e-15}, {"c", 20, -60, 8e-15}, {"d", 90, 90, 8e-15}};
  const RoutedNet net = route_net(drv, sinks);
  ASSERT_EQ(net.sink_nodes.size(), 4u);
  for (std::size_t i = 0; i < sinks.size(); ++i)
    EXPECT_EQ(net.tree.name(net.sink_nodes[i]), sinks[i].name);
  EXPECT_EQ(net.edges.size(), 4u);
  EXPECT_GT(net.total_wirelength, 0.0);
}

TEST(RouteNet, BoundsHoldOnRoutedTrees) {
  const Pin drv{"drv", 0.0, 0.0};
  const std::vector<Pin> sinks{
      {"a", 80, 20, 12e-15}, {"b", 30, -70, 9e-15}, {"c", -50, 40, 15e-15}};
  const RoutedNet net = route_net(drv, sinks);
  const sim::ExactAnalysis exact(net.tree);
  const auto bounds = core::delay_bounds(net.tree);
  for (NodeId s : net.sink_nodes) {
    const double actual = exact.step_delay(s);
    EXPECT_LE(actual, bounds[s].upper * (1 + 1e-9));
    EXPECT_GE(actual, bounds[s].lower * (1 - 1e-9));
  }
}

TEST(RouteNet, SteinerSharingShortensWirelength) {
  // Driver far left; two sinks stacked at the right: the corner created for
  // the first route is the natural tap for the second.
  const Pin drv{"drv", 0.0, 0.0};
  const std::vector<Pin> sinks{{"a", 100, 10, 5e-15}, {"b", 100, -10, 5e-15}};
  RouteOptions steiner;
  steiner.steiner = true;
  RouteOptions spanning;
  spanning.steiner = false;
  const double wl_steiner = route_net(drv, sinks, steiner).total_wirelength;
  const double wl_spanning = route_net(drv, sinks, spanning).total_wirelength;
  EXPECT_LT(wl_steiner, wl_spanning);
  EXPECT_NEAR(wl_steiner, 110.0 + 10.0, 1e-9);   // drv->a, then corner->b
  EXPECT_NEAR(wl_spanning, 110.0 + 20.0, 1e-9);  // drv->a, then a->b
}

TEST(RouteNet, CoincidentPinHandled) {
  const Pin drv{"drv", 0.0, 0.0};
  const RoutedNet net = route_net(drv, {{"a", 0.0, 0.0, 5e-15}});
  EXPECT_EQ(net.tree.size(), 2u);
  EXPECT_NEAR(net.total_wirelength, 0.0, 1e-12);
}

TEST(RouteNet, Deterministic) {
  const Pin drv{"drv", 0.0, 0.0};
  const std::vector<Pin> sinks{{"a", 10, 20, 1e-15}, {"b", -30, 5, 2e-15}};
  const RoutedNet x = route_net(drv, sinks);
  const RoutedNet y = route_net(drv, sinks);
  EXPECT_EQ(x.tree.size(), y.tree.size());
  EXPECT_DOUBLE_EQ(x.total_wirelength, y.total_wirelength);
}

}  // namespace
}  // namespace rct::route
