#include "rctree/netlist_parser.hpp"

#include <gtest/gtest.h>

namespace rct {
namespace {

constexpr const char* kDeck = R"(* a small RC tree
.title demo tree
.input in
R1 in  n1 100
C1 n1  0  1p
R2 n1  n2 200
C2 n2  0  2p
R3 n2  n3 300
C3 0   n3 0.5p  ; ground may be first
R4 n1  n4 150
C4 n4  gnd 1.5p
.probe n3
.probe n4
.end
)";

TEST(NetlistParser, ParsesTreeTopology) {
  const ParsedNetlist p = parse_netlist(kDeck);
  EXPECT_EQ(p.title, "demo tree");
  ASSERT_EQ(p.tree.size(), 4u);
  EXPECT_TRUE(p.warnings.empty());
  const RCTree& t = p.tree;
  EXPECT_EQ(t.parent(t.at("n1")), kSource);
  EXPECT_EQ(t.parent(t.at("n2")), t.at("n1"));
  EXPECT_EQ(t.parent(t.at("n3")), t.at("n2"));
  EXPECT_EQ(t.parent(t.at("n4")), t.at("n1"));
  EXPECT_DOUBLE_EQ(t.resistance(t.at("n3")), 300.0);
  EXPECT_DOUBLE_EQ(t.capacitance(t.at("n4")), 1.5e-12);
}

TEST(NetlistParser, ProbesResolve) {
  const ParsedNetlist p = parse_netlist(kDeck);
  ASSERT_EQ(p.probes.size(), 2u);
  EXPECT_EQ(p.tree.name(p.probes[0]), "n3");
  EXPECT_EQ(p.tree.name(p.probes[1]), "n4");
}

TEST(NetlistParser, ResistorOrientationIrrelevant) {
  const ParsedNetlist p = parse_netlist(
      ".input in\nR1 n1 in 100\nC1 n1 0 1p\n");
  EXPECT_EQ(p.tree.parent(p.tree.at("n1")), kSource);
}

TEST(NetlistParser, ParallelCapacitorsSum) {
  const ParsedNetlist p = parse_netlist(
      ".input in\nR1 in n1 100\nC1 n1 0 1p\nC2 n1 0 0.25p\n");
  EXPECT_DOUBLE_EQ(p.tree.capacitance(0), 1.25e-12);
}

TEST(NetlistParser, InputCapIgnoredWithWarning) {
  const ParsedNetlist p = parse_netlist(
      ".input in\nCx in 0 5p\nR1 in n1 100\nC1 n1 0 1p\n");
  ASSERT_EQ(p.warnings.size(), 1u);
  EXPECT_NE(p.warnings[0].find("ignored"), std::string::npos);
}

TEST(NetlistParser, CaplessNodeWarns) {
  const ParsedNetlist p = parse_netlist(".input in\nR1 in n1 100\n");
  ASSERT_EQ(p.warnings.size(), 1u);
  EXPECT_DOUBLE_EQ(p.tree.capacitance(0), 0.0);
}

TEST(NetlistParser, MissingInputThrows) {
  EXPECT_THROW((void)parse_netlist("R1 a b 100\nC1 b 0 1p\n"), NetlistError);
}

TEST(NetlistParser, ResistorLoopThrows) {
  EXPECT_THROW((void)parse_netlist(".input in\n"
                                   "R1 in n1 100\nR2 in n2 100\nR3 n1 n2 100\n"
                                   "C1 n1 0 1p\nC2 n2 0 1p\n"),
               NetlistError);
}

TEST(NetlistParser, ResistorToGroundThrows) {
  EXPECT_THROW((void)parse_netlist(".input in\nR1 in 0 100\n"), NetlistError);
}

TEST(NetlistParser, DisconnectedResistorThrows) {
  EXPECT_THROW((void)parse_netlist(".input in\nR1 in n1 100\nC1 n1 0 1p\nR2 x y 5\n"),
               NetlistError);
}

TEST(NetlistParser, FloatingCapacitorThrows) {
  EXPECT_THROW((void)parse_netlist(".input in\nR1 in n1 100\nC1 n1 0 1p\nC2 zz 0 1p\n"),
               NetlistError);
}

TEST(NetlistParser, NonGroundedCapacitorThrows) {
  EXPECT_THROW((void)parse_netlist(".input in\nR1 in n1 100\nC1 n1 n2 1p\n"), NetlistError);
}

TEST(NetlistParser, BadValueReportsLineNumber) {
  try {
    (void)parse_netlist(".input in\nR1 in n1 abc\n");
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(NetlistParser, UnknownDirectiveThrows) {
  EXPECT_THROW((void)parse_netlist(".frobnicate\n"), NetlistError);
}

TEST(NetlistParser, ProbeOnMissingNodeThrows) {
  EXPECT_THROW((void)parse_netlist(".input in\nR1 in n1 100\nC1 n1 0 1p\n.probe zz\n"),
               NetlistError);
}

TEST(NetlistParser, ContentAfterEndIgnored) {
  const ParsedNetlist p =
      parse_netlist(".input in\nR1 in n1 100\nC1 n1 0 1p\n.end\ngarbage here\n");
  EXPECT_EQ(p.tree.size(), 1u);
}

TEST(NetlistParser, FileNotFoundThrows) {
  EXPECT_THROW((void)parse_netlist_file("/nonexistent/path.sp"), NetlistError);
}

}  // namespace
}  // namespace rct
