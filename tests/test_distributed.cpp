#include "sim/distributed.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "moments/path_tracing.hpp"
#include "rctree/transform.hpp"
#include "sim/exact.hpp"

namespace rct::sim {
namespace {

TEST(Distributed, Validation) {
  EXPECT_THROW(DistributedLine(0.0, 1e-12, 0.0), std::invalid_argument);
  EXPECT_THROW(DistributedLine(100.0, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(DistributedLine(100.0, 1e-12, -1.0), std::invalid_argument);
  EXPECT_THROW(DistributedLine(100.0, 1e-12, 0.0, 0), std::invalid_argument);
}

TEST(Distributed, OpenLineClassicConstants) {
  // Rd = 0: poles at beta_n = (2n-1)pi/2 and the famous 50% delay
  // t_50 ~ 0.379 RC (Sakurai's distributed-line constant ~0.38).
  const double r = 1000.0;
  const double c = 1e-12;
  const DistributedLine line(r, c, 0.0);
  const double rc = r * c;
  EXPECT_NEAR(line.poles()[0], (M_PI * M_PI / 4.0) / rc, 1e-6 / rc);
  EXPECT_NEAR(line.elmore_delay(), 0.5 * rc, 1e-18);
  EXPECT_NEAR(line.mu2(), rc * rc / 6.0, 1e-30);
  EXPECT_NEAR(line.step_delay(0.5), 0.379 * rc, 0.002 * rc);
}

TEST(Distributed, SeriesSumsToOneAtZero) {
  // v(0+) must be 0, i.e. the series coefficients sum to 1 (up to the
  // O(1/modes) truncation tail of the eigenfunction series).
  const DistributedLine line(500.0, 2e-12, 150.0, 200);
  EXPECT_NEAR(line.step_response(1e-25), 0.0, 1e-4);
  const DistributedLine fine(500.0, 2e-12, 150.0, 2000);
  EXPECT_LT(std::abs(fine.step_response(1e-25)), std::abs(line.step_response(1e-25)));
}

TEST(Distributed, StepResponseMonotoneAndSettles) {
  const DistributedLine line(800.0, 1.5e-12, 200.0);
  const double rc = 800.0 * 1.5e-12;
  double prev = 0.0;
  for (double x = 0.01; x < 6.0; x += 0.01) {
    const double v = line.step_response(x * rc);
    EXPECT_GE(v, prev - 1e-9);
    prev = v;
  }
  EXPECT_NEAR(line.step_response(20.0 * rc), 1.0, 1e-9);
}

TEST(Distributed, ElmoreIsUpperBoundHereToo) {
  // The paper's theorem covers distributed lines as limits of RC trees.
  for (double k : {0.0, 0.2, 1.0, 5.0}) {
    const double r = 1000.0;
    const double c = 1e-12;
    const DistributedLine line(r, c, k * r);
    EXPECT_LE(line.step_delay(0.5), line.elmore_delay());
    // ... and the mu - sigma lower bound holds as well.
    const double lower = std::max(line.elmore_delay() - std::sqrt(line.mu2()), 0.0);
    EXPECT_GE(line.step_delay(0.5), lower);
  }
}

TEST(Distributed, LadderConvergesToDistributedLine) {
  // segmented_wire(N) must converge to the continuous solution as N grows,
  // both in waveform and in 50% delay.
  const double r = 1000.0;
  const double c = 1e-12;
  const double rd = 250.0;
  const DistributedLine truth(r, c, rd);
  const WireParams params{r / 1000.0, c / 1000.0};  // per-um over 1000 um

  double prev_err = 1e300;
  for (std::size_t sections : {2u, 8u, 32u}) {
    const RCTree ladder = segmented_wire(1000.0, params, sections, rd, 0.0);
    const ExactAnalysis exact(ladder);
    const double d_ladder = exact.step_delay(ladder.at("load"));
    const double err = std::abs(d_ladder - truth.step_delay(0.5)) / truth.step_delay(0.5);
    EXPECT_LT(err, prev_err + 1e-12);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 2e-3);
}

TEST(Distributed, LadderElmoreMatchesClosedForm) {
  // The ladder's Elmore converges to Rd C + R C / 2 (the distributed T_D).
  const double r = 640.0;
  const double c = 0.9e-12;
  const double rd = 120.0;
  const DistributedLine truth(r, c, rd);
  const WireParams params{r / 500.0, c / 500.0};
  const RCTree ladder = rct::segmented_wire(500.0, params, 64, rd, 0.0);
  const double td = moments::elmore_delays(ladder)[ladder.at("load")];
  EXPECT_NEAR(td, truth.elmore_delay(), 5e-3 * truth.elmore_delay());
}

TEST(Distributed, DriverResistanceShiftsTowardSinglePole) {
  // Large Rd: the line looks like one lumped cap; delay -> ln2 (RdC + RC/2)
  // and the first pole dominates.
  const double r = 100.0;
  const double c = 1e-12;
  const DistributedLine line(r, c, 100.0 * r);
  const double td = line.elmore_delay();
  EXPECT_NEAR(line.step_delay(0.5), std::log(2.0) * td, 0.01 * td);
}

TEST(Distributed, ImpulseIsStepDerivative) {
  const DistributedLine line(700.0, 1.1e-12, 90.0);
  const double rc = 700.0 * 1.1e-12;
  for (double x : {0.2, 0.5, 1.5}) {
    const double t = x * rc;
    const double h = 1e-6 * rc;
    const double num = (line.step_response(t + h) - line.step_response(t - h)) / (2.0 * h);
    EXPECT_NEAR(num, line.impulse_response(t), 1e-5 / rc);
  }
}

}  // namespace
}  // namespace rct::sim
