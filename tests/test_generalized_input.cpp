#include "core/generalized_input.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/elmore.hpp"
#include "helpers.hpp"
#include "rctree/circuits.hpp"

namespace rct::core {
namespace {

using rct::testing::ExpectRel;

TEST(LogSweep, EndpointsAndSpacing) {
  const auto s = log_sweep(1e-10, 1e-8, 5);
  ASSERT_EQ(s.size(), 5u);
  EXPECT_NEAR(s.front(), 1e-10, 1e-22);
  EXPECT_NEAR(s.back(), 1e-8, 1e-20);
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_NEAR(s[i] / s[i - 1], std::sqrt(10.0), 1e-9);
}

TEST(LogSweep, Validation) {
  EXPECT_THROW((void)log_sweep(0.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW((void)log_sweep(1.0, 0.5, 3), std::invalid_argument);
  EXPECT_THROW((void)log_sweep(1.0, 2.0, 1), std::invalid_argument);
}

TEST(DelayCurve, MonotoneAndBoundedByElmore) {
  // Fig. 12 behaviour: delay(t_r) increases with rise time and approaches
  // T_D from below.
  const RCTree t = circuits::fig1();
  const sim::ExactAnalysis exact(t);
  const NodeId n = t.at("n5");
  const auto curve = delay_curve(t, exact, n, log_sweep(0.05e-9, 50e-9, 10));
  const double td = elmore_delay(t, n);
  double prev = 0.0;
  for (const auto& p : curve) {
    EXPECT_GE(p.delay, prev * (1 - 1e-9));
    EXPECT_LE(p.delay, td * (1 + 1e-9));
    EXPECT_NEAR(p.elmore, td, 1e-15);
    prev = p.delay;
  }
  // Asymptote: at t_r = 50 ns >> tau the delay is within 1% of T_D.
  EXPECT_GT(curve.back().delay, 0.99 * td);
  // Relative error column consistent.
  for (const auto& p : curve) EXPECT_NEAR(p.relative_error, (td - p.delay) / p.delay, 1e-9);
}

TEST(RelativeElmoreError, DecreasesWithRiseTime) {
  const RCTree t = circuits::tree25();
  const sim::ExactAnalysis exact(t);
  const NodeId n = t.at("C");
  double prev = 1e300;
  for (double tr : {1e-9, 5e-9, 10e-9}) {
    const sim::SaturatedRampSource ramp(tr);
    const double err = relative_elmore_error(t, exact, n, ramp);
    EXPECT_GT(err, 0.0);  // Elmore over-estimates
    EXPECT_LT(err, prev);
    prev = err;
  }
}

TEST(RelativeElmoreError, DecreasesTowardLeaves) {
  // Fig. 14: for fixed rise time, error falls with distance from driver.
  const RCTree t = circuits::tree25();
  const sim::ExactAnalysis exact(t);
  const sim::SaturatedRampSource ramp(1e-9);
  const auto obs = circuits::tree25_observed(t);
  const double err_a = relative_elmore_error(t, exact, obs[0], ramp);
  const double err_b = relative_elmore_error(t, exact, obs[1], ramp);
  const double err_c = relative_elmore_error(t, exact, obs[2], ramp);
  EXPECT_GT(err_a, err_b);
  EXPECT_GT(err_b, err_c);
}

TEST(InputOutputArea, EqualsElmoreDelayForStep) {
  // eq. (48) with a step input.
  const RCTree t = testing::small_tree();
  const sim::ExactAnalysis exact(t);
  const sim::StepSource step;
  const NodeId n = t.at("c");
  const double area =
      input_output_area(exact, n, step, 40.0 * exact.dominant_time_constant());
  ExpectRel(area, elmore_delay(t, n), 1e-4);
}

TEST(InputOutputArea, EqualsElmoreDelayForRamps) {
  // eq. (48) holds for any input: area between input and output == T_D.
  const RCTree t = circuits::fig1();
  const sim::ExactAnalysis exact(t);
  const NodeId n = t.at("n7");
  const double td = elmore_delay(t, n);
  for (double tr : {0.5e-9, 2e-9}) {
    const sim::SaturatedRampSource ramp(tr);
    const double area =
        input_output_area(exact, n, ramp, 40.0 * exact.dominant_time_constant() + tr, 8000);
    ExpectRel(area, td, 1e-3);
  }
}

}  // namespace
}  // namespace rct::core
