// The parallel-ingestion contract: for ANY thread count, the mmap + index +
// section-fan-out pipeline must be observably identical to the serial
// parse_spef() — same nets, same diagnostics in the same order, same
// strict-mode error — and engine::analyze_spef_file (fused parse+analyze)
// must match parse-then-analyze_batch.  The corpus is the real testdata
// plus the malformed decks, so every recovery path crosses the merge.

#include "engine/parallel_parse.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "engine/batch.hpp"
#include "rctree/mapped_file.hpp"
#include "rctree/spef.hpp"
#include "rctree/spef_index.hpp"

namespace rct {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<fs::path> corpus() {
  const fs::path root = RCT_TESTDATA_DIR;
  std::vector<fs::path> decks = {root / "two_nets.spef"};
  for (const auto& entry : fs::directory_iterator(root / "malformed"))
    if (entry.path().extension() == ".spef") decks.push_back(entry.path());
  std::sort(decks.begin(), decks.end());
  return decks;
}

/// Deep observable equality: header, serialized nets, diagnostics, rejects.
void expect_same_file(const SpefFile& expected, const SpefFile& actual,
                      const std::string& context) {
  EXPECT_EQ(expected.design, actual.design) << context;
  EXPECT_EQ(expected.time_unit, actual.time_unit) << context;
  EXPECT_EQ(expected.cap_unit, actual.cap_unit) << context;
  EXPECT_EQ(expected.res_unit, actual.res_unit) << context;
  EXPECT_EQ(write_spef(expected), write_spef(actual)) << context;
  EXPECT_EQ(expected.nets_rejected, actual.nets_rejected) << context;
  ASSERT_EQ(expected.diagnostics.size(), actual.diagnostics.size()) << context;
  for (std::size_t i = 0; i < expected.diagnostics.size(); ++i) {
    EXPECT_EQ(expected.diagnostics[i].to_string("spef"),
              actual.diagnostics[i].to_string("spef"))
        << context << " diagnostic " << i;
    EXPECT_EQ(expected.diagnostics[i].net, actual.diagnostics[i].net) << context;
  }
}

TEST(SpefParallel, LenientMatchesSerialOnWholeCorpusAtEveryJobCount) {
  for (const fs::path& deck : corpus()) {
    const std::string text = read_file(deck);
    SpefParseOptions serial_options;
    serial_options.lenient = true;
    const SpefFile expected = parse_spef(text, serial_options);
    for (const std::size_t jobs : {1u, 2u, 8u}) {
      engine::ParseOptions options;
      options.jobs = jobs;
      options.spef.lenient = true;
      const engine::ParsedSpef parsed = engine::parse_spef_parallel(text, options);
      expect_same_file(expected, parsed.file,
                       deck.filename().string() + " jobs=" + std::to_string(jobs));
      EXPECT_EQ(parsed.stats.nets, parsed.file.nets.size());
      EXPECT_EQ(parsed.stats.nets_rejected, parsed.file.nets_rejected);
      EXPECT_EQ(parsed.stats.bytes, text.size());
    }
  }
}

TEST(SpefParallel, StrictThrowsTheSerialError) {
  for (const fs::path& deck : corpus()) {
    const std::string text = read_file(deck);
    std::string serial_what, serial_code;
    try {
      (void)parse_spef(text, {});
    } catch (const robust::Error& e) {
      serial_what = e.what();
      serial_code = robust::code_name(e.code());
    }
    for (const std::size_t jobs : {1u, 8u}) {
      engine::ParseOptions options;
      options.jobs = jobs;
      std::string parallel_what, parallel_code;
      try {
        (void)engine::parse_spef_parallel(text, options);
      } catch (const robust::Error& e) {
        parallel_what = e.what();
        parallel_code = robust::code_name(e.code());
      }
      EXPECT_EQ(serial_what, parallel_what) << deck.filename() << " jobs=" << jobs;
      EXPECT_EQ(serial_code, parallel_code) << deck.filename() << " jobs=" << jobs;
    }
  }
}

TEST(SpefParallel, RepeatedRunsAreDeterministic) {
  const std::string text = read_file(fs::path(RCT_TESTDATA_DIR) / "malformed" /
                                     "mixed_good_bad.spef");
  engine::ParseOptions options;
  options.jobs = 8;
  options.spef.lenient = true;
  const engine::ParsedSpef first = engine::parse_spef_parallel(text, options);
  for (int round = 0; round < 5; ++round) {
    const engine::ParsedSpef again = engine::parse_spef_parallel(text, options);
    expect_same_file(first.file, again.file, "round " + std::to_string(round));
  }
}

TEST(SpefParallel, FileEntryPointMatchesInMemoryParse) {
  const fs::path deck = fs::path(RCT_TESTDATA_DIR) / "two_nets.spef";
  engine::ParseOptions options;
  options.jobs = 2;
  const engine::ParsedSpef from_file = engine::parse_spef_parallel_file(deck.string(), options);
  const engine::ParsedSpef from_text = engine::parse_spef_parallel(read_file(deck), options);
  expect_same_file(from_text.file, from_file.file, "file vs text");
  EXPECT_THROW((void)engine::parse_spef_parallel_file("/nonexistent/deck.spef"), SpefError);
}

TEST(SpefParallel, FusedAnalyzeMatchesParseThenBatch) {
  for (const char* name : {"two_nets.spef", "malformed/mixed_good_bad.spef"}) {
    const fs::path deck = fs::path(RCT_TESTDATA_DIR) / name;
    engine::ParseOptions parse_options;
    parse_options.spef.lenient = true;
    engine::BatchOptions batch_options;
    batch_options.jobs = 2;
    batch_options.use_cache = false;

    const engine::ParsedSpef parsed =
        engine::parse_spef_parallel_file(deck.string(), parse_options);
    const engine::BatchResult expected = engine::analyze_batch(parsed.file, batch_options);
    const engine::FileBatchResult fused =
        engine::analyze_spef_file(deck.string(), batch_options, parse_options);

    EXPECT_EQ(engine::format_batch(expected), engine::format_batch(fused.batch)) << name;
    EXPECT_EQ(parsed.file.nets_rejected, fused.nets_rejected) << name;
    ASSERT_EQ(parsed.file.diagnostics.size(), fused.diagnostics.size()) << name;
    for (std::size_t i = 0; i < fused.diagnostics.size(); ++i)
      EXPECT_EQ(parsed.file.diagnostics[i].to_string("spef"),
                fused.diagnostics[i].to_string("spef"))
          << name;
  }
}

TEST(SpefParallel, FusedAnalyzeStrictThrowsLikeTheParser) {
  const fs::path deck = fs::path(RCT_TESTDATA_DIR) / "malformed" / "negative_r.spef";
  std::string parse_what;
  try {
    (void)engine::parse_spef_parallel_file(deck.string(), {});
  } catch (const SpefError& e) {
    parse_what = e.what();
  }
  ASSERT_FALSE(parse_what.empty());
  std::string fused_what;
  try {
    (void)engine::analyze_spef_file(deck.string());
  } catch (const SpefError& e) {
    fused_what = e.what();
  }
  EXPECT_EQ(parse_what, fused_what);
}

// ---------------------------------------------------------------------------
// Tokenization edge cases through the full pipeline.

TEST(SpefParallel, CrlfLineEndingsParse) {
  const std::string text =
      "*DESIGN \"crlf\"\r\n*D_NET n 1\r\n*CONN\r\n*P a I\r\n*CAP\r\n1 b 5\r\n"
      "*RES\r\n1 a b 2\r\n*END\r\n";
  const SpefFile expected = parse_spef(text);
  engine::ParseOptions options;
  options.jobs = 2;
  const engine::ParsedSpef parsed = engine::parse_spef_parallel(text, options);
  expect_same_file(expected, parsed.file, "crlf");
  ASSERT_EQ(parsed.file.nets.size(), 1u);
  EXPECT_EQ(parsed.file.design, "crlf");
  EXPECT_DOUBLE_EQ(parsed.file.nets[0].tree.capacitance(0), 5e-12);
}

TEST(SpefParallel, TabSeparatedTokensParse) {
  const std::string text =
      "*D_NET\tn\t1\n*CONN\n*P\ta\tI\n*CAP\n1\tb\t5\n*RES\n1\ta\tb\t2\n*END\n";
  const engine::ParsedSpef parsed = engine::parse_spef_parallel(text, {});
  ASSERT_EQ(parsed.file.nets.size(), 1u);
  EXPECT_EQ(parsed.file.nets[0].name, "n");
  EXPECT_DOUBLE_EQ(parsed.file.nets[0].tree.resistance(0), 2.0);
  expect_same_file(parse_spef(text), parsed.file, "tabs");
}

TEST(SpefParallel, FinalSectionWithoutTrailingNewline) {
  const std::string text =
      "*D_NET n 1\n*CONN\n*P a I\n*CAP\n1 b 5\n*RES\n1 a b 2\n*END";  // no \n
  const engine::ParsedSpef parsed = engine::parse_spef_parallel(text, {});
  ASSERT_EQ(parsed.file.nets.size(), 1u);
  expect_same_file(parse_spef(text), parsed.file, "no trailing newline");
}

TEST(SpefParallel, TruncatedFinalSectionMatchesSerial) {
  const std::string text = "*D_NET n 1\n*CONN\n*P a I\n*CAP\n1 b 5";  // no *RES/*END
  SpefParseOptions lenient;
  lenient.lenient = true;
  engine::ParseOptions options;
  options.spef.lenient = true;
  const engine::ParsedSpef parsed = engine::parse_spef_parallel(text, options);
  expect_same_file(parse_spef(text, lenient), parsed.file, "truncated tail");
}

TEST(SpefParallel, FuzzSoupMatchesSerial) {
  // Seeded pseudo-fuzz: random token soup must give the parallel pipeline
  // the same lenient outcome (and the same strict error) as the serial
  // parser — never a crash, never a divergence.
  std::mt19937_64 rng(7);
  static constexpr char kChars[] = "abcXYZ0189.*-+_ \t\n\r\"RCrpnlDNET()=;/";
  std::uniform_int_distribution<std::size_t> pick(0, sizeof(kChars) - 2);
  for (int i = 0; i < 150; ++i) {
    std::string soup = "*SPEF\n";
    const std::size_t len = 30 + (static_cast<std::size_t>(i) * 13) % 500;
    for (std::size_t k = 0; k < len; ++k) soup.push_back(kChars[pick(rng)]);
    SpefParseOptions lenient;
    lenient.lenient = true;
    engine::ParseOptions options;
    options.jobs = 4;
    options.spef.lenient = true;
    const SpefFile expected = parse_spef(soup, lenient);
    const engine::ParsedSpef parsed = engine::parse_spef_parallel(soup, options);
    expect_same_file(expected, parsed.file, "soup seed " + std::to_string(i));
  }
}

TEST(SpefParallel, FuzzTruncationsMatchSerial) {
  const std::string base = read_file(fs::path(RCT_TESTDATA_DIR) / "two_nets.spef");
  SpefParseOptions lenient;
  lenient.lenient = true;
  engine::ParseOptions options;
  options.jobs = 4;
  options.spef.lenient = true;
  for (std::size_t cut = 1; cut < base.size(); cut += 7) {
    const std::string text = base.substr(0, cut);
    const SpefFile expected = parse_spef(text, lenient);
    const engine::ParsedSpef parsed = engine::parse_spef_parallel(text, options);
    expect_same_file(expected, parsed.file, "cut " + std::to_string(cut));
  }
}

// ---------------------------------------------------------------------------
// Index pass.

TEST(SpefIndex, FindsSectionExtentsAndLines) {
  const std::string text =
      "*SPEF \"x\"\n"          // line 1   run
      "*D_NET a 1\n"           // line 2   section 0
      "*END\n"                 // line 3
      "stray\n"                // line 4   run
      "*D_NET b 1\n"           // line 5   section 1 (no *END: runs to EOF)
      "1 n 2\n";               // line 6
  const spef::Layout layout = spef::index_spef(text);
  EXPECT_EQ(layout.bytes, text.size());
  EXPECT_EQ(layout.lines, 7u);  // trailing newline => phantom empty line 7
  ASSERT_EQ(layout.sections.size(), 2u);
  EXPECT_EQ(layout.sections[0].first_line, 2u);
  EXPECT_EQ(layout.sections[0].end_line, 3u);
  EXPECT_TRUE(layout.sections[0].has_end);
  EXPECT_EQ(text.substr(layout.sections[0].offset, layout.sections[0].length),
            "*D_NET a 1\n*END\n");
  EXPECT_EQ(layout.sections[1].first_line, 5u);
  EXPECT_FALSE(layout.sections[1].has_end);
  ASSERT_EQ(layout.runs.size(), 2u);
  EXPECT_EQ(layout.runs[0].first_line, 1u);
  EXPECT_EQ(layout.runs[1].first_line, 4u);
  ASSERT_EQ(layout.chunks.size(), 4u);
  EXPECT_FALSE(layout.chunks[0].is_section);
  EXPECT_TRUE(layout.chunks[1].is_section);
}

TEST(SpefIndex, ChunkedFeedMatchesWholeBuffer) {
  const std::string text =
      "*SPEF \"x\"\r\n*D_NET alpha 1\n*END\n\n*D_NET beta 2\r\n*END\r\n";
  const spef::Layout whole = spef::index_spef(text);
  // Re-feed byte-by-byte: lines and the *D_NET/*END tokens span chunks.
  spef::Indexer indexer;
  for (char c : text) indexer.feed({&c, 1});
  const spef::Layout chunked = indexer.finish();
  EXPECT_EQ(whole.bytes, chunked.bytes);
  EXPECT_EQ(whole.lines, chunked.lines);
  ASSERT_EQ(whole.sections.size(), chunked.sections.size());
  for (std::size_t i = 0; i < whole.sections.size(); ++i) {
    EXPECT_EQ(whole.sections[i].offset, chunked.sections[i].offset);
    EXPECT_EQ(whole.sections[i].length, chunked.sections[i].length);
    EXPECT_EQ(whole.sections[i].first_line, chunked.sections[i].first_line);
    EXPECT_EQ(whole.sections[i].end_line, chunked.sections[i].end_line);
  }
}

TEST(SpefIndex, OffsetsPast2GiBStayExact) {
  // Drive the byte/line counters past 2^31 by re-feeding one 8 MiB filler
  // buffer instead of allocating a >2 GiB fixture.  Only offsets and line
  // numbers are meaningful for re-fed buffers (the extents do not alias one
  // live allocation), which is exactly what this test checks.
  const std::string line = "// filler comment line to pad the deck\n";
  std::string block;
  const std::size_t block_bytes = 8u << 20;
  while (block.size() + line.size() <= block_bytes) block += line;
  const std::size_t lines_per_block = block.size() / line.size();

  spef::Indexer indexer;
  const std::uint64_t two_gib = std::uint64_t{1} << 31;
  std::uint64_t fed = 0;
  std::size_t blocks = 0;
  while (fed <= two_gib) {
    indexer.feed(block);
    fed += block.size();
    ++blocks;
  }
  EXPECT_EQ(indexer.bytes_consumed(), fed);
  ASSERT_GT(fed, two_gib);

  const std::string tail = "*D_NET deep 1\n*END\n";
  indexer.feed(tail);
  const spef::Layout layout = indexer.finish();
  EXPECT_EQ(layout.bytes, fed + tail.size());
  ASSERT_EQ(layout.sections.size(), 1u);
  EXPECT_EQ(layout.sections[0].offset, fed);          // starts past 2 GiB
  EXPECT_EQ(layout.sections[0].length, tail.size());
  EXPECT_EQ(layout.sections[0].first_line, blocks * lines_per_block + 1);
  EXPECT_EQ(layout.sections[0].end_line, blocks * lines_per_block + 2);
  EXPECT_TRUE(layout.sections[0].has_end);
}

// ---------------------------------------------------------------------------
// MappedFile.

TEST(MappedFile, MapsRegularFiles) {
  const fs::path path = fs::temp_directory_path() / "rct_mapped_file_test.spef";
  const std::string content = "*D_NET n 1\n*END\n";
  std::ofstream(path, std::ios::binary) << content;
  MappedFile file;
  ASSERT_TRUE(file.open(path.string())) << file.error();
  EXPECT_TRUE(file.ok());
  EXPECT_TRUE(file.mapped());
  EXPECT_EQ(file.view(), content);
  EXPECT_EQ(file.size(), content.size());
  file.close();
  EXPECT_EQ(file.size(), 0u);
  fs::remove(path);
}

TEST(MappedFile, EmptyFileFallsBackAndIsOk) {
  const fs::path path = fs::temp_directory_path() / "rct_mapped_empty_test.spef";
  std::ofstream(path, std::ios::binary).flush();
  MappedFile file;
  ASSERT_TRUE(file.open(path.string())) << file.error();
  EXPECT_TRUE(file.ok());
  EXPECT_FALSE(file.mapped());  // mmap of length 0 is an error; heap path
  EXPECT_EQ(file.view(), "");
  fs::remove(path);
}

TEST(MappedFile, NonRegularFileUsesHeapFallback) {
  MappedFile file;
  if (!file.open("/proc/self/status")) GTEST_SKIP() << "/proc not available";
  EXPECT_TRUE(file.ok());
  EXPECT_FALSE(file.mapped());
  EXPECT_NE(file.view().find("Name:"), std::string_view::npos);
}

TEST(MappedFile, MissingFileReportsError) {
  MappedFile file;
  EXPECT_FALSE(file.open("/nonexistent/rct/deck.spef"));
  EXPECT_FALSE(file.ok());
  EXPECT_FALSE(file.error().empty());
}

TEST(MappedFile, MoveTransfersTheMapping) {
  const fs::path path = fs::temp_directory_path() / "rct_mapped_move_test.spef";
  const std::string content = "*D_NET m 1\n*END\n";
  std::ofstream(path, std::ios::binary) << content;
  MappedFile a;
  ASSERT_TRUE(a.open(path.string()));
  MappedFile b(std::move(a));
  EXPECT_EQ(b.view(), content);
  EXPECT_FALSE(a.ok());  // NOLINT(bugprone-use-after-move): moved-from is empty
  fs::remove(path);
}

}  // namespace
}  // namespace rct
