#include "linalg/dense_matrix.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

namespace rct::linalg {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), 0.0);
}

TEST(Matrix, IdentityHasUnitDiagonal) {
  const Matrix i3 = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(i3(i, j), i == j ? 1.0 : 0.0);
}

TEST(Matrix, MultiplyVector) {
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(1, 0) = 3.0;
  m(1, 1) = 4.0;
  const auto y = m.multiply(std::vector<double>{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, MultiplyVectorSizeMismatchThrows) {
  Matrix m(2, 2);
  std::vector<double> x{1.0};
  EXPECT_THROW((void)m.multiply(x), std::invalid_argument);
}

TEST(Matrix, MultiplyMatrixAgainstHandResult) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  int v = 1;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = v++;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 2; ++j) b(i, j) = v++;
  const Matrix c = a.multiply(b);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix a(2, 3);
  a(0, 1) = 5.0;
  a(1, 2) = -2.0;
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(t(2, 1), -2.0);
  EXPECT_EQ(t.transposed(), a);
}

TEST(LuFactor, SolvesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  const LuFactor lu(a);
  const auto x = lu.solve(std::vector<double>{3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(LuFactor, DeterminantMatchesClosedForm) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  EXPECT_NEAR(LuFactor(a).determinant(), 5.0, 1e-12);
}

TEST(LuFactor, PivotingHandlesZeroLeadingEntry) {
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const LuFactor lu(a);
  const auto x = lu.solve(std::vector<double>{2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(lu.determinant(), -1.0, 1e-12);
}

TEST(LuFactor, SingularThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW(LuFactor{a}, std::runtime_error);
}

TEST(LuFactor, NonSquareThrows) { EXPECT_THROW(LuFactor{Matrix(2, 3)}, std::invalid_argument); }

TEST(LuFactor, RandomRoundTrip) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t n = 1 + static_cast<std::size_t>(rep) % 12;
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = uni(rng);
      a(i, i) += static_cast<double>(n);  // diagonally dominant -> nonsingular
    }
    std::vector<double> x_true(n);
    for (double& v : x_true) v = uni(rng);
    const auto b = a.multiply(x_true);
    const auto x = LuFactor(a).solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
  }
}

}  // namespace
}  // namespace rct::linalg
