#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "rctree/circuits.hpp"
#include "rctree/generators.hpp"
#include "sim/exact.hpp"

namespace rct::core {
namespace {

TEST(Metrics, SinglePoleLimits) {
  // Single RC (m1 = -tau, m2 = tau^2): every metric has a closed form.
  const double tau = 1e-9;
  const auto d = metrics_from_moments(-tau, tau * tau);
  EXPECT_NEAR(d.elmore, tau, 1e-20);
  EXPECT_NEAR(d.single_pole, std::log(2.0) * tau, 1e-18);
  EXPECT_NEAR(d.d2m, std::log(2.0) * tau, 1e-18);
  // Gamma fit with shape k = 1: (3 - 0.8)/(3 + 0.2) = 0.6875 ~ ln 2.
  EXPECT_NEAR(d.scaled_elmore, 0.6875 * tau, 1e-3 * tau);
  EXPECT_NEAR(d.lower_cantelli, 0.0, 1e-18);
  EXPECT_NEAR(d.lower_unimodal, (1.0 - std::sqrt(0.6)) * tau, 1e-12 * tau);
}

TEST(Metrics, Validation) {
  EXPECT_THROW((void)metrics_from_moments(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)metrics_from_moments(-1.0, -1.0), std::invalid_argument);
}

TEST(Metrics, UnimodalLowerTighterThanCantelli) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const RCTree t = gen::random_tree(40, seed);
    for (const auto& d : delay_metrics(t)) {
      EXPECT_GE(d.lower_unimodal, d.lower_cantelli);
      EXPECT_LE(d.lower_unimodal, d.elmore);
    }
  }
}

class MetricsBounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricsBounds, UnimodalLowerBoundStillBelowExact) {
  // The improved Johnson-Rogers lower bound must remain a true bound —
  // exercised on random trees against the exact delay.
  const RCTree t = gen::random_tree(22, GetParam());
  const sim::ExactAnalysis e(t);
  const auto metrics = delay_metrics(t);
  for (NodeId i = 0; i < t.size(); ++i) {
    const double exact = e.step_delay(i);
    EXPECT_LE(metrics[i].lower_unimodal, exact * (1 + 1e-9)) << "node " << i;
    EXPECT_GE(metrics[i].elmore, exact * (1 - 1e-9)) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsBounds,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(Metrics, D2mAndGammaFitBeatLnTwoOnPaperCircuit) {
  // The estimators (not bounds) should usually out-predict ln(2) T_D.
  const RCTree t = circuits::fig1();
  const sim::ExactAnalysis e(t);
  const auto metrics = delay_metrics(t);
  double err_1p = 0.0;
  double err_d2m = 0.0;
  double err_gamma = 0.0;
  for (NodeId i = 0; i < t.size(); ++i) {
    const double exact = e.step_delay(i);
    err_1p += std::abs(metrics[i].single_pole - exact) / exact;
    err_d2m += std::abs(metrics[i].d2m - exact) / exact;
    err_gamma += std::abs(metrics[i].scaled_elmore - exact) / exact;
  }
  EXPECT_LT(err_d2m, err_1p);
  EXPECT_LT(err_gamma, err_1p);
}

TEST(Metrics, GammaFitApproachesElmoreAsVarianceVanishes) {
  // k -> infinity: the gamma median tends to the mean.
  const double td = 1e-9;
  for (double sigma_frac : {0.5, 0.1, 0.01}) {
    const double sigma = sigma_frac * td;
    // m2 from sigma: mu2 = 2 m2 - m1^2 => m2 = (sigma^2 + td^2)/2.
    const auto d = metrics_from_moments(-td, 0.5 * (sigma * sigma + td * td));
    EXPECT_NEAR(d.scaled_elmore, td, 3.0 * sigma);
  }
}

TEST(Metrics, ZooOrderingOnDeepLineNodes) {
  // Deep in a line, exact delay is close to T_D and all the scaled metrics
  // sit between the unimodal lower bound and T_D.
  const RCTree t = gen::line(30, 50.0, 10e-15, 100.0, 50e-15);
  const auto metrics = delay_metrics(t);
  const auto& leaf = metrics.back();
  EXPECT_LT(leaf.lower_unimodal, leaf.scaled_elmore);
  EXPECT_LT(leaf.scaled_elmore, leaf.elmore);
  EXPECT_LT(leaf.d2m, leaf.elmore);
}

}  // namespace
}  // namespace rct::core
