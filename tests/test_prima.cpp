#include "core/prima.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/awe.hpp"
#include "helpers.hpp"
#include "rctree/circuits.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/generators.hpp"
#include "sim/exact.hpp"

namespace rct::core {
namespace {

using rct::testing::ExpectRel;

TEST(Prima, Validation) {
  EXPECT_THROW(PrimaReduction(testing::small_tree(), 0), std::invalid_argument);
  RCTreeBuilder b;
  b.add_node("x", kSource, 1.0, 0.0);
  const RCTree capless = std::move(b).build();
  EXPECT_THROW(PrimaReduction(capless, 1), std::invalid_argument);
}

TEST(Prima, FullOrderReproducesExactModel) {
  const RCTree t = testing::small_tree();
  const sim::ExactAnalysis exact(t);
  const PrimaReduction prima(t, t.size());
  ASSERT_EQ(prima.effective_order(), t.size());
  for (std::size_t j = 0; j < t.size(); ++j)
    ExpectRel(prima.poles()[j], exact.poles()[j], 1e-8);
  const NodeId node = t.at("c");
  const ReducedModel rm = prima.at(node);
  EXPECT_NEAR(rm.dc, 1.0, 1e-9);
  const double tau = exact.dominant_time_constant();
  for (double x : {0.2, 0.8, 2.0})
    EXPECT_NEAR(rm.step_response(x * tau), exact.step_response(node, x * tau), 1e-8);
}

TEST(Prima, MatchesFirstQMoments) {
  // PRIMA's defining property: an order-q SISO projection matches q moments.
  const RCTree t = gen::random_tree(30, 19);
  const std::size_t q = 4;
  const PrimaReduction prima(t, q);
  const auto dist = moments::distribution_moments(t, q - 1);
  for (NodeId node : {NodeId{0}, t.size() / 2, t.size() - 1}) {
    const ReducedModel rm = prima.at(node);
    for (std::size_t k = 0; k < q; ++k) {
      SCOPED_TRACE(::testing::Message() << "node " << node << " moment " << k);
      ExpectRel(rm.distribution_moment(static_cast<int>(k)), dist[k][node], 1e-6, 1e-30);
    }
  }
}

class PrimaStability : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrimaStability, AlwaysStableWhereAweMayFail) {
  // Structural stability: every reduced pole real positive, every seed,
  // every order — no exceptions, unlike AWE.
  const RCTree t = gen::random_tree(15, GetParam());
  for (std::size_t q : {1u, 2u, 3u, 4u, 6u}) {
    const PrimaReduction prima(t, q);
    EXPECT_TRUE(prima.stable()) << "q=" << q;
    for (double l : prima.poles()) EXPECT_GT(l, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrimaStability,
                         ::testing::Values(3, 6, 9, 12, 15, 18, 21, 24));

TEST(Prima, DelayAccuracyImprovesWithOrder) {
  const RCTree t = rct::circuits::tree25();
  const sim::ExactAnalysis exact(t);
  const NodeId node = t.at("C");
  const double truth = exact.step_delay(node);
  double prev = 1e300;
  for (std::size_t q : {1u, 2u, 4u, 8u}) {
    const PrimaReduction prima(t, q);
    const double err = std::abs(prima.at(node).delay() - truth);
    EXPECT_LT(err, prev * 1.2) << "q=" << q;  // allow small non-monotone wiggle
    prev = err;
  }
  EXPECT_LT(prev, 1e-3 * truth);
}

TEST(Prima, SaturatesGracefullyOnTinyCircuits) {
  const RCTree t = testing::two_rc();
  const PrimaReduction prima(t, 10);  // asks for more than N
  EXPECT_LE(prima.effective_order(), 2u);
  EXPECT_TRUE(prima.stable());
  EXPECT_NEAR(prima.at(1).dc, 1.0, 1e-9);
}

TEST(Prima, DcExactAtEveryNode) {
  // m0 is among the matched moments, so the reduced DC gain is exactly 1.
  const RCTree t = gen::random_tree(40, 77);
  const PrimaReduction prima(t, 3);
  for (NodeId i = 0; i < t.size(); ++i) EXPECT_NEAR(prima.at(i).dc, 1.0, 1e-8);
}

TEST(Prima, StableWhereAweIsUnstable) {
  // Hunt a seed where AWE(4) goes unstable and show PRIMA(4) does not.
  int awe_unstable = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const RCTree t = gen::random_tree(15, seed);
    const AweApproximation awe(t, t.size() - 1, 4);
    if (!awe.stable()) {
      ++awe_unstable;
      const PrimaReduction prima(t, 4);
      EXPECT_TRUE(prima.stable()) << "seed " << seed;
    }
  }
  EXPECT_GT(awe_unstable, 0) << "expected at least one unstable AWE fit in 40 seeds";
}

TEST(Prima, ReducedModelValidation) {
  const PrimaReduction prima(testing::small_tree(), 2);
  EXPECT_THROW((void)prima.at(99), std::invalid_argument);
  const ReducedModel rm = prima.at(0);
  EXPECT_THROW((void)rm.delay(0.0), std::invalid_argument);
  EXPECT_THROW((void)rm.distribution_moment(-1), std::invalid_argument);
}

}  // namespace
}  // namespace rct::core
