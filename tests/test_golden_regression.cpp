// Numerical regression guard: step-response samples and 50% delays of the
// calibrated Fig. 1 circuit, frozen from a verified build.  Any future
// change to the eigensolver, MNA assembly, calibration constants or root
// finder that shifts these values beyond tight tolerances fails here first,
// with a message naming the node and time.

#include <gtest/gtest.h>

#include "moments/path_tracing.hpp"
#include "rctree/circuits.hpp"
#include "sim/exact.hpp"

namespace rct {
namespace {

struct Golden {
  const char* node;
  double t;       // seconds; -1 marks a 50% delay entry
  double value;   // step response value, or delay in seconds
};

// Frozen 2026-07-06 from the calibrated circuit (see EXPERIMENTS.md).
constexpr Golden kGolden[] = {
    {"n1", 2.0e-10, 5.028661610442753e-01},
    {"n1", 5.0e-10, 6.635253004225998e-01},
    {"n1", 1.0e-09, 8.087209877266381e-01},
    {"n1", 2.0e-09, 9.331938407270689e-01},
    {"n1", -1.0, 1.959979178125742e-10},
    {"n5", 2.0e-10, 6.414230358092632e-02},
    {"n5", 5.0e-10, 2.568237785519758e-01},
    {"n5", 1.0e-09, 5.386330881447114e-01},
    {"n5", 2.0e-09, 8.338980343420987e-01},
    {"n5", -1.0, 9.189960911890565e-10},
    {"n7", 2.0e-10, 2.682069531610695e-01},
    {"n7", 5.0e-10, 5.341061685688844e-01},
    {"n7", 1.0e-09, 7.514900801807832e-01},
    {"n7", 2.0e-09, 9.155583996097426e-01},
    {"n7", -1.0, 4.500010165100061e-10},
};

TEST(GoldenRegression, Fig1StepResponsesAndDelays) {
  const RCTree tree = circuits::fig1();
  const sim::ExactAnalysis exact(tree);
  for (const Golden& g : kGolden) {
    const NodeId node = tree.at(g.node);
    if (g.t < 0.0) {
      // Delay entries allow root-finder tolerance.
      EXPECT_NEAR(exact.step_delay(node), g.value, 1e-6 * g.value)
          << g.node << " 50% delay";
    } else {
      EXPECT_NEAR(exact.step_response(node, g.t), g.value, 1e-9)
          << g.node << " @ " << g.t;
    }
  }
}

TEST(GoldenRegression, Tree25ElmoreAnchors) {
  // The calibrated Table II Elmore values, frozen (path tracing only — no
  // floating simulation involved, so tolerances are machine-level).
  const RCTree tree = circuits::tree25();
  const auto obs = circuits::tree25_observed(tree);
  const auto td = moments::elmore_delays(tree);
  EXPECT_NEAR(td[obs[0]], 0.0200e-9, 1e-3 * 0.02e-9);
  EXPECT_NEAR(td[obs[1]], 1.1424e-9, 1e-3 * 1.14e-9);
  EXPECT_NEAR(td[obs[2]], 1.5426e-9, 1e-3 * 1.54e-9);
}

}  // namespace
}  // namespace rct
