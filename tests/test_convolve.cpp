#include "sim/convolve.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "sim/exact.hpp"

namespace rct::sim {
namespace {

TEST(ConvolveResponse, StepThroughImpulseGivesStepResponse) {
  const RCTree t = testing::two_rc();
  const ExactAnalysis e(t);
  const auto grid = e.suggested_grid(4000);
  const Waveform h = e.impulse_waveform(1, grid);
  const StepSource step;
  const Waveform y = convolve_response(h, step);
  for (std::size_t k = 0; k < y.size(); k += 211)
    EXPECT_NEAR(y.value(k), e.step_response(1, y.time(k)), 2e-3);
}

TEST(ConvolveResponse, RampThroughImpulseMatchesClosedForm) {
  const RCTree t = testing::small_tree();
  const ExactAnalysis e(t);
  const double tau = e.dominant_time_constant();
  const auto grid = e.suggested_grid(6000, 2.0 * tau);
  const NodeId n = t.at("c");
  const Waveform h = e.impulse_waveform(n, grid);
  const SaturatedRampSource ramp(2.0 * tau);
  const Waveform y = convolve_response(h, ramp);
  for (std::size_t k = 0; k < y.size(); k += 397)
    EXPECT_NEAR(y.value(k), e.ramp_response(n, y.time(k), 2.0 * tau), 2e-3);
}

TEST(ConvolveResponse, RequiresUniformGridFromZero) {
  const StepSource step;
  EXPECT_THROW((void)convolve_response(Waveform({0.0, 1.0, 3.0}, {1.0, 1.0, 1.0}), step),
               std::invalid_argument);
  EXPECT_THROW((void)convolve_response(Waveform({1.0, 2.0, 3.0}, {1.0, 1.0, 1.0}), step),
               std::invalid_argument);
}

TEST(ConvolveDensities, BoxBoxGivesTriangle) {
  // box(0,1) * box(0,1) = triangle peaking at 1.
  const auto t = uniform_grid(1.0, 101);
  std::vector<double> box(t.size(), 1.0);
  const Waveform f(t, box);
  const Waveform y = convolve_densities(f, f);
  EXPECT_NEAR(y.value_at(1.0), 1.0, 2e-2);
  EXPECT_NEAR(y.value_at(0.5), 0.5, 2e-2);
  EXPECT_NEAR(y.value_at(1.5), 0.5, 2e-2);
  EXPECT_NEAR(y.integrate(), 1.0, 2e-2);
}

TEST(ConvolveDensities, MeanAndCentralMomentsAdd) {
  // Appendix B: for normalized densities, means and central moments mu2,
  // mu3 add under convolution.
  const auto t = uniform_grid(10.0, 2001);
  std::vector<double> fa(t.size());
  std::vector<double> fb(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    fa[i] = std::exp(-t[i]);                              // exp(1): mean 1, mu2 1, mu3 2
    fb[i] = t[i] * std::exp(-t[i]);                       // gamma(2): mean 2, mu2 2, mu3 4
  }
  const Waveform a(t, fa);
  const Waveform b(t, fb);
  const Waveform y = convolve_densities(a, b);
  EXPECT_NEAR(y.density_mean(), a.density_mean() + b.density_mean(), 2e-2);
  EXPECT_NEAR(y.density_central_moment(2),
              a.density_central_moment(2) + b.density_central_moment(2), 5e-2);
  EXPECT_NEAR(y.density_central_moment(3),
              a.density_central_moment(3) + b.density_central_moment(3), 2e-1);
}

TEST(ConvolveDensities, MismatchedStepThrows) {
  const Waveform a(uniform_grid(1.0, 11), std::vector<double>(11, 1.0));
  const Waveform b(uniform_grid(2.0, 11), std::vector<double>(11, 1.0));
  EXPECT_THROW((void)convolve_densities(a, b), std::invalid_argument);
}

TEST(ConvolveDensities, UnimodalityPreserved) {
  // Lemma 1's engine: convolution of unimodal positive densities is
  // unimodal (Wintner's theorem) — check numerically on two gammas.
  const auto t = uniform_grid(12.0, 1201);
  std::vector<double> fa(t.size());
  std::vector<double> fb(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    fa[i] = t[i] * std::exp(-2.0 * t[i]);
    fb[i] = std::exp(-t[i]);
  }
  const Waveform y = convolve_densities(Waveform(t, fa), Waveform(t, fb));
  EXPECT_TRUE(y.is_unimodal(1e-12));
}

}  // namespace
}  // namespace rct::sim
