#include "linalg/symmetric_eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace rct::linalg {
namespace {

TEST(SymmetricEigen, OneByOne) {
  Matrix a(1, 1);
  a(0, 0) = 3.5;
  const auto e = symmetric_eigen(a);
  ASSERT_EQ(e.eigenvalues.size(), 1u);
  EXPECT_DOUBLE_EQ(e.eigenvalues[0], 3.5);
  EXPECT_DOUBLE_EQ(e.eigenvectors(0, 0), 1.0);
}

TEST(SymmetricEigen, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = 1.0;
  a(2, 2) = 2.0;
  const auto e = symmetric_eigen(a);
  EXPECT_NEAR(e.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[2], 3.0, 1e-12);
}

TEST(SymmetricEigen, TwoByTwoClosedForm) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(1, 0) = 1.0;
  a(1, 1) = 2.0;  // only lower triangle needs filling
  const auto e = symmetric_eigen(a);
  EXPECT_NEAR(e.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[1], 3.0, 1e-12);
}

TEST(SymmetricEigen, NonSquareThrows) {
  EXPECT_THROW((void)symmetric_eigen(Matrix(2, 3)), std::invalid_argument);
}

class SymmetricEigenRandom : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SymmetricEigenRandom, ReconstructsMatrixAndIsOrthonormal) {
  const std::size_t n = GetParam();
  std::mt19937_64 rng(1234 + n);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) a(i, j) = a(j, i) = uni(rng);

  const auto e = symmetric_eigen(a);
  const Matrix& q = e.eigenvectors;

  // Eigenvalues ascending.
  for (std::size_t j = 1; j < n; ++j) EXPECT_LE(e.eigenvalues[j - 1], e.eigenvalues[j]);

  // Q^T Q = I.
  const Matrix qtq = q.transposed().multiply(q);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) EXPECT_NEAR(qtq(i, j), i == j ? 1.0 : 0.0, 1e-10);

  // Q diag(w) Q^T = A.
  Matrix qd = q;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) qd(i, j) *= e.eigenvalues[j];
  const Matrix rec = qd.multiply(q.transposed());
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) EXPECT_NEAR(rec(i, j), a(i, j), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SymmetricEigenRandom,
                         ::testing::Values(2, 3, 5, 8, 13, 21, 40, 77));

TEST(SymmetricEigen, TraceAndDeterminantInvariants) {
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> uni(0.1, 2.0);
  const std::size_t n = 12;
  Matrix a(n, n);
  // SPD: A = B^T B + I.
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) b(i, j) = uni(rng) - 1.0;
  a = b.transposed().multiply(b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;

  const auto e = symmetric_eigen(a);
  double trace = 0.0;
  double sum_l = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    trace += a(i, i);
    sum_l += e.eigenvalues[i];
    EXPECT_GT(e.eigenvalues[i], 0.0);  // SPD => positive spectrum
  }
  EXPECT_NEAR(sum_l, trace, 1e-9 * std::abs(trace));
}

TEST(SymmetricEigen, TridiagonalToeplitzClosedForm) {
  // Second-difference matrix: eigenvalues 2 - 2 cos(k pi / (n+1)).
  const std::size_t n = 9;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = 2.0;
    if (i > 0) a(i, i - 1) = -1.0;
  }
  const auto e = symmetric_eigen(a);
  for (std::size_t k = 1; k <= n; ++k) {
    const double want =
        2.0 - 2.0 * std::cos(static_cast<double>(k) * M_PI / static_cast<double>(n + 1));
    EXPECT_NEAR(e.eigenvalues[k - 1], want, 1e-10);
  }
}

}  // namespace
}  // namespace rct::linalg
