#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/elmore.hpp"
#include "helpers.hpp"
#include "rctree/circuits.hpp"
#include "rctree/generators.hpp"
#include "sim/exact.hpp"

namespace rct::core {
namespace {

using rct::testing::ExpectRel;

TEST(ElmoreApi, MatchesMomentsEngine) {
  const RCTree t = testing::small_tree();
  EXPECT_DOUBLE_EQ(elmore_delay(t, t.at("c")), elmore_delays(t)[t.at("c")]);
}

TEST(SinglePole, LnTwoScaling) {
  EXPECT_NEAR(single_pole_delay(1e-9), std::log(2.0) * 1e-9, 1e-20);
  EXPECT_NEAR(single_pole_delay(1e-9, 0.9), std::log(10.0) * 1e-9, 1e-18);
}

TEST(DelayBounds, SingleRcValues) {
  // T_D = sigma = tau: lower bound collapses to 0, upper = tau.
  const auto b = delay_bounds_at(testing::single_rc(1000.0, 1e-12), 0);
  EXPECT_NEAR(b.elmore, 1e-9, 1e-20);
  EXPECT_NEAR(b.sigma, 1e-9, 1e-18);
  EXPECT_NEAR(b.lower, 0.0, 1e-18);
  EXPECT_DOUBLE_EQ(b.upper, b.elmore);
}

TEST(DelayBounds, TheoremHoldsOnPaperCircuit) {
  const RCTree t = circuits::fig1();
  const sim::ExactAnalysis e(t);
  const auto bounds = delay_bounds(t);
  for (NodeId i = 0; i < t.size(); ++i) {
    const double exact = e.step_delay(i);
    EXPECT_LE(exact, bounds[i].upper * (1 + 1e-9)) << t.name(i);
    EXPECT_GE(exact, bounds[i].lower * (1 - 1e-9)) << t.name(i);
  }
}

TEST(GeneralizedBounds, StepReducesToStepBounds) {
  const RCTree t = testing::small_tree();
  const sim::StepSource step;
  const auto g = generalized_bounds(t, t.at("c"), step);
  const auto b = delay_bounds_at(t, t.at("c"));
  EXPECT_NEAR(g.out_mean, b.elmore, 1e-20);
  EXPECT_NEAR(g.out_sigma, b.sigma, 1e-18);
  EXPECT_NEAR(g.crossing_lower, b.lower, 1e-18);
  EXPECT_NEAR(g.delay_upper, b.elmore, 1e-20);
}

TEST(GeneralizedBounds, RampKeepsDelayUpperAtElmore) {
  // Symmetric input derivative: mean(v_i') = t_in,50, so the 50-50 delay
  // upper bound is exactly T_D regardless of rise time.
  const RCTree t = testing::small_tree();
  const double td = elmore_delay(t, t.at("c"));
  for (double tr : {1e-10, 1e-9, 1e-8}) {
    const sim::SaturatedRampSource ramp(tr);
    const auto g = generalized_bounds(t, t.at("c"), ramp);
    EXPECT_NEAR(g.delay_upper, td, 1e-12 * td);
    EXPECT_NEAR(g.out_mean, td + 0.5 * tr, 1e-12 * g.out_mean);
  }
}

TEST(GeneralizedBounds, SkewnessDecaysWithRiseTime) {
  // Corollary 3 mechanism: gamma(v_o') -> 0 as t_r grows.
  const RCTree t = testing::small_tree();
  double prev = 1e9;
  for (double tr : {1e-10, 1e-9, 1e-8, 1e-7}) {
    const sim::SaturatedRampSource ramp(tr);
    const auto g = generalized_bounds(t, t.at("c"), ramp);
    EXPECT_LT(g.out_skewness, prev);
    prev = g.out_skewness;
  }
  EXPECT_LT(prev, 1e-2);
}

TEST(GeneralizedBounds, ExponentialInputAddsItsSkew) {
  const RCTree t = testing::small_tree();
  const double tau = 1e-9;
  const sim::ExponentialSource expo(tau);
  const auto g = generalized_bounds(t, t.at("c"), expo);
  const auto stats = moments::impulse_stats(t)[t.at("c")];
  EXPECT_NEAR(g.out_mean, stats.mean + tau, 1e-12 * g.out_mean);
  EXPECT_NEAR(g.out_mu3, stats.mu3 + 2 * tau * tau * tau, 1e-12 * g.out_mu3);
}

TEST(GeneralizedBounds, CrossingBoundsContainExactCrossing) {
  const RCTree t = circuits::fig1();
  const sim::ExactAnalysis e(t);
  const auto obs = circuits::fig1_observed(t);
  for (NodeId node : obs) {
    for (double tr : {0.2e-9, 1e-9, 5e-9}) {
      const sim::SaturatedRampSource ramp(tr);
      const double cross = e.response_crossing(node, ramp, 0.5);
      const auto g = generalized_bounds(t, node, ramp);
      EXPECT_LE(cross, g.crossing_upper * (1 + 1e-9));
      EXPECT_GE(cross, g.crossing_lower * (1 - 1e-9));
    }
  }
}

TEST(RiseTimeEstimate, TracksExactRiseTimeWithinFactor) {
  // sigma is proportional to (not equal to) the 10-90 rise time at *output*
  // nodes (eq. 38).  At the driving point the step edge is far faster than
  // sigma suggests, so the proportionality claim is checked at B, C and the
  // leaves, not at A.
  const RCTree t = circuits::tree25();
  const sim::ExactAnalysis e(t);
  std::vector<NodeId> nodes = t.leaves();
  nodes.push_back(t.at("B"));
  double lo = 1e300;
  double hi = 0.0;
  for (NodeId node : nodes) {
    const double ratio = e.step_rise_time_10_90(node) / rise_time_estimate(t, node);
    lo = std::min(lo, ratio);
    hi = std::max(hi, ratio);
  }
  // Single-pole responses give ~2.2, diffusive deep nodes ~2.6.
  EXPECT_GT(lo, 1.0);
  EXPECT_LT(hi, 4.0);
  EXPECT_LT(hi / lo, 2.5);
}

}  // namespace
}  // namespace rct::core
