#include "moments/path_tracing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "rctree/generators.hpp"

namespace rct::moments {
namespace {

using rct::testing::ExpectRel;

TEST(SubtreeCapacitances, SmallTree) {
  const RCTree t = testing::small_tree();
  const auto c = subtree_capacitances(t);
  EXPECT_DOUBLE_EQ(c[t.at("a")], 5e-12);
  EXPECT_DOUBLE_EQ(c[t.at("b")], 2.5e-12);
  EXPECT_DOUBLE_EQ(c[t.at("c")], 0.5e-12);
  EXPECT_DOUBLE_EQ(c[t.at("d")], 1.5e-12);
}

TEST(PathResistances, SmallTree) {
  const RCTree t = testing::small_tree();
  const auto r = path_resistances(t);
  EXPECT_DOUBLE_EQ(r[t.at("a")], 100.0);
  EXPECT_DOUBLE_EQ(r[t.at("c")], 600.0);
  EXPECT_DOUBLE_EQ(r[t.at("d")], 250.0);
}

TEST(ElmoreDelays, HandComputedSmallTree) {
  // T_D(i) = sum_k R_ki C_k with R_ki the shared-path resistance.
  const RCTree t = testing::small_tree();
  const auto td = elmore_delays(t);
  const double ca = 1e-12;
  const double cb = 2e-12;
  const double cc = 0.5e-12;
  const double cd = 1.5e-12;
  EXPECT_NEAR(td[t.at("a")], 100 * (ca + cb + cc + cd), 1e-22);
  EXPECT_NEAR(td[t.at("b")], 100 * (ca + cb + cc + cd) + 200 * (cb + cc), 1e-22);
  EXPECT_NEAR(td[t.at("c")], 100 * (ca + cb + cc + cd) + 200 * (cb + cc) + 300 * cc, 1e-22);
  EXPECT_NEAR(td[t.at("d")], 100 * (ca + cb + cc + cd) + 150 * cd, 1e-22);
}

TEST(ElmoreDelays, SingleRcIsTau) {
  const auto td = elmore_delays(testing::single_rc(1000.0, 1e-12));
  EXPECT_DOUBLE_EQ(td[0], 1e-9);
}

TEST(ElmoreDelays, MonotoneAlongAnyPath) {
  const RCTree t = gen::random_tree(80, 4);
  const auto td = elmore_delays(t);
  for (NodeId i = 0; i < t.size(); ++i) {
    if (t.parent(i) != kSource) {
      EXPECT_GT(td[i], td[t.parent(i)]);
    }
  }
}

TEST(TransferMoments, MatchDirectDefinition) {
  // m_1(i) = -T_D(i); m_0 = 1.
  const RCTree t = gen::random_tree(50, 12);
  const auto m = transfer_moments(t, 1);
  const auto td = elmore_delays(t);
  for (NodeId i = 0; i < t.size(); ++i) {
    EXPECT_DOUBLE_EQ(m[0][i], 1.0);
    ExpectRel(m[1][i], -td[i], 1e-12);
  }
}

TEST(TransferMoments, SingleRcClosedFormAllOrders) {
  // H(s) = 1/(1 + s tau): m_k = (-tau)^k.
  const double tau = 2e-9;
  const RCTree t = testing::single_rc(2000.0, 1e-12);
  const auto m = transfer_moments(t, 6);
  for (std::size_t k = 0; k <= 6; ++k) ExpectRel(m[k][0], std::pow(-tau, k), 1e-12);
}

TEST(DistributionMoments, SignAndFactorial) {
  // M_q = (-1)^q q! m_q; for single RC: M_q = q! tau^q.
  const double tau = 1e-9;
  const RCTree t = testing::single_rc(1000.0, 1e-12);
  const auto dm = distribution_moments(t, 4);
  double fact = 1.0;
  for (std::size_t q = 0; q <= 4; ++q) {
    if (q > 0) fact *= static_cast<double>(q);
    ExpectRel(dm[q][0], fact * std::pow(tau, q), 1e-12);
  }
}

TEST(PrhTerms, SingleRcDegenerate) {
  const auto p = prh_terms(testing::single_rc(1000.0, 1e-12));
  EXPECT_DOUBLE_EQ(p.tp, 1e-9);
  EXPECT_DOUBLE_EQ(p.td[0], 1e-9);
  EXPECT_DOUBLE_EQ(p.tr[0], 1e-9);
}

TEST(PrhTerms, OrderingTrLeTdLeTp) {
  // Classic RPH inequalities: T_R(i) <= T_D(i) <= T_P.
  for (std::uint64_t seed : {1u, 5u, 9u, 14u}) {
    const RCTree t = gen::random_tree(60, seed);
    const auto p = prh_terms(t);
    for (NodeId i = 0; i < t.size(); ++i) {
      EXPECT_LE(p.tr[i], p.td[i] * (1 + 1e-12));
      EXPECT_LE(p.td[i], p.tp * (1 + 1e-12));
    }
  }
}

TEST(PrhTerms, FastTrMatchesQuadraticReference) {
  for (std::uint64_t seed : {2u, 7u}) {
    const RCTree t = gen::random_tree(40, seed);
    const auto p = prh_terms(t);
    const auto slow = squared_common_resistance_slow(t);
    const auto rpath = path_resistances(t);
    for (NodeId i = 0; i < t.size(); ++i) ExpectRel(p.tr[i], slow[i] / rpath[i], 1e-10);
  }
}

TEST(PrhTerms, TpEqualsElmoreSumWeightedByFullPath) {
  const RCTree t = testing::small_tree();
  const auto p = prh_terms(t);
  // T_P = sum_k R_kk C_k by hand.
  const double want =
      100 * 1e-12 + 300 * 2e-12 + 600 * 0.5e-12 + 250 * 1.5e-12;
  EXPECT_NEAR(p.tp, want, 1e-22);
}

TEST(PathTracing, LineScalesLinearly) {
  // Smoke check the O(N) claim: a 100k-node line completes fast and gives
  // finite results.
  const RCTree t = gen::line(100000, 10.0, 0.0, 1.0, 1e-15);
  const auto td = elmore_delays(t);
  const auto p = prh_terms(t);
  EXPECT_TRUE(std::isfinite(td.back()));
  EXPECT_TRUE(std::isfinite(p.tr.back()));
  EXPECT_GT(td.back(), 0.0);
}

}  // namespace
}  // namespace rct::moments
