#include "linalg/root_find.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rct::linalg {
namespace {

TEST(BrentRoot, FindsSqrtTwo) {
  const auto r = brent_root([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, std::sqrt(2.0), 1e-12);
}

TEST(BrentRoot, EndpointIsRoot) {
  const auto r = brent_root([](double x) { return x; }, 0.0, 1.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 0.0);
}

TEST(BrentRoot, InvalidBracketReturnsNullopt) {
  EXPECT_FALSE(brent_root([](double x) { return x * x + 1.0; }, -1.0, 1.0).has_value());
}

TEST(BrentRoot, SteepExponentialCrossing) {
  // 1 - e^{-x/tau} = 0.5 -> x = tau ln 2, tau = 1e-9 (circuit scale).
  const double tau = 1e-9;
  const auto r =
      brent_root([&](double t) { return 1.0 - std::exp(-t / tau) - 0.5; }, 0.0, 1e-6);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, tau * std::log(2.0), 1e-15);
}

TEST(BrentRoot, DiscontinuousSignChangeStillBracketed) {
  // Step-like function: Brent still converges to the jump location.
  const auto r = brent_root([](double x) { return x < 0.3 ? -1.0 : 1.0; }, 0.0, 1.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 0.3, 1e-9);
}

TEST(BracketAndSolve, ExpandsUntilSignChange) {
  // Root at 100; initial hi is far too small.
  const auto r = bracket_and_solve([](double x) { return x - 100.0; }, 1.0, 1e6);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 100.0, 1e-9);
}

TEST(BracketAndSolve, RespectsCap) {
  EXPECT_FALSE(bracket_and_solve([](double x) { return x - 100.0; }, 1.0, 10.0).has_value());
}

TEST(BracketAndSolve, ZeroIsRoot) {
  const auto r = bracket_and_solve([](double x) { return x; }, 1.0, 10.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 0.0);
}

}  // namespace
}  // namespace rct::linalg
