#include "rctree/dot_export.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace rct {
namespace {

TEST(DotExport, ContainsAllNodesAndEdges) {
  const RCTree t = testing::small_tree();
  const std::string dot = to_dot(t);
  EXPECT_NE(dot.find("digraph rctree"), std::string::npos);
  EXPECT_NE(dot.find("src"), std::string::npos);
  for (NodeId i = 0; i < t.size(); ++i)
    EXPECT_NE(dot.find(t.name(i)), std::string::npos) << t.name(i);
  // One edge per node: source edge plus internal ones.
  std::size_t arrows = 0;
  for (std::size_t p = dot.find("->"); p != std::string::npos; p = dot.find("->", p + 2))
    ++arrows;
  EXPECT_EQ(arrows, t.size());
}

TEST(DotExport, ValuesToggleAndAnnotations) {
  const RCTree t = testing::single_rc(1000.0, 1e-12);
  DotOptions opt;
  opt.show_values = false;
  const std::string bare = to_dot(t, opt);
  EXPECT_EQ(bare.find("C="), std::string::npos);

  DotOptions ann;
  ann.annotations[0] = "TD=1ns";
  const std::string with_ann = to_dot(t, ann);
  EXPECT_NE(with_ann.find("TD=1ns"), std::string::npos);
  EXPECT_NE(with_ann.find("C=1pF"), std::string::npos);
}

TEST(DotExport, CustomGraphName) {
  DotOptions opt;
  opt.graph_name = "my_net";
  EXPECT_NE(to_dot(testing::single_rc(), opt).find("digraph my_net"), std::string::npos);
}

}  // namespace
}  // namespace rct
