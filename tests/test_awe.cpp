#include "core/awe.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/elmore.hpp"
#include "helpers.hpp"
#include "rctree/circuits.hpp"
#include "rctree/generators.hpp"
#include "sim/exact.hpp"

namespace rct::core {
namespace {

TEST(Awe, OrderOneIsDominantPoleElmoreModel) {
  // q = 1 must reproduce v(t) = 1 - e^{-t/T_D}: delay = ln 2 * T_D.
  const RCTree t = testing::small_tree();
  const NodeId n = t.at("c");
  const AweApproximation awe(t, n, 1);
  ASSERT_EQ(awe.order(), 1u);
  EXPECT_TRUE(awe.stable());
  const double td = elmore_delay(t, n);
  EXPECT_NEAR(awe.poles()[0].real(), 1.0 / td, 1e-9 / td);
  EXPECT_NEAR(awe.delay(), std::log(2.0) * td, 1e-6 * td);
}

TEST(Awe, FullOrderRecoversExactPoles) {
  // q = N on an N-node tree: the fitted poles are the circuit poles.
  const RCTree t = testing::two_rc();
  const sim::ExactAnalysis e(t);
  const AweApproximation awe(t, 1, 2);
  ASSERT_TRUE(awe.stable());
  std::vector<double> got{awe.poles()[0].real(), awe.poles()[1].real()};
  std::sort(got.begin(), got.end());
  EXPECT_NEAR(got[0], e.poles()[0], 1e-6 * e.poles()[0]);
  EXPECT_NEAR(got[1], e.poles()[1], 1e-6 * e.poles()[1]);
}

TEST(Awe, FullOrderMatchesExactWaveform) {
  const RCTree t = testing::small_tree();
  const sim::ExactAnalysis e(t);
  const NodeId n = t.at("d");
  const AweApproximation awe(t, n, 4);
  const double tau = e.dominant_time_constant();
  for (double x : {0.2, 0.7, 1.5, 4.0}) {
    EXPECT_NEAR(awe.step_response(x * tau), e.step_response(n, x * tau), 1e-6);
    EXPECT_NEAR(awe.impulse_response(x * tau) * tau, e.impulse_response(n, x * tau) * tau,
                1e-5);
  }
}

TEST(Awe, AccuracyImprovesWithOrder) {
  const RCTree t = circuits::tree25();
  const sim::ExactAnalysis e(t);
  const NodeId n = t.at("C");
  const double exact = e.step_delay(n);
  double prev_err = 1e300;
  for (std::size_t q : {1u, 2u, 3u}) {
    const AweApproximation awe(t, n, q);
    if (!awe.stable()) continue;  // low-order AWE can go unstable; skip
    const double err = std::abs(awe.delay() - exact);
    EXPECT_LT(err, prev_err * 1.05) << "q=" << q;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 0.02 * exact);
}

TEST(TwoPole, BeatsSinglePoleOnPaperCircuit) {
  const RCTree t = circuits::fig1();
  const sim::ExactAnalysis e(t);
  for (NodeId n : circuits::fig1_observed(t)) {
    const double exact = e.step_delay(n);
    const double one_pole = single_pole_delay(elmore_delay(t, n));
    const double two_pole = two_pole_delay(t, n);
    EXPECT_LE(std::abs(two_pole - exact), std::abs(one_pole - exact) + 1e-12)
        << t.name(n);
  }
}

TEST(Awe, DelayValidation) {
  const RCTree t = testing::small_tree();
  const AweApproximation awe(t, t.at("c"), 2);
  EXPECT_THROW((void)awe.delay(0.0), std::invalid_argument);
  EXPECT_THROW((void)awe.delay(1.0), std::invalid_argument);
}

TEST(Awe, OrderValidation) {
  const RCTree t = testing::small_tree();
  EXPECT_THROW(AweApproximation(t, 0, 0), std::invalid_argument);
  EXPECT_THROW(AweApproximation(std::vector<double>{1.0}, 1), std::invalid_argument);
}

TEST(Awe, FromExplicitMoments) {
  // Single-pole system given by explicit moments of 1/(1+s tau).
  const double tau = 1e-9;
  const AweApproximation awe(std::vector<double>{1.0, -tau}, 1);
  EXPECT_TRUE(awe.stable());
  EXPECT_NEAR(awe.poles()[0].real(), 1.0 / tau, 1e-6 / tau);
}

TEST(Awe, DcGainPreserved) {
  // Step response must settle at 1 (moment m0 = 1 is matched).
  const RCTree t = gen::random_tree(20, 55);
  const AweApproximation awe(t, t.size() - 1, 3);
  if (awe.stable()) {
    const double tau = 1.0 / awe.poles()[0].real();
    EXPECT_NEAR(awe.step_response(60.0 * std::abs(tau)), 1.0, 1e-6);
  }
}

class AweBoundCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AweBoundCheck, StableFitsConvergeTowardExactDelay) {
  const RCTree t = gen::random_tree(15, GetParam());
  const sim::ExactAnalysis e(t);
  const NodeId n = t.size() - 1;
  const double exact = e.step_delay(n);
  const AweApproximation awe(t, n, 4);
  if (!awe.stable()) GTEST_SKIP() << "unstable AWE fit (known failure mode)";
  // Moment matching emphasizes low frequency; ~10% error at the 50% point
  // is within normal AWE(4) behaviour on awkward pole spreads.
  EXPECT_NEAR(awe.delay(), exact, 0.12 * exact);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AweBoundCheck, ::testing::Values(3, 6, 9, 12, 15));

}  // namespace
}  // namespace rct::core
