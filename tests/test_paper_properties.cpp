// Property suite: the paper's theorem, lemmas and corollaries checked
// against the exact simulator over seeded random RC trees and diverse
// topologies.  This is the empirical backbone of the reproduction — every
// claim in Section III/IV is exercised here on circuits the authors never
// saw.

#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "core/elmore.hpp"
#include "core/penfield_rubinstein.hpp"
#include "helpers.hpp"
#include "moments/central.hpp"
#include "rctree/generators.hpp"
#include "sim/exact.hpp"

namespace rct {
namespace {

struct TopologyCase {
  const char* name;
  RCTree tree;
};

std::vector<TopologyCase> topology_zoo(std::uint64_t seed) {
  gen::RandomTreeOptions liney;
  liney.bushiness = 0.15;
  return {
      {"random_bushy", gen::random_tree(24, seed)},
      {"random_liney", gen::random_tree(24, seed + 1000, liney)},
      {"line", gen::line(20, 50.0, 5e-15, 120.0, 40e-15)},
      {"star", gen::star(12, 200.0, 20e-15, 400.0, 60e-15)},
      {"htree", gen::htree(4, 150.0, 100e-15, 8e-15)},
      {"balanced", gen::balanced(3, 3, 100.0, 10e-15, 250.0, 30e-15)},
  };
}

class PaperProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PaperProperties, TheoremElmoreUpperBoundsExactDelay) {
  for (const auto& tc : topology_zoo(GetParam())) {
    const sim::ExactAnalysis e(tc.tree);
    const auto td = core::elmore_delays(tc.tree);
    for (NodeId i = 0; i < tc.tree.size(); ++i) {
      const double exact = e.step_delay(i);
      EXPECT_LE(exact, td[i] * (1 + 1e-9)) << tc.name << " node " << i;
    }
  }
}

TEST_P(PaperProperties, Corollary1LowerBoundHolds) {
  for (const auto& tc : topology_zoo(GetParam())) {
    const sim::ExactAnalysis e(tc.tree);
    const auto bounds = core::delay_bounds(tc.tree);
    for (NodeId i = 0; i < tc.tree.size(); ++i) {
      EXPECT_GE(e.step_delay(i), bounds[i].lower * (1 - 1e-9)) << tc.name << " node " << i;
    }
  }
}

TEST_P(PaperProperties, Lemma1ImpulseResponseUnimodalAndPositive) {
  for (const auto& tc : topology_zoo(GetParam())) {
    const sim::ExactAnalysis e(tc.tree);
    const auto grid = e.suggested_grid(1500);
    for (NodeId i : {NodeId{0}, tc.tree.size() / 2, tc.tree.size() - 1}) {
      const auto h = e.impulse_waveform(i, grid);
      double peak = 0.0;
      for (double v : h.values()) peak = std::max(peak, std::abs(v));
      for (double v : h.values()) EXPECT_GE(v, -1e-9 * peak) << tc.name;
      EXPECT_TRUE(h.is_unimodal(1e-9 * peak)) << tc.name << " node " << i;
    }
  }
}

TEST_P(PaperProperties, Lemma2SkewnessNonNegative) {
  for (const auto& tc : topology_zoo(GetParam())) {
    for (const auto& s : moments::impulse_stats(tc.tree)) {
      EXPECT_GE(s.mu2, 0.0) << tc.name;
      EXPECT_GE(s.skewness, -1e-12) << tc.name;
    }
  }
}

TEST_P(PaperProperties, ModeMedianMeanOrdering) {
  // The full inequality (17): Mode <= Median <= Mean of h(t).
  for (const auto& tc : topology_zoo(GetParam())) {
    const sim::ExactAnalysis e(tc.tree);
    const auto grid = e.suggested_grid(6000, 0.0, 20.0);
    for (NodeId i : {tc.tree.size() / 2, tc.tree.size() - 1}) {
      const auto h = e.impulse_waveform(i, grid);
      const double mode = h.density_mode();
      const double median = h.density_median();
      const double mean = h.density_mean();
      const double slack = 2.0 * grid[1];  // one grid step of numeric slack
      EXPECT_LE(mode, median + slack) << tc.name << " node " << i;
      EXPECT_LE(median, mean + slack) << tc.name << " node " << i;
    }
  }
}

TEST_P(PaperProperties, PrhBoundsContainExactAtHalf) {
  for (const auto& tc : topology_zoo(GetParam())) {
    const sim::ExactAnalysis e(tc.tree);
    const core::PrhBounds prh(tc.tree);
    for (NodeId i = 0; i < tc.tree.size(); ++i) {
      const double exact = e.step_delay(i);
      EXPECT_LE(prh.t_min(i, 0.5), exact * (1 + 1e-9)) << tc.name;
      EXPECT_GE(prh.t_max(i, 0.5), exact * (1 - 1e-9)) << tc.name;
    }
  }
}

TEST_P(PaperProperties, Corollary2BoundHoldsForUnimodalDerivativeInputs) {
  // For saturated ramps, raised cosines and exponentials: the output 50%
  // crossing is bounded by mean(v_o') on both sides per Corollaries 1-2.
  for (const auto& tc : topology_zoo(GetParam())) {
    const sim::ExactAnalysis e(tc.tree);
    const double tau = e.dominant_time_constant();
    const sim::SaturatedRampSource ramp(2.0 * tau);
    const sim::RaisedCosineSource cosine(3.0 * tau);
    const sim::ExponentialSource expo(0.8 * tau);
    const NodeId node = tc.tree.size() - 1;
    for (const sim::Source* src :
         std::initializer_list<const sim::Source*>{&ramp, &cosine, &expo}) {
      const double cross = e.response_crossing(node, *src, 0.5);
      const auto g = core::generalized_bounds(tc.tree, node, *src);
      EXPECT_LE(cross, g.crossing_upper * (1 + 1e-6)) << tc.name << " " << src->describe();
      EXPECT_GE(cross, g.crossing_lower * (1 - 1e-6)) << tc.name << " " << src->describe();
    }
  }
}

TEST_P(PaperProperties, Corollary3DelayApproachesElmoreFromBelow) {
  for (const auto& tc : topology_zoo(GetParam())) {
    const sim::ExactAnalysis e(tc.tree);
    const double tau = e.dominant_time_constant();
    const NodeId node = tc.tree.size() - 1;
    const double td = core::elmore_delay(tc.tree, node);
    double prev = 0.0;
    for (double mult : {0.5, 2.0, 8.0, 32.0}) {
      const sim::SaturatedRampSource ramp(mult * tau);
      const double d = e.delay_50_50(node, ramp);
      EXPECT_GE(d, prev * (1 - 1e-7)) << tc.name;    // monotone in rise time
      EXPECT_LE(d, td * (1 + 1e-9)) << tc.name;      // always below T_D
      prev = d;
    }
    EXPECT_GT(prev, 0.93 * td) << tc.name;  // asymptote reached at 32 tau
  }
}

TEST_P(PaperProperties, StepResponsesMonotone) {
  // Penfield-Rubinstein monotonicity, prerequisite of the whole framework.
  for (const auto& tc : topology_zoo(GetParam())) {
    const sim::ExactAnalysis e(tc.tree);
    const auto grid = e.suggested_grid(1200);
    for (NodeId i : {NodeId{0}, tc.tree.size() - 1})
      EXPECT_TRUE(e.step_waveform(i, grid).is_monotone_nondecreasing(1e-12)) << tc.name;
  }
}

TEST_P(PaperProperties, SigmaAddsAlongCascadedStages) {
  // Appendix B additivity, realized structurally: mu2/mu3 at a node equal
  // the sums of per-edge increments down the path (checked via parent).
  for (const auto& tc : topology_zoo(GetParam())) {
    const auto stats = moments::impulse_stats(tc.tree);
    for (NodeId i = 0; i < tc.tree.size(); ++i) {
      const NodeId p = tc.tree.parent(i);
      if (p == kSource) continue;
      EXPECT_GE(stats[i].mu2, stats[p].mu2 * (1 - 1e-12)) << tc.name;
      EXPECT_GE(stats[i].mu3, stats[p].mu3 * (1 - 1e-12)) << tc.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaperProperties,
                         ::testing::Values(7, 17, 27, 37, 47, 57, 67, 77));

}  // namespace
}  // namespace rct
