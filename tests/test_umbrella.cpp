// Compile-level test: the umbrella header pulls in every public module and
// the layers interoperate in one translation unit.

#include "rct.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, OneSymbolFromEveryLayer) {
  // rctree
  rct::RCTreeBuilder b;
  const rct::NodeId n1 = b.add_node("n1", rct::kSource, 100.0, 1e-12);
  b.add_node("n2", n1, 200.0, 2e-12);
  const rct::RCTree tree = std::move(b).build();
  EXPECT_EQ(tree.size(), 2u);

  // moments
  const auto td = rct::moments::elmore_delays(tree);
  EXPECT_GT(td.back(), 0.0);

  // core
  const auto bounds = rct::core::delay_bounds_at(tree, 1);
  EXPECT_GT(bounds.upper, bounds.lower);

  // sim
  const rct::sim::ExactAnalysis exact(tree);
  EXPECT_LE(exact.step_delay(1), bounds.upper * (1 + 1e-9));

  // linalg (via a metric)
  const auto metrics = rct::core::delay_metrics(tree);
  EXPECT_LT(metrics[1].single_pole, metrics[1].elmore);

  // sta
  const auto lib = rct::sta::builtin_library();
  EXPECT_FALSE(lib.empty());

  // dot export renders
  EXPECT_FALSE(rct::to_dot(tree).empty());
}

}  // namespace
