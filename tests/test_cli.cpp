// End-to-end tests of the `rct` command-line tool: spawn the real binary on
// the committed testdata and check output and exit codes.  The binary path
// and testdata directory are injected by CMake.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"   // for the RCT_OBS_ENABLED build flag
#include "robust/fault.hpp"  // for the RCT_FAULT_ENABLED build flag

#ifndef RCT_CLI_PATH
#define RCT_CLI_PATH "./rct"
#endif
#ifndef RCT_TESTDATA_DIR
#define RCT_TESTDATA_DIR "testdata"
#endif

namespace {

struct RunResult {
  int exit_code;
  std::string output;  // stdout + stderr
};

RunResult run_redirected(const std::string& args, const char* redirect) {
  const std::string cmd = std::string(RCT_CLI_PATH) + " " + args + " " + redirect;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string out;
  std::array<char, 4096> buf{};
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) out += buf.data();
  const int status = pclose(pipe);
  return {WIFEXITED(status) ? WEXITSTATUS(status) : -1, std::move(out)};
}

RunResult run(const std::string& args) { return run_redirected(args, "2>&1"); }

/// stdout only — for byte-identity checks that must ignore the (timed)
/// engine stats printed to stderr.
RunResult run_stdout(const std::string& args) { return run_redirected(args, "2>/dev/null"); }

std::string data(const char* file) { return std::string(RCT_TESTDATA_DIR) + "/" + file; }

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Like slurp, but a missing file reads as "" — for polling loops.
std::string slurp_if_present(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Cli, NoArgsPrintsUsage) {
  const auto r = run("");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, ReportOnDeck) {
  const auto r = run("report " + data("bus_bit.sp"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("elmore"), std::string::npos);
  EXPECT_NE(r.output.find("rx2"), std::string::npos);
}

TEST(Cli, DotOnDeck) {
  const auto r = run("dot " + data("bus_bit.sp"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("digraph"), std::string::npos);
  EXPECT_NE(r.output.find("TD="), std::string::npos);
}

TEST(Cli, SpefReport) {
  const auto r = run("spef " + data("two_nets.spef"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("net_a"), std::string::npos);
  EXPECT_NE(r.output.find("exact"), std::string::npos);
}

TEST(Cli, BatchReport) {
  const auto r = run("batch " + data("two_nets.spef"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("net_a"), std::string::npos);
  EXPECT_NE(r.output.find("net_b"), std::string::npos);
  EXPECT_NE(r.output.find("exact"), std::string::npos);
  EXPECT_NE(r.output.find("engine:"), std::string::npos);  // stats on stderr
}

TEST(Cli, BatchOutputByteIdenticalAcrossJobs) {
  const auto r1 = run_stdout("batch " + data("two_nets.spef") + " --jobs 1");
  EXPECT_EQ(r1.exit_code, 0);
  for (const char* jobs : {"2", "3", "8"}) {
    const auto rn = run_stdout("batch " + data("two_nets.spef") + " --jobs " + jobs);
    EXPECT_EQ(rn.exit_code, 0);
    EXPECT_EQ(r1.output, rn.output) << "--jobs " << jobs;
  }
  const auto j1 = run_stdout("batch " + data("two_nets.spef") + " --jobs 1 --json");
  const auto j4 = run_stdout("batch " + data("two_nets.spef") + " --jobs 4 --json");
  EXPECT_EQ(j1.output, j4.output);
}

TEST(Cli, BatchJsonSchema) {
  const auto r = run_stdout("batch " + data("two_nets.spef") + " --json");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output.rfind("{\"design\":\"testdata\",\"nets\":[", 0), 0u);
  EXPECT_NE(r.output.find("\"name\":\"net_a\""), std::string::npos);
  EXPECT_NE(r.output.find("\"elmore_s\":"), std::string::npos);
  EXPECT_NE(r.output.find("\"exact_delay_s\":"), std::string::npos);
}

TEST(Cli, BatchMatchesSpefCommandPerNet) {
  // batch is the parallel sibling of spef: same per-net rows, same text.
  const auto spef = run_stdout("spef " + data("two_nets.spef"));
  const auto batch = run_stdout("batch " + data("two_nets.spef") + " --no-cache");
  EXPECT_EQ(spef.output, batch.output);
}

TEST(Cli, BatchExactLimitSuppressesEigensolve) {
  const auto r = run_stdout("batch " + data("two_nets.spef") + " --exact-limit 1");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output.find("exact"), std::string::npos);
  const auto s = run_stdout("spef " + data("two_nets.spef") + " --exact-limit 1");
  EXPECT_EQ(s.exit_code, 0);
  EXPECT_EQ(s.output.find("exact"), std::string::npos);
}

TEST(Cli, BatchStdoutByteIdenticalWithObservabilityOn) {
  // The observability determinism guarantee: tracing, metrics export (both
  // formats, with periodic re-flush), the progress heartbeat, the event
  // log, the flight recorder and the top-slow table never touch stdout.
  const auto base = run_stdout("batch " + data("two_nets.spef") + " --jobs 1");
  EXPECT_EQ(base.exit_code, 0);
  const std::string trace = ::testing::TempDir() + "/rct_cli_obs_trace.json";
  const std::string metrics = ::testing::TempDir() + "/rct_cli_obs_metrics.json";
  const std::string log = ::testing::TempDir() + "/rct_cli_obs_log.jsonl";
  const std::string flight = ::testing::TempDir() + "/rct_cli_obs_flight.json";
  for (const char* jobs : {"1", "2", "8"}) {
    const auto rn = run_stdout("batch " + data("two_nets.spef") + " --jobs " + jobs +
                               " --progress --trace-out " + trace + " --metrics-out " + metrics +
                               " --metrics-format prom --metrics-interval-ms 20" +
                               " --log-out " + log + " --log-level debug" +
                               " --flight-recorder-out " + flight + " --top-slow 2");
    EXPECT_EQ(rn.exit_code, 0);
    EXPECT_EQ(base.output, rn.output) << "--jobs " << jobs;
  }
  std::remove(trace.c_str());
  std::remove(metrics.c_str());
  std::remove(log.c_str());
  std::remove(flight.c_str());
}

TEST(Cli, BatchTraceOutIsChromeTraceWithAllLayers) {
  const std::string trace = ::testing::TempDir() + "/rct_cli_trace.json";
  const auto r = run_stdout("batch " + data("two_nets.spef") + " --jobs 2 --trace-out " + trace);
  EXPECT_EQ(r.exit_code, 0);
  const std::string body = slurp(trace);
  EXPECT_EQ(body.rfind("{\"displayTimeUnit\":", 0), 0u);
  EXPECT_NE(body.find("\"traceEvents\":["), std::string::npos);
#if RCT_OBS_ENABLED
  // Spans from every instrumented layer (compiled out under -DRCT_OBS=OFF).
  for (const char* cat : {"\"cat\":\"cli\"", "\"cat\":\"engine\"", "\"cat\":\"pool\"",
                          "\"cat\":\"analysis\"", "\"cat\":\"core\""})
    EXPECT_NE(body.find(cat), std::string::npos) << cat;
  EXPECT_NE(body.find("\"engine.net.analyze\""), std::string::npos);
#endif
  std::remove(trace.c_str());
}

TEST(Cli, BatchMetricsOutHasCacheContextPoolAndLatency) {
  const std::string metrics = ::testing::TempDir() + "/rct_cli_metrics.json";
  const auto r = run_stdout("batch " + data("two_nets.spef") + " --metrics-out " + metrics);
  EXPECT_EQ(r.exit_code, 0);
  const std::string body = slurp(metrics);
  EXPECT_NE(body.find("\"schema_version\":1"), std::string::npos);
  for (const char* key :
       {"\"engine.cache.hits\"", "\"engine.cache.misses\"", "\"engine.context.built\"",
        "\"engine.context.reused\"", "\"pool.tasks.run\"", "\"engine.nets.completed\"",
        "\"engine.net.analyze_seconds\"",
        "\"analysis.context.build_seconds\"", "\"core.report.build_seconds\""})
    EXPECT_NE(body.find(key), std::string::npos) << key;
#if RCT_OBS_ENABLED
  // Registered from inside timing-gated code, so absent under -DRCT_OBS=OFF.
  EXPECT_NE(body.find("\"engine.task.queue_wait_seconds\""), std::string::npos);
#endif
  std::remove(metrics.c_str());
}

TEST(Cli, BatchProgressHeartbeatGoesToStderrOnly) {
  const auto r = run("batch " + data("two_nets.spef") + " --progress");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("batch: 2/2 nets"), std::string::npos);
  const auto clean = run_stdout("batch " + data("two_nets.spef") + " --progress");
  EXPECT_EQ(clean.output.find("batch: 2/2 nets"), std::string::npos);
}

TEST(Cli, SpefMetricsOut) {
  const std::string metrics = ::testing::TempDir() + "/rct_cli_spef_metrics.json";
  const auto with = run_stdout("spef " + data("two_nets.spef") + " --metrics-out " + metrics);
  EXPECT_EQ(with.exit_code, 0);
  const auto without = run_stdout("spef " + data("two_nets.spef"));
  EXPECT_EQ(with.output, without.output);  // export never perturbs stdout
  const std::string body = slurp(metrics);
  EXPECT_NE(body.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(body.find("\"core.report.build_seconds\""), std::string::npos);
  std::remove(metrics.c_str());
}

TEST(Cli, BatchMetricsPromFormatIsValidExposition) {
  const std::string metrics = ::testing::TempDir() + "/rct_cli_metrics.prom";
  const auto r = run_stdout("batch " + data("two_nets.spef") + " --metrics-out " + metrics +
                            " --metrics-format prom");
  EXPECT_EQ(r.exit_code, 0);
  const std::string body = slurp(metrics);
  EXPECT_NE(body.find("# HELP rct_engine_nets_completed "), std::string::npos);
  EXPECT_NE(body.find("# TYPE rct_engine_nets_completed counter"), std::string::npos);
  EXPECT_NE(body.find("rct_engine_nets_completed 2\n"), std::string::npos);
  EXPECT_NE(body.find("# TYPE rct_engine_net_analyze_seconds histogram"), std::string::npos);
  EXPECT_NE(body.find("rct_engine_net_analyze_seconds_bucket{le=\"+Inf\"} "),
            std::string::npos);
  EXPECT_NE(body.find("rct_engine_net_analyze_seconds_sum "), std::string::npos);
  EXPECT_NE(body.find("rct_engine_net_analyze_seconds_count "), std::string::npos);
  // Raw dotted names never leak into the exposition's metric names.
  EXPECT_EQ(body.find("\nengine."), std::string::npos);
  std::remove(metrics.c_str());
}

TEST(Cli, BatchMetricsFormatRejectsUnknownValue) {
  const auto r = run("batch " + data("two_nets.spef") + " --metrics-format xml");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--metrics-format"), std::string::npos);
}

TEST(Cli, BatchQuantilesInSnapshotAndStderrSummary) {
  const std::string metrics = ::testing::TempDir() + "/rct_cli_quantile_metrics.json";
  const auto r = run("batch " + data("two_nets.spef") + " --metrics-out " + metrics);
  EXPECT_EQ(r.exit_code, 0);
#if RCT_OBS_ENABLED
  // stderr one-line summary carries the latency quantiles (the histogram
  // is only populated when the timing instrumentation is compiled in)...
  EXPECT_NE(r.output.find("analyze latency p50 "), std::string::npos);
  EXPECT_NE(r.output.find("/ p95 "), std::string::npos);
  EXPECT_NE(r.output.find("/ p99 "), std::string::npos);
#endif
  // ...and so does the JSON snapshot's histogram entry.
  const std::string body = slurp(metrics);
  const std::size_t hist = body.find("\"engine.net.analyze_seconds\"");
  ASSERT_NE(hist, std::string::npos);
  for (const char* key : {"\"p50\":", "\"p95\":", "\"p99\":"})
    EXPECT_NE(body.find(key, hist), std::string::npos) << key;
  std::remove(metrics.c_str());
}

TEST(Cli, BatchLogOutEmitsStructuredJsonLines) {
  const std::string log = ::testing::TempDir() + "/rct_cli_log.jsonl";
  const auto r = run_stdout("batch " + data("two_nets.spef") + " --log-out " + log);
  EXPECT_EQ(r.exit_code, 0);
  const std::string body = slurp(log);
  EXPECT_NE(body.find("\"event\":\"engine.batch.start\""), std::string::npos);
  EXPECT_NE(body.find("\"event\":\"engine.batch.done\""), std::string::npos);
  EXPECT_NE(body.find("\"nets\":2"), std::string::npos);
  EXPECT_NE(body.find("\"ts_us\":"), std::string::npos);
  EXPECT_NE(body.find("\"level\":\"info\""), std::string::npos);
  std::remove(log.c_str());
}

TEST(Cli, BatchDashSinksGoToStderrNotStdout) {
  // '-' means stderr for every observability output path.
  const auto all = run("batch " + data("two_nets.spef") +
                       " --log-out - --metrics-out - --metrics-format prom");
  EXPECT_EQ(all.exit_code, 0);
  EXPECT_NE(all.output.find("\"event\":\"engine.batch.start\""), std::string::npos);
  EXPECT_NE(all.output.find("# TYPE rct_engine_nets_completed counter"), std::string::npos);
  const auto out_only = run_stdout("batch " + data("two_nets.spef") +
                                   " --log-out - --metrics-out - --metrics-format prom");
  EXPECT_EQ(out_only.output.find("\"event\":"), std::string::npos);
  EXPECT_EQ(out_only.output.find("# TYPE"), std::string::npos);
}

TEST(Cli, BatchTopSlowTableOnStderr) {
  const auto r = run("batch " + data("two_nets.spef") + " --top-slow 5");
  EXPECT_EQ(r.exit_code, 0);
  // Only 2 nets exist; the table reports what it actually has.
  EXPECT_NE(r.output.find("top 2 slowest net(s):"), std::string::npos);
  const std::size_t table = r.output.find("top 2 slowest");
  EXPECT_NE(r.output.find("net_a", table), std::string::npos);
  EXPECT_NE(r.output.find("net_b", table), std::string::npos);
  const auto clean = run_stdout("batch " + data("two_nets.spef") + " --top-slow 5");
  EXPECT_EQ(clean.output.find("slowest"), std::string::npos);  // stderr only
}

TEST(Cli, BatchFlightRecorderOutIsJsonWithPerNetEvents) {
  const std::string flight = ::testing::TempDir() + "/rct_cli_flight.json";
  const auto r = run_stdout("batch " + data("two_nets.spef") + " --flight-recorder-out " +
                            flight);
  EXPECT_EQ(r.exit_code, 0);
  const std::string body = slurp(flight);
  EXPECT_NE(body.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(body.find("\"net\":\"net_a\""), std::string::npos);
  EXPECT_NE(body.find("\"net\":\"net_b\""), std::string::npos);
  EXPECT_NE(body.find("\"phase\":\"analyze\""), std::string::npos);
  EXPECT_NE(body.find("\"outcome\":\"ok\""), std::string::npos);
  std::remove(flight.c_str());
}

TEST(Cli, BatchMissingFileFailsCleanly) {
  const auto r = run("batch /nonexistent.spef");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

TEST(Cli, DelayCurveCsv) {
  const auto r = run("delay-curve " + data("bus_bit.sp") + " rx2");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("rise_time_s,delay_s"), std::string::npos);
  // 30 data rows + header.
  std::size_t lines = 0;
  for (char c : r.output)
    if (c == '\n') ++lines;
  EXPECT_GE(lines, 30u);
}

TEST(Cli, BodeCsv) {
  const auto r = run("bode " + data("bus_bit.sp") + " rx1");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("-3dB bandwidth"), std::string::npos);
  EXPECT_NE(r.output.find("freq_hz,mag_db,phase_deg"), std::string::npos);
}

TEST(Cli, ConvertRoundTrip) {
  const std::string out_path = ::testing::TempDir() + "/rct_cli_convert.spef";
  const auto r = run("convert " + data("clock_spine.sp") + " " + out_path);
  EXPECT_EQ(r.exit_code, 0);
  const auto back = run("spef " + out_path);
  EXPECT_EQ(back.exit_code, 0);
  std::remove(out_path.c_str());
}

TEST(Cli, MissingFileFailsCleanly) {
  const auto r = run("report /nonexistent/net.sp");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

TEST(Cli, BadNodeFailsCleanly) {
  const auto r = run("delay-curve " + data("bus_bit.sp") + " no_such_node");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

// ------------------------------------------------- robustness subcommands

std::string bad_data(const char* file) { return data(("malformed/" + std::string(file)).c_str()); }

TEST(Cli, ValidateCleanSpefExitsZero) {
  const auto r = run("validate " + data("two_nets.spef"));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("0 diagnostic(s)"), std::string::npos);
}

TEST(Cli, ValidateMalformedSpefListsTypedDiagnostics) {
  const auto r = run("validate " + bad_data("mixed_good_bad.spef"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("[numeric/non-physical-value]"), std::string::npos);
  EXPECT_NE(r.output.find("1 net section(s) rejected"), std::string::npos);
}

TEST(Cli, BatchStrictRejectsMalformedWithLineNumber) {
  const auto r = run("batch " + bad_data("mixed_good_bad.spef"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
  EXPECT_NE(r.output.find("line 24"), std::string::npos);
}

TEST(Cli, BatchLenientKeepsGoodNetsByteIdenticalAcrossJobs) {
  const auto r1 = run_stdout("batch " + bad_data("mixed_good_bad.spef") + " --lenient --jobs 1");
  EXPECT_EQ(r1.exit_code, 0);  // the bad net was skipped at parse, not failed
  EXPECT_NE(r1.output.find("*D_NET good"), std::string::npos);
  EXPECT_NE(r1.output.find("*D_NET good2"), std::string::npos);
  EXPECT_EQ(r1.output.find("broken"), std::string::npos);
  for (const char* jobs : {"2", "8"}) {
    const auto rn =
        run_stdout("batch " + bad_data("mixed_good_bad.spef") + " --lenient --jobs " + jobs);
    EXPECT_EQ(rn.exit_code, 0);
    EXPECT_EQ(r1.output, rn.output) << "--jobs " << jobs;
  }
}

TEST(Cli, MalformedCorpusNeverCrashesEitherMode) {
  const char* corpus[] = {
      "truncated_dnet.spef", "negative_r.spef",     "nan_cap.spef",
      "negative_cap.spef",   "duplicate_node.spef", "dangling_load.spef",
      "empty.spef",          "no_driver.spef",      "cycle.spef",
      "bad_unit.spef",       "mixed_good_bad.spef",
  };
  for (const char* name : corpus) {
    SCOPED_TRACE(name);
    const auto strict = run("batch " + bad_data(name));
    EXPECT_EQ(strict.exit_code, 1);  // clean failure, never a signal
    EXPECT_NE(strict.output.find("error:"), std::string::npos);
    const auto lenient = run("validate " + bad_data(name));
    EXPECT_EQ(lenient.exit_code, 1);
    EXPECT_NE(lenient.output.find("diagnostic(s)"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Server daemon and client
// ---------------------------------------------------------------------------

TEST(Cli, ServeRejectsPositionalArguments) {
  const auto r = run("serve stray.spef");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, ClientWithoutCommandPrintsUsage) {
  const auto r = run("client");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, ClientConnectFailureIsCleanError) {
  const auto r = run("client /nonexistent/rct.sock ping");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

TEST(Cli, ServeClientRoundTrip) {
  const std::string sock = ::testing::TempDir() + "/rct_cli_serve.sock";
  std::remove(sock.c_str());
  const std::string launch =
      std::string(RCT_CLI_PATH) + " serve --listen " + sock + " >/dev/null 2>&1 &";
  ASSERT_EQ(std::system(launch.c_str()), 0);
  // The daemon needs a beat to bind; poll with ping until it answers.
  RunResult ping{1, ""};
  for (int i = 0; i < 250 && ping.exit_code != 0; ++i) {
    usleep(20 * 1000);
    ping = run("client " + sock + " ping");
  }
  ASSERT_EQ(ping.exit_code, 0) << ping.output;
  EXPECT_NE(ping.output.find("\"ok\":true"), std::string::npos);

  const auto load = run("client " + sock + " load " + data("two_nets.spef"));
  EXPECT_EQ(load.exit_code, 0) << load.output;
  EXPECT_NE(load.output.find("\"nets\":2"), std::string::npos);

  const auto report = run("client " + sock + " report net_a");
  EXPECT_EQ(report.exit_code, 0) << report.output;
  EXPECT_NE(report.output.find("\"source\":\"computed\""), std::string::npos);
  EXPECT_NE(report.output.find("\"elmore\":"), std::string::npos);

  // Second ask is served from the warm cache.
  const auto again = run("client " + sock + " report net_a");
  EXPECT_EQ(again.exit_code, 0) << again.output;
  EXPECT_NE(again.output.find("\"source\":\"memory\""), std::string::npos);

  // Application-level failures surface as ok:false and a nonzero client exit.
  const auto bad = run("client " + sock + " report no_such_net");
  EXPECT_EQ(bad.exit_code, 1);
  EXPECT_NE(bad.output.find("\"ok\":false"), std::string::npos);

  const auto down = run("client " + sock + " shutdown");
  EXPECT_EQ(down.exit_code, 0) << down.output;
  EXPECT_NE(down.output.find("\"shutdown\":true"), std::string::npos);
  // The daemon unlinks its socket on the way out.
  for (int i = 0; i < 250 && access(sock.c_str(), F_OK) == 0; ++i) usleep(20 * 1000);
  EXPECT_NE(access(sock.c_str(), F_OK), 0);
}

/// Launches `rct serve` in the background with stdout captured to a file,
/// then polls ping until the daemon answers.  Returns false when it never
/// comes up (the test should fail with the captured output).
bool launch_daemon(const std::string& sock, const std::string& extra_flags,
                   const std::string& stdout_file) {
  std::remove(sock.c_str());
  const std::string launch = std::string(RCT_CLI_PATH) + " serve --listen " + sock + " " +
                             extra_flags + " > " + stdout_file + " 2>&1 &";
  if (std::system(launch.c_str()) != 0) return false;
  for (int i = 0; i < 250; ++i) {
    usleep(20 * 1000);
    if (run("client " + sock + " ping").exit_code == 0) return true;
  }
  return false;
}

void shutdown_daemon(const std::string& sock) {
  (void)run("client " + sock + " shutdown");
  for (int i = 0; i < 250 && access(sock.c_str(), F_OK) == 0; ++i) usleep(20 * 1000);
}

/// One HTTP/1.0 GET against 127.0.0.1:port via a raw socket (no curl in the
/// test environment); returns status line through body, or "" on failure.
std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return "";
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

/// Extracts the port from the daemon's "telemetry on http://127.0.0.1:PORT"
/// announce line; 0 when the line never appeared.
int telemetry_port(const std::string& stdout_file) {
  const std::string out = slurp(stdout_file);
  const std::string needle = "telemetry on http://127.0.0.1:";
  const std::size_t at = out.find(needle);
  if (at == std::string::npos) return 0;
  return std::atoi(out.c_str() + at + needle.size());
}

TEST(Cli, ServeHttpEndpoints) {
  const std::string sock = ::testing::TempDir() + "/rct_cli_http.sock";
  const std::string log = ::testing::TempDir() + "/rct_cli_http_serve.txt";
  ASSERT_TRUE(launch_daemon(sock, "--http 0", log)) << slurp(log);
  const int port = telemetry_port(log);
  ASSERT_GT(port, 0) << slurp(log);

  // Feed the daemon real work so the scrape carries live levels.
  ASSERT_EQ(run("client " + sock + " load " + data("two_nets.spef")).exit_code, 0);
  ASSERT_EQ(run("client " + sock + " report net_a").exit_code, 0);

  const std::string metrics = http_get(port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("rct_server_designs 1"), std::string::npos);
  EXPECT_NE(metrics.find("rct_server_request_report_seconds_count"), std::string::npos);
  EXPECT_NE(metrics.find("rct_core_report_bound_gap_count"), std::string::npos);

  const std::string healthz = http_get(port, "/healthz");
  EXPECT_NE(healthz.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(healthz.find("\"version\":\""), std::string::npos);

  const std::string varz = http_get(port, "/varz");
  EXPECT_NE(varz.find("\"schema_version\":1"), std::string::npos);

  EXPECT_NE(http_get(port, "/flight").find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(http_get(port, "/missing").find("HTTP/1.0 404"), std::string::npos);

  shutdown_daemon(sock);
  std::remove(log.c_str());
}

TEST(Cli, ClientTraceStitch) {
  const std::string sock = ::testing::TempDir() + "/rct_cli_stitch.sock";
  const std::string log = ::testing::TempDir() + "/rct_cli_stitch_serve.txt";
  const std::string trace = ::testing::TempDir() + "/rct_cli_stitch_trace.json";
  std::remove(trace.c_str());
  ASSERT_TRUE(launch_daemon(sock, "", log)) << slurp(log);
  ASSERT_EQ(run("client " + sock + " load " + data("two_nets.spef")).exit_code, 0);

  const auto traced = run("client " + sock + " --trace-out " + trace + " report net_a");
  EXPECT_EQ(traced.exit_code, 0) << traced.output;
  EXPECT_NE(traced.output.find("\"source\":"), std::string::npos);  // response still printed

  // The stitched file holds both halves of one request: the client process
  // (pid 1) and the server process (pid 2), every span tagged with the same
  // 16-hex trace id.
  const std::string body = slurp(trace);
  EXPECT_EQ(body.rfind("{\"displayTimeUnit\":", 0), 0u);
  EXPECT_NE(body.find("\"name\":\"rct client\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"rct serve\""), std::string::npos);
  for (const char* span : {"\"name\":\"client.request\"", "\"name\":\"client.roundtrip\"",
                           "\"name\":\"server.request\"", "\"name\":\"server.queue_wait\"",
                           "\"name\":\"server.report.build\"", "\"name\":\"server.render\""})
    EXPECT_NE(body.find(span), std::string::npos) << span;
  // Every span carries the same args.trace id, and a client (pid 1) and a
  // server (pid 2) span both reference it.
  const std::string needle = "\"trace\":\"";
  std::string first_id;
  std::size_t occurrences = 0;
  for (std::size_t at = body.find(needle); at != std::string::npos;
       at = body.find(needle, at + 1)) {
    const std::string id = body.substr(at + needle.size(), 16);
    if (first_id.empty()) first_id = id;
    EXPECT_EQ(id, first_id);
    ++occurrences;
  }
  EXPECT_EQ(first_id.size(), 16u);
  for (const char c : first_id)
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << first_id;
  EXPECT_GE(occurrences, 2u);
  const std::size_t server_span = body.find("\"name\":\"server.request\"");
  ASSERT_NE(server_span, std::string::npos);
  EXPECT_NE(body.find("\"pid\":2", server_span), std::string::npos);

  // Batch mode mints a distinct trace id per request but stays one file.
  const std::string batch = ::testing::TempDir() + "/rct_cli_stitch_batch.txt";
  {
    std::ofstream out(batch);
    out << "report net_a\nreport net_b\n";
  }
  const auto multi =
      run("client " + sock + " --trace-out " + trace + " --batch " + batch);
  EXPECT_EQ(multi.exit_code, 0) << multi.output;
  const std::string body2 = slurp(trace);
  std::string id_a;
  std::size_t distinct = 0;
  for (std::size_t at = body2.find(needle); at != std::string::npos;
       at = body2.find(needle, at + 1)) {
    const std::string id = body2.substr(at + needle.size(), 16);
    if (id_a.empty()) id_a = id;
    if (id != id_a) ++distinct;
  }
  EXPECT_GT(distinct, 0u);  // the second request's spans carry a new id

  shutdown_daemon(sock);
  std::remove(trace.c_str());
  std::remove(batch.c_str());
  std::remove(log.c_str());
}

TEST(Cli, ServeMetricsIntervalFlushesWhileRunning) {
  // The periodic flusher must write snapshots while the daemon is alive,
  // not only at exit.
  const std::string sock = ::testing::TempDir() + "/rct_cli_interval.sock";
  const std::string log = ::testing::TempDir() + "/rct_cli_interval_serve.txt";
  const std::string metrics = ::testing::TempDir() + "/rct_cli_interval_metrics.json";
  std::remove(metrics.c_str());
  ASSERT_TRUE(launch_daemon(
      sock, "--metrics-out " + metrics + " --metrics-interval-ms 50", log))
      << slurp(log);
  // Poll for the snapshot with the daemon still up (no shutdown yet).
  bool flushed = false;
  for (int i = 0; i < 100 && !flushed; ++i) {
    usleep(20 * 1000);
    std::ifstream in(metrics);
    flushed = in.good() && in.peek() != std::ifstream::traits_type::eof();
  }
  EXPECT_TRUE(flushed) << "no periodic snapshot while serving";
  const std::string body = slurp(metrics);
  EXPECT_NE(body.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(body.find("server.requests"), std::string::npos);
  shutdown_daemon(sock);
  std::remove(metrics.c_str());
  std::remove(log.c_str());
}

TEST(Cli, ServeSigtermDrainsGracefullyAndExitsZero) {
  // SIGTERM is the orchestrator's stop signal: the daemon must drain and
  // exit 0 with its final accounting flushed — not dump-and-die.
  const std::string sock = ::testing::TempDir() + "/rct_cli_sigterm.sock";
  const std::string log = ::testing::TempDir() + "/rct_cli_sigterm_serve.txt";
  const std::string metrics = ::testing::TempDir() + "/rct_cli_sigterm_metrics.json";
  const std::string pid_file = ::testing::TempDir() + "/rct_cli_sigterm.pid";
  const std::string rc_file = ::testing::TempDir() + "/rct_cli_sigterm.rc";
  std::remove(sock.c_str());
  std::remove(pid_file.c_str());
  std::remove(rc_file.c_str());
  std::remove(metrics.c_str());
  // Wrapper shell records the daemon's pid and, after it exits, its code.
  const std::string launch = "( " + std::string(RCT_CLI_PATH) + " serve --listen " + sock +
                             " --metrics-out " + metrics + " > " + log + " 2>&1 & echo $! > " +
                             pid_file + "; wait $!; echo $? > " + rc_file + " ) &";
  ASSERT_EQ(std::system(launch.c_str()), 0);
  RunResult ping{1, ""};
  for (int i = 0; i < 250 && ping.exit_code != 0; ++i) {
    usleep(20 * 1000);
    ping = run("client " + sock + " ping");
  }
  ASSERT_EQ(ping.exit_code, 0) << slurp(log);
  ASSERT_EQ(run("client " + sock + " load " + data("two_nets.spef")).exit_code, 0);
  ASSERT_EQ(run("client " + sock + " report net_a").exit_code, 0);

  const int pid = std::atoi(slurp_if_present(pid_file).c_str());
  ASSERT_GT(pid, 0);
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  // The wrapper writes the exit code only after the daemon is fully down.
  std::string rc;
  for (int i = 0; i < 250 && rc.empty(); ++i) {
    usleep(20 * 1000);
    rc = slurp_if_present(rc_file);
  }
  ASSERT_FALSE(rc.empty()) << "daemon did not exit after SIGTERM";
  EXPECT_EQ(std::atoi(rc.c_str()), 0) << slurp(log);
  // Drained, not killed: the final accounting line made it out, the socket
  // was unlinked, and the exit-path metrics snapshot was flushed.
  EXPECT_NE(slurp(log).find("served "), std::string::npos) << slurp(log);
  EXPECT_NE(access(sock.c_str(), F_OK), 0);
  const std::string body = slurp(metrics);
  EXPECT_NE(body.find("server.requests"), std::string::npos);
  std::remove(metrics.c_str());
  std::remove(pid_file.c_str());
  std::remove(rc_file.c_str());
  std::remove(log.c_str());
}

TEST(Cli, ClientRetriesFlagSurvivesLateServerStart) {
  // `--retries N` makes the one-shot client resilient to a server that is
  // still coming up: connect fails, backoff, reconnect, succeed.
  const std::string sock = ::testing::TempDir() + "/rct_cli_retries.sock";
  const std::string log = ::testing::TempDir() + "/rct_cli_retries_serve.txt";
  std::remove(sock.c_str());
  // Daemon starts ~200ms from now; the client is launched first.
  const std::string late = "( sleep 0.2; exec " + std::string(RCT_CLI_PATH) +
                           " serve --listen " + sock + " > " + log + " 2>&1 ) &";
  ASSERT_EQ(std::system(late.c_str()), 0);
  const auto ping = run("client " + sock + " ping --retries 10 --retry-budget 8000");
  EXPECT_EQ(ping.exit_code, 0) << ping.output;
  EXPECT_NE(ping.output.find("\"ok\":true"), std::string::npos);
  // Without retries the same race loses cleanly (daemon already up now, so
  // exercise the flag parser's rejection path instead of re-racing).
  const auto bad = run("client " + sock + " ping --retries");
  EXPECT_NE(bad.exit_code, 0);
  shutdown_daemon(sock);
  std::remove(log.c_str());
}

// ---------------------------------------------------------------------------
// Batch with the second-level store and the cache cap
// ---------------------------------------------------------------------------

TEST(Cli, BatchStoreStdoutByteIdenticalColdAndWarm) {
  const std::string dir = ::testing::TempDir() + "/rct_cli_batch_store";
  (void)std::system(("rm -rf " + dir).c_str());
  const auto plain = run_stdout("batch " + data("two_nets.spef") + " --json");
  ASSERT_EQ(plain.exit_code, 0);
  const auto cold = run_stdout("batch " + data("two_nets.spef") + " --json --store " + dir);
  EXPECT_EQ(cold.exit_code, 0);
  EXPECT_EQ(cold.output, plain.output);
  const auto warm = run_stdout("batch " + data("two_nets.spef") + " --json --store " + dir);
  EXPECT_EQ(warm.exit_code, 0);
  // ...and the warm run, served from it, still prints the same bytes.
  EXPECT_EQ(warm.output, plain.output);
  (void)std::system(("rm -rf " + dir).c_str());
}

TEST(Cli, BatchCacheMaxEntriesStdoutByteIdentical) {
  const auto plain = run_stdout("batch " + data("two_nets.spef") + " --json");
  ASSERT_EQ(plain.exit_code, 0);
  const auto capped =
      run_stdout("batch " + data("two_nets.spef") + " --json --cache-max-entries 1");
  EXPECT_EQ(capped.exit_code, 0);
  EXPECT_EQ(capped.output, plain.output);
}

TEST(Cli, MetricsIntervalErrorPathStillJoinsAndWritesSnapshot) {
  // A parse failure with the periodic flusher armed must exit 1 promptly
  // (the flusher thread joins on the error path, no hang, no crash) and
  // obs_end still writes the final snapshot.
  const std::string metrics = ::testing::TempDir() + "/rct_cli_interval_err.json";
  std::remove(metrics.c_str());
  const auto r = run("batch /nonexistent/missing.spef --metrics-out " + metrics +
                     " --metrics-interval-ms 10");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
  const std::string snapshot = slurp(metrics);
  EXPECT_FALSE(snapshot.empty());
  std::remove(metrics.c_str());
}

#if RCT_FAULT_ENABLED

/// Same popen harness with an environment prefix (sh syntax), for driving
/// the binary's RCT_FAULT injection points end to end.
RunResult run_with_env(const std::string& env, const std::string& args) {
  const std::string cmd =
      env + " " + std::string(RCT_CLI_PATH) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string out;
  std::array<char, 4096> buf{};
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) out += buf.data();
  const int status = pclose(pipe);
  return {WIFEXITED(status) ? WEXITSTATUS(status) : -1, std::move(out)};
}

TEST(Cli, FaultEnvSlowNetYieldsTimeoutRecordAndExitOne) {
  const auto r = run_with_env("RCT_FAULT='engine.net.analyze=sleep:80'",
                              "batch " + data("two_nets.spef") +
                                  " --net-timeout-ms 10 --jobs 1 --json");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("\"code\":\"timeout\""), std::string::npos);
  EXPECT_NE(r.output.find("\"timed_out\":true"), std::string::npos);
}

TEST(Cli, FaultEnvNanExactDegradesButSucceeds) {
  const auto r = run_with_env("RCT_FAULT='core.report.exact_delay=nan'",
                              "batch " + data("two_nets.spef") + " --json");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(r.output.find("\"error\":null"), std::string::npos);
}

TEST(Cli, FaultEnvEigensolveThrowRetriesOnMomentsPath) {
  const auto r = run_with_env("RCT_FAULT='core.report.eigensolve=throw'",
                              "batch " + data("two_nets.spef") + " --json");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("\"retried\":true"), std::string::npos);
  EXPECT_EQ(r.output.find("\"exact_delay_s\":1"), std::string::npos);
}

/// Env-prefixed run that keeps stderr (for flight-recorder dump checks).
RunResult run_with_env_all(const std::string& env, const std::string& args) {
  const std::string cmd =
      env + " " + std::string(RCT_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string out;
  std::array<char, 4096> buf{};
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) out += buf.data();
  const int status = pclose(pipe);
  return {WIFEXITED(status) ? WEXITSTATUS(status) : -1, std::move(out)};
}

TEST(Cli, FaultEnvThrowDumpsFlightRecorderNamingNet) {
  // Killing a batch with injected per-net throws must leave a postmortem on
  // stderr: the flight-recorder tape naming the offending nets with their
  // phase timings.
  const auto r = run_with_env_all("RCT_FAULT='engine.net.analyze=throw'",
                                  "batch " + data("two_nets.spef") + " --jobs 1");
  EXPECT_EQ(r.exit_code, 1);
  const std::size_t dump = r.output.find("flight recorder:");
  ASSERT_NE(dump, std::string::npos);
  EXPECT_NE(r.output.find("net_a", dump), std::string::npos);
  EXPECT_NE(r.output.find("net_b", dump), std::string::npos);
  EXPECT_NE(r.output.find("analyze", dump), std::string::npos);
  EXPECT_NE(r.output.find("retry", dump), std::string::npos);  // the moments retry also failed
  EXPECT_NE(r.output.find("failed", dump), std::string::npos);
  EXPECT_NE(r.output.find("dur", dump), std::string::npos);  // phase timings
}

TEST(Cli, FaultEnvTimeoutDumpsFlightRecorderWithTimeoutOutcome) {
  const auto r = run_with_env_all("RCT_FAULT='engine.net.analyze=sleep:80'",
                                  "batch " + data("two_nets.spef") +
                                      " --net-timeout-ms 10 --jobs 1");
  EXPECT_EQ(r.exit_code, 1);
  const std::size_t dump = r.output.find("flight recorder:");
  ASSERT_NE(dump, std::string::npos);
  EXPECT_NE(r.output.find("timeout", dump), std::string::npos);
}

TEST(Cli, FaultEnvLogRecordsFaultFiringAndNetFailure) {
  const std::string log = ::testing::TempDir() + "/rct_cli_fault_log.jsonl";
  const auto r = run_with_env("RCT_FAULT='engine.net.analyze=throw'",
                              "batch " + data("two_nets.spef") + " --log-out " + log);
  EXPECT_EQ(r.exit_code, 1);
  const std::string body = slurp(log);
  // The injected fault is distinguishable from an organic failure...
  EXPECT_NE(body.find("\"event\":\"robust.fault.fired\""), std::string::npos);
  EXPECT_NE(body.find("\"site\":\"engine.net.analyze\""), std::string::npos);
  // ...and the per-net failure record follows with code and phase.
  EXPECT_NE(body.find("\"event\":\"engine.net.failed\""), std::string::npos);
  EXPECT_NE(body.find("\"code\":\"task-failure\""), std::string::npos);
  std::remove(log.c_str());
}

TEST(Cli, FaultEnvMetricsOutCarriesRobustnessCounters) {
  const std::string metrics = ::testing::TempDir() + "/rct_cli_robust_metrics.json";
  const auto r = run_with_env("RCT_FAULT='core.report.exact_delay=nan'",
                              "batch " + data("two_nets.spef") + " --metrics-out " + metrics);
  EXPECT_EQ(r.exit_code, 0);
  const std::string snapshot = slurp(metrics);
  EXPECT_NE(snapshot.find("engine.nets.degraded"), std::string::npos);
  EXPECT_NE(snapshot.find("core.report.degraded_rows"), std::string::npos);
  std::remove(metrics.c_str());
}

#endif  // RCT_FAULT_ENABLED

}  // namespace
