#include "sim/exact.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/generators.hpp"

namespace rct::sim {
namespace {

using rct::testing::ExpectRel;

TEST(Exact, SingleRcClosedForm) {
  const double r = 1000.0;
  const double c = 1e-12;
  const double tau = r * c;
  const ExactAnalysis e(testing::single_rc(r, c));
  ASSERT_EQ(e.size(), 1u);
  EXPECT_NEAR(e.poles()[0], 1.0 / tau, 1e-3 / tau * 1e-9);
  for (double t : {0.1 * tau, tau, 3.0 * tau})
    EXPECT_NEAR(e.step_response(0, t), 1.0 - std::exp(-t / tau), 1e-12);
  EXPECT_NEAR(e.impulse_response(0, tau), std::exp(-1.0) / tau, 1e-3 / tau);
  EXPECT_NEAR(e.step_delay(0), tau * std::log(2.0), 1e-7 * tau);
  EXPECT_NEAR(e.step_rise_time_10_90(0), tau * std::log(9.0), 1e-7 * tau);
}

TEST(Exact, StepCoefficientsSumToOne) {
  const RCTree t = gen::random_tree(30, 21);
  const ExactAnalysis e(t);
  for (NodeId i = 0; i < t.size(); ++i) {
    const auto a = e.step_coefficients(i);
    double sum = 0.0;
    for (double v : a) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Exact, ResponseSettlesToOne) {
  const RCTree t = gen::random_tree(20, 5);
  const ExactAnalysis e(t);
  const double t_late = 50.0 * e.dominant_time_constant();
  for (NodeId i = 0; i < t.size(); ++i) EXPECT_NEAR(e.step_response(i, t_late), 1.0, 1e-9);
}

TEST(Exact, PolesAllPositive) {
  const ExactAnalysis e(gen::random_tree(40, 17));
  for (double p : e.poles()) EXPECT_GT(p, 0.0);
}

TEST(Exact, StepResponseMonotone) {
  // RC tree step responses are monotone (Penfield-Rubinstein).
  const RCTree t = gen::random_tree(25, 33);
  const ExactAnalysis e(t);
  const auto grid = e.suggested_grid(800);
  for (NodeId i : {NodeId{0}, t.size() / 2, t.size() - 1})
    EXPECT_TRUE(e.step_waveform(i, grid).is_monotone_nondecreasing(1e-12));
}

TEST(Exact, StepIntegralDerivativeConsistency) {
  // d/dt of step_response_integral == step_response (finite difference).
  const RCTree t = testing::small_tree();
  const ExactAnalysis e(t);
  const double tau = e.dominant_time_constant();
  const NodeId n = t.at("c");
  for (double x : {0.3, 1.0, 2.5}) {
    const double tt = x * tau;
    const double h = 1e-6 * tau;
    const double num =
        (e.step_response_integral(n, tt + h) - e.step_response_integral(n, tt - h)) / (2 * h);
    EXPECT_NEAR(num, e.step_response(n, tt), 1e-6);
  }
}

TEST(Exact, RampResponseLimitsToStep) {
  // As rise time -> 0, ramp response -> step response.
  const RCTree t = testing::two_rc();
  const ExactAnalysis e(t);
  const double tau = e.dominant_time_constant();
  const double tt = 0.7 * tau;
  EXPECT_NEAR(e.ramp_response(1, tt, 1e-6 * tau), e.step_response(1, tt), 1e-5);
}

TEST(Exact, RampResponseMatchesQuadratureRoute) {
  const RCTree t = testing::small_tree();
  const ExactAnalysis e(t);
  const double tau = e.dominant_time_constant();
  const SaturatedRampSource ramp(2.0 * tau);
  const RaisedCosineSource cosine(2.0 * tau);
  const NodeId n = t.at("c");
  for (double x : {0.5, 1.5, 4.0}) {
    const double tt = x * tau;
    // response() dispatches the saturated ramp to the closed form; compare
    // with a hand convolution through the generic quadrature on a PWL twin.
    const PwlSource pwl_twin({{0.0, 0.0}, {2.0 * tau, 1.0}});
    // Quadrature route carries a small endpoint-kink error (see exact.cpp).
    EXPECT_NEAR(e.response(n, ramp, tt), e.response(n, pwl_twin, tt), 1e-4);
    // Raised cosine: just check range and monotonicity versus ramp.
    const double v = e.response(n, cosine, tt);
    EXPECT_GE(v, -1e-9);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
}

TEST(Exact, DistributionMomentsMatchPathTracing) {
  const RCTree t = gen::random_tree(30, 8);
  const ExactAnalysis e(t);
  const auto dist = moments::distribution_moments(t, 3);
  for (NodeId i = 0; i < t.size(); ++i) {
    for (int q = 0; q <= 3; ++q) {
      const double want = dist[q][i];
      ExpectRel(e.distribution_moment(i, q), want, 1e-6, 1e-30);
    }
  }
}

TEST(Exact, ElmoreDelayEqualsFirstDistributionMoment) {
  const RCTree t = testing::small_tree();
  const ExactAnalysis e(t);
  const auto td = moments::elmore_delays(t);
  for (NodeId i = 0; i < t.size(); ++i) ExpectRel(e.distribution_moment(i, 1), td[i], 1e-9);
}

TEST(Exact, DelayFractionValidation) {
  const ExactAnalysis e(testing::single_rc());
  EXPECT_THROW((void)e.step_delay(0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)e.step_delay(0, 1.0), std::invalid_argument);
}

TEST(Exact, ZeroCapNodesHandledByFloor) {
  // A zero-cap middle node: response must match a transient reference and
  // stay finite.
  RCTreeBuilder b;
  const NodeId n1 = b.add_node("n1", kSource, 100.0, 1e-12);
  const NodeId n2 = b.add_node("n2", n1, 200.0, 0.0);
  b.add_node("n3", n2, 300.0, 2e-12);
  const RCTree t = std::move(b).build();
  const ExactAnalysis e(t);
  const double d = e.step_delay(t.at("n3"));
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_GT(d, 0.0);
  // Zero-cap node n2 sits between n1 and n3: its voltage is bracketed.
  const double tau = e.dominant_time_constant();
  const double v1 = e.step_response(t.at("n1"), tau);
  const double v2 = e.step_response(t.at("n2"), tau);
  const double v3 = e.step_response(t.at("n3"), tau);
  EXPECT_LE(v3, v2 + 1e-6);
  EXPECT_LE(v2, v1 + 1e-6);
}

TEST(Exact, Delay5050ForStepEqualsStepDelay) {
  const RCTree t = testing::small_tree();
  const ExactAnalysis e(t);
  const StepSource step;
  EXPECT_NEAR(e.delay_50_50(t.at("c"), step), e.step_delay(t.at("c")), 1e-15);
}

TEST(Exact, EmptyCapacitanceThrows) {
  RCTreeBuilder b;
  b.add_node("x", kSource, 100.0, 0.0);
  const RCTree t = std::move(b).build();
  EXPECT_THROW(ExactAnalysis{t}, std::invalid_argument);
}

}  // namespace
}  // namespace rct::sim
