#include "rctree/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rct {
namespace {

TEST(Arena, AllocationsAreDistinctAndWritable) {
  Arena arena(64);
  char* a = static_cast<char*>(arena.allocate(16));
  char* b = static_cast<char*>(arena.allocate(16));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  std::memset(a, 0xAA, 16);
  std::memset(b, 0xBB, 16);
  EXPECT_EQ(static_cast<unsigned char>(a[15]), 0xAA);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0xBB);
}

TEST(Arena, RespectsAlignment) {
  // Arena aligns bump offsets relative to the block base (itself new[]
  // aligned for max_align_t), so any alignment up to that is honored.
  Arena arena(128);
  (void)arena.allocate(1, 1);  // misalign the bump offset
  void* p = arena.allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
  (void)arena.allocate(3, 1);
  void* q = arena.allocate(16, alignof(std::max_align_t));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % alignof(std::max_align_t), 0u);
}

TEST(Arena, GrowsBeyondFirstBlock) {
  Arena arena(32);
  for (int i = 0; i < 64; ++i) (void)arena.allocate(16);
  EXPECT_GT(arena.block_count(), 1u);
  EXPECT_GE(arena.capacity(), 64u * 16u);
}

TEST(Arena, OversizedRequestGetsItsOwnBlock) {
  Arena arena(64);
  char* big = static_cast<char*>(arena.allocate(4096));
  ASSERT_NE(big, nullptr);
  std::memset(big, 0, 4096);  // must all be addressable
  EXPECT_GE(arena.capacity(), 4096u);
}

TEST(Arena, ResetReusesBlocksWithoutNewCapacity) {
  Arena arena(64);
  for (int i = 0; i < 32; ++i) (void)arena.allocate(24);
  const std::size_t blocks = arena.block_count();
  const std::size_t capacity = arena.capacity();
  for (int round = 0; round < 8; ++round) {
    arena.reset();
    for (int i = 0; i < 32; ++i) (void)arena.allocate(24);
  }
  EXPECT_EQ(arena.block_count(), blocks);
  EXPECT_EQ(arena.capacity(), capacity);
}

TEST(Arena, InternCopiesAndSurvivesSourceDeath) {
  Arena arena;
  std::string_view view;
  {
    std::string source = "node:name:42";
    view = arena.intern(source);
    source.assign(source.size(), 'x');  // clobber the original
  }
  EXPECT_EQ(view, "node:name:42");
  EXPECT_EQ(arena.intern(""), std::string_view{});
}

TEST(ArenaAllocator, WorksWithStdContainers) {
  Arena arena;
  std::vector<int, ArenaAllocator<int>> numbers{ArenaAllocator<int>{arena}};
  for (int i = 0; i < 1000; ++i) numbers.push_back(i);
  EXPECT_EQ(numbers[999], 999);

  using Map = std::unordered_map<int, int, std::hash<int>, std::equal_to<>,
                                 ArenaAllocator<std::pair<const int, int>>>;
  Map map(8, std::hash<int>{}, std::equal_to<>{},
          ArenaAllocator<std::pair<const int, int>>{arena});
  for (int i = 0; i < 100; ++i) map[i] = i * i;
  EXPECT_EQ(map.at(31), 961);
}

TEST(ArenaAllocator, EqualityTracksUnderlyingArena) {
  Arena a, b;
  ArenaAllocator<int> alloc_a(a), alloc_a2(a), alloc_b(b);
  EXPECT_TRUE(alloc_a == alloc_a2);
  EXPECT_FALSE(alloc_a == alloc_b);
  ArenaAllocator<double> rebound(alloc_a);  // converting constructor
  EXPECT_EQ(rebound.arena(), &a);
}

}  // namespace
}  // namespace rct
