#include "sim/waveform_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "helpers.hpp"
#include "sim/exact.hpp"

namespace rct::sim {
namespace {

WaveformBundle demo_bundle() {
  const RCTree t = testing::two_rc();
  const ExactAnalysis e(t);
  const auto grid = e.suggested_grid(64);
  WaveformBundle b;
  b.names = {"n1", "n2"};
  b.waveforms = {e.step_waveform(0, grid), e.step_waveform(1, grid)};
  return b;
}

TEST(WaveformCsv, RoundTripExact) {
  const WaveformBundle b = demo_bundle();
  const WaveformBundle back = read_csv(write_csv(b));
  ASSERT_EQ(back.names, b.names);
  ASSERT_EQ(back.waveforms.size(), 2u);
  for (std::size_t w = 0; w < 2; ++w) {
    ASSERT_EQ(back.waveforms[w].size(), b.waveforms[w].size());
    for (std::size_t k = 0; k < b.waveforms[w].size(); ++k) {
      EXPECT_NEAR(back.waveforms[w].time(k), b.waveforms[w].time(k),
                  1e-12 * (b.waveforms[w].time(k) + 1e-300));
      EXPECT_NEAR(back.waveforms[w].value(k), b.waveforms[w].value(k), 1e-12);
    }
  }
}

TEST(WaveformCsv, WriteValidation) {
  WaveformBundle empty;
  EXPECT_THROW((void)write_csv(empty), std::invalid_argument);
  WaveformBundle mismatch = demo_bundle();
  mismatch.names.pop_back();
  EXPECT_THROW((void)write_csv(mismatch), std::invalid_argument);
  WaveformBundle diff_base = demo_bundle();
  diff_base.waveforms[1] = Waveform({0.0, 1.0}, {0.0, 1.0});
  EXPECT_THROW((void)write_csv(diff_base), std::invalid_argument);
}

TEST(WaveformCsv, ReadValidation) {
  EXPECT_THROW((void)read_csv("bogus,v\n1,2\n2,3\n"), std::invalid_argument);
  EXPECT_THROW((void)read_csv("time,v\n1\n"), std::invalid_argument);          // col count
  EXPECT_THROW((void)read_csv("time,v\n1,zz\n2,3\n"), std::invalid_argument);  // bad number
  EXPECT_THROW((void)read_csv("time,v\n1,2\n"), std::invalid_argument);        // 1 sample
}

TEST(WaveformCsv, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/rct_waveform_io_test.csv";
  save_csv(demo_bundle(), path);
  const WaveformBundle back = load_csv(path);
  EXPECT_EQ(back.names.size(), 2u);
  EXPECT_EQ(back.waveforms[0].size(), demo_bundle().waveforms[0].size());
  std::remove(path.c_str());
}

TEST(WaveformCsv, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_csv("/nonexistent/wave.csv"), std::runtime_error);
}

}  // namespace
}  // namespace rct::sim
