// Robustness suite: hostile input must produce typed errors, never crashes
// or silent garbage.  Seeded pseudo-fuzz over the two text parsers plus
// structured mutations of valid decks.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "rctree/netlist_parser.hpp"
#include "rctree/spef.hpp"

namespace rct {
namespace {

std::string random_soup(std::mt19937_64& rng, std::size_t len) {
  static constexpr char kChars[] =
      "abcXYZ0189.*-+_ \t\n\"RCrpnl()=;/";
  std::uniform_int_distribution<std::size_t> pick(0, sizeof(kChars) - 2);
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) s.push_back(kChars[pick(rng)]);
  return s;
}

TEST(Robustness, NetlistParserNeverCrashesOnSoup) {
  std::mt19937_64 rng(1);
  for (int i = 0; i < 300; ++i) {
    const std::string soup = random_soup(rng, 20 + (i * 7) % 400);
    try {
      const ParsedNetlist p = parse_netlist(soup);
      // Accepting soup is fine as long as the result is a valid tree.
      EXPECT_GT(p.tree.size(), 0u);
    } catch (const NetlistError&) {
      // Expected path.
    }
  }
}

TEST(Robustness, SpefParserNeverCrashesOnSoup) {
  std::mt19937_64 rng(2);
  for (int i = 0; i < 300; ++i) {
    const std::string soup = "*SPEF\n" + random_soup(rng, 20 + (i * 11) % 400);
    try {
      const SpefFile f = parse_spef(soup);
      EXPECT_FALSE(f.nets.empty());
    } catch (const SpefError&) {
    }
  }
}

TEST(Robustness, MutatedValidDeckAlwaysTypedError) {
  const std::string base =
      ".input in\nR1 in n1 100\nC1 n1 0 1p\nR2 n1 n2 50\nC2 n2 0 2p\n.probe n2\n.end\n";
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<std::size_t> pos(0, base.size() - 1);
  std::uniform_int_distribution<int> ch(32, 126);
  for (int i = 0; i < 500; ++i) {
    std::string mutated = base;
    // 1-3 point mutations.
    for (int m = 0; m <= i % 3; ++m) mutated[pos(rng)] = static_cast<char>(ch(rng));
    try {
      const ParsedNetlist p = parse_netlist(mutated);
      EXPECT_GT(p.tree.size(), 0u);
      for (NodeId n = 0; n < p.tree.size(); ++n) {
        EXPECT_GT(p.tree.resistance(n), 0.0);
        EXPECT_GE(p.tree.capacitance(n), 0.0);
      }
    } catch (const NetlistError&) {
    }
  }
}

TEST(Robustness, TruncatedSpefAlwaysTypedError) {
  const std::string base =
      "*SPEF \"x\"\n*T_UNIT 1 NS\n*C_UNIT 1 PF\n*R_UNIT 1 OHM\n"
      "*D_NET n 0.1\n*CONN\n*P drv I\n*I a O\n*CAP\n1 a 0.1\n*RES\n1 drv a 50\n*END\n";
  for (std::size_t cut = 1; cut < base.size(); cut += 3) {
    try {
      (void)parse_spef(base.substr(0, cut));
    } catch (const SpefError&) {
    }
  }
}

TEST(Robustness, DeeplyNestedTreesParseWithoutStackIssues) {
  // A 50k-deep chain exercises every non-recursive code path end to end.
  std::string deck = ".input in\n";
  std::string prev = "in";
  for (int i = 0; i < 50000; ++i) {
    const std::string cur = "n" + std::to_string(i);
    deck += "R" + std::to_string(i) + " " + prev + " " + cur + " 1\n";
    deck += "C" + std::to_string(i) + " " + cur + " 0 1f\n";
    prev = cur;
  }
  const ParsedNetlist p = parse_netlist(deck);
  EXPECT_EQ(p.tree.size(), 50000u);
  EXPECT_EQ(p.tree.depth(p.tree.size() - 1), 50000u);
}

TEST(Robustness, HugeValuesStayFinite) {
  const ParsedNetlist p = parse_netlist(
      ".input in\nR1 in n1 1t\nC1 n1 0 1t\n");
  EXPECT_DOUBLE_EQ(p.tree.resistance(0), 1e12);
  EXPECT_DOUBLE_EQ(p.tree.capacitance(0), 1e12);
}

TEST(Robustness, EmptyAndWhitespaceOnlyInputs) {
  EXPECT_THROW((void)parse_netlist(""), NetlistError);
  EXPECT_THROW((void)parse_netlist("\n\n  \t\n"), NetlistError);
  EXPECT_THROW((void)parse_spef(""), SpefError);
  EXPECT_THROW((void)parse_spef("   \n\t\n"), SpefError);
}

}  // namespace
}  // namespace rct
