#include "sta/buffering.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "moments/path_tracing.hpp"
#include "rctree/generators.hpp"
#include "sta/path_timer.hpp"

namespace rct::sta {
namespace {

Gate test_driver() { return {"drv", 0.0, 500.0, 20e-12}; }
Gate test_buffer() { return {"buf", 12e-15, 300.0, 30e-12}; }

// Reference: slack with an explicit buffered circuit, evaluated by Elmore
// arrival propagation region by region (same buffer convention as the DP).
double eval_slack(const RCTree& t, const std::map<NodeId, double>& rat, const Gate& driver,
                  const Gate& buf, const std::vector<NodeId>& buffered) {
  std::vector<char> has_buf(t.size(), 0);
  for (NodeId b : buffered) has_buf[b] = 1;

  // Region-aware downstream caps: a buffered node contributes only the
  // buffer input cap to its parent's region.
  std::vector<double> ctot(t.size(), 0.0);
  for (NodeId i = t.size(); i-- > 0;) {
    ctot[i] += t.capacitance(i);
    for (NodeId ch : t.children(i)) ctot[i] += has_buf[ch] ? buf.input_capacitance : ctot[ch];
  }
  double root_cap = 0.0;
  for (NodeId r : t.children_of_source())
    root_cap += has_buf[r] ? buf.input_capacitance : ctot[r];

  // Arrival at each node: per-region Elmore accumulation; crossing into a
  // buffered node adds the buffer stage delay driving that node's region.
  std::vector<double> arrive(t.size(), 0.0);
  const double launch = driver.intrinsic_delay + driver.drive_resistance * root_cap;
  for (NodeId i = 0; i < t.size(); ++i) {
    const NodeId p = t.parent(i);
    const double at_parent = (p == kSource) ? launch : arrive[p];
    if (has_buf[i]) {
      // Buffer input sits at the top of edge r_i: wire delay for the input
      // cap, then the buffer drives the region rooted at i (cap ctot[i]).
      const double wire = t.resistance(i) * buf.input_capacitance;
      arrive[i] = at_parent + wire + buf.intrinsic_delay + buf.drive_resistance * ctot[i];
    } else {
      arrive[i] = at_parent + t.resistance(i) * ctot[i];
    }
  }
  double slack = 1e300;
  for (const auto& [node, q] : rat) slack = std::min(slack, q - arrive[node]);
  return slack;
}

TEST(VanGinneken, Validation) {
  BufferingProblem p;
  p.wire = gen::line(3, 10.0, 1e-15, 100.0, 10e-15);
  p.driver = test_driver();
  EXPECT_THROW((void)van_ginneken(p), std::invalid_argument);
  p.required[99] = 1e-9;
  EXPECT_THROW((void)van_ginneken(p), std::invalid_argument);
}

TEST(VanGinneken, UnbufferedSlackMatchesElmore) {
  BufferingProblem p;
  p.wire = gen::line(5, 10.0, 1e-15, 150.0, 25e-15);
  p.driver = test_driver();
  const NodeId sink = p.wire.at("n6");
  p.required[sink] = 1e-9;
  const auto res = van_ginneken(p);  // no buffers in library
  const auto td = moments::elmore_delays(p.wire);
  // By hand: driver stage + wire Elmore.
  const double delay = p.driver.intrinsic_delay +
                       p.driver.drive_resistance * p.wire.total_capacitance() + td[sink];
  EXPECT_NEAR(res.slack, 1e-9 - delay, 1e-15);
  EXPECT_DOUBLE_EQ(res.slack, res.unbuffered_slack);
  EXPECT_TRUE(res.insertions.empty());
}

TEST(VanGinneken, BufferingHelpsLongLines) {
  BufferingProblem p;
  p.wire = gen::line(20, 10.0, 1e-15, 300.0, 60e-15);
  p.driver = test_driver();
  p.buffers = {test_buffer()};
  p.required[p.wire.at("n21")] = 3e-9;
  const auto res = van_ginneken(p);
  EXPECT_GT(res.slack, res.unbuffered_slack + 50e-12);
  EXPECT_FALSE(res.insertions.empty());
}

TEST(VanGinneken, DpNeverWorseThanUnbuffered) {
  // Inserting zero buffers is always in the DP search space.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    BufferingProblem p;
    p.wire = gen::random_tree(18, seed);
    p.driver = test_driver();
    p.buffers = {test_buffer()};
    for (NodeId leaf : p.wire.leaves()) p.required[leaf] = 2e-9;
    const auto res = van_ginneken(p);
    EXPECT_GE(res.slack, res.unbuffered_slack - 1e-18);
  }
}

TEST(VanGinneken, MatchesBruteForceOnSmallLine) {
  // Exhaustive enumeration of buffer subsets on a 6-node line, single cell:
  // the DP optimum must equal the brute-force optimum.
  BufferingProblem p;
  p.wire = gen::line(5, 10.0, 1e-15, 400.0, 80e-15);
  p.driver = test_driver();
  const Gate buf = test_buffer();
  p.buffers = {buf};
  const NodeId sink = p.wire.at("n6");
  p.required[sink] = 2e-9;
  // Buffers make no sense at the sink itself for the brute force; allow
  // everywhere for both to stay comparable.
  const auto res = van_ginneken(p);

  double brute = -1e300;
  const std::size_t n = p.wire.size();
  for (std::size_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<NodeId> buffered;
    for (std::size_t b = 0; b < n; ++b)
      if (mask & (1u << b)) buffered.push_back(b);
    brute = std::max(brute, eval_slack(p.wire, p.required, p.driver, buf, buffered));
  }
  EXPECT_NEAR(res.slack, brute, 1e-15);
}

TEST(VanGinneken, MatchesBruteForceOnBranchedNet) {
  BufferingProblem p;
  RCTreeBuilder b;
  const NodeId a = b.add_node("a", kSource, 200.0, 30e-15);
  const NodeId m = b.add_node("m", a, 350.0, 40e-15);
  b.add_node("s1", m, 300.0, 50e-15);
  b.add_node("s2", a, 500.0, 35e-15);
  p.wire = std::move(b).build();
  p.driver = test_driver();
  const Gate buf = test_buffer();
  p.buffers = {buf};
  p.required[p.wire.at("s1")] = 1.2e-9;
  p.required[p.wire.at("s2")] = 0.9e-9;
  const auto res = van_ginneken(p);

  double brute = -1e300;
  for (std::size_t mask = 0; mask < 16; ++mask) {
    std::vector<NodeId> buffered;
    for (std::size_t bb = 0; bb < 4; ++bb)
      if (mask & (1u << bb)) buffered.push_back(bb);
    brute = std::max(brute, eval_slack(p.wire, p.required, p.driver, buf, buffered));
  }
  EXPECT_NEAR(res.slack, brute, 1e-15);
}

TEST(VanGinneken, EvaluateBufferingAuditsTheDp) {
  // Re-evaluating the DP's chosen placement independently must reproduce
  // the DP's reported slack exactly.
  BufferingProblem p;
  p.wire = gen::line(20, 10.0, 1e-15, 300.0, 60e-15);
  p.driver = test_driver();
  p.buffers = {test_buffer()};
  p.required[p.wire.at("n21")] = 3e-9;
  const auto res = van_ginneken(p);
  EXPECT_NEAR(evaluate_buffering(p, res.insertions), res.slack, 1e-15);
  EXPECT_NEAR(evaluate_buffering(p, {}), res.unbuffered_slack, 1e-15);
}

TEST(VanGinneken, EvaluateBufferingValidation) {
  BufferingProblem p;
  p.wire = gen::line(3, 10.0, 1e-15, 100.0, 10e-15);
  p.driver = test_driver();
  p.buffers = {test_buffer()};
  p.required[p.wire.at("n4")] = 1e-9;
  EXPECT_THROW((void)evaluate_buffering(p, {{"zz", "buf"}}), std::invalid_argument);
  EXPECT_THROW((void)evaluate_buffering(p, {{"n2", "not_a_buf"}}), std::invalid_argument);
}

TEST(VanGinneken, LegalPositionsRestrictInsertions) {
  BufferingProblem p;
  p.wire = gen::line(20, 10.0, 1e-15, 300.0, 60e-15);
  p.driver = test_driver();
  p.buffers = {test_buffer()};
  p.required[p.wire.at("n21")] = 3e-9;
  p.legal_positions = {p.wire.at("n5")};
  const auto res = van_ginneken(p);
  for (const auto& ins : res.insertions) EXPECT_EQ(ins.node, "n5");
}

TEST(VanGinneken, TwoBufferSizesPickTheBetterOne) {
  BufferingProblem p;
  p.wire = gen::line(16, 10.0, 1e-15, 350.0, 70e-15);
  p.driver = test_driver();
  const Gate small{"buf_small", 6e-15, 900.0, 25e-12};
  const Gate big{"buf_big", 25e-15, 150.0, 40e-12};
  p.buffers = {small, big};
  p.required[p.wire.at("n17")] = 3e-9;
  const auto both = van_ginneken(p);

  BufferingProblem only_small = p;
  only_small.buffers = {small};
  BufferingProblem only_big = p;
  only_big.buffers = {big};
  const double best_single =
      std::max(van_ginneken(only_small).slack, van_ginneken(only_big).slack);
  EXPECT_GE(both.slack, best_single - 1e-18);
}

}  // namespace
}  // namespace rct::sta
