#include "rctree/transform.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/generators.hpp"
#include "sim/exact.hpp"

namespace rct {
namespace {

using rct::testing::ExpectRel;

TEST(MergeSeries, CollapsesCaplessChain) {
  RCTreeBuilder b;
  const NodeId a = b.add_node("a", kSource, 100.0, 1e-12);
  const NodeId x = b.add_node("x", a, 50.0, 0.0);   // capless, 1 child
  const NodeId y = b.add_node("y", x, 70.0, 0.0);   // capless, 1 child
  b.add_node("leaf", y, 30.0, 2e-12);
  const RCTree merged = merge_series(std::move(b).build());
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged.resistance(merged.at("leaf")), 150.0);
  EXPECT_FALSE(merged.find("x").has_value());
}

TEST(MergeSeries, KeepsCaplessBranchPoints) {
  RCTreeBuilder b;
  const NodeId a = b.add_node("a", kSource, 100.0, 0.0);  // capless but 2 children
  b.add_node("l1", a, 50.0, 1e-12);
  b.add_node("l2", a, 60.0, 1e-12);
  const RCTree merged = merge_series(std::move(b).build());
  EXPECT_EQ(merged.size(), 3u);
  EXPECT_TRUE(merged.find("a").has_value());
}

TEST(MergeSeries, PreservesElmoreExactly) {
  // Merging capless series nodes is an exact transformation for every
  // moment (no capacitance moves).
  RCTreeBuilder b;
  const NodeId a = b.add_node("a", kSource, 10.0, 0.0);
  const NodeId c = b.add_node("c", a, 20.0, 1e-12);
  const NodeId d = b.add_node("d", c, 5.0, 0.0);
  const NodeId e = b.add_node("e", d, 5.0, 2e-12);
  b.add_node("f", e, 7.0, 0.5e-12);
  b.add_node("g", c, 9.0, 0.3e-12);
  const RCTree orig = std::move(b).build();
  const RCTree merged = merge_series(orig);
  const auto m_orig = moments::transfer_moments(orig, 3);
  const auto m_new = moments::transfer_moments(merged, 3);
  for (NodeId i = 0; i < merged.size(); ++i) {
    const NodeId j = orig.at(merged.name(i));
    for (std::size_t k = 1; k <= 3; ++k)
      ExpectRel(m_new[k][i], m_orig[k][j], 1e-12);
  }
}

TEST(PruneSubtree, DropAndLump) {
  const RCTree t = testing::small_tree();  // a -> {b -> c, d}
  const RCTree dropped = prune_subtree(t, t.at("b"), /*lump=*/false);
  EXPECT_EQ(dropped.size(), 2u);
  EXPECT_FALSE(dropped.find("b").has_value());
  EXPECT_DOUBLE_EQ(dropped.capacitance(dropped.at("a")), 1e-12);

  const RCTree lumped = prune_subtree(t, t.at("b"), /*lump=*/true);
  EXPECT_DOUBLE_EQ(lumped.capacitance(lumped.at("a")), 1e-12 + 2.5e-12);
  EXPECT_DOUBLE_EQ(lumped.total_capacitance(), t.total_capacitance());
}

TEST(PruneSubtree, LumpedElmoreUpperBoundsDetailed) {
  // The lumped model moves capacitance closer to the source, so Elmore at
  // surviving nodes can only stay equal or drop at nodes past the lump,
  // while at the attachment point it is unchanged (same downstream cap).
  const RCTree t = gen::random_tree(25, 9);
  // Prune some mid-tree node with children.
  NodeId victim = 0;
  for (NodeId i = t.size(); i-- > 1;) {
    if (!t.is_leaf(i) && t.parent(i) != kSource) {
      victim = i;
      break;
    }
  }
  ASSERT_NE(victim, 0u);
  const RCTree lumped = prune_subtree(t, victim, true);
  const auto td_full = moments::elmore_delays(t);
  const auto td_lump = moments::elmore_delays(lumped);
  const NodeId attach_old = t.parent(victim);
  const NodeId attach_new = lumped.at(t.name(attach_old));
  ExpectRel(td_lump[attach_new], td_full[attach_old], 1e-12);
}

TEST(PruneSubtree, Validation) {
  const RCTree t = testing::small_tree();
  EXPECT_THROW((void)prune_subtree(t, 99, true), std::invalid_argument);
  EXPECT_THROW((void)prune_subtree(t, t.at("a"), true), std::invalid_argument);
}

TEST(AddCap, AddsAndValidates) {
  const RCTree t = testing::small_tree();
  const RCTree u = add_cap(t, t.at("c"), 1e-12);
  EXPECT_DOUBLE_EQ(u.capacitance(u.at("c")), 1.5e-12);
  EXPECT_THROW((void)add_cap(t, 99, 1e-12), std::invalid_argument);
  EXPECT_THROW((void)add_cap(t, t.at("c"), -1e-11), std::invalid_argument);
}

TEST(SegmentedWire, ElmoreMatchesDistributedLimit) {
  // Distributed RC line delay (driver R_d, line R, C, load C_L):
  //   T_D = R_d (C + C_L) + R C / 2 + R C_L.
  const WireParams p{0.5, 0.2e-15};  // ohm/um, F/um
  const double len = 1000.0;
  const double rd = 150.0;
  const double cl = 20e-15;
  const double r_line = p.res_per_length * len;
  const double c_line = p.cap_per_length * len;
  const double want = rd * (c_line + cl) + 0.5 * r_line * c_line + r_line * cl;

  double prev_err = 1e300;
  for (std::size_t sections : {4u, 16u, 64u}) {
    const RCTree w = segmented_wire(len, p, sections, rd, cl);
    const double got = moments::elmore_delays(w)[w.at("load")];
    const double err = std::abs(got - want) / want;
    EXPECT_LE(err, prev_err + 1e-12);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 2e-3);
}

TEST(SegmentedWire, ConvergesToDistributedDelay) {
  // The exact 50% delay converges as sections grow (Richardson-style check
  // between 32 and 64 sections).
  const WireParams p{0.3, 0.15e-15};
  const RCTree w32 = segmented_wire(800.0, p, 32, 100.0, 10e-15);
  const RCTree w64 = segmented_wire(800.0, p, 64, 100.0, 10e-15);
  const double d32 = sim::ExactAnalysis(w32).step_delay(w32.at("load"));
  const double d64 = sim::ExactAnalysis(w64).step_delay(w64.at("load"));
  EXPECT_NEAR(d32, d64, 5e-3 * d64);
}

TEST(SegmentedWire, Validation) {
  const WireParams p{0.5, 0.2e-15};
  EXPECT_THROW((void)segmented_wire(0.0, p, 4, 10.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)segmented_wire(100.0, p, 0, 10.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)segmented_wire(100.0, WireParams{-1.0, 0.1}, 4, 10.0, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace rct
