#include "moments/incremental.hpp"

#include <gtest/gtest.h>

#include <random>

#include "helpers.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/generators.hpp"

namespace rct::moments {
namespace {

TEST(IncrementalElmore, MatchesBatchOnConstruction) {
  const RCTree t = gen::random_tree(50, 31);
  const IncrementalElmore inc(t);
  const auto td = elmore_delays(t);
  for (NodeId i = 0; i < t.size(); ++i) EXPECT_DOUBLE_EQ(inc.elmore(i), td[i]);
}

TEST(IncrementalElmore, CapUpdateTracksRecompute) {
  const RCTree t = testing::small_tree();
  IncrementalElmore inc(t);
  inc.add_cap(t.at("c"), 3e-12);
  const auto td = elmore_delays(inc.snapshot());
  for (NodeId i = 0; i < t.size(); ++i)
    EXPECT_NEAR(inc.elmore(i), td[i], 1e-12 * td[i]);
  EXPECT_DOUBLE_EQ(inc.capacitance(t.at("c")), 3.5e-12);
  EXPECT_DOUBLE_EQ(inc.subtree_capacitance(t.at("a")), 8e-12);
}

TEST(IncrementalElmore, ResUpdateTracksRecompute) {
  const RCTree t = testing::small_tree();
  IncrementalElmore inc(t);
  inc.set_resistance(t.at("b"), 777.0);
  const auto td = elmore_delays(inc.snapshot());
  for (NodeId i = 0; i < t.size(); ++i)
    EXPECT_NEAR(inc.elmore(i), td[i], 1e-12 * td[i]);
}

class IncrementalRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalRandomOps, LongUpdateSequencesStayExact) {
  const RCTree t = gen::random_tree(60, GetParam());
  IncrementalElmore inc(t);
  std::mt19937_64 rng(GetParam() * 97 + 5);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  for (int op = 0; op < 200; ++op) {
    const NodeId node = static_cast<NodeId>(uni(rng) * static_cast<double>(t.size() - 1));
    if (uni(rng) < 0.5) {
      // Never drive a cap negative: add within [-cap, +50fF].
      const double delta = uni(rng) * 50e-15 - 0.5 * inc.capacitance(node);
      inc.add_cap(node, std::max(delta, -inc.capacitance(node)));
    } else {
      inc.set_resistance(node, 10.0 + uni(rng) * 1000.0);
    }
  }
  const auto td = elmore_delays(inc.snapshot());
  for (NodeId i = 0; i < t.size(); ++i)
    EXPECT_NEAR(inc.elmore(i), td[i], 1e-9 * td[i] + 1e-24) << "node " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalRandomOps, ::testing::Values(1, 2, 3, 4, 5));

TEST(IncrementalElmore, Validation) {
  const RCTree t = testing::small_tree();
  IncrementalElmore inc(t);
  EXPECT_THROW(inc.add_cap(99, 1e-15), std::invalid_argument);
  EXPECT_THROW(inc.add_cap(0, -1.0), std::invalid_argument);
  EXPECT_THROW(inc.set_resistance(99, 1.0), std::invalid_argument);
  EXPECT_THROW(inc.set_resistance(0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)inc.elmore(99), std::invalid_argument);
}

TEST(IncrementalElmore, SnapshotPreservesNamesAndTopology) {
  const RCTree t = gen::random_tree(20, 77);
  const RCTree s = IncrementalElmore(t).snapshot();
  ASSERT_EQ(s.size(), t.size());
  for (NodeId i = 0; i < t.size(); ++i) {
    EXPECT_EQ(s.name(i), t.name(i));
    EXPECT_EQ(s.parent(i), t.parent(i));
  }
}

}  // namespace
}  // namespace rct::moments
