#include "core/variation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/generators.hpp"
#include "sim/exact.hpp"

namespace rct::core {
namespace {

TEST(Variation, Validation) {
  const RCTree t = testing::small_tree();
  VariationModel bad;
  bad.res_sigma = -0.1;
  EXPECT_THROW((void)elmore_variation(t, 0, bad, 10, 1), std::invalid_argument);
  EXPECT_THROW((void)elmore_variation(t, 99, {}, 10, 1), std::invalid_argument);
  EXPECT_THROW((void)elmore_variation(t, 0, {}, 1, 1), std::invalid_argument);
}

TEST(Variation, Deterministic) {
  const RCTree t = gen::random_tree(20, 3);
  const auto a = elmore_variation(t, t.size() - 1, {}, 100, 42);
  const auto b = elmore_variation(t, t.size() - 1, {}, 100, 42);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.q95, b.q95);
}

TEST(Variation, ZeroSigmaCollapsesToNominal) {
  const RCTree t = gen::random_tree(15, 5);
  VariationModel m;
  m.res_sigma = 0.0;
  m.cap_sigma = 0.0;
  const auto s = elmore_variation(t, t.size() - 1, m, 50, 7);
  EXPECT_NEAR(s.mean, s.nominal, 1e-12 * s.nominal);
  EXPECT_NEAR(s.stddev, 0.0, 1e-12 * s.nominal);
  EXPECT_NEAR(s.q05, s.q95, 1e-12 * s.nominal);
}

TEST(Variation, QuantilesOrderedAndBracketMedian) {
  const RCTree t = gen::random_tree(25, 11);
  const auto s = elmore_variation(t, t.size() - 1, {}, 500, 13);
  EXPECT_LE(s.q05, s.q50);
  EXPECT_LE(s.q50, s.q95);
  EXPECT_GT(s.stddev, 0.0);
  // With 10% lognormal sigmas the spread is moderate.
  EXPECT_LT(s.q95 / s.q05, 2.0);
  EXPECT_NEAR(s.q50, s.mean, 0.2 * s.mean);
}

TEST(Variation, GlobalSigmaWidensSpread) {
  const RCTree t = gen::random_tree(25, 17);
  VariationModel local_only;
  VariationModel with_global = local_only;
  with_global.global_sigma = 0.15;
  const auto a = elmore_variation(t, t.size() - 1, local_only, 400, 23);
  const auto b = elmore_variation(t, t.size() - 1, with_global, 400, 23);
  EXPECT_GT(b.stddev, a.stddev);
}

TEST(Variation, LocalVariationAveragesOutOnDeepLines) {
  // Many independent per-segment variations partially cancel: the relative
  // spread of the leaf delay on a 64-seg line is far below the 10%
  // per-component sigma's worst case.
  const RCTree t = gen::line(64, 20.0, 5e-15, 100.0, 30e-15);
  const auto s = elmore_variation(t, t.size() - 1, {}, 400, 29);
  EXPECT_LT(s.stddev / s.mean, 0.06);
}

TEST(Variation, TheoremHoldsPerSample) {
  // Every sampled circuit is an RC tree, so the sampled Elmore value must
  // upper-bound that sample's exact delay.
  const RCTree t = gen::random_tree(15, 31);
  for (std::uint64_t s = 0; s < 10; ++s) {
    const RCTree sample = sample_variation(t, {}, 1000 + s);
    const sim::ExactAnalysis exact(sample);
    const auto td = moments::elmore_delays(sample);
    const NodeId leaf = sample.size() - 1;
    EXPECT_LE(exact.step_delay(leaf), td[leaf] * (1 + 1e-9)) << "sample " << s;
  }
}

TEST(Variation, SampleKeepsTopology) {
  const RCTree t = gen::random_tree(20, 37);
  const RCTree s = sample_variation(t, {}, 99);
  ASSERT_EQ(s.size(), t.size());
  for (NodeId i = 0; i < t.size(); ++i) {
    EXPECT_EQ(s.parent(i), t.parent(i));
    EXPECT_EQ(s.name(i), t.name(i));
    EXPECT_GT(s.resistance(i), 0.0);
    EXPECT_GE(s.capacitance(i), 0.0);
  }
}

}  // namespace
}  // namespace rct::core
