// Cross-engine consistency: the repository contains five independent routes
// to an RC tree's step response (closed-form eigenseries, trapezoidal
// transient, impulse-convolution, PRIMA full order, AWE full order) and six
// delay estimators with a provable ordering.  This suite pins them against
// each other on shared circuits — the strongest internal-consistency check
// the toolkit has.

#include <gtest/gtest.h>

#include <cmath>

#include "core/awe.hpp"
#include "core/metrics.hpp"
#include "core/prima.hpp"
#include "helpers.hpp"
#include "rctree/circuits.hpp"
#include "rctree/generators.hpp"
#include "sim/convolve.hpp"
#include "sim/exact.hpp"
#include "sim/transient.hpp"

namespace rct {
namespace {

class CrossEngine : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossEngine, FiveRoutesToTheSameStepResponse) {
  const RCTree t = gen::random_tree(12, GetParam());
  const NodeId node = t.size() - 1;
  const sim::ExactAnalysis exact(t);
  const double tau = exact.dominant_time_constant();
  const double t_end = 10.0 * tau;

  // Route 2: transient integration.
  const sim::StepSource step;
  sim::TransientOptions opt;
  opt.t_end = t_end;
  opt.steps = 8000;
  const auto trans = sim::simulate(t, step, {node}, opt);

  // Route 3: numeric convolution of the impulse response with the step.
  const auto grid = sim::uniform_grid(t_end, 16000);
  const sim::Waveform conv =
      sim::convolve_response(exact.impulse_waveform(node, grid), step);

  // Routes 4-5: full-order reductions (must be exact up to conditioning).
  const core::PrimaReduction prima(t, t.size());
  const core::ReducedModel rm = prima.at(node);
  const core::AweApproximation awe(t, node, 4);  // partial order, looser

  for (double x : {0.5, 1.5, 3.0, 6.0}) {
    const double tt = x * tau;
    const double truth = exact.step_response(node, tt);
    EXPECT_NEAR(trans.waveform(0).value_at(tt), truth, 5e-4) << "transient";
    EXPECT_NEAR(conv.value_at(tt), truth, 1e-2) << "convolution";
    EXPECT_NEAR(rm.step_response(tt), truth, 1e-4) << "prima";
    if (awe.stable()) {
      EXPECT_NEAR(awe.step_response(tt), truth, 5e-2) << "awe";
    }
  }
}

TEST_P(CrossEngine, EstimatorOrderingAgainstExact) {
  const RCTree t = gen::random_tree(18, GetParam() + 500);
  const sim::ExactAnalysis exact(t);
  const auto metrics = core::delay_metrics(t);
  for (NodeId i = 0; i < t.size(); ++i) {
    const double truth = exact.step_delay(i);
    const auto& m = metrics[i];
    // Provable: lower bounds below exact, Elmore above, and the two lower
    // bounds ordered.
    EXPECT_LE(m.lower_cantelli, m.lower_unimodal + 1e-30);
    EXPECT_LE(m.lower_unimodal, truth * (1 + 1e-9));
    EXPECT_GE(m.elmore, truth * (1 - 1e-9));
    // Structural: every estimator inside [0, elmore].
    for (double est : {m.single_pole, m.d2m, m.scaled_elmore}) {
      EXPECT_GE(est, 0.0);
      EXPECT_LE(est, m.elmore * (1 + 1e-9));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossEngine, ::testing::Values(1, 7, 13, 19));

TEST(CrossEngine, PaperCircuitAllEnginesAgreeOnC5) {
  const RCTree t = circuits::fig1();
  const NodeId c5 = t.at("n5");
  const sim::ExactAnalysis exact(t);
  const double truth = exact.step_delay(c5);

  const core::PrimaReduction prima(t, t.size());
  EXPECT_NEAR(prima.at(c5).delay(), truth, 1e-5 * truth);

  const core::AweApproximation awe(t, c5, 4);
  if (awe.stable()) {
    EXPECT_NEAR(awe.delay(), truth, 1e-2 * truth);
  }

  const sim::StepSource step;
  sim::TransientOptions opt;
  opt.t_end = 12.0 * exact.dominant_time_constant();
  opt.steps = 20000;
  const auto trans = sim::simulate(t, step, {c5}, opt);
  const auto crossing = trans.waveform(0).first_rise_crossing(0.5);
  ASSERT_TRUE(crossing.has_value());
  EXPECT_NEAR(*crossing, truth, 2e-3 * truth);
}

}  // namespace
}  // namespace rct
