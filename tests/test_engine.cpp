// Tests for src/engine: thread pool, content-addressed net cache, and the
// parallel batch analyzer.  The load-bearing guarantees:
//
//   * determinism — an N-thread batch is bit-identical to a 1-thread batch,
//   * caching — content-identical nets (names aside) skip recomputation,
//   * isolation — one net failing is reported per-net, never process-fatal.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "analysis/tree_context.hpp"
#include "engine/batch.hpp"
#include "engine/net_cache.hpp"
#include "engine/thread_pool.hpp"
#include "rctree/generators.hpp"
#include "rctree/spef.hpp"

namespace rct::engine {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Same topology and R/C values, fresh node names.
RCTree renamed(const RCTree& t, const std::string& prefix) {
  RCTreeBuilder b;
  for (NodeId i = 0; i < t.size(); ++i)
    b.add_node(prefix + std::to_string(i), t.parent(i), t.resistance(i), t.capacitance(i));
  return std::move(b).build();
}

SpefNet make_net(std::string name, RCTree tree) {
  SpefNet net;
  net.name = std::move(name);
  net.driver = tree.empty() ? "" : tree.name(tree.children_of_source().front());
  if (!tree.empty()) net.loads = tree.leaves();
  net.tree = std::move(tree);
  return net;
}

std::vector<SpefNet> random_nets(std::size_t count, std::size_t nodes) {
  std::vector<SpefNet> nets;
  nets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    RCTree t = gen::random_tree(nodes, /*seed=*/1000 + i);
    nets.push_back(make_net("net" + std::to_string(i), renamed(t, "n" + std::to_string(i) + "_")));
  }
  return nets;
}

void expect_rows_identical(const std::vector<core::NodeReport>& a,
                           const std::vector<core::NodeReport>& b,
                           bool compare_names = true) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (compare_names) {
      EXPECT_EQ(a[i].name, b[i].name);
    }
    EXPECT_EQ(a[i].depth, b[i].depth);
    // Bit-identical, not approximately equal: the merge is deterministic and
    // each net's math is single-threaded, so nothing may perturb a ULP.
    EXPECT_EQ(a[i].elmore, b[i].elmore);
    EXPECT_EQ(a[i].sigma, b[i].sigma);
    EXPECT_EQ(a[i].skewness, b[i].skewness);
    EXPECT_EQ(a[i].lower_bound, b[i].lower_bound);
    EXPECT_EQ(a[i].single_pole, b[i].single_pole);
    EXPECT_EQ(a[i].prh_tmin, b[i].prh_tmin);
    EXPECT_EQ(a[i].prh_tmax, b[i].prh_tmax);
    EXPECT_EQ(a[i].exact_delay, b[i].exact_delay);
    EXPECT_EQ(a[i].exact_rise, b[i].exact_rise);
  }
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i)
    pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(3);
  std::vector<int> hit(257, 0);
  pool.parallel_for(hit.size(), [&hit](std::size_t i) { hit[i] = 1; });
  for (std::size_t i = 0; i < hit.size(); ++i) EXPECT_EQ(hit[i], 1) << i;
}

TEST(ThreadPool, SurvivesThrowingTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i)
    pool.submit([] { throw std::runtime_error("task failure"); });
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, WaitIdleOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

TEST(ThreadPool, TasksMaySubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&pool, &count] {
    for (int i = 0; i < 10; ++i)
      pool.submit([&count] { count.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 10);
}

// ---------------------------------------------------------------------------
// NetKey / NetCache
// ---------------------------------------------------------------------------

TEST(NetCache, KeyIgnoresNodeNames) {
  const RCTree a = gen::random_tree(30, 7);
  const RCTree b = renamed(a, "other_");
  const core::ReportOptions opt;
  EXPECT_EQ(NetKey::of(a, opt), NetKey::of(b, opt));
  EXPECT_EQ(NetKey::of(a, opt).hash, NetKey::of(b, opt).hash);
}

TEST(NetCache, KeySeesValueAndOptionChanges) {
  const RCTree a = gen::random_tree(30, 7);
  RCTreeBuilder b;
  for (NodeId i = 0; i < a.size(); ++i)
    b.add_node(a.name(i), a.parent(i), a.resistance(i),
               a.capacitance(i) * (i == 5 ? 1.0000001 : 1.0));
  const RCTree perturbed = std::move(b).build();
  core::ReportOptions opt;
  EXPECT_FALSE(NetKey::of(a, opt) == NetKey::of(perturbed, opt));
  core::ReportOptions other = opt;
  other.fraction = 0.4;
  EXPECT_FALSE(NetKey::of(a, opt) == NetKey::of(a, other));
}

TEST(NetCache, HitReturnsRowsWithReboundNames) {
  const RCTree a = gen::random_tree(25, 11);
  const RCTree b = renamed(a, "copy_");
  const core::ReportOptions opt;
  NetCache cache;
  EXPECT_FALSE(cache.lookup(NetKey::of(a, opt), a).has_value());
  const auto rows = core::build_report(a, opt);
  cache.insert(NetKey::of(a, opt), rows);
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.lookup(NetKey::of(b, opt), b);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->size(), b.size());
  for (NodeId i = 0; i < b.size(); ++i) {
    EXPECT_EQ((*hit)[i].name, b.name(i));
    EXPECT_EQ((*hit)[i].elmore, rows[i].elmore);
  }
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(NetCache, ContentKeyIgnoresOptions) {
  const RCTree a = gen::random_tree(20, 13);
  core::ReportOptions opt;
  opt.fraction = 0.9;
  // Option changes separate the row keys but not the content key.
  EXPECT_FALSE(NetKey::of(a, {}) == NetKey::of(a, opt));
  EXPECT_EQ(NetKey::content_of(a), NetKey::content_of(renamed(a, "x_")));
}

TEST(NetCache, ContextInsertFirstWriterWins) {
  const RCTree a = gen::random_tree(20, 13);
  const NetKey key = NetKey::content_of(a);
  NetCache cache;
  EXPECT_EQ(cache.lookup_context(key), nullptr);
  EXPECT_EQ(cache.context_hits(), 0u);

  auto first = std::make_shared<const analysis::TreeContext>(a);
  auto second = std::make_shared<const analysis::TreeContext>(a);
  EXPECT_EQ(cache.insert_context(key, first), first);
  // The duplicate insert loses: the caller gets the stored winner back.
  EXPECT_EQ(cache.insert_context(key, second), first);
  EXPECT_EQ(cache.lookup_context(key), first);
  EXPECT_EQ(cache.context_count(), 1u);
  EXPECT_EQ(cache.context_hits(), 2u);  // one lost race + one lookup hit
}

TEST(NetCache, LruCapEvictsOldestAndCountsEvictions) {
  // One shard so the cap is exact, not split.
  NetCache cache(/*shards=*/1, /*max_entries=*/2);
  const core::ReportOptions opt;
  std::vector<RCTree> trees;
  std::vector<NetKey> keys;
  for (std::size_t i = 0; i < 3; ++i) {
    trees.push_back(gen::random_tree(20, /*seed=*/500 + i));
    keys.push_back(NetKey::of(trees[i], opt));
    cache.insert(keys[i], core::build_report(trees[i], opt));
  }
  // Third insert displaced the oldest (tree 0); the two newest remain.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.lookup(keys[0], trees[0]).has_value());
  EXPECT_TRUE(cache.lookup(keys[1], trees[1]).has_value());
  EXPECT_TRUE(cache.lookup(keys[2], trees[2]).has_value());
}

TEST(NetCache, LruLookupRefreshesRecency) {
  NetCache cache(/*shards=*/1, /*max_entries=*/2);
  const core::ReportOptions opt;
  std::vector<RCTree> trees;
  std::vector<NetKey> keys;
  for (std::size_t i = 0; i < 2; ++i) {
    trees.push_back(gen::random_tree(20, /*seed=*/600 + i));
    keys.push_back(NetKey::of(trees[i], opt));
    cache.insert(keys[i], core::build_report(trees[i], opt));
  }
  // Touch tree 0 so tree 1 becomes the LRU victim of the next insert.
  EXPECT_TRUE(cache.lookup(keys[0], trees[0]).has_value());
  const RCTree third = gen::random_tree(20, /*seed=*/700);
  cache.insert(NetKey::of(third, opt), core::build_report(third, opt));
  EXPECT_TRUE(cache.lookup(keys[0], trees[0]).has_value());
  EXPECT_FALSE(cache.lookup(keys[1], trees[1]).has_value());
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(NetCache, UnboundedDefaultNeverEvicts) {
  NetCache cache(/*shards=*/1);  // max_entries defaults to 0 = unbounded
  const core::ReportOptions opt;
  for (std::size_t i = 0; i < 32; ++i) {
    const RCTree t = gen::random_tree(15, /*seed=*/800 + i);
    cache.insert(NetKey::of(t, opt), core::build_report(t, opt));
  }
  EXPECT_EQ(cache.size(), 32u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(NetCache, RebindReportNamesRewritesOnlyNames) {
  const RCTree a = gen::random_tree(15, 21);
  const RCTree b = renamed(a, "other_");
  core::ReportOptions opt;
  opt.with_exact = false;
  auto rows = core::build_report(a, opt);
  const auto original = rows;
  rebind_report_names(rows, b);
  ASSERT_EQ(rows.size(), original.size());
  for (NodeId i = 0; i < b.size(); ++i) {
    EXPECT_EQ(rows[i].name, b.name(i));
    EXPECT_EQ(rows[i].elmore, original[i].elmore);
    EXPECT_EQ(rows[i].prh_tmax, original[i].prh_tmax);
  }
}

// ---------------------------------------------------------------------------
// Batch analyzer
// ---------------------------------------------------------------------------

TEST(Batch, MultiThreadResultBitIdenticalToSingleThread) {
  const std::vector<SpefNet> nets = random_nets(24, 30);
  for (const bool use_cache : {false, true}) {
    BatchOptions one;
    one.jobs = 1;
    one.use_cache = use_cache;
    BatchOptions four = one;
    four.jobs = 4;
    const BatchResult r1 = analyze_nets(nets, one);
    const BatchResult r4 = analyze_nets(nets, four);
    EXPECT_EQ(r1.stats.threads, 1u);
    EXPECT_EQ(r4.stats.threads, 4u);
    ASSERT_EQ(r1.nets.size(), nets.size());
    ASSERT_EQ(r4.nets.size(), nets.size());
    for (std::size_t i = 0; i < nets.size(); ++i) {
      EXPECT_EQ(r1.nets[i].name, nets[i].name);
      EXPECT_EQ(r4.nets[i].name, nets[i].name);
      EXPECT_TRUE(r4.nets[i].ok());
      expect_rows_identical(r1.nets[i].rows, r4.nets[i].rows);
    }
    // The deterministic renderers must agree byte for byte.
    const BatchResult* rs[] = {&r1, &r4};
    EXPECT_EQ(format_batch(*rs[0]), format_batch(*rs[1]));
    EXPECT_EQ(format_batch_json(*rs[0]), format_batch_json(*rs[1]));
  }
}

TEST(Batch, CacheHitsOnDuplicatedNets) {
  // One physical net stamped out ten times under different names — the
  // clock-mesh / repeated-macro pattern the cache exists for.
  const RCTree base = gen::random_tree(40, 3);
  std::vector<SpefNet> nets;
  for (int i = 0; i < 10; ++i)
    nets.push_back(make_net("stamp" + std::to_string(i), renamed(base, "s" + std::to_string(i) + "_")));
  nets.push_back(make_net("unique", renamed(gen::random_tree(40, 4), "u_")));

  BatchOptions opt;
  opt.jobs = 1;  // serial: hit/miss accounting is exact
  const BatchResult r = analyze_nets(nets, opt);
  EXPECT_EQ(r.stats.nets, 11u);
  EXPECT_EQ(r.stats.tasks_run, 2u);    // one per distinct content
  EXPECT_EQ(r.stats.cache_hits, 9u);   // all stamps but the first-executed
  EXPECT_EQ(r.stats.failures, 0u);
  // Exactly one stamp was computed; which one depends on pool scheduling.
  std::size_t computed = 0;
  for (int i = 0; i < 10; ++i) {
    if (!r.nets[i].from_cache) ++computed;
    expect_rows_identical(r.nets[0].rows, r.nets[i].rows, /*compare_names=*/false);
  }
  EXPECT_EQ(computed, 1u);
}

TEST(Batch, CachedRowsCarryPerNetNames) {
  const RCTree base = gen::random_tree(12, 9);
  std::vector<SpefNet> nets;
  nets.push_back(make_net("a", renamed(base, "a_")));
  nets.push_back(make_net("b", renamed(base, "b_")));
  BatchOptions opt;
  opt.jobs = 1;
  const BatchResult r = analyze_nets(nets, opt);
  // One of the two stamps was served from cache; its rows must still carry
  // its own node names, not the names of the net that populated the cache.
  ASSERT_NE(r.nets[0].from_cache, r.nets[1].from_cache);
  const NetResult& cached = r.nets[0].from_cache ? r.nets[0] : r.nets[1];
  const std::string prefix = r.nets[0].from_cache ? "a_" : "b_";
  for (std::size_t i = 0; i < cached.rows.size(); ++i)
    EXPECT_EQ(cached.rows[i].name, prefix + std::to_string(i));
}

TEST(Batch, FailingNetIsIsolatedAndReported) {
  std::vector<SpefNet> nets = random_nets(3, 20);
  SpefNet broken;
  broken.name = "broken";
  broken.driver = "none";  // empty tree -> analyze_one throws -> per-net error
  nets.insert(nets.begin() + 1, broken);

  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    BatchOptions opt;
    opt.jobs = jobs;
    const BatchResult r = analyze_nets(nets, opt);
    ASSERT_EQ(r.nets.size(), 4u);
    EXPECT_EQ(r.stats.failures, 1u);
    EXPECT_FALSE(r.nets[1].ok());
    EXPECT_NE(r.nets[1].error.find("broken"), std::string::npos);
    EXPECT_TRUE(r.nets[1].rows.empty());
    for (const std::size_t i : {std::size_t{0}, std::size_t{2}, std::size_t{3}}) {
      EXPECT_TRUE(r.nets[i].ok()) << i;
      EXPECT_FALSE(r.nets[i].rows.empty()) << i;
    }
    // The failure is visible, not fatal, in both renderers.
    EXPECT_NE(format_batch(r).find("error:"), std::string::npos);
    EXPECT_NE(format_batch_json(r).find("\"error\":\"net 'broken'"), std::string::npos);
  }
}

TEST(Batch, AnalyzeBatchConsumesParsedSpef) {
  const char* spef =
      "*SPEF \"IEEE 1481-1998\"\n"
      "*DESIGN \"engine_test\"\n"
      "*T_UNIT 1 NS\n*C_UNIT 1 PF\n*R_UNIT 1 OHM\n"
      "*D_NET na 0.1\n*CONN\n*P d1 I\n*I p1 O\n"
      "*CAP\n1 m1 0.05\n2 p1 0.05\n"
      "*RES\n1 d1 m1 100\n2 m1 p1 100\n*END\n"
      "*D_NET nb 0.1\n*CONN\n*P d2 I\n*I p2 O\n"
      "*CAP\n1 m2 0.05\n2 p2 0.05\n"
      "*RES\n1 d2 m2 100\n2 m2 p2 100\n*END\n";
  BatchOptions opt;
  opt.jobs = 1;  // serial, so the duplicate is guaranteed to hit the cache
  const BatchResult r = analyze_batch(parse_spef(spef), opt);
  EXPECT_EQ(r.design, "engine_test");
  ASSERT_EQ(r.nets.size(), 2u);
  EXPECT_TRUE(r.nets[0].ok());
  EXPECT_TRUE(r.nets[1].ok());
  // nb is a renamed copy of na: the cache must catch it even via SPEF.
  EXPECT_EQ(r.stats.cache_hits, 1u);
  expect_rows_identical(r.nets[0].rows, r.nets[1].rows, /*compare_names=*/false);
  const std::string text = format_batch(r);
  EXPECT_NE(text.find("design 'engine_test': 2 net(s)"), std::string::npos);
  EXPECT_NE(text.find("*D_NET na"), std::string::npos);
  EXPECT_NE(text.find("load p1"), std::string::npos);
}

TEST(Batch, StatsObserveWork) {
  const std::vector<SpefNet> nets = random_nets(6, 25);
  BatchOptions opt;
  opt.jobs = 2;
  opt.use_cache = false;
  const BatchResult r = analyze_nets(nets, opt);
  EXPECT_EQ(r.stats.nets, 6u);
  EXPECT_EQ(r.stats.tasks_run, 6u);
  EXPECT_EQ(r.stats.cache_hits, 0u);
  EXPECT_GE(r.stats.total.wall_s, r.stats.analyze.wall_s);
  EXPECT_GE(r.stats.analyze.wall_s, 0.0);
  EXPECT_GE(r.stats.analyze.cpu_s, 0.0);
  const std::string s = r.stats.summary();
  EXPECT_NE(s.find("6 net(s)"), std::string::npos);
  EXPECT_NE(s.find("2 thread(s)"), std::string::npos);
}

}  // namespace
}  // namespace rct::engine
