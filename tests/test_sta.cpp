#include "sta/path_timer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/generators.hpp"

namespace rct::sta {
namespace {

TEST(Library, BuiltinLookup) {
  const auto lib = builtin_library();
  EXPECT_GE(lib.size(), 5u);
  const Gate& inv = find_gate(lib, "inv_x1");
  EXPECT_GT(inv.drive_resistance, 0.0);
  EXPECT_GT(inv.input_capacitance, 0.0);
  EXPECT_THROW((void)find_gate(lib, "nope"), std::out_of_range);
}

TEST(LoadNet, AddsDriverSectionAndLoads) {
  const RCTree wire = gen::line(3, 10.0, 1e-15, 100.0, 10e-15);
  const RCTree net = load_net(wire, 500.0, {{wire.at("n4"), 8e-15}});
  ASSERT_EQ(net.size(), wire.size() + 1);
  EXPECT_EQ(net.name(0), "drv");
  EXPECT_DOUBLE_EQ(net.resistance(0), 500.0);
  EXPECT_DOUBLE_EQ(net.capacitance(0), 0.0);
  EXPECT_DOUBLE_EQ(net.capacitance(net.at("n4")), 10e-15 + 8e-15);
  // Tree shape preserved: n1's parent is now drv.
  EXPECT_EQ(net.parent(net.at("n1")), net.at("drv"));
}

TEST(LoadNet, Validation) {
  const RCTree wire = gen::line(2, 10.0, 1e-15, 100.0, 10e-15);
  EXPECT_THROW((void)load_net(wire, 0.0, {}), std::invalid_argument);
  EXPECT_THROW((void)load_net(wire, 100.0, {{99, 1e-15}}), std::invalid_argument);
}

std::vector<Stage> demo_path() {
  const auto lib = builtin_library();
  Stage s1;
  s1.driver = find_gate(lib, "inv_x1");
  s1.wire = gen::line(4, 20.0, 2e-15, 80.0, 15e-15);
  s1.sink = "n5";
  s1.sink_load = find_gate(lib, "buf_x2").input_capacitance;
  Stage s2;
  s2.driver = find_gate(lib, "buf_x2");
  s2.wire = gen::line(6, 20.0, 2e-15, 120.0, 20e-15);
  s2.sink = "n7";
  s2.sink_load = find_gate(lib, "dff_x1").input_capacitance;
  return {s1, s2};
}

TEST(TimePath, BoundsBracketExact) {
  const auto timing = time_path(demo_path(), 0.0, /*with_exact=*/true);
  ASSERT_EQ(timing.stages.size(), 2u);
  ASSERT_TRUE(timing.path_exact.has_value());
  EXPECT_LE(timing.path_lower, *timing.path_exact * (1 + 1e-9));
  EXPECT_GE(timing.path_upper, *timing.path_exact * (1 - 1e-9));
  for (const auto& st : timing.stages) {
    ASSERT_TRUE(st.delay_exact.has_value());
    EXPECT_LE(st.delay_lower, *st.delay_exact * (1 + 1e-9));
    EXPECT_GE(st.delay_upper, *st.delay_exact * (1 - 1e-9));
  }
}

TEST(TimePath, SlewSigmaAccumulates) {
  const auto timing = time_path(demo_path(), 0.0, false);
  EXPECT_GT(timing.stages[0].slew_sigma, 0.0);
  EXPECT_GT(timing.stages[1].slew_sigma, timing.stages[0].slew_sigma);
  // Quadrature accumulation from a nonzero input slew.
  const double s_in = 50e-12;
  const auto with_slew = time_path(demo_path(), s_in, false);
  const double expect0 =
      std::sqrt(s_in * s_in + timing.stages[0].slew_sigma * timing.stages[0].slew_sigma);
  EXPECT_NEAR(with_slew.stages[0].slew_sigma, expect0, 1e-15);
}

TEST(TimePath, UpperIsSumOfStageElmorePlusIntrinsic) {
  const auto path = demo_path();
  const auto timing = time_path(path, 0.0, false);
  double want = 0.0;
  for (const auto& stage : path) {
    std::vector<SinkLoad> loads;
    loads.push_back({stage.wire.at(stage.sink), stage.sink_load});
    const RCTree net = load_net(stage.wire, stage.driver.drive_resistance, loads);
    want += stage.driver.intrinsic_delay + moments::elmore_delays(net)[net.at(stage.sink)];
  }
  EXPECT_NEAR(timing.path_upper, want, 1e-15);
}

TEST(TimePath, ExtraLoadsIncreaseDelay) {
  auto path = demo_path();
  const auto base = time_path(path, 0.0, false);
  path[0].extra_loads.push_back({path[0].wire.at("n3"), 40e-15});
  const auto loaded = time_path(path, 0.0, false);
  EXPECT_GT(loaded.path_upper, base.path_upper);
}

TEST(FormatPathTiming, MentionsGatesAndTotals) {
  const auto text = format_path_timing(time_path(demo_path(), 0.0, true));
  EXPECT_NE(text.find("inv_x1"), std::string::npos);
  EXPECT_NE(text.find("buf_x2"), std::string::npos);
  EXPECT_NE(text.find("path:"), std::string::npos);
  EXPECT_NE(text.find("exact"), std::string::npos);
}

}  // namespace
}  // namespace rct::sta
