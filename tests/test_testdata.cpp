// Integration tests over the committed testdata decks: parse real-looking
// inputs, run the full analysis stack, and check the paper's invariants on
// every probe/load — the closest thing to a user's end-to-end flow.

#include <gtest/gtest.h>

#include <string>

#include "core/bounds.hpp"
#include "core/effective_capacitance.hpp"
#include "core/penfield_rubinstein.hpp"
#include "core/report.hpp"
#include "rctree/netlist_parser.hpp"
#include "rctree/spef.hpp"
#include "sim/exact.hpp"

#ifndef RCT_TESTDATA_DIR
#define RCT_TESTDATA_DIR "testdata"
#endif

namespace rct {
namespace {

std::string data(const char* file) { return std::string(RCT_TESTDATA_DIR) + "/" + file; }

void check_tree_invariants(const RCTree& t, const std::vector<NodeId>& focus) {
  const sim::ExactAnalysis exact(t);
  const auto bounds = core::delay_bounds(t);
  const core::PrhBounds prh(t);
  for (NodeId i : focus) {
    const double actual = exact.step_delay(i);
    EXPECT_LE(actual, bounds[i].upper * (1 + 1e-9)) << t.name(i);
    EXPECT_GE(actual, bounds[i].lower * (1 - 1e-9)) << t.name(i);
    EXPECT_LE(prh.t_min(i, 0.5), actual * (1 + 1e-9)) << t.name(i);
    EXPECT_GE(prh.t_max(i, 0.5), actual * (1 - 1e-9)) << t.name(i);
  }
}

TEST(Testdata, ClockSpineParsesAndObeysBounds) {
  const ParsedNetlist p = parse_netlist_file(data("clock_spine.sp"));
  EXPECT_EQ(p.title, "clock_spine");
  EXPECT_GE(p.tree.size(), 20u);
  ASSERT_GE(p.probes.size(), 5u);
  check_tree_invariants(p.tree, p.probes);
}

TEST(Testdata, BusBitParsesAndObeysBounds) {
  const ParsedNetlist p = parse_netlist_file(data("bus_bit.sp"));
  ASSERT_EQ(p.probes.size(), 2u);
  check_tree_invariants(p.tree, p.probes);
  // The far receiver is slower than the mid-route one.
  const sim::ExactAnalysis exact(p.tree);
  EXPECT_GT(exact.step_delay(p.tree.at("rx2")), exact.step_delay(p.tree.at("rx1")));
}

TEST(Testdata, BusBitReportRenders) {
  const ParsedNetlist p = parse_netlist_file(data("bus_bit.sp"));
  const std::string text = core::format_report(core::build_report(p.tree));
  EXPECT_NE(text.find("rx1"), std::string::npos);
  EXPECT_NE(text.find("rx2"), std::string::npos);
}

TEST(Testdata, SpefTwoNetsFullFlow) {
  const SpefFile f = parse_spef_file(data("two_nets.spef"));
  ASSERT_EQ(f.nets.size(), 2u);
  EXPECT_EQ(f.design, "testdata");
  for (const SpefNet& net : f.nets) {
    ASSERT_FALSE(net.loads.empty());
    check_tree_invariants(net.tree, net.loads);
    // Effective capacitance is physical on every net.
    const auto ceff = core::effective_capacitance(net.tree, 500.0);
    EXPECT_GT(ceff.ceff, 0.0);
    EXPECT_LE(ceff.ceff, ceff.total * (1 + 1e-12));
  }
}

TEST(Testdata, SpefRoundTripPreservesLoadsAndTopology) {
  const SpefFile f = parse_spef_file(data("two_nets.spef"));
  const SpefFile back = parse_spef(write_spef(f));
  ASSERT_EQ(back.nets.size(), f.nets.size());
  for (std::size_t n = 0; n < f.nets.size(); ++n) {
    EXPECT_EQ(back.nets[n].tree.size(), f.nets[n].tree.size());
    EXPECT_EQ(back.nets[n].loads.size(), f.nets[n].loads.size());
  }
}

TEST(Testdata, NetlistRoundTripThroughSpef) {
  // deck -> tree -> SPEF -> tree: Elmore delays survive the format hop.
  const ParsedNetlist p = parse_netlist_file(data("clock_spine.sp"));
  const SpefFile back = parse_spef(write_spef(spef_from_tree(p.tree, "clk")));
  const auto td_a = moments::elmore_delays(p.tree);
  const auto td_b = moments::elmore_delays(back.nets[0].tree);
  for (NodeId i = 0; i < p.tree.size(); ++i) {
    const NodeId j = back.nets[0].tree.at(p.tree.name(i));
    EXPECT_NEAR(td_b[j], td_a[i], 1e-5 * td_a[i]);
  }
}

}  // namespace
}  // namespace rct
