#include "linalg/polynomial.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace rct::linalg {
namespace {

std::vector<double> sorted_real_parts(std::vector<std::complex<double>> roots) {
  std::vector<double> re;
  re.reserve(roots.size());
  for (const auto& r : roots) re.push_back(r.real());
  std::sort(re.begin(), re.end());
  return re;
}

TEST(PolynomialEval, Horner) {
  // p(x) = 1 + 2x + 3x^2 at x = 2 -> 17.
  const std::vector<double> c{1.0, 2.0, 3.0};
  EXPECT_NEAR(polynomial_eval(c, 2.0).real(), 17.0, 1e-12);
  EXPECT_NEAR(polynomial_eval(c, 2.0).imag(), 0.0, 1e-12);
}

TEST(PolynomialRoots, Linear) {
  // 2x - 4 = 0 -> x = 2.
  const auto roots = polynomial_roots(std::vector<double>{-4.0, 2.0});
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_NEAR(roots[0].real(), 2.0, 1e-10);
}

TEST(PolynomialRoots, QuadraticRealRoots) {
  // (x-1)(x-3) = x^2 - 4x + 3.
  const auto re = sorted_real_parts(polynomial_roots(std::vector<double>{3.0, -4.0, 1.0}));
  EXPECT_NEAR(re[0], 1.0, 1e-9);
  EXPECT_NEAR(re[1], 3.0, 1e-9);
}

TEST(PolynomialRoots, QuadraticComplexPair) {
  // x^2 + 1 -> +-i.
  const auto roots = polynomial_roots(std::vector<double>{1.0, 0.0, 1.0});
  ASSERT_EQ(roots.size(), 2u);
  std::vector<double> im{roots[0].imag(), roots[1].imag()};
  std::sort(im.begin(), im.end());
  EXPECT_NEAR(im[0], -1.0, 1e-9);
  EXPECT_NEAR(im[1], 1.0, 1e-9);
  EXPECT_NEAR(roots[0].real(), 0.0, 1e-9);
}

TEST(PolynomialRoots, CubicWithSpreadRoots) {
  // (x-1)(x-10)(x-100).
  const std::vector<double> c{-1000.0, 1110.0, -111.0, 1.0};
  const auto re = sorted_real_parts(polynomial_roots(c));
  EXPECT_NEAR(re[0], 1.0, 1e-7);
  EXPECT_NEAR(re[1], 10.0, 1e-6);
  EXPECT_NEAR(re[2], 100.0, 1e-5);
}

TEST(PolynomialRoots, NonMonicAndLeadingZeroCoefficients) {
  // 2(x-1)(x-2) with an appended zero coefficient.
  const auto re = sorted_real_parts(polynomial_roots(std::vector<double>{4.0, -6.0, 2.0, 0.0}));
  ASSERT_EQ(re.size(), 2u);
  EXPECT_NEAR(re[0], 1.0, 1e-9);
  EXPECT_NEAR(re[1], 2.0, 1e-9);
}

TEST(PolynomialRoots, DegreeZeroThrows) {
  EXPECT_THROW((void)polynomial_roots(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW((void)polynomial_roots(std::vector<double>{1.0, 0.0}), std::invalid_argument);
}

TEST(PolynomialRoots, ResidualIsSmallOnRandomPolys) {
  // Verify p(root) ~ 0 for a batch of polynomials built from known roots.
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<double> roots_true;
    for (int k = 0; k < 5; ++k)
      roots_true.push_back(-1.0 - static_cast<double>(k * (rep + 1)) * 0.37);
    // Build coefficients of prod (x - r).
    std::vector<double> c{1.0};
    for (double r : roots_true) {
      std::vector<double> next(c.size() + 1, 0.0);
      for (std::size_t i = 0; i < c.size(); ++i) {
        next[i + 1] += c[i];
        next[i] -= r * c[i];
      }
      c = std::move(next);
    }
    std::reverse(c.begin(), c.end());  // constant term first
    const auto got = polynomial_roots(c);
    double scale = 0.0;
    for (double v : c) scale = std::max(scale, std::abs(v));
    for (const auto& root : got)
      EXPECT_LT(std::abs(polynomial_eval(c, root)), 1e-6 * scale);
  }
}

}  // namespace
}  // namespace rct::linalg
