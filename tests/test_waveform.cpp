#include "sim/waveform.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rct::sim {
namespace {

Waveform ramp_wave() {
  // v = t on [0, 1], 11 samples.
  auto t = uniform_grid(1.0, 11);
  auto v = t;
  return {std::move(t), std::move(v)};
}

TEST(Waveform, ValidatesInput) {
  EXPECT_THROW(Waveform({}, {}), std::invalid_argument);
  EXPECT_THROW(Waveform({0.0, 1.0}, {0.0}), std::invalid_argument);
  EXPECT_THROW(Waveform({0.0, 0.0}, {0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Waveform({1.0, 0.5}, {0.0, 1.0}), std::invalid_argument);
}

TEST(Waveform, ValueAtInterpolatesAndClamps) {
  const Waveform w = ramp_wave();
  EXPECT_DOUBLE_EQ(w.value_at(0.55), 0.55);
  EXPECT_DOUBLE_EQ(w.value_at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value_at(2.0), 1.0);
}

TEST(Waveform, FirstRiseCrossing) {
  const Waveform w = ramp_wave();
  const auto c = w.first_rise_crossing(0.5);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(*c, 0.5, 1e-12);
  EXPECT_FALSE(w.first_rise_crossing(2.0).has_value());
}

TEST(Waveform, CrossingAtInitialValue) {
  const Waveform w({0.0, 1.0}, {0.7, 0.9});
  const auto c = w.first_rise_crossing(0.5);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, 0.0);
}

TEST(Waveform, LastCrossingOfNonMonotone) {
  const Waveform w({0.0, 1.0, 2.0, 3.0}, {0.0, 1.0, 0.0, 1.0});
  const auto c = w.last_crossing(0.5);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(*c, 2.5, 1e-12);
}

TEST(Waveform, RiseTime1090OfLinearRamp) {
  const Waveform w = ramp_wave();
  const auto rt = w.rise_time_10_90(1.0);
  ASSERT_TRUE(rt.has_value());
  EXPECT_NEAR(*rt, 0.8, 1e-12);
}

TEST(Waveform, MonotoneChecks) {
  EXPECT_TRUE(ramp_wave().is_monotone_nondecreasing());
  const Waveform w({0.0, 1.0, 2.0}, {0.0, 1.0, 0.5});
  EXPECT_FALSE(w.is_monotone_nondecreasing());
  EXPECT_TRUE(w.is_monotone_nondecreasing(0.6));  // slack absorbs the dip
}

TEST(Waveform, UnimodalChecks) {
  const Waveform peak({0.0, 1.0, 2.0, 3.0}, {0.0, 2.0, 1.0, 0.5});
  EXPECT_TRUE(peak.is_unimodal());
  const Waveform twin({0.0, 1.0, 2.0, 3.0, 4.0}, {0.0, 2.0, 0.5, 2.0, 0.0});
  EXPECT_FALSE(twin.is_unimodal());
  EXPECT_TRUE(ramp_wave().is_unimodal());  // monotone counts as unimodal
}

TEST(Waveform, IntegrateLinear) {
  EXPECT_NEAR(ramp_wave().integrate(), 0.5, 1e-12);
}

TEST(Waveform, IntegralWaveformEndsAtTotal) {
  const Waveform in = ramp_wave().integral();
  EXPECT_DOUBLE_EQ(in.value(0), 0.0);
  EXPECT_NEAR(in.values().back(), 0.5, 1e-12);
}

TEST(Waveform, DerivativeOfRampIsOne) {
  const Waveform d = ramp_wave().derivative();
  for (double v : d.values()) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(Waveform, DensityStatsOfExponential) {
  // h(t) = e^{-t}: mean 1, mu2 = 1, mu3 = 2, median ln 2, mode 0, skew 2.
  const auto t = uniform_grid(40.0, 40001);
  std::vector<double> v(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) v[i] = std::exp(-t[i]);
  const Waveform w(t, v);
  EXPECT_NEAR(w.density_mean(), 1.0, 1e-3);
  EXPECT_NEAR(w.density_central_moment(2), 1.0, 3e-3);
  EXPECT_NEAR(w.density_central_moment(3), 2.0, 1e-2);
  EXPECT_NEAR(w.density_median(), std::log(2.0), 1e-3);
  EXPECT_NEAR(w.density_mode(), 0.0, 1e-12);
  EXPECT_NEAR(w.density_skewness(), 2.0, 1e-2);
}

TEST(Waveform, DensityStatsOfSymmetricTriangle) {
  // Triangle on [0,2] peaking at 1: mean = median = mode = 1, skew 0.
  const auto t = uniform_grid(2.0, 2001);
  std::vector<double> v(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) v[i] = 1.0 - std::abs(t[i] - 1.0);
  const Waveform w(t, v);
  EXPECT_NEAR(w.density_mean(), 1.0, 1e-9);
  EXPECT_NEAR(w.density_median(), 1.0, 1e-3);
  EXPECT_NEAR(w.density_mode(), 1.0, 1e-3);
  EXPECT_NEAR(w.density_skewness(), 0.0, 1e-9);
}

TEST(UniformGrid, Validation) {
  EXPECT_THROW((void)uniform_grid(1.0, 1), std::invalid_argument);
  EXPECT_THROW((void)uniform_grid(0.0, 10), std::invalid_argument);
  const auto g = uniform_grid(2.0, 5);
  EXPECT_DOUBLE_EQ(g.front(), 0.0);
  EXPECT_DOUBLE_EQ(g.back(), 2.0);
  EXPECT_DOUBLE_EQ(g[1], 0.5);
}

}  // namespace
}  // namespace rct::sim
