#include "core/effective_capacitance.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "rctree/generators.hpp"

namespace rct::core {
namespace {

TEST(EffectiveCap, AlwaysBetweenNearCapAndTotal) {
  for (std::uint64_t seed : {1u, 3u, 5u, 7u}) {
    const RCTree t = gen::random_tree(30, seed);
    const PiModel pi = input_pi_model(t);
    for (double rd : {10.0, 100.0, 1000.0, 10000.0}) {
      const auto e = effective_capacitance(pi, rd);
      EXPECT_GE(e.ceff, pi.c1 * (1 - 1e-12));
      EXPECT_LE(e.ceff, (pi.c1 + pi.c2) * (1 + 1e-12));
      EXPECT_GE(e.shielding, 0.0);
      EXPECT_LT(e.shielding, 1.0);
    }
  }
}

TEST(EffectiveCap, NoWireResistanceMeansNoShielding) {
  // R2 -> 0: the far cap is fully visible.
  const PiModel pi{1e-12, 1e-12, 1e-3};
  const auto e = effective_capacitance(pi, 500.0);
  EXPECT_NEAR(e.ceff, 2e-12, 1e-17);
  EXPECT_NEAR(e.shielding, 0.0, 1e-5);
}

TEST(EffectiveCap, HugeWireResistanceHidesFarCap) {
  const PiModel pi{1e-12, 1e-12, 1e9};
  const auto e = effective_capacitance(pi, 500.0);
  EXPECT_NEAR(e.ceff, 1e-12, 1e-15);
  EXPECT_GT(e.shielding, 0.45);
}

TEST(EffectiveCap, StrongDriverSeesLessCapacitance) {
  // A faster driver (smaller Rd) has a shorter window, so shielding grows.
  const RCTree t = gen::line(10, 10.0, 10e-15, 200.0, 40e-15);
  const auto weak = effective_capacitance(t, 5000.0);
  const auto strong = effective_capacitance(t, 50.0);
  EXPECT_GT(weak.ceff, strong.ceff);
  EXPECT_GT(strong.shielding, weak.shielding);
}

TEST(EffectiveCap, ConvergesQuickly) {
  const RCTree t = gen::random_tree(40, 17);
  const auto e = effective_capacitance(t, 300.0);
  EXPECT_LE(e.iterations, 60);
  EXPECT_GT(e.iterations, 0);
}

TEST(EffectiveCap, NegligibleWireResistanceMeansNegligibleShielding) {
  // An RCTree load always reduces through its wire resistance; with a
  // micro-ohm wire the reduction must recover the lumped value.
  const RCTree t = testing::single_rc(1e-6, 2e-12);
  const auto e = effective_capacitance(t, 300.0);
  EXPECT_NEAR(e.ceff, 2e-12, 1e-18);
  EXPECT_NEAR(e.shielding, 0.0, 1e-6);
}

TEST(EffectiveCap, UnreducibleLoadFallsBackToTotal) {
  // All-zero capacitance cannot be pi-reduced; the fallback reports the
  // (zero) lumped total instead of throwing.
  RCTreeBuilder b;
  b.add_node("x", kSource, 100.0, 0.0);
  const RCTree t = std::move(b).build();
  const auto e = effective_capacitance(t, 300.0);
  EXPECT_DOUBLE_EQ(e.ceff, 0.0);
  EXPECT_DOUBLE_EQ(e.shielding, 0.0);
}

TEST(EffectiveCap, Validation) {
  const PiModel pi{1e-12, 1e-12, 100.0};
  EXPECT_THROW((void)effective_capacitance(pi, 0.0), std::invalid_argument);
}

TEST(EffectiveCap, TotalMatchesTreeCapacitance) {
  const RCTree t = gen::random_tree(25, 9);
  const auto e = effective_capacitance(t, 200.0);
  EXPECT_NEAR(e.total, t.total_capacitance(), 1e-9 * e.total);
}

}  // namespace
}  // namespace rct::core
