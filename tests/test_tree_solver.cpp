#include "sim/tree_solver.hpp"

#include <gtest/gtest.h>

#include <random>

#include "helpers.hpp"
#include "linalg/dense_matrix.hpp"
#include "rctree/generators.hpp"
#include "sim/mna.hpp"

namespace rct::sim {
namespace {

// Reference: dense (G + aC) solve via LU.
std::vector<double> dense_solve(const RCTree& tree, double a, const std::vector<double>& rhs) {
  Mna m = assemble_mna(tree);
  for (std::size_t i = 0; i < tree.size(); ++i) m.conductance(i, i) += a * m.capacitance[i];
  return linalg::LuFactor(m.conductance).solve(rhs);
}

TEST(TreeSystem, SingleNodeClosedForm) {
  const RCTree t = testing::single_rc(1000.0, 1e-12);
  const double a = 1e9;
  const TreeSystem sys(t, a);
  const auto x = sys.solve({1.0});
  EXPECT_NEAR(x[0], 1.0 / (1e-3 + a * 1e-12), 1e-12);
}

TEST(TreeSystem, MatchesDenseOnSmallTree) {
  const RCTree t = testing::small_tree();
  const double a = 2.0 / 1e-11;
  const TreeSystem sys(t, a);
  const std::vector<double> rhs{1.0, -2.0, 0.5, 3.0};
  const auto x = sys.solve(rhs);
  const auto want = dense_solve(t, a, rhs);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], want[i], 1e-12 * std::abs(want[i]));
}

class TreeSystemRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeSystemRandom, MatchesDenseOnRandomTrees) {
  const RCTree t = gen::random_tree(60, GetParam());
  std::mt19937_64 rng(GetParam() * 31 + 7);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  std::vector<double> rhs(t.size());
  for (double& v : rhs) v = uni(rng);
  for (double a : {0.0, 1e6, 1e10}) {
    const auto x = TreeSystem(t, a).solve(rhs);
    const auto want = dense_solve(t, a, rhs);
    for (std::size_t i = 0; i < x.size(); ++i)
      EXPECT_NEAR(x[i], want[i], 1e-9 * (std::abs(want[i]) + 1e-6));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeSystemRandom, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(TreeSystem, SolveIsConsistentWithResidual) {
  const RCTree t = gen::random_tree(100, 99);
  const double a = 1e8;
  std::vector<double> rhs(t.size(), 1.0);
  const auto x = TreeSystem(t, a).solve(rhs);
  // Apply (G + aC) x manually and compare to rhs.
  Mna m = assemble_mna(t);
  for (std::size_t i = 0; i < t.size(); ++i) m.conductance(i, i) += a * m.capacitance[i];
  const auto back = m.conductance.multiply(x);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_NEAR(back[i], 1.0, 1e-9);
}

TEST(TreeSystem, NegativeShiftThrows) {
  EXPECT_THROW(TreeSystem(testing::single_rc(), -1.0), std::invalid_argument);
}

TEST(TreeSystem, SizeMismatchThrows) {
  const TreeSystem sys(testing::small_tree(), 0.0);
  std::vector<double> bad(2, 0.0);
  EXPECT_THROW(sys.solve_in_place(bad), std::invalid_argument);
}

TEST(TreeSystem, DeepLineDoesNotOverflowStack) {
  const RCTree t = gen::line(100000, 10.0, 0.0, 1.0, 1e-15);
  const TreeSystem sys(t, 1e6);
  std::vector<double> rhs(t.size(), 1e-3);
  const auto x = sys.solve(rhs);
  EXPECT_EQ(x.size(), t.size());
  for (double v : x) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace rct::sim
