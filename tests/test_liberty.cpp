#include "sta/liberty.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#ifndef RCT_TESTDATA_DIR
#define RCT_TESTDATA_DIR "testdata"
#endif

namespace rct::sta {
namespace {

std::string lib_path() { return std::string(RCT_TESTDATA_DIR) + "/demo.lib"; }

TEST(Liberty, ParsesDemoLibrary) {
  const LibertyLibrary lib = parse_liberty_file(lib_path());
  EXPECT_EQ(lib.name, "rct_demo");
  EXPECT_DOUBLE_EQ(lib.time_unit, 1e-9);
  EXPECT_DOUBLE_EQ(lib.cap_unit, 1e-12);
  ASSERT_EQ(lib.cells.size(), 2u);
  EXPECT_EQ(lib.cells[0].name, "inv_demo");
  EXPECT_EQ(lib.cells[1].name, "buf_demo");
}

TEST(Liberty, PinCapacitancesScaled) {
  const LibertyLibrary lib = parse_liberty_file(lib_path());
  const LibertyCell& inv = lib.cell("inv_demo");
  ASSERT_TRUE(inv.input_caps.contains("A"));
  EXPECT_NEAR(inv.input_caps.at("A"), 0.008e-12, 1e-20);
}

TEST(Liberty, TablesScaledToSeconds) {
  const LibertyLibrary lib = parse_liberty_file(lib_path());
  const LibertyCell& inv = lib.cell("inv_demo");
  ASSERT_EQ(inv.arcs.size(), 1u);
  const LibertyArc& arc = inv.arcs[0];
  EXPECT_EQ(arc.related_pin, "A");
  ASSERT_TRUE(arc.cell_rise.has_value());
  ASSERT_TRUE(arc.rise_transition.has_value());
  // Grid corner: slew 0.01 ns, load 0.005 pF -> delay 0.020 ns.
  EXPECT_NEAR(arc.cell_rise->lookup(0.010e-9, 0.005e-12), 0.020e-9, 1e-15);
  // Interpolated interior point stays within the table range.
  const double mid = arc.cell_rise->lookup(0.05e-9, 0.01e-12);
  EXPECT_GT(mid, 0.020e-9);
  EXPECT_LT(mid, 0.152e-9);
}

TEST(Liberty, UnknownGroupsAndAttributesSkipped) {
  const LibertyLibrary lib = parse_liberty_file(lib_path());
  // operating_conditions and 'area' must not break anything.
  EXPECT_EQ(lib.cells.size(), 2u);
}

TEST(Liberty, CellLookupThrowsOnMissing) {
  const LibertyLibrary lib = parse_liberty_file(lib_path());
  EXPECT_THROW((void)lib.cell("nope"), LibertyError);
}

TEST(Liberty, MalformedInputsReportLineNumbers) {
  try {
    (void)parse_liberty("library (x) {\n  cell (a) {\n    pin (A) {\n");
    FAIL() << "expected LibertyError";
  } catch (const LibertyError& e) {
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
  }
  EXPECT_THROW((void)parse_liberty("cell (a) { }"), LibertyError);  // no library
  EXPECT_THROW((void)parse_liberty("library (x) { }"), LibertyError);  // no cells
  EXPECT_THROW((void)parse_liberty("library (x) { time_unit : \"1fortnight\"; cell (a) {} }"),
               LibertyError);
}

TEST(Liberty, TableShapeValidation) {
  const char* bad =
      "library (x) { cell (a) { pin (Z) { timing () {"
      "cell_rise (t) { index_1 (\"1, 2\"); index_2 (\"1\"); values (\"1\"); } } } } }";
  EXPECT_THROW((void)parse_liberty(bad), LibertyError);
}

TEST(Liberty, LinearizeProducesUsableGate) {
  const LibertyLibrary lib = parse_liberty_file(lib_path());
  const Gate g = linearize(lib.cell("inv_demo"));
  EXPECT_EQ(g.name, "inv_demo");
  EXPECT_NEAR(g.input_capacitance, 0.008e-12, 1e-20);
  EXPECT_GT(g.drive_resistance, 100.0);
  EXPECT_GE(g.intrinsic_delay, 0.0);
  // Fit quality: the linearized model reproduces the fast-slew table within
  // ~30% across the load axis (delay = intrinsic + ln2 R C).
  const DelayTable& t = *lib.cell("inv_demo").arcs[0].cell_rise;
  for (double load : t.load_axis()) {
    const double table = t.lookup(t.slew_axis().front(), load);
    const double model = g.intrinsic_delay + std::log(2.0) * g.drive_resistance * load;
    EXPECT_NEAR(model, table, 0.3 * table);
  }
}

TEST(Liberty, LinearizeRequiresCellRise) {
  LibertyCell bare;
  bare.name = "x";
  EXPECT_THROW((void)linearize(bare), LibertyError);
}

TEST(Liberty, FileNotFoundThrows) {
  EXPECT_THROW((void)parse_liberty_file("/nonexistent.lib"), LibertyError);
}

}  // namespace
}  // namespace rct::sta
