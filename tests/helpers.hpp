#pragma once
// Shared test fixtures: analytic reference circuits and tolerance helpers.

#include <gtest/gtest.h>

#include <cmath>

#include "rctree/rctree.hpp"

namespace rct::testing {

/// EXPECT that two doubles agree to a relative tolerance (absolute floor
/// `abs_floor` guards comparisons near zero).
inline void ExpectRel(double got, double want, double rel, double abs_floor = 0.0) {
  const double tol = std::max(rel * std::abs(want), abs_floor);
  EXPECT_NEAR(got, want, tol);
}

/// Single-section RC: source -R- n1(C).  Everything about it is closed form:
/// step = 1 - e^{-t/RC}, T_D = sigma = RC, skewness = 2, exact 50% delay =
/// RC ln 2, PRH bounds are exact.
inline RCTree single_rc(double r = 1000.0, double c = 1e-12) {
  RCTreeBuilder b;
  b.add_node("n1", kSource, r, c);
  return std::move(b).build();
}

/// Two-section RC line with distinct values.
inline RCTree two_rc(double r1 = 1000.0, double c1 = 1e-12, double r2 = 2000.0,
                     double c2 = 0.5e-12) {
  RCTreeBuilder b;
  const NodeId n1 = b.add_node("n1", kSource, r1, c1);
  b.add_node("n2", n1, r2, c2);
  return std::move(b).build();
}

/// Small asymmetric tree used across module tests:
///   src -100- a(1p) -200- b(2p) -300- c(0.5p)
///                    \-150- d(1.5p)
inline RCTree small_tree() {
  RCTreeBuilder b;
  const NodeId a = b.add_node("a", kSource, 100.0, 1e-12);
  const NodeId bb = b.add_node("b", a, 200.0, 2e-12);
  b.add_node("c", bb, 300.0, 0.5e-12);
  b.add_node("d", a, 150.0, 1.5e-12);
  return std::move(b).build();
}

}  // namespace rct::testing
