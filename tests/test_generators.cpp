#include "rctree/generators.hpp"

#include <gtest/gtest.h>

#include "moments/path_tracing.hpp"

namespace rct::gen {
namespace {

TEST(Line, TopologyAndValues) {
  const RCTree t = line(4, 50.0, 0.1e-12, 100.0, 0.2e-12);
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t.parent(0), kSource);
  EXPECT_DOUBLE_EQ(t.resistance(0), 50.0);
  for (NodeId i = 1; i < 5; ++i) {
    EXPECT_EQ(t.parent(i), i - 1);
    EXPECT_DOUBLE_EQ(t.resistance(i), 100.0);
    EXPECT_DOUBLE_EQ(t.capacitance(i), 0.2e-12);
  }
  EXPECT_EQ(t.leaves().size(), 1u);
}

TEST(Line, ElmoreMatchesClosedForm) {
  // Uniform line after driver: T_D(leaf) = r_d*Ctot + sum_i r*(n-i+1)*c.
  const std::size_t n = 10;
  const double rd = 10.0;
  const double cd = 0.0;
  const double r = 100.0;
  const double c = 0.1e-12;
  const RCTree t = line(n, rd, cd, r, c);
  const auto td = moments::elmore_delays(t);
  double want = rd * (static_cast<double>(n) * c);
  for (std::size_t k = 1; k <= n; ++k) want += r * (static_cast<double>(n - k + 1)) * c;
  EXPECT_NEAR(td.back(), want, 1e-15 * 1e9);
}

TEST(Line, RejectsZeroSegments) { EXPECT_THROW((void)line(0, 1, 1, 1, 1), std::invalid_argument); }

TEST(Balanced, SizeIsGeometricSum) {
  const RCTree t = balanced(3, 2, 10.0, 1e-15, 100.0, 1e-15);
  EXPECT_EQ(t.size(), 1u + 2u + 4u + 8u);
  EXPECT_EQ(t.leaves().size(), 8u);
}

TEST(Balanced, DepthIsUniform) {
  const RCTree t = balanced(3, 3, 10.0, 1e-15, 100.0, 1e-15);
  for (NodeId leaf : t.leaves()) EXPECT_EQ(t.depth(leaf), 4u);
}

TEST(Htree, SymmetricSinkDelays) {
  const RCTree t = htree(4, 100.0, 0.2e-12, 10e-15);
  const auto td = moments::elmore_delays(t);
  const auto leaves = t.leaves();
  ASSERT_EQ(leaves.size(), 16u);
  for (NodeId leaf : leaves) EXPECT_NEAR(td[leaf], td[leaves[0]], 1e-20);
}

TEST(Htree, LevelScalingHalvesResistance) {
  const RCTree t = htree(2, 100.0, 0.2e-12, 0.0);
  EXPECT_DOUBLE_EQ(t.resistance(0), 100.0);
  EXPECT_DOUBLE_EQ(t.resistance(1), 50.0);
  EXPECT_DOUBLE_EQ(t.resistance(3), 25.0);
}

TEST(RandomTree, Deterministic) {
  const RCTree a = random_tree(50, 7);
  const RCTree b = random_tree(50, 7);
  ASSERT_EQ(a.size(), b.size());
  for (NodeId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.parent(i), b.parent(i));
    EXPECT_DOUBLE_EQ(a.resistance(i), b.resistance(i));
    EXPECT_DOUBLE_EQ(a.capacitance(i), b.capacitance(i));
  }
}

TEST(RandomTree, DifferentSeedsDiffer) {
  const RCTree a = random_tree(50, 7);
  const RCTree b = random_tree(50, 8);
  bool differs = false;
  for (NodeId i = 0; i < a.size() && !differs; ++i)
    differs = a.resistance(i) != b.resistance(i);
  EXPECT_TRUE(differs);
}

TEST(RandomTree, ValuesWithinRanges) {
  RandomTreeOptions opt;
  opt.r_min = 100.0;
  opt.r_max = 200.0;
  opt.c_min = 1e-15;
  opt.c_max = 2e-15;
  const RCTree t = random_tree(200, 3, opt);
  for (NodeId i = 0; i < t.size(); ++i) {
    EXPECT_GE(t.resistance(i), 100.0);
    EXPECT_LE(t.resistance(i), 200.0);
    EXPECT_GE(t.capacitance(i), 1e-15);
    EXPECT_LE(t.capacitance(i), 2e-15);
  }
}

TEST(RandomTree, ZeroBushinessIsALine) {
  RandomTreeOptions opt;
  opt.bushiness = 0.0;
  const RCTree t = random_tree(30, 5, opt);
  for (NodeId i = 1; i < t.size(); ++i) EXPECT_EQ(t.parent(i), i - 1);
}

TEST(RandomTree, BadBushinessThrows) {
  RandomTreeOptions opt;
  opt.bushiness = 1.5;
  EXPECT_THROW((void)random_tree(10, 1, opt), std::invalid_argument);
}

TEST(Star, HubAndArms) {
  const RCTree t = star(5, 10.0, 1e-15, 100.0, 2e-15);
  ASSERT_EQ(t.size(), 6u);
  EXPECT_EQ(t.children(t.at("hub")).size(), 5u);
  EXPECT_EQ(t.leaves().size(), 5u);
}

}  // namespace
}  // namespace rct::gen
