#include "sta/design.hpp"

#include <gtest/gtest.h>

#include "rctree/generators.hpp"
#include "sta/path_timer.hpp"

namespace rct::sta {
namespace {

RCTree short_net() { return gen::line(2, 20.0, 2e-15, 100.0, 15e-15); }

Design two_stage_design() {
  Design d(builtin_library());
  d.add_primary_input("in", 100.0);
  d.add_instance("u1", "inv_x1");
  d.add_instance("u2", "buf_x2");
  d.add_instance("ff1", "dff_x1");
  d.add_net("in", short_net(), {{"n3", "u1"}});
  d.add_net("u1", short_net(), {{"n3", "u2"}});
  d.add_net("u2", short_net(), {{"n3", "ff1"}});
  return d;
}

TEST(Design, Validation) {
  Design d(builtin_library());
  EXPECT_THROW(d.add_instance("u1", "not_a_gate"), std::invalid_argument);
  d.add_instance("u1", "inv_x1");
  EXPECT_THROW(d.add_instance("u1", "inv_x1"), std::invalid_argument);
  EXPECT_THROW(d.add_net("in", short_net(), {{"n3", "nope"}}), std::invalid_argument);
  EXPECT_THROW(d.add_net("in", short_net(), {{"zz", "u1"}}), std::invalid_argument);
  EXPECT_THROW(d.add_primary_input("p", 0.0), std::invalid_argument);
  EXPECT_THROW((void)d.analyze(0.0), std::invalid_argument);
}

TEST(Design, ArrivalsPropagateInOrder) {
  const auto report = two_stage_design().analyze(2e-9);
  ASSERT_EQ(report.arrivals.size(), 3u);  // u1, u2, ff1 inputs
  double prev = -1.0;
  for (const auto& a : report.arrivals) {
    EXPECT_GE(a.upper, a.lower);
    EXPECT_GT(a.upper, prev);  // each stage adds delay along the chain
    prev = a.upper;
  }
}

TEST(Design, EndpointSlackAgainstClock) {
  const auto report = two_stage_design().analyze(2e-9);
  ASSERT_EQ(report.endpoints.size(), 1u);
  EXPECT_EQ(report.endpoints[0].instance, "ff1");
  EXPECT_NEAR(report.endpoints[0].setup_slack, 2e-9 - report.endpoints[0].arrival_upper,
              1e-18);
  EXPECT_GT(report.worst_arrival_upper, 0.0);
}

TEST(Design, HoldSlackUsesLowerBoundAndHoldTime) {
  const auto report = two_stage_design().analyze(2e-9);
  ASSERT_EQ(report.endpoints.size(), 1u);
  const auto& ep = report.endpoints[0];
  // Hold slack = guaranteed-earliest arrival minus the flop's hold time.
  double lower = 0.0;
  for (const auto& a : report.arrivals)
    if (a.instance == "ff1") lower = a.lower;
  const double hold = find_gate(builtin_library(), "dff_x1").hold_time;
  EXPECT_NEAR(ep.hold_slack, lower - hold, 1e-18);
  EXPECT_GT(hold, 0.0);
}

TEST(Design, FlopsRelaunchPaths) {
  // A net driven by a flop starts a fresh path: downstream arrivals do not
  // include the pre-flop logic depth.
  Design d(builtin_library());
  d.add_primary_input("in", 100.0);
  d.add_instance("u1", "inv_x1");
  d.add_instance("ff1", "dff_x1");
  d.add_instance("u2", "inv_x4");
  d.add_instance("ff2", "dff_x1");
  d.add_net("in", short_net(), {{"n3", "u1"}});
  d.add_net("u1", short_net(), {{"n3", "ff1"}});
  d.add_net("ff1", short_net(), {{"n3", "u2"}});
  d.add_net("u2", short_net(), {{"n3", "ff2"}});
  const auto report = d.analyze(2e-9);
  ASSERT_EQ(report.endpoints.size(), 2u);
  // Both endpoints see roughly two-stage depth, not cumulative 4-stage.
  const double worst = report.endpoints.front().arrival_upper;
  const double best = report.endpoints.back().arrival_upper;
  EXPECT_LT(worst, 2.0 * best + 1e-9);
}

TEST(Design, FanoutTakesWorstArrival) {
  // Two paths converge on one gate: the max-arrival wins the upper window.
  Design d(builtin_library());
  d.add_primary_input("fast", 50.0);
  d.add_primary_input("slow", 50.0);
  d.add_instance("u1", "inv_x1");
  d.add_instance("uslow", "nor2_x1");
  d.add_instance("join", "nand2_x1");
  d.add_instance("ff", "dff_x1");
  d.add_net("fast", short_net(), {{"n3", "join"}});
  d.add_net("slow", gen::line(8, 20.0, 2e-15, 300.0, 40e-15), {{"n9", "uslow"}});
  d.add_net("uslow", short_net(), {{"n3", "join"}});
  d.add_net("join", short_net(), {{"n3", "ff"}});
  const auto report = d.analyze(5e-9);

  double join_upper = 0.0;
  double join_lower = 0.0;
  for (const auto& a : report.arrivals) {
    if (a.instance == "join") {
      join_upper = a.upper;
      join_lower = a.lower;
    }
  }
  // Upper window follows the slow path (through uslow), lower the fast one.
  EXPECT_GT(join_upper, 3.0 * join_lower);
}

TEST(Design, CombinationalLoopDetected) {
  Design d(builtin_library());
  d.add_instance("u1", "inv_x1");
  d.add_instance("u2", "inv_x1");
  d.add_net("u1", short_net(), {{"n3", "u2"}});
  d.add_net("u2", short_net(), {{"n3", "u1"}});
  EXPECT_THROW((void)d.analyze(1e-9), std::invalid_argument);
}

TEST(Design, UnknownDriverDetected) {
  Design d(builtin_library());
  d.add_instance("u1", "inv_x1");
  d.add_net("ghost", short_net(), {{"n3", "u1"}});
  EXPECT_THROW((void)d.analyze(1e-9), std::invalid_argument);
}

TEST(Design, MatchesPathTimerOnALinearChain) {
  // A straight-line design must produce the same upper bound as time_path.
  Design d(builtin_library());
  d.add_primary_input("in", find_gate(builtin_library(), "inv_x1").drive_resistance);
  d.add_instance("u2", "buf_x2");
  d.add_instance("ff", "dff_x1");
  d.add_net("in", short_net(), {{"n3", "u2"}});
  d.add_net("u2", short_net(), {{"n3", "ff"}});
  const auto report = d.analyze(5e-9);

  Stage s1;
  s1.driver = find_gate(builtin_library(), "inv_x1");
  s1.driver.intrinsic_delay = 0.0;  // primary input has no intrinsic delay
  s1.wire = short_net();
  s1.sink = "n3";
  s1.sink_load = find_gate(builtin_library(), "buf_x2").input_capacitance;
  Stage s2;
  s2.driver = find_gate(builtin_library(), "buf_x2");
  s2.wire = short_net();
  s2.sink = "n3";
  s2.sink_load = find_gate(builtin_library(), "dff_x1").input_capacitance;
  const auto path = time_path({s1, s2});

  ASSERT_EQ(report.endpoints.size(), 1u);
  EXPECT_NEAR(report.endpoints[0].arrival_upper, path.path_upper, 1e-15);
}

}  // namespace
}  // namespace rct::sta
