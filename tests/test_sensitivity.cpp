#include "core/sensitivity.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/generators.hpp"
#include "rctree/transform.hpp"

namespace rct::core {
namespace {

using rct::testing::ExpectRel;

TEST(Sensitivity, HandValuesOnSmallTree) {
  const RCTree t = testing::small_tree();  // a -R100- ; b -R200- ; c -R300-; d -R150-
  const NodeId c = t.at("c");
  const auto dc = elmore_cap_sensitivities(t, c);
  // R_k,c: shared-path resistance with the source->c path {a, b, c}.
  EXPECT_DOUBLE_EQ(dc[t.at("a")], 100.0);
  EXPECT_DOUBLE_EQ(dc[t.at("b")], 300.0);
  EXPECT_DOUBLE_EQ(dc[t.at("c")], 600.0);
  EXPECT_DOUBLE_EQ(dc[t.at("d")], 100.0);  // LCA is a

  const auto dr = elmore_res_sensitivities(t, c);
  EXPECT_DOUBLE_EQ(dr[t.at("a")], 5e-12);    // full tree hangs below a's edge
  EXPECT_DOUBLE_EQ(dr[t.at("b")], 2.5e-12);  // subtree(b)
  EXPECT_DOUBLE_EQ(dr[t.at("c")], 0.5e-12);
  EXPECT_DOUBLE_EQ(dr[t.at("d")], 0.0);      // off the path
}

class SensitivityFiniteDiff : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SensitivityFiniteDiff, CapGradientMatchesFiniteDifference) {
  const RCTree t = gen::random_tree(30, GetParam());
  const NodeId node = t.size() - 1;
  const auto grad = elmore_cap_sensitivities(t, node);
  const double base = moments::elmore_delays(t)[node];
  const double h = 1e-16;  // 0.1 fF
  for (NodeId k = 0; k < t.size(); k += 3) {
    const RCTree bumped = add_cap(t, k, h);
    const double fd = (moments::elmore_delays(bumped)[node] - base) / h;
    ExpectRel(grad[k], fd, 1e-6, 1e-9);
  }
}

TEST_P(SensitivityFiniteDiff, ResGradientMatchesFiniteDifference) {
  const RCTree t = gen::random_tree(30, GetParam() + 100);
  const NodeId node = t.size() - 1;
  const auto grad = elmore_res_sensitivities(t, node);
  const double base = moments::elmore_delays(t)[node];
  for (NodeId e = 0; e < t.size(); e += 3) {
    // Rebuild with r_e bumped.
    const double h = 1e-3 * t.resistance(e);
    RCTreeBuilder b;
    for (NodeId i = 0; i < t.size(); ++i)
      b.add_node(t.name(i), t.parent(i), t.resistance(i) + (i == e ? h : 0.0),
                 t.capacitance(i));
    const RCTree bumped = std::move(b).build();
    const double fd = (moments::elmore_delays(bumped)[node] - base) / h;
    ExpectRel(grad[e], fd, 1e-6, 1e-18);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SensitivityFiniteDiff, ::testing::Values(5, 10, 15));

TEST(Sensitivity, GradientReconstructsElmore) {
  // Euler identity: T_D(i) = sum_k (dT/dc_k) c_k  (T_D is linear in caps).
  const RCTree t = gen::random_tree(40, 7);
  const auto td = moments::elmore_delays(t);
  for (NodeId node : {NodeId{0}, t.size() / 2, t.size() - 1}) {
    const auto grad = elmore_cap_sensitivities(t, node);
    double acc = 0.0;
    for (NodeId k = 0; k < t.size(); ++k) acc += grad[k] * t.capacitance(k);
    ExpectRel(acc, td[node], 1e-12);
  }
}

TEST(Sensitivity, ResGradientReconstructsElmoreToo) {
  // T_D is also linear in resistances: T_D(i) = sum_e (dT/dr_e) r_e.
  const RCTree t = gen::random_tree(40, 8);
  const auto td = moments::elmore_delays(t);
  const NodeId node = t.size() - 1;
  const auto grad = elmore_res_sensitivities(t, node);
  double acc = 0.0;
  for (NodeId e = 0; e < t.size(); ++e) acc += grad[e] * t.resistance(e);
  ExpectRel(acc, td[node], 1e-12);
}

TEST(Sensitivity, Validation) {
  const RCTree t = testing::small_tree();
  EXPECT_THROW((void)elmore_cap_sensitivities(t, 99), std::invalid_argument);
  EXPECT_THROW((void)elmore_res_sensitivities(t, 99), std::invalid_argument);
}

TEST(Sensitivity, SymmetryOfSharedResistance) {
  // R_ki = R_ik: the cap-sensitivity matrix is symmetric.
  const RCTree t = gen::random_tree(20, 21);
  for (NodeId i = 0; i < t.size(); i += 4) {
    const auto si = elmore_cap_sensitivities(t, i);
    for (NodeId k = 0; k < t.size(); k += 3) {
      const auto sk = elmore_cap_sensitivities(t, k);
      EXPECT_NEAR(si[k], sk[i], 1e-9 * (si[k] + 1.0));
    }
  }
}

}  // namespace
}  // namespace rct::core
