#include "sim/mna.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/generators.hpp"

namespace rct::sim {
namespace {

TEST(Mna, SingleRc) {
  const Mna m = assemble_mna(testing::single_rc(1000.0, 1e-12));
  ASSERT_EQ(m.capacitance.size(), 1u);
  EXPECT_DOUBLE_EQ(m.conductance(0, 0), 1e-3);
  EXPECT_DOUBLE_EQ(m.injection[0], 1e-3);
  EXPECT_DOUBLE_EQ(m.capacitance[0], 1e-12);
}

TEST(Mna, SmallTreeStamping) {
  const RCTree t = testing::small_tree();
  const Mna m = assemble_mna(t);
  const NodeId a = t.at("a");
  const NodeId b = t.at("b");
  const NodeId c = t.at("c");
  const NodeId d = t.at("d");
  // Diagonal: sum of incident conductances.
  EXPECT_DOUBLE_EQ(m.conductance(a, a), 1.0 / 100 + 1.0 / 200 + 1.0 / 150);
  EXPECT_DOUBLE_EQ(m.conductance(b, b), 1.0 / 200 + 1.0 / 300);
  EXPECT_DOUBLE_EQ(m.conductance(c, c), 1.0 / 300);
  EXPECT_DOUBLE_EQ(m.conductance(d, d), 1.0 / 150);
  // Off-diagonal symmetric -g.
  EXPECT_DOUBLE_EQ(m.conductance(a, b), -1.0 / 200);
  EXPECT_DOUBLE_EQ(m.conductance(b, a), -1.0 / 200);
  EXPECT_DOUBLE_EQ(m.conductance(a, d), -1.0 / 150);
  EXPECT_DOUBLE_EQ(m.conductance(b, c), -1.0 / 300);
  EXPECT_DOUBLE_EQ(m.conductance(a, c), 0.0);
  // Injection only at the source-adjacent node.
  EXPECT_DOUBLE_EQ(m.injection[a], 1.0 / 100);
  EXPECT_DOUBLE_EQ(m.injection[b], 0.0);
}

TEST(MnaMoments, DcGainIsOneEverywhere) {
  const auto m = mna_moments(testing::small_tree(), 0);
  for (double v : m[0]) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(MnaMoments, FirstMomentIsMinusElmore) {
  const RCTree t = testing::small_tree();
  const auto m = mna_moments(t, 1);
  const auto td = moments::elmore_delays(t);
  for (NodeId i = 0; i < t.size(); ++i) EXPECT_NEAR(m[1][i], -td[i], 1e-12 * td[i] + 1e-25);
}

TEST(MnaMoments, MatchesPathTracingToHighOrder) {
  // Independent routes to the same m_k: dense LU vs O(N) path tracing.
  const RCTree t = gen::random_tree(40, 11);
  const auto dense = mna_moments(t, 5);
  const auto traced = moments::transfer_moments(t, 5);
  for (std::size_t k = 0; k <= 5; ++k)
    for (NodeId i = 0; i < t.size(); ++i) {
      const double scale = std::abs(traced[k][i]) + 1e-300;
      EXPECT_NEAR(dense[k][i] / scale, traced[k][i] / scale, 1e-8)
          << "k=" << k << " node=" << i;
    }
}

TEST(MnaMoments, AlternatingSigns) {
  // For RC trees, m_k has sign (-1)^k (distribution moments are positive).
  const RCTree t = gen::random_tree(25, 3);
  const auto m = mna_moments(t, 6);
  for (std::size_t k = 1; k <= 6; ++k)
    for (NodeId i = 0; i < t.size(); ++i) {
      if (k % 2)
        EXPECT_LT(m[k][i], 0.0);
      else
        EXPECT_GT(m[k][i], 0.0);
    }
}

}  // namespace
}  // namespace rct::sim
