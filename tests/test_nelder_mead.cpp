#include "linalg/nelder_mead.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rct::linalg {
namespace {

TEST(NelderMead, QuadraticBowl) {
  auto f = [](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + 2.0 * (x[1] + 1.0) * (x[1] + 1.0);
  };
  const auto r = nelder_mead(f, {0.0, 0.0});
  EXPECT_NEAR(r.x[0], 3.0, 1e-5);
  EXPECT_NEAR(r.x[1], -1.0, 1e-5);
  EXPECT_LT(r.f, 1e-9);
}

TEST(NelderMead, Rosenbrock2D) {
  auto f = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions opt;
  opt.max_iter = 20000;
  auto r = nelder_mead(f, {-1.2, 1.0}, opt);
  r = nelder_mead(f, r.x, opt);  // one restart, standard for Rosenbrock
  EXPECT_NEAR(r.x[0], 1.0, 1e-4);
  EXPECT_NEAR(r.x[1], 1.0, 1e-4);
}

TEST(NelderMead, OneDimensional) {
  auto f = [](const std::vector<double>& x) { return std::cosh(x[0] - 0.5); };
  const auto r = nelder_mead(f, {5.0});
  EXPECT_NEAR(r.x[0], 0.5, 1e-5);
}

TEST(NelderMead, EmptyStartThrows) {
  EXPECT_THROW((void)nelder_mead([](const std::vector<double>&) { return 0.0; }, {}),
               std::invalid_argument);
}

TEST(NelderMead, RespectsIterationCap) {
  NelderMeadOptions opt;
  opt.max_iter = 3;
  const auto r = nelder_mead(
      [](const std::vector<double>& x) { return x[0] * x[0] + x[1] * x[1]; }, {10.0, 10.0}, opt);
  EXPECT_LE(r.iterations, 3);
}

}  // namespace
}  // namespace rct::linalg
