// Tests for src/robust (error taxonomy, deadlines, fault injection) and the
// degradation / retry / timeout machinery it powers in core::build_report
// and the batch engine, plus the malformed-SPEF corpus: every deck in
// testdata/malformed must yield structured diagnostics, never a crash.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/report.hpp"
#include "engine/batch.hpp"
#include "rctree/netlist_parser.hpp"
#include "rctree/spef.hpp"
#include "robust/deadline.hpp"
#include "robust/error.hpp"
#include "robust/fault.hpp"

#ifndef RCT_TESTDATA_DIR
#define RCT_TESTDATA_DIR "testdata"
#endif

namespace rct {
namespace {

using robust::Category;
using robust::Code;

std::string malformed(const char* file) {
  return std::string(RCT_TESTDATA_DIR) + "/malformed/" + file;
}

/// Two clean two-node nets; reused as the "nothing wrong here" baseline.
const char* kCleanSpef =
    "*SPEF \"IEEE 1481-1998\"\n"
    "*DESIGN \"clean\"\n"
    "*T_UNIT 1 NS\n*C_UNIT 1 PF\n*R_UNIT 1 OHM\n"
    "*D_NET net_a 0.1\n*CONN\n*P d1 I\n*I p1 O\n"
    "*CAP\n1 m1 0.05\n2 p1 0.05\n"
    "*RES\n1 d1 m1 100\n2 m1 p1 100\n*END\n"
    "*D_NET net_b 0.2\n*CONN\n*P d2 I\n*I p2 O\n*I p3 O\n"
    "*CAP\n1 m2 0.05\n2 p2 0.05\n3 p3 0.1\n"
    "*RES\n1 d2 m2 120\n2 m2 p2 80\n3 m2 p3 60\n*END\n";

// ---------------------------------------------------------------- taxonomy

TEST(Taxonomy, CodeNamesAndCategories) {
  EXPECT_EQ(robust::code_name(Code::kTimeout), "timeout");
  EXPECT_EQ(robust::code_name(Code::kNonPhysicalValue), "non-physical-value");
  EXPECT_EQ(robust::category_of(Code::kSyntax), Category::kParse);
  EXPECT_EQ(robust::category_of(Code::kCycle), Category::kTopology);
  EXPECT_EQ(robust::category_of(Code::kNanValue), Category::kNumeric);
  EXPECT_EQ(robust::category_of(Code::kTimeout), Category::kResource);
  EXPECT_EQ(robust::category_of(Code::kCancelled), Category::kCancelled);
  EXPECT_EQ(robust::category_name(Category::kNumeric), "numeric");
}

TEST(Taxonomy, ErrorCarriesCodeLocationAndTaggedMessage) {
  const robust::Error e(Code::kBadNumber, "bad value '12q'", {"deck.sp", 7});
  EXPECT_EQ(e.code(), Code::kBadNumber);
  EXPECT_EQ(e.category(), Category::kParse);
  EXPECT_EQ(e.location().file, "deck.sp");
  EXPECT_EQ(e.location().line, 7u);
  const std::string what = e.what();
  EXPECT_NE(what.find("deck.sp line 7"), std::string::npos);
  EXPECT_NE(what.find("bad value '12q'"), std::string::npos);
  EXPECT_NE(what.find("[parse/bad-number]"), std::string::npos);
}

TEST(Taxonomy, WithFileRebindsLocation) {
  const robust::Error e(Code::kSyntax, "oops", {"", 3}, "spef");
  const robust::Error bound = e.with_file("chip.spef");
  EXPECT_EQ(bound.location().file, "chip.spef");
  EXPECT_NE(std::string(bound.what()).find("chip.spef line 3"), std::string::npos);
}

TEST(Taxonomy, ParserErrorsAreRobustErrors) {
  // Both front ends unified on the taxonomy: catching robust::Error is
  // enough to see file, line and typed code from either parser.
  try {
    (void)parse_netlist(".input a\nRx a b\n");
    FAIL() << "expected NetlistError";
  } catch (const robust::Error& e) {
    EXPECT_EQ(e.category(), Category::kParse);
    EXPECT_EQ(e.location().line, 2u);
  }
  try {
    (void)parse_spef("*D_NET n 1\n*RES\n1 a b -5\n*END\n");
    FAIL() << "expected SpefError";
  } catch (const robust::Error& e) {
    EXPECT_EQ(e.code(), Code::kNonPhysicalValue);
    EXPECT_EQ(e.location().line, 3u);
  }
}

// ---------------------------------------------------------------- deadline

TEST(DeadlineTest, UnarmedNeverExpires) {
  const robust::Deadline none;
  EXPECT_FALSE(none.armed());
  EXPECT_FALSE(none.expired());
  EXPECT_NO_THROW(none.check("anywhere"));
  const robust::Deadline zero = robust::Deadline::after_ms(0);
  EXPECT_FALSE(zero.armed());
  EXPECT_NO_THROW(zero.check("anywhere"));
}

TEST(DeadlineTest, ExpiryThrowsTimeoutNamingCheckpoint) {
  const robust::Deadline d = robust::Deadline::after_ms(1);
  EXPECT_TRUE(d.armed());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(d.expired());
  try {
    d.check("unit.test.site");
    FAIL() << "expected timeout";
  } catch (const robust::Error& e) {
    EXPECT_EQ(e.code(), Code::kTimeout);
    EXPECT_NE(std::string(e.what()).find("unit.test.site"), std::string::npos);
  }
}

TEST(DeadlineTest, CancelThrowsCancelledEvenWhenUnarmed) {
  // An unarmed deadline is still cancellable: graceful drain uses this to
  // cut loose requests that never asked for a timeout.
  const robust::Deadline none;
  EXPECT_FALSE(none.armed());
  none.cancel();
  try {
    none.check("drain.checkpoint");
    FAIL() << "expected cancellation";
  } catch (const robust::Error& e) {
    EXPECT_EQ(e.code(), Code::kCancelled);
    EXPECT_NE(std::string(e.what()).find("drain.checkpoint"), std::string::npos);
  }
}

TEST(DeadlineTest, CancelWinsOverExpiry) {
  // When a drain cancels an already-expired deadline, the typed error is
  // "cancelled", not "timeout" — the client should not retry a drained server.
  const robust::Deadline d = robust::Deadline::after_ms(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  d.cancel();
  try {
    d.check("x");
    FAIL() << "expected cancellation";
  } catch (const robust::Error& e) {
    EXPECT_EQ(e.code(), Code::kCancelled);
  }
}

TEST(ErrorTest, OverloadCodesRoundTripNames) {
  EXPECT_EQ(robust::code_name(Code::kOverloaded), "overloaded");
  EXPECT_EQ(robust::code_name(Code::kRequestTooLarge), "request-too-large");
  EXPECT_EQ(robust::category_of(Code::kOverloaded), robust::Category::kResource);
  EXPECT_EQ(robust::category_of(Code::kRequestTooLarge), robust::Category::kResource);
}

// ----------------------------------------------------------- fault harness

#if RCT_FAULT_ENABLED

/// Every fault test must leave the process-global registry clean.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    robust::fault::disarm_all();
    robust::fault::reset_fired();
  }
  void TearDown() override {
    robust::fault::disarm_all();
    robust::fault::reset_fired();
  }
};

TEST_F(FaultTest, ThrowFiresExactlyCountTimes) {
  EXPECT_FALSE(robust::fault::any_armed());
  robust::fault::arm("ft.throw", robust::fault::Action::kThrow, 0, 2);
  EXPECT_TRUE(robust::fault::any_armed());
  EXPECT_THROW(robust::fault::maybe_throw("ft.throw"), robust::Error);
  EXPECT_THROW(robust::fault::maybe_throw("ft.throw", Code::kNonConvergence),
               robust::Error);
  EXPECT_NO_THROW(robust::fault::maybe_throw("ft.throw"));  // budget spent
  EXPECT_EQ(robust::fault::fired_count("ft.throw"), 2u);
  EXPECT_FALSE(robust::fault::any_armed());
}

TEST_F(FaultTest, CorruptYieldsNanOnlyWhileArmed) {
  EXPECT_EQ(robust::fault::corrupt("ft.nan", 1.5), 1.5);
  robust::fault::arm("ft.nan", robust::fault::Action::kNan);
  EXPECT_TRUE(std::isnan(robust::fault::corrupt("ft.nan", 1.5)));
  robust::fault::disarm("ft.nan");
  EXPECT_EQ(robust::fault::corrupt("ft.nan", 2.5), 2.5);
}

TEST_F(FaultTest, SleepDelaysForArmedDuration) {
  robust::fault::arm("ft.sleep", robust::fault::Action::kSleep, 30);
  const auto t0 = std::chrono::steady_clock::now();
  robust::fault::maybe_sleep("ft.sleep");
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 25);
}

TEST_F(FaultTest, SpecStringArmsEntriesAndToleratesBlanks) {
  EXPECT_EQ(robust::fault::arm_from_string("a=throw; b = sleep:10 x2, c=nanx1"), 3u);
  EXPECT_THROW(robust::fault::maybe_throw("a"), robust::Error);
  EXPECT_TRUE(std::isnan(robust::fault::corrupt("c", 0.0)));
  EXPECT_EQ(robust::fault::corrupt("c", 4.0), 4.0);  // x1 budget spent
}

TEST_F(FaultTest, MistypedSpecThrowsSyntaxError) {
  try {
    (void)robust::fault::arm_from_string("site=explode");
    FAIL() << "expected syntax error";
  } catch (const robust::Error& e) {
    EXPECT_EQ(e.code(), Code::kSyntax);
  }
  EXPECT_THROW((void)robust::fault::arm_from_string("=throw"), robust::Error);
}

#endif  // RCT_FAULT_ENABLED

// -------------------------------------------------- strict vs lenient SPEF

TEST(LenientSpef, AgreesWithStrictOnCleanInput) {
  const SpefFile strict = parse_spef(kCleanSpef);
  SpefParseOptions opt;
  opt.lenient = true;
  const SpefFile lenient = parse_spef(kCleanSpef, opt);
  EXPECT_TRUE(lenient.diagnostics.empty());
  EXPECT_EQ(lenient.nets_rejected, 0u);
  ASSERT_EQ(strict.nets.size(), lenient.nets.size());
  for (std::size_t i = 0; i < strict.nets.size(); ++i) {
    EXPECT_EQ(strict.nets[i].name, lenient.nets[i].name);
    EXPECT_EQ(strict.nets[i].driver, lenient.nets[i].driver);
    EXPECT_EQ(strict.nets[i].loads, lenient.nets[i].loads);
    EXPECT_EQ(strict.nets[i].tree.size(), lenient.nets[i].tree.size());
  }
}

TEST(LenientSpef, KeepsGoodNetsAroundABadOne) {
  SpefParseOptions opt;
  opt.lenient = true;
  const SpefFile f = parse_spef_file(malformed("mixed_good_bad.spef"), opt);
  ASSERT_EQ(f.nets.size(), 2u);
  EXPECT_EQ(f.nets[0].name, "good");
  EXPECT_EQ(f.nets[1].name, "good2");
  EXPECT_EQ(f.nets_rejected, 1u);
  ASSERT_EQ(f.diagnostics.size(), 1u);
  EXPECT_EQ(f.diagnostics[0].code, Code::kNonPhysicalValue);
  EXPECT_EQ(f.diagnostics[0].net, "broken");
}

TEST(LenientSpef, MalformedCorpusAlwaysDiagnosesNeverCrashes) {
  const char* corpus[] = {
      "truncated_dnet.spef", "negative_r.spef",     "nan_cap.spef",
      "negative_cap.spef",   "duplicate_node.spef", "dangling_load.spef",
      "empty.spef",          "no_driver.spef",      "cycle.spef",
      "bad_unit.spef",       "mixed_good_bad.spef",
  };
  for (const char* name : corpus) {
    SCOPED_TRACE(name);
    // Strict: a typed SpefError, never anything else.
    try {
      (void)parse_spef_file(malformed(name));
      FAIL() << "strict parse accepted a malformed deck";
    } catch (const SpefError& e) {
      EXPECT_NE(e.code(), Code::kNone);
      EXPECT_EQ(e.location().file, malformed(name));
    }
    // Lenient: recovers with at least one structured diagnostic.
    SpefParseOptions opt;
    opt.lenient = true;
    SpefFile f;
    ASSERT_NO_THROW(f = parse_spef_file(malformed(name), opt));
    ASSERT_FALSE(f.diagnostics.empty());
    for (const auto& d : f.diagnostics) {
      EXPECT_NE(d.code, Code::kNone);
      EXPECT_FALSE(d.message.empty());
      EXPECT_EQ(d.location.file, malformed(name));
    }
  }
}

TEST(LenientSpef, MutatedSpefNeverEscapesTheTaxonomy) {
  const std::string clean = kCleanSpef;
  std::mt19937 rng(20260805u);
  std::vector<std::string> variants;
  // Truncations at a spread of byte offsets (covers mid-token, mid-net EOF).
  for (std::size_t cut = 0; cut < clean.size(); cut += 37)
    variants.push_back(clean.substr(0, cut));
  // Random single-character corruptions.
  for (int i = 0; i < 60; ++i) {
    std::string v = clean;
    const char garbage[] = {'x', '-', '.', '*', '\t', '"', '9', '\0'};
    v[rng() % v.size()] = garbage[rng() % sizeof(garbage)];
    variants.push_back(std::move(v));
  }
  // Random line deletions.
  for (int i = 0; i < 20; ++i) {
    std::string v;
    std::size_t pos = 0;
    while (pos < clean.size()) {
      std::size_t end = clean.find('\n', pos);
      if (end == std::string::npos) end = clean.size() - 1;
      if (rng() % 5 != 0) v.append(clean, pos, end - pos + 1);
      pos = end + 1;
    }
    variants.push_back(std::move(v));
  }
  SpefParseOptions opt;
  opt.lenient = true;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    SCOPED_TRACE(i);
    // Lenient must always return; strict must fail only through SpefError.
    EXPECT_NO_THROW((void)parse_spef(variants[i], opt));
    try {
      (void)parse_spef(variants[i]);
    } catch (const SpefError&) {
    } catch (...) {
      FAIL() << "strict parse threw outside the taxonomy";
    }
  }
}

// --------------------------------------------- degradation in core::report

#if RCT_FAULT_ENABLED

RCTree small_tree() {
  return parse_netlist(".input in\nR1 in a 100\nR2 a b 50\nC1 a 0 1p\nC2 b 0 2p\n").tree;
}

TEST_F(FaultTest, NanExactDelayDegradesRowToMomentBounds) {
  const RCTree tree = small_tree();
  robust::fault::arm("core.report.exact_delay", robust::fault::Action::kNan);
  const auto rows = core::build_report(tree);
  for (const auto& r : rows) {
    EXPECT_TRUE(r.degraded);
    EXPECT_FALSE(r.exact_delay.has_value());
    EXPECT_TRUE(std::isfinite(r.elmore));  // bounds survive the fallback
  }
  robust::fault::disarm_all();
  for (const auto& r : core::build_report(tree)) {
    EXPECT_FALSE(r.degraded);
    ASSERT_TRUE(r.exact_delay.has_value());
    // The paper's sandwich the validator enforces: lower <= median <= elmore.
    EXPECT_GE(*r.exact_delay, r.lower_bound - 1e-18);
    EXPECT_LE(*r.exact_delay, r.elmore + 1e-18);
  }
}

TEST_F(FaultTest, ExpiredDeadlineUnwindsBuildReportWithTimeout) {
  const RCTree tree = small_tree();
  core::ReportOptions opt;
  const robust::Deadline d = robust::Deadline::after_ms(1);
  opt.deadline = &d;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  try {
    (void)core::build_report(tree, opt);
    FAIL() << "expected timeout";
  } catch (const robust::Error& e) {
    EXPECT_EQ(e.code(), Code::kTimeout);
  }
}

// ------------------------------------------------- engine retry / timeout

std::vector<SpefNet> clean_nets() { return parse_spef(kCleanSpef).nets; }

TEST_F(FaultTest, EigensolveThrowTriggersMomentsRetry) {
  robust::fault::arm("core.report.eigensolve", robust::fault::Action::kThrow);
  engine::BatchOptions opt;
  opt.jobs = 1;
  const engine::BatchResult r = engine::analyze_nets(clean_nets(), opt);
  ASSERT_EQ(r.nets.size(), 2u);
  EXPECT_EQ(r.stats.failures, 0u);
  EXPECT_EQ(r.stats.retried, 2u);
  EXPECT_EQ(r.stats.degraded, 2u);
  for (const auto& net : r.nets) {
    EXPECT_TRUE(net.ok());
    EXPECT_TRUE(net.retried);
    EXPECT_TRUE(net.degraded);
    ASSERT_FALSE(net.rows.empty());
    for (const auto& row : net.rows) EXPECT_FALSE(row.exact_delay.has_value());
  }
}

TEST_F(FaultTest, SlowNetHitsDeadlineAndRecordsTimeout) {
  robust::fault::arm("engine.net.analyze", robust::fault::Action::kSleep, 60);
  engine::BatchOptions opt;
  opt.jobs = 1;
  opt.net_timeout_ms = 10;
  const engine::BatchResult r = engine::analyze_nets(clean_nets(), opt);
  EXPECT_EQ(r.stats.failures, 2u);
  EXPECT_EQ(r.stats.timed_out, 2u);
  for (const auto& net : r.nets) {
    EXPECT_FALSE(net.ok());
    EXPECT_EQ(net.code, Code::kTimeout);
    EXPECT_TRUE(net.timed_out);
    EXPECT_EQ(net.phase, "retry");  // the moments retry timed out too
    EXPECT_NE(net.error.find("deadline exceeded"), std::string::npos);
  }
}

TEST_F(FaultTest, FailureRecordSchemaInBothRenderers) {
  robust::fault::arm("engine.net.analyze", robust::fault::Action::kThrow);
  engine::BatchOptions opt;
  opt.jobs = 1;
  opt.retry_on_failure = false;
  const engine::BatchResult r = engine::analyze_nets(clean_nets(), opt);
  ASSERT_EQ(r.stats.failures, 2u);
  EXPECT_EQ(r.nets[0].code, Code::kTaskFailure);
  EXPECT_EQ(r.nets[0].phase, "analyze");
  const std::string text = engine::format_batch(r);
  EXPECT_NE(text.find("record: code=task-failure category=resource "
                      "phase=analyze net=net_a"),
            std::string::npos);
  const std::string json = engine::format_batch_json(r);
  EXPECT_NE(json.find("\"code\":\"task-failure\""), std::string::npos);
  EXPECT_NE(json.find("\"category\":\"resource\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\":\"analyze\""), std::string::npos);
  EXPECT_NE(json.find("\"loads\":[]"), std::string::npos);
}

TEST_F(FaultTest, FailureBudgetCancelsRemainingNets) {
  robust::fault::arm("engine.net.analyze", robust::fault::Action::kThrow);
  std::vector<SpefNet> nets = clean_nets();
  const std::vector<SpefNet> base = nets;
  for (int i = 0; i < 2; ++i) nets.insert(nets.end(), base.begin(), base.end());
  ASSERT_EQ(nets.size(), 6u);
  engine::BatchOptions opt;
  opt.jobs = 1;  // serial: exactly `budget` nets fail before the rest cancel
  opt.retry_on_failure = false;
  opt.max_failures = 2;
  const engine::BatchResult r = engine::analyze_nets(nets, opt);
  EXPECT_EQ(r.stats.failures, 6u);
  EXPECT_EQ(r.stats.cancelled, 4u);
  // WHICH nets fail vs cancel follows pool scheduling order, not input
  // order (documented) — assert the split, not the positions.
  std::size_t analyzed_failures = 0;
  for (const auto& net : r.nets) {
    EXPECT_FALSE(net.ok());
    if (net.code == Code::kCancelled) {
      EXPECT_EQ(net.phase, "cancelled");
    } else {
      EXPECT_EQ(net.code, Code::kTaskFailure);
      EXPECT_EQ(net.phase, "analyze");
      ++analyzed_failures;
    }
  }
  EXPECT_EQ(analyzed_failures, 2u);
}

TEST_F(FaultTest, FailFastIsABudgetOfOne) {
  robust::fault::arm("engine.net.analyze", robust::fault::Action::kThrow);
  engine::BatchOptions opt;
  opt.jobs = 1;
  opt.retry_on_failure = false;
  opt.fail_fast = true;
  const engine::BatchResult r = engine::analyze_nets(clean_nets(), opt);
  EXPECT_EQ(r.stats.failures, 2u);
  EXPECT_EQ(r.stats.cancelled, 1u);
  const std::size_t cancelled_count =
      static_cast<std::size_t>(r.nets[0].code == Code::kCancelled) +
      static_cast<std::size_t>(r.nets[1].code == Code::kCancelled);
  EXPECT_EQ(cancelled_count, 1u);
}

TEST_F(FaultTest, DegradedBatchOutputByteIdenticalAcrossJobs) {
  robust::fault::arm("core.report.exact_delay", robust::fault::Action::kNan);
  const std::vector<SpefNet> nets = clean_nets();
  std::string text_ref;
  std::string json_ref;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    engine::BatchOptions opt;
    opt.jobs = jobs;
    const engine::BatchResult r = engine::analyze_nets(nets, opt);
    EXPECT_EQ(r.stats.degraded, 2u);
    const std::string text = engine::format_batch(r);
    const std::string json = engine::format_batch_json(r);
    if (text_ref.empty()) {
      text_ref = text;
      json_ref = json;
      EXPECT_NE(text.find("degraded"), std::string::npos);
      EXPECT_NE(json.find("\"degraded\":true"), std::string::npos);
    } else {
      EXPECT_EQ(text, text_ref) << "jobs=" << jobs;
      EXPECT_EQ(json, json_ref) << "jobs=" << jobs;
    }
  }
}

#endif  // RCT_FAULT_ENABLED

}  // namespace
}  // namespace rct
