#include "moments/central.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/generators.hpp"
#include "sim/exact.hpp"

namespace rct::moments {
namespace {

using rct::testing::ExpectRel;

TEST(StatsFromTransferMoments, SingleRcClosedForm) {
  // h(t) = (1/tau) e^{-t/tau}: mean tau, mu2 tau^2, mu3 2 tau^3, skew 2.
  const double tau = 1e-9;
  const auto s = stats_from_transfer_moments(-tau, tau * tau, -tau * tau * tau);
  EXPECT_NEAR(s.mean, tau, 1e-18);
  EXPECT_NEAR(s.mu2, tau * tau, 1e-27);
  EXPECT_NEAR(s.mu3, 2.0 * tau * tau * tau, 1e-36);
  EXPECT_NEAR(s.sigma, tau, 1e-18);
  EXPECT_NEAR(s.skewness, 2.0, 1e-9);
}

TEST(ImpulseStats, MatchExactDistributionMoments) {
  const RCTree t = gen::random_tree(25, 77);
  const auto stats = impulse_stats(t);
  const sim::ExactAnalysis e(t);
  for (NodeId i = 0; i < t.size(); ++i) {
    const double m1 = e.distribution_moment(i, 1);
    const double m2 = e.distribution_moment(i, 2);
    const double m3 = e.distribution_moment(i, 3);
    ExpectRel(stats[i].mean, m1, 1e-6);
    ExpectRel(stats[i].mu2, m2 - m1 * m1, 1e-6);
    ExpectRel(stats[i].mu3, m3 - 3 * m1 * m2 + 2 * m1 * m1 * m1, 1e-5);
  }
}

TEST(ImpulseStats, MatchNumericWaveformStatistics) {
  // Cross-check the closed-form central moments against trapezoid
  // integration of the actual impulse response waveform.
  const RCTree t = testing::small_tree();
  const auto stats = impulse_stats(t);
  const sim::ExactAnalysis e(t);
  const auto grid = e.suggested_grid(20000, 0.0, 30.0);
  for (NodeId i = 0; i < t.size(); ++i) {
    const auto h = e.impulse_waveform(i, grid);
    ExpectRel(h.density_mean(), stats[i].mean, 1e-3);
    ExpectRel(h.density_central_moment(2), stats[i].mu2, 1e-2);
    ExpectRel(h.density_central_moment(3), stats[i].mu3, 5e-2);
  }
}

TEST(ImpulseStats, Lemma2SkewnessNonNegative) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const RCTree t = gen::random_tree(40, seed);
    for (const auto& s : impulse_stats(t)) {
      EXPECT_GE(s.mu2, 0.0);
      EXPECT_GE(s.mu3, -1e-12 * std::abs(s.mu3));
      EXPECT_GE(s.skewness, 0.0);
    }
  }
}

TEST(ImpulseStats, SigmaPositiveOnRealTrees) {
  const RCTree t = gen::random_tree(30, 2);
  for (const auto& s : impulse_stats(t)) EXPECT_GT(s.sigma, 0.0);
}

TEST(CentralFromRaw, MatchesKnownGamma) {
  // gamma(2) density: raw M = {1, 2, 6, 24}; mu2 = 2, mu3 = 4.
  const std::vector<double> raw{1.0, 2.0, 6.0, 24.0};
  EXPECT_NEAR(central_from_raw(raw, 2), 2.0, 1e-12);
  EXPECT_NEAR(central_from_raw(raw, 3), 4.0, 1e-12);
}

TEST(CentralFromRaw, Validation) {
  EXPECT_THROW((void)central_from_raw({1.0}, 2), std::invalid_argument);
  EXPECT_THROW((void)central_from_raw({2.0, 1.0, 1.0}, 2), std::invalid_argument);
}

TEST(ImpulseStats, SkewConvergesDownstream) {
  // Section IV-B observation: skewness decreases toward the leaves of a
  // line (responses become more symmetric away from the driving point).
  const RCTree t = gen::line(30, 50.0, 10e-15, 100.0, 50e-15);
  const auto stats = impulse_stats(t);
  EXPECT_GT(stats.front().skewness, stats.back().skewness);
  // And mu2, mu3 increase monotonically along the path (they add per stage).
  for (NodeId i = 1; i < t.size(); ++i) {
    EXPECT_GE(stats[i].mu2, stats[i - 1].mu2);
    EXPECT_GE(stats[i].mu3, stats[i - 1].mu3);
  }
}

}  // namespace
}  // namespace rct::moments
