#include "sim/sources.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace rct::sim {
namespace {

// Numeric raw moment of v' by Simpson on [0, settle].
double numeric_derivative_moment(const Source& s, int k, std::size_t panels = 20000) {
  const double hi = s.settle_time();
  const double h = hi / static_cast<double>(panels);
  auto f = [&](double t) { return std::pow(t, k) * s.derivative(t); };
  double acc = f(0.0) + f(hi);
  for (std::size_t i = 1; i < panels; ++i)
    acc += (i % 2 ? 4.0 : 2.0) * f(h * static_cast<double>(i));
  return acc * h / 3.0;
}

void check_stats_numerically(const Source& s, double tol) {
  const auto st = s.derivative_stats();
  const double m0 = numeric_derivative_moment(s, 0);
  const double m1 = numeric_derivative_moment(s, 1);
  const double m2 = numeric_derivative_moment(s, 2);
  const double m3 = numeric_derivative_moment(s, 3);
  EXPECT_NEAR(m0, 1.0, tol);
  EXPECT_NEAR(m1, st.mean, tol * std::abs(st.mean));
  EXPECT_NEAR(m2 - m1 * m1, st.mu2, tol * std::max(st.mu2, 1e-30));
  EXPECT_NEAR(m3 - 3 * m1 * m2 + 2 * m1 * m1 * m1, st.mu3,
              tol * std::max(std::abs(st.mu3), 1e-30) + 1e-30);
}

TEST(StepSource, Basics) {
  StepSource s;
  EXPECT_EQ(s.value(-1e-9), 0.0);
  EXPECT_EQ(s.value(1e-9), 1.0);
  EXPECT_TRUE(s.is_step());
  EXPECT_EQ(s.crossing_time(0.5), 0.0);
  const auto st = s.derivative_stats();
  EXPECT_EQ(st.mean, 0.0);
  EXPECT_EQ(st.mu2, 0.0);
  EXPECT_EQ(st.mu3, 0.0);
}

TEST(SaturatedRamp, ValueAndCrossing) {
  SaturatedRampSource s(2e-9);
  EXPECT_DOUBLE_EQ(s.value(1e-9), 0.5);
  EXPECT_DOUBLE_EQ(s.value(3e-9), 1.0);
  EXPECT_DOUBLE_EQ(s.crossing_time(0.25), 0.5e-9);
  EXPECT_FALSE(s.is_step());
}

TEST(SaturatedRamp, AnalyticStatsMatchNumeric) {
  check_stats_numerically(SaturatedRampSource(2e-9), 1e-6);
}

TEST(SaturatedRamp, VarianceScalesWithRiseTimeSquared) {
  const auto a = SaturatedRampSource(1e-9).derivative_stats();
  const auto b = SaturatedRampSource(2e-9).derivative_stats();
  EXPECT_NEAR(b.mu2 / a.mu2, 4.0, 1e-12);
}

TEST(SaturatedRamp, RejectsNonPositiveRiseTime) {
  EXPECT_THROW(SaturatedRampSource(0.0), std::invalid_argument);
}

TEST(RaisedCosine, SmoothAndSymmetric) {
  RaisedCosineSource s(2e-9);
  EXPECT_DOUBLE_EQ(s.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.value(2e-9), 1.0);
  EXPECT_NEAR(s.value(1e-9), 0.5, 1e-15);
  EXPECT_NEAR(s.crossing_time(0.5), 1e-9, 1e-18);
  // Symmetry: v(tr/2 + d) + v(tr/2 - d) = 1.
  for (double d : {0.1e-9, 0.5e-9, 0.9e-9})
    EXPECT_NEAR(s.value(1e-9 + d) + s.value(1e-9 - d), 1.0, 1e-12);
}

TEST(RaisedCosine, AnalyticStatsMatchNumeric) {
  check_stats_numerically(RaisedCosineSource(3e-9), 1e-6);
}

TEST(RaisedCosine, TighterThanBoxDerivative) {
  // The cosine bump is more concentrated than the uniform box.
  const auto cosine = RaisedCosineSource(1e-9).derivative_stats();
  const auto box = SaturatedRampSource(1e-9).derivative_stats();
  EXPECT_LT(cosine.mu2, box.mu2);
}

TEST(Exponential, ValueCrossingStats) {
  ExponentialSource s(1e-9);
  EXPECT_NEAR(s.value(1e-9), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(s.crossing_time(0.5), 1e-9 * std::log(2.0), 1e-18);
  check_stats_numerically(s, 1e-5);
  EXPECT_GT(s.derivative_stats().mu3, 0.0);  // positively skewed
}

TEST(Pwl, Validation) {
  using P = PwlSource::Point;
  EXPECT_THROW(PwlSource({{0.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(PwlSource({{0.0, 0.0}, {1.0, 0.5}}), std::invalid_argument);   // ends below 1
  EXPECT_THROW(PwlSource({{0.0, 0.0}, {0.0, 1.0}}), std::invalid_argument);   // dt = 0
  EXPECT_THROW(PwlSource({{0.0, 0.0}, {1.0, 2.0}, {2.0, 1.0}}), std::invalid_argument);
  (void)PwlSource({P{0.0, 0.0}, P{1e-9, 1.0}});  // minimal valid
}

TEST(Pwl, MatchesSaturatedRamp) {
  const PwlSource p({{0.0, 0.0}, {2e-9, 1.0}});
  const SaturatedRampSource r(2e-9);
  for (double t : {0.0, 0.5e-9, 1.7e-9, 3e-9}) EXPECT_NEAR(p.value(t), r.value(t), 1e-15);
  const auto sp = p.derivative_stats();
  const auto sr = r.derivative_stats();
  EXPECT_NEAR(sp.mean, sr.mean, 1e-20);
  EXPECT_NEAR(sp.mu2, sr.mu2, 1e-28);
  EXPECT_NEAR(sp.mu3, sr.mu3, 1e-37);
}

TEST(Pwl, TwoSlopeStatsMatchNumeric) {
  // Simpson converges slower across the interior slope kink; loosen the
  // numeric tolerance accordingly.
  const PwlSource p({{0.0, 0.0}, {1e-9, 0.8}, {4e-9, 1.0}});
  check_stats_numerically(p, 2e-4);
}

TEST(Pwl, UnimodalDetection) {
  // Slopes 0.8 then 0.066: decreasing -> unimodal.
  EXPECT_TRUE(PwlSource({{0.0, 0.0}, {1e-9, 0.8}, {4e-9, 1.0}}).derivative_unimodal());
  // Slopes 0.2, 0.6, 0.2: rise then fall -> unimodal.
  EXPECT_TRUE(
      PwlSource({{0.0, 0.0}, {1e-9, 0.2}, {2e-9, 0.8}, {3e-9, 1.0}}).derivative_unimodal());
  // Slopes 0.6, 0.1, 0.3: fall then rise -> NOT unimodal.
  EXPECT_FALSE(
      PwlSource({{0.0, 0.0}, {1e-9, 0.6}, {2e-9, 0.7}, {3e-9, 1.0}}).derivative_unimodal());
}

TEST(Pwl, CrossingInterpolates) {
  const PwlSource p({{0.0, 0.0}, {1e-9, 0.8}, {4e-9, 1.0}});
  EXPECT_NEAR(p.crossing_time(0.4), 0.5e-9, 1e-18);
  EXPECT_NEAR(p.crossing_time(0.9), 2.5e-9, 1e-18);
}

TEST(AllSources, DescribeIsNonEmpty) {
  const StepSource a;
  const SaturatedRampSource b(1e-9);
  const RaisedCosineSource c(1e-9);
  const ExponentialSource d(1e-9);
  const PwlSource e({{0.0, 0.0}, {1e-9, 1.0}});
  for (const Source* s : std::initializer_list<const Source*>{&a, &b, &c, &d, &e})
    EXPECT_FALSE(s->describe().empty());
}

}  // namespace
}  // namespace rct::sim
