// perf_serve — query throughput and warm-vs-cold latency of the timing
// server on a generated 1000-net deck, driven in-process through
// Server::handle_line (exactly what connection threads call), so the
// numbers isolate parse/compute/cache cost from socket noise.
//
//   perf_serve [nets] [nodes_per_net] [clients] [--benchmark_out=FILE]
//
// Four phases over the same deck and one shared on-disk store:
//   cold        fresh server, empty store: every report computes + persists
//   warm-mem    same server again: every report served from memory
//   warm-store  NEW server, same store: every report served from disk —
//               the restart scenario the store exists for; expected >=10x
//               faster than cold
//   overload    ~4x clients against a one-worker/two-slot server: admission
//               control sheds the excess as typed "overloaded" responses;
//               reported as goodput, shed rate, and accepted-request p99
//
// All phases run with the embedded HTTP telemetry listener enabled and a
// background thread scraping GET /metrics every ~50ms (a Prometheus
// server's view of a busy daemon), so the numbers include the telemetry
// tax a deployed instance actually pays.
//
// Datapoints land in google-benchmark-shaped JSON (default
// BENCH_serve.json) so scripts/perf_compare.py can diff runs.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "rctree/generators.hpp"
#include "rctree/spef.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"

namespace {

namespace fs = std::filesystem;

/// One GET against the telemetry listener; returns the bytes received (0 on
/// any failure — the scraper keeps polling regardless).
std::size_t scrape_metrics(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  std::size_t received = 0;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
    if (::send(fd, request, sizeof(request) - 1, 0) == sizeof(request) - 1) {
      char buf[8192];
      for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) break;
        received += static_cast<std::size_t>(n);
      }
    }
  }
  ::close(fd);
  return received;
}

/// Background /metrics poller at a fixed cadence, running for the lifetime
/// of one server instance.
class Scraper {
 public:
  explicit Scraper(int port) : port_(port), thread_([this] { loop(); }) {}
  ~Scraper() {
    stop_.store(true);
    thread_.join();
  }
  [[nodiscard]] std::size_t scrapes() const { return scrapes_.load(); }

 private:
  void loop() {
    while (!stop_.load()) {
      if (scrape_metrics(port_) > 0) scrapes_.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  const int port_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> scrapes_{0};
  std::thread thread_;
};

/// Writes a deck of `count` distinct random nets as a SPEF file.
std::vector<std::string> write_deck(const fs::path& path, std::size_t count, std::size_t nodes) {
  rct::SpefFile file;
  file.design = "perf_serve";
  std::vector<std::string> names;
  names.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    rct::SpefNet net;
    net.name = "net" + std::to_string(i);
    net.driver = "drv";  // separate port name; the tree root is its far end
    net.tree = rct::gen::random_tree(nodes, /*seed=*/9000 + i);
    net.loads = net.tree.leaves();
    names.push_back(net.name);
    file.nets.push_back(std::move(net));
  }
  std::ofstream out(path);
  out << rct::write_spef(file);
  if (!out.flush()) {
    std::fprintf(stderr, "error: cannot write deck '%s'\n", path.c_str());
    std::exit(1);
  }
  return names;
}

/// Issues one `report` per net, split across `clients` threads, and
/// returns the wall time.  Every response must be ok and come from
/// `expect_source`; the first response is spot-checked for actual rows.
double run_phase(rct::server::Server& server, const std::vector<std::string>& names,
                 std::size_t clients, const char* expect_source) {
  std::vector<std::thread> threads;
  std::vector<std::string> failures(clients);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const std::string want = std::string("\"source\":\"") + expect_source + "\"";
      for (std::size_t i = c; i < names.size(); i += clients) {
        rct::server::Request request;
        request.id = i + 1;
        request.cmd = "report";
        request.net = names[i];
        const std::string response = server.handle_line(rct::server::encode_request(request));
        if (!rct::server::response_ok(response) ||
            response.find(want) == std::string::npos ||
            (i == 0 && response.find("\"elmore\":") == std::string::npos)) {
          failures[c] = response;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  for (const std::string& f : failures)
    if (!f.empty()) {
      std::fprintf(stderr, "error: unexpected response in %s phase: %s\n", expect_source,
                   f.c_str());
      std::exit(1);
    }
  return std::chrono::duration<double>(t1 - t0).count();
}

struct Datapoint {
  std::string name;
  double real_time_s;
  double requests_per_second;
  double shed_rate = 0.0;     ///< overload phase: fraction of offered load shed
  double p99_ms = 0.0;        ///< overload phase: p99 latency of accepted requests
  bool informational = false; ///< excluded from the perf_compare real_time gate
};

bool write_benchmark_json(const std::string& path, const std::vector<Datapoint>& points,
                          std::size_t net_count, std::size_t nodes, std::size_t clients) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"context\": {\n"
      << "    \"executable\": \"perf_serve\",\n"
      << "    \"num_cpus\": " << std::thread::hardware_concurrency() << ",\n"
      << "    \"workload_nets\": " << net_count << ",\n"
      << "    \"workload_nodes_per_net\": " << nodes << ",\n"
      << "    \"clients\": " << clients << "\n"
      << "  },\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"run_type\": \"iteration\", \"iterations\": 1, "
                  "\"real_time\": %.6e, \"time_unit\": \"s\", "
                  "\"requests_per_second\": %.1f, "
                  "\"shed_rate\": %.4f, \"p99_ms\": %.3f, \"informational\": %s}%s\n",
                  points[i].name.c_str(), points[i].real_time_s, points[i].requests_per_second,
                  points[i].shed_rate, points[i].p99_ms,
                  points[i].informational ? "true" : "false",
                  i + 1 < points.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serve.json";
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0)
      out_path = argv[i] + 16;
    else
      positional.push_back(argv[i]);
  }
  const std::size_t net_count =
      positional.size() > 0 ? std::strtoul(positional[0], nullptr, 10) : 1000;
  const std::size_t nodes = positional.size() > 1 ? std::strtoul(positional[1], nullptr, 10) : 96;
  std::size_t clients = positional.size() > 2 ? std::strtoul(positional[2], nullptr, 10) : 4;
  if (clients == 0) clients = 1;
  const double count = static_cast<double>(net_count);

  rct::bench::header("timing server: cold vs warm-memory vs warm-store restart",
                     "serve-mode query latency (no paper counterpart; deployment substrate)");
  std::printf("# workload: %zu nets x %zu nodes, %zu concurrent clients, exact on\n", net_count,
              nodes, clients);
  std::printf("# hardware_concurrency: %u\n", std::thread::hardware_concurrency());
  rct::bench::rule();

  const fs::path scratch =
      fs::temp_directory_path() / ("perf_serve_" + std::to_string(::getpid()));
  fs::create_directories(scratch);
  const fs::path deck = scratch / "deck.spef";
  const fs::path store = scratch / "store";
  const std::vector<std::string> names = write_deck(deck, net_count, nodes);

  std::vector<Datapoint> points;
  std::printf("%-14s %12s %16s %10s\n", "phase", "wall_s", "requests_per_s", "speedup");
  double cold_wall = 0.0;
  std::size_t total_scrapes = 0;
  {
    rct::server::ServeOptions options;
    options.store_dir = store.string();
    options.listen = "0";  // ephemeral; requests still go through handle_line
    options.http = "0";    // telemetry listener under concurrent scrape
    rct::server::Server server(options);
    if (!server.start()) {
      std::fprintf(stderr, "error: %s\n", server.error().c_str());
      return 1;
    }
    (void)server.load_design(deck.string(), /*lenient=*/false);
    const Scraper scraper(server.http_port());

    cold_wall = run_phase(server, names, clients, "computed");
    std::printf("%-14s %12.4f %16.1f %9.2fx\n", "cold", cold_wall, count / cold_wall, 1.0);
    points.push_back({"BM_ServeCold", cold_wall, count / cold_wall});

    const double warm_mem = run_phase(server, names, clients, "memory");
    std::printf("%-14s %12.4f %16.1f %9.2fx\n", "warm-memory", warm_mem, count / warm_mem,
                cold_wall / warm_mem);
    points.push_back({"BM_ServeWarmMemory", warm_mem, count / warm_mem});
    total_scrapes += scraper.scrapes();
    server.stop();
  }
  {
    // Restart: a fresh server over the same store answers from disk.
    rct::server::ServeOptions options;
    options.store_dir = store.string();
    options.listen = "0";
    options.http = "0";
    rct::server::Server server(options);
    if (!server.start()) {
      std::fprintf(stderr, "error: %s\n", server.error().c_str());
      return 1;
    }
    (void)server.load_design(deck.string(), /*lenient=*/false);
    const Scraper scraper(server.http_port());

    const double warm_store = run_phase(server, names, clients, "store");
    std::printf("%-14s %12.4f %16.1f %9.2fx\n", "warm-store", warm_store, count / warm_store,
                cold_wall / warm_store);
    points.push_back({"BM_ServeWarmStore", warm_store, count / warm_store});
    if (cold_wall / warm_store < 10.0)
      std::printf("# WARNING: warm-store speedup %.2fx below the 10x expectation\n",
                  cold_wall / warm_store);
    total_scrapes += scraper.scrapes();
    server.stop();
  }
  {
    // Overload: ~4x the configured client count hammers a deliberately
    // narrow server (one worker, near-zero queue) over the warm store.
    // Admission control must shed the excess as typed "overloaded" lines
    // while the accepted fraction keeps a bounded p99 — goodput under
    // pressure, not collapse.
    rct::server::ServeOptions options;
    options.store_dir = store.string();
    options.listen = "0";
    options.http = "0";
    options.jobs = 1;
    options.max_queue_depth = 2;
    rct::server::Server server(options);
    if (!server.start()) {
      std::fprintf(stderr, "error: %s\n", server.error().c_str());
      return 1;
    }
    (void)server.load_design(deck.string(), /*lenient=*/false);
    const Scraper scraper(server.http_port());

    const std::size_t offered_clients = clients * 4;
    std::atomic<std::size_t> accepted{0};
    std::atomic<std::size_t> shed{0};
    std::vector<std::string> failures(offered_clients);
    std::vector<std::vector<double>> latencies_ms(offered_clients);
    std::vector<std::thread> threads;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < offered_clients; ++c) {
      threads.emplace_back([&, c] {
        for (std::size_t i = c; i < names.size(); i += offered_clients) {
          rct::server::Request request;
          request.id = i + 1;
          request.cmd = "report";
          request.net = names[i];
          const auto r0 = std::chrono::steady_clock::now();
          const std::string response =
              server.handle_line(rct::server::encode_request(request));
          const auto r1 = std::chrono::steady_clock::now();
          if (rct::server::response_ok(response)) {
            accepted.fetch_add(1, std::memory_order_relaxed);
            latencies_ms[c].push_back(
                std::chrono::duration<double, std::milli>(r1 - r0).count());
          } else if (rct::server::response_error_code(response) == "overloaded") {
            shed.fetch_add(1, std::memory_order_relaxed);
          } else {
            failures[c] = response;
            return;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    const auto t1 = std::chrono::steady_clock::now();
    for (const std::string& f : failures)
      if (!f.empty()) {
        std::fprintf(stderr, "error: unexpected response in overload phase: %s\n", f.c_str());
        return 1;
      }
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    std::vector<double> all_ms;
    for (const auto& v : latencies_ms) all_ms.insert(all_ms.end(), v.begin(), v.end());
    std::sort(all_ms.begin(), all_ms.end());
    const double p99_ms =
        all_ms.empty() ? 0.0 : all_ms[std::min(all_ms.size() - 1, all_ms.size() * 99 / 100)];
    const std::size_t offered = accepted.load() + shed.load();
    const double shed_rate =
        offered == 0 ? 0.0
                     : static_cast<double>(shed.load()) / static_cast<double>(offered);
    const double goodput = wall > 0.0 ? static_cast<double>(accepted.load()) / wall : 0.0;
    std::printf("%-14s %12.4f %16.1f %9s\n", "overload", wall, goodput, "-");
    std::printf("# overload: %zu offered by %zu clients over jobs=1/queue=2, "
                "%zu accepted, %zu shed (%.1f%%), accepted p99 %.3f ms\n",
                offered, offered_clients, accepted.load(), shed.load(), shed_rate * 100.0,
                p99_ms);
    points.push_back({"BM_ServeOverload", wall, goodput, shed_rate, p99_ms,
                      /*informational=*/true});
    total_scrapes += scraper.scrapes();
    server.stop();
  }
  std::printf("# concurrent /metrics scrapes during the run: %zu\n", total_scrapes);

  fs::remove_all(scratch);
  if (!write_benchmark_json(out_path, points, net_count, nodes, clients)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  std::printf("# datapoints: %s\n", out_path.c_str());
  return 0;
}
