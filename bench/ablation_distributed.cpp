// Ablation A4: lumped vs. ladder vs. distributed modeling of a wire, and
// Elmore-bound quality on the continuous limit.
//
// For a driven open-ended line we sweep the driver-to-wire resistance ratio
// k = R_d / R and compare the exact 50% delay of the *distributed* line
// against: the single-lump model, N-section ladders, the Elmore bound and
// ln(2) T_D.  The classic constants fall out: 0.38 RC delay for the bare
// line vs. the 0.5 RC Elmore bound, converging to ln(2)(R_d C + RC/2) as
// the driver dominates.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "rctree/transform.hpp"
#include "sim/distributed.hpp"
#include "sim/exact.hpp"

using namespace rct;

int main() {
  bench::header("Ablation: distributed line vs ladder vs lumped, Elmore quality vs k",
                "extends Sec. II (interconnect models); distributed theory from [20]");

  const double r = 1000.0;
  const double c = 1e-12;
  const double rc = r * c;

  std::printf("%8s %12s %12s %12s %12s %12s %12s\n", "k=Rd/R", "exact/RC", "ladder16",
              "ladder64", "lump(1seg)", "elmore/RC", "ln2*TD/RC");
  bench::rule();
  bool ok = true;
  for (double k : {0.0, 0.1, 0.3, 1.0, 3.0, 10.0}) {
    const double rd = k * r;
    const sim::DistributedLine truth(r, c, rd);
    const double exact = truth.step_delay(0.5);

    auto ladder_delay = [&](std::size_t sections) {
      const WireParams p{r / 100.0, c / 100.0};
      const RCTree lad = segmented_wire(100.0, p, sections,
                                        std::max(rd, 1e-9), 0.0);
      const sim::ExactAnalysis e(lad);
      return e.step_delay(lad.at("load"));
    };
    const double lad16 = ladder_delay(16);
    const double lad64 = ladder_delay(64);
    const double lump = ladder_delay(1);
    const double td = truth.elmore_delay();

    std::printf("%8.2f %12.4f %12.4f %12.4f %12.4f %12.4f %12.4f\n", k, exact / rc,
                lad16 / rc, lad64 / rc, lump / rc, td / rc, std::log(2.0) * td / rc);
    ok = ok && exact <= td && std::abs(lad64 - exact) < 0.01 * exact;
  }
  bench::rule();
  std::printf("# bare line (k=0): exact ~0.379 RC vs Elmore 0.5 RC (32%% conservative);\n");
  std::printf("# driver-dominated (k=10): exact -> ln2*TD (single-pole limit).\n");
  std::printf("# elmore-bounds-distributed-limit-and-ladder64-within-1%%: %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
