// Ablation A2: value of higher-order approximations over the Elmore metric.
//
// For a batch of random trees, compare the 50% delay error of:
//   single-pole ln(2) T_D        (paper Sec. II-D)
//   two-pole AWE                 ([4])
//   AWE q = 3, 4                 ([19]/[22])
// against the exact delay, and validate the pi-model's moment match.  This
// quantifies the paper's closing remark: with more moments available,
// moment matching is preferable — but the Elmore bound is free.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/awe.hpp"
#include "core/elmore.hpp"
#include "core/pi_model.hpp"
#include "core/prima.hpp"
#include "moments/admittance.hpp"
#include "rctree/generators.hpp"
#include "sim/exact.hpp"

using namespace rct;

int main() {
  bench::header("Ablation: approximation order vs. 50% delay accuracy",
                "extends Sec. II-D/E discussion of higher-order approximations");

  constexpr int kTrees = 24;
  std::vector<double> err_elmore;
  std::vector<double> err_1p;
  std::vector<double> err_2p;
  std::vector<double> err_3p;
  std::vector<double> err_4p;
  std::vector<double> err_prima2;
  std::vector<double> err_prima4;
  int unstable = 0;
  int prima_unstable = 0;
  double worst_pi_mismatch = 0.0;

  for (int s = 0; s < kTrees; ++s) {
    const RCTree t = gen::random_tree(24, 9000 + s);
    const sim::ExactAnalysis exact(t);
    const NodeId node = t.size() - 1;
    const double actual = exact.step_delay(node);
    const double td = core::elmore_delay(t, node);
    err_elmore.push_back(std::abs(td - actual) / actual);
    err_1p.push_back(std::abs(core::single_pole_delay(td) - actual) / actual);
    auto try_awe = [&](std::size_t q, std::vector<double>& sink) {
      const core::AweApproximation awe(t, node, q);
      if (!awe.stable()) {
        ++unstable;
        return;
      }
      sink.push_back(std::abs(awe.delay() - actual) / actual);
    };
    try_awe(2, err_2p);
    try_awe(3, err_3p);
    try_awe(4, err_4p);
    auto try_prima = [&](std::size_t q, std::vector<double>& sink) {
      const core::PrimaReduction prima(t, q);
      if (!prima.stable()) {
        ++prima_unstable;
        return;
      }
      sink.push_back(std::abs(prima.at(node).delay() - actual) / actual);
    };
    try_prima(2, err_prima2);
    try_prima(4, err_prima4);

    const core::PiModel pi = core::input_pi_model(t);
    const auto y = moments::input_admittance(t, 3);
    worst_pi_mismatch = std::max(
        worst_pi_mismatch, std::abs(pi.m2() - y[2]) / std::abs(y[2]));
  }

  auto report = [](const char* name, const std::vector<double>& v) {
    double mean = 0.0;
    double worst = 0.0;
    for (double e : v) {
      mean += e;
      worst = std::max(worst, e);
    }
    if (!v.empty()) mean /= static_cast<double>(v.size());
    std::printf("%-22s %6zu %12.2f%% %12.2f%%\n", name, v.size(), 100.0 * mean, 100.0 * worst);
  };

  std::printf("%-22s %6s %13s %13s\n", "estimator", "fits", "mean |err|", "worst |err|");
  bench::rule();
  report("elmore T_D (bound)", err_elmore);
  report("single-pole ln2*T_D", err_1p);
  report("AWE q=2 (two-pole)", err_2p);
  report("AWE q=3", err_3p);
  report("AWE q=4", err_4p);
  report("PRIMA q=2", err_prima2);
  report("PRIMA q=4", err_prima4);
  bench::rule();
  std::printf("# unstable AWE fits skipped: %d; unstable PRIMA fits: %d (structurally 0)\n",
              unstable, prima_unstable);
  std::printf("# worst pi-model m2 mismatch: %.2e (must be ~0: exact moment match)\n",
              worst_pi_mismatch);
  return worst_pi_mismatch < 1e-9 ? 0 : 1;
}
