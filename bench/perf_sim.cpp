// Perf P2: simulation engines — O(N) tree-LDL transient step vs O(N^3)
// eigendecomposition setup, and the per-query cost of the closed forms.

#include <benchmark/benchmark.h>

#include "rctree/generators.hpp"
#include "sim/exact.hpp"
#include "sim/transient.hpp"
#include "sim/tree_solver.hpp"

using namespace rct;

namespace {

void BM_TreeSolverFactor(benchmark::State& state) {
  const RCTree t = gen::random_tree(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    sim::TreeSystem sys(t, 1e9);
    benchmark::DoNotOptimize(sys);
  }
  state.SetComplexityN(state.range(0));
}

void BM_TreeSolverSolve(benchmark::State& state) {
  const RCTree t = gen::random_tree(static_cast<std::size_t>(state.range(0)), 7);
  const sim::TreeSystem sys(t, 1e9);
  std::vector<double> rhs(t.size(), 1.0);
  for (auto _ : state) {
    auto x = rhs;
    sys.solve_in_place(x);
    benchmark::DoNotOptimize(x);
  }
  state.SetComplexityN(state.range(0));
}

void BM_TransientStep1000(benchmark::State& state) {
  const RCTree t = gen::random_tree(static_cast<std::size_t>(state.range(0)), 7);
  const sim::StepSource step;
  sim::TransientOptions opt;
  opt.t_end = 1e-8;
  opt.steps = 1000;
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::simulate(t, step, {t.size() - 1}, opt));
  state.SetComplexityN(state.range(0));
}

void BM_ExactSetup(benchmark::State& state) {
  const RCTree t = gen::random_tree(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    sim::ExactAnalysis e(t);
    benchmark::DoNotOptimize(e);
  }
  state.SetComplexityN(state.range(0));
}

void BM_ExactDelayQuery(benchmark::State& state) {
  const RCTree t = gen::random_tree(static_cast<std::size_t>(state.range(0)), 7);
  const sim::ExactAnalysis e(t);
  for (auto _ : state) benchmark::DoNotOptimize(e.step_delay(t.size() - 1));
}

}  // namespace

BENCHMARK(BM_TreeSolverFactor)->RangeMultiplier(8)->Range(1 << 10, 1 << 19)->Complexity(benchmark::oN);
BENCHMARK(BM_TreeSolverSolve)->RangeMultiplier(8)->Range(1 << 10, 1 << 19)->Complexity(benchmark::oN);
BENCHMARK(BM_TransientStep1000)->RangeMultiplier(4)->Range(1 << 8, 1 << 14);
BENCHMARK(BM_ExactSetup)->RangeMultiplier(2)->Range(32, 512)->Complexity(benchmark::oNCubed);
BENCHMARK(BM_ExactDelayQuery)->RangeMultiplier(2)->Range(32, 512);
