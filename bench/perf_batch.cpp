// perf_batch — 1-thread vs N-thread throughput of the batch timing engine
// on a generated 1000-net SPEF-style workload, plus the cache win on a
// stamped (clock-mesh-like) variant.  Prints nets/s per thread count and
// the speedup over --jobs 1; on multi-core hardware --jobs 4 is expected
// to clear 2x.
//
//   perf_batch [nets] [nodes_per_net] [max_jobs] [--benchmark_out=FILE]
//
// Datapoints also land in google-benchmark-shaped JSON (default
// BENCH_batch.json) so scripts/perf_compare.py can diff runs.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "engine/batch.hpp"
#include "rctree/generators.hpp"
#include "rctree/spef.hpp"

namespace {

rct::SpefNet make_net(std::string name, rct::RCTree tree) {
  rct::SpefNet net;
  net.name = std::move(name);
  net.driver = tree.name(tree.children_of_source().front());
  net.loads = tree.leaves();
  net.tree = std::move(tree);
  return net;
}

/// `count` distinct random nets, as a parsed-SPEF-equivalent net list.
std::vector<rct::SpefNet> generate_workload(std::size_t count, std::size_t nodes) {
  std::vector<rct::SpefNet> nets;
  nets.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    nets.push_back(make_net("net" + std::to_string(i), rct::gen::random_tree(nodes, 42 + i)));
  return nets;
}

/// One datapoint for the JSON report (google-benchmark field names, so one
/// comparison tool serves both bench binaries).
struct Datapoint {
  std::string name;
  double real_time_s;
  double nets_per_second;
};

bool write_benchmark_json(const std::string& path, const std::vector<Datapoint>& points,
                          std::size_t net_count, std::size_t nodes) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"context\": {\n"
      << "    \"executable\": \"perf_batch\",\n"
      << "    \"num_cpus\": " << std::thread::hardware_concurrency() << ",\n"
      << "    \"workload_nets\": " << net_count << ",\n"
      << "    \"workload_nodes_per_net\": " << nodes << "\n"
      << "  },\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"run_type\": \"iteration\", \"iterations\": 1, "
                  "\"real_time\": %.6e, \"time_unit\": \"s\", \"nets_per_second\": %.1f}%s\n",
                  points[i].name.c_str(), points[i].real_time_s, points[i].nets_per_second,
                  i + 1 < points.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  // --benchmark_out=FILE may appear anywhere; positionals keep their order.
  std::string out_path = "BENCH_batch.json";
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0)
      out_path = argv[i] + 16;
    else
      positional.push_back(argv[i]);
  }
  const std::size_t net_count =
      positional.size() > 0 ? std::strtoul(positional[0], nullptr, 10) : 1000;
  const std::size_t nodes = positional.size() > 1 ? std::strtoul(positional[1], nullptr, 10) : 50;
  std::size_t max_jobs = positional.size() > 2 ? std::strtoul(positional[2], nullptr, 10)
                                               : std::thread::hardware_concurrency();
  if (max_jobs == 0) max_jobs = 1;
  std::vector<Datapoint> points;

  rct::bench::header("batch engine throughput: 1 thread vs N threads",
                     "engine scaling (no paper counterpart; production-scale substrate)");
  std::printf("# workload: %zu nets x %zu nodes, exact eigensolve on, cache off\n", net_count,
              nodes);
  std::printf("# hardware_concurrency: %u\n", std::thread::hardware_concurrency());
  rct::bench::rule();

  const std::vector<rct::SpefNet> nets = generate_workload(net_count, nodes);

  std::printf("%8s %12s %14s %10s\n", "jobs", "wall_s", "nets_per_s", "speedup");
  double base_wall = 0.0;
  for (std::size_t jobs = 1; jobs <= max_jobs; jobs *= 2) {
    rct::engine::BatchOptions opt;
    opt.jobs = jobs;
    opt.use_cache = false;
    const rct::engine::BatchResult r = rct::engine::analyze_nets(nets, opt);
    if (r.stats.failures != 0) {
      std::fprintf(stderr, "error: %zu net(s) failed\n", r.stats.failures);
      return 1;
    }
    const double wall = r.stats.total.wall_s;
    if (jobs == 1) base_wall = wall;
    std::printf("%8zu %12.4f %14.1f %9.2fx\n", jobs, wall,
                static_cast<double>(net_count) / wall, base_wall / wall);
    points.push_back({"BM_BatchThroughput/jobs:" + std::to_string(jobs), wall,
                      static_cast<double>(net_count) / wall});
  }

  rct::bench::rule();
  std::printf("# cache: same workload with every net stamped out twice\n");
  std::vector<rct::SpefNet> stamped = nets;
  for (std::size_t i = 0; i < net_count; ++i) {
    rct::RCTree copy = rct::gen::random_tree(nodes, 42 + i);  // same seed = same content
    stamped.push_back(make_net("dup" + std::to_string(i), std::move(copy)));
  }
  for (const bool use_cache : {false, true}) {
    rct::engine::BatchOptions opt;
    opt.jobs = max_jobs;
    opt.use_cache = use_cache;
    const rct::engine::BatchResult r = rct::engine::analyze_nets(stamped, opt);
    std::printf("# cache %-3s  wall %.4fs  analyzed %zu  hits %zu\n", use_cache ? "on" : "off",
                r.stats.total.wall_s, r.stats.tasks_run, r.stats.cache_hits);
    points.push_back({std::string("BM_BatchStamped/cache:") + (use_cache ? "on" : "off"),
                      r.stats.total.wall_s,
                      static_cast<double>(stamped.size()) / r.stats.total.wall_s});
  }

  if (!write_benchmark_json(out_path, points, net_count, nodes)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  std::printf("# datapoints: %s\n", out_path.c_str());
  return 0;
}
