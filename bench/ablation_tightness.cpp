// Ablation A1: how tight are the paper's bounds across topology families?
//
// For lines, stars, H-trees, balanced trees and random trees we measure the
// worst and mean over-estimation of the Elmore upper bound, the mu-sigma
// lower-bound gap, and how often PRH t_max at 50% beats the Elmore bound —
// quantifying the paper's qualitative remarks (Elmore tighter at leaves,
// PRH sometimes better, sometimes worse).

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/penfield_rubinstein.hpp"
#include "rctree/generators.hpp"
#include "sim/exact.hpp"

using namespace rct;

namespace {

struct Row {
  const char* name;
  RCTree tree;
};

void analyze(const Row& row) {
  const sim::ExactAnalysis exact(row.tree);
  const auto bounds = core::delay_bounds(row.tree);
  const core::PrhBounds prh(row.tree);

  double worst_over = 0.0;
  double sum_over = 0.0;
  double worst_leaf_over = 0.0;
  std::size_t prh_wins = 0;
  std::size_t lower_nontrivial = 0;
  const std::size_t n = row.tree.size();
  for (NodeId i = 0; i < n; ++i) {
    const double actual = exact.step_delay(i);
    const double over = (bounds[i].elmore - actual) / actual;
    worst_over = std::max(worst_over, over);
    sum_over += over;
    if (row.tree.is_leaf(i)) worst_leaf_over = std::max(worst_leaf_over, over);
    if (prh.t_max(i, 0.5) < bounds[i].elmore) ++prh_wins;
    if (bounds[i].lower > 0.0) ++lower_nontrivial;
  }
  std::printf("%-14s %5zu %11.1f%% %11.1f%% %13.1f%% %9zu/%-4zu %11zu/%-4zu\n", row.name, n,
              100.0 * worst_over, 100.0 * sum_over / static_cast<double>(n),
              100.0 * worst_leaf_over, prh_wins, n, lower_nontrivial, n);
}

}  // namespace

int main() {
  bench::header("Ablation: bound tightness across topology families",
                "extends Table I / Section III discussion");
  std::printf("%-14s %5s %12s %12s %14s %14s %16s\n", "topology", "N", "worst over",
              "mean over", "worst@leaves", "PRH<Elmore", "lower>0");
  bench::rule();

  gen::RandomTreeOptions liney;
  liney.bushiness = 0.2;
  std::vector<Row> rows;
  rows.push_back({"line", gen::line(40, 50.0, 10e-15, 120.0, 50e-15)});
  rows.push_back({"star", gen::star(24, 150.0, 20e-15, 500.0, 80e-15)});
  rows.push_back({"htree", gen::htree(5, 200.0, 150e-15, 10e-15)});
  rows.push_back({"balanced", gen::balanced(4, 2, 120.0, 15e-15, 300.0, 40e-15)});
  rows.push_back({"random_bushy", gen::random_tree(48, 2024)});
  rows.push_back({"random_liney", gen::random_tree(48, 2025, liney)});
  for (const auto& r : rows) analyze(r);
  bench::rule();
  std::printf("# reading: 'over' = (T_D - actual)/actual.  The Elmore bound is tightest\n");
  std::printf("# deep in the tree and loosest at the driving point, matching Sec. III.\n");
  return 0;
}
