// Figs. 3 and 5 reproduction: unit step response and (scaled) unit impulse
// response at C5 (Fig. 3) and C1 (Fig. 5) of the Fig. 1 circuit.  The paper
// plots these to show the skew difference between a leaf and the driving
// point; we print the series plus the skew statistics the curves illustrate.

#include <cstdio>

#include "bench_common.hpp"
#include "moments/central.hpp"
#include "rctree/circuits.hpp"
#include "sim/exact.hpp"

using namespace rct;

int main() {
  bench::header("Figs. 3 & 5: step and impulse responses at C5 and C1 of Fig. 1",
                "Gupta/Tutuianu/Pileggi DAC'95, Figures 3 and 5");

  const RCTree tree = circuits::fig1();
  const sim::ExactAnalysis exact(tree);
  const auto stats = moments::impulse_stats(tree);

  const NodeId c5 = tree.at("n5");
  const NodeId c1 = tree.at("n1");
  // The paper scales h(t) by 1e9 (Fig. 3) and 4e9 (Fig. 5) to share axes.
  const double scale5 = 1e-9;
  const double scale1 = 0.25e-9;

  std::printf("%12s %10s %12s %10s %12s\n", "t(ns)", "step(C5)", "h(C5)*1e-9", "step(C1)",
              "h(C1)*.25e-9");
  bench::rule();
  const auto grid = sim::uniform_grid(5e-9, 51);
  for (double t : grid) {
    std::printf("%12.2f %10.5f %12.5f %10.5f %12.5f\n", bench::ns(t),
                exact.step_response(c5, t), exact.impulse_response(c5, t) * scale5,
                exact.step_response(c1, t), exact.impulse_response(c1, t) * scale1);
  }
  bench::rule();
  std::printf("# curve-shape statistics (the figures' point):\n");
  const auto fine = exact.suggested_grid(4000);
  for (NodeId n : {c1, c5}) {
    const sim::Waveform h = exact.impulse_waveform(n, fine);
    std::printf("# %-3s mean %.3fns  mode %.3fns  median %.3fns  skewness %.3f\n",
                tree.name(n).c_str(), bench::ns(stats[n].mean), bench::ns(h.density_mode()),
                bench::ns(h.density_median()), stats[n].skewness);
  }
  const bool ok = stats[c1].skewness > stats[c5].skewness;
  std::printf("# C1 (driving point) more skewed than C5 (leaf): %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
