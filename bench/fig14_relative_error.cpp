// Fig. 14 reproduction: relative Elmore error (T_D - delay)/delay as a
// function of node position along the signal path, for several input rise
// times — the error falls both with distance from the driving point and
// with rise time.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/elmore.hpp"
#include "core/generalized_input.hpp"
#include "rctree/circuits.hpp"
#include "sim/exact.hpp"

using namespace rct;

int main() {
  bench::header("Fig. 14: relative Elmore error vs. node position and input rise time",
                "Gupta/Tutuianu/Pileggi DAC'95, Figure 14");

  const RCTree tree = circuits::tree25();
  const sim::ExactAnalysis exact(tree);
  // Walk the main path: A, m1..m7, B, m9..m15, C.
  std::vector<NodeId> path;
  NodeId cursor = tree.at("C");
  while (cursor != kSource) {
    path.push_back(cursor);
    cursor = tree.parent(cursor);
  }
  std::reverse(path.begin(), path.end());

  const double rise_times[] = {1e-9, 2e-9, 5e-9, 10e-9};
  std::printf("%6s %-5s", "depth", "node");
  for (double tr : rise_times) std::printf(" %9.0fns", bench::ns(tr));
  std::printf("   (%% error)\n");
  bench::rule();

  std::vector<std::vector<double>> errs(path.size());
  for (std::size_t k = 0; k < path.size(); ++k) {
    const NodeId n = path[k];
    std::printf("%6zu %-5s", tree.depth(n), tree.name(n).c_str());
    for (double tr : rise_times) {
      const sim::SaturatedRampSource ramp(tr);
      const double err = core::relative_elmore_error(tree, exact, n, ramp);
      errs[k].push_back(err);
      std::printf(" %11.2f", 100.0 * err);
    }
    std::printf("\n");
  }
  bench::rule();

  // Shape: for each rise time, error at the driving point exceeds error at
  // the leaf; and for each node, error falls with rise time.
  bool ok = true;
  for (std::size_t r = 0; r < 4; ++r) ok = ok && errs.front()[r] > errs.back()[r];
  for (const auto& e : errs)
    for (std::size_t r = 1; r < e.size(); ++r) ok = ok && e[r] < e[r - 1];
  std::printf("# error-decreases-with-depth-and-rise-time: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
