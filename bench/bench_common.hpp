#pragma once
// Shared formatting helpers for the table/figure reproduction binaries.
// Each binary prints the same rows/series the paper reports, with the
// published value alongside where the paper prints one; output is also
// machine-greppable (fixed-width columns, `# ` prefixed commentary).

#include <cstdio>

namespace rct::bench {

inline double ns(double seconds) { return seconds * 1e9; }
inline double ps(double seconds) { return seconds * 1e12; }

inline void header(const char* title, const char* paper_ref) {
  std::printf("# %s\n", title);
  std::printf("# reproduces: %s\n", paper_ref);
  std::printf("# (absolute values depend on the calibrated component values; the paper\n");
  std::printf("#  omits them — see DESIGN.md / EXPERIMENTS.md for the calibration story)\n");
}

inline void rule() {
  std::printf(
      "# ------------------------------------------------------------------------\n");
}

}  // namespace rct::bench
