// Ablation A3: the delay-metric zoo vs. exact, and the improved lower
// bound the paper's conclusion anticipates.
//
// Over a batch of random trees we measure, for every node:
//   - estimator accuracy: ln(2) T_D, D2M, gamma-fit median
//   - bound tightness: Elmore upper, Cantelli lower (Corollary 1) vs. the
//     Johnson-Rogers unimodal lower (Lemma 1 buys sqrt(3/5) sigma)
// and verify that the improved bound never crosses the exact delay.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "rctree/generators.hpp"
#include "sim/exact.hpp"

using namespace rct;

int main() {
  bench::header("Ablation: delay-metric zoo and improved lower bound",
                "extends the paper's conclusion (improved bounds with more moments)");

  struct Acc {
    double sum = 0.0;
    double worst = 0.0;
    std::size_t n = 0;
    void add(double e) {
      sum += e;
      worst = std::max(worst, e);
      ++n;
    }
    [[nodiscard]] double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
  };
  Acc e_ln2;
  Acc e_d2m;
  Acc e_gamma;
  Acc gap_cantelli;
  Acc gap_unimodal;
  bool bound_ok = true;

  for (int s = 0; s < 20; ++s) {
    const RCTree t = gen::random_tree(22, 4242 + s);
    const sim::ExactAnalysis exact(t);
    const auto metrics = core::delay_metrics(t);
    for (NodeId i = 0; i < t.size(); ++i) {
      const double actual = exact.step_delay(i);
      e_ln2.add(std::abs(metrics[i].single_pole - actual) / actual);
      e_d2m.add(std::abs(metrics[i].d2m - actual) / actual);
      e_gamma.add(std::abs(metrics[i].scaled_elmore - actual) / actual);
      gap_cantelli.add((actual - metrics[i].lower_cantelli) / actual);
      gap_unimodal.add((actual - metrics[i].lower_unimodal) / actual);
      bound_ok = bound_ok && metrics[i].lower_unimodal <= actual * (1 + 1e-9);
    }
  }

  std::printf("%-28s %12s %12s\n", "estimator (|err| vs exact)", "mean", "worst");
  bench::rule();
  std::printf("%-28s %11.2f%% %11.2f%%\n", "single-pole ln2*TD", 100 * e_ln2.mean(),
              100 * e_ln2.worst);
  std::printf("%-28s %11.2f%% %11.2f%%\n", "D2M", 100 * e_d2m.mean(), 100 * e_d2m.worst);
  std::printf("%-28s %11.2f%% %11.2f%%\n", "gamma-fit median", 100 * e_gamma.mean(),
              100 * e_gamma.worst);
  bench::rule();
  std::printf("%-28s %12s\n", "lower bound (gap to exact)", "mean gap");
  std::printf("%-28s %11.2f%%\n", "Cantelli  TD - sigma", 100 * gap_cantelli.mean());
  std::printf("%-28s %11.2f%%\n", "unimodal  TD - 0.775 sigma", 100 * gap_unimodal.mean());
  bench::rule();
  std::printf("# the unimodal (Johnson-Rogers) bound uses Lemma 1 to shave the gap;\n");
  std::printf("# it remained a true lower bound on every node: %s\n",
              bound_ok ? "PASS" : "FAIL");
  return bound_ok ? 0 : 1;
}
