// Table I reproduction: delay bounds for the Fig. 1 circuit at nodes
// C1, C5, C7 — actual 50% delay (exact simulator), Elmore upper bound,
// mu - sigma lower bound, single-pole ln(2) T_D estimate, and the
// Penfield-Rubinstein t_max / t_min at the 50% point.  Published values are
// printed alongside ours.

#include <cstdio>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/elmore.hpp"
#include "core/penfield_rubinstein.hpp"
#include "rctree/circuits.hpp"
#include "sim/exact.hpp"

using namespace rct;

int main() {
  bench::header("Table I: delay bounds for the circuit in Fig. 1",
                "Gupta/Tutuianu/Pileggi DAC'95, Table I");

  const RCTree tree = circuits::fig1();
  const sim::ExactAnalysis exact(tree);
  const auto bounds = core::delay_bounds(tree);
  const core::PrhBounds prh(tree);
  const auto observed = circuits::fig1_observed(tree);
  const auto published = circuits::table1_published();

  std::printf("%-5s %-6s %9s %9s %9s %9s %9s %9s   (ns)\n", "node", "which", "actual", "elmore",
              "lower", "ln2*TD", "PRH_tmax", "PRH_tmin");
  bench::rule();
  for (int k = 0; k < 3; ++k) {
    const NodeId i = observed[k];
    const auto& pub = published[k];
    std::printf("%-5s %-6s %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n", pub.node, "ours",
                bench::ns(exact.step_delay(i)), bench::ns(bounds[i].elmore),
                bench::ns(bounds[i].lower), bench::ns(core::single_pole_delay(bounds[i].elmore)),
                bench::ns(prh.t_max(i, 0.5)), bench::ns(prh.t_min(i, 0.5)));
    std::printf("%-5s %-6s %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n", pub.node, "paper",
                bench::ns(pub.actual_delay), bench::ns(pub.elmore), bench::ns(pub.lower_bound),
                bench::ns(pub.single_pole), bench::ns(pub.prh_tmax), bench::ns(pub.prh_tmin));
  }
  bench::rule();
  std::printf("# shape checks: elmore >= actual at every node; tmax == elmore at the\n");
  std::printf("# driving point C1 and tmax > elmore at the loads; lower bounds below actual.\n");

  bool ok = true;
  for (NodeId i = 0; i < tree.size(); ++i) {
    const double actual = exact.step_delay(i);
    ok = ok && actual <= bounds[i].elmore && actual >= bounds[i].lower &&
         actual >= prh.t_min(i, 0.5) && actual <= prh.t_max(i, 0.5);
  }
  std::printf("# all-bounds-hold-on-all-7-nodes: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
