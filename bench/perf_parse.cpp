// perf_parse — SPEF ingestion throughput of the mmap + indexed-section
// pipeline on a generated deck, measured end to end through
// engine::parse_spef_parallel_file (exactly what `rct spef/batch/validate`
// call), so the numbers include the mmap, the index pass, section parsing
// and the file-order merge.
//
//   perf_parse [nets] [nodes_per_net] [jobs] [--benchmark_out=FILE]
//
// Three phases over the same on-disk deck:
//   serial     jobs=1: the whole pipeline on the calling thread
//   parallel   jobs=N (default hardware concurrency): section fan-out
//              across the work-stealing pool
//   fused      engine::analyze_spef_file at jobs=N: parse + Elmore
//              analysis overlapped in the same per-section tasks
//
// Wall time on a loaded 1-CPU box is noisy, so each row also reports
// process CPU time (getrusage user+sys delta) — cpu_s is the honest
// single-thread cost; see EXPERIMENTS.md for the seed-parser comparison.
//
// Datapoints land in google-benchmark-shaped JSON (default
// BENCH_parse.json) so scripts/perf_compare.py can diff runs.

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "engine/batch.hpp"
#include "engine/parallel_parse.hpp"
#include "rctree/generators.hpp"
#include "rctree/spef.hpp"

namespace {

namespace fs = std::filesystem;

/// Writes a deck of `count` distinct random nets as SPEF; returns its size.
std::size_t write_deck(const fs::path& path, std::size_t count, std::size_t nodes) {
  rct::SpefFile file;
  file.design = "perf_parse";
  for (std::size_t i = 0; i < count; ++i) {
    rct::SpefNet net;
    net.name = "net" + std::to_string(i);
    net.driver = "drv";
    net.tree = rct::gen::random_tree(nodes, /*seed=*/7000 + i);
    net.loads = net.tree.leaves();
    file.nets.push_back(std::move(net));
  }
  const std::string text = rct::write_spef(file);
  std::ofstream out(path);
  out << text;
  if (!out.flush()) {
    std::fprintf(stderr, "error: cannot write deck '%s'\n", path.c_str());
    std::exit(1);
  }
  return text.size();
}

/// Process CPU time (user + system) in seconds.
double cpu_seconds() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  const auto to_s = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return to_s(usage.ru_utime) + to_s(usage.ru_stime);
}

struct Datapoint {
  std::string name;
  double real_time_s;
  double cpu_time_s;
  double mb_per_second;
  double nets_per_second;
};

bool write_benchmark_json(const std::string& path, const std::vector<Datapoint>& points,
                          std::size_t net_count, std::size_t nodes, std::size_t bytes,
                          std::size_t jobs) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"context\": {\n"
      << "    \"executable\": \"perf_parse\",\n"
      << "    \"num_cpus\": " << std::thread::hardware_concurrency() << ",\n"
      << "    \"workload_nets\": " << net_count << ",\n"
      << "    \"workload_nodes_per_net\": " << nodes << ",\n"
      << "    \"workload_bytes\": " << bytes << ",\n"
      << "    \"jobs\": " << jobs << "\n"
      << "  },\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"run_type\": \"iteration\", \"iterations\": 1, "
                  "\"real_time\": %.6e, \"cpu_time\": %.6e, \"time_unit\": \"s\", "
                  "\"mb_per_second\": %.1f, \"nets_per_second\": %.1f}%s\n",
                  points[i].name.c_str(), points[i].real_time_s, points[i].cpu_time_s,
                  points[i].mb_per_second, points[i].nets_per_second,
                  i + 1 < points.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_parse.json";
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0)
      out_path = argv[i] + 16;
    else
      positional.push_back(argv[i]);
  }
  const std::size_t net_count =
      positional.size() > 0 ? std::strtoul(positional[0], nullptr, 10) : 100000;
  const std::size_t nodes = positional.size() > 1 ? std::strtoul(positional[1], nullptr, 10) : 16;
  std::size_t jobs = positional.size() > 2 ? std::strtoul(positional[2], nullptr, 10)
                                           : std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;

  rct::bench::header("SPEF ingestion: mmap + indexed sections, serial vs parallel vs fused",
                     "parse throughput (no paper counterpart; ingestion substrate)");
  std::printf("# workload: %zu nets x %zu nodes, parallel jobs=%zu\n", net_count, nodes, jobs);
  std::printf("# hardware_concurrency: %u\n", std::thread::hardware_concurrency());
  rct::bench::rule();

  const fs::path scratch =
      fs::temp_directory_path() / ("perf_parse_" + std::to_string(::getpid()));
  fs::create_directories(scratch);
  const fs::path deck = scratch / "deck.spef";
  const std::size_t bytes = write_deck(deck, net_count, nodes);
  const double mb = static_cast<double>(bytes) / 1e6;
  const double count = static_cast<double>(net_count);

  std::vector<Datapoint> points;
  std::printf("%-10s %10s %10s %10s %12s %10s\n", "phase", "wall_s", "cpu_s", "mb_per_s",
              "nets_per_s", "index_s");

  const auto run_parse = [&](const char* label, const char* bench_name, std::size_t phase_jobs) {
    rct::engine::ParseOptions options;
    options.jobs = phase_jobs;
    const double cpu0 = cpu_seconds();
    const rct::engine::ParsedSpef parsed =
        rct::engine::parse_spef_parallel_file(deck.string(), options);
    const double cpu = cpu_seconds() - cpu0;
    if (parsed.file.nets.size() != net_count) {
      std::fprintf(stderr, "error: %s parse produced %zu nets, expected %zu\n", label,
                   parsed.file.nets.size(), net_count);
      std::exit(1);
    }
    const double wall = parsed.stats.total_seconds;
    std::printf("%-10s %10.4f %10.4f %10.1f %12.1f %10.4f\n", label, wall, cpu, mb / wall,
                count / wall, parsed.stats.index_seconds);
    points.push_back({bench_name, wall, cpu, mb / wall, count / wall});
    return wall;
  };

  const double serial_wall = run_parse("serial", "BM_ParseSerial", 1);
  const double parallel_wall = run_parse("parallel", "BM_ParseParallel", jobs);

  {
    // Fused: parse + Elmore analysis overlapped in the same section tasks.
    rct::engine::BatchOptions batch;
    batch.jobs = jobs;
    const double cpu0 = cpu_seconds();
    const auto t0 = std::chrono::steady_clock::now();
    const rct::engine::FileBatchResult result =
        rct::engine::analyze_spef_file(deck.string(), batch);
    const auto t1 = std::chrono::steady_clock::now();
    const double cpu = cpu_seconds() - cpu0;
    if (result.batch.nets.size() != net_count) {
      std::fprintf(stderr, "error: fused run produced %zu nets, expected %zu\n",
                   result.batch.nets.size(), net_count);
      std::exit(1);
    }
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    std::printf("%-10s %10.4f %10.4f %10.1f %12.1f %10.4f\n", "fused", wall, cpu, mb / wall,
                count / wall, result.parse.index_seconds);
    points.push_back({"BM_ParseFusedAnalyze", wall, cpu, mb / wall, count / wall});
  }

  std::printf("# deck: %.1f MB; parallel speedup %.2fx over serial (wall; on a 1-CPU host\n",
              mb, serial_wall / parallel_wall);
  std::printf("#   expect ~1x wall — compare cpu_s across runs instead)\n");

  fs::remove_all(scratch);
  if (!write_benchmark_json(out_path, points, net_count, nodes, bytes, jobs)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  std::printf("# datapoints: %s\n", out_path.c_str());
  return 0;
}
