// perf_report — build_report() cost with and without a shared TreeContext,
// against a replica of the pre-refactor algorithm.
//
// The pre-refactor build_report derived everything per call and read
// RCTree::depth per row — an O(depth) walk that turns the per-node report
// loop quadratic on line topologies.  The refactored pipeline does a fixed
// set of linear passes (TreeContext) shared by every consumer.  This
// benchmark pins the claim: on a 2^14-node line the refactored
// build_report (exact solve disabled) must be >= 5x faster than the legacy
// replica.
//
//   Legacy  — pre-refactor replica (per-call stats/PRH + depth walks)
//   Fresh   — build_report(tree): one-shot context built inside the call
//   Shared  — build_report(context): context built once, reused per call
//
// It also carries the obs overhead gate: build_report is instrumented with
// src/obs spans/timers/counters, and with tracing disarmed (the default)
// that instrumentation must cost < 2% against an uninstrumented replica of
// the same loop — the "disabled overhead is near zero" claim, measured.
// The gate's obs metrics snapshot lands in BENCH_obs.json.
//
// By default results land in BENCH_report.json (benchmark's JSON format);
// pass your own --benchmark_out to override.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "analysis/tree_context.hpp"
#include "core/penfield_rubinstein.hpp"
#include "core/report.hpp"
#include "moments/central.hpp"
#include "obs/metrics.hpp"
#include "rctree/generators.hpp"
#include "robust/fault.hpp"
#include "sim/exact.hpp"

namespace {

using namespace rct;

core::ReportOptions bench_options() {
  core::ReportOptions opt;
  opt.with_exact = false;  // isolate the bound pipeline from the O(N^3) solve
  return opt;
}

RCTree make_tree(bool line, std::size_t nodes) {
  if (line) return gen::line(nodes, 100.0, 0.1e-12, 50.0, 0.05e-12);
  return gen::random_tree(nodes, /*seed=*/12345);
}

/// Pre-refactor build_report replica: per-call derivations and the
/// O(depth)-per-row RCTree::depth accessor.
std::vector<core::NodeReport> legacy_build_report(const RCTree& tree,
                                                  const core::ReportOptions& options) {
  const auto stats = moments::impulse_stats(tree);
  const core::PrhBounds prh(tree);
  std::vector<core::NodeReport> rows;
  for (NodeId i = 0; i < tree.size(); ++i) {
    if (options.leaves_only && !tree.is_leaf(i)) continue;
    core::NodeReport r;
    r.name = tree.name(i);
    r.depth = tree.depth(i);
    r.elmore = stats[i].mean;
    r.sigma = stats[i].sigma;
    r.skewness = stats[i].skewness;
    r.lower_bound = std::max(r.elmore - r.sigma, 0.0);
    r.single_pole = -std::log(1.0 - options.fraction) * r.elmore;
    r.prh_tmin = prh.t_min(i, options.fraction);
    r.prh_tmax = prh.t_max(i, options.fraction);
    rows.push_back(std::move(r));
  }
  return rows;
}

void BM_ReportLegacy(benchmark::State& state, bool line) {
  const RCTree tree = make_tree(line, static_cast<std::size_t>(state.range(0)));
  const core::ReportOptions opt = bench_options();
  for (auto _ : state) {
    auto rows = legacy_build_report(tree, opt);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_ReportFresh(benchmark::State& state, bool line) {
  const RCTree tree = make_tree(line, static_cast<std::size_t>(state.range(0)));
  const core::ReportOptions opt = bench_options();
  for (auto _ : state) {
    auto rows = core::build_report(tree, opt);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_ReportShared(benchmark::State& state, bool line) {
  const RCTree tree = make_tree(line, static_cast<std::size_t>(state.range(0)));
  const analysis::TreeContext ctx(tree);
  const core::ReportOptions opt = bench_options();
  for (auto _ : state) {
    auto rows = core::build_report(ctx, opt);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_ContextBuild(benchmark::State& state, bool line) {
  const RCTree tree = make_tree(line, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    analysis::TreeContext ctx(tree);
    benchmark::DoNotOptimize(ctx.elmore_delays().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

/// Replica of the current build_report(context) with ONLY the src/obs
/// hooks stripped — everything else (deadline polling, fault sites, the
/// per-row isfinite/degraded checks) must stay, or their cost gets billed
/// to the obs instrumentation.  Keep in sync with src/core/report.cpp.
/// noinline: the real build_report is an out-of-line library call, so the
/// replica must be one too — letting it inline into the timing loop hands
/// it optimizations the library call cannot get, and the difference would
/// be billed to the obs hooks.
__attribute__((noinline)) std::vector<core::NodeReport> nohooks_build_report(
    const analysis::TreeContext& context, const core::ReportOptions& options) {
  constexpr NodeId kDeadlineStride = 64;
  const RCTree& tree = context.tree();
  if (options.deadline) options.deadline->check("core.report.build");
  const auto stats = context.impulse_stats();
  const moments::PrhTerms& prh = context.prh_terms();
  const auto depths = context.depths();
  std::optional<sim::ExactAnalysis> exact;
  bool eigensolve_invalid = false;
  if (options.with_exact && tree.size() <= options.exact_node_limit) {
    if (options.deadline) options.deadline->check("core.report.eigensolve");
    robust::fault::maybe_throw("core.report.eigensolve", robust::Code::kNonConvergence);
    exact.emplace(tree);
    bool valid = true;
    for (const double l : exact->poles())
      if (!std::isfinite(l) || l <= 0.0) valid = false;
    if (!valid) {
      exact.reset();
      eigensolve_invalid = true;
    }
  }
  constexpr double kBoundRelTol = 1e-6;

  std::vector<core::NodeReport> rows;
  for (NodeId i = 0; i < tree.size(); ++i) {
    if (options.deadline && i % kDeadlineStride == 0) options.deadline->check("core.report.rows");
    if (options.leaves_only && !tree.is_leaf(i)) continue;
    core::NodeReport r;
    r.name = tree.name(i);
    r.depth = depths[i];
    r.elmore = stats[i].mean;
    r.sigma = stats[i].sigma;
    r.skewness = stats[i].skewness;
    r.lower_bound = std::max(r.elmore - r.sigma, 0.0);
    r.single_pole = -std::log(1.0 - options.fraction) * r.elmore;
    r.prh_tmin = core::prh_t_min(prh, i, options.fraction);
    r.prh_tmax = core::prh_t_max(prh, i, options.fraction);
    if (!std::isfinite(r.elmore) || !std::isfinite(r.sigma)) r.degraded = true;
    if (eigensolve_invalid) r.degraded = true;
    if (exact) {
      double d = exact->step_delay(i, options.fraction);
      d = robust::fault::corrupt("core.report.exact_delay", d);
      const double tol = kBoundRelTol * std::max(std::abs(r.elmore), 1e-18);
      const bool median = options.fraction == 0.5;
      if (!std::isfinite(d) || (median && (d < r.lower_bound - tol || d > r.elmore + tol))) {
        r.degraded = true;
      } else {
        r.exact_delay = d;
        r.exact_rise = exact->step_rise_time_10_90(i);
      }
    }
    rows.push_back(std::move(r));
  }
  return rows;
}

/// Obs overhead gate: instrumented build_report vs the no-hooks replica on
/// a 2^14-node line, min-of-repeats timing (min filters scheduler noise).
/// Returns false when the instrumented path is > `tolerance` slower.
bool run_obs_overhead_gate(double tolerance) {
  const RCTree tree = make_tree(/*line=*/true, 1 << 14);
  const analysis::TreeContext ctx(tree);
  const core::ReportOptions opt = bench_options();
  // Warm the lazy context members so both paths measure only the row loop.
  (void)core::build_report(ctx, opt);
  (void)nohooks_build_report(ctx, opt);

  const auto time_once = [&](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 3; ++i) {
      auto rows = fn();
      benchmark::DoNotOptimize(rows);
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };
  // Preemption and frequency drift only ever ADD time, so the pairs with
  // the smallest COMBINED time are the ones that ran on a quiet machine —
  // and within a pair both variants saw the same machine state, so the
  // per-pair ratio cancels drift.  Take the median ratio over the quietest
  // quarter of many interleaved pairs (order alternating inside each pair,
  // so neither variant systematically runs with warmer caches).
  struct Pair {
    double nohooks, hooked;
  };
  std::vector<Pair> pairs;
  double nohooks_s = 1e300;
  double hooked_s = 1e300;
  for (int rep = 0; rep < 150; ++rep) {
    double n;
    double h;
    if (rep % 2 == 0) {
      n = time_once([&] { return nohooks_build_report(ctx, opt); });
      h = time_once([&] { return core::build_report(ctx, opt); });
    } else {
      h = time_once([&] { return core::build_report(ctx, opt); });
      n = time_once([&] { return nohooks_build_report(ctx, opt); });
    }
    pairs.push_back({n, h});
    nohooks_s = std::min(nohooks_s, n);
    hooked_s = std::min(hooked_s, h);
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    return a.nohooks + a.hooked < b.nohooks + b.hooked;
  });
  pairs.resize(pairs.size() / 4);  // the quiet-machine pairs
  std::vector<double> ratios;
  ratios.reserve(pairs.size());
  for (const Pair& p : pairs) ratios.push_back(p.hooked / p.nohooks);
  std::sort(ratios.begin(), ratios.end());
  const double overhead = ratios[ratios.size() / 2] - 1.0;
  std::printf("obs overhead gate: instrumented %.3f ms vs no-hooks %.3f ms -> %+.2f%% "
              "(tolerance %.0f%%)\n",
              hooked_s * 1e3 / 3, nohooks_s * 1e3 / 3, overhead * 100.0, tolerance * 100.0);
  return overhead < tolerance;
}

// N = 2^10 .. 2^16; the legacy replica is capped at 2^14 (its quadratic
// depth walks make 2^16 lines take minutes).
constexpr std::int64_t kMin = 1 << 10, kMax = 1 << 16, kLegacyMax = 1 << 14;

BENCHMARK_CAPTURE(BM_ReportLegacy, line, true)->RangeMultiplier(4)->Range(kMin, kLegacyMax)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ReportLegacy, random, false)->RangeMultiplier(4)->Range(kMin, kLegacyMax)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ReportFresh, line, true)->RangeMultiplier(4)->Range(kMin, kMax)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ReportFresh, random, false)->RangeMultiplier(4)->Range(kMin, kMax)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ReportShared, line, true)->RangeMultiplier(4)->Range(kMin, kMax)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ReportShared, random, false)->RangeMultiplier(4)->Range(kMin, kMax)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ContextBuild, line, true)->RangeMultiplier(4)->Range(kMin, kMax)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Default to a JSON datapoint file unless the caller chose their own.
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_report.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Noise on a shared box only ever inflates the reading, so one quiet
  // round under tolerance proves the claim; retry through load spikes.
  bool gate_ok = false;
  for (int round = 0; round < 3 && !gate_ok; ++round)
    gate_ok = run_obs_overhead_gate(/*tolerance=*/0.02);
  // The gate run itself populated the core/analysis metrics; persist the
  // snapshot as the first point of the observability bench trajectory.
  if (!rct::obs::registry().write_json("BENCH_obs.json"))
    std::fprintf(stderr, "warning: cannot write BENCH_obs.json\n");
  if (!gate_ok) {
    std::fprintf(stderr, "FAIL: obs instrumentation-disabled overhead exceeds 2%%\n");
    return 1;
  }
  return 0;
}
