// perf_report — build_report() cost with and without a shared TreeContext,
// against a replica of the pre-refactor algorithm.
//
// The pre-refactor build_report derived everything per call and read
// RCTree::depth per row — an O(depth) walk that turns the per-node report
// loop quadratic on line topologies.  The refactored pipeline does a fixed
// set of linear passes (TreeContext) shared by every consumer.  This
// benchmark pins the claim: on a 2^14-node line the refactored
// build_report (exact solve disabled) must be >= 5x faster than the legacy
// replica.
//
//   Legacy  — pre-refactor replica (per-call stats/PRH + depth walks)
//   Fresh   — build_report(tree): one-shot context built inside the call
//   Shared  — build_report(context): context built once, reused per call
//
// By default results land in BENCH_report.json (benchmark's JSON format);
// pass your own --benchmark_out to override.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/tree_context.hpp"
#include "core/penfield_rubinstein.hpp"
#include "core/report.hpp"
#include "moments/central.hpp"
#include "rctree/generators.hpp"

namespace {

using namespace rct;

core::ReportOptions bench_options() {
  core::ReportOptions opt;
  opt.with_exact = false;  // isolate the bound pipeline from the O(N^3) solve
  return opt;
}

RCTree make_tree(bool line, std::size_t nodes) {
  if (line) return gen::line(nodes, 100.0, 0.1e-12, 50.0, 0.05e-12);
  return gen::random_tree(nodes, /*seed=*/12345);
}

/// Pre-refactor build_report replica: per-call derivations and the
/// O(depth)-per-row RCTree::depth accessor.
std::vector<core::NodeReport> legacy_build_report(const RCTree& tree,
                                                  const core::ReportOptions& options) {
  const auto stats = moments::impulse_stats(tree);
  const core::PrhBounds prh(tree);
  std::vector<core::NodeReport> rows;
  for (NodeId i = 0; i < tree.size(); ++i) {
    if (options.leaves_only && !tree.is_leaf(i)) continue;
    core::NodeReport r;
    r.name = tree.name(i);
    r.depth = tree.depth(i);
    r.elmore = stats[i].mean;
    r.sigma = stats[i].sigma;
    r.skewness = stats[i].skewness;
    r.lower_bound = std::max(r.elmore - r.sigma, 0.0);
    r.single_pole = -std::log(1.0 - options.fraction) * r.elmore;
    r.prh_tmin = prh.t_min(i, options.fraction);
    r.prh_tmax = prh.t_max(i, options.fraction);
    rows.push_back(std::move(r));
  }
  return rows;
}

void BM_ReportLegacy(benchmark::State& state, bool line) {
  const RCTree tree = make_tree(line, static_cast<std::size_t>(state.range(0)));
  const core::ReportOptions opt = bench_options();
  for (auto _ : state) {
    auto rows = legacy_build_report(tree, opt);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_ReportFresh(benchmark::State& state, bool line) {
  const RCTree tree = make_tree(line, static_cast<std::size_t>(state.range(0)));
  const core::ReportOptions opt = bench_options();
  for (auto _ : state) {
    auto rows = core::build_report(tree, opt);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_ReportShared(benchmark::State& state, bool line) {
  const RCTree tree = make_tree(line, static_cast<std::size_t>(state.range(0)));
  const analysis::TreeContext ctx(tree);
  const core::ReportOptions opt = bench_options();
  for (auto _ : state) {
    auto rows = core::build_report(ctx, opt);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_ContextBuild(benchmark::State& state, bool line) {
  const RCTree tree = make_tree(line, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    analysis::TreeContext ctx(tree);
    benchmark::DoNotOptimize(ctx.elmore_delays().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

// N = 2^10 .. 2^16; the legacy replica is capped at 2^14 (its quadratic
// depth walks make 2^16 lines take minutes).
constexpr std::int64_t kMin = 1 << 10, kMax = 1 << 16, kLegacyMax = 1 << 14;

BENCHMARK_CAPTURE(BM_ReportLegacy, line, true)->RangeMultiplier(4)->Range(kMin, kLegacyMax)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ReportLegacy, random, false)->RangeMultiplier(4)->Range(kMin, kLegacyMax)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ReportFresh, line, true)->RangeMultiplier(4)->Range(kMin, kMax)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ReportFresh, random, false)->RangeMultiplier(4)->Range(kMin, kMax)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ReportShared, line, true)->RangeMultiplier(4)->Range(kMin, kMax)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ReportShared, random, false)->RangeMultiplier(4)->Range(kMin, kMax)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ContextBuild, line, true)->RangeMultiplier(4)->Range(kMin, kMax)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Default to a JSON datapoint file unless the caller chose their own.
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_report.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
