// Ablation A6: the Elmore bound under process variation.
//
// Monte-Carlo over per-component lognormal R/C variation: report the delay
// quantiles of the Fig. 1 nodes as the variation sigma grows, and verify
// that the per-sample theorem makes the sampled q95 a guaranteed-pessimistic
// sign-off number (every sample's Elmore value bounds that sample's true
// delay, checked on a sample subset with the exact solver).

#include <cstdio>

#include "bench_common.hpp"
#include "core/variation.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/circuits.hpp"
#include "sim/exact.hpp"

using namespace rct;

int main() {
  bench::header("Ablation: Elmore-delay distribution under R/C process variation",
                "statistical extension of Table I");

  const RCTree tree = circuits::fig1();
  const NodeId node = tree.at("n5");
  constexpr std::size_t kSamples = 2000;

  std::printf("%8s %12s %12s %12s %12s %12s\n", "sigma", "mean (ns)", "stddev", "q05", "q50",
              "q95");
  bench::rule();
  for (double sigma : {0.02, 0.05, 0.10, 0.20}) {
    core::VariationModel m;
    m.res_sigma = sigma;
    m.cap_sigma = sigma;
    const auto s = core::elmore_variation(tree, node, m, kSamples, 20260706);
    std::printf("%8.2f %12.4f %12.4f %12.4f %12.4f %12.4f\n", sigma, bench::ns(s.mean),
                bench::ns(s.stddev), bench::ns(s.q05), bench::ns(s.q50), bench::ns(s.q95));
  }
  bench::rule();

  // Per-sample soundness spot-check with the exact solver.
  core::VariationModel m;
  m.res_sigma = 0.15;
  m.cap_sigma = 0.15;
  bool ok = true;
  for (std::uint64_t s = 0; s < 25; ++s) {
    const RCTree sample = core::sample_variation(tree, m, 777 + s);
    const sim::ExactAnalysis exact(sample);
    const auto td = moments::elmore_delays(sample);
    for (NodeId i = 0; i < sample.size(); ++i)
      ok = ok && exact.step_delay(i) <= td[i] * (1 + 1e-9);
  }
  std::printf("# theorem-holds-on-every-sampled-circuit (25 x 7 checks): %s\n",
              ok ? "PASS" : "FAIL");
  std::printf("# reading: the sampled q95 of a *bound* is itself a bound with 95%%\n");
  std::printf("# statistical confidence over the process — safe for sign-off.\n");
  return ok ? 0 : 1;
}
