// Perf P1: the O(N) claims of Section II-C — Elmore delays, higher-order
// moments and the PRH terms all in linear time, on lines and random trees
// up to 2^17 nodes.

#include <benchmark/benchmark.h>

#include "moments/central.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/generators.hpp"

using namespace rct;

namespace {

RCTree make_tree(bool line, std::size_t n) {
  if (line) return gen::line(n - 1, 20.0, 5e-15, 100.0, 30e-15);
  return gen::random_tree(n, 42);
}

void BM_ElmoreLine(benchmark::State& state) {
  const RCTree t = make_tree(true, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(moments::elmore_delays(t));
  state.SetComplexityN(state.range(0));
}

void BM_ElmoreRandom(benchmark::State& state) {
  const RCTree t = make_tree(false, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(moments::elmore_delays(t));
  state.SetComplexityN(state.range(0));
}

void BM_Moments4Line(benchmark::State& state) {
  const RCTree t = make_tree(true, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(moments::transfer_moments(t, 4));
  state.SetComplexityN(state.range(0));
}

void BM_PrhTermsLine(benchmark::State& state) {
  const RCTree t = make_tree(true, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(moments::prh_terms(t));
  state.SetComplexityN(state.range(0));
}

void BM_ImpulseStatsRandom(benchmark::State& state) {
  const RCTree t = make_tree(false, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(moments::impulse_stats(t));
  state.SetComplexityN(state.range(0));
}

}  // namespace

BENCHMARK(BM_ElmoreLine)->RangeMultiplier(4)->Range(1 << 9, 1 << 17)->Complexity(benchmark::oN);
BENCHMARK(BM_ElmoreRandom)->RangeMultiplier(4)->Range(1 << 9, 1 << 17)->Complexity(benchmark::oN);
BENCHMARK(BM_Moments4Line)->RangeMultiplier(4)->Range(1 << 9, 1 << 17)->Complexity(benchmark::oN);
BENCHMARK(BM_PrhTermsLine)->RangeMultiplier(4)->Range(1 << 9, 1 << 17)->Complexity(benchmark::oN);
BENCHMARK(BM_ImpulseStatsRandom)
    ->RangeMultiplier(4)
    ->Range(1 << 9, 1 << 15)
    ->Complexity(benchmark::oN);
