// Perf P3: ECO-style incremental Elmore maintenance vs. full recompute.
// The O(depth) update/query path is what makes Elmore the inner-loop metric
// for sizing/buffering optimizers.

#include <benchmark/benchmark.h>

#include "moments/incremental.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/generators.hpp"

using namespace rct;

namespace {

void BM_FullRecomputeAfterOneChange(benchmark::State& state) {
  RCTree t = gen::random_tree(static_cast<std::size_t>(state.range(0)), 11);
  moments::IncrementalElmore inc(t);  // used only to mutate consistently
  std::size_t which = 0;
  for (auto _ : state) {
    inc.add_cap(which % inc.size(), 1e-18);
    const RCTree snap = inc.snapshot();
    benchmark::DoNotOptimize(moments::elmore_delays(snap)[which % inc.size()]);
    ++which;
  }
  state.SetComplexityN(state.range(0));
}

void BM_IncrementalChangeAndQuery(benchmark::State& state) {
  const RCTree t = gen::random_tree(static_cast<std::size_t>(state.range(0)), 11);
  moments::IncrementalElmore inc(t);
  std::size_t which = 0;
  for (auto _ : state) {
    inc.add_cap(which % inc.size(), 1e-18);
    benchmark::DoNotOptimize(inc.elmore(which % inc.size()));
    ++which;
  }
}

void BM_IncrementalQueryOnly(benchmark::State& state) {
  const RCTree t = gen::random_tree(static_cast<std::size_t>(state.range(0)), 11);
  const moments::IncrementalElmore inc(t);
  std::size_t which = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(inc.elmore(which++ % inc.size()));
  }
}

}  // namespace

BENCHMARK(BM_FullRecomputeAfterOneChange)
    ->RangeMultiplier(8)
    ->Range(1 << 10, 1 << 16)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_IncrementalChangeAndQuery)->RangeMultiplier(8)->Range(1 << 10, 1 << 16);
BENCHMARK(BM_IncrementalQueryOnly)->RangeMultiplier(8)->Range(1 << 10, 1 << 16);
