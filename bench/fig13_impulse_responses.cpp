// Fig. 13 reproduction: impulse responses at nodes A (driving point),
// B (middle), C (leaf) of the 25-node tree — showing the response becoming
// less skewed (more symmetric) away from the driving point.

#include <cstdio>

#include "bench_common.hpp"
#include "moments/central.hpp"
#include "rctree/circuits.hpp"
#include "sim/exact.hpp"

using namespace rct;

int main() {
  bench::header("Fig. 13: impulse responses at A (driver), B (middle), C (leaf)",
                "Gupta/Tutuianu/Pileggi DAC'95, Figure 13");

  const RCTree tree = circuits::tree25();
  const sim::ExactAnalysis exact(tree);
  const auto observed = circuits::tree25_observed(tree);
  const auto stats = moments::impulse_stats(tree);

  std::printf("%12s %14s %14s %14s   (h in 1/ns)\n", "t(ns)", "A", "B", "C");
  bench::rule();
  for (double t : sim::uniform_grid(6e-9, 61)) {
    std::printf("%12.2f", bench::ns(t));
    for (NodeId n : observed) std::printf(" %14.6f", exact.impulse_response(n, t) * 1e-9);
    std::printf("\n");
  }
  bench::rule();
  std::printf("# skew statistics behind the figure (gamma must fall A -> B -> C):\n");
  for (NodeId n : observed)
    std::printf("# node %-2s depth %2zu  sigma %.3fns  skewness %8.3f\n", tree.name(n).c_str(),
                tree.depth(n), bench::ns(stats[n].sigma), stats[n].skewness);

  const bool ok = stats[observed[0]].skewness > stats[observed[1]].skewness &&
                  stats[observed[1]].skewness > stats[observed[2]].skewness;
  std::printf("# skewness-decreases-downstream: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
