// Fig. 12 reproduction: 50%-to-50% delay as a function of input rise time
// for the Fig. 1 circuit — the delay climbs monotonically and asymptotes at
// the Elmore value T_D from below (Corollary 3).

#include <cstdio>

#include "bench_common.hpp"
#include "core/generalized_input.hpp"
#include "rctree/circuits.hpp"
#include "sim/exact.hpp"

using namespace rct;

int main() {
  bench::header("Fig. 12: delay vs. input rise time (asymptote at T_D)",
                "Gupta/Tutuianu/Pileggi DAC'95, Figure 12");

  const RCTree tree = circuits::fig1();
  const sim::ExactAnalysis exact(tree);
  const auto observed = circuits::fig1_observed(tree);
  const auto sweep = core::log_sweep(0.05e-9, 100e-9, 25);

  std::printf("%12s", "tr(ns)");
  for (NodeId n : observed) std::printf(" %10s", tree.name(n).c_str());
  std::printf("\n");
  bench::rule();

  std::vector<std::vector<core::DelayCurvePoint>> curves;
  for (NodeId n : observed) curves.push_back(core::delay_curve(tree, exact, n, sweep));
  for (std::size_t k = 0; k < sweep.size(); ++k) {
    std::printf("%12.3f", bench::ns(sweep[k]));
    for (const auto& c : curves) std::printf(" %10.4f", bench::ns(c[k].delay));
    std::printf("\n");
  }
  bench::rule();
  std::printf("%12s", "T_D (ns):");
  for (const auto& c : curves) std::printf(" %10.4f", bench::ns(c.front().elmore));
  std::printf("\n");

  bool ok = true;
  for (const auto& c : curves) {
    for (std::size_t k = 1; k < c.size(); ++k)
      ok = ok && c[k].delay >= c[k - 1].delay * (1 - 1e-7);
    // At tr = 100 ns the delay sits ON the asymptote; allow root-finder
    // epsilon above T_D.
    ok = ok && c.back().delay <= c.back().elmore * (1 + 1e-6) &&
         c.back().delay > 0.98 * c.back().elmore;
  }
  std::printf("# monotone-increase-and-asymptote-at-TD: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
