// Table II reproduction: 50%-to-50% delays and relative Elmore error at
// nodes A (driving point), B (mid-line), C (leaf) of the 25-node tree, for
// saturated-ramp inputs with rise times 1, 5 and 10 ns.

#include <cstdio>

#include "bench_common.hpp"
#include "core/elmore.hpp"
#include "core/generalized_input.hpp"
#include "rctree/circuits.hpp"
#include "sim/exact.hpp"

using namespace rct;

int main() {
  bench::header("Table II: delays and relative error at nodes A, B, C along a signal path",
                "Gupta/Tutuianu/Pileggi DAC'95, Table II");

  const RCTree tree = circuits::tree25();
  const sim::ExactAnalysis exact(tree);
  const auto observed = circuits::tree25_observed(tree);
  const auto published = circuits::table2_published();
  const double rise_times[3] = {1e-9, 5e-9, 10e-9};

  std::printf("%-5s %-6s %9s", "node", "which", "elmore");
  for (double tr : rise_times) std::printf(" | %8.0fns %7s", bench::ns(tr), "%err");
  std::printf("\n");
  bench::rule();

  bool shape_ok = true;
  for (int k = 0; k < 3; ++k) {
    const NodeId node = observed[k];
    const double td = core::elmore_delay(tree, node);
    std::printf("%-5s %-6s %9.3f", published[k].node, "ours", bench::ns(td));
    double prev_err = 1e300;
    for (double tr : rise_times) {
      const sim::SaturatedRampSource ramp(tr);
      const double delay = exact.delay_50_50(node, ramp);
      const double err = (td - delay) / delay;
      std::printf(" | %8.4f %7.2f", bench::ns(delay), 100.0 * err);
      shape_ok = shape_ok && err >= 0.0 && err < prev_err;
      prev_err = err;
    }
    std::printf("\n");
    std::printf("%-5s %-6s %9.3f", published[k].node, "paper", bench::ns(published[k].elmore));
    std::printf(" | %8.4f %7.2f", bench::ns(published[k].delay_1ns),
                100.0 * published[k].error_1ns);
    std::printf(" | %8.4f %7.2f", bench::ns(published[k].delay_5ns),
                100.0 * published[k].error_5ns);
    std::printf(" | %8.4f %7.2f\n", bench::ns(published[k].delay_10ns),
                100.0 * published[k].error_10ns);
  }
  bench::rule();
  std::printf("# shape checks: error positive everywhere (Elmore over-estimates) and\n");
  std::printf("# strictly decreasing with rise time at every node (Corollary 3).\n");
  std::printf("# error-monotone-in-rise-time: %s\n", shape_ok ? "PASS" : "FAIL");
  return shape_ok ? 0 : 1;
}
