// Ablation A5 (negative control): why the theorem says *RC trees*.
//
// We sweep the inductance of a uniform ladder from negligible to dominant
// and measure everything the proof relies on: monotonicity of the step
// response, overshoot, and whether the 50% delay stays below the first
// moment ("Elmore delay", which inductance does not enter).  In the RC
// limit the bound holds with margin; as Q rises the premises fail and the
// "bound" is violated by orders of magnitude.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "sim/rlc_line.hpp"

using namespace rct;

int main() {
  bench::header("Negative control: the Elmore bound on RLC ladders",
                "motivates the paper's RC-tree restriction (Lemma 1 premises)");

  const std::size_t segs = 6;
  const double rd = 10.0;
  const double r = 20.0;
  const double c = 50e-15;

  std::printf("%12s %12s %12s %12s %10s %12s %8s\n", "L/seg (H)", "TD (ps)", "t50 (ps)",
              "t50/TD", "overshoot", "monotone?", "bound?");
  bench::rule();
  bool rc_limit_ok = false;
  bool violation_seen = false;
  for (double l : {1e-14, 1e-12, 1e-11, 1e-10, 1e-9, 1e-8}) {
    const sim::RlcLine line(segs, rd, r, l, c);
    const double td = line.elmore_delay();
    const double t50 = line.step_delay(0.5);
    const double over = line.overshoot();
    const auto w = line.step_response(line.settle_horizon(), 8000);
    const bool mono = w.is_monotone_nondecreasing(1e-4);
    const bool bound = t50 <= td * (1 + 1e-6);
    std::printf("%12.0e %12.3f %12.3f %12.2f %10.3f %12s %8s\n", l, td * 1e12, t50 * 1e12,
                t50 / td, over, mono ? "yes" : "NO", bound ? "holds" : "FAILS");
    if (l <= 1e-12 && bound && mono) rc_limit_ok = true;
    if (!bound && !mono && over > 1.05) violation_seen = true;
  }
  bench::rule();
  std::printf("# RC limit obeys the theorem, high-Q ladders violate every premise —\n");
  std::printf("# the restriction to RC trees is load-bearing, not cosmetic.\n");
  std::printf("# rc-limit-holds-and-violation-demonstrated: %s\n",
              (rc_limit_ok && violation_seen) ? "PASS" : "FAIL");
  return (rc_limit_ok && violation_seen) ? 0 : 1;
}
