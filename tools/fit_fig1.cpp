// Calibration of the paper's unpublished component values.
//
// The paper prints the Fig. 1 topology and the Table I metrics, but not the
// R/C values; likewise for the 25-node tree behind Table II / Figs. 13-14.
// This tool recovers values by Nelder-Mead on log-parameters, minimizing the
// squared relative mismatch against the published metrics, and prints C++
// initializers to paste into src/rctree/circuits.cpp plus the residual per
// target.  Run once; the repository ships with its output.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/bounds.hpp"
#include "core/penfield_rubinstein.hpp"
#include "linalg/nelder_mead.hpp"
#include "moments/central.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/rctree.hpp"
#include "sim/exact.hpp"

using namespace rct;

namespace {

constexpr double kNs = 1e-9;

RCTree build_fig1(const std::vector<double>& logp) {
  // logp: log of R1..R7 (ohms), C1..C7 (farads).
  auto r = [&](int i) { return std::exp(logp[i]); };
  auto c = [&](int i) { return std::exp(logp[7 + i]); };
  RCTreeBuilder b;
  const NodeId n1 = b.add_node("n1", kSource, r(0), c(0));
  const NodeId n2 = b.add_node("n2", n1, r(1), c(1));
  const NodeId n3 = b.add_node("n3", n2, r(2), c(2));
  const NodeId n4 = b.add_node("n4", n3, r(3), c(3));
  b.add_node("n5", n4, r(4), c(4));
  const NodeId n6 = b.add_node("n6", n1, r(5), c(5));
  b.add_node("n7", n6, r(6), c(6));
  return std::move(b).build();
}

struct Fig1Metrics {
  double td[3];      // n1 n5 n7
  double actual[3];
  double tmax[3];
  double tmin[3];
  double lower[3];
};

Fig1Metrics measure_fig1(const RCTree& t) {
  Fig1Metrics m{};
  const NodeId ids[3] = {t.at("n1"), t.at("n5"), t.at("n7")};
  const auto stats = moments::impulse_stats(t);
  const core::PrhBounds prh(t);
  const sim::ExactAnalysis exact(t);
  for (int k = 0; k < 3; ++k) {
    const NodeId i = ids[k];
    m.td[k] = stats[i].mean;
    m.actual[k] = exact.step_delay(i);
    m.tmax[k] = prh.t_max(i, 0.5);
    m.tmin[k] = prh.t_min(i, 0.5);
    m.lower[k] = std::max(stats[i].mean - stats[i].sigma, 0.0);
  }
  return m;
}

// Hinge penalty keeping log-value inside [log(lo), log(hi)] — without it the
// optimizer drifts to physically absurd values (GOhm resistors, 1e-23 F).
double window_penalty(double logv, double lo, double hi) {
  const double a = std::log(lo);
  const double b = std::log(hi);
  double p = 0.0;
  if (logv < a) p = (a - logv);
  if (logv > b) p = (logv - b);
  return 4.0 * p * p;
}

double fig1_loss(const std::vector<double>& logp) {
  RCTree t = build_fig1(logp);
  Fig1Metrics m;
  try {
    m = measure_fig1(t);
  } catch (const std::exception&) {
    return 1e9;
  }
  const double td_t[3] = {0.55, 1.20, 0.75};
  const double ac_t[3] = {0.196, 0.919, 0.450};
  const double tx_t[3] = {0.55, 1.32, 1.02};
  const double tn_t[3] = {0.0, 0.51, 0.054};
  const double lo_t[3] = {0.0, 0.20, 0.0};
  auto rel = [](double got, double want) {
    const double g = got / kNs;
    if (want == 0.0) return (g / 0.05) * (g / 0.05);  // push toward 0 on a 50ps scale
    return (g - want) / want * ((g - want) / want);
  };
  double loss = 0.0;
  for (int k = 0; k < 3; ++k) {
    loss += 2.0 * rel(m.td[k], td_t[k]);      // Elmore values are exact in the paper
    loss += 2.0 * rel(m.actual[k], ac_t[k]);  // actual delays
    loss += rel(m.tmax[k], tx_t[k]);
    loss += rel(m.tmin[k], tn_t[k]);
    loss += rel(m.lower[k], lo_t[k]);
  }
  for (int i = 0; i < 7; ++i) loss += window_penalty(logp[i], 50.0, 50e3);
  for (int i = 7; i < 14; ++i) loss += window_penalty(logp[i], 1e-15, 1e-12);
  return loss;
}

void fit_fig1() {
  std::vector<double> x0;
  const double r0[7] = {1000, 500, 500, 500, 500, 500, 500};
  const double c0[7] = {0.10e-12, 0.08e-12, 0.08e-12, 0.08e-12, 0.08e-12, 0.08e-12, 0.05e-12};
  for (double v : r0) x0.push_back(std::log(v));
  for (double v : c0) x0.push_back(std::log(v));

  linalg::NelderMeadOptions opt;
  opt.max_iter = 20000;
  opt.initial_step = 0.4;
  auto res = linalg::nelder_mead(fig1_loss, x0, opt);
  // Restarts help on a 14-dim landscape.
  for (int round = 0; round < 10; ++round) res = linalg::nelder_mead(fig1_loss, res.x, opt);

  std::printf("== fig1 ==  loss %.6g after restarts\n", res.f);
  for (int i = 0; i < 7; ++i) std::printf("R%d = %.6g ohm\n", i + 1, std::exp(res.x[i]));
  for (int i = 0; i < 7; ++i) std::printf("C%d = %.6g F\n", i + 1, std::exp(res.x[7 + i]));

  const RCTree t = build_fig1(res.x);
  const Fig1Metrics m = measure_fig1(t);
  const char* names[3] = {"C1", "C5", "C7"};
  std::printf("%-4s %10s %10s %10s %10s %10s (ns)\n", "node", "TD", "actual", "tmax", "tmin",
              "mu-sigma");
  for (int k = 0; k < 3; ++k)
    std::printf("%-4s %10.4f %10.4f %10.4f %10.4f %10.4f\n", names[k], m.td[k] / kNs,
                m.actual[k] / kNs, m.tmax[k] / kNs, m.tmin[k] / kNs, m.lower[k] / kNs);
}

// ---------------------------------------------------------------------------

RCTree build_tree25(const std::vector<double>& logp) {
  // logp: log of r_drv, c_A, r_seg, c_seg, c_branch.
  const double r_drv = std::exp(logp[0]);
  const double c_a = std::exp(logp[1]);
  const double r_seg = std::exp(logp[2]);
  const double c_seg = std::exp(logp[3]);
  const double c_br = std::exp(logp[4]);
  RCTreeBuilder b;
  NodeId prev = b.add_node("A", kSource, r_drv, c_a);
  std::vector<NodeId> main_line;
  for (int i = 1; i <= 15; ++i) {
    prev = b.add_node(i == 8 ? "B" : "m" + std::to_string(i), prev, r_seg, c_seg);
    main_line.push_back(prev);
  }
  b.add_node("C", prev, r_seg, c_seg);
  NodeId s = main_line[2];
  for (int i = 1; i <= 4; ++i) s = b.add_node("p" + std::to_string(i), s, r_seg, c_br);
  s = main_line[10];
  for (int i = 1; i <= 4; ++i) s = b.add_node("q" + std::to_string(i), s, r_seg, c_br);
  return std::move(b).build();
}

double tree25_loss(const std::vector<double>& logp) {
  RCTree t;
  std::vector<double> td;
  try {
    t = build_tree25(logp);
    td = moments::elmore_delays(t);
  } catch (const std::exception&) {
    return 1e9;
  }
  const double want[3] = {0.02, 1.13, 1.56};
  const NodeId ids[3] = {t.at("A"), t.at("B"), t.at("C")};
  double loss = 0.0;
  for (int k = 0; k < 3; ++k) {
    const double g = td[ids[k]] / kNs;
    loss += (g - want[k]) / want[k] * ((g - want[k]) / want[k]);
  }
  loss += window_penalty(logp[0], 10.0, 200.0);     // driver resistance
  loss += window_penalty(logp[1], 10e-15, 300e-15); // cap at A
  loss += window_penalty(logp[2], 50.0, 500.0);     // segment resistance
  loss += window_penalty(logp[3], 20e-15, 300e-15); // segment cap
  loss += window_penalty(logp[4], 10e-15, 200e-15); // branch cap
  return loss;
}

void fit_tree25() {
  std::vector<double> x0 = {std::log(25.0), std::log(0.1e-12), std::log(120.0),
                            std::log(0.1e-12), std::log(0.06e-12)};
  linalg::NelderMeadOptions opt;
  opt.max_iter = 20000;
  opt.initial_step = 0.4;
  auto res = linalg::nelder_mead(tree25_loss, x0, opt);
  for (int round = 0; round < 4; ++round) res = linalg::nelder_mead(tree25_loss, res.x, opt);

  std::printf("\n== tree25 ==  loss %.6g\n", res.f);
  const char* names[5] = {"r_drv", "c_A", "r_seg", "c_seg", "c_branch"};
  for (int i = 0; i < 5; ++i) std::printf("%s = %.6g\n", names[i], std::exp(res.x[i]));
  const RCTree t = build_tree25(res.x);
  const auto td = moments::elmore_delays(t);
  std::printf("TD(A) = %.4f ns, TD(B) = %.4f ns, TD(C) = %.4f ns\n", td[t.at("A")] / kNs,
              td[t.at("B")] / kNs, td[t.at("C")] / kNs);
}

}  // namespace

int main() {
  fit_fig1();
  fit_tree25();
  return 0;
}
