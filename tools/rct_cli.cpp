// rct — command-line front end for the RC-tree timing toolkit.
//
//   rct report <deck.sp>                 bound report for every node
//   rct spef <file.spef>                 per-net load-pin bound report
//   rct convert <deck.sp> <out.spef>     netlist -> SPEF-lite
//   rct delay-curve <deck.sp> <node>     50-50 delay vs rise time (CSV)
//   rct bode <deck.sp> <node>            magnitude/phase sweep (CSV)
//
// Deck format: see README (SPICE-like, .input/.probe directives).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/generalized_input.hpp"
#include "core/report.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/dot_export.hpp"
#include "rctree/netlist_parser.hpp"
#include "rctree/spef.hpp"
#include "rctree/units.hpp"
#include "sim/ac.hpp"
#include "sim/exact.hpp"

using namespace rct;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: rct report <deck.sp>\n"
               "       rct dot <deck.sp>\n"
               "       rct spef <file.spef>\n"
               "       rct convert <deck.sp> <out.spef>\n"
               "       rct delay-curve <deck.sp> <node>\n"
               "       rct bode <deck.sp> <node>\n");
  return 2;
}

int cmd_report(const std::string& path) {
  const ParsedNetlist parsed = parse_netlist_file(path);
  for (const auto& w : parsed.warnings) std::fprintf(stderr, "warning: %s\n", w.c_str());
  std::printf("%s", core::format_report(core::build_report(parsed.tree)).c_str());
  return 0;
}

int cmd_spef(const std::string& path) {
  const SpefFile file = parse_spef_file(path);
  std::printf("design '%s': %zu net(s)\n", file.design.c_str(), file.nets.size());
  for (const SpefNet& net : file.nets) {
    std::printf("\n*D_NET %s  (driver %s, %zu nodes, %s total)\n", net.name.c_str(),
                net.driver.c_str(), net.tree.size(),
                format_engineering(net.tree.total_capacitance(), "F").c_str());
    core::ReportOptions opt;
    opt.with_exact = net.tree.size() <= 2000;  // eigensolve only when cheap
    const auto rows = core::build_report(net.tree, opt);
    for (NodeId load : net.loads) {
      const auto& r = rows[load];
      std::printf("  load %-12s elmore %-10s bounds [%s, %s]", r.name.c_str(),
                  format_time(r.elmore).c_str(), format_time(r.lower_bound).c_str(),
                  format_time(r.elmore).c_str());
      if (r.exact_delay) std::printf("  exact %s", format_time(*r.exact_delay).c_str());
      std::printf("\n");
    }
  }
  return 0;
}

int cmd_convert(const std::string& in_path, const std::string& out_path) {
  const ParsedNetlist parsed = parse_netlist_file(in_path);
  const SpefFile f = spef_from_tree(parsed.tree,
                                    parsed.title.empty() ? "net0" : parsed.title, "rct");
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  out << write_spef(f);
  std::printf("wrote %s (%zu nodes)\n", out_path.c_str(), parsed.tree.size());
  return 0;
}

int cmd_delay_curve(const std::string& path, const std::string& node_name) {
  const ParsedNetlist parsed = parse_netlist_file(path);
  const NodeId node = parsed.tree.at(node_name);
  const sim::ExactAnalysis exact(parsed.tree);
  const double tau = exact.dominant_time_constant();
  const auto curve = core::delay_curve(parsed.tree, exact, node,
                                       core::log_sweep(0.05 * tau, 100.0 * tau, 30));
  std::printf("rise_time_s,delay_s,elmore_s,relative_error\n");
  for (const auto& p : curve)
    std::printf("%.6e,%.6e,%.6e,%.6f\n", p.rise_time, p.delay, p.elmore, p.relative_error);
  return 0;
}

int cmd_dot(const std::string& path) {
  const ParsedNetlist parsed = parse_netlist_file(path);
  // Annotate every node with its Elmore delay for at-a-glance debugging.
  const auto td = moments::elmore_delays(parsed.tree);
  DotOptions opt;
  for (NodeId i = 0; i < parsed.tree.size(); ++i)
    opt.annotations[i] = "TD=" + format_time(td[i]);
  std::printf("%s", to_dot(parsed.tree, opt).c_str());
  return 0;
}

int cmd_bode(const std::string& path, const std::string& node_name) {
  const ParsedNetlist parsed = parse_netlist_file(path);
  const NodeId node = parsed.tree.at(node_name);
  const sim::ExactAnalysis exact(parsed.tree);
  const sim::AcAnalysis ac(exact);
  const double f0 = exact.poles().front() / (2.0 * M_PI);
  std::printf("# -3dB bandwidth: %.6e Hz\n", ac.bandwidth_3db(node));
  std::printf("freq_hz,mag_db,phase_deg\n");
  for (const auto& p : ac.bode(node, 0.001 * f0, 1000.0 * f0, 40))
    std::printf("%.6e,%.3f,%.3f\n", p.freq_hz, p.magnitude_db, p.phase_deg);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "report") return cmd_report(argv[2]);
    if (cmd == "dot") return cmd_dot(argv[2]);
    if (cmd == "spef") return cmd_spef(argv[2]);
    if (cmd == "convert" && argc >= 4) return cmd_convert(argv[2], argv[3]);
    if (cmd == "delay-curve" && argc >= 4) return cmd_delay_curve(argv[2], argv[3]);
    if (cmd == "bode" && argc >= 4) return cmd_bode(argv[2], argv[3]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
