// rct — command-line front end for the RC-tree timing toolkit.
//
//   rct report <deck.sp>                 bound report for every node
//   rct spef <file.spef>                 per-net load-pin bound report
//   rct batch <file.spef>                parallel per-net report (thread pool)
//   rct convert <deck.sp> <out.spef>     netlist -> SPEF-lite
//   rct delay-curve <deck.sp> <node>     50-50 delay vs rise time (CSV)
//   rct bode <deck.sp> <node>            magnitude/phase sweep (CSV)
//
// Deck format: see README (SPICE-like, .input/.probe directives).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/tree_context.hpp"
#include "core/generalized_input.hpp"
#include "core/report.hpp"
#include "engine/batch.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/dot_export.hpp"
#include "rctree/netlist_parser.hpp"
#include "rctree/spef.hpp"
#include "rctree/units.hpp"
#include "sim/ac.hpp"
#include "sim/exact.hpp"

using namespace rct;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: rct report <deck.sp>\n"
               "       rct dot <deck.sp>\n"
               "       rct spef <file.spef> [--exact-limit N]\n"
               "       rct batch <file.spef> [--jobs N] [--json] [--no-cache] "
               "[--exact-limit N]\n"
               "       rct convert <deck.sp> <out.spef>\n"
               "       rct delay-curve <deck.sp> <node>\n"
               "       rct bode <deck.sp> <node>\n");
  return 2;
}

/// Flags shared by the SPEF-consuming commands.  Positional args land in
/// `positional`; unknown flags abort with usage.
struct SpefFlags {
  std::vector<std::string> positional;
  engine::BatchOptions batch;  // carries jobs/use_cache and the ReportOptions
  bool json = false;
  bool ok = true;
};

SpefFlags parse_spef_flags(int argc, char** argv, int first) {
  SpefFlags f;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s expects a value\n", flag);
        f.ok = false;
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--jobs") {
      if (const char* v = value("--jobs")) f.batch.jobs = std::strtoul(v, nullptr, 10);
    } else if (arg == "--exact-limit") {
      if (const char* v = value("--exact-limit"))
        f.batch.report.exact_node_limit = std::strtoul(v, nullptr, 10);
    } else if (arg == "--json") {
      f.json = true;
    } else if (arg == "--no-cache") {
      f.batch.use_cache = false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      f.ok = false;
    } else {
      f.positional.push_back(arg);
    }
    if (!f.ok) break;
  }
  return f;
}

int cmd_report(const std::string& path) {
  const ParsedNetlist parsed = parse_netlist_file(path);
  for (const auto& w : parsed.warnings) std::fprintf(stderr, "warning: %s\n", w.c_str());
  const analysis::TreeContext ctx(parsed.tree);
  std::printf("%s", core::format_report(core::build_report(ctx)).c_str());
  return 0;
}

int cmd_spef(const SpefFlags& flags) {
  const SpefFile file = parse_spef_file(flags.positional[0]);
  std::printf("design '%s': %zu net(s)\n", file.design.c_str(), file.nets.size());
  for (const SpefNet& net : file.nets) {
    std::printf("\n*D_NET %s  (driver %s, %zu nodes, %s total)\n", net.name.c_str(),
                net.driver.c_str(), net.tree.size(),
                format_engineering(net.tree.total_capacitance(), "F").c_str());
    const auto rows = core::build_report(net.tree, flags.batch.report);
    for (NodeId load : net.loads) {
      const auto& r = rows[load];
      std::printf("  load %-12s elmore %-10s bounds [%s, %s]", r.name.c_str(),
                  format_time(r.elmore).c_str(), format_time(r.lower_bound).c_str(),
                  format_time(r.elmore).c_str());
      if (r.exact_delay) std::printf("  exact %s", format_time(*r.exact_delay).c_str());
      std::printf("\n");
    }
  }
  return 0;
}

int cmd_batch(const SpefFlags& flags) {
  const SpefFile file = parse_spef_file(flags.positional[0]);
  const engine::BatchResult result = engine::analyze_batch(file, flags.batch);
  // Timings and thread counts go to stderr so stdout stays byte-identical
  // for every --jobs value.
  std::fprintf(stderr, "%s\n", result.stats.summary().c_str());
  if (flags.json)
    std::printf("%s\n", engine::format_batch_json(result).c_str());
  else
    std::printf("%s", engine::format_batch(result).c_str());
  return result.stats.failures == 0 ? 0 : 1;
}

int cmd_convert(const std::string& in_path, const std::string& out_path) {
  const ParsedNetlist parsed = parse_netlist_file(in_path);
  const SpefFile f = spef_from_tree(parsed.tree,
                                    parsed.title.empty() ? "net0" : parsed.title, "rct");
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  out << write_spef(f);
  std::printf("wrote %s (%zu nodes)\n", out_path.c_str(), parsed.tree.size());
  return 0;
}

int cmd_delay_curve(const std::string& path, const std::string& node_name) {
  const ParsedNetlist parsed = parse_netlist_file(path);
  const NodeId node = parsed.tree.at(node_name);
  const sim::ExactAnalysis exact(parsed.tree);
  const double tau = exact.dominant_time_constant();
  const auto curve = core::delay_curve(parsed.tree, exact, node,
                                       core::log_sweep(0.05 * tau, 100.0 * tau, 30));
  std::printf("rise_time_s,delay_s,elmore_s,relative_error\n");
  for (const auto& p : curve)
    std::printf("%.6e,%.6e,%.6e,%.6f\n", p.rise_time, p.delay, p.elmore, p.relative_error);
  return 0;
}

int cmd_dot(const std::string& path) {
  const ParsedNetlist parsed = parse_netlist_file(path);
  // Annotate every node with its Elmore delay for at-a-glance debugging.
  const analysis::TreeContext ctx(parsed.tree);
  const auto td = ctx.elmore_delays();
  DotOptions opt;
  for (NodeId i = 0; i < parsed.tree.size(); ++i)
    opt.annotations[i] = "TD=" + format_time(td[i]);
  std::printf("%s", to_dot(parsed.tree, opt).c_str());
  return 0;
}

int cmd_bode(const std::string& path, const std::string& node_name) {
  const ParsedNetlist parsed = parse_netlist_file(path);
  const NodeId node = parsed.tree.at(node_name);
  const sim::ExactAnalysis exact(parsed.tree);
  const sim::AcAnalysis ac(exact);
  const double f0 = exact.poles().front() / (2.0 * M_PI);
  std::printf("# -3dB bandwidth: %.6e Hz\n", ac.bandwidth_3db(node));
  std::printf("freq_hz,mag_db,phase_deg\n");
  for (const auto& p : ac.bode(node, 0.001 * f0, 1000.0 * f0, 40))
    std::printf("%.6e,%.3f,%.3f\n", p.freq_hz, p.magnitude_db, p.phase_deg);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "report") return cmd_report(argv[2]);
    if (cmd == "dot") return cmd_dot(argv[2]);
    if (cmd == "spef" || cmd == "batch") {
      const SpefFlags flags = parse_spef_flags(argc, argv, 2);
      if (!flags.ok || flags.positional.size() != 1) return usage();
      return cmd == "spef" ? cmd_spef(flags) : cmd_batch(flags);
    }
    if (cmd == "convert" && argc >= 4) return cmd_convert(argv[2], argv[3]);
    if (cmd == "delay-curve" && argc >= 4) return cmd_delay_curve(argv[2], argv[3]);
    if (cmd == "bode" && argc >= 4) return cmd_bode(argv[2], argv[3]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
