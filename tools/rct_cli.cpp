// rct — command-line front end for the RC-tree timing toolkit.
//
//   rct report <deck.sp>                 bound report for every node
//   rct spef <file.spef>                 per-net load-pin bound report
//   rct batch <file.spef>                parallel per-net report (thread pool)
//   rct serve [--listen P] [--store D]   persistent timing-server daemon
//   rct client <target> <cmd> [...]      one request against a running server
//   rct validate <file.spef>             lint a SPEF file, print diagnostics
//   rct convert <deck.sp> <out.spef>     netlist -> SPEF-lite
//   rct delay-curve <deck.sp> <node>     50-50 delay vs rise time (CSV)
//   rct bode <deck.sp> <node>            magnitude/phase sweep (CSV)
//
// Deck format: see README (SPICE-like, .input/.probe directives).
//
// Exit codes: 0 = success (batch: every net analyzed cleanly; validate: no
// diagnostics), 1 = runtime failure (parse error, or batch with >= 1 failed
// net, or validate with diagnostics), 2 = usage error.

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/tree_context.hpp"
#include "core/generalized_input.hpp"
#include "core/report.hpp"
#include "engine/batch.hpp"
#include "moments/path_tracing.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rctree/dot_export.hpp"
#include "rctree/netlist_parser.hpp"
#include "rctree/spef.hpp"
#include "rctree/units.hpp"
#include "robust/error.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/request_trace.hpp"
#include "server/server.hpp"
#include "server/store.hpp"
#include "sim/ac.hpp"
#include "sim/exact.hpp"

using namespace rct;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: rct report <deck.sp>\n"
               "       rct dot <deck.sp>\n"
               "       rct spef <file.spef> [--exact-limit N] [--lenient] "
               "[--parse-jobs N] [--metrics-out FILE]\n"
               "       rct batch <file.spef> [--jobs N] [--parse-jobs N] [--json] "
               "[--no-cache] [--exact-limit N]\n"
               "                 [--lenient] [--net-timeout-ms N] [--max-failures N] "
               "[--fail-fast]\n"
               "                 [--store DIR] [--cache-max-entries N]\n"
               "                 [--progress] [--trace-out FILE] [--metrics-out FILE]\n"
               "                 [--metrics-format json|prom] [--metrics-interval-ms N]\n"
               "                 [--log-out FILE] [--log-level debug|info|warn|error]\n"
               "                 [--flight-recorder-out FILE] [--top-slow N]\n"
               "                 (FILE arguments accept '-' for stderr)\n"
               "       rct serve [--listen PATH|PORT] [--http PATH|PORT] [--store DIR] "
               "[--jobs N]\n"
               "                 [--parse-jobs N] [--cache-max-entries N] "
               "[--request-timeout-ms N]\n"
               "                 [--preload FILE]... [--lenient] [--exact-limit N]\n"
               "                 [--max-connections N] [--max-queue-depth N] "
               "[--drain-timeout-ms N]\n"
               "                 [--idle-timeout-ms N] [--store-max-bytes N]\n"
               "                 [--metrics-out FILE] [--metrics-format json|prom]\n"
               "                 [--metrics-interval-ms N] [--log-out FILE] "
               "[--flight-recorder-out FILE]\n"
               "                 (--http serves GET /metrics /healthz /varz /flight;\n"
               "                  SIGTERM/SIGINT drain gracefully and exit 0)\n"
               "       rct client <PATH|PORT> ping|stats|shutdown\n"
               "       rct client <PATH|PORT> load <file.spef> [--lenient]\n"
               "       rct client <PATH|PORT> report|bounds <net> [--design D] "
               "[--leaves-only]\n"
               "                 [--no-exact] [--exact-limit N] [--timeout-ms N] "
               "[--fraction F]\n"
               "       rct client <PATH|PORT> evict [--design D]\n"
               "       rct client <PATH|PORT> trace <trace_id>\n"
               "       rct client <PATH|PORT> --batch FILE   (one command per line)\n"
               "       rct client <PATH|PORT> [--retries N] [--retry-budget MS] ...\n"
               "                 (reconnect + capped jittered backoff; honors the "
               "server's retry_after_ms)\n"
               "       rct client <PATH|PORT> [--trace-out FILE] ...   (stitched "
               "client+server trace)\n"
               "       rct validate <file.spef> [--jobs N] [--parse-jobs N]\n"
               "       rct convert <deck.sp> <out.spef>\n"
               "       rct delay-curve <deck.sp> <node>\n"
               "       rct bode <deck.sp> <node>\n"
               "exit codes: 0 ok, 1 runtime/net failures or diagnostics, 2 usage\n");
  return 2;
}

/// Flags shared by the SPEF-consuming commands.  Positional args land in
/// `positional`; unknown flags abort with usage.
struct SpefFlags {
  std::vector<std::string> positional;
  engine::BatchOptions batch;  // carries jobs/use_cache/deadlines and the ReportOptions
  /// --parse-jobs: SPEF parser threads.  SIZE_MAX = "not given, follow
  /// --jobs"; 0 = hardware concurrency.
  std::size_t parse_jobs = SIZE_MAX;
  bool json = false;
  bool lenient = false;      ///< skip malformed *D_NET sections with diagnostics
  bool progress = false;     ///< single-line stderr heartbeat (batch only)
  std::string trace_out;     ///< Chrome trace-event JSON path ("" = off)
  std::string metrics_out;   ///< metrics snapshot path ("" = off, "-" = stderr)
  bool metrics_prom = false; ///< --metrics-format prom (default json)
  std::uint64_t metrics_interval_ms = 0;  ///< periodic metrics re-flush (0 = only at exit)
  std::string log_out;       ///< structured JSON-lines event log ("" = off, "-" = stderr)
  obs::log::Level log_level = obs::log::Level::kInfo;
  std::string flight_out;    ///< flight-recorder JSON dump ("" = off, "-" = stderr)
  std::size_t top_slow = 0;  ///< stderr table of the N slowest nets (0 = off)
  std::string store_dir;     ///< on-disk content-addressed net cache ("" = off)
  std::string listen;        ///< serve: unix socket path or all-digits TCP port
  std::string http;          ///< serve: telemetry HTTP listener spec ("" = off)
  std::uint64_t request_timeout_ms = 0;   ///< serve: default per-request deadline
  std::vector<std::string> preload;       ///< serve: SPEF files loaded at startup
  std::size_t max_connections = 0;        ///< serve: connection cap (0 = unbounded)
  std::size_t max_queue_depth = 0;        ///< serve: dispatch-queue cap (0 = 4x workers)
  std::uint64_t drain_timeout_ms = 5000;  ///< serve: graceful-drain budget
  std::uint64_t idle_timeout_ms = 30000;  ///< serve: silent-connection cap (0 = never)
  std::uint64_t store_max_bytes = 0;      ///< serve: DiskStore GC cap (0 = unbounded)
  bool ok = true;
};

SpefFlags parse_spef_flags(int argc, char** argv, int first, bool serve_mode = false) {
  SpefFlags f;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s expects a value\n", flag);
        f.ok = false;
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--jobs") {
      if (const char* v = value("--jobs")) f.batch.jobs = std::strtoul(v, nullptr, 10);
    } else if (arg == "--parse-jobs") {
      if (const char* v = value("--parse-jobs")) f.parse_jobs = std::strtoul(v, nullptr, 10);
    } else if (arg == "--exact-limit") {
      if (const char* v = value("--exact-limit"))
        f.batch.report.exact_node_limit = std::strtoul(v, nullptr, 10);
    } else if (arg == "--json") {
      f.json = true;
    } else if (arg == "--no-cache") {
      f.batch.use_cache = false;
    } else if (arg == "--lenient") {
      f.lenient = true;
    } else if (arg == "--net-timeout-ms") {
      if (const char* v = value("--net-timeout-ms"))
        f.batch.net_timeout_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-failures") {
      if (const char* v = value("--max-failures"))
        f.batch.max_failures = std::strtoul(v, nullptr, 10);
    } else if (arg == "--fail-fast") {
      f.batch.fail_fast = true;
    } else if (arg == "--progress") {
      f.progress = true;
    } else if (arg == "--trace-out") {
      if (const char* v = value("--trace-out")) f.trace_out = v;
    } else if (arg == "--metrics-out") {
      if (const char* v = value("--metrics-out")) f.metrics_out = v;
    } else if (arg == "--metrics-format") {
      if (const char* v = value("--metrics-format")) {
        if (std::strcmp(v, "prom") == 0) {
          f.metrics_prom = true;
        } else if (std::strcmp(v, "json") != 0) {
          std::fprintf(stderr, "error: --metrics-format expects json|prom, got '%s'\n", v);
          f.ok = false;
        }
      }
    } else if (arg == "--metrics-interval-ms") {
      if (const char* v = value("--metrics-interval-ms"))
        f.metrics_interval_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--log-out") {
      if (const char* v = value("--log-out")) f.log_out = v;
    } else if (arg == "--log-level") {
      if (const char* v = value("--log-level")) {
        if (!obs::log::parse_level(v, f.log_level)) {
          std::fprintf(stderr, "error: --log-level expects debug|info|warn|error, got '%s'\n",
                       v);
          f.ok = false;
        }
      }
    } else if (arg == "--flight-recorder-out") {
      if (const char* v = value("--flight-recorder-out")) f.flight_out = v;
    } else if (arg == "--top-slow") {
      if (const char* v = value("--top-slow")) f.top_slow = std::strtoul(v, nullptr, 10);
    } else if (arg == "--store") {
      if (const char* v = value("--store")) f.store_dir = v;
    } else if (arg == "--cache-max-entries") {
      if (const char* v = value("--cache-max-entries"))
        f.batch.cache_max_entries = std::strtoul(v, nullptr, 10);
    } else if (serve_mode && arg == "--listen") {
      if (const char* v = value("--listen")) f.listen = v;
    } else if (serve_mode && arg == "--http") {
      if (const char* v = value("--http")) f.http = v;
    } else if (serve_mode && arg == "--request-timeout-ms") {
      if (const char* v = value("--request-timeout-ms"))
        f.request_timeout_ms = std::strtoull(v, nullptr, 10);
    } else if (serve_mode && arg == "--preload") {
      if (const char* v = value("--preload")) f.preload.push_back(v);
    } else if (serve_mode && arg == "--max-connections") {
      if (const char* v = value("--max-connections"))
        f.max_connections = std::strtoul(v, nullptr, 10);
    } else if (serve_mode && arg == "--max-queue-depth") {
      if (const char* v = value("--max-queue-depth"))
        f.max_queue_depth = std::strtoul(v, nullptr, 10);
    } else if (serve_mode && arg == "--drain-timeout-ms") {
      if (const char* v = value("--drain-timeout-ms"))
        f.drain_timeout_ms = std::strtoull(v, nullptr, 10);
    } else if (serve_mode && arg == "--idle-timeout-ms") {
      if (const char* v = value("--idle-timeout-ms"))
        f.idle_timeout_ms = std::strtoull(v, nullptr, 10);
    } else if (serve_mode && arg == "--store-max-bytes") {
      if (const char* v = value("--store-max-bytes"))
        f.store_max_bytes = std::strtoull(v, nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      f.ok = false;
    } else {
      f.positional.push_back(arg);
    }
    if (!f.ok) break;
  }
  return f;
}

/// Parser threads for a command: --parse-jobs when given, else --jobs.
std::size_t effective_parse_jobs(const SpefFlags& flags) {
  return flags.parse_jobs == SIZE_MAX ? flags.batch.jobs : flags.parse_jobs;
}

/// Prints lenient parse diagnostics to stderr (stdout stays reserved for
/// the deterministic report).
void print_parse_diagnostics(const std::vector<robust::Diagnostic>& diagnostics,
                             std::size_t nets_rejected) {
  if (diagnostics.empty()) return;
  std::fprintf(stderr, "%s", robust::format_diagnostics(diagnostics).c_str());
  std::fprintf(stderr, "lenient parse: %zu diagnostic(s), %zu net section(s) rejected\n",
               diagnostics.size(), nets_rejected);
}

/// Parses the command's SPEF input honoring --lenient and --parse-jobs
/// (mmap + indexed section fan-out).
SpefFile parse_spef_input(const SpefFlags& flags) {
  const obs::Span span("cli.spef.parse", "cli", flags.positional[0]);
  engine::ParseOptions opt;
  opt.jobs = effective_parse_jobs(flags);
  opt.spef.lenient = flags.lenient;
  engine::ParsedSpef parsed = engine::parse_spef_parallel_file(flags.positional[0], opt);
  print_parse_diagnostics(parsed.file.diagnostics, parsed.file.nets_rejected);
  return std::move(parsed.file);
}

int cmd_report(const std::string& path) {
  const ParsedNetlist parsed = parse_netlist_file(path);
  for (const auto& w : parsed.warnings) std::fprintf(stderr, "warning: %s\n", w.c_str());
  const analysis::TreeContext ctx(parsed.tree);
  std::printf("%s", core::format_report(core::build_report(ctx)).c_str());
  return 0;
}

/// Writes the metrics snapshot in the format --metrics-format selected.
bool write_metrics(const SpefFlags& flags) {
  return flags.metrics_prom ? obs::registry().write_prometheus(flags.metrics_out)
                            : obs::registry().write_json(flags.metrics_out);
}

/// Arms the tracer / logger / flight recorder and resets the registry for
/// one observed CLI run.
void obs_begin(const SpefFlags& flags) {
  obs::registry().reset();
  if (!flags.trace_out.empty()) obs::tracer().set_enabled(true);
  if (!flags.log_out.empty()) {
    if (obs::log::logger().open(flags.log_out))
      obs::log::logger().set_level(flags.log_level);
    else
      std::fprintf(stderr, "warning: cannot open log sink '%s'\n", flags.log_out.c_str());
  }
  // The flight recorder is always armed: recording is allocation-free and
  // a few tens of KB, and the whole point is having the tape when a run
  // dies that nobody expected to die.
  obs::flight::recorder().set_enabled(true);
}

/// Writes the requested trace / metrics / flight files and closes the log
/// sink.  Failures warn on stderr (observability must never change the
/// command's outcome).
void obs_end(const SpefFlags& flags) {
  if (!flags.metrics_out.empty() && !write_metrics(flags))
    std::fprintf(stderr, "warning: cannot write metrics to '%s'\n", flags.metrics_out.c_str());
  if (!flags.trace_out.empty() && !obs::tracer().write_chrome_json(flags.trace_out))
    std::fprintf(stderr, "warning: cannot write trace to '%s'\n", flags.trace_out.c_str());
  if (!flags.flight_out.empty() && !obs::flight::recorder().write(flags.flight_out))
    std::fprintf(stderr, "warning: cannot write flight recorder to '%s'\n",
                 flags.flight_out.c_str());
  obs::log::logger().close();
}

/// SIGTERM: dump the flight recorder to stderr, then die by the default
/// disposition so the exit status still says "killed by SIGTERM".
extern "C" void flight_signal_handler(int sig) {
  obs::flight::recorder().dump_signal(2);
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

/// The serving daemon a SIGTERM/SIGINT should drain, when one is live.
std::atomic<rct::server::Server*> g_drain_server{nullptr};

/// SIGTERM/SIGINT for `rct serve`: request a graceful drain and return.
/// Async-signal-safe by construction — one atomic load plus one relaxed
/// atomic store (request_drain); wait() polls the flag and the normal
/// shutdown path (finish in-flight, flush telemetry, exit 0) runs on the
/// main thread.
extern "C" void serve_drain_signal_handler(int) {
  rct::server::Server* server = g_drain_server.load(std::memory_order_relaxed);
  if (server != nullptr) server->request_drain();
}

/// `--metrics-interval-ms`: re-writes --metrics-out on a fixed cadence from
/// its own thread, so a scraper (or a human with `watch`) can follow a
/// long batch live.  The final authoritative write stays in obs_end.
class MetricsFlusher {
 public:
  explicit MetricsFlusher(const SpefFlags& flags)
      : flags_(flags),
        enabled_(flags.metrics_interval_ms > 0 && !flags.metrics_out.empty()) {
    if (enabled_) thread_ = std::thread([this] { loop(); });
  }

  ~MetricsFlusher() {
    if (!enabled_) return;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto interval = std::chrono::milliseconds(flags_.metrics_interval_ms);
    while (!cv_.wait_for(lock, interval, [this] { return done_; }))
      (void)write_metrics(flags_);  // transient I/O failures: retried next tick
  }

  const SpefFlags& flags_;
  const bool enabled_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

/// `--progress`: a single-line stderr heartbeat driven by the registry's
/// engine counters, refreshed at most every 100 ms on its own thread.
/// stdout is never touched.
class ProgressMeter {
 public:
  ProgressMeter(bool enabled, std::size_t total_nets)
      : enabled_(enabled), total_(total_nets), start_(std::chrono::steady_clock::now()) {
    if (enabled_) thread_ = std::thread([this] { loop(); });
  }

  ~ProgressMeter() {
    if (!enabled_) return;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
    print_line();  // final state, then leave the line behind
    std::fprintf(stderr, "\n");
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    // wait_for throttles: >= 100 ms between updates, prompt exit on done.
    while (!cv_.wait_for(lock, std::chrono::milliseconds(100), [this] { return done_; }))
      print_line();
  }

  void print_line() const {
    const auto& reg = obs::registry();
    const std::uint64_t done_nets = reg.counter_value("engine.nets.completed");
    const std::uint64_t failed = reg.counter_value("engine.nets.failed");
    const std::uint64_t degraded = reg.counter_value("engine.nets.degraded");
    const std::uint64_t hits = reg.counter_value("engine.cache.hits");
    const std::uint64_t misses = reg.counter_value("engine.cache.misses");
    // Fused parse+analyze runs construct the meter with total 0: the net
    // count is not known until the index pass lands, and then grows as
    // sections parse.  Use the live counter and show the parse phase.
    const std::uint64_t sections_total = reg.counter_value("parse.sections.total");
    const std::uint64_t sections_done = reg.counter_value("parse.sections.completed");
    const std::uint64_t total =
        total_ != 0 ? total_ : std::max(reg.counter_value("engine.nets.total"), done_nets);
    char parse_phase[48] = "";
    if (total_ == 0 && sections_total > 0 && sections_done < sections_total)
      std::snprintf(parse_phase, sizeof(parse_phase), "parse %llu/%llu, ",
                    static_cast<unsigned long long>(sections_done),
                    static_cast<unsigned long long>(sections_total));
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    char hit_rate[16] = "-";
    if (hits + misses > 0)
      std::snprintf(hit_rate, sizeof(hit_rate), "%.0f%%",
                    100.0 * static_cast<double>(hits) / static_cast<double>(hits + misses));
    char eta[16] = "-";
    if (done_nets > 0 && done_nets < total)
      std::snprintf(eta, sizeof(eta), "%.1fs",
                    elapsed * static_cast<double>(total - done_nets) /
                        static_cast<double>(done_nets));
    // Live latency quantiles ride along once the histogram has samples
    // (absent under -DRCT_OBS=OFF, where the scoped timers compile out).
    char quantiles[64] = "";
    if (const obs::Histogram* h = reg.find_histogram("engine.net.analyze_seconds");
        h != nullptr && h->count() > 0)
      std::snprintf(quantiles, sizeof(quantiles), ", p50 %s / p95 %s",
                    format_time(h->quantile(0.50)).c_str(),
                    format_time(h->quantile(0.95)).c_str());
    std::fprintf(stderr, "\rbatch: %s%llu/%llu nets, %llu failed, %llu degraded, "
                 "cache hit %s%s, eta %s   ",
                 parse_phase, static_cast<unsigned long long>(done_nets),
                 static_cast<unsigned long long>(total),
                 static_cast<unsigned long long>(failed),
                 static_cast<unsigned long long>(degraded), hit_rate, quantiles, eta);
    std::fflush(stderr);
  }

  const bool enabled_;
  const std::size_t total_;
  const std::chrono::steady_clock::time_point start_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

int cmd_spef(const SpefFlags& flags) {
  obs_begin(flags);
  int rc = 0;
  // The try block owns the flusher: on ANY exit — clean, parse error,
  // analysis throw — its destructor joins the flusher thread before
  // obs_end() writes the final (authoritative) metrics snapshot.
  try {
    const MetricsFlusher flusher(flags);
    const SpefFile file = parse_spef_input(flags);
    std::printf("design '%s': %zu net(s)\n", file.design.c_str(), file.nets.size());
    for (const SpefNet& net : file.nets) {
      const obs::Span span("cli.spef.net", "cli", net.name);
      std::printf("\n*D_NET %s  (driver %s, %zu nodes, %s total)\n", net.name.c_str(),
                  net.driver.c_str(), net.tree.size(),
                  format_engineering(net.tree.total_capacitance(), "F").c_str());
      const auto rows = core::build_report(net.tree, flags.batch.report);
      for (NodeId load : net.loads) {
        const auto& r = rows[load];
        std::printf("  load %-12s elmore %-10s bounds [%s, %s]", r.name.c_str(),
                    format_time(r.elmore).c_str(), format_time(r.lower_bound).c_str(),
                    format_time(r.elmore).c_str());
        if (r.exact_delay) std::printf("  exact %s", format_time(*r.exact_delay).c_str());
        std::printf("\n");
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  obs_end(flags);
  return rc;
}

/// `--top-slow N`: stderr table of the slowest analyzed nets by wall time
/// (cache hits and cancelled nets excluded — they did no analysis work).
void print_top_slow(const engine::BatchResult& result, std::size_t n) {
  std::vector<const engine::NetResult*> nets;
  for (const engine::NetResult& net : result.nets)
    if (!net.from_cache && net.code != robust::Code::kCancelled) nets.push_back(&net);
  std::sort(nets.begin(), nets.end(),
            [](const engine::NetResult* a, const engine::NetResult* b) {
              if (a->analyze_seconds != b->analyze_seconds)
                return a->analyze_seconds > b->analyze_seconds;
              return a->name < b->name;  // stable tie-break for tests
            });
  if (nets.size() > n) nets.resize(n);
  std::fprintf(stderr, "top %zu slowest net(s):\n", nets.size());
  for (const engine::NetResult* net : nets) {
    std::fprintf(stderr, "  %-24s %10s  %zu nodes%s%s%s\n", net->name.c_str(),
                 format_time(net->analyze_seconds).c_str(), net->nodes,
                 net->retried ? "  retried" : "", net->timed_out ? "  timed-out" : "",
                 net->ok() ? "" : "  FAILED");
  }
}

int cmd_batch(const SpefFlags& flags) {
  obs_begin(flags);
  std::signal(SIGTERM, flight_signal_handler);
  int rc = 1;
  // The flusher starts before the parse (so --metrics-interval-ms covers
  // the whole run) and its destructor joins deterministically on every
  // path out of this block, including a parse error; obs_end() then still
  // writes the final snapshot / trace / flight dump.
  try {
    const MetricsFlusher flusher(flags);
    engine::BatchOptions batch = flags.batch;
    if (!flags.store_dir.empty()) {
      auto store = std::make_shared<server::DiskStore>(flags.store_dir);
      if (!store->ok()) throw robust::Error(robust::Code::kFileOpen, store->error());
      batch.cache_backend = std::move(store);
    }
    engine::ParseOptions parse_opts;
    parse_opts.jobs = effective_parse_jobs(flags);
    parse_opts.spef.lenient = flags.lenient;
    engine::BatchResult result;
    if (flags.parse_jobs != SIZE_MAX && flags.parse_jobs != flags.batch.jobs) {
      // An explicitly distinct parser pool: parse first, then analyze.
      engine::ParsedSpef parsed = engine::parse_spef_parallel_file(flags.positional[0],
                                                                   parse_opts);
      print_parse_diagnostics(parsed.file.diagnostics, parsed.file.nets_rejected);
      const ProgressMeter progress(flags.progress, parsed.file.nets.size());
      result = engine::analyze_batch(parsed.file, batch);
    } else {
      // Default: one pool, each *D_NET section parsed and analyzed as one
      // task — parsing overlaps analysis with no barrier between them.
      engine::FileBatchResult file_result;
      {
        const ProgressMeter progress(flags.progress, 0);
        file_result = engine::analyze_spef_file(flags.positional[0], batch, parse_opts);
      }
      print_parse_diagnostics(file_result.diagnostics, file_result.nets_rejected);
      result = std::move(file_result.batch);
    }
    // Timings and thread counts go to stderr so stdout stays byte-identical
    // for every --jobs value (and with observability on or off).
    std::fprintf(stderr, "%s\n", result.stats.summary().c_str());
    if (flags.top_slow > 0) print_top_slow(result, flags.top_slow);
    // Postmortem on any fatal-ish outcome: the flight recorder tape names
    // the nets that failed or timed out, with phases and durations.
    if (result.stats.failures > 0 || result.stats.timed_out > 0)
      std::fprintf(stderr, "%s", obs::flight::recorder().format_text().c_str());
    {
      const obs::Span span("cli.batch.render", "cli");
      if (flags.json)
        std::printf("%s\n", engine::format_batch_json(result).c_str());
      else
        std::printf("%s", engine::format_batch(result).c_str());
    }
    rc = result.stats.failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  obs_end(flags);
  return rc;
}

int cmd_serve(const SpefFlags& flags) {
  obs_begin(flags);
  std::signal(SIGTERM, flight_signal_handler);
  int rc = 0;
  try {
    const MetricsFlusher flusher(flags);
    server::ServeOptions options;
    if (!flags.listen.empty()) options.listen = flags.listen;
    options.store_dir = flags.store_dir;
    options.jobs = flags.batch.jobs;
    options.parse_jobs = effective_parse_jobs(flags);
    options.cache_max_entries = flags.batch.cache_max_entries;
    options.request_timeout_ms =
        flags.request_timeout_ms != 0 ? flags.request_timeout_ms : flags.batch.net_timeout_ms;
    options.report = flags.batch.report;
    options.lenient = flags.lenient;
    options.flight_out = flags.flight_out;
    options.http = flags.http;
    options.max_connections = flags.max_connections;
    options.max_queue_depth = flags.max_queue_depth;
    options.drain_timeout_ms = flags.drain_timeout_ms;
    options.idle_timeout_ms = flags.idle_timeout_ms;
    options.store_max_bytes = flags.store_max_bytes;
    server::Server server(options);
    for (const std::string& path : flags.preload) {
      const std::string handle = server.load_design(path, flags.lenient);
      std::fprintf(stderr, "preloaded %s as %s\n", path.c_str(), handle.c_str());
    }
    if (!server.start()) throw robust::Error(robust::Code::kFileOpen, server.error());
    // From here on SIGTERM/SIGINT mean "drain gracefully, exit 0" — the
    // daemon contract — instead of the batch commands' dump-and-die.
    g_drain_server.store(&server, std::memory_order_relaxed);
    std::signal(SIGTERM, serve_drain_signal_handler);
    std::signal(SIGINT, serve_drain_signal_handler);
    // Announce the bound address on stdout (tests and scripts wait for this
    // line; with --listen 0 it is the only place the ephemeral port shows).
    std::printf("listening on %s\n", server.address().c_str());
    // Same for the telemetry endpoint: with --http 0 this line is the only
    // place the scrape port shows.
    if (!flags.http.empty()) std::printf("telemetry on %s\n", server.http_address().c_str());
    std::fflush(stdout);
    server.wait();
    server.stop();
    g_drain_server.store(nullptr, std::memory_order_relaxed);
    std::fprintf(stderr, "served %llu request(s), shed %llu\n",
                 static_cast<unsigned long long>(server.requests_served()),
                 static_cast<unsigned long long>(server.requests_shed()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  obs_end(flags);
  return rc;
}

/// Builds one protocol request from client-command tokens (`report clk_1
/// --design a1b2 --leaves-only`).  Shared verbatim by the one-shot and
/// --batch forms, so both speak exactly the protocol.hpp encoder.
bool build_client_request(const std::vector<std::string>& tokens, server::Request& request,
                          std::string& error) {
  if (tokens.empty()) {
    error = "empty command";
    return false;
  }
  request.cmd = tokens[0];
  std::vector<std::string> positional;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& arg = tokens[i];
    auto value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= tokens.size()) {
        error = std::string(flag) + " expects a value";
        return nullptr;
      }
      return &tokens[++i];
    };
    if (arg == "--design") {
      if (const std::string* v = value("--design")) request.design = *v;
      else return false;
    } else if (arg == "--lenient") {
      request.lenient = true;
    } else if (arg == "--leaves-only") {
      request.leaves_only = true;
    } else if (arg == "--no-exact") {
      request.with_exact = false;
      request.has_with_exact = true;
    } else if (arg == "--with-exact") {
      request.with_exact = true;
      request.has_with_exact = true;
    } else if (arg == "--exact-limit") {
      if (const std::string* v = value("--exact-limit"))
        request.exact_limit = std::strtoull(v->c_str(), nullptr, 10);
      else return false;
    } else if (arg == "--timeout-ms") {
      if (const std::string* v = value("--timeout-ms"))
        request.timeout_ms = std::strtoull(v->c_str(), nullptr, 10);
      else return false;
    } else if (arg == "--fraction") {
      if (const std::string* v = value("--fraction"))
        request.fraction = std::strtod(v->c_str(), nullptr);
      else return false;
    } else if (!arg.empty() && arg[0] == '-') {
      error = "unknown client flag '" + arg + "'";
      return false;
    } else {
      positional.push_back(arg);
    }
  }
  if (request.cmd == "load") {
    if (positional.size() != 1) {
      error = "load expects exactly one file";
      return false;
    }
    request.path = positional[0];
  } else if (request.cmd == "report" || request.cmd == "bounds") {
    if (positional.size() != 1) {
      error = request.cmd + " expects exactly one net name";
      return false;
    }
    request.net = positional[0];
  } else if (request.cmd == "trace") {
    if (positional.size() != 1) {
      error = "trace expects exactly one trace id";
      return false;
    }
    request.trace = positional[0];
  } else if (!positional.empty()) {
    error = request.cmd + " takes no positional arguments";
    return false;
  }
  return true;
}

/// Splits a --batch line into whitespace-separated tokens ('#' comments).
std::vector<std::string> tokenize_client_line(const std::string& line) {
  std::vector<std::string> tokens;
  std::string token;
  for (const char c : line) {
    if (c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!token.empty()) tokens.push_back(std::move(token));
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  if (!token.empty()) tokens.push_back(std::move(token));
  return tokens;
}

/// After the traced commands ran, pulls each request's server-side span
/// slice over the same connection, rebases it onto the client clock and
/// writes one stitched Perfetto file.  Best-effort: a server that already
/// shut down (or predates the `trace` command) still yields the client
/// half of every timeline.
void write_stitched_traces(server::Client& client, std::uint64_t& next_id,
                           std::vector<server::StitchedTrace>& traces,
                           const std::string& trace_out) {
  for (server::StitchedTrace& trace : traces) {
    server::Request fetch;
    fetch.id = next_id++;
    fetch.cmd = "trace";
    fetch.trace = trace.trace_id;
    std::string response;
    if (!client.roundtrip(server::encode_request(fetch), response)) break;
    if (!server::response_ok(response)) continue;
    if (!server::parse_trace_spans(response, trace.server_spans)) continue;
    server::rebase_spans(trace.server_spans, trace.send_ns, trace.recv_ns);
  }
  std::ofstream out(trace_out);
  if (out) out << server::stitched_chrome_json(traces) << '\n';
  if (!out)
    std::fprintf(stderr, "warning: cannot write trace to '%s'\n", trace_out.c_str());
}

int cmd_client(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string target = argv[2];
  // --trace-out / --retries / --retry-budget may sit anywhere after the
  // target; everything else passes through to the command builder
  // untouched.
  std::string trace_out;
  server::RetryPolicy retry;
  std::vector<std::string> args;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --trace-out expects a value\n");
        return 2;
      }
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--retries") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --retries expects a value\n");
        return 2;
      }
      retry.max_attempts = std::atoi(argv[++i]) + 1;
    } else if (std::strcmp(argv[i], "--retry-budget") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --retry-budget expects a value\n");
        return 2;
      }
      retry.budget_ms = std::strtoull(argv[++i], nullptr, 10);
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.empty()) return usage();
  server::Client client;
  // With retries armed, a failed first connect is not fatal: the server may
  // still be starting (or restarting), and request() reconnects with backoff.
  if (!client.connect(target) && retry.max_attempts <= 1) {
    std::fprintf(stderr, "error: %s\n", client.error().c_str());
    return 1;
  }
  std::uint64_t next_id = 1;
  bool all_ok = true;
  std::vector<server::StitchedTrace> traces;
  const auto run_one = [&](const std::vector<std::string>& tokens) -> bool {
    server::Request request;
    std::string build_error;
    if (!build_client_request(tokens, request, build_error)) {
      std::fprintf(stderr, "error: %s\n", build_error.c_str());
      all_ok = false;
      return true;  // a bad batch line does not kill the session
    }
    request.id = next_id++;
    const bool traced = !trace_out.empty() && request.cmd != "trace";
    if (traced) {
      request.trace = server::generate_trace_id();
      request.span = server::generate_trace_id();
    }
    // Client-side timeline: serialize and roundtrip, on the process tracer
    // clock (the same clock the server slice is rebased onto).
    const std::uint64_t t_start = traced ? obs::tracer().now_ns() : 0;
    const std::string line = server::encode_request(request);
    const std::uint64_t t_sent = traced ? obs::tracer().now_ns() : 0;
    std::string response;
    // request() with the default policy degenerates to one roundtrip;
    // --retries arms reconnect + backoff without a second code path.
    const bool ok = client.request(line, response, retry);
    if (traced) {
      const std::uint64_t t_recv = obs::tracer().now_ns();
      server::StitchedTrace trace;
      trace.trace_id = request.trace;
      trace.send_ns = t_sent;
      trace.recv_ns = t_recv;
      trace.client_spans.push_back(
          {"client.request", request.net.empty() ? request.cmd : request.net, t_start,
           t_recv - t_start});
      trace.client_spans.push_back({"client.serialize", {}, t_start, t_sent - t_start});
      trace.client_spans.push_back({"client.roundtrip", {}, t_sent, t_recv - t_sent});
      traces.push_back(std::move(trace));
    }
    if (!ok) {
      std::fprintf(stderr, "error: %s\n", client.error().c_str());
      all_ok = false;
      return false;
    }
    std::printf("%s\n", response.c_str());
    if (!server::response_ok(response)) all_ok = false;
    return true;
  };
  if (args[0] == "--batch") {
    if (args.size() < 2) return usage();
    std::ifstream in(args[1]);
    if (!in) {
      std::fprintf(stderr, "error: cannot open '%s'\n", args[1].c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      const std::vector<std::string> tokens = tokenize_client_line(line);
      if (tokens.empty()) continue;
      if (!run_one(tokens)) break;
    }
  } else {
    run_one(args);
  }
  if (!trace_out.empty()) write_stitched_traces(client, next_id, traces, trace_out);
  return all_ok ? 0 : 1;
}

/// `rct validate <file.spef> [--jobs N] [--parse-jobs N]`: lenient parse,
/// one diagnostic per line on stdout, human summary plus parse throughput
/// (bytes, nets/s, wall) on stderr.  Exit 0 = clean, 1 = any diagnostic.
int cmd_validate(const SpefFlags& flags) {
  const std::string& path = flags.positional[0];
  engine::ParseOptions opt;
  opt.jobs = effective_parse_jobs(flags);
  opt.spef.lenient = true;
  const engine::ParsedSpef parsed = engine::parse_spef_parallel_file(path, opt);
  const SpefFile& file = parsed.file;
  std::printf("%s", robust::format_diagnostics(file.diagnostics).c_str());
  std::fprintf(stderr, "%s: %zu net(s) parsed, %zu net section(s) rejected, "
               "%zu diagnostic(s)\n",
               path.c_str(), file.nets.size(), file.nets_rejected,
               file.diagnostics.size());
  std::fprintf(stderr, "%s\n", parsed.stats.summary().c_str());
  return file.diagnostics.empty() ? 0 : 1;
}

int cmd_convert(const std::string& in_path, const std::string& out_path) {
  const ParsedNetlist parsed = parse_netlist_file(in_path);
  const SpefFile f = spef_from_tree(parsed.tree,
                                    parsed.title.empty() ? "net0" : parsed.title, "rct");
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  out << write_spef(f);
  std::printf("wrote %s (%zu nodes)\n", out_path.c_str(), parsed.tree.size());
  return 0;
}

int cmd_delay_curve(const std::string& path, const std::string& node_name) {
  const ParsedNetlist parsed = parse_netlist_file(path);
  const NodeId node = parsed.tree.at(node_name);
  const sim::ExactAnalysis exact(parsed.tree);
  const double tau = exact.dominant_time_constant();
  const auto curve = core::delay_curve(parsed.tree, exact, node,
                                       core::log_sweep(0.05 * tau, 100.0 * tau, 30));
  std::printf("rise_time_s,delay_s,elmore_s,relative_error\n");
  for (const auto& p : curve)
    std::printf("%.6e,%.6e,%.6e,%.6f\n", p.rise_time, p.delay, p.elmore, p.relative_error);
  return 0;
}

int cmd_dot(const std::string& path) {
  const ParsedNetlist parsed = parse_netlist_file(path);
  // Annotate every node with its Elmore delay for at-a-glance debugging.
  const analysis::TreeContext ctx(parsed.tree);
  const auto td = ctx.elmore_delays();
  DotOptions opt;
  for (NodeId i = 0; i < parsed.tree.size(); ++i)
    opt.annotations[i] = "TD=" + format_time(td[i]);
  std::printf("%s", to_dot(parsed.tree, opt).c_str());
  return 0;
}

int cmd_bode(const std::string& path, const std::string& node_name) {
  const ParsedNetlist parsed = parse_netlist_file(path);
  const NodeId node = parsed.tree.at(node_name);
  const sim::ExactAnalysis exact(parsed.tree);
  const sim::AcAnalysis ac(exact);
  const double f0 = exact.poles().front() / (2.0 * M_PI);
  std::printf("# -3dB bandwidth: %.6e Hz\n", ac.bandwidth_3db(node));
  std::printf("freq_hz,mag_db,phase_deg\n");
  for (const auto& p : ac.bode(node, 0.001 * f0, 1000.0 * f0, 40))
    std::printf("%.6e,%.3f,%.3f\n", p.freq_hz, p.magnitude_db, p.phase_deg);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  // `serve` and `client` carry their own argument checks; everything else
  // needs at least one positional argument.
  if (argc < 3 && cmd != "serve" && cmd != "client") return usage();
  try {
    if (cmd == "report") return cmd_report(argv[2]);
    if (cmd == "dot") return cmd_dot(argv[2]);
    if (cmd == "spef" || cmd == "batch") {
      const SpefFlags flags = parse_spef_flags(argc, argv, 2);
      if (!flags.ok || flags.positional.size() != 1) return usage();
      return cmd == "spef" ? cmd_spef(flags) : cmd_batch(flags);
    }
    if (cmd == "serve") {
      const SpefFlags flags = parse_spef_flags(argc, argv, 2, /*serve_mode=*/true);
      if (!flags.ok || !flags.positional.empty()) return usage();
      return cmd_serve(flags);
    }
    if (cmd == "client") return cmd_client(argc, argv);
    if (cmd == "validate") {
      const SpefFlags flags = parse_spef_flags(argc, argv, 2);
      if (!flags.ok || flags.positional.size() != 1) return usage();
      return cmd_validate(flags);
    }
    if (cmd == "convert" && argc >= 4) return cmd_convert(argv[2], argv[3]);
    if (cmd == "delay-curve" && argc >= 4) return cmd_delay_curve(argv[2], argv[3]);
    if (cmd == "bode" && argc >= 4) return cmd_bode(argv[2], argv[3]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
