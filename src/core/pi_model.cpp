#include "core/pi_model.hpp"

#include <stdexcept>

#include "moments/admittance.hpp"

namespace rct::core {

PiModel pi_model_from_moments(const linalg::PowerSeries& y) {
  if (y.order() < 3) throw std::invalid_argument("pi_model: need admittance moments up to m3");
  const double m1 = y[1];
  const double m2 = y[2];
  const double m3 = y[3];
  if (!(m1 > 0.0) || !(m2 < 0.0) || !(m3 > 0.0))
    throw std::invalid_argument("pi_model: moments not realizable as an RC pi load");
  PiModel p{};
  p.c2 = m2 * m2 / m3;
  p.c1 = m1 - p.c2;
  p.r2 = -(m3 * m3) / (m2 * m2 * m2);
  return p;
}

PiModel input_pi_model(const RCTree& tree) {
  return pi_model_from_moments(moments::input_admittance(tree, 3));
}

PiModel subtree_pi_model(const RCTree& tree, NodeId node) {
  return pi_model_from_moments(moments::node_admittance(tree, node, 3));
}

AppendixBMoments appendix_b_central_moments(double r1, const PiModel& pi) {
  const double c1 = pi.c1;
  const double c2 = pi.c2;
  const double r2 = pi.r2;
  AppendixBMoments out{};
  // eq. (28)
  out.mu2 = r1 * r1 * (c1 * c1 + c2 * c2) + 2.0 * r1 * r1 * c1 * c2 + 2.0 * r1 * r2 * c2 * c2;
  // eq. (29) / (B4)
  const double rc = r1 * (c1 + c2);
  out.mu3 = 6.0 * r1 * r2 * c2 * c2 * (rc + r2 * c2) + 2.0 * rc * rc * rc;
  return out;
}

}  // namespace rct::core
