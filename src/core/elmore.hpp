#pragma once
// The Elmore delay metric (paper Sections I-II).
//
// T_D(i) = sum_k R_ki C_k is the mean of the impulse response at node i and
// — the paper's central theorem — an absolute upper bound on the exact 50%
// delay.  This header is the stable public entry point; heavy lifting lives
// in rct::moments.

#include <cmath>

#include "moments/path_tracing.hpp"
#include "rctree/rctree.hpp"

namespace rct::core {

/// Elmore delay at one node (seconds).
[[nodiscard]] inline double elmore_delay(const RCTree& tree, NodeId node) {
  return moments::elmore_delays(tree)[node];
}

/// Elmore delay at every node; O(N).
[[nodiscard]] inline std::vector<double> elmore_delays(const RCTree& tree) {
  return moments::elmore_delays(tree);
}

/// Single-pole ("dominant time constant") 50% estimate ln(2) * T_D
/// (paper eq. 11-14).  Can be optimistic or pessimistic — Table I.
[[nodiscard]] inline double single_pole_delay(double elmore, double fraction = 0.5) {
  return -std::log(1.0 - fraction) * elmore;
}

}  // namespace rct::core
