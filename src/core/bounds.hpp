#pragma once
// The paper's delay bounds (Theorem + Corollaries 1-2):
//
//   upper:  t_50% <= T_D                      (mean >= median; Theorem)
//   lower:  t_50% >= max(T_D - sigma, 0)      (Corollary 1, via the
//                                              Cantelli/Camp-Meidell step)
//
// and their generalized-input forms (Section IV): for a monotone input with
// unimodal derivative, the output-derivative density has
//     mean  = T_D + mean(v_i'),   mu2 = mu2(h) + mu2(v_i'),
//     mu3   = mu3(h) + mu3(v_i')
// (central moments add under convolution, Appendix B), so the output 50%
// crossing obeys  mean - sigma <= t_50% <= mean, and the 50-to-50 *delay*
// obeys  delay <= T_D + (mean(v_i') - t_in,50%)  — which is exactly T_D for
// any input with a symmetric derivative (step, saturated ramp, ...).

#include <vector>

#include "analysis/tree_context.hpp"
#include "moments/central.hpp"
#include "rctree/rctree.hpp"
#include "sim/sources.hpp"

namespace rct::core {

/// Step-response delay bounds at a node.
struct DelayBounds {
  double elmore;  ///< T_D: the upper bound on the 50% delay
  double sigma;   ///< sqrt(mu2) of the impulse response
  double lower;   ///< max(T_D - sigma, 0)
  double upper;   ///< == elmore (kept explicit for readability at call sites)
};

/// Bounds at every node, O(N).
[[nodiscard]] std::vector<DelayBounds> delay_bounds(const RCTree& tree);

/// Same from a shared context (reuses its memoized impulse stats).
[[nodiscard]] std::vector<DelayBounds> delay_bounds(const analysis::TreeContext& context);

/// Bounds at one node.
[[nodiscard]] DelayBounds delay_bounds_at(const RCTree& tree, NodeId node);

/// Bounds at one node from a shared context.
[[nodiscard]] DelayBounds delay_bounds_at(const analysis::TreeContext& context, NodeId node);

/// Output threshold-crossing and 50-50 delay bounds for a generalized input.
struct GeneralizedBounds {
  double out_mean;       ///< mean of v_o' = T_D + mean(v_i')
  double out_sigma;      ///< sqrt(mu2(h) + mu2(v_i'))
  double out_mu3;        ///< mu3(h) + mu3(v_i')
  double out_skewness;   ///< gamma of v_o'; -> 0 as rise time grows (Cor. 3)
  double crossing_upper; ///< upper bound on the output 50% crossing time
  double crossing_lower; ///< max(out_mean - out_sigma, 0)
  double delay_upper;    ///< upper bound on the 50-to-50 delay
  double delay_lower;    ///< crossing_lower - t_in,50% (may be negative; 0-clamped)
};

/// Corollary 2/3 bounds at `node` for `input`.  The input's derivative must
/// be unimodal (checked; throws std::invalid_argument otherwise — the
/// theorem does not apply).
[[nodiscard]] GeneralizedBounds generalized_bounds(const RCTree& tree, NodeId node,
                                                   const sim::Source& input);

/// Same from a shared context (reuses its memoized impulse stats).
[[nodiscard]] GeneralizedBounds generalized_bounds(const analysis::TreeContext& context,
                                                   NodeId node, const sim::Source& input);

/// sigma-based output transition-time estimate (paper Sec. III-B, eq. 38,
/// Elmore's "radius of gyration").  Returns sigma of the step response
/// derivative, i.e. of h(t), at the node.
[[nodiscard]] double rise_time_estimate(const RCTree& tree, NodeId node);

/// Same from a shared context.
[[nodiscard]] double rise_time_estimate(const analysis::TreeContext& context, NodeId node);

}  // namespace rct::core
