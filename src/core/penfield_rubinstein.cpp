#include "core/penfield_rubinstein.hpp"

#include <cmath>
#include <stdexcept>

namespace rct::core {
namespace {

void check_fraction(double v) {
  if (!(v >= 0.0 && v < 1.0))
    throw std::invalid_argument("PrhBounds: fraction must be in [0, 1)");
}

}  // namespace

double prh_t_min(const moments::PrhTerms& terms, NodeId node, double v) {
  check_fraction(v);
  const double tp = terms.tp;
  const double td = terms.td[node];
  const double tr = terms.tr[node];
  if (v <= 1.0 - td / tp) return 0.0;
  if (v <= 1.0 - tr / tp) return td - tp * (1.0 - v);
  return td - tr + tr * std::log(tr / (tp * (1.0 - v)));
}

double prh_t_max(const moments::PrhTerms& terms, NodeId node, double v) {
  check_fraction(v);
  const double tp = terms.tp;
  const double td = terms.td[node];
  const double tr = terms.tr[node];
  if (v <= 1.0 - td / tp) return td / (1.0 - v) - tr;
  // Note: the 1997 journal transcription prints "T_D - T_R + ..." here,
  // which is discontinuous at the regime boundary; the original RPH'83
  // bound is T_P - T_R + T_P ln[...], continuous and an actual upper bound.
  return tp - tr + tp * std::log(td / (tp * (1.0 - v)));
}

}  // namespace rct::core
