#include "core/sensitivity.hpp"

#include <span>
#include <stdexcept>

#include "moments/path_tracing.hpp"

namespace rct::core {
namespace {

std::vector<double> cap_sensitivities_from(const RCTree& tree, std::span<const double> rpath,
                                           NodeId node) {
  if (node >= tree.size()) throw std::invalid_argument("cap_sensitivities: node out of range");

  // R_k,node = rpath[LCA(k, node)].  Partition the tree by the deepest
  // source->node path vertex each k shares: nodes in subtree(v) but not in
  // subtree(next-path-vertex) share exactly rpath[v].
  std::vector<NodeId> path;
  for (NodeId v = node; v != kSource; v = tree.parent(v)) path.push_back(v);
  // path is node -> root order; mark membership.
  std::vector<char> on_path(tree.size(), 0);
  for (NodeId v : path) on_path[v] = 1;

  // For every k: walk is O(1) amortized via parent propagation — the LCA
  // with `node` of k equals that of k's parent unless k itself is on the
  // path.  Parents precede children, so one forward sweep suffices.
  std::vector<double> sens(tree.size());
  for (NodeId k = 0; k < tree.size(); ++k) {
    if (on_path[k]) {
      sens[k] = rpath[k];  // k is an ancestor-or-self of node
    } else {
      const NodeId p = tree.parent(k);
      sens[k] = (p == kSource) ? 0.0 : sens[p];
    }
  }
  return sens;
}

std::vector<double> res_sensitivities_from(const RCTree& tree, std::span<const double> ctot,
                                           NodeId node) {
  if (node >= tree.size()) throw std::invalid_argument("res_sensitivities: node out of range");
  std::vector<double> sens(tree.size(), 0.0);
  for (NodeId v = node; v != kSource; v = tree.parent(v)) sens[v] = ctot[v];
  return sens;
}

}  // namespace

std::vector<double> elmore_cap_sensitivities(const RCTree& tree, NodeId node) {
  return cap_sensitivities_from(tree, moments::path_resistances(tree), node);
}

std::vector<double> elmore_cap_sensitivities(const analysis::TreeContext& context, NodeId node) {
  return cap_sensitivities_from(context.tree(), context.path_resistances(), node);
}

std::vector<double> elmore_res_sensitivities(const RCTree& tree, NodeId node) {
  return res_sensitivities_from(tree, moments::subtree_capacitances(tree), node);
}

std::vector<double> elmore_res_sensitivities(const analysis::TreeContext& context, NodeId node) {
  return res_sensitivities_from(context.tree(), context.subtree_capacitances(), node);
}

}  // namespace rct::core
