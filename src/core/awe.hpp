#pragma once
// Asymptotic Waveform Evaluation (AWE) moment matching ([19], [22]; the
// paper's Section II-E points to q-pole approximations as the higher-order
// alternative to the Elmore metric).
//
// From 2q transfer moments of H_i(s) we fit
//
//     h(t) ~= sum_{j=1}^{q} k_j exp(-lambda_j t)
//
// by solving the Hankel system for the characteristic polynomial of
// x_j = 1/lambda_j, rooting it (Durand-Kerner) and recovering residues from
// the Vandermonde system.  q = 1 reduces exactly to the dominant-pole
// ln(2)*T_D estimate; q = 2 is the classic two-pole approximation [4].
//
// AWE on ill-conditioned moment sequences can produce unstable (positive
// real part) poles; `stable` reports this and delay() refuses to run on
// unstable fits.

#include <complex>
#include <vector>

#include "rctree/rctree.hpp"

namespace rct::core {

/// A fitted q-pole approximation at one node.
class AweApproximation {
 public:
  /// Fits order-q AWE at `node`.  q >= 1; needs 2q moments (computed
  /// internally).  Throws std::runtime_error if the Hankel system is
  /// singular (e.g. q exceeds the number of distinct circuit poles).
  AweApproximation(const RCTree& tree, NodeId node, std::size_t q);

  /// Fit directly from transfer moments m_0..m_{2q-1} (m[k] = coeff of s^k).
  AweApproximation(const std::vector<double>& transfer_moments, std::size_t q);

  [[nodiscard]] std::size_t order() const { return lambda_.size(); }
  /// Pole magnitudes lambda_j (response decays like exp(-lambda t)).
  [[nodiscard]] const std::vector<std::complex<double>>& poles() const { return lambda_; }
  [[nodiscard]] const std::vector<std::complex<double>>& residues() const { return k_; }
  /// True when all poles have positive real part (decaying response).
  [[nodiscard]] bool stable() const { return stable_; }

  /// Approximate unit-step response at time t (real part of the complex sum).
  [[nodiscard]] double step_response(double t) const;

  /// Approximate impulse response at time t.
  [[nodiscard]] double impulse_response(double t) const;

  /// Threshold-crossing delay of the approximate step response.
  /// Throws std::runtime_error if the fit is unstable or never crosses.
  [[nodiscard]] double delay(double fraction = 0.5) const;

 private:
  void fit(const std::vector<double>& m, std::size_t q);
  std::vector<std::complex<double>> lambda_;
  std::vector<std::complex<double>> k_;
  bool stable_ = false;
};

/// Classic two-pole estimate: AWE with q = 2.
[[nodiscard]] double two_pole_delay(const RCTree& tree, NodeId node, double fraction = 0.5);

}  // namespace rct::core
