#include "core/metrics.hpp"

#include <cmath>
#include <stdexcept>

#include "moments/path_tracing.hpp"

namespace rct::core {

DelayMetrics metrics_from_moments(double m1, double m2) {
  if (m1 > 0.0 || m2 < 0.0)
    throw std::invalid_argument("metrics_from_moments: expected m1 <= 0, m2 >= 0 (RC tree)");
  DelayMetrics d{};
  const double td = -m1;
  const double mu2 = 2.0 * m2 - m1 * m1;
  const double sigma = (mu2 > 0.0) ? std::sqrt(mu2) : 0.0;

  d.elmore = td;
  d.single_pole = std::log(2.0) * td;
  d.d2m = (m2 > 0.0) ? std::log(2.0) * m1 * m1 / std::sqrt(m2) : d.single_pole;

  if (sigma > 0.0 && td > 0.0) {
    // Gamma-median approximation median ~ mean (3k - 0.8)/(3k + 0.2)
    // (Banneheka & Ekanayake); valid down to small shapes, clamped at 0
    // where the gamma median genuinely collapses toward the origin.
    const double k = td * td / (sigma * sigma);  // gamma shape
    d.scaled_elmore = td * std::max(3.0 * k - 0.8, 0.0) / (3.0 * k + 0.2);
  } else {
    d.scaled_elmore = td;
  }

  d.lower_cantelli = std::max(td - sigma, 0.0);
  d.lower_unimodal = std::max(td - std::sqrt(3.0 / 5.0) * sigma, 0.0);
  return d;
}

std::vector<DelayMetrics> delay_metrics(const RCTree& tree) {
  const auto m = moments::transfer_moments(tree, 2);
  std::vector<DelayMetrics> out(tree.size());
  for (NodeId i = 0; i < tree.size(); ++i) out[i] = metrics_from_moments(m[1][i], m[2][i]);
  return out;
}

std::vector<DelayMetrics> delay_metrics(const analysis::TreeContext& context) {
  context.ensure_moments(2);
  const auto& m1 = context.transfer_moment(1);
  const auto& m2 = context.transfer_moment(2);
  std::vector<DelayMetrics> out(context.size());
  for (NodeId i = 0; i < context.size(); ++i) out[i] = metrics_from_moments(m1[i], m2[i]);
  return out;
}

}  // namespace rct::core
