#include "core/awe.hpp"

#include <cmath>
#include <stdexcept>

#include "robust/error.hpp"

#include "linalg/polynomial.hpp"
#include "linalg/root_find.hpp"
#include "moments/path_tracing.hpp"

namespace rct::core {
namespace {

using cd = std::complex<double>;

// Gaussian elimination with partial pivoting on a small complex system.
std::vector<cd> solve_complex(std::vector<std::vector<cd>> a, std::vector<cd> b) {
  const std::size_t n = b.size();
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    for (std::size_t i = k + 1; i < n; ++i)
      if (std::abs(a[i][k]) > std::abs(a[piv][k])) piv = i;
    if (std::abs(a[piv][k]) == 0.0) throw robust::Error(robust::Code::kNonConvergence, "AWE: singular moment system");
    std::swap(a[k], a[piv]);
    std::swap(b[k], b[piv]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const cd f = a[i][k] / a[k][k];
      for (std::size_t j = k; j < n; ++j) a[i][j] -= f * a[k][j];
      b[i] -= f * b[k];
    }
  }
  std::vector<cd> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    cd acc = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= a[ii][j] * x[j];
    x[ii] = acc / a[ii][ii];
  }
  return x;
}

std::vector<double> node_moments(const RCTree& tree, NodeId node, std::size_t count) {
  const auto all = moments::transfer_moments(tree, count - 1);
  std::vector<double> m(count);
  for (std::size_t k = 0; k < count; ++k) m[k] = all[k][node];
  return m;
}

}  // namespace

AweApproximation::AweApproximation(const RCTree& tree, NodeId node, std::size_t q) {
  if (q < 1) throw std::invalid_argument("AWE: order must be >= 1");
  fit(node_moments(tree, node, 2 * q), q);
}

AweApproximation::AweApproximation(const std::vector<double>& transfer_moments, std::size_t q) {
  if (q < 1) throw std::invalid_argument("AWE: order must be >= 1");
  if (transfer_moments.size() < 2 * q)
    throw std::invalid_argument("AWE: need 2q transfer moments");
  fit(transfer_moments, q);
}

void AweApproximation::fit(const std::vector<double>& m, std::size_t q) {
  // c_k = (-1)^k m_k = sum_j k_j x_j^{k+1}, with x_j = 1/lambda_j.
  std::vector<double> c(2 * q);
  for (std::size_t k = 0; k < 2 * q; ++k) c[k] = ((k % 2) ? -1.0 : 1.0) * m[k];

  // Characteristic polynomial of the x_j: Hankel system
  //   sum_i a_i c_{k+i} = -c_{k+q},  k = 0..q-1.
  std::vector<double> a(q);
  if (q == 1) {
    if (c[0] == 0.0) throw robust::Error(robust::Code::kNanValue, "AWE: zero DC moment");
    a[0] = -c[1] / c[0];
  } else {
    std::vector<std::vector<cd>> h(q, std::vector<cd>(q));
    std::vector<cd> rhs(q);
    for (std::size_t k = 0; k < q; ++k) {
      for (std::size_t i = 0; i < q; ++i) h[k][i] = c[k + i];
      rhs[k] = -c[k + q];
    }
    const auto sol = solve_complex(std::move(h), std::move(rhs));
    for (std::size_t i = 0; i < q; ++i) a[i] = sol[i].real();
  }

  // Roots of x^q + a_{q-1} x^{q-1} + ... + a_0.
  std::vector<double> poly(q + 1);
  for (std::size_t i = 0; i < q; ++i) poly[i] = a[i];
  poly[q] = 1.0;
  const auto roots = linalg::polynomial_roots(poly);

  lambda_.resize(q);
  for (std::size_t j = 0; j < q; ++j) {
    if (std::abs(roots[j]) == 0.0) throw robust::Error(robust::Code::kNonConvergence, "AWE: zero root (pole at infinity)");
    lambda_[j] = 1.0 / roots[j];
  }

  // Residues from the Vandermonde system sum_j k_j x_j^{k+1} = c_k.
  std::vector<std::vector<cd>> v(q, std::vector<cd>(q));
  std::vector<cd> rhs(q);
  for (std::size_t k = 0; k < q; ++k) {
    for (std::size_t j = 0; j < q; ++j) v[k][j] = std::pow(roots[j], static_cast<double>(k + 1));
    rhs[k] = c[k];
  }
  k_ = solve_complex(std::move(v), std::move(rhs));

  stable_ = true;
  for (const cd& l : lambda_)
    if (!(l.real() > 0.0)) stable_ = false;
}

double AweApproximation::step_response(double t) const {
  if (t <= 0.0) return 0.0;
  cd acc = 0.0;
  for (std::size_t j = 0; j < lambda_.size(); ++j)
    acc += k_[j] / lambda_[j] * std::exp(-lambda_[j] * t);
  return 1.0 - acc.real();
}

double AweApproximation::impulse_response(double t) const {
  if (t < 0.0) return 0.0;
  cd acc = 0.0;
  for (std::size_t j = 0; j < lambda_.size(); ++j) acc += k_[j] * std::exp(-lambda_[j] * t);
  return acc.real();
}

double AweApproximation::delay(double fraction) const {
  if (!stable_) throw robust::Error(robust::Code::kNonConvergence, "AWE: unstable fit; delay undefined");
  if (!(fraction > 0.0 && fraction < 1.0))
    throw std::invalid_argument("AWE: fraction must be in (0,1)");
  double tau = 0.0;
  for (const cd& l : lambda_) tau = std::max(tau, 1.0 / l.real());
  auto f = [&](double t) { return step_response(t) - fraction; };
  const auto root = linalg::bracket_and_solve(f, tau, 1e7 * tau);
  if (!root) throw robust::Error(robust::Code::kNonConvergence,
                       "AWE: response never crosses the threshold");
  return *root;
}

double two_pole_delay(const RCTree& tree, NodeId node, double fraction) {
  return AweApproximation(tree, node, 2).delay(fraction);
}

}  // namespace rct::core
