#include "core/generalized_input.hpp"

#include <cmath>
#include <stdexcept>

#include "moments/path_tracing.hpp"

namespace rct::core {

namespace {

std::vector<DelayCurvePoint> delay_curve_from(double elmore, const sim::ExactAnalysis& exact,
                                              NodeId node,
                                              const std::vector<double>& rise_times) {
  std::vector<DelayCurvePoint> out;
  out.reserve(rise_times.size());
  for (double tr : rise_times) {
    const sim::SaturatedRampSource ramp(tr);
    const double d = exact.delay_50_50(node, ramp);
    out.push_back({tr, d, elmore, (elmore - d) / d});
  }
  return out;
}

}  // namespace

std::vector<DelayCurvePoint> delay_curve(const RCTree& tree, const sim::ExactAnalysis& exact,
                                         NodeId node, const std::vector<double>& rise_times) {
  return delay_curve_from(moments::elmore_delays(tree)[node], exact, node, rise_times);
}

std::vector<DelayCurvePoint> delay_curve(const analysis::TreeContext& context,
                                         const sim::ExactAnalysis& exact, NodeId node,
                                         const std::vector<double>& rise_times) {
  return delay_curve_from(context.elmore_delay(node), exact, node, rise_times);
}

std::vector<double> log_sweep(double lo, double hi, std::size_t points) {
  if (!(lo > 0.0 && hi > lo) || points < 2)
    throw std::invalid_argument("log_sweep: need 0 < lo < hi and points >= 2");
  std::vector<double> out(points);
  const double step = std::log(hi / lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) out[i] = lo * std::exp(step * static_cast<double>(i));
  return out;
}

double relative_elmore_error(const RCTree& tree, const sim::ExactAnalysis& exact, NodeId node,
                             const sim::Source& input) {
  const double elmore = moments::elmore_delays(tree)[node];
  const double d = exact.delay_50_50(node, input);
  return (elmore - d) / d;
}

double relative_elmore_error(const analysis::TreeContext& context,
                             const sim::ExactAnalysis& exact, NodeId node,
                             const sim::Source& input) {
  const double d = exact.delay_50_50(node, input);
  return (context.elmore_delay(node) - d) / d;
}

double input_output_area(const sim::ExactAnalysis& exact, NodeId node, const sim::Source& input,
                         double t_end, std::size_t samples) {
  // trapezoid of (v_i - v_o) over [0, t_end]; t_end must cover settling.
  if (samples < 2) throw std::invalid_argument("input_output_area: samples >= 2");
  double acc = 0.0;
  const double h = t_end / static_cast<double>(samples - 1);
  auto gap = [&](double t) { return input.value(t) - exact.response(node, input, t); };
  double prev = gap(0.0);
  for (std::size_t i = 1; i < samples; ++i) {
    const double cur = gap(h * static_cast<double>(i));
    acc += 0.5 * (prev + cur) * h;
    prev = cur;
  }
  return acc;
}

}  // namespace rct::core
