#include "core/effective_capacitance.hpp"

#include <cmath>
#include <stdexcept>

namespace rct::core {

EffectiveCap effective_capacitance(const PiModel& pi, double driver_resistance) {
  if (!(driver_resistance > 0.0))
    throw std::invalid_argument("effective_capacitance: driver resistance must be > 0");
  const double total = pi.c1 + pi.c2;
  const double tau2 = pi.r2 * pi.c2;

  EffectiveCap out{total, total, 0.0, 0};
  double ceff = total;
  for (int it = 0; it < 60; ++it) {
    ++out.iterations;
    const double dt = std::log(2.0) * driver_resistance * ceff;
    // Fraction of C2's charge the driver actually sees in the window:
    // k -> 1 for slow windows (no shielding), k -> 0 for fast ones.
    const double x = dt / tau2;
    const double k = 1.0 - (1.0 - std::exp(-x)) / x;
    const double next = pi.c1 + k * pi.c2;
    if (std::abs(next - ceff) < 1e-9 * total) {
      ceff = next;
      break;
    }
    ceff = next;
  }
  out.ceff = ceff;
  out.shielding = 1.0 - ceff / total;
  return out;
}

EffectiveCap effective_capacitance(const RCTree& load, double driver_resistance) {
  try {
    return effective_capacitance(input_pi_model(load), driver_resistance);
  } catch (const std::invalid_argument&) {
    // Load too small to reduce (e.g. a bare capacitor): nothing shielded.
    const double total = load.total_capacitance();
    return {total, total, 0.0, 0};
  }
}

}  // namespace rct::core
