#pragma once
// A zoo of closed-form, moment-based 50% delay metrics, plus the improved
// bounds the paper's conclusion anticipates ("Improved bounds may be
// possible with more moments").
//
// Metrics (all computable from the O(N) path-traced moments):
//   elmore        T_D = -m1                      — proven upper bound (paper)
//   single_pole   ln(2) T_D                      — eq. 14
//   d2m           ln(2) m1^2 / sqrt(m2)          — Alpert et al.'s "Delay
//                                                  with Two Moments": scales
//                                                  Elmore down by a skew
//                                                  factor; accurate but NOT
//                                                  a bound
//   scaled_elmore gamma-fit median: fit a gamma density to (mean, sigma)
//                 and take its median via the Banneheka-Ekanayake
//                 approximation T_D (3k - 0.8)/(3k + 0.2), shape
//                 k = T_D^2/sigma^2, clamped at 0.  Reduces to ~ln(2) T_D
//                 in the single-pole limit (k = 1) and to T_D as
//                 sigma -> 0; accurate but NOT a bound
//
// Bounds:
//   elmore upper          t50 <= T_D                         (Theorem)
//   cantelli lower        t50 >= T_D - sigma                 (Corollary 1)
//   unimodal (Johnson-Rogers) lower
//                         t50 >= T_D - sqrt(3/5) sigma
//     For *unimodal* distributions the mean-median distance is at most
//     sqrt(3/5) sigma (Johnson & Rogers 1951) — and Lemma 1 proves RC-tree
//     impulse responses are unimodal, so this tightens Corollary 1 by 23%
//     for free.  This is exactly the kind of refinement the conclusion
//     points at.

#include <vector>

#include "analysis/tree_context.hpp"
#include "rctree/rctree.hpp"

namespace rct::core {

/// Every closed-form metric at one node, in seconds.
struct DelayMetrics {
  double elmore;
  double single_pole;
  double d2m;
  double scaled_elmore;
  double lower_cantelli;   ///< max(T_D - sigma, 0)
  double lower_unimodal;   ///< max(T_D - sqrt(3/5) sigma, 0); tighter
};

/// Computes the metric zoo from the first two transfer moments (m1 < 0,
/// m2 > 0 for RC trees).
[[nodiscard]] DelayMetrics metrics_from_moments(double m1, double m2);

/// Metric zoo at every node, O(N).
[[nodiscard]] std::vector<DelayMetrics> delay_metrics(const RCTree& tree);

/// Same from a shared context (reuses its memoized transfer moments).
[[nodiscard]] std::vector<DelayMetrics> delay_metrics(const analysis::TreeContext& context);

}  // namespace rct::core
