#pragma once
// PRIMA-style Krylov model order reduction for RC trees (Odabasioglu,
// Celik, Pileggi — the same group's successor to AWE).
//
// AWE matches moments through an explicit, badly conditioned Hankel solve
// and can produce unstable poles (bench/ablation_orders measures ~14% of
// fits failing).  PRIMA instead projects (G, C, b) onto the Krylov subspace
//
//     K_q = span{ G^-1 b, (G^-1 C) G^-1 b, ..., (G^-1 C)^{q-1} G^-1 b }
//
// with an orthonormal basis V:  Ghat = V^T G V,  Chat = V^T C V.  Because
// the projection is a congruence, Ghat/Chat inherit symmetric positive
// (semi)definiteness, so every reduced pole is real and negative —
// **stability is structural, not luck** — while the first q transfer
// moments are still matched.  For trees, G^-1 applications use the O(N)
// tree solver, so building a q-th order model costs O(N q^2) + O(q^3).

#include <cstddef>
#include <vector>

#include "rctree/rctree.hpp"

namespace rct::core {

/// A reduced-order pole/residue model of one node's step response.
struct ReducedModel {
  std::vector<double> poles;   ///< lambda_j > 0, ascending
  std::vector<double> coeffs;  ///< step response = dc - sum_j coeffs_j e^{-lambda_j t}
  double dc;                   ///< steady-state value (1 for RC trees, exact)

  [[nodiscard]] double step_response(double t) const;
  [[nodiscard]] double impulse_response(double t) const;
  /// Threshold-crossing delay of the reduced step response.
  [[nodiscard]] double delay(double fraction = 0.5) const;
  /// q-th distribution moment of the reduced impulse response.
  [[nodiscard]] double distribution_moment(int q) const;
};

/// Krylov reduction of a whole tree; query per-node reduced models.
class PrimaReduction {
 public:
  /// Builds an order-`order` projection (order >= 1).  The effective order
  /// may be smaller if the Krylov space saturates (tiny circuits); see
  /// effective_order().
  PrimaReduction(const RCTree& tree, std::size_t order);

  [[nodiscard]] std::size_t effective_order() const { return lambda_.size(); }

  /// Reduced poles (shared by all nodes), ascending.
  [[nodiscard]] const std::vector<double>& poles() const { return lambda_; }

  /// Reduced model of the response at `node`.
  [[nodiscard]] ReducedModel at(NodeId node) const;

  /// True by construction for RC trees; exposed for the test suite.
  [[nodiscard]] bool stable() const;

 private:
  std::size_t n_ = 0;
  std::vector<double> lambda_;  // reduced poles
  // mode_gain_[j*n + i]: coefficient of e^{-lambda_j t} in node i's step
  // response (before the dc term).
  std::vector<double> mode_gain_;
};

}  // namespace rct::core
