#pragma once
// Penfield-Rubinstein(-Horowitz) step-response waveform bounds for RC trees
// (paper eq. 15-16; originally [18],[23]).  For any threshold fraction v in
// [0, 1) they bound the time at which the step response reaches v:
//
//   t_min(v) <= t_exact(v) <= t_max(v)
//
// using the three path-traced terms T_P, T_D(i), T_R(i).  The paper's
// Table I compares these at v = 0.5 against the Elmore bound.

#include <vector>

#include "moments/path_tracing.hpp"
#include "rctree/rctree.hpp"

namespace rct::core {

/// Precomputed PRH bound evaluator for one tree.
class PrhBounds {
 public:
  explicit PrhBounds(const RCTree& tree) : terms_(moments::prh_terms(tree)) {}

  /// Lower bound on the time to reach `fraction` of the final value.
  [[nodiscard]] double t_min(NodeId node, double fraction) const;

  /// Upper bound on the time to reach `fraction`.
  [[nodiscard]] double t_max(NodeId node, double fraction) const;

  [[nodiscard]] double tp() const { return terms_.tp; }
  [[nodiscard]] double td(NodeId node) const { return terms_.td[node]; }
  [[nodiscard]] double tr(NodeId node) const { return terms_.tr[node]; }

 private:
  moments::PrhTerms terms_;
};

}  // namespace rct::core
