#pragma once
// Penfield-Rubinstein(-Horowitz) step-response waveform bounds for RC trees
// (paper eq. 15-16; originally [18],[23]).  For any threshold fraction v in
// [0, 1) they bound the time at which the step response reaches v:
//
//   t_min(v) <= t_exact(v) <= t_max(v)
//
// using the three path-traced terms T_P, T_D(i), T_R(i).  The paper's
// Table I compares these at v = 0.5 against the Elmore bound.

#include <utility>
#include <vector>

#include "analysis/tree_context.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/rctree.hpp"

namespace rct::core {

/// Lower bound on the time to reach `fraction` of the final value, from
/// precomputed PRH terms.  Throws std::invalid_argument unless fraction is
/// in [0, 1).
[[nodiscard]] double prh_t_min(const moments::PrhTerms& terms, NodeId node, double fraction);

/// Upper bound on the time to reach `fraction`, from precomputed PRH terms.
[[nodiscard]] double prh_t_max(const moments::PrhTerms& terms, NodeId node, double fraction);

/// Precomputed PRH bound evaluator for one tree.
class PrhBounds {
 public:
  explicit PrhBounds(const RCTree& tree) : terms_(moments::prh_terms(tree)) {}
  /// Reuses the context's memoized terms instead of re-sweeping the tree.
  explicit PrhBounds(const analysis::TreeContext& context) : terms_(context.prh_terms()) {}
  /// Adopts already-computed terms.
  explicit PrhBounds(moments::PrhTerms terms) : terms_(std::move(terms)) {}

  /// Lower bound on the time to reach `fraction` of the final value.
  [[nodiscard]] double t_min(NodeId node, double fraction) const {
    return prh_t_min(terms_, node, fraction);
  }

  /// Upper bound on the time to reach `fraction`.
  [[nodiscard]] double t_max(NodeId node, double fraction) const {
    return prh_t_max(terms_, node, fraction);
  }

  [[nodiscard]] double tp() const { return terms_.tp; }
  [[nodiscard]] double td(NodeId node) const { return terms_.td[node]; }
  [[nodiscard]] double tr(NodeId node) const { return terms_.tr[node]; }

 private:
  moments::PrhTerms terms_;
};

}  // namespace rct::core
