#include "core/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>

namespace rct::core {
namespace {

std::vector<DelayBounds> bounds_from_stats(std::span<const moments::ImpulseStats> stats) {
  std::vector<DelayBounds> out(stats.size());
  for (std::size_t i = 0; i < stats.size(); ++i) {
    out[i].elmore = stats[i].mean;
    out[i].sigma = stats[i].sigma;
    out[i].lower = std::max(stats[i].mean - stats[i].sigma, 0.0);
    out[i].upper = stats[i].mean;
  }
  return out;
}

GeneralizedBounds generalized_from_stats(const moments::ImpulseStats& stats,
                                         const sim::Source& input) {
  if (!input.derivative_unimodal())
    throw std::invalid_argument(
        "generalized_bounds: Corollary 2 requires a unimodal input derivative");
  const sim::DerivativeStats in = input.derivative_stats();

  GeneralizedBounds g{};
  g.out_mean = stats.mean + in.mean;
  const double mu2 = stats.mu2 + in.mu2;
  g.out_sigma = (mu2 > 0.0) ? std::sqrt(mu2) : 0.0;
  g.out_mu3 = stats.mu3 + in.mu3;
  g.out_skewness = (g.out_sigma > 0.0) ? g.out_mu3 / std::pow(g.out_sigma, 3.0) : 0.0;
  g.crossing_upper = g.out_mean;
  g.crossing_lower = std::max(g.out_mean - g.out_sigma, 0.0);
  const double t_in_50 = input.crossing_time(0.5);
  g.delay_upper = g.crossing_upper - t_in_50;
  g.delay_lower = std::max(g.crossing_lower - t_in_50, 0.0);
  return g;
}

}  // namespace

std::vector<DelayBounds> delay_bounds(const RCTree& tree) {
  return bounds_from_stats(moments::impulse_stats(tree));
}

std::vector<DelayBounds> delay_bounds(const analysis::TreeContext& context) {
  return bounds_from_stats(context.impulse_stats());
}

DelayBounds delay_bounds_at(const RCTree& tree, NodeId node) {
  return delay_bounds(tree)[node];
}

DelayBounds delay_bounds_at(const analysis::TreeContext& context, NodeId node) {
  return delay_bounds(context)[node];
}

GeneralizedBounds generalized_bounds(const RCTree& tree, NodeId node,
                                     const sim::Source& input) {
  return generalized_from_stats(moments::impulse_stats(tree)[node], input);
}

GeneralizedBounds generalized_bounds(const analysis::TreeContext& context, NodeId node,
                                     const sim::Source& input) {
  return generalized_from_stats(context.impulse_stats()[node], input);
}

double rise_time_estimate(const RCTree& tree, NodeId node) {
  return moments::impulse_stats(tree)[node].sigma;
}

double rise_time_estimate(const analysis::TreeContext& context, NodeId node) {
  return context.impulse_stats()[node].sigma;
}

}  // namespace rct::core
