#pragma once
// Section IV experiments as a library: delay vs. input rise time (Fig. 12),
// relative Elmore error vs. node depth and rise time (Table II / Fig. 14),
// and the Corollary-3 asymptote delay(t_r) -> T_D.
//
// "Delay" throughout is the 50%-to-50% delay: output 50% crossing minus
// input 50% crossing (for a step, the plain 50% crossing).

#include <vector>

#include "analysis/tree_context.hpp"
#include "rctree/rctree.hpp"
#include "sim/exact.hpp"
#include "sim/sources.hpp"

namespace rct::core {

/// One point of a delay curve.
struct DelayCurvePoint {
  double rise_time;       ///< input rise time (s)
  double delay;           ///< exact 50-50 delay (s)
  double elmore;          ///< T_D at the node (constant across the curve)
  double relative_error;  ///< (elmore - delay) / delay, the paper's "% error"
};

/// Exact 50-50 delays for saturated-ramp inputs over a sweep of rise times
/// (Fig. 12).  `exact` must be built on `tree`.
[[nodiscard]] std::vector<DelayCurvePoint> delay_curve(const RCTree& tree,
                                                       const sim::ExactAnalysis& exact,
                                                       NodeId node,
                                                       const std::vector<double>& rise_times);

/// Same from a shared context (reuses its Elmore-delay array).
[[nodiscard]] std::vector<DelayCurvePoint> delay_curve(const analysis::TreeContext& context,
                                                       const sim::ExactAnalysis& exact,
                                                       NodeId node,
                                                       const std::vector<double>& rise_times);

/// Log-spaced rise-time sweep [lo, hi] with `points` samples.
[[nodiscard]] std::vector<double> log_sweep(double lo, double hi, std::size_t points);

/// Relative Elmore error (elmore - delay)/delay at one node for one source.
[[nodiscard]] double relative_elmore_error(const RCTree& tree, const sim::ExactAnalysis& exact,
                                           NodeId node, const sim::Source& input);

/// Same from a shared context.
[[nodiscard]] double relative_elmore_error(const analysis::TreeContext& context,
                                           const sim::ExactAnalysis& exact, NodeId node,
                                           const sim::Source& input);

/// Eq. (48): area between input and output waveforms equals T_D.  Returns
/// the numerically integrated area for verification experiments.
[[nodiscard]] double input_output_area(const sim::ExactAnalysis& exact, NodeId node,
                                       const sim::Source& input, double t_end,
                                       std::size_t samples = 4000);

}  // namespace rct::core
