#pragma once
// O'Brien-Savarino pi-model reduction (paper Lemma 2 / eq. 26, [14]):
// a 3-element C1 - R2 - C2 circuit whose driving-point admittance matches
// the first three moments of an arbitrary RC tree's Y(s) exactly.
//
//   C1 = m1(Y) - m2(Y)^2 / m3(Y)
//   C2 = m2(Y)^2 / m3(Y)
//   R2 = -m3(Y)^2 / m2(Y)^3
//
// The paper uses this reduction as the induction vehicle for Lemma 2 (the
// skewness non-negativity proof); production timers use it as a driver load
// model.  This module also provides the closed-form central moments of the
// two-node R1 + pi circuit of Appendix B, which tests validate.

#include "linalg/power_series.hpp"
#include "rctree/rctree.hpp"

namespace rct::core {

/// The reduced pi load: C1 at the near node, R2 to a far node with C2.
struct PiModel {
  double c1;
  double c2;
  double r2;

  /// Admittance moments m1..m3 of the pi itself (for verification):
  /// m1 = C1 + C2, m2 = -R2 C2^2, m3 = R2^2 C2^3.
  [[nodiscard]] double m1() const { return c1 + c2; }
  [[nodiscard]] double m2() const { return -r2 * c2 * c2; }
  [[nodiscard]] double m3() const { return r2 * r2 * c2 * c2 * c2; }
};

/// Pi-model of the admittance series y (needs orders 1..3).
/// Throws std::invalid_argument if the moments cannot come from an RC tree
/// (m1 <= 0, m2 >= 0 or m3 <= 0) — e.g. a single-capacitor subtree, whose
/// higher admittance moments vanish.
[[nodiscard]] PiModel pi_model_from_moments(const linalg::PowerSeries& y);

/// Pi-model of the load the ideal source drives.
[[nodiscard]] PiModel input_pi_model(const RCTree& tree);

/// Pi-model of the subtree hanging at `node` (the paper's Fig. 8 with node 1
/// = `node`'s parent side).
[[nodiscard]] PiModel subtree_pi_model(const RCTree& tree, NodeId node);

/// Closed-form central moments at node 1 of the Appendix-B circuit
/// (R1 feeding C1, then R2 to C2): eq. 28-29.
struct AppendixBMoments {
  double mu2;
  double mu3;
};
[[nodiscard]] AppendixBMoments appendix_b_central_moments(double r1, const PiModel& pi);

}  // namespace rct::core
