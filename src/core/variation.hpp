#pragma once
// Monte-Carlo process-variation analysis on RC trees.
//
// Interconnect R and C vary with metal thickness/width and dielectric
// spread.  This module samples per-component lognormal variations around
// the nominal tree, evaluates the Elmore bound (O(N) per sample — the whole
// point of the metric) and reports delay statistics and quantiles.  Because
// every sample is itself an RC tree, the paper's Theorem applies sample by
// sample: the sampled Elmore value upper-bounds that sample's true delay,
// so the reported quantiles are guaranteed-pessimistic timing numbers.

#include <cstdint>
#include <vector>

#include "rctree/rctree.hpp"

namespace rct::core {

/// Variation model: independent lognormal per component.
struct VariationModel {
  double res_sigma = 0.1;  ///< relative sigma of ln(R) per resistor
  double cap_sigma = 0.1;  ///< relative sigma of ln(C) per capacitor
  /// Optional fully-correlated global factor (die-to-die), same sigma for
  /// R and C; 0 disables.
  double global_sigma = 0.0;
};

/// Statistics of the sampled Elmore delay at one node.
struct VariationStats {
  double nominal;  ///< Elmore delay of the unperturbed tree
  double mean;
  double stddev;
  double q05;      ///< 5% quantile
  double q50;
  double q95;      ///< 95% quantile (a guaranteed-pessimistic sign-off value)
  std::size_t samples;
};

/// Samples `samples` perturbed trees (deterministic in `seed`) and returns
/// the Elmore-delay statistics at `node`.
[[nodiscard]] VariationStats elmore_variation(const RCTree& tree, NodeId node,
                                              const VariationModel& model,
                                              std::size_t samples, std::uint64_t seed);

/// One sampled tree (for callers wanting their own analyses per sample).
[[nodiscard]] RCTree sample_variation(const RCTree& tree, const VariationModel& model,
                                      std::uint64_t seed);

}  // namespace rct::core
