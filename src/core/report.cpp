#include "core/report.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/bounds.hpp"
#include "core/elmore.hpp"
#include "core/penfield_rubinstein.hpp"
#include "moments/central.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/exact.hpp"

namespace rct::core {
namespace {

obs::Counter& exact_path_counter() {
  static obs::Counter& c = obs::registry().counter("core.report.exact_path");
  return c;
}
obs::Counter& moments_only_counter() {
  static obs::Counter& c = obs::registry().counter("core.report.moments_only");
  return c;
}
obs::Histogram& build_histogram() {
  static obs::Histogram& h = obs::registry().histogram("core.report.build_seconds");
  return h;
}
obs::Histogram& eigensolve_histogram() {
  static obs::Histogram& h = obs::registry().histogram("core.report.eigensolve_seconds");
  return h;
}

}  // namespace

std::vector<NodeReport> build_report(const RCTree& tree, const ReportOptions& options) {
  return build_report(analysis::TreeContext(tree), options);
}

std::vector<NodeReport> build_report(const analysis::TreeContext& context,
                                     const ReportOptions& options) {
  const obs::Span span("core.report.build", "core");
  const obs::ScopedTimer timer(build_histogram());
  const RCTree& tree = context.tree();
  const auto stats = context.impulse_stats();
  const moments::PrhTerms& prh = context.prh_terms();
  const auto depths = context.depths();
  std::optional<sim::ExactAnalysis> exact;
  if (options.with_exact && tree.size() <= options.exact_node_limit) {
    const obs::Span solve_span("core.report.eigensolve", "core");
    const obs::ScopedTimer solve_timer(eigensolve_histogram());
    exact.emplace(tree);
  }
  // Which path produced the delay column: the O(N^3) eigensolve or
  // moment-based bounds only (limit cutoff or with_exact=false).
  (exact ? exact_path_counter() : moments_only_counter()).add();

  std::vector<NodeReport> rows;
  for (NodeId i = 0; i < tree.size(); ++i) {
    if (options.leaves_only && !tree.is_leaf(i)) continue;
    NodeReport r;
    r.name = tree.name(i);
    r.depth = depths[i];
    r.elmore = stats[i].mean;
    r.sigma = stats[i].sigma;
    r.skewness = stats[i].skewness;
    r.lower_bound = std::max(r.elmore - r.sigma, 0.0);
    r.single_pole = -std::log(1.0 - options.fraction) * r.elmore;
    r.prh_tmin = prh_t_min(prh, i, options.fraction);
    r.prh_tmax = prh_t_max(prh, i, options.fraction);
    if (exact) {
      r.exact_delay = exact->step_delay(i, options.fraction);
      r.exact_rise = exact->step_rise_time_10_90(i);
    }
    rows.push_back(std::move(r));
  }
  return rows;
}

std::string format_report(const std::vector<NodeReport>& rows) {
  std::ostringstream os;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-8s %5s %9s %9s %9s %9s %9s %9s %9s %9s\n", "node", "depth",
                "exact", "elmore", "lower", "ln2*TD", "PRH_tmin", "PRH_tmax", "sigma", "skew");
  os << buf;
  auto ns = [](double s) { return s * 1e9; };
  for (const auto& r : rows) {
    char exact_col[32];
    if (r.exact_delay)
      std::snprintf(exact_col, sizeof(exact_col), "%9.4f", ns(*r.exact_delay));
    else
      std::snprintf(exact_col, sizeof(exact_col), "%9s", "-");
    std::snprintf(buf, sizeof(buf),
                  "%-8s %5zu %s %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f %9.3f\n", r.name.c_str(),
                  r.depth, exact_col, ns(r.elmore), ns(r.lower_bound), ns(r.single_pole),
                  ns(r.prh_tmin), ns(r.prh_tmax), ns(r.sigma), r.skewness);
    os << buf;
  }
  os << "(times in ns)\n";
  return os.str();
}

}  // namespace rct::core
