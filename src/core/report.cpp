#include "core/report.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "core/bounds.hpp"
#include "core/elmore.hpp"
#include "core/penfield_rubinstein.hpp"
#include "moments/central.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "robust/fault.hpp"
#include "sim/exact.hpp"

namespace rct::core {
namespace {

obs::Counter& exact_path_counter() {
  static obs::Counter& c = obs::registry().counter("core.report.exact_path");
  return c;
}
obs::Counter& moments_only_counter() {
  static obs::Counter& c = obs::registry().counter("core.report.moments_only");
  return c;
}
obs::Counter& degraded_rows_counter() {
  static obs::Counter& c = obs::registry().counter("core.report.degraded_rows");
  return c;
}
obs::Counter& eigensolve_invalid_counter() {
  static obs::Counter& c = obs::registry().counter("core.report.eigensolve_invalid");
  return c;
}
obs::Histogram& build_histogram() {
  static obs::Histogram& h = obs::registry().histogram("core.report.build_seconds");
  return h;
}
obs::Histogram& eigensolve_histogram() {
  static obs::Histogram& h = obs::registry().histogram("core.report.eigensolve_seconds");
  return h;
}

/// Ratio buckets (1-2-5 from 0.01% to 200%) for the paper's accuracy
/// signals: these are dimensionless relative gaps, not latencies.
const std::vector<double>& ratio_bounds() {
  static const std::vector<double> bounds = {1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2,
                                             2e-2, 5e-2, 0.1,  0.2,  0.5,  1.0,  2.0};
  return bounds;
}
/// Per-row relative width of the paper's bound sandwich,
/// (elmore - lower) / elmore — the live "how tight is Theorem 1 here"
/// telemetry signal.
obs::Histogram& bound_gap_histogram() {
  static obs::Histogram& h = obs::registry().histogram("core.report.bound_gap", ratio_bounds());
  return h;
}
/// Relative error of the Elmore upper bound against the eigensolve delay,
/// |elmore - exact| / exact, observed only when the exact path ran.
obs::Histogram& exact_error_histogram() {
  static obs::Histogram& h =
      obs::registry().histogram("core.report.exact_vs_elmore_error", ratio_bounds());
  return h;
}

/// Every pole of a healthy RC tree is finite and strictly positive;
/// anything else marks the whole eigensolve as garbage.
bool poles_valid(const sim::ExactAnalysis& exact) {
  for (const double l : exact.poles())
    if (!std::isfinite(l) || l <= 0.0) return false;
  return true;
}

/// How often the row loop polls the cooperative deadline: each row costs a
/// bracketing root search, so a small stride keeps the overshoot bounded
/// without measurable overhead.
constexpr NodeId kDeadlineStride = 64;

}  // namespace

std::vector<NodeReport> build_report(const RCTree& tree, const ReportOptions& options) {
  return build_report(analysis::TreeContext(tree), options);
}

std::vector<NodeReport> build_report(const analysis::TreeContext& context,
                                     const ReportOptions& options) {
  const obs::Span span("core.report.build", "core");
  const obs::ScopedTimer timer(build_histogram());
  const RCTree& tree = context.tree();
  if (options.deadline) options.deadline->check("core.report.build");
  const auto stats = context.impulse_stats();
  const moments::PrhTerms& prh = context.prh_terms();
  const auto depths = context.depths();
  std::optional<sim::ExactAnalysis> exact;
  bool eigensolve_invalid = false;
  if (options.with_exact && tree.size() <= options.exact_node_limit) {
    if (options.deadline) options.deadline->check("core.report.eigensolve");
    const obs::Span solve_span("core.report.eigensolve", "core");
    const obs::ScopedTimer solve_timer(eigensolve_histogram());
    // An eigensolve that THROWS propagates to the caller (the batch engine
    // retries the net on the moments path); one that returns garbage is
    // caught just below and degrades every row instead.
    robust::fault::maybe_throw("core.report.eigensolve", robust::Code::kNonConvergence);
    exact.emplace(tree);
    if (!poles_valid(*exact)) {
      exact.reset();
      eigensolve_invalid = true;
      eigensolve_invalid_counter().add();
    }
  }
  // Which path produced the delay column: the O(N^3) eigensolve or
  // moment-based bounds only (limit cutoff, with_exact=false, or a
  // discarded non-convergent solve).
  (exact ? exact_path_counter() : moments_only_counter()).add();

  // Relative slack on the paper's lower <= exact <= elmore guarantee: the
  // bracketing root search and the moment sums round differently, so exact
  // equality at the boundary is not guaranteed in floating point.
  constexpr double kBoundRelTol = 1e-6;

  std::vector<NodeReport> rows;
  for (NodeId i = 0; i < tree.size(); ++i) {
    if (options.deadline && i % kDeadlineStride == 0) options.deadline->check("core.report.rows");
    if (options.leaves_only && !tree.is_leaf(i)) continue;
    NodeReport r;
    r.name = tree.name(i);
    r.depth = depths[i];
    r.elmore = stats[i].mean;
    r.sigma = stats[i].sigma;
    r.skewness = stats[i].skewness;
    r.lower_bound = std::max(r.elmore - r.sigma, 0.0);
    r.single_pole = -std::log(1.0 - options.fraction) * r.elmore;
    r.prh_tmin = prh_t_min(prh, i, options.fraction);
    r.prh_tmax = prh_t_max(prh, i, options.fraction);
    if (!std::isfinite(r.elmore) || !std::isfinite(r.sigma)) {
      // Moments themselves are broken: nothing to fall back to, but the
      // row still ships (flagged) rather than poisoning the whole net.
      r.degraded = true;
    } else if (r.elmore > 0.0) {
      bound_gap_histogram().observe((r.elmore - r.lower_bound) / r.elmore);
    }
    if (eigensolve_invalid) r.degraded = true;
    if (exact) {
      double d = exact->step_delay(i, options.fraction);
      d = robust::fault::corrupt("core.report.exact_delay", d);
      // The paper's lower <= median <= elmore sandwich only speaks about
      // the 50% crossing; other fractions get the NaN check alone.
      const double tol = kBoundRelTol * std::max(std::abs(r.elmore), 1e-18);
      const bool median = options.fraction == 0.5;
      if (!std::isfinite(d) || (median && (d < r.lower_bound - tol || d > r.elmore + tol))) {
        // The exact value escaped the paper's bounds (Theorem 1): trust
        // the moments, drop the exact columns, and flag the row.
        r.degraded = true;
      } else {
        r.exact_delay = d;
        r.exact_rise = exact->step_rise_time_10_90(i);
        if (d > 0.0) exact_error_histogram().observe(std::abs(r.elmore - d) / d);
      }
    }
    if (r.degraded) degraded_rows_counter().add();
    rows.push_back(std::move(r));
  }
  return rows;
}

namespace {

// Little-endian framing helpers for the binary row blob.  Explicit byte
// writes (not memcpy-of-struct) keep the format layout-stable across
// compilers; doubles round-trip through their raw bit patterns.
void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out += static_cast<char>((v >> shift) & 0xffULL);
}

void put_f64(std::string& out, double v) { put_u64(out, std::bit_cast<std::uint64_t>(v)); }

/// Bounds-checked sequential reader over the serialized blob.  Every take_*
/// clears `ok` instead of reading past the end, so a truncated or corrupted
/// blob can never fault — it just fails to decode.
struct BlobReader {
  const char* p;
  const char* end;
  bool ok = true;

  explicit BlobReader(std::string_view bytes)
      : p(bytes.data()), end(bytes.data() + bytes.size()) {}

  std::uint64_t take_u64() {
    if (!ok || end - p < 8) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 8)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(*p++)) << shift;
    return v;
  }

  double take_f64() { return std::bit_cast<double>(take_u64()); }

  std::uint8_t take_u8() {
    if (!ok || p == end) {
      ok = false;
      return 0;
    }
    return static_cast<std::uint8_t>(*p++);
  }

  std::string take_string(std::uint64_t n) {
    if (!ok || static_cast<std::uint64_t>(end - p) < n) {
      ok = false;
      return {};
    }
    std::string s(p, p + n);
    p += n;
    return s;
  }
};

constexpr std::uint8_t kHasExactDelay = 1u << 0;
constexpr std::uint8_t kHasExactRise = 1u << 1;
constexpr std::uint8_t kDegraded = 1u << 2;

}  // namespace

std::string serialize_report(const std::vector<NodeReport>& rows) {
  std::string out;
  out.reserve(16 + rows.size() * 96);
  put_u64(out, rows.size());
  for (const NodeReport& r : rows) {
    put_u64(out, r.name.size());
    out += r.name;
    put_u64(out, r.depth);
    put_f64(out, r.elmore);
    put_f64(out, r.sigma);
    put_f64(out, r.skewness);
    put_f64(out, r.lower_bound);
    put_f64(out, r.single_pole);
    put_f64(out, r.prh_tmin);
    put_f64(out, r.prh_tmax);
    std::uint8_t flags = 0;
    if (r.exact_delay) flags |= kHasExactDelay;
    if (r.exact_rise) flags |= kHasExactRise;
    if (r.degraded) flags |= kDegraded;
    out += static_cast<char>(flags);
    if (r.exact_delay) put_f64(out, *r.exact_delay);
    if (r.exact_rise) put_f64(out, *r.exact_rise);
  }
  return out;
}

std::optional<std::vector<NodeReport>> deserialize_report(std::string_view bytes) {
  BlobReader in(bytes);
  const std::uint64_t n_rows = in.take_u64();
  if (!in.ok) return std::nullopt;
  // A row costs at least 81 bytes; reject counts the blob cannot hold so a
  // corrupted length field never triggers a huge allocation.
  if (n_rows > static_cast<std::uint64_t>(in.end - in.p) / 81) return std::nullopt;
  std::vector<NodeReport> rows;
  rows.reserve(n_rows);
  for (std::uint64_t i = 0; i < n_rows; ++i) {
    NodeReport r;
    const std::uint64_t name_len = in.take_u64();
    if (!in.ok || name_len > static_cast<std::uint64_t>(in.end - in.p)) return std::nullopt;
    r.name = in.take_string(name_len);
    r.depth = in.take_u64();
    r.elmore = in.take_f64();
    r.sigma = in.take_f64();
    r.skewness = in.take_f64();
    r.lower_bound = in.take_f64();
    r.single_pole = in.take_f64();
    r.prh_tmin = in.take_f64();
    r.prh_tmax = in.take_f64();
    const std::uint8_t flags = in.take_u8();
    if (flags & kHasExactDelay) r.exact_delay = in.take_f64();
    if (flags & kHasExactRise) r.exact_rise = in.take_f64();
    r.degraded = (flags & kDegraded) != 0;
    if (!in.ok) return std::nullopt;
    rows.push_back(std::move(r));
  }
  if (in.p != in.end) return std::nullopt;  // trailing garbage = damage
  return rows;
}

std::string format_report(const std::vector<NodeReport>& rows) {
  std::ostringstream os;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-8s %5s %9s %9s %9s %9s %9s %9s %9s %9s\n", "node", "depth",
                "exact", "elmore", "lower", "ln2*TD", "PRH_tmin", "PRH_tmax", "sigma", "skew");
  os << buf;
  auto ns = [](double s) { return s * 1e9; };
  for (const auto& r : rows) {
    char exact_col[32];
    if (r.exact_delay)
      std::snprintf(exact_col, sizeof(exact_col), "%9.4f", ns(*r.exact_delay));
    else
      std::snprintf(exact_col, sizeof(exact_col), "%9s", "-");
    std::snprintf(buf, sizeof(buf),
                  "%-8s %5zu %s %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f %9.3f\n", r.name.c_str(),
                  r.depth, exact_col, ns(r.elmore), ns(r.lower_bound), ns(r.single_pole),
                  ns(r.prh_tmin), ns(r.prh_tmax), ns(r.sigma), r.skewness);
    os << buf;
  }
  os << "(times in ns)\n";
  return os.str();
}

}  // namespace rct::core
