#include "core/prima.hpp"

#include <cmath>
#include <stdexcept>

#include "robust/error.hpp"

#include "linalg/root_find.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "sim/tree_solver.hpp"

namespace rct::core {
namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace

double ReducedModel::step_response(double t) const {
  if (t <= 0.0) return 0.0;
  double acc = dc;
  for (std::size_t j = 0; j < poles.size(); ++j) acc -= coeffs[j] * std::exp(-poles[j] * t);
  return acc;
}

double ReducedModel::impulse_response(double t) const {
  if (t < 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t j = 0; j < poles.size(); ++j)
    acc += coeffs[j] * poles[j] * std::exp(-poles[j] * t);
  return acc;
}

double ReducedModel::delay(double fraction) const {
  if (!(fraction > 0.0 && fraction < 1.0))
    throw std::invalid_argument("ReducedModel::delay: fraction must be in (0,1)");
  const double tau = 1.0 / poles.front();
  auto f = [&](double t) { return step_response(t) - fraction * dc; };
  linalg::RootOptions opt;
  opt.x_tol = 1e-12 * tau;
  const auto root = linalg::bracket_and_solve(f, tau, 1e7 * tau, opt);
  if (!root) throw robust::Error(robust::Code::kNonConvergence,
                      "ReducedModel::delay: crossing not found");
  return *root;
}

double ReducedModel::distribution_moment(int q) const {
  if (q < 0) throw std::invalid_argument("ReducedModel: q must be >= 0");
  double fact = 1.0;
  for (int k = 2; k <= q; ++k) fact *= k;
  double acc = 0.0;
  for (std::size_t j = 0; j < poles.size(); ++j) acc += coeffs[j] / std::pow(poles[j], q);
  return fact * acc;
}

PrimaReduction::PrimaReduction(const RCTree& tree, std::size_t order) {
  if (order < 1) throw std::invalid_argument("PrimaReduction: order must be >= 1");
  n_ = tree.size();
  const std::size_t q_req = std::min<std::size_t>(order, n_);

  // Capacitance floor (zero-cap nodes would make Chat singular).
  std::vector<double> cap(n_);
  double cmax = 0.0;
  for (NodeId i = 0; i < n_; ++i) cmax = std::max(cmax, tree.capacitance(i));
  if (cmax <= 0.0) throw std::invalid_argument("PrimaReduction: tree has no capacitance");
  for (NodeId i = 0; i < n_; ++i) cap[i] = std::max(tree.capacitance(i), 1e-9 * cmax);

  // O(N) applications of G^-1 (tree LDL) and G (stamp-on-the-fly).
  const sim::TreeSystem ginv(tree, 0.0);
  std::vector<double> b(n_, 0.0);
  for (NodeId i = 0; i < n_; ++i)
    if (tree.parent(i) == kSource) b[i] = 1.0 / tree.resistance(i);
  auto apply_g = [&](const std::vector<double>& x) {
    std::vector<double> y(n_, 0.0);
    for (NodeId i = 0; i < n_; ++i) {
      const double g = 1.0 / tree.resistance(i);
      const NodeId p = tree.parent(i);
      const double xp = (p == kSource) ? 0.0 : x[p];
      const double cur = g * (x[i] - xp);
      y[i] += cur;
      if (p != kSource) y[p] -= cur;
    }
    return y;
  };

  // Krylov basis with (twice-)modified Gram-Schmidt.
  std::vector<std::vector<double>> v;
  std::vector<double> work = ginv.solve(b);  // G^-1 b
  double first_norm = 0.0;
  for (std::size_t k = 0; k < q_req; ++k) {
    if (k > 0) {
      std::vector<double> cx(n_);
      for (NodeId i = 0; i < n_; ++i) cx[i] = cap[i] * v.back()[i];
      work = ginv.solve(cx);  // (G^-1 C) v_{k-1}
    }
    for (int pass = 0; pass < 2; ++pass)
      for (const auto& u : v) {
        const double proj = dot(u, work);
        for (std::size_t i = 0; i < n_; ++i) work[i] -= proj * u[i];
      }
    const double norm = std::sqrt(dot(work, work));
    if (k == 0) first_norm = norm;
    if (norm <= 1e-12 * first_norm) break;  // Krylov space saturated
    for (double& x : work) x /= norm;
    v.push_back(work);
  }
  const std::size_t q = v.size();

  // Reduced matrices Ghat, Chat and input bhat.
  linalg::Matrix ghat(q, q);
  linalg::Matrix chat(q, q);
  std::vector<double> bhat(q);
  for (std::size_t j = 0; j < q; ++j) {
    const auto gv = apply_g(v[j]);
    for (std::size_t i = 0; i <= j; ++i) {
      ghat(i, j) = ghat(j, i) = dot(v[i], gv);
      double cij = 0.0;
      for (std::size_t m = 0; m < n_; ++m) cij += v[i][m] * cap[m] * v[j][m];
      chat(i, j) = chat(j, i) = cij;
    }
    bhat[j] = dot(v[j], b);
  }

  // Chat^{-1/2} via its own eigendecomposition (SPD by congruence).
  const auto ce = linalg::symmetric_eigen(chat);
  linalg::Matrix chalf(q, q);  // Chat^{-1/2}
  for (std::size_t i = 0; i < q; ++i)
    for (std::size_t j = 0; j < q; ++j) {
      double acc = 0.0;
      for (std::size_t m = 0; m < q; ++m) {
        const double w = ce.eigenvalues[m];
        if (!(w > 0.0)) throw robust::Error(robust::Code::kNonConvergence,
                                    "PrimaReduction: Chat not positive definite");
        acc += ce.eigenvectors(i, m) * ce.eigenvectors(j, m) / std::sqrt(w);
      }
      chalf(i, j) = acc;
    }

  // S = Chat^{-1/2} Ghat Chat^{-1/2}, then its spectrum = reduced poles.
  const linalg::Matrix s = chalf.multiply(ghat).multiply(chalf);
  const auto se = linalg::symmetric_eigen(s);
  lambda_ = se.eigenvalues;
  for (double l : lambda_)
    if (!(l > 0.0)) throw robust::Error(robust::Code::kNonConvergence,
                                "PrimaReduction: non-positive reduced pole");

  // Mode gains: g_ij = [V Chat^{-1/2} Q]_{ij} * w_j / lambda_j with
  // w = Q^T Chat^{-1/2} bhat.
  const linalg::Matrix m = chalf.multiply(se.eigenvectors);  // q x q
  std::vector<double> w(q, 0.0);
  for (std::size_t j = 0; j < q; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < q; ++i) acc += m(i, j) * bhat[i];
    w[j] = acc;
  }
  mode_gain_.assign(q * n_, 0.0);
  for (std::size_t j = 0; j < q; ++j) {
    for (NodeId i = 0; i < n_; ++i) {
      double cij = 0.0;
      for (std::size_t mm = 0; mm < q; ++mm) cij += v[mm][i] * m(mm, j);
      mode_gain_[j * n_ + i] = cij * w[j] / lambda_[j];
    }
  }
}

ReducedModel PrimaReduction::at(NodeId node) const {
  if (node >= n_) throw std::invalid_argument("PrimaReduction::at: node out of range");
  ReducedModel rm;
  rm.poles = lambda_;
  rm.coeffs.resize(lambda_.size());
  double dc = 0.0;
  for (std::size_t j = 0; j < lambda_.size(); ++j) {
    rm.coeffs[j] = mode_gain_[j * n_ + node];
    dc += rm.coeffs[j];
  }
  rm.dc = dc;
  return rm;
}

bool PrimaReduction::stable() const {
  for (double l : lambda_)
    if (!(l > 0.0)) return false;
  return true;
}

}  // namespace rct::core
