#pragma once
// Effective capacitance of an RC load.
//
// A gate delay table is characterized against a single lumped load, but a
// real RC tree shields part of its capacitance behind wire resistance —
// the "resistance shielding" the paper's Section IV cites ([6]).  The
// standard fix reduces the tree to the O'Brien-Savarino pi-model and then
// finds the single capacitance C_eff that draws the same average current
// from the driver over the switching window:
//
//   C_eff = C1 + k C2,   k = 1 - (tau2/dt)(1 - e^{-dt/tau2}),  tau2 = R2 C2
//
// iterated with the switching window dt re-estimated from C_eff itself
// (dt = ln 2 * R_drv * C_eff, the single-pole 50% window).  Fixed point in
// a handful of iterations; always in [C1, C1 + C2].

#include "core/pi_model.hpp"
#include "rctree/rctree.hpp"

namespace rct::core {

/// Result of the C_eff iteration.
struct EffectiveCap {
  double ceff;        ///< farads, in [C1, C1 + C2]
  double total;       ///< C1 + C2 (the unshielded lumped value)
  double shielding;   ///< 1 - ceff/total, in [0, 1): how much the wire hides
  int iterations;     ///< fixed-point iterations used
};

/// C_eff of an explicit pi-load driven through `driver_resistance`.
[[nodiscard]] EffectiveCap effective_capacitance(const PiModel& pi, double driver_resistance);

/// C_eff of a whole RC tree load (reduced to its pi-model first).
/// Falls back to the exact total capacitance for loads too small to reduce
/// (single capacitor: nothing is shielded).
[[nodiscard]] EffectiveCap effective_capacitance(const RCTree& load, double driver_resistance);

}  // namespace rct::core
