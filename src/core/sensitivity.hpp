#pragma once
// Analytic Elmore sensitivities — the gradients sizing/placement optimizers
// differentiate through.  Both follow directly from T_D(i) = sum_k R_ki C_k:
//
//   d T_D(i) / d c_k = R_ki            (shared-path resistance)
//   d T_D(i) / d r_e = Ctot(e) if the edge e lies on the source->i path,
//                      0 otherwise
//
// Each full gradient is computed in O(N) by one subtree sweep plus one
// path-partition sweep, so a gradient step costs no more than a delay
// evaluation — another reason the Elmore metric owns the inner loop.

#include <vector>

#include "analysis/tree_context.hpp"
#include "rctree/rctree.hpp"

namespace rct::core {

/// d T_D(node) / d c_k for every k (i.e. the vector of shared-path
/// resistances R_k,node).  O(N).
[[nodiscard]] std::vector<double> elmore_cap_sensitivities(const RCTree& tree, NodeId node);

/// Same from a shared context (reuses its path-resistance array).
[[nodiscard]] std::vector<double> elmore_cap_sensitivities(const analysis::TreeContext& context,
                                                           NodeId node);

/// d T_D(node) / d r_e for every edge e (indexed by the edge's lower node).
/// Nonzero exactly on the source->node path, where it equals the subtree
/// capacitance below the edge.  O(N).
[[nodiscard]] std::vector<double> elmore_res_sensitivities(const RCTree& tree, NodeId node);

/// Same from a shared context (reuses its subtree-capacitance array).
[[nodiscard]] std::vector<double> elmore_res_sensitivities(const analysis::TreeContext& context,
                                                           NodeId node);

}  // namespace rct::core
