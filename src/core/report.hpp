#pragma once
// Per-node delay report: every metric the paper's Table I compares, for any
// tree, in one call — plus a plain-text table renderer.  This is the "STA
// net report" entry point downstream users call.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/tree_context.hpp"
#include "rctree/rctree.hpp"
#include "robust/deadline.hpp"

namespace rct::core {

/// All Table-I-style metrics at one node (seconds).
struct NodeReport {
  std::string name;
  std::size_t depth;                  ///< edges from the source
  double elmore;                      ///< T_D (upper bound)
  double sigma;                       ///< sqrt(mu2) of h(t)
  double skewness;                    ///< gamma of h(t) (>= 0 by Lemma 2)
  double lower_bound;                 ///< max(T_D - sigma, 0)
  double single_pole;                 ///< ln(2) T_D
  double prh_tmin;                    ///< Penfield-Rubinstein lower, 50%
  double prh_tmax;                    ///< Penfield-Rubinstein upper, 50%
  std::optional<double> exact_delay;  ///< exact 50% step delay, if computed
  std::optional<double> exact_rise;   ///< exact 10-90% rise time, if computed
  /// Degradation ladder: true when the exact path was requested but its
  /// result was discarded (eigensolve produced non-finite poles, or the
  /// exact delay was NaN / violated the paper's lower <= exact <= elmore
  /// guarantee) and the row fell back to moment bounds — or when the
  /// moments themselves are non-finite (nothing left to fall back to).
  bool degraded = false;
};

/// Options for report generation.
struct ReportOptions {
  bool with_exact = true;      ///< run the eigendecomposition (O(N^3))
  double fraction = 0.5;       ///< threshold fraction for delays/bounds
  bool leaves_only = false;    ///< restrict rows to leaf nodes
  /// Largest tree (in nodes) the O(N^3) eigensolve is attempted on; larger
  /// trees get bound-only rows even when with_exact is set.  Shared by the
  /// CLI `spef` and `batch` commands (--exact-limit).
  std::size_t exact_node_limit = 2000;
  /// Cooperative deadline checked before the eigensolve and every few
  /// rows; expiry throws robust::Error(kTimeout).  Borrowed, not owned;
  /// nullptr = no deadline.  Deliberately excluded from NetKey hashing
  /// (it never changes the rows, only whether they finish).
  const robust::Deadline* deadline = nullptr;
};

/// Builds the report for every node (or every leaf).  Constructs a
/// one-shot analysis::TreeContext internally; callers that analyze the same
/// tree more than once should build the context themselves and use the
/// overload below.
[[nodiscard]] std::vector<NodeReport> build_report(const RCTree& tree,
                                                   const ReportOptions& options = {});

/// Same report from a shared TreeContext: all derived arrays (depths,
/// moments, PRH terms) come from the context, so the per-node loop is a
/// fixed set of O(N) array reads — no per-call tree walks.  Output is
/// bit-identical to the tree overload.
[[nodiscard]] std::vector<NodeReport> build_report(const analysis::TreeContext& context,
                                                   const ReportOptions& options = {});

/// Renders reports as an aligned text table (times in ns).
[[nodiscard]] std::string format_report(const std::vector<NodeReport>& rows);

/// Binary row serialization — the persistence format the content-addressed
/// on-disk store (src/server) writes under each NetKey.  Little-endian,
/// fixed layout: u64 row count, then per row a length-prefixed name, the
/// u64 depth, the seven double metrics as raw bit patterns (bit-exact
/// round trip, NaN/Inf safe) and one flag byte (exact_delay / exact_rise
/// presence, degraded) followed by the optional exact values.  The blob
/// itself is unversioned; the store's envelope carries version + checksum.
[[nodiscard]] std::string serialize_report(const std::vector<NodeReport>& rows);

/// Inverse of serialize_report().  Returns nullopt on any truncation or
/// malformed framing (never throws, never reads out of bounds) so callers
/// can treat a damaged cache entry as a miss and recompute.
[[nodiscard]] std::optional<std::vector<NodeReport>> deserialize_report(
    std::string_view bytes);

}  // namespace rct::core
