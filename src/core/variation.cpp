#include "core/variation.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "moments/path_tracing.hpp"

namespace rct::core {
namespace {

void check_model(const VariationModel& m) {
  if (m.res_sigma < 0.0 || m.cap_sigma < 0.0 || m.global_sigma < 0.0)
    throw std::invalid_argument("variation: sigmas must be >= 0");
}

}  // namespace

RCTree sample_variation(const RCTree& tree, const VariationModel& model, std::uint64_t seed) {
  check_model(model);
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  const double global = std::exp(model.global_sigma * gauss(rng));
  RCTreeBuilder b;
  for (NodeId i = 0; i < tree.size(); ++i) {
    const double r = tree.resistance(i) * global * std::exp(model.res_sigma * gauss(rng));
    const double c = tree.capacitance(i) * global * std::exp(model.cap_sigma * gauss(rng));
    b.add_node(tree.name(i), tree.parent(i), r, c);
  }
  return std::move(b).build();
}

VariationStats elmore_variation(const RCTree& tree, NodeId node, const VariationModel& model,
                                std::size_t samples, std::uint64_t seed) {
  check_model(model);
  if (node >= tree.size()) throw std::invalid_argument("variation: node out of range");
  if (samples < 2) throw std::invalid_argument("variation: need >= 2 samples");

  std::vector<double> td;
  td.reserve(samples);
  for (std::size_t s = 0; s < samples; ++s) {
    const RCTree perturbed = sample_variation(tree, model, seed + s);
    td.push_back(moments::elmore_delays(perturbed)[node]);
  }
  std::sort(td.begin(), td.end());

  VariationStats out{};
  out.nominal = moments::elmore_delays(tree)[node];
  out.samples = samples;
  double sum = 0.0;
  for (double v : td) sum += v;
  out.mean = sum / static_cast<double>(samples);
  double var = 0.0;
  for (double v : td) var += (v - out.mean) * (v - out.mean);
  out.stddev = std::sqrt(var / static_cast<double>(samples - 1));
  auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(samples - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    return (lo + 1 < samples) ? td[lo] * (1.0 - frac) + td[lo + 1] * frac : td[lo];
  };
  out.q05 = quantile(0.05);
  out.q50 = quantile(0.50);
  out.q95 = quantile(0.95);
  return out;
}

}  // namespace rct::core
