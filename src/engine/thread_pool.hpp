#pragma once
// Fixed-size thread pool with per-worker task deques and work stealing.
//
// Each worker owns a deque guarded by its own mutex: a worker pops its own
// tasks from the back (LIFO, cache-hot) and, when its deque is empty, steals
// from a sibling's front (FIFO, oldest-first).  submit() round-robins new
// tasks across the deques, so contention is spread instead of funnelled
// through one global lock, while the strict mutex-per-deque design stays
// verifiable by ThreadSanitizer.
//
// Tasks must handle their own exceptions; anything that escapes a task is
// swallowed so one bad task can never take the pool (or the process) down.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rct::engine {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 selects std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains: blocks until every submitted task has completed, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; tasks may themselves call submit().
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

  /// Convenience: runs fn(0), ..., fn(n-1) across the pool and waits.
  /// Requires the pool to be otherwise idle (shares wait_idle()).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> queue;
  };

  void worker_loop(std::size_t home);
  /// Pops one task (own deque first, then steals) and runs it.
  bool try_run_one(std::size_t home);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Lifecycle counters, all guarded by sleep_mutex_.
  std::mutex sleep_mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::size_t unfinished_ = 0;  ///< submitted, not yet completed
  std::size_t unclaimed_ = 0;   ///< queued, not yet popped by a worker
  bool stop_ = false;

  std::size_t next_ = 0;  ///< round-robin submit cursor (guarded by sleep_mutex_)
};

}  // namespace rct::engine
