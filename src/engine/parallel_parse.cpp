#include "engine/parallel_parse.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "engine/thread_pool.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rctree/arena.hpp"
#include "rctree/mapped_file.hpp"

namespace rct::engine {
namespace {

obs::Counter& sections_total_counter() {
  static obs::Counter& c = obs::registry().counter("parse.sections.total");
  return c;
}
obs::Counter& sections_completed_counter() {
  static obs::Counter& c = obs::registry().counter("parse.sections.completed");
  return c;
}
obs::Histogram& index_histogram() {
  static obs::Histogram& h = obs::registry().histogram("parse.index.seconds");
  return h;
}
obs::Histogram& section_histogram() {
  static obs::Histogram& h = obs::registry().histogram("parse.nets.seconds");
  return h;
}

double wall_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Scratch arena reused across the sections a worker parses; its blocks are
/// released when the worker thread exits (pool destruction).
Arena& worker_arena() {
  thread_local Arena arena;
  return arena;
}

/// Typed code of a shard's strict-mode error, for the flight recorder.
robust::Code error_code_of(const std::exception_ptr& error) {
  if (!error) return robust::Code::kNone;
  try {
    std::rethrow_exception(error);
  } catch (const robust::Error& e) {
    return e.code();
  } catch (...) {
    return robust::Code::kTaskFailure;
  }
}

}  // namespace

namespace detail {

spef::ShardResult parse_section_task(std::string_view text, const spef::ParsePlan& plan,
                                     std::size_t index, const SpefParseOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  Arena& arena = worker_arena();
  spef::ShardResult result = spef::parse_spef_section(text, plan, index, options, arena);
  arena.reset();
  const double seconds = wall_since(start);
  if constexpr (obs::kTimingEnabled) section_histogram().observe(seconds);
  sections_completed_counter().add();
  // One flight event per section: named by the net it carried (a section
  // holds at most one *D_NET), or its first line when the net was rejected.
  obs::flight::Recorder& fr = obs::flight::recorder();
  if (fr.enabled()) {
    char fallback[32];
    std::string_view label;
    if (!result.nets.empty()) {
      label = result.nets.front().name;
    } else {
      std::snprintf(fallback, sizeof(fallback), "line %zu",
                    plan.layout.sections[index].first_line);
      label = fallback;
    }
    const bool failed = result.error != nullptr || result.nets_rejected != 0;
    fr.record(label, "parse",
              failed ? obs::flight::Outcome::kFailed : obs::flight::Outcome::kOk,
              error_code_of(result.error),
              static_cast<std::uint64_t>(seconds * 1e9));
  }
  return result;
}

}  // namespace detail

std::string ParseStats::summary() const {
  const double mb = static_cast<double>(bytes) / 1e6;
  const double wall = total_seconds > 0.0 ? total_seconds : 1e-12;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "parse: %.1f MB, %zu net(s) from %zu section(s), %zu rejected, "
                "%zu thread(s); index %.3fs, sections %.3fs, total %.3fs wall "
                "(%.1f MB/s, %.0f nets/s)",
                mb, nets, sections, nets_rejected, threads, index_seconds, sections_seconds,
                total_seconds, mb / wall, static_cast<double>(nets) / wall);
  return buf;
}

ParsedSpef parse_spef_parallel(std::string_view text, const ParseOptions& options) {
  const auto total_start = std::chrono::steady_clock::now();
  const obs::Span span("engine.parse", "engine", options.spef.path);

  ParsedSpef out;
  out.stats.bytes = text.size();

  const auto index_start = std::chrono::steady_clock::now();
  spef::ParsePlan plan = spef::prepare_spef(text, options.spef);
  out.stats.index_seconds = wall_since(index_start);
  if constexpr (obs::kTimingEnabled) index_histogram().observe(out.stats.index_seconds);

  const std::size_t n = plan.layout.sections.size();
  out.stats.sections = n;
  sections_total_counter().add(n);
  const std::size_t jobs =
      options.jobs == 0 ? 0 : std::min(options.jobs, std::max<std::size_t>(n, 1));

  const auto sections_start = std::chrono::steady_clock::now();
  std::vector<spef::ShardResult> results(n);
  if (jobs == 1 || n < 2) {
    out.stats.threads = 1;
    for (std::size_t i = 0; i < n; ++i) {
      results[i] = detail::parse_section_task(text, plan, i, options.spef);
      if (results[i].error) break;  // strict: nothing later can be observed
    }
  } else {
    ThreadPool pool(jobs);
    out.stats.threads = pool.thread_count();
    obs::log::info("engine.parse.start",
                   {{"sections", static_cast<std::uint64_t>(n)},
                    {"jobs", static_cast<std::uint64_t>(pool.thread_count())},
                    {"bytes", static_cast<std::uint64_t>(text.size())}});
    // One task per section writing its preassigned slot: the merge below
    // walks slots in file order, so scheduling never shows in the output.
    pool.parallel_for(n, [&](std::size_t i) {
      results[i] = detail::parse_section_task(text, plan, i, options.spef);
    });
  }
  out.stats.sections_seconds = wall_since(sections_start);

  out.file = spef::merge_spef(std::move(plan), std::move(results), options.spef);
  out.stats.nets = out.file.nets.size();
  out.stats.nets_rejected = out.file.nets_rejected;
  out.stats.total_seconds = wall_since(total_start);
  obs::log::info("engine.parse.done",
                 {{"nets", static_cast<std::uint64_t>(out.stats.nets)},
                  {"rejected", static_cast<std::uint64_t>(out.stats.nets_rejected)},
                  {"wall_s", out.stats.total_seconds}});
  return out;
}

ParsedSpef parse_spef_parallel_file(const std::string& path, const ParseOptions& options) {
  MappedFile file;
  if (!file.open(path))
    throw SpefError(robust::Code::kFileOpen, "cannot open '" + path + "'", {path, 0}, "spef");
  ParseOptions with_path = options;
  if (with_path.spef.path.empty()) with_path.spef.path = path;
  return parse_spef_parallel(file.view(), with_path);
}

}  // namespace rct::engine
