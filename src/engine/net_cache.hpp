#pragma once
// Content-addressed cache of per-net report rows.
//
// Key: 64-bit FNV-1a over the net's topology (parent ids), the exact bit
// patterns of its R/C values, and the ReportOptions that shaped the rows.
// Node names are deliberately excluded — repeated physical nets (clock
// meshes, stamped macro pins) differ only in names — and are re-bound from
// the live tree on a hit, so a hit returns rows indistinguishable from a
// fresh build_report() call.  The full key material is stored and compared
// on lookup, so a hit is exact, never probabilistic.
//
// Thread safety: the map is sharded by hash, one mutex per shard, so
// concurrent lookups/inserts from a thread pool contend only when they land
// on the same shard.
//
// Bounding: an optional LRU cap (`max_entries`, 0 = unbounded) limits how
// many row entries — and, independently, how many contexts — the cache
// retains.  The cap is split evenly across shards, so it is approximate:
// a shard evicts its own least-recently-used entry once it exceeds
// ceil(max_entries / shards), regardless of what other shards hold.
// Evictions are counted (`engine.cache.evictions`).  The default (0)
// preserves the unbounded, byte-identical pre-cap behavior.
//
// Persistence: a CacheBackend is the hook a second-level store plugs into
// (src/server's content-addressed DiskStore is the shipping
// implementation).  Misses consult the backend before reporting a miss;
// inserts write through.  Backend I/O happens outside the shard locks.

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/tree_context.hpp"
#include "core/report.hpp"
#include "rctree/rctree.hpp"

namespace rct::engine {

/// Name-independent key material of a (tree, options) pair.
struct NetKey {
  std::vector<std::uint64_t> words;  ///< packed topology/R/C/options
  std::uint64_t hash = 0;            ///< FNV-1a of words

  /// Builds the key for one net's report computation.
  [[nodiscard]] static NetKey of(const RCTree& tree, const core::ReportOptions& options);

  /// Content-only key (topology + R/C bit patterns, no options) — the
  /// identity under which derived arrays are shareable between nets.
  [[nodiscard]] static NetKey content_of(const RCTree& tree);

  [[nodiscard]] bool operator==(const NetKey& other) const { return words == other.words; }
};

/// Rewrites `rows`' names (and nothing else) for `tree`.  Rows are either
/// one-per-node or one-per-leaf; the row count disambiguates the mapping.
/// Used after computing rows from a content-identical donor tree/context.
void rebind_report_names(std::vector<core::NodeReport>& rows, const RCTree& tree);

/// Second-level store interface the NetCache consults on a memory miss and
/// writes through to on insert.  Implementations must be safe to call from
/// many threads concurrently and must never throw: a failed load is a
/// nullopt (the caller recomputes), a failed save is dropped.  The cache
/// never holds a shard lock across a backend call, so implementations are
/// free to do real I/O.
class CacheBackend {
 public:
  virtual ~CacheBackend() = default;
  /// Rows stored under `key`, or nullopt (missing, damaged, unreadable).
  [[nodiscard]] virtual std::optional<std::vector<core::NodeReport>> load(const NetKey& key) = 0;
  /// Persists rows under `key`; best-effort.
  virtual void save(const NetKey& key, const std::vector<core::NodeReport>& rows) = 0;
};

/// Where a NetCache::lookup() hit was served from.
enum class CacheSource {
  kMiss,
  kMemory,   ///< in-memory entry
  kBackend,  ///< second-level store (entry promoted into memory)
};

class NetCache {
 public:
  /// `max_entries` == 0 leaves the cache unbounded.
  explicit NetCache(std::size_t shards = 16, std::size_t max_entries = 0);

  /// Attaches the second-level store.  Set before the cache is shared
  /// across threads (the pointer itself is not synchronized).
  void set_backend(std::shared_ptr<CacheBackend> backend) { backend_ = std::move(backend); }

  /// Returns a copy of the cached rows with names re-bound to `tree`, or
  /// nullopt on a miss.  `tree` must be the tree the key was built from.
  /// A hit refreshes the entry's LRU position; a memory miss consults the
  /// backend and promotes a backend hit into memory.  `source` (optional)
  /// reports which level served the hit.
  [[nodiscard]] std::optional<std::vector<core::NodeReport>> lookup(
      const NetKey& key, const RCTree& tree, CacheSource* source = nullptr);

  /// Stores rows under `key` (write-through to the backend); a concurrent
  /// duplicate insert keeps the first.
  void insert(const NetKey& key, std::vector<core::NodeReport> rows);

  /// Returns the shared TreeContext stored under the *content* key, or
  /// nullptr.  Contexts are keyed by content only (NetKey::content_of), so
  /// one context serves every ReportOptions variant of the same net.  The
  /// context's derived arrays are name-independent; consumers that emit
  /// names must rebind_report_names() against their own live tree.
  [[nodiscard]] std::shared_ptr<const analysis::TreeContext> lookup_context(const NetKey& key);

  /// Stores `context` under the content key; on a concurrent duplicate the
  /// first writer wins and the stored (winning) context is returned, so
  /// callers can switch to the shared instance.  The cached context must
  /// remain valid for the cache's lifetime: either it owns its tree, or the
  /// borrowed tree outlives the cache (the engine's per-batch caches borrow
  /// from the batch's nets, which do; the long-lived server caches contexts
  /// that own copies of their trees).
  std::shared_ptr<const analysis::TreeContext> insert_context(
      const NetKey& key, std::shared_ptr<const analysis::TreeContext> context);

  /// Drops every row entry and context (the backend is untouched).  Not
  /// counted as evictions.  Returns {row entries dropped, contexts dropped}.
  std::pair<std::size_t, std::size_t> clear();

  [[nodiscard]] std::size_t hits() const { return hits_.load(); }
  [[nodiscard]] std::size_t misses() const { return misses_.load(); }
  /// Memory misses served by the backend store.
  [[nodiscard]] std::size_t backend_hits() const { return backend_hits_.load(); }
  /// Row entries + contexts displaced by the LRU cap (clear() excluded).
  [[nodiscard]] std::size_t evictions() const { return evictions_.load(); }
  /// Number of context cache hits (lookup_context successes plus
  /// insert_context races lost to an earlier writer).
  [[nodiscard]] std::size_t context_hits() const { return ctx_hits_.load(); }
  /// Number of distinct entries stored.
  [[nodiscard]] std::size_t size() const;
  /// Number of distinct contexts stored.
  [[nodiscard]] std::size_t context_count() const;

 private:
  struct Entry {
    NetKey key;
    std::vector<core::NodeReport> rows;
  };
  struct CtxEntry {
    NetKey key;
    std::shared_ptr<const analysis::TreeContext> context;
  };
  /// Per-shard storage: intrusive recency lists (front = most recent) with
  /// hash-indexed iterator chains for O(1) lookup, splice and eviction.
  struct Shard {
    std::mutex mutex;
    std::list<Entry> entries;  // MRU at front
    std::unordered_map<std::uint64_t, std::vector<std::list<Entry>::iterator>> index;
    std::list<CtxEntry> contexts;  // MRU at front
    std::unordered_map<std::uint64_t, std::vector<std::list<CtxEntry>::iterator>> ctx_index;
  };

  Shard& shard_for(std::uint64_t hash) { return *shards_[hash % shards_.size()]; }

  /// Inserts rows into the in-memory tier only (no backend write-through).
  /// Returns false when the key was already present.
  bool insert_memory(const NetKey& key, std::vector<core::NodeReport> rows);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t cap_per_shard_ = 0;  ///< 0 = unbounded
  std::shared_ptr<CacheBackend> backend_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> backend_hits_{0};
  std::atomic<std::size_t> evictions_{0};
  std::atomic<std::size_t> ctx_hits_{0};
};

}  // namespace rct::engine
