#pragma once
// Content-addressed cache of per-net report rows.
//
// Key: 64-bit FNV-1a over the net's topology (parent ids), the exact bit
// patterns of its R/C values, and the ReportOptions that shaped the rows.
// Node names are deliberately excluded — repeated physical nets (clock
// meshes, stamped macro pins) differ only in names — and are re-bound from
// the live tree on a hit, so a hit returns rows indistinguishable from a
// fresh build_report() call.  The full key material is stored and compared
// on lookup, so a hit is exact, never probabilistic.
//
// Thread safety: the map is sharded by hash, one mutex per shard, so
// concurrent lookups/inserts from a thread pool contend only when they land
// on the same shard.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "analysis/tree_context.hpp"
#include "core/report.hpp"
#include "rctree/rctree.hpp"

namespace rct::engine {

/// Name-independent key material of a (tree, options) pair.
struct NetKey {
  std::vector<std::uint64_t> words;  ///< packed topology/R/C/options
  std::uint64_t hash = 0;            ///< FNV-1a of words

  /// Builds the key for one net's report computation.
  [[nodiscard]] static NetKey of(const RCTree& tree, const core::ReportOptions& options);

  /// Content-only key (topology + R/C bit patterns, no options) — the
  /// identity under which derived arrays are shareable between nets.
  [[nodiscard]] static NetKey content_of(const RCTree& tree);

  [[nodiscard]] bool operator==(const NetKey& other) const { return words == other.words; }
};

/// Rewrites `rows`' names (and nothing else) for `tree`.  Rows are either
/// one-per-node or one-per-leaf; the row count disambiguates the mapping.
/// Used after computing rows from a content-identical donor tree/context.
void rebind_report_names(std::vector<core::NodeReport>& rows, const RCTree& tree);

class NetCache {
 public:
  explicit NetCache(std::size_t shards = 16);

  /// Returns a copy of the cached rows with names re-bound to `tree`, or
  /// nullopt on a miss.  `tree` must be the tree the key was built from.
  [[nodiscard]] std::optional<std::vector<core::NodeReport>> lookup(const NetKey& key,
                                                                    const RCTree& tree);

  /// Stores rows under `key`; a concurrent duplicate insert keeps the first.
  void insert(const NetKey& key, std::vector<core::NodeReport> rows);

  /// Returns the shared TreeContext stored under the *content* key, or
  /// nullptr.  Contexts are keyed by content only (NetKey::content_of), so
  /// one context serves every ReportOptions variant of the same net.  The
  /// context's derived arrays are name-independent; consumers that emit
  /// names must rebind_report_names() against their own live tree.
  [[nodiscard]] std::shared_ptr<const analysis::TreeContext> lookup_context(const NetKey& key);

  /// Stores `context` under the content key; on a concurrent duplicate the
  /// first writer wins and the stored (winning) context is returned, so
  /// callers can switch to the shared instance.  The cached context must
  /// remain valid for the cache's lifetime: either it owns its tree, or the
  /// borrowed tree outlives the cache (the engine's per-batch caches borrow
  /// from the batch's nets, which do).
  std::shared_ptr<const analysis::TreeContext> insert_context(
      const NetKey& key, std::shared_ptr<const analysis::TreeContext> context);

  [[nodiscard]] std::size_t hits() const { return hits_.load(); }
  [[nodiscard]] std::size_t misses() const { return misses_.load(); }
  /// Number of context cache hits (lookup_context successes plus
  /// insert_context races lost to an earlier writer).
  [[nodiscard]] std::size_t context_hits() const { return ctx_hits_.load(); }
  /// Number of distinct entries stored.
  [[nodiscard]] std::size_t size() const;
  /// Number of distinct contexts stored.
  [[nodiscard]] std::size_t context_count() const;

 private:
  struct Entry {
    NetKey key;
    std::vector<core::NodeReport> rows;
  };
  struct CtxEntry {
    NetKey key;
    std::shared_ptr<const analysis::TreeContext> context;
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, std::vector<Entry>> map;  // hash -> collision chain
    std::unordered_map<std::uint64_t, std::vector<CtxEntry>> ctx_map;
  };

  Shard& shard_for(std::uint64_t hash) { return *shards_[hash % shards_.size()]; }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> ctx_hits_{0};
};

}  // namespace rct::engine
