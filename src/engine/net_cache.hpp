#pragma once
// Content-addressed cache of per-net report rows.
//
// Key: 64-bit FNV-1a over the net's topology (parent ids), the exact bit
// patterns of its R/C values, and the ReportOptions that shaped the rows.
// Node names are deliberately excluded — repeated physical nets (clock
// meshes, stamped macro pins) differ only in names — and are re-bound from
// the live tree on a hit, so a hit returns rows indistinguishable from a
// fresh build_report() call.  The full key material is stored and compared
// on lookup, so a hit is exact, never probabilistic.
//
// Thread safety: the map is sharded by hash, one mutex per shard, so
// concurrent lookups/inserts from a thread pool contend only when they land
// on the same shard.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/report.hpp"
#include "rctree/rctree.hpp"

namespace rct::engine {

/// Name-independent key material of a (tree, options) pair.
struct NetKey {
  std::vector<std::uint64_t> words;  ///< packed topology/R/C/options
  std::uint64_t hash = 0;            ///< FNV-1a of words

  /// Builds the key for one net's report computation.
  [[nodiscard]] static NetKey of(const RCTree& tree, const core::ReportOptions& options);

  [[nodiscard]] bool operator==(const NetKey& other) const { return words == other.words; }
};

class NetCache {
 public:
  explicit NetCache(std::size_t shards = 16);

  /// Returns a copy of the cached rows with names re-bound to `tree`, or
  /// nullopt on a miss.  `tree` must be the tree the key was built from.
  [[nodiscard]] std::optional<std::vector<core::NodeReport>> lookup(const NetKey& key,
                                                                    const RCTree& tree);

  /// Stores rows under `key`; a concurrent duplicate insert keeps the first.
  void insert(const NetKey& key, std::vector<core::NodeReport> rows);

  [[nodiscard]] std::size_t hits() const { return hits_.load(); }
  [[nodiscard]] std::size_t misses() const { return misses_.load(); }
  /// Number of distinct entries stored.
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    NetKey key;
    std::vector<core::NodeReport> rows;
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, std::vector<Entry>> map;  // hash -> collision chain
  };

  Shard& shard_for(std::uint64_t hash) { return *shards_[hash % shards_.size()]; }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
};

}  // namespace rct::engine
