#include "engine/batch.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "engine/net_cache.hpp"
#include "engine/thread_pool.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rctree/mapped_file.hpp"
#include "rctree/units.hpp"
#include "robust/deadline.hpp"
#include "robust/fault.hpp"

namespace rct::engine {
namespace {

/// Wall + process-CPU stopwatch for one phase.
class PhaseTimer {
 public:
  PhaseTimer()
      : wall_start_(std::chrono::steady_clock::now()), cpu_start_(std::clock()) {}

  [[nodiscard]] PhaseTime elapsed() const {
    PhaseTime t;
    t.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start_)
                   .count();
    t.cpu_s = static_cast<double>(std::clock() - cpu_start_) / CLOCKS_PER_SEC;
    return t;
  }

 private:
  std::chrono::steady_clock::time_point wall_start_;
  std::clock_t cpu_start_;
};

/// Cached references into the global obs registry.  These counters ARE the
/// engine's bookkeeping: EngineStats is computed as per-run deltas over
/// them (see run_batch), so the stderr summary, the `--metrics-out`
/// snapshot and the `--progress` meter all read one source of truth.
struct EngineCounters {
  obs::Counter& nets_total = obs::registry().counter("engine.nets.total");
  obs::Counter& nets_completed = obs::registry().counter("engine.nets.completed");
  obs::Counter& nets_failed = obs::registry().counter("engine.nets.failed");
  obs::Counter& nets_degraded = obs::registry().counter("engine.nets.degraded");
  obs::Counter& nets_retried = obs::registry().counter("engine.nets.retried");
  obs::Counter& nets_timed_out = obs::registry().counter("engine.nets.timed_out");
  obs::Counter& nets_cancelled = obs::registry().counter("engine.nets.cancelled");
  obs::Counter& tasks_run = obs::registry().counter("engine.tasks.run");
  obs::Counter& contexts_built = obs::registry().counter("engine.context.built");
  obs::Counter& context_reuses = obs::registry().counter("engine.context.reused");
  /// Incremented by NetCache itself (engine.cache.hits); read for deltas.
  obs::Counter& cache_hits = obs::registry().counter("engine.cache.hits");

  static EngineCounters& get() {
    static EngineCounters instance;
    return instance;
  }
};

obs::Histogram& net_analyze_histogram() {
  static obs::Histogram& h = obs::registry().histogram("engine.net.analyze_seconds");
  return h;
}
obs::Histogram& queue_wait_histogram() {
  static obs::Histogram& h = obs::registry().histogram("engine.task.queue_wait_seconds");
  return h;
}
obs::Histogram& analyze_phase_histogram() {
  static obs::Histogram& h = obs::registry().histogram("engine.batch.analyze_seconds");
  return h;
}
obs::Histogram& merge_phase_histogram() {
  static obs::Histogram& h = obs::registry().histogram("engine.batch.merge_seconds");
  return h;
}

/// One analysis attempt; never throws (failures land in result.error with
/// a typed code).  `report` is the per-attempt option set — the deadline
/// pointer and the retry's with_exact flip live there, not in
/// options.report.
NetResult analyze_one_impl(const SpefNet& net, const core::ReportOptions& report,
                           NetCache* cache) {
  const obs::Span span("engine.net.analyze", "engine", net.name);
  const obs::ScopedTimer timer(net_analyze_histogram());
  EngineCounters& ec = EngineCounters::get();
  NetResult r;
  r.name = net.name;
  r.driver = net.driver;
  r.loads = net.loads;
  r.nodes = net.tree.size();
  try {
    robust::fault::maybe_sleep("engine.net.analyze");
    robust::fault::maybe_throw("engine.net.analyze", robust::Code::kTaskFailure);
    if (net.tree.empty())
      throw robust::Error(robust::Code::kEmptyTree,
                          "net '" + net.name + "' has an empty RC tree");
    r.total_capacitance = net.tree.total_capacitance();
    if (cache != nullptr) {
      const NetKey key = NetKey::of(net.tree, report);
      if (auto hit = cache->lookup(key, net.tree)) {
        r.rows = std::move(*hit);
        r.from_cache = true;
        return r;
      }
      ec.tasks_run.add();
      // Share derived arrays by content: a content-identical net analyzed
      // under different options (or concurrently) reuses the same context.
      // The borrowed donor tree is a batch net, which outlives the cache.
      const NetKey ckey = NetKey::content_of(net.tree);
      std::shared_ptr<const analysis::TreeContext> ctx = cache->lookup_context(ckey);
      if (ctx != nullptr) {
        ec.context_reuses.add();
      } else {
        auto built = std::make_shared<const analysis::TreeContext>(net.tree);
        ctx = cache->insert_context(ckey, built);
        if (ctx == built)
          ec.contexts_built.add();
        else
          ec.context_reuses.add();  // lost the insert race
      }
      r.rows = core::build_report(*ctx, report);
      // A donor context computed the rows under its own tree's names.
      if (&ctx->tree() != &net.tree) rebind_report_names(r.rows, net.tree);
      cache->insert(key, r.rows);
    } else {
      ec.tasks_run.add();
      ec.contexts_built.add();
      const analysis::TreeContext ctx(net.tree);
      r.rows = core::build_report(ctx, report);
    }
  } catch (const robust::Error& e) {
    r.rows.clear();
    r.error = e.what();
    r.code = e.code();
  } catch (const std::exception& e) {
    // Untyped escapee (lower-layer solver, allocator, ...): record it as a
    // task failure so it still gets a structured code and a retry shot.
    r.rows.clear();
    r.error = e.what();
    r.code = robust::Code::kTaskFailure;
  }
  return r;
}

/// analyze_one_impl plus the per-attempt observability shell: a flight
/// recorder event covering the attempt (named by `phase`) and plain-chrono
/// wall timing into NetResult::analyze_seconds.  The chrono clock is
/// deliberately independent of RCT_OBS so `--top-slow` works in every
/// build.
NetResult analyze_one(const SpefNet& net, const core::ReportOptions& report, NetCache* cache,
                      const char* phase) {
  obs::flight::Recorder& fr = obs::flight::recorder();
  obs::flight::Recorder::Handle flight = fr.begin(net.name, phase);
  const auto wall_start = std::chrono::steady_clock::now();
  NetResult r = analyze_one_impl(net, report, cache);
  r.analyze_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  obs::flight::Outcome outcome = obs::flight::Outcome::kOk;
  if (!r.ok()) {
    outcome = r.code == robust::Code::kTimeout ? obs::flight::Outcome::kTimeout
                                               : obs::flight::Outcome::kFailed;
  }
  fr.end(flight, outcome, r.code);
  return r;
}

/// Full per-net policy: first attempt under the configured options, then —
/// when the exact path failed for a non-structural reason — one automatic
/// retry on the moments path with a fresh deadline.
NetResult run_net(const SpefNet& net, const BatchOptions& options, NetCache* cache) {
  EngineCounters& ec = EngineCounters::get();
  core::ReportOptions report = options.report;
  const robust::Deadline deadline = robust::Deadline::after_ms(options.net_timeout_ms);
  if (deadline.armed()) report.deadline = &deadline;

  NetResult r = analyze_one(net, report, cache, "analyze");
  if (!r.ok()) {
    r.phase = "analyze";
    if (r.code == robust::Code::kTimeout) {
      r.timed_out = true;
      ec.nets_timed_out.add();
      obs::log::warn("engine.net.timeout",
                     {{"net", net.name},
                      {"phase", "analyze"},
                      {"timeout_ms", options.net_timeout_ms}});
    }
    // Parse/topology defects fail identically on any path; everything else
    // (non-convergence, NaN, timeout, task failure) deserves the cheap
    // O(N) moments path before we give up on the net.
    const robust::Category cat = robust::category_of(r.code);
    const bool retryable = options.retry_on_failure && report.with_exact &&
                           cat != robust::Category::kParse &&
                           cat != robust::Category::kTopology;
    if (retryable) {
      ec.nets_retried.add();
      obs::log::info("engine.net.retry",
                     {{"net", net.name}, {"code", robust::code_name(r.code)}});
      core::ReportOptions moments = report;
      moments.with_exact = false;
      const robust::Deadline retry_deadline = robust::Deadline::after_ms(options.net_timeout_ms);
      moments.deadline = retry_deadline.armed() ? &retry_deadline : nullptr;
      NetResult second = analyze_one(net, moments, cache, "retry");
      second.retried = true;
      second.timed_out = r.timed_out;
      second.analyze_seconds += r.analyze_seconds;  // both attempts cost this net
      if (second.ok()) {
        r = std::move(second);
      } else {
        // Keep the retry's record: it is the failure that made the net
        // unsalvageable.
        second.phase = "retry";
        if (second.code == robust::Code::kTimeout) {
          second.timed_out = true;
          ec.nets_timed_out.add();
          obs::log::warn("engine.net.timeout",
                         {{"net", net.name},
                          {"phase", "retry"},
                          {"timeout_ms", options.net_timeout_ms}});
        }
        r = std::move(second);
      }
    }
  }
  if (!r.ok()) {
    obs::log::warn("engine.net.failed", {{"net", net.name},
                                         {"code", robust::code_name(r.code)},
                                         {"phase", r.phase},
                                         {"error", r.error}});
  }
  if (r.retried) r.degraded = true;
  for (const core::NodeReport& row : r.rows) {
    if (row.degraded) {
      r.degraded = true;
      break;
    }
  }
  if (r.degraded) ec.nets_degraded.add();
  return r;
}

/// The complete per-net task: queue-wait sample, failure-budget
/// cancellation, run_net, completion counters.  Shared by analyze_nets()
/// (as the task body) and analyze_spef_file() (run inline right after the
/// net's section is parsed).
void run_net_slot(const SpefNet& net, NetResult& slot, const BatchOptions& options,
                  NetCache* cache, std::size_t budget, std::atomic<std::size_t>& failed_so_far,
                  std::uint64_t enqueue_ns) {
  EngineCounters& ec = EngineCounters::get();
  if constexpr (obs::kTimingEnabled)
    queue_wait_histogram().observe(static_cast<double>(obs::timestamp_ns() - enqueue_ns) *
                                   1e-9);
  if (budget != 0 && failed_so_far.load(std::memory_order_relaxed) >= budget) {
    slot.name = net.name;
    slot.driver = net.driver;
    slot.loads = net.loads;
    slot.nodes = net.tree.size();
    slot.error = "cancelled: failure budget (" + std::to_string(budget) + ") exhausted";
    slot.code = robust::Code::kCancelled;
    slot.phase = "cancelled";
    ec.nets_cancelled.add();
    ec.nets_failed.add();
    ec.nets_completed.add();
    obs::flight::recorder().record(net.name, "cancelled", obs::flight::Outcome::kCancelled,
                                   robust::Code::kCancelled, 0);
    obs::log::debug("engine.net.cancelled", {{"net", net.name}});
    return;
  }
  slot = run_net(net, options, cache);
  if (!slot.ok()) {
    ec.nets_failed.add();
    failed_so_far.fetch_add(1, std::memory_order_relaxed);
  }
  ec.nets_completed.add();
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12e", v);
  out += buf;
}

}  // namespace

std::string EngineStats::summary() const {
  std::ostringstream os;
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "engine: %zu net(s), %zu analyzed, %zu cache hit(s), %zu failed, %zu thread(s); "
                "contexts %zu built / %zu reused; "
                "analyze %.3fs wall / %.3fs cpu, total %.3fs wall",
                nets, tasks_run, cache_hits, failures, threads, contexts_built, context_reuses,
                analyze.wall_s, analyze.cpu_s, total.wall_s);
  os << buf;
  // Robustness line items only when something actually went sideways.
  if (degraded != 0 || retried != 0 || timed_out != 0 || cancelled != 0) {
    std::snprintf(buf, sizeof(buf),
                  "; robustness: %zu degraded, %zu retried, %zu timed out, %zu cancelled",
                  degraded, retried, timed_out, cancelled);
    os << buf;
  }
  // Per-net latency quantiles from the global histogram (process-lifetime,
  // not per-run — runs are sequential in practice, see the struct comment).
  // Absent when nothing was observed, which is also the -DRCT_OBS=OFF path:
  // scoped timers compile out, so the histogram stays empty.
  if (const obs::Histogram* h = obs::registry().find_histogram("engine.net.analyze_seconds");
      h != nullptr && h->count() > 0) {
    os << "; analyze latency p50 " << format_time(h->quantile(0.50)) << " / p95 "
       << format_time(h->quantile(0.95)) << " / p99 " << format_time(h->quantile(0.99));
  }
  return os.str();
}

BatchResult analyze_nets(std::span<const SpefNet> nets, const BatchOptions& options) {
  const PhaseTimer total;
  BatchResult out;
  out.nets.resize(nets.size());
  out.stats.nets = nets.size();

  NetCache cache(16, options.cache_max_entries);
  if (options.cache_backend != nullptr) cache.set_backend(options.cache_backend);
  NetCache* cache_ptr = options.use_cache ? &cache : nullptr;

  // EngineStats is a per-run delta over the process-global registry: runs
  // are assumed not to interleave (concurrent analyze_nets calls would fold
  // into each other's deltas, while the registry totals stay correct).
  EngineCounters& ec = EngineCounters::get();
  const std::uint64_t base_tasks = ec.tasks_run.value();
  const std::uint64_t base_built = ec.contexts_built.value();
  const std::uint64_t base_reused = ec.context_reuses.value();
  const std::uint64_t base_hits = ec.cache_hits.value();
  ec.nets_total.add(nets.size());

  // More workers than nets is pure thread-create/join overhead.
  const std::size_t jobs =
      options.jobs == 0 ? 0 : std::min(options.jobs, std::max<std::size_t>(nets.size(), 1));

  // Failure budget: once `budget` nets have failed, remaining tasks skip
  // their analysis and record kCancelled instead (cooperative — running
  // nets finish).  0 = unlimited.
  const std::size_t budget =
      options.fail_fast ? std::size_t{1} : options.max_failures;
  std::atomic<std::size_t> failed_so_far{0};

  obs::log::info("engine.batch.start",
                 {{"nets", static_cast<std::uint64_t>(nets.size())},
                  {"jobs", static_cast<std::uint64_t>(jobs)},
                  {"use_cache", options.use_cache},
                  {"net_timeout_ms", options.net_timeout_ms}});

  const PhaseTimer analyze;
  {
    const obs::Span span("engine.batch.analyze", "engine");
    ThreadPool pool(jobs);
    out.stats.threads = pool.thread_count();
    // One task per net; each writes only its own preassigned slot, so the
    // merged order is the input order regardless of scheduling.
    for (std::size_t i = 0; i < nets.size(); ++i) {
      const SpefNet& net = nets[i];
      NetResult& slot = out.nets[i];
      const std::uint64_t enqueue_ns = obs::timestamp_ns();
      pool.submit([&net, &slot, &options, cache_ptr, enqueue_ns, budget, &failed_so_far] {
        run_net_slot(net, slot, options, cache_ptr, budget, failed_so_far, enqueue_ns);
      });
    }
    pool.wait_idle();
  }
  out.stats.analyze = analyze.elapsed();

  const PhaseTimer merge;
  {
    const obs::Span span("engine.batch.merge", "engine");
    out.stats.tasks_run = ec.tasks_run.value() - base_tasks;
    out.stats.contexts_built = ec.contexts_built.value() - base_built;
    out.stats.context_reuses = ec.context_reuses.value() - base_reused;
    out.stats.cache_hits = ec.cache_hits.value() - base_hits;
    // Deterministic robustness tallies straight from the merged results
    // (the global counters feed --metrics-out; these feed the summary).
    for (const NetResult& r : out.nets) {
      if (!r.ok()) ++out.stats.failures;
      if (r.degraded) ++out.stats.degraded;
      if (r.retried) ++out.stats.retried;
      if (r.timed_out) ++out.stats.timed_out;
      if (r.code == robust::Code::kCancelled) ++out.stats.cancelled;
    }
  }
  out.stats.merge = merge.elapsed();
  out.stats.total = total.elapsed();
  if constexpr (obs::kTimingEnabled) {
    analyze_phase_histogram().observe(out.stats.analyze.wall_s);
    merge_phase_histogram().observe(out.stats.merge.wall_s);
  }
  obs::log::info("engine.batch.done",
                 {{"nets", static_cast<std::uint64_t>(out.stats.nets)},
                  {"failures", static_cast<std::uint64_t>(out.stats.failures)},
                  {"cache_hits", static_cast<std::uint64_t>(out.stats.cache_hits)},
                  {"wall_s", out.stats.total.wall_s}});
  // Every analyzed (non-cache-hit) net either built its TreeContext or
  // adopted one from a content-identical sibling — nothing else.
  assert(out.stats.contexts_built + out.stats.context_reuses == out.stats.tasks_run);
  return out;
}

BatchResult analyze_batch(const SpefFile& file, const BatchOptions& options) {
  BatchResult out = analyze_nets(file.nets, options);
  out.design = file.design;
  return out;
}

FileBatchResult analyze_spef_file(const std::string& path, const BatchOptions& options,
                                  const ParseOptions& parse_options) {
  const PhaseTimer total;
  FileBatchResult out;

  MappedFile mapped;
  if (!mapped.open(path))
    throw SpefError(robust::Code::kFileOpen, "cannot open '" + path + "'", {path, 0}, "spef");
  SpefParseOptions spef_opts = parse_options.spef;
  if (spef_opts.path.empty()) spef_opts.path = path;
  const std::string_view text = mapped.view();
  out.parse.bytes = text.size();

  const PhaseTimer index_timer;
  spef::ParsePlan plan = spef::prepare_spef(text, spef_opts);
  out.parse.index_seconds = index_timer.elapsed().wall_s;
  if constexpr (obs::kTimingEnabled)
    obs::registry().histogram("parse.index.seconds").observe(out.parse.index_seconds);

  const std::size_t n = plan.layout.sections.size();
  out.parse.sections = n;
  obs::registry().counter("parse.sections.total").add(n);

  NetCache cache(16, options.cache_max_entries);
  if (options.cache_backend != nullptr) cache.set_backend(options.cache_backend);
  NetCache* cache_ptr = options.use_cache ? &cache : nullptr;

  EngineCounters& ec = EngineCounters::get();
  const std::uint64_t base_tasks = ec.tasks_run.value();
  const std::uint64_t base_built = ec.contexts_built.value();
  const std::uint64_t base_reused = ec.context_reuses.value();
  const std::uint64_t base_hits = ec.cache_hits.value();

  const std::size_t budget = options.fail_fast ? std::size_t{1} : options.max_failures;
  std::atomic<std::size_t> failed_so_far{0};
  const std::size_t jobs =
      options.jobs == 0 ? 0 : std::min(options.jobs, std::max<std::size_t>(n, 1));

  // Same event names as analyze_nets() — log consumers see one batch
  // lifecycle either way; "sections"/"bytes" mark the fused file path.
  obs::log::info("engine.batch.start",
                 {{"sections", static_cast<std::uint64_t>(n)},
                  {"bytes", static_cast<std::uint64_t>(text.size())},
                  {"jobs", static_cast<std::uint64_t>(jobs)},
                  {"use_cache", options.use_cache}});

  // One fused task per *D_NET section: parse it, then immediately analyze
  // the net it produced on the same worker — early nets are being timed
  // while late sections are still being tokenized.  Each task writes only
  // its own preassigned slots, and the compaction below walks them in file
  // order, so the output matches parse + analyze_batch() exactly.
  std::vector<spef::ShardResult> sections(n);
  std::vector<NetResult> slots(n);
  std::vector<unsigned char> has_net(n, 0);
  const PhaseTimer analyze;
  {
    const obs::Span span("engine.batch.analyze", "engine");
    ThreadPool pool(jobs);
    out.batch.stats.threads = pool.thread_count();
    out.parse.threads = pool.thread_count();
    pool.parallel_for(n, [&](std::size_t i) {
      sections[i] = detail::parse_section_task(text, plan, i, spef_opts);
      if (!sections[i].error && !sections[i].nets.empty()) {
        ec.nets_total.add();
        has_net[i] = 1;
        run_net_slot(sections[i].nets.front(), slots[i], options, cache_ptr, budget,
                     failed_so_far, obs::timestamp_ns());
      }
    });
  }
  out.batch.stats.analyze = analyze.elapsed();
  out.parse.sections_seconds = out.batch.stats.analyze.wall_s;

  // File-order merge: rethrows the earliest strict-mode error (discarding
  // any analysis the overlap already did for later sections) and assembles
  // the lenient diagnostics exactly as the serial parser ordered them.
  SpefFile parsed = spef::merge_spef(std::move(plan), std::move(sections), spef_opts);
  out.batch.design = parsed.design;
  out.diagnostics = std::move(parsed.diagnostics);
  out.nets_rejected = parsed.nets_rejected;
  out.parse.nets = parsed.nets.size();
  out.parse.nets_rejected = parsed.nets_rejected;

  const PhaseTimer merge;
  {
    const obs::Span span("engine.batch.merge", "engine");
    out.batch.nets.reserve(parsed.nets.size());
    for (std::size_t i = 0; i < n; ++i)
      if (has_net[i]) out.batch.nets.push_back(std::move(slots[i]));
    out.batch.stats.nets = out.batch.nets.size();
    out.batch.stats.tasks_run = ec.tasks_run.value() - base_tasks;
    out.batch.stats.contexts_built = ec.contexts_built.value() - base_built;
    out.batch.stats.context_reuses = ec.context_reuses.value() - base_reused;
    out.batch.stats.cache_hits = ec.cache_hits.value() - base_hits;
    for (const NetResult& r : out.batch.nets) {
      if (!r.ok()) ++out.batch.stats.failures;
      if (r.degraded) ++out.batch.stats.degraded;
      if (r.retried) ++out.batch.stats.retried;
      if (r.timed_out) ++out.batch.stats.timed_out;
      if (r.code == robust::Code::kCancelled) ++out.batch.stats.cancelled;
    }
  }
  out.batch.stats.merge = merge.elapsed();
  out.batch.stats.total = total.elapsed();
  out.parse.total_seconds = out.batch.stats.total.wall_s;
  obs::log::info("engine.batch.done",
                 {{"nets", static_cast<std::uint64_t>(out.batch.stats.nets)},
                  {"failures", static_cast<std::uint64_t>(out.batch.stats.failures)},
                  {"cache_hits", static_cast<std::uint64_t>(out.batch.stats.cache_hits)},
                  {"wall_s", out.batch.stats.total.wall_s}});
  return out;
}

std::string format_batch(const BatchResult& result) {
  std::ostringstream os;
  if (!result.design.empty())
    os << "design '" << result.design << "': " << result.nets.size() << " net(s)\n";
  for (const NetResult& net : result.nets) {
    os << "\n*D_NET " << net.name << "  (driver " << net.driver << ", " << net.nodes
       << " nodes, " << format_engineering(net.total_capacitance, "F") << " total)\n";
    if (!net.ok()) {
      os << "  error: " << net.error << "\n";
      os << "  record: code=" << robust::code_name(net.code)
         << " category=" << robust::category_name(robust::category_of(net.code))
         << " phase=" << net.phase << " net=" << net.name << "\n";
      continue;
    }
    if (net.retried)
      os << "  note: exact path failed; rows are moment bounds from the automatic retry\n";
    for (const NodeId load : net.loads) {
      const core::NodeReport& r = net.rows[load];
      char buf[256];
      std::snprintf(buf, sizeof(buf), "  load %-12s elmore %-10s bounds [%s, %s]",
                    r.name.c_str(), format_time(r.elmore).c_str(),
                    format_time(r.lower_bound).c_str(), format_time(r.elmore).c_str());
      os << buf;
      if (r.exact_delay) os << "  exact " << format_time(*r.exact_delay);
      if (r.degraded) os << "  degraded";
      os << "\n";
    }
  }
  return os.str();
}

std::string format_batch_json(const BatchResult& result) {
  std::string out;
  out += "{\"design\":";
  append_json_string(out, result.design);
  out += ",\"nets\":[";
  bool first_net = true;
  for (const NetResult& net : result.nets) {
    if (!first_net) out += ',';
    first_net = false;
    out += "{\"name\":";
    append_json_string(out, net.name);
    out += ",\"driver\":";
    append_json_string(out, net.driver);
    out += ",\"nodes\":" + std::to_string(net.nodes);
    out += ",\"total_capacitance_f\":";
    append_json_double(out, net.total_capacitance);
    out += ",\"degraded\":";
    out += net.degraded ? "true" : "false";
    out += ",\"retried\":";
    out += net.retried ? "true" : "false";
    out += ",\"timed_out\":";
    out += net.timed_out ? "true" : "false";
    if (!net.ok()) {
      out += ",\"error\":";
      append_json_string(out, net.error);
      out += ",\"code\":";
      append_json_string(out, std::string(robust::code_name(net.code)));
      out += ",\"category\":";
      append_json_string(out,
                         std::string(robust::category_name(robust::category_of(net.code))));
      out += ",\"phase\":";
      append_json_string(out, net.phase);
      out += ",\"loads\":[]}";
      continue;
    }
    out += ",\"error\":null,\"loads\":[";
    bool first_load = true;
    for (const NodeId load : net.loads) {
      const core::NodeReport& r = net.rows[load];
      if (!first_load) out += ',';
      first_load = false;
      out += "{\"name\":";
      append_json_string(out, r.name);
      out += ",\"elmore_s\":";
      append_json_double(out, r.elmore);
      out += ",\"sigma_s\":";
      append_json_double(out, r.sigma);
      out += ",\"lower_bound_s\":";
      append_json_double(out, r.lower_bound);
      out += ",\"exact_delay_s\":";
      if (r.exact_delay)
        append_json_double(out, *r.exact_delay);
      else
        out += "null";
      out += ",\"degraded\":";
      out += r.degraded ? "true" : "false";
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace rct::engine
