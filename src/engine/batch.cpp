#include "engine/batch.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "engine/net_cache.hpp"
#include "engine/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rctree/units.hpp"

namespace rct::engine {
namespace {

/// Wall + process-CPU stopwatch for one phase.
class PhaseTimer {
 public:
  PhaseTimer()
      : wall_start_(std::chrono::steady_clock::now()), cpu_start_(std::clock()) {}

  [[nodiscard]] PhaseTime elapsed() const {
    PhaseTime t;
    t.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start_)
                   .count();
    t.cpu_s = static_cast<double>(std::clock() - cpu_start_) / CLOCKS_PER_SEC;
    return t;
  }

 private:
  std::chrono::steady_clock::time_point wall_start_;
  std::clock_t cpu_start_;
};

/// Cached references into the global obs registry.  These counters ARE the
/// engine's bookkeeping: EngineStats is computed as per-run deltas over
/// them (see run_batch), so the stderr summary, the `--metrics-out`
/// snapshot and the `--progress` meter all read one source of truth.
struct EngineCounters {
  obs::Counter& nets_total = obs::registry().counter("engine.nets.total");
  obs::Counter& nets_completed = obs::registry().counter("engine.nets.completed");
  obs::Counter& nets_failed = obs::registry().counter("engine.nets.failed");
  obs::Counter& tasks_run = obs::registry().counter("engine.tasks.run");
  obs::Counter& contexts_built = obs::registry().counter("engine.context.built");
  obs::Counter& context_reuses = obs::registry().counter("engine.context.reused");
  /// Incremented by NetCache itself (engine.cache.hits); read for deltas.
  obs::Counter& cache_hits = obs::registry().counter("engine.cache.hits");

  static EngineCounters& get() {
    static EngineCounters instance;
    return instance;
  }
};

obs::Histogram& net_analyze_histogram() {
  static obs::Histogram& h = obs::registry().histogram("engine.net.analyze_seconds");
  return h;
}
obs::Histogram& queue_wait_histogram() {
  static obs::Histogram& h = obs::registry().histogram("engine.task.queue_wait_seconds");
  return h;
}
obs::Histogram& analyze_phase_histogram() {
  static obs::Histogram& h = obs::registry().histogram("engine.batch.analyze_seconds");
  return h;
}
obs::Histogram& merge_phase_histogram() {
  static obs::Histogram& h = obs::registry().histogram("engine.batch.merge_seconds");
  return h;
}

/// Analyzes one net; never throws (failures land in result.error).
NetResult analyze_one(const SpefNet& net, const BatchOptions& options, NetCache* cache) {
  const obs::Span span("engine.net.analyze", "engine", net.name);
  const obs::ScopedTimer timer(net_analyze_histogram());
  EngineCounters& ec = EngineCounters::get();
  NetResult r;
  r.name = net.name;
  r.driver = net.driver;
  r.loads = net.loads;
  r.nodes = net.tree.size();
  try {
    if (net.tree.empty())
      throw std::invalid_argument("net '" + net.name + "' has an empty RC tree");
    r.total_capacitance = net.tree.total_capacitance();
    if (cache != nullptr) {
      const NetKey key = NetKey::of(net.tree, options.report);
      if (auto hit = cache->lookup(key, net.tree)) {
        r.rows = std::move(*hit);
        r.from_cache = true;
        return r;
      }
      ec.tasks_run.add();
      // Share derived arrays by content: a content-identical net analyzed
      // under different options (or concurrently) reuses the same context.
      // The borrowed donor tree is a batch net, which outlives the cache.
      const NetKey ckey = NetKey::content_of(net.tree);
      std::shared_ptr<const analysis::TreeContext> ctx = cache->lookup_context(ckey);
      if (ctx != nullptr) {
        ec.context_reuses.add();
      } else {
        auto built = std::make_shared<const analysis::TreeContext>(net.tree);
        ctx = cache->insert_context(ckey, built);
        if (ctx == built)
          ec.contexts_built.add();
        else
          ec.context_reuses.add();  // lost the insert race
      }
      r.rows = core::build_report(*ctx, options.report);
      // A donor context computed the rows under its own tree's names.
      if (&ctx->tree() != &net.tree) rebind_report_names(r.rows, net.tree);
      cache->insert(key, r.rows);
    } else {
      ec.tasks_run.add();
      ec.contexts_built.add();
      const analysis::TreeContext ctx(net.tree);
      r.rows = core::build_report(ctx, options.report);
    }
  } catch (const std::exception& e) {
    r.rows.clear();
    r.error = e.what();
  }
  return r;
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12e", v);
  out += buf;
}

}  // namespace

std::string EngineStats::summary() const {
  std::ostringstream os;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "engine: %zu net(s), %zu analyzed, %zu cache hit(s), %zu failed, %zu thread(s); "
                "contexts %zu built / %zu reused; "
                "analyze %.3fs wall / %.3fs cpu, total %.3fs wall",
                nets, tasks_run, cache_hits, failures, threads, contexts_built, context_reuses,
                analyze.wall_s, analyze.cpu_s, total.wall_s);
  os << buf;
  return os.str();
}

BatchResult analyze_nets(std::span<const SpefNet> nets, const BatchOptions& options) {
  const PhaseTimer total;
  BatchResult out;
  out.nets.resize(nets.size());
  out.stats.nets = nets.size();

  NetCache cache;
  NetCache* cache_ptr = options.use_cache ? &cache : nullptr;

  // EngineStats is a per-run delta over the process-global registry: runs
  // are assumed not to interleave (concurrent analyze_nets calls would fold
  // into each other's deltas, while the registry totals stay correct).
  EngineCounters& ec = EngineCounters::get();
  const std::uint64_t base_tasks = ec.tasks_run.value();
  const std::uint64_t base_built = ec.contexts_built.value();
  const std::uint64_t base_reused = ec.context_reuses.value();
  const std::uint64_t base_hits = ec.cache_hits.value();
  ec.nets_total.add(nets.size());

  // More workers than nets is pure thread-create/join overhead.
  const std::size_t jobs =
      options.jobs == 0 ? 0 : std::min(options.jobs, std::max<std::size_t>(nets.size(), 1));

  const PhaseTimer analyze;
  {
    const obs::Span span("engine.batch.analyze", "engine");
    ThreadPool pool(jobs);
    out.stats.threads = pool.thread_count();
    // One task per net; each writes only its own preassigned slot, so the
    // merged order is the input order regardless of scheduling.
    for (std::size_t i = 0; i < nets.size(); ++i) {
      const SpefNet& net = nets[i];
      NetResult& slot = out.nets[i];
      const std::uint64_t enqueue_ns = obs::timestamp_ns();
      pool.submit([&net, &slot, &options, cache_ptr, &ec, enqueue_ns] {
        if constexpr (obs::kTimingEnabled)
          queue_wait_histogram().observe(
              static_cast<double>(obs::timestamp_ns() - enqueue_ns) * 1e-9);
        slot = analyze_one(net, options, cache_ptr);
        if (!slot.ok()) ec.nets_failed.add();
        ec.nets_completed.add();
      });
    }
    pool.wait_idle();
  }
  out.stats.analyze = analyze.elapsed();

  const PhaseTimer merge;
  {
    const obs::Span span("engine.batch.merge", "engine");
    out.stats.tasks_run = ec.tasks_run.value() - base_tasks;
    out.stats.contexts_built = ec.contexts_built.value() - base_built;
    out.stats.context_reuses = ec.context_reuses.value() - base_reused;
    out.stats.cache_hits = ec.cache_hits.value() - base_hits;
    for (const NetResult& r : out.nets)
      if (!r.ok()) ++out.stats.failures;
  }
  out.stats.merge = merge.elapsed();
  out.stats.total = total.elapsed();
  if constexpr (obs::kTimingEnabled) {
    analyze_phase_histogram().observe(out.stats.analyze.wall_s);
    merge_phase_histogram().observe(out.stats.merge.wall_s);
  }
  // Every analyzed (non-cache-hit) net either built its TreeContext or
  // adopted one from a content-identical sibling — nothing else.
  assert(out.stats.contexts_built + out.stats.context_reuses == out.stats.tasks_run);
  return out;
}

BatchResult analyze_batch(const SpefFile& file, const BatchOptions& options) {
  BatchResult out = analyze_nets(file.nets, options);
  out.design = file.design;
  return out;
}

std::string format_batch(const BatchResult& result) {
  std::ostringstream os;
  if (!result.design.empty())
    os << "design '" << result.design << "': " << result.nets.size() << " net(s)\n";
  for (const NetResult& net : result.nets) {
    os << "\n*D_NET " << net.name << "  (driver " << net.driver << ", " << net.nodes
       << " nodes, " << format_engineering(net.total_capacitance, "F") << " total)\n";
    if (!net.ok()) {
      os << "  error: " << net.error << "\n";
      continue;
    }
    for (const NodeId load : net.loads) {
      const core::NodeReport& r = net.rows[load];
      char buf[256];
      std::snprintf(buf, sizeof(buf), "  load %-12s elmore %-10s bounds [%s, %s]",
                    r.name.c_str(), format_time(r.elmore).c_str(),
                    format_time(r.lower_bound).c_str(), format_time(r.elmore).c_str());
      os << buf;
      if (r.exact_delay) os << "  exact " << format_time(*r.exact_delay);
      os << "\n";
    }
  }
  return os.str();
}

std::string format_batch_json(const BatchResult& result) {
  std::string out;
  out += "{\"design\":";
  append_json_string(out, result.design);
  out += ",\"nets\":[";
  bool first_net = true;
  for (const NetResult& net : result.nets) {
    if (!first_net) out += ',';
    first_net = false;
    out += "{\"name\":";
    append_json_string(out, net.name);
    out += ",\"driver\":";
    append_json_string(out, net.driver);
    out += ",\"nodes\":" + std::to_string(net.nodes);
    out += ",\"total_capacitance_f\":";
    append_json_double(out, net.total_capacitance);
    if (!net.ok()) {
      out += ",\"error\":";
      append_json_string(out, net.error);
      out += ",\"loads\":[]}";
      continue;
    }
    out += ",\"error\":null,\"loads\":[";
    bool first_load = true;
    for (const NodeId load : net.loads) {
      const core::NodeReport& r = net.rows[load];
      if (!first_load) out += ',';
      first_load = false;
      out += "{\"name\":";
      append_json_string(out, r.name);
      out += ",\"elmore_s\":";
      append_json_double(out, r.elmore);
      out += ",\"sigma_s\":";
      append_json_double(out, r.sigma);
      out += ",\"lower_bound_s\":";
      append_json_double(out, r.lower_bound);
      out += ",\"exact_delay_s\":";
      if (r.exact_delay)
        append_json_double(out, *r.exact_delay);
      else
        out += "null";
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace rct::engine
