#include "engine/batch.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "engine/net_cache.hpp"
#include "engine/thread_pool.hpp"
#include "rctree/units.hpp"

namespace rct::engine {
namespace {

/// Wall + process-CPU stopwatch for one phase.
class PhaseTimer {
 public:
  PhaseTimer()
      : wall_start_(std::chrono::steady_clock::now()), cpu_start_(std::clock()) {}

  [[nodiscard]] PhaseTime elapsed() const {
    PhaseTime t;
    t.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start_)
                   .count();
    t.cpu_s = static_cast<double>(std::clock() - cpu_start_) / CLOCKS_PER_SEC;
    return t;
  }

 private:
  std::chrono::steady_clock::time_point wall_start_;
  std::clock_t cpu_start_;
};

/// Per-net counters shared across the pool's tasks.
struct TaskCounters {
  std::atomic<std::size_t> tasks_run{0};
  std::atomic<std::size_t> contexts_built{0};
  std::atomic<std::size_t> context_reuses{0};
};

/// Analyzes one net; never throws (failures land in result.error).
NetResult analyze_one(const SpefNet& net, const BatchOptions& options, NetCache* cache,
                      TaskCounters& counters) {
  NetResult r;
  r.name = net.name;
  r.driver = net.driver;
  r.loads = net.loads;
  r.nodes = net.tree.size();
  try {
    if (net.tree.empty())
      throw std::invalid_argument("net '" + net.name + "' has an empty RC tree");
    r.total_capacitance = net.tree.total_capacitance();
    if (cache != nullptr) {
      const NetKey key = NetKey::of(net.tree, options.report);
      if (auto hit = cache->lookup(key, net.tree)) {
        r.rows = std::move(*hit);
        r.from_cache = true;
        return r;
      }
      counters.tasks_run.fetch_add(1);
      // Share derived arrays by content: a content-identical net analyzed
      // under different options (or concurrently) reuses the same context.
      // The borrowed donor tree is a batch net, which outlives the cache.
      const NetKey ckey = NetKey::content_of(net.tree);
      std::shared_ptr<const analysis::TreeContext> ctx = cache->lookup_context(ckey);
      if (ctx != nullptr) {
        counters.context_reuses.fetch_add(1);
      } else {
        auto built = std::make_shared<const analysis::TreeContext>(net.tree);
        ctx = cache->insert_context(ckey, built);
        if (ctx == built)
          counters.contexts_built.fetch_add(1);
        else
          counters.context_reuses.fetch_add(1);  // lost the insert race
      }
      r.rows = core::build_report(*ctx, options.report);
      // A donor context computed the rows under its own tree's names.
      if (&ctx->tree() != &net.tree) rebind_report_names(r.rows, net.tree);
      cache->insert(key, r.rows);
    } else {
      counters.tasks_run.fetch_add(1);
      counters.contexts_built.fetch_add(1);
      const analysis::TreeContext ctx(net.tree);
      r.rows = core::build_report(ctx, options.report);
    }
  } catch (const std::exception& e) {
    r.rows.clear();
    r.error = e.what();
  }
  return r;
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12e", v);
  out += buf;
}

}  // namespace

std::string EngineStats::summary() const {
  std::ostringstream os;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "engine: %zu net(s), %zu analyzed, %zu cache hit(s), %zu failed, %zu thread(s); "
                "contexts %zu built / %zu reused; "
                "analyze %.3fs wall / %.3fs cpu, total %.3fs wall",
                nets, tasks_run, cache_hits, failures, threads, contexts_built, context_reuses,
                analyze.wall_s, analyze.cpu_s, total.wall_s);
  os << buf;
  return os.str();
}

BatchResult analyze_nets(std::span<const SpefNet> nets, const BatchOptions& options) {
  const PhaseTimer total;
  BatchResult out;
  out.nets.resize(nets.size());
  out.stats.nets = nets.size();

  NetCache cache;
  NetCache* cache_ptr = options.use_cache ? &cache : nullptr;
  TaskCounters counters;

  // More workers than nets is pure thread-create/join overhead.
  const std::size_t jobs =
      options.jobs == 0 ? 0 : std::min(options.jobs, std::max<std::size_t>(nets.size(), 1));

  const PhaseTimer analyze;
  {
    ThreadPool pool(jobs);
    out.stats.threads = pool.thread_count();
    // One task per net; each writes only its own preassigned slot, so the
    // merged order is the input order regardless of scheduling.
    for (std::size_t i = 0; i < nets.size(); ++i) {
      const SpefNet& net = nets[i];
      NetResult& slot = out.nets[i];
      pool.submit([&net, &slot, &options, cache_ptr, &counters] {
        slot = analyze_one(net, options, cache_ptr, counters);
      });
    }
    pool.wait_idle();
  }
  out.stats.analyze = analyze.elapsed();

  const PhaseTimer merge;
  out.stats.tasks_run = counters.tasks_run.load();
  out.stats.contexts_built = counters.contexts_built.load();
  out.stats.context_reuses = counters.context_reuses.load();
  out.stats.cache_hits = cache.hits();
  for (const NetResult& r : out.nets)
    if (!r.ok()) ++out.stats.failures;
  out.stats.merge = merge.elapsed();
  out.stats.total = total.elapsed();
  return out;
}

BatchResult analyze_batch(const SpefFile& file, const BatchOptions& options) {
  BatchResult out = analyze_nets(file.nets, options);
  out.design = file.design;
  return out;
}

std::string format_batch(const BatchResult& result) {
  std::ostringstream os;
  if (!result.design.empty())
    os << "design '" << result.design << "': " << result.nets.size() << " net(s)\n";
  for (const NetResult& net : result.nets) {
    os << "\n*D_NET " << net.name << "  (driver " << net.driver << ", " << net.nodes
       << " nodes, " << format_engineering(net.total_capacitance, "F") << " total)\n";
    if (!net.ok()) {
      os << "  error: " << net.error << "\n";
      continue;
    }
    for (const NodeId load : net.loads) {
      const core::NodeReport& r = net.rows[load];
      char buf[256];
      std::snprintf(buf, sizeof(buf), "  load %-12s elmore %-10s bounds [%s, %s]",
                    r.name.c_str(), format_time(r.elmore).c_str(),
                    format_time(r.lower_bound).c_str(), format_time(r.elmore).c_str());
      os << buf;
      if (r.exact_delay) os << "  exact " << format_time(*r.exact_delay);
      os << "\n";
    }
  }
  return os.str();
}

std::string format_batch_json(const BatchResult& result) {
  std::string out;
  out += "{\"design\":";
  append_json_string(out, result.design);
  out += ",\"nets\":[";
  bool first_net = true;
  for (const NetResult& net : result.nets) {
    if (!first_net) out += ',';
    first_net = false;
    out += "{\"name\":";
    append_json_string(out, net.name);
    out += ",\"driver\":";
    append_json_string(out, net.driver);
    out += ",\"nodes\":" + std::to_string(net.nodes);
    out += ",\"total_capacitance_f\":";
    append_json_double(out, net.total_capacitance);
    if (!net.ok()) {
      out += ",\"error\":";
      append_json_string(out, net.error);
      out += ",\"loads\":[]}";
      continue;
    }
    out += ",\"error\":null,\"loads\":[";
    bool first_load = true;
    for (const NodeId load : net.loads) {
      const core::NodeReport& r = net.rows[load];
      if (!first_load) out += ',';
      first_load = false;
      out += "{\"name\":";
      append_json_string(out, r.name);
      out += ",\"elmore_s\":";
      append_json_double(out, r.elmore);
      out += ",\"sigma_s\":";
      append_json_double(out, r.sigma);
      out += ",\"lower_bound_s\":";
      append_json_double(out, r.lower_bound);
      out += ",\"exact_delay_s\":";
      if (r.exact_delay)
        append_json_double(out, *r.exact_delay);
      else
        out += "null";
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace rct::engine
