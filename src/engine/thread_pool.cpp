#include "engine/thread_pool.hpp"

#include <exception>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rct::engine {
namespace {

// Pool observability: one relaxed atomic add per executed/stolen task, an
// idle-time histogram around the sleep path (cold), and a per-task span
// that records only while tracing is armed.
obs::Counter& tasks_run_counter() {
  static obs::Counter& c = obs::registry().counter("pool.tasks.run");
  return c;
}
obs::Counter& steal_counter() {
  static obs::Counter& c = obs::registry().counter("pool.tasks.stolen");
  return c;
}
obs::Histogram& idle_histogram() {
  static obs::Histogram& h = obs::registry().histogram("pool.worker.idle_seconds");
  return h;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t slot;
  {
    // Count the task before publishing it so a racing claimer can never see
    // a task the counters do not yet know about.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    ++unfinished_;
    ++unclaimed_;
    slot = next_++ % workers_.size();
  }
  {
    std::lock_guard<std::mutex> lock(workers_[slot]->mutex);
    workers_[slot]->queue.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

bool ThreadPool::try_run_one(std::size_t home) {
  std::function<void()> task;
  const std::size_t n = workers_.size();
  for (std::size_t k = 0; k < n; ++k) {
    Worker& w = *workers_[(home + k) % n];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (w.queue.empty()) continue;
    if (k == 0) {  // own deque: newest first (cache-hot)
      task = std::move(w.queue.back());
      w.queue.pop_back();
    } else {  // steal: oldest first
      task = std::move(w.queue.front());
      w.queue.pop_front();
      steal_counter().add();
    }
    break;
  }
  if (!task) return false;
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    --unclaimed_;
  }
  tasks_run_counter().add();
  try {
    const obs::Span span("pool.task.run", "pool");
    task();
  } catch (const std::exception& e) {
    // Tasks own their exceptions; never let one kill the pool.  The engine
    // wraps analysis in its own catch, so anything landing here escaped a
    // task's OWN handling — worth a log line, since it used to vanish.
    obs::log::warn("pool.task.exception", {{"what", e.what()}});
  } catch (...) {
    obs::log::warn("pool.task.exception", {{"what", "non-std exception"}});
  }
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    if (--unfinished_ == 0) all_done_.notify_all();
  }
  return true;
}

void ThreadPool::worker_loop(std::size_t home) {
  for (;;) {
    while (try_run_one(home)) {
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (unclaimed_ > 0) {
      // A task was counted but not yet published to its deque; let the
      // submitter finish the push instead of spinning on the lock.
      lock.unlock();
      std::this_thread::yield();
      continue;
    }
    if (stop_) return;
    {
      const obs::ScopedTimer idle(idle_histogram());
      work_ready_.wait(lock, [this] { return stop_ || unclaimed_ > 0; });
    }
    if (stop_ && unclaimed_ == 0) return;
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(sleep_mutex_);
  all_done_.wait(lock, [this] { return unfinished_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i)
    submit([&fn, i] { fn(i); });
  wait_idle();
}

}  // namespace rct::engine
