#pragma once
// Parallel SPEF ingestion: the decomposed parse pipeline (rctree/
// spef_pipeline.hpp) fanned across the engine's work-stealing ThreadPool.
//
// prepare_spef() indexes the mapped bytes and replays the file-scope lines
// serially (units, *DESIGN, header keywords); the *D_NET sections it found
// are independent, so parse_spef_parallel() parses them concurrently — one
// task per section, each against its own unit snapshot with a per-thread
// arena for scratch — and writes every result into a preassigned slot.
// merge_spef() then stitches the slots back together in file order, so the
// returned SpefFile (nets, lenient diagnostics, strict-mode error choice)
// is byte-identical to the serial parse_spef() for any thread count.
//
// Observability: `parse.bytes` (counter), `parse.sections.total` /
// `parse.sections.completed` (counters; the CLI --progress meter's parse
// phase), `parse.index.seconds` and `parse.nets.seconds` (histograms), and
// one flight-recorder "parse" event per section.

#include <cstddef>
#include <string>
#include <string_view>

#include "rctree/spef.hpp"
#include "rctree/spef_pipeline.hpp"

namespace rct::engine {

/// Knobs for one parallel parse.
struct ParseOptions {
  /// Parser threads; 0 = hardware concurrency.  Capped at the section
  /// count; 1 parses on the calling thread with no pool.
  std::size_t jobs = 0;
  SpefParseOptions spef;  ///< strict/lenient and the diagnostics path
};

/// What the parse did and where the time went.  All wall-clock (this is an
/// I/O-shaped phase; see BENCH_parse.json for CPU-time speedups).
struct ParseStats {
  std::size_t bytes = 0;
  std::size_t sections = 0;       ///< *D_NET sections found by the index pass
  std::size_t nets = 0;           ///< nets that survived parsing
  std::size_t nets_rejected = 0;  ///< lenient mode: sections skipped
  std::size_t threads = 0;        ///< pool size used (1 = serial)
  double index_seconds = 0.0;     ///< index + file-scope pass
  double sections_seconds = 0.0;  ///< section fan-out (parallel wall)
  double total_seconds = 0.0;     ///< map + index + sections + merge

  /// One-line human-readable summary with derived throughput (MB/s and
  /// nets/s).  Contains timings — stderr only, never stdout.
  [[nodiscard]] std::string summary() const;
};

/// A parsed file plus its parse accounting.
struct ParsedSpef {
  SpefFile file;
  ParseStats stats;
};

/// Parses SPEF text with the section fan-out described above.  Throws
/// SpefError exactly where parse_spef() would (strict mode picks the error
/// of the earliest-in-file chunk, not the first to finish).
[[nodiscard]] ParsedSpef parse_spef_parallel(std::string_view text,
                                             const ParseOptions& options = {});

/// Maps `path` (mmap with a heap fallback for pipes/specials) and parses
/// it.  Throws SpefError(kFileOpen) when the file cannot be opened.
[[nodiscard]] ParsedSpef parse_spef_parallel_file(const std::string& path,
                                                  const ParseOptions& options = {});

namespace detail {

/// One section parse with its observability shell (per-thread arena reused
/// across calls, completion counter, parse.nets.seconds sample, flight
/// recorder "parse" event).  Safe to call concurrently for distinct
/// sections; analyze_spef_file() runs it inline inside its per-net tasks.
[[nodiscard]] spef::ShardResult parse_section_task(std::string_view text,
                                                  const spef::ParsePlan& plan,
                                                  std::size_t index,
                                                  const SpefParseOptions& options);

}  // namespace detail

}  // namespace rct::engine
