#pragma once
// Parallel batch timing engine.
//
// Real extracted designs carry thousands of independent nets; bound reports
// for them are embarrassingly parallel.  analyze_batch()/analyze_nets() fan
// the nets of a SpefFile out across a ThreadPool — one task per net, each
// producing the existing core::build_report rows — consult a
// content-addressed NetCache so repeated nets (clock meshes, stamped
// macros) skip recomputation, and merge results deterministically in input
// order: the output is bit-identical for any thread count.
//
// Failures are per-net, never process-fatal: a net that throws gets a
// structured failure record (typed robust::Code, phase, message) and every
// other net still completes.  Nets whose exact path fails get one automatic
// retry on the cheap moments path; rows produced that way are flagged
// `degraded`.  A cooperative per-net deadline (net_timeout_ms) and a
// failure budget (max_failures / fail_fast) bound runaway batches.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "engine/parallel_parse.hpp"
#include "rctree/spef.hpp"
#include "robust/error.hpp"

namespace rct::engine {

class CacheBackend;  // net_cache.hpp

/// Knobs for one batch run.
struct BatchOptions {
  std::size_t jobs = 0;        ///< worker threads; 0 = hardware concurrency
  core::ReportOptions report;  ///< shared per-net report options
  bool use_cache = true;       ///< skip recomputation of content-identical nets
  /// LRU cap on the in-memory NetCache (rows and contexts each); 0 keeps
  /// the pre-cap unbounded behavior (stdout stays byte-identical).  Maps to
  /// the CLI's --cache-max-entries.
  std::size_t cache_max_entries = 0;
  /// Optional second-level persistent store consulted on cache misses and
  /// written through on inserts (e.g. server::DiskStore via `--store DIR`);
  /// nullptr = memory only.  Ignored when use_cache is false.
  std::shared_ptr<CacheBackend> cache_backend;
  /// Cooperative per-net deadline in milliseconds; 0 disables.  Checked at
  /// analysis checkpoints (threads are never killed), so overshoot is
  /// bounded by the longest uninterruptible step, not by luck.
  std::uint64_t net_timeout_ms = 0;
  /// Stop scheduling new nets once this many have failed; 0 = unlimited.
  /// Skipped nets get a kCancelled record.  WHICH nets get cancelled is
  /// scheduling-dependent, so — unlike the default path — stdout is not
  /// byte-identical across --jobs values once the budget trips.
  std::size_t max_failures = 0;
  /// Shorthand for max_failures = 1: cancel everything after the first
  /// failure.
  bool fail_fast = false;
  /// One automatic retry of a failed exact-path net on the moments path
  /// (with_exact = false, fresh deadline).  Parse/topology failures are
  /// not retried — they would fail identically.
  bool retry_on_failure = true;
};

/// Outcome for one input net.
struct NetResult {
  std::string name;
  std::string driver;
  std::vector<NodeId> loads;
  std::size_t nodes = 0;
  double total_capacitance = 0.0;       ///< farads
  std::vector<core::NodeReport> rows;   ///< empty when error is set
  std::string error;                    ///< per-net failure message, if any
  /// Typed failure code (kNone when ok); category via robust::category_of.
  robust::Code code = robust::Code::kNone;
  /// Where the final failure happened: "analyze", "retry" or "cancelled".
  /// Empty when ok.
  std::string phase;
  bool retried = false;    ///< rows (or final failure) came from the moments retry
  bool timed_out = false;  ///< a deadline expired (even if the retry then succeeded)
  /// Wall time spent analyzing this net, summed across attempts (0 for
  /// cancelled nets).  Feeds the CLI's `--top-slow` table; deliberately
  /// absent from the deterministic stdout renderers.
  double analyze_seconds = 0.0;
  /// Any row degraded (exact result discarded, see core::NodeReport), or
  /// the whole net fell back to the moments retry.
  bool degraded = false;
  bool from_cache = false;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Wall and process-CPU time of one engine phase, seconds.
struct PhaseTime {
  double wall_s = 0.0;
  double cpu_s = 0.0;
};

/// Observability: what the engine did and where the time went.  The
/// counter fields are a per-run view over the global obs::MetricsRegistry
/// (captured as before/after deltas of the `engine.*` counters), so this
/// summary, `--metrics-out` snapshots and the `--progress` meter all read
/// one source of truth.  Concurrent analyze_nets() runs in one process
/// would fold into each other's deltas; run batches sequentially when the
/// per-run stats matter.
struct EngineStats {
  std::size_t nets = 0;       ///< input nets
  std::size_t tasks_run = 0;  ///< analyze attempts (cache misses; retries count)
  std::size_t cache_hits = 0;
  std::size_t failures = 0;   ///< nets with a failure record (cancelled included)
  std::size_t degraded = 0;   ///< nets with any degraded row or a moments retry
  std::size_t retried = 0;    ///< nets that took the automatic moments retry
  std::size_t timed_out = 0;  ///< nets that hit the cooperative deadline
  std::size_t cancelled = 0;  ///< nets skipped after the failure budget tripped
  std::size_t threads = 0;    ///< pool size used
  /// Derived-array (TreeContext) accounting: every analyzed net either
  /// built its context or adopted one from a content-identical net, so
  /// contexts_built + context_reuses == tasks_run.
  std::size_t contexts_built = 0;
  std::size_t context_reuses = 0;
  PhaseTime analyze;        ///< fan-out + per-net analysis
  PhaseTime merge;          ///< in-order result collection
  PhaseTime total;

  /// One-line human-readable summary (for stderr; contains timings, so it is
  /// intentionally kept out of the deterministic stdout renderers below).
  [[nodiscard]] std::string summary() const;
};

/// A finished batch: one NetResult per input net, in input order.
struct BatchResult {
  std::string design;  ///< from the SPEF header; empty for raw net spans
  std::vector<NetResult> nets;
  EngineStats stats;
};

/// Analyzes a span of nets across `options.jobs` threads.
[[nodiscard]] BatchResult analyze_nets(std::span<const SpefNet> nets,
                                       const BatchOptions& options = {});

/// Analyzes every net of a parsed SPEF file.
[[nodiscard]] BatchResult analyze_batch(const SpefFile& file, const BatchOptions& options = {});

/// A batch run that parsed its own input: the BatchResult plus the
/// file-level parse outcome (lenient diagnostics in file order, rejected
/// section count, parse accounting).
struct FileBatchResult {
  BatchResult batch;
  std::vector<robust::Diagnostic> diagnostics;
  std::size_t nets_rejected = 0;
  ParseStats parse;
};

/// Maps `path` and overlaps parsing with analysis on one thread pool: each
/// *D_NET section is one task that parses the section and immediately
/// analyzes the net it produced, so early nets are being timed while late
/// sections are still being tokenized — there is no parse/analyze barrier.
/// Results land in per-section slots and are merged in file order, so
/// nets, rows, diagnostics and the strict-mode error choice are identical
/// to parse + analyze_batch() run back to back, for any thread count.
/// `parse_options.jobs` is ignored (the shared pool uses `options.jobs`);
/// its SpefParseOptions select strict/lenient.  Throws SpefError exactly
/// where parse_spef_file() would.
[[nodiscard]] FileBatchResult analyze_spef_file(const std::string& path,
                                                const BatchOptions& options = {},
                                                const ParseOptions& parse_options = {});

/// Plain-text renderer used by `rct batch`.  Deterministic: no timings,
/// thread counts or cache provenance, so output is byte-identical for any
/// --jobs value (except under max_failures/fail_fast, where the set of
/// cancelled nets is scheduling-dependent).
[[nodiscard]] std::string format_batch(const BatchResult& result);

/// JSON renderer (schema documented in README.md), same determinism
/// guarantee as format_batch().
[[nodiscard]] std::string format_batch_json(const BatchResult& result);

}  // namespace rct::engine
