#include "engine/net_cache.hpp"

#include <bit>
#include <cstdint>
#include <memory>

#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace rct::engine {
namespace {

// Registry mirrors of the per-instance counters below: one source of truth
// for EngineStats, `--metrics-out` snapshots and the `--progress` meter.
// Function-local statics so each hot path pays one relaxed atomic add, not
// a name lookup.
obs::Counter& cache_hit_counter() {
  static obs::Counter& c = obs::registry().counter("engine.cache.hits");
  return c;
}
obs::Counter& cache_miss_counter() {
  static obs::Counter& c = obs::registry().counter("engine.cache.misses");
  return c;
}
obs::Counter& cache_insert_counter() {
  static obs::Counter& c = obs::registry().counter("engine.cache.inserts");
  return c;
}
obs::Counter& context_hit_counter() {
  static obs::Counter& c = obs::registry().counter("engine.cache.context_hits");
  return c;
}

std::uint64_t fnv1a(const std::vector<std::uint64_t>& words) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const std::uint64_t w : words) {
    for (std::size_t byte = 0; byte < 8; ++byte) {
      h ^= (w >> (8 * byte)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

void append_content_words(NetKey& key, const RCTree& tree) {
  for (NodeId i = 0; i < tree.size(); ++i) {
    key.words.push_back(tree.parent(i));  // kSource is its own sentinel value
    key.words.push_back(std::bit_cast<std::uint64_t>(tree.resistance(i)));
    key.words.push_back(std::bit_cast<std::uint64_t>(tree.capacitance(i)));
  }
}

}  // namespace

void rebind_report_names(std::vector<core::NodeReport>& rows, const RCTree& tree) {
  if (rows.size() == tree.size()) {
    for (NodeId i = 0; i < tree.size(); ++i) rows[i].name = tree.name(i);
    return;
  }
  const std::vector<NodeId> leaves = tree.leaves();
  if (rows.size() != leaves.size()) return;  // defensive: unexpected shape, keep stored names
  for (std::size_t i = 0; i < leaves.size(); ++i) rows[i].name = tree.name(leaves[i]);
}

NetKey NetKey::of(const RCTree& tree, const core::ReportOptions& options) {
  NetKey key;
  key.words.reserve(3 + 3 * tree.size());
  key.words.push_back(tree.size());
  // Options enter as their *effective* values: with_exact only matters as
  // applied after the node-count cutoff.
  const bool exact = options.with_exact && tree.size() <= options.exact_node_limit;
  key.words.push_back((exact ? 1ULL : 0ULL) | (options.leaves_only ? 2ULL : 0ULL));
  key.words.push_back(std::bit_cast<std::uint64_t>(options.fraction));
  append_content_words(key, tree);
  key.hash = fnv1a(key.words);
  return key;
}

NetKey NetKey::content_of(const RCTree& tree) {
  NetKey key;
  key.words.reserve(1 + 3 * tree.size());
  key.words.push_back(tree.size());
  append_content_words(key, tree);
  key.hash = fnv1a(key.words);
  return key;
}

NetCache::NetCache(std::size_t shards) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

std::optional<std::vector<core::NodeReport>> NetCache::lookup(const NetKey& key,
                                                              const RCTree& tree) {
  Shard& shard = shard_for(key.hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto chain = shard.map.find(key.hash);
  if (chain != shard.map.end()) {
    for (const Entry& e : chain->second) {
      if (e.key == key) {
        hits_.fetch_add(1);
        cache_hit_counter().add();
        std::vector<core::NodeReport> rows = e.rows;  // copy under the shard lock
        rebind_report_names(rows, tree);
        return rows;
      }
    }
  }
  misses_.fetch_add(1);
  cache_miss_counter().add();
  return std::nullopt;
}

void NetCache::insert(const NetKey& key, std::vector<core::NodeReport> rows) {
  Shard& shard = shard_for(key.hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  std::vector<Entry>& chain = shard.map[key.hash];
  for (const Entry& e : chain)
    if (e.key == key) return;  // first writer wins
  chain.push_back(Entry{key, std::move(rows)});
  cache_insert_counter().add();
}

std::shared_ptr<const analysis::TreeContext> NetCache::lookup_context(const NetKey& key) {
  Shard& shard = shard_for(key.hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto chain = shard.ctx_map.find(key.hash);
  if (chain != shard.ctx_map.end()) {
    for (const CtxEntry& e : chain->second) {
      if (e.key == key) {
        ctx_hits_.fetch_add(1);
        context_hit_counter().add();
        return e.context;
      }
    }
  }
  return nullptr;
}

std::shared_ptr<const analysis::TreeContext> NetCache::insert_context(
    const NetKey& key, std::shared_ptr<const analysis::TreeContext> context) {
  Shard& shard = shard_for(key.hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  std::vector<CtxEntry>& chain = shard.ctx_map[key.hash];
  for (const CtxEntry& e : chain) {
    if (e.key == key) {
      ctx_hits_.fetch_add(1);  // lost the race; caller adopts the winner
      context_hit_counter().add();
      obs::log::debug("engine.cache.context_race",
                      {{"hash", static_cast<std::uint64_t>(key.hash)}});
      return e.context;
    }
  }
  chain.push_back(CtxEntry{key, context});
  return context;
}

std::size_t NetCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [hash, chain] : shard->map) n += chain.size();
  }
  return n;
}

std::size_t NetCache::context_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [hash, chain] : shard->ctx_map) n += chain.size();
  }
  return n;
}

}  // namespace rct::engine
