#include "engine/net_cache.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <utility>

#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace rct::engine {
namespace {

// Registry mirrors of the per-instance counters below: one source of truth
// for EngineStats, `--metrics-out` snapshots and the `--progress` meter.
// Function-local statics so each hot path pays one relaxed atomic add, not
// a name lookup.
obs::Counter& cache_hit_counter() {
  static obs::Counter& c = obs::registry().counter("engine.cache.hits");
  return c;
}
obs::Counter& cache_miss_counter() {
  static obs::Counter& c = obs::registry().counter("engine.cache.misses");
  return c;
}
obs::Counter& cache_insert_counter() {
  static obs::Counter& c = obs::registry().counter("engine.cache.inserts");
  return c;
}
obs::Counter& cache_eviction_counter() {
  static obs::Counter& c = obs::registry().counter("engine.cache.evictions");
  return c;
}
obs::Counter& cache_store_hit_counter() {
  static obs::Counter& c = obs::registry().counter("engine.cache.store_hits");
  return c;
}
obs::Counter& context_hit_counter() {
  static obs::Counter& c = obs::registry().counter("engine.cache.context_hits");
  return c;
}

std::uint64_t fnv1a(const std::vector<std::uint64_t>& words) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const std::uint64_t w : words) {
    for (std::size_t byte = 0; byte < 8; ++byte) {
      h ^= (w >> (8 * byte)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

void append_content_words(NetKey& key, const RCTree& tree) {
  for (NodeId i = 0; i < tree.size(); ++i) {
    key.words.push_back(tree.parent(i));  // kSource is its own sentinel value
    key.words.push_back(std::bit_cast<std::uint64_t>(tree.resistance(i)));
    key.words.push_back(std::bit_cast<std::uint64_t>(tree.capacitance(i)));
  }
}

/// Drops `it` from its hash chain in `index`, erasing the chain when it
/// empties.  Shared by both LRU eviction paths.
template <typename Index, typename Iter>
void unindex(Index& index, std::uint64_t hash, Iter it) {
  auto chain = index.find(hash);
  if (chain == index.end()) return;
  auto& vec = chain->second;
  vec.erase(std::remove(vec.begin(), vec.end(), it), vec.end());
  if (vec.empty()) index.erase(chain);
}

}  // namespace

void rebind_report_names(std::vector<core::NodeReport>& rows, const RCTree& tree) {
  if (rows.size() == tree.size()) {
    for (NodeId i = 0; i < tree.size(); ++i) rows[i].name = tree.name(i);
    return;
  }
  const std::vector<NodeId> leaves = tree.leaves();
  if (rows.size() != leaves.size()) return;  // defensive: unexpected shape, keep stored names
  for (std::size_t i = 0; i < leaves.size(); ++i) rows[i].name = tree.name(leaves[i]);
}

NetKey NetKey::of(const RCTree& tree, const core::ReportOptions& options) {
  NetKey key;
  key.words.reserve(3 + 3 * tree.size());
  key.words.push_back(tree.size());
  // Options enter as their *effective* values: with_exact only matters as
  // applied after the node-count cutoff.
  const bool exact = options.with_exact && tree.size() <= options.exact_node_limit;
  key.words.push_back((exact ? 1ULL : 0ULL) | (options.leaves_only ? 2ULL : 0ULL));
  key.words.push_back(std::bit_cast<std::uint64_t>(options.fraction));
  append_content_words(key, tree);
  key.hash = fnv1a(key.words);
  return key;
}

NetKey NetKey::content_of(const RCTree& tree) {
  NetKey key;
  key.words.reserve(1 + 3 * tree.size());
  key.words.push_back(tree.size());
  append_content_words(key, tree);
  key.hash = fnv1a(key.words);
  return key;
}

NetCache::NetCache(std::size_t shards, std::size_t max_entries) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
  if (max_entries > 0) cap_per_shard_ = (max_entries + shards - 1) / shards;
}

std::optional<std::vector<core::NodeReport>> NetCache::lookup(const NetKey& key,
                                                              const RCTree& tree,
                                                              CacheSource* source) {
  Shard& shard = shard_for(key.hash);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto chain = shard.index.find(key.hash);
    if (chain != shard.index.end()) {
      for (const auto it : chain->second) {
        if (it->key == key) {
          hits_.fetch_add(1);
          cache_hit_counter().add();
          shard.entries.splice(shard.entries.begin(), shard.entries, it);  // refresh LRU
          std::vector<core::NodeReport> rows = it->rows;  // copy under the shard lock
          rebind_report_names(rows, tree);
          if (source != nullptr) *source = CacheSource::kMemory;
          return rows;
        }
      }
    }
  }
  // Memory miss: consult the second-level store outside the shard lock and
  // promote a hit into memory so repeats stay lock-cheap.
  if (backend_ != nullptr) {
    if (auto loaded = backend_->load(key)) {
      backend_hits_.fetch_add(1);
      cache_store_hit_counter().add();
      std::vector<core::NodeReport> rows = *loaded;
      insert_memory(key, std::move(*loaded));
      rebind_report_names(rows, tree);
      if (source != nullptr) *source = CacheSource::kBackend;
      return rows;
    }
  }
  misses_.fetch_add(1);
  cache_miss_counter().add();
  if (source != nullptr) *source = CacheSource::kMiss;
  return std::nullopt;
}

bool NetCache::insert_memory(const NetKey& key, std::vector<core::NodeReport> rows) {
  Shard& shard = shard_for(key.hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto& chain = shard.index[key.hash];
  for (const auto it : chain)
    if (it->key == key) return false;  // first writer wins
  shard.entries.push_front(Entry{key, std::move(rows)});
  chain.push_back(shard.entries.begin());
  cache_insert_counter().add();
  if (cap_per_shard_ > 0 && shard.entries.size() > cap_per_shard_) {
    const auto victim = std::prev(shard.entries.end());
    unindex(shard.index, victim->key.hash, victim);
    shard.entries.pop_back();
    evictions_.fetch_add(1);
    cache_eviction_counter().add();
  }
  return true;
}

void NetCache::insert(const NetKey& key, std::vector<core::NodeReport> rows) {
  // Write-through before the memory insert: the rows are still at hand and
  // no shard lock is held across the (possibly real) I/O.  A duplicate
  // insert re-saves; backends treat an existing entry as a cheap no-op.
  if (backend_ != nullptr) backend_->save(key, rows);
  insert_memory(key, std::move(rows));
}

std::shared_ptr<const analysis::TreeContext> NetCache::lookup_context(const NetKey& key) {
  Shard& shard = shard_for(key.hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto chain = shard.ctx_index.find(key.hash);
  if (chain != shard.ctx_index.end()) {
    for (const auto it : chain->second) {
      if (it->key == key) {
        ctx_hits_.fetch_add(1);
        context_hit_counter().add();
        shard.contexts.splice(shard.contexts.begin(), shard.contexts, it);  // refresh LRU
        return it->context;
      }
    }
  }
  return nullptr;
}

std::shared_ptr<const analysis::TreeContext> NetCache::insert_context(
    const NetKey& key, std::shared_ptr<const analysis::TreeContext> context) {
  Shard& shard = shard_for(key.hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto& chain = shard.ctx_index[key.hash];
  for (const auto it : chain) {
    if (it->key == key) {
      ctx_hits_.fetch_add(1);  // lost the race; caller adopts the winner
      context_hit_counter().add();
      obs::log::debug("engine.cache.context_race",
                      {{"hash", static_cast<std::uint64_t>(key.hash)}});
      return it->context;
    }
  }
  shard.contexts.push_front(CtxEntry{key, context});
  chain.push_back(shard.contexts.begin());
  if (cap_per_shard_ > 0 && shard.contexts.size() > cap_per_shard_) {
    const auto victim = std::prev(shard.contexts.end());
    // Dropping a context is safe even while in use: consumers hold their
    // own shared_ptr; only the cache's reference goes away.
    unindex(shard.ctx_index, victim->key.hash, victim);
    shard.contexts.pop_back();
    evictions_.fetch_add(1);
    cache_eviction_counter().add();
  }
  return context;
}

std::pair<std::size_t, std::size_t> NetCache::clear() {
  std::size_t entries = 0;
  std::size_t contexts = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    entries += shard->entries.size();
    contexts += shard->contexts.size();
    shard->entries.clear();
    shard->index.clear();
    shard->contexts.clear();
    shard->ctx_index.clear();
  }
  return {entries, contexts};
}

std::size_t NetCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    n += shard->entries.size();
  }
  return n;
}

std::size_t NetCache::context_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    n += shard->contexts.size();
  }
  return n;
}

}  // namespace rct::engine
