#pragma once
// Dense row-major matrix with LU factorization (partial pivoting).
//
// This is the small dense-kernel workhorse used by the exact RC-tree
// simulator (eigendecomposition working storage) and by the MNA assembly
// for general RC networks.  Sizes in this toolkit are moderate (N up to a
// few thousand for exact analysis), so a cache-friendly dense kernel is the
// right tool; the O(N) tree solver in src/sim handles the large-N transient
// path.

#include <cstddef>
#include <span>
#include <vector>

namespace rct::linalg {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// Creates an r-by-c matrix, zero-initialized.
  Matrix(std::size_t r, std::size_t c) : rows_(r), cols_(c), a_(r * c, 0.0) {}

  /// Creates a square n-by-n matrix, zero-initialized.
  static Matrix square(std::size_t n) { return Matrix(n, n); }

  /// Creates the n-by-n identity.
  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t i, std::size_t j) { return a_[i * cols_ + j]; }
  double operator()(std::size_t i, std::size_t j) const { return a_[i * cols_ + j]; }

  /// Row i as a contiguous span.
  [[nodiscard]] std::span<double> row(std::size_t i) { return {a_.data() + i * cols_, cols_}; }
  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    return {a_.data() + i * cols_, cols_};
  }

  /// y = A * x.  x.size() must equal cols().
  [[nodiscard]] std::vector<double> multiply(std::span<const double> x) const;

  /// C = A * B.
  [[nodiscard]] Matrix multiply(const Matrix& b) const;

  /// Transpose.
  [[nodiscard]] Matrix transposed() const;

  /// max |a_ij|.
  [[nodiscard]] double max_abs() const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> a_;
};

/// LU factorization with partial pivoting of a square matrix.
///
/// Throws std::invalid_argument for non-square input and std::runtime_error
/// for (numerically) singular matrices.
class LuFactor {
 public:
  explicit LuFactor(Matrix a);

  /// Solves A x = b; b.size() must equal n.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// Solves in place.
  void solve_in_place(std::span<double> b) const;

  /// Determinant of the factored matrix.
  [[nodiscard]] double determinant() const;

  [[nodiscard]] std::size_t size() const { return lu_.rows(); }

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int perm_sign_ = 1;
};

}  // namespace rct::linalg
