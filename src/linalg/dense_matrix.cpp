#include "linalg/dense_matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace rct::linalg {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::multiply(std::span<const double> x) const {
  if (x.size() != cols_) throw std::invalid_argument("Matrix::multiply: size mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    const double* r = a_.data() + i * cols_;
    for (std::size_t j = 0; j < cols_; ++j) acc += r[j] * x[j];
    y[i] = acc;
  }
  return y;
}

Matrix Matrix::multiply(const Matrix& b) const {
  if (cols_ != b.rows_) throw std::invalid_argument("Matrix::multiply: shape mismatch");
  Matrix c(rows_, b.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols_; ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : a_) m = std::max(m, std::abs(v));
  return m;
}

LuFactor::LuFactor(Matrix a) : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols()) throw std::invalid_argument("LuFactor: matrix not square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |a_ik| for i >= k.
    std::size_t piv = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best == 0.0) throw std::runtime_error("LuFactor: singular matrix");
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(piv, j));
      std::swap(perm_[k], perm_[piv]);
      perm_sign_ = -perm_sign_;
    }
    const double inv_piv = 1.0 / lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = lu_(i, k) * inv_piv;
      lu_(i, k) = f;
      if (f == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= f * lu_(k, j);
    }
  }
}

std::vector<double> LuFactor::solve(std::span<const double> b) const {
  std::vector<double> x(b.begin(), b.end());
  solve_in_place(x);
  return x;
}

void LuFactor::solve_in_place(std::span<double> b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw std::invalid_argument("LuFactor::solve: size mismatch");
  // Apply permutation.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = b[perm_[i]];
  // Forward substitution (unit lower).
  for (std::size_t i = 1; i < n; ++i) {
    double acc = y[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * y[j];
    y[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * y[j];
    y[ii] = acc / lu_(ii, ii);
  }
  for (std::size_t i = 0; i < n; ++i) b[i] = y[i];
}

double LuFactor::determinant() const {
  double d = perm_sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
  return d;
}

}  // namespace rct::linalg
