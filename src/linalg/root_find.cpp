#include "linalg/root_find.hpp"

#include <cmath>

namespace rct::linalg {

std::optional<double> brent_root(const std::function<double(double)>& f, double lo, double hi,
                                 const RootOptions& opt) {
  double a = lo;
  double b = hi;
  double fa = f(a);
  double fb = f(b);
  if (std::abs(fa) <= opt.f_tol) return a;
  if (std::abs(fb) <= opt.f_tol) return b;
  if (fa * fb > 0.0) return std::nullopt;

  double c = a;
  double fc = fa;
  double d = b - a;
  double e = d;

  for (int iter = 0; iter < opt.max_iter; ++iter) {
    if (std::abs(fc) < std::abs(fb)) {
      a = b;
      b = c;
      c = a;
      fa = fb;
      fb = fc;
      fc = fa;
    }
    const double tol1 = 2.0 * 2.3e-16 * std::abs(b) + 0.5 * opt.x_tol;
    const double xm = 0.5 * (c - b);
    if (std::abs(xm) <= tol1 || fb == 0.0) return b;

    if (std::abs(e) >= tol1 && std::abs(fa) > std::abs(fb)) {
      // Attempt inverse quadratic interpolation / secant.
      const double s = fb / fa;
      double p;
      double q;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::abs(p);
      const double min1 = 3.0 * xm * q - std::abs(tol1 * q);
      const double min2 = std::abs(e * q);
      if (2.0 * p < std::min(min1, min2)) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol1) ? d : std::copysign(tol1, xm);
    fb = f(b);
    if (std::abs(fb) <= opt.f_tol) return b;
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  return b;  // best effort after max_iter
}

std::optional<double> bracket_and_solve(const std::function<double(double)>& f, double hi0,
                                        double hi_cap, const RootOptions& opt) {
  double lo = 0.0;
  const double flo = f(lo);
  if (std::abs(flo) <= opt.f_tol) return lo;
  double hi = hi0;
  double fhi = f(hi);
  while (flo * fhi > 0.0) {
    lo = hi;
    hi *= 2.0;
    if (hi > hi_cap) return std::nullopt;
    fhi = f(hi);
  }
  return brent_root(f, lo, hi, opt);
}

}  // namespace rct::linalg
