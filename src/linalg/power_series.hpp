#pragma once
// Truncated power series in s with fixed order.
//
// Used by the moment engine: driving-point admittance moments of an RC
// subtree are the coefficients of Y(s) = y1 s + y2 s^2 + ..., and the
// series/parallel reduction rules of Section II (and the O'Brien-Savarino
// pi-model of Lemma 2) are ordinary truncated-series arithmetic.

#include <cstddef>
#include <span>
#include <vector>

namespace rct::linalg {

/// Polynomial in s truncated at order `order()`: c[0] + c[1] s + ... .
class PowerSeries {
 public:
  PowerSeries() = default;

  /// Zero series with `order + 1` coefficients (degree <= order).
  explicit PowerSeries(std::size_t order) : c_(order + 1, 0.0) {}

  /// Series from explicit coefficients, constant term first.
  explicit PowerSeries(std::vector<double> coeffs) : c_(std::move(coeffs)) {}

  [[nodiscard]] std::size_t order() const { return c_.empty() ? 0 : c_.size() - 1; }
  [[nodiscard]] std::span<const double> coefficients() const { return c_; }

  double& operator[](std::size_t k) { return c_[k]; }
  double operator[](std::size_t k) const { return c_[k]; }

  PowerSeries& operator+=(const PowerSeries& o);
  PowerSeries& operator-=(const PowerSeries& o);
  PowerSeries& operator*=(double k);

  [[nodiscard]] friend PowerSeries operator+(PowerSeries a, const PowerSeries& b) {
    a += b;
    return a;
  }
  [[nodiscard]] friend PowerSeries operator-(PowerSeries a, const PowerSeries& b) {
    a -= b;
    return a;
  }
  [[nodiscard]] friend PowerSeries operator*(PowerSeries a, double k) {
    a *= k;
    return a;
  }

  /// Truncated product; result order = min(order(), o.order()).
  [[nodiscard]] PowerSeries multiply(const PowerSeries& o) const;

  /// Truncated reciprocal 1/this; requires nonzero constant term.
  [[nodiscard]] PowerSeries reciprocal() const;

  /// this / o, truncated; requires o has nonzero constant term.
  [[nodiscard]] PowerSeries divide(const PowerSeries& o) const;

  friend bool operator==(const PowerSeries&, const PowerSeries&) = default;

 private:
  std::vector<double> c_;
};

}  // namespace rct::linalg
