#include "linalg/symmetric_eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rct::linalg {
namespace {

double hypot2(double a, double b) { return std::hypot(a, b); }

// Householder reduction of a real symmetric matrix to tridiagonal form.
// On exit: d = diagonal, e = subdiagonal (e[0] unused), z = accumulated
// orthogonal transform (A = Z T Z^T).
void tridiagonalize(Matrix& z, std::vector<double>& d, std::vector<double>& e) {
  const std::size_t n = z.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);

  for (std::size_t i = n - 1; i >= 1; --i) {
    std::size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::abs(z(i, k));
      if (scale == 0.0) {
        e[i] = z(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[j] = g / h;
          f += e[j] * z(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = z(i, j);
          e[j] = g = e[j] - hh * f;
          for (std::size_t k = 0; k <= j; ++k) z(j, k) -= f * e[k] + g * z(i, k);
        }
      }
    } else {
      e[i] = z(i, l);
    }
    d[i] = h;
  }

  d[0] = 0.0;
  e[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t l = i;
    if (d[i] != 0.0) {
      for (std::size_t j = 0; j < l; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k < l; ++k) g += z(i, k) * z(k, j);
        for (std::size_t k = 0; k < l; ++k) z(k, j) -= g * z(k, i);
      }
    }
    d[i] = z(i, i);
    z(i, i) = 1.0;
    for (std::size_t j = 0; j < l; ++j) z(j, i) = z(i, j) = 0.0;
  }
}

// Implicit-shift QL on the tridiagonal (d, e); eigenvectors accumulated in z.
void ql_implicit(std::vector<double>& d, std::vector<double>& e, Matrix& z) {
  const std::size_t n = d.size();
  if (n == 0) return;
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= 1e-300 || std::abs(e[m]) <= 2.3e-16 * dd) break;
      }
      if (m != l) {
        if (++iter == 80) throw std::runtime_error("symmetric_eigen: QL failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = hypot2(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        for (std::size_t ii = m; ii-- > l;) {
          double f = s * e[ii];
          const double b = c * e[ii];
          r = hypot2(f, g);
          e[ii + 1] = r;
          if (r == 0.0) {
            d[ii + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[ii + 1] - p;
          r = (d[ii] - g) * s + 2.0 * c * b;
          p = s * r;
          d[ii + 1] = g + p;
          g = c * r - b;
          for (std::size_t k = 0; k < n; ++k) {
            f = z(k, ii + 1);
            z(k, ii + 1) = s * z(k, ii) + c * f;
            z(k, ii) = c * z(k, ii) - s * f;
          }
        }
        if (r == 0.0 && m - l > 1) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
}

}  // namespace

EigenResult symmetric_eigen(const Matrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("symmetric_eigen: matrix not square");
  const std::size_t n = a.rows();
  EigenResult res;
  res.eigenvectors = a;
  // Symmetrize from the lower triangle so callers may fill only that half.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) res.eigenvectors(i, j) = res.eigenvectors(j, i);

  if (n == 0) return res;
  if (n == 1) {
    res.eigenvalues = {res.eigenvectors(0, 0)};
    res.eigenvectors(0, 0) = 1.0;
    return res;
  }

  std::vector<double> d;
  std::vector<double> e;
  tridiagonalize(res.eigenvectors, d, e);
  ql_implicit(d, e, res.eigenvectors);

  // Sort ascending, permuting eigenvector columns.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](std::size_t x, std::size_t y) { return d[x] < d[y]; });

  res.eigenvalues.resize(n);
  Matrix sorted(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    res.eigenvalues[j] = d[idx[j]];
    for (std::size_t i = 0; i < n; ++i) sorted(i, j) = res.eigenvectors(i, idx[j]);
  }
  res.eigenvectors = std::move(sorted);
  return res;
}

}  // namespace rct::linalg
