#pragma once
// Scalar root finding on continuous functions: bracketing bisection and
// Brent's method.
//
// The toolkit's delay measurements are threshold crossings of provably
// monotone responses, so a guaranteed bracketing method is the right choice;
// Brent adds superlinear convergence without giving up the bracket.

#include <functional>
#include <optional>

namespace rct::linalg {

/// Options for scalar root searches.
struct RootOptions {
  double x_tol = 1e-15;   ///< absolute tolerance on the root position
  double f_tol = 1e-13;   ///< |f| below which we accept the point
  int max_iter = 200;
};

/// Finds x in [lo, hi] with f(x) = 0 by Brent's method.
/// Requires f(lo) and f(hi) to have opposite (or zero) signs; returns
/// std::nullopt if the bracket is invalid.
[[nodiscard]] std::optional<double> brent_root(const std::function<double(double)>& f, double lo,
                                               double hi, const RootOptions& opt = {});

/// Expands [0, hi0] geometrically until f changes sign, then runs Brent.
/// Intended for crossing searches on responses that settle to a known sign.
/// Returns std::nullopt if no sign change is found before `hi_cap`.
[[nodiscard]] std::optional<double> bracket_and_solve(const std::function<double(double)>& f,
                                                      double hi0, double hi_cap,
                                                      const RootOptions& opt = {});

}  // namespace rct::linalg
