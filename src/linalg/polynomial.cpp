#include "linalg/polynomial.hpp"

#include <cmath>
#include <stdexcept>

namespace rct::linalg {

std::complex<double> polynomial_eval(std::span<const double> coeffs, std::complex<double> x) {
  std::complex<double> acc = 0.0;
  for (std::size_t k = coeffs.size(); k-- > 0;) acc = acc * x + coeffs[k];
  return acc;
}

std::vector<std::complex<double>> polynomial_roots(std::span<const double> coeffs) {
  // Strip (numerically) zero leading coefficients.
  std::size_t deg = coeffs.size();
  while (deg > 0 && coeffs[deg - 1] == 0.0) --deg;
  if (deg < 2) throw std::invalid_argument("polynomial_roots: degree must be >= 1");
  const std::size_t n = deg - 1;  // polynomial degree

  // Normalize to monic.
  std::vector<std::complex<double>> a(deg);
  const double lead = coeffs[deg - 1];
  for (std::size_t k = 0; k < deg; ++k) a[k] = coeffs[k] / lead;

  auto eval_monic = [&](std::complex<double> x) {
    std::complex<double> acc = 1.0;
    for (std::size_t k = n; k-- > 0;) acc = acc * x + a[k];
    return acc;
  };

  // Cauchy-style radius bound for the initial guesses.
  double radius = 0.0;
  for (std::size_t k = 0; k < n; ++k) radius = std::max(radius, std::abs(a[k]));
  radius = 1.0 + radius;

  // Durand-Kerner start: points on a circle, deliberately non-symmetric angle.
  std::vector<std::complex<double>> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = 2.0 * M_PI * static_cast<double>(i) / static_cast<double>(n) + 0.4;
    z[i] = std::polar(0.5 * radius + 0.1, ang);
  }

  constexpr int kMaxIter = 500;
  for (int iter = 0; iter < kMaxIter; ++iter) {
    double max_step = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      std::complex<double> denom = 1.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) denom *= (z[i] - z[j]);
      }
      if (denom == std::complex<double>(0.0, 0.0)) {
        // Perturb coincident iterates.
        z[i] += std::complex<double>(1e-6 * radius, 1e-6 * radius);
        denom = 1.0;
        for (std::size_t j = 0; j < n; ++j)
          if (j != i) denom *= (z[i] - z[j]);
      }
      const std::complex<double> delta = eval_monic(z[i]) / denom;
      z[i] -= delta;
      max_step = std::max(max_step, std::abs(delta));
    }
    if (max_step < 1e-14 * radius) break;
  }

  // Snap conjugate-pair imaginary dust to the real axis.
  for (auto& r : z) {
    if (std::abs(r.imag()) < 1e-9 * (1.0 + std::abs(r.real()))) r = {r.real(), 0.0};
  }
  return z;
}

}  // namespace rct::linalg
