#pragma once
// Derivative-free minimization by the Nelder-Mead simplex method.
//
// Used by the calibration tool (tools/fit_fig1) to recover the paper's
// unpublished component values from its published Table I/II metrics, and
// available to examples for design-space exploration (wire sizing).

#include <functional>
#include <vector>

namespace rct::linalg {

/// Options for Nelder-Mead.
struct NelderMeadOptions {
  int max_iter = 4000;
  double f_tol = 1e-12;        ///< stop when simplex f-spread is below this
  double initial_step = 0.25;  ///< relative perturbation for the initial simplex
};

/// Result of a minimization.
struct NelderMeadResult {
  std::vector<double> x;
  double f;
  int iterations;
};

/// Minimizes f starting at x0.  The initial simplex perturbs each coordinate
/// by initial_step * max(|x0_i|, 1e-12).
[[nodiscard]] NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f, std::vector<double> x0,
    const NelderMeadOptions& options = {});

}  // namespace rct::linalg
