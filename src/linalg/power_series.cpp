#include "linalg/power_series.hpp"

#include <algorithm>
#include <stdexcept>

namespace rct::linalg {

PowerSeries& PowerSeries::operator+=(const PowerSeries& o) {
  if (o.c_.size() > c_.size()) c_.resize(o.c_.size(), 0.0);
  for (std::size_t k = 0; k < o.c_.size(); ++k) c_[k] += o.c_[k];
  return *this;
}

PowerSeries& PowerSeries::operator-=(const PowerSeries& o) {
  if (o.c_.size() > c_.size()) c_.resize(o.c_.size(), 0.0);
  for (std::size_t k = 0; k < o.c_.size(); ++k) c_[k] -= o.c_[k];
  return *this;
}

PowerSeries& PowerSeries::operator*=(double k) {
  for (double& v : c_) v *= k;
  return *this;
}

PowerSeries PowerSeries::multiply(const PowerSeries& o) const {
  const std::size_t ord = std::min(order(), o.order());
  PowerSeries r(ord);
  for (std::size_t i = 0; i <= ord; ++i)
    for (std::size_t j = 0; i + j <= ord && j < o.c_.size(); ++j) {
      if (i < c_.size()) r.c_[i + j] += c_[i] * o.c_[j];
    }
  return r;
}

PowerSeries PowerSeries::reciprocal() const {
  if (c_.empty() || c_[0] == 0.0)
    throw std::invalid_argument("PowerSeries::reciprocal: zero constant term");
  const std::size_t ord = order();
  PowerSeries r(ord);
  r.c_[0] = 1.0 / c_[0];
  for (std::size_t k = 1; k <= ord; ++k) {
    double acc = 0.0;
    for (std::size_t j = 1; j <= k; ++j) {
      if (j < c_.size()) acc += c_[j] * r.c_[k - j];
    }
    r.c_[k] = -acc / c_[0];
  }
  return r;
}

PowerSeries PowerSeries::divide(const PowerSeries& o) const {
  return multiply(o.reciprocal());
}

}  // namespace rct::linalg
