#pragma once
// Real-coefficient polynomial utilities: Horner evaluation and root finding
// via the Durand-Kerner (Weierstrass) simultaneous iteration.
//
// AWE moment matching (core/awe) produces a small characteristic polynomial
// whose roots are the approximating poles; Durand-Kerner is robust for the
// low orders (q <= 8) used there.

#include <complex>
#include <span>
#include <vector>

namespace rct::linalg {

/// Evaluates sum_k c[k] x^k (constant term first) by Horner's rule.
[[nodiscard]] std::complex<double> polynomial_eval(std::span<const double> coeffs,
                                                   std::complex<double> x);

/// All complex roots of the polynomial with real coefficients `coeffs`
/// (constant term first; leading coefficient must be nonzero).
///
/// Throws std::invalid_argument for degree-0 input or zero leading
/// coefficient.  Iteration is capped; accuracy is ample for the small
/// well-separated-pole systems produced by AWE.
[[nodiscard]] std::vector<std::complex<double>> polynomial_roots(std::span<const double> coeffs);

}  // namespace rct::linalg
