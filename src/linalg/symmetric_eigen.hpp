#pragma once
// Symmetric eigendecomposition: Householder tridiagonalization followed by
// implicit-shift QL iteration.
//
// The exact RC-tree simulator reduces C v' = -G v + b to a symmetric
// standard eigenproblem via the congruence C^{-1/2} G C^{-1/2}; this solver
// provides the eigenvalues (circuit pole magnitudes) and orthonormal
// eigenvectors used to write the response in closed pole/residue form.

#include <vector>

#include "linalg/dense_matrix.hpp"

namespace rct::linalg {

/// Result of a symmetric eigendecomposition A = V diag(w) V^T.
struct EigenResult {
  std::vector<double> eigenvalues;  ///< ascending order
  Matrix eigenvectors;              ///< column j is the eigenvector for eigenvalues[j]
};

/// Decomposes a symmetric matrix.  Only the lower triangle of `a` is read.
///
/// Throws std::invalid_argument for non-square input and std::runtime_error
/// if the QL iteration fails to converge (pathological input).
[[nodiscard]] EigenResult symmetric_eigen(const Matrix& a);

}  // namespace rct::linalg
