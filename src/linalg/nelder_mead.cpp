#include "linalg/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rct::linalg {

NelderMeadResult nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                             std::vector<double> x0, const NelderMeadOptions& options) {
  const std::size_t n = x0.size();
  if (n == 0) throw std::invalid_argument("nelder_mead: empty start point");

  // Standard coefficients.
  constexpr double kReflect = 1.0;
  constexpr double kExpand = 2.0;
  constexpr double kContract = 0.5;
  constexpr double kShrink = 0.5;

  std::vector<std::vector<double>> simplex(n + 1, x0);
  for (std::size_t i = 0; i < n; ++i) {
    // Zero coordinates get a unit-scale perturbation; a relative one would
    // collapse the simplex and stall at the start point.
    const double scale = (x0[i] != 0.0) ? std::abs(x0[i]) : 1.0;
    simplex[i + 1][i] += options.initial_step * scale;
  }

  std::vector<double> fv(n + 1);
  for (std::size_t i = 0; i <= n; ++i) fv[i] = f(simplex[i]);

  std::vector<std::size_t> order(n + 1);
  int iter = 0;
  for (; iter < options.max_iter; ++iter) {
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return fv[a] < fv[b]; });
    const std::size_t best = order[0];
    const std::size_t worst = order[n];
    const std::size_t second_worst = order[n - 1];
    if (std::abs(fv[worst] - fv[best]) <= options.f_tol * (std::abs(fv[best]) + 1e-300)) break;

    // Centroid of all but worst.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t j = 0; j < n; ++j) centroid[j] += simplex[i][j];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double alpha) {
      std::vector<double> p(n);
      for (std::size_t j = 0; j < n; ++j)
        p[j] = centroid[j] + alpha * (centroid[j] - simplex[worst][j]);
      return p;
    };

    const std::vector<double> refl = blend(kReflect);
    const double f_refl = f(refl);
    if (f_refl < fv[order[0]]) {
      const std::vector<double> exp_p = blend(kExpand);
      const double f_exp = f(exp_p);
      if (f_exp < f_refl) {
        simplex[worst] = exp_p;
        fv[worst] = f_exp;
      } else {
        simplex[worst] = refl;
        fv[worst] = f_refl;
      }
      continue;
    }
    if (f_refl < fv[second_worst]) {
      simplex[worst] = refl;
      fv[worst] = f_refl;
      continue;
    }
    const std::vector<double> contr = blend(-kContract);
    const double f_contr = f(contr);
    if (f_contr < fv[worst]) {
      simplex[worst] = contr;
      fv[worst] = f_contr;
      continue;
    }
    // Shrink toward best.
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == best) continue;
      for (std::size_t j = 0; j < n; ++j)
        simplex[i][j] = simplex[best][j] + kShrink * (simplex[i][j] - simplex[best][j]);
      fv[i] = f(simplex[i]);
    }
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i <= n; ++i)
    if (fv[i] < fv[best]) best = i;
  return {simplex[best], fv[best], iter};
}

}  // namespace rct::linalg
