#pragma once
// Incremental Elmore maintenance for ECO-style flows.
//
// Optimizers (sizing, buffering, placement) change one component at a time
// and re-query a handful of sinks.  Recomputing all Elmore delays is O(N)
// per change; this class maintains subtree capacitances so that
//
//   cap changes   cost O(depth)   (update C_tot along the source path)
//   res changes   cost O(1)
//   delay query   cost O(depth)   (T_D(i) = sum over path of r_v * Ctot_v)
//
// which is the textbook reason the Elmore metric dominates inner-loop
// optimization.  Results are bit-identical to moments::elmore_delays on the
// equivalent tree (property-tested).

#include <vector>

#include "rctree/rctree.hpp"

namespace rct::moments {

/// Mutable Elmore view over a fixed tree topology.
class IncrementalElmore {
 public:
  explicit IncrementalElmore(const RCTree& tree);

  [[nodiscard]] std::size_t size() const { return res_.size(); }

  /// Adds `delta` farads at `node` (may be negative; the resulting
  /// capacitance must stay >= 0).  O(depth).
  void add_cap(NodeId node, double delta);

  /// Replaces the edge resistance above `node`.  O(1).
  void set_resistance(NodeId node, double resistance);

  [[nodiscard]] double capacitance(NodeId node) const { return cap_[node]; }
  [[nodiscard]] double resistance(NodeId node) const { return res_[node]; }
  [[nodiscard]] double subtree_capacitance(NodeId node) const { return ctot_[node]; }

  /// Elmore delay at `node`, O(depth).
  [[nodiscard]] double elmore(NodeId node) const;

  /// Materializes the current component values as an RCTree (O(N)); used
  /// for verification and for handing off to the simulators.
  [[nodiscard]] RCTree snapshot() const;

 private:
  std::vector<NodeId> parent_;
  std::vector<std::string> name_;
  std::vector<double> res_;
  std::vector<double> cap_;
  std::vector<double> ctot_;
};

}  // namespace rct::moments
