#include "moments/admittance.hpp"

#include <stdexcept>
#include <vector>

namespace rct::moments {

using linalg::PowerSeries;

PowerSeries through_series_resistor(const PowerSeries& y, double r) {
  // Y' = Y / (1 + r Y).
  PowerSeries denom(y.order());
  denom[0] = 1.0;
  denom += y * r;
  return y.divide(denom);
}

// Computed leaf-to-root in one sweep (children have larger indices than
// parents), so arbitrarily deep lines are fine.
std::vector<PowerSeries> node_admittances(const RCTree& tree, std::size_t order) {
  const std::size_t n = tree.size();
  std::vector<PowerSeries> y(n, PowerSeries(order));
  for (NodeId i = n; i-- > 0;) {
    if (order >= 1) y[i][1] += tree.capacitance(i);
    const NodeId p = tree.parent(i);
    if (p != kSource) y[p] += through_series_resistor(y[i], tree.resistance(i));
  }
  return y;
}

PowerSeries node_admittance(const RCTree& tree, NodeId i, std::size_t order) {
  if (i >= tree.size()) throw std::invalid_argument("node_admittance: node out of range");
  return node_admittances(tree, order)[i];
}

PowerSeries input_admittance(const RCTree& tree, std::size_t order) {
  const auto ys = node_admittances(tree, order);
  PowerSeries y(order);
  for (NodeId root : tree.children_of_source())
    y += through_series_resistor(ys[root], tree.resistance(root));
  return y;
}

PowerSeries transfer_from_admittance(const RCTree& tree, NodeId root, std::size_t order) {
  if (root >= tree.size() || tree.parent(root) != kSource)
    throw std::invalid_argument("transfer_from_admittance: node must attach to the source");
  const PowerSeries y = node_admittance(tree, root, order);
  PowerSeries denom(order);
  denom[0] = 1.0;
  denom += y * tree.resistance(root);
  return denom.reciprocal();
}

}  // namespace rct::moments
