#pragma once
// Driving-point admittance moments of RC (sub)trees as truncated power
// series, computed by recursive series/parallel reduction:
//
//   capacitor:     Y_c(s) = c s
//   parallel:      Y = Y_a + Y_b
//   series R then Y:  Y' = Y / (1 + R Y)
//
// These are the m_k(Y_1) moments of the paper's Lemma 2 / Appendix A, used
// to synthesize the O'Brien-Savarino pi-model (eq. 26) and to derive the
// transfer moments at the first node (eq. A3).

#include <vector>

#include "linalg/power_series.hpp"
#include "rctree/rctree.hpp"

namespace rct::moments {

/// Admittance looking into *every* node, leaf-to-root in one O(N * order^2)
/// sweep.  Callers needing more than one node's series (pi-model builders,
/// per-sink Ceff loops) should take this array once instead of calling
/// node_admittance() per node, which redoes the whole sweep each time.
[[nodiscard]] std::vector<linalg::PowerSeries> node_admittances(const RCTree& tree,
                                                                std::size_t order);

/// Admittance looking *into node i* (the subtree hanging at i, including
/// c_i, excluding the edge resistance r_i above it), truncated at `order`.
/// Coefficient [k] is the k-th moment m_k(Y); [0] == 0 for RC trees.
/// Cost: one full-tree sweep per call — use node_admittances() in loops.
[[nodiscard]] linalg::PowerSeries node_admittance(const RCTree& tree, NodeId i,
                                                  std::size_t order);

/// Admittance seen through a series resistor r feeding Y: Y/(1 + rY).
[[nodiscard]] linalg::PowerSeries through_series_resistor(const linalg::PowerSeries& y, double r);

/// Admittance the ideal source sees (all root edges folded in).
[[nodiscard]] linalg::PowerSeries input_admittance(const RCTree& tree, std::size_t order);

/// Admittance Y_1(s) of the paper's Fig. 8(a): the tree *beyond the first
/// resistor of root node `root`* — i.e. node_admittance at `root`.
/// Present for symmetry with the paper's notation.
[[nodiscard]] inline linalg::PowerSeries y1_admittance(const RCTree& tree, NodeId root,
                                                       std::size_t order) {
  return node_admittance(tree, root, order);
}

/// Transfer-function moments at node `root` from its admittance series via
/// eq. (A1): H_1(s) = 1 / (1 + R_1 Y_1(s)), truncated at `order`.
/// `root` must attach directly to the source.
[[nodiscard]] linalg::PowerSeries transfer_from_admittance(const RCTree& tree, NodeId root,
                                                           std::size_t order);

}  // namespace rct::moments
