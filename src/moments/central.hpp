#pragma once
// Central moments, sigma and coefficient of skewness of RC-tree impulse
// responses, straight from path-traced transfer moments (paper eq. 27 and
// Definition 5):
//
//   mu    = -m1                      (mean = Elmore delay T_D)
//   mu2   = 2 m2 - m1^2              (variance; sigma = sqrt(mu2))
//   mu3   = -6 m3 + 6 m1 m2 - 2 m1^3 (third central moment)
//   gamma = mu3 / mu2^{3/2}          (coefficient of skewness; >= 0 for
//                                     RC trees by Lemma 2)

#include <vector>

#include "rctree/rctree.hpp"

namespace rct::moments {

/// Distribution statistics of the impulse response at one node.
struct ImpulseStats {
  double mean;      ///< mu = T_D (Elmore delay)
  double mu2;       ///< variance
  double mu3;       ///< third central moment
  double sigma;     ///< sqrt(mu2); the paper's rise-time metric (Sec. III-B)
  double skewness;  ///< gamma = mu3 / sigma^3
};

/// Stats from explicit transfer moments m1, m2, m3 (signed, eq. 8).
[[nodiscard]] ImpulseStats stats_from_transfer_moments(double m1, double m2, double m3);

/// Per-node impulse-response statistics for the whole tree, O(N).
[[nodiscard]] std::vector<ImpulseStats> impulse_stats(const RCTree& tree);

/// General central moment mu_n from raw distribution moments M_0..M_n
/// (M_0 must be 1): mu_n = sum_k C(n,k) (-mean)^{n-k} M_k.
[[nodiscard]] double central_from_raw(const std::vector<double>& raw_moments, int n);

}  // namespace rct::moments
