#include "moments/incremental.hpp"

#include <stdexcept>

#include "moments/path_tracing.hpp"

namespace rct::moments {

IncrementalElmore::IncrementalElmore(const RCTree& tree) {
  const std::size_t n = tree.size();
  parent_.resize(n);
  name_.resize(n);
  res_.resize(n);
  cap_.resize(n);
  for (NodeId i = 0; i < n; ++i) {
    parent_[i] = tree.parent(i);
    name_[i] = tree.name(i);
    res_[i] = tree.resistance(i);
    cap_[i] = tree.capacitance(i);
  }
  ctot_ = subtree_capacitances(tree);
}

void IncrementalElmore::add_cap(NodeId node, double delta) {
  if (node >= size()) throw std::invalid_argument("IncrementalElmore: node out of range");
  if (cap_[node] + delta < 0.0)
    throw std::invalid_argument("IncrementalElmore: capacitance would go negative");
  cap_[node] += delta;
  for (NodeId v = node; v != kSource; v = parent_[v]) ctot_[v] += delta;
}

void IncrementalElmore::set_resistance(NodeId node, double resistance) {
  if (node >= size()) throw std::invalid_argument("IncrementalElmore: node out of range");
  if (!(resistance > 0.0))
    throw std::invalid_argument("IncrementalElmore: resistance must be positive");
  res_[node] = resistance;
}

double IncrementalElmore::elmore(NodeId node) const {
  if (node >= size()) throw std::invalid_argument("IncrementalElmore: node out of range");
  double td = 0.0;
  for (NodeId v = node; v != kSource; v = parent_[v]) td += res_[v] * ctot_[v];
  return td;
}

RCTree IncrementalElmore::snapshot() const {
  RCTreeBuilder b;
  for (NodeId i = 0; i < size(); ++i) b.add_node(name_[i], parent_[i], res_[i], cap_[i]);
  return std::move(b).build();
}

}  // namespace rct::moments
