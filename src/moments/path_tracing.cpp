#include "moments/path_tracing.hpp"

#include <algorithm>
#include <stdexcept>

namespace rct::moments {

std::vector<double> subtree_capacitances(const RCTree& tree) {
  const std::size_t n = tree.size();
  std::vector<double> ctot(n);
  // Children have larger indices than parents, so one reverse sweep folds
  // subtotals upward.
  for (NodeId i = n; i-- > 0;) {
    ctot[i] += tree.capacitance(i);
    const NodeId p = tree.parent(i);
    if (p != kSource) ctot[p] += ctot[i];
  }
  return ctot;
}

std::vector<double> path_resistances(const RCTree& tree) {
  const std::size_t n = tree.size();
  std::vector<double> rpath(n);
  for (NodeId i = 0; i < n; ++i) {
    const NodeId p = tree.parent(i);
    rpath[i] = tree.resistance(i) + (p == kSource ? 0.0 : rpath[p]);
  }
  return rpath;
}

std::vector<double> elmore_delays_from(const RCTree& tree, std::span<const double> ctot) {
  const std::size_t n = tree.size();
  std::vector<double> td(n);
  for (NodeId i = 0; i < n; ++i) {
    const NodeId p = tree.parent(i);
    td[i] = tree.resistance(i) * ctot[i] + (p == kSource ? 0.0 : td[p]);
  }
  return td;
}

std::vector<double> elmore_delays(const RCTree& tree) {
  return elmore_delays_from(tree, subtree_capacitances(tree));
}

std::vector<double> next_transfer_moment(const RCTree& tree, const std::vector<double>& prev) {
  const std::size_t n = tree.size();
  // Upward pass: accumulate c_j * m_{k-1}(j) over subtrees.
  std::vector<double> weighted(n);
  for (NodeId i = 0; i < n; ++i) weighted[i] = tree.capacitance(i) * prev[i];
  for (NodeId i = n; i-- > 0;) {
    const NodeId p = tree.parent(i);
    if (p != kSource) weighted[p] += weighted[i];
  }
  // Downward pass: m_k(i) = m_k(parent) - r_i * subtree_sum(i).
  std::vector<double> cur(n);
  for (NodeId i = 0; i < n; ++i) {
    const NodeId p = tree.parent(i);
    cur[i] = (p == kSource ? 0.0 : cur[p]) - tree.resistance(i) * weighted[i];
  }
  return cur;
}

std::vector<std::vector<double>> transfer_moments(const RCTree& tree, std::size_t order) {
  std::vector<std::vector<double>> m;
  m.reserve(order + 1);
  m.emplace_back(tree.size(), 1.0);  // m_0 = 1 (DC gain of an RC tree)
  for (std::size_t k = 1; k <= order; ++k) m.push_back(next_transfer_moment(tree, m.back()));
  return m;
}

std::vector<std::vector<double>> distribution_moments(const RCTree& tree, std::size_t order) {
  auto m = transfer_moments(tree, order);
  double sign_fact = 1.0;  // (-1)^q q!
  for (std::size_t q = 1; q <= order; ++q) {
    sign_fact *= -static_cast<double>(q);
    for (double& v : m[q]) v *= sign_fact;
  }
  return m;
}

PrhTerms prh_terms_from(const RCTree& tree, std::span<const double> ctot,
                        std::span<const double> rpath, std::span<const double> td) {
  const std::size_t n = tree.size();
  PrhTerms out;
  out.td.assign(td.begin(), td.end());
  out.tp = 0.0;
  for (NodeId i = 0; i < n; ++i) out.tp += rpath[i] * tree.capacitance(i);

  // A(w) = sum_k C_k R_kw^2, built top-down (see header).
  std::vector<double> a(n);
  out.tr.resize(n);
  for (NodeId i = 0; i < n; ++i) {
    const NodeId p = tree.parent(i);
    const double parent_a = (p == kSource) ? 0.0 : a[p];
    const double parent_r = (p == kSource) ? 0.0 : rpath[p];
    a[i] = parent_a + (rpath[i] * rpath[i] - parent_r * parent_r) * ctot[i];
    out.tr[i] = a[i] / rpath[i];
  }
  return out;
}

PrhTerms prh_terms(const RCTree& tree) {
  const std::vector<double> ctot = subtree_capacitances(tree);
  const std::vector<double> rpath = path_resistances(tree);
  return prh_terms_from(tree, ctot, rpath, elmore_delays_from(tree, ctot));
}

std::vector<double> squared_common_resistance_slow(const RCTree& tree) {
  const std::size_t n = tree.size();
  // R_ki = resistance of the common prefix of the source->i and source->k
  // paths.  Quadratic reference implementation by explicit path walks.
  auto path_of = [&](NodeId x) {
    std::vector<NodeId> p;
    for (NodeId v = x; v != kSource; v = tree.parent(v)) p.push_back(v);
    std::reverse(p.begin(), p.end());
    return p;
  };
  std::vector<std::vector<NodeId>> paths(n);
  for (NodeId i = 0; i < n; ++i) paths[i] = path_of(i);

  std::vector<double> out(n, 0.0);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId k = 0; k < n; ++k) {
      double rki = 0.0;
      const auto& pi = paths[i];
      const auto& pk = paths[k];
      for (std::size_t d = 0; d < std::min(pi.size(), pk.size()); ++d) {
        if (pi[d] != pk[d]) break;
        rki += tree.resistance(pi[d]);
      }
      out[i] += rki * rki * tree.capacitance(k);
    }
  }
  return out;
}

}  // namespace rct::moments
