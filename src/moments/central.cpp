#include "moments/central.hpp"

#include <cmath>
#include <stdexcept>

#include "moments/path_tracing.hpp"

namespace rct::moments {

ImpulseStats stats_from_transfer_moments(double m1, double m2, double m3) {
  ImpulseStats s{};
  s.mean = -m1;
  s.mu2 = 2.0 * m2 - m1 * m1;
  s.mu3 = -6.0 * m3 + 6.0 * m1 * m2 - 2.0 * m1 * m1 * m1;
  s.sigma = (s.mu2 > 0.0) ? std::sqrt(s.mu2) : 0.0;
  s.skewness = (s.sigma > 0.0) ? s.mu3 / (s.sigma * s.sigma * s.sigma) : 0.0;
  return s;
}

std::vector<ImpulseStats> impulse_stats(const RCTree& tree) {
  const auto m = transfer_moments(tree, 3);
  std::vector<ImpulseStats> out(tree.size());
  for (NodeId i = 0; i < tree.size(); ++i)
    out[i] = stats_from_transfer_moments(m[1][i], m[2][i], m[3][i]);
  return out;
}

double central_from_raw(const std::vector<double>& raw, int n) {
  if (n < 0 || raw.size() < static_cast<std::size_t>(n) + 1)
    throw std::invalid_argument("central_from_raw: need moments M_0..M_n");
  if (std::abs(raw[0] - 1.0) > 1e-9)
    throw std::invalid_argument("central_from_raw: M_0 must be 1 (normalized density)");
  const double mean = raw[1];
  double acc = 0.0;
  double binom = 1.0;
  for (int k = 0; k <= n; ++k) {
    acc += binom * std::pow(-mean, n - k) * raw[k];
    binom *= static_cast<double>(n - k) / static_cast<double>(k + 1);
  }
  return acc;
}

}  // namespace rct::moments
