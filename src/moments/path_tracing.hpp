#pragma once
// O(N) path-tracing computation of RC-tree moments (Section II-C/D).
//
// All quantities below come from linear-time tree traversals — the property
// that makes the Elmore metric ubiquitous in synthesis/placement/routing:
//
//  * Elmore delays         T_D(i) = sum_k R_ki C_k              (eq. 4)
//  * transfer moments      m_k(i) with H_i(s) = sum_k m_k(i) s^k (eq. 8-9),
//    via the RICE recurrence m_k(i) = m_k(par) - r_i * sum_{j in sub(i)}
//    c_j m_{k-1}(j)
//  * Penfield-Rubinstein terms T_P, T_D(i), T_R(i)               (eq. 16)
//
// Distribution moments M_q = int t^q h dt relate to transfer moments by
// M_q = (-1)^q q! m_q.

#include <span>
#include <vector>

#include "rctree/rctree.hpp"

namespace rct::moments {

/// Elmore delay T_D at every node (seconds).  O(N).
[[nodiscard]] std::vector<double> elmore_delays(const RCTree& tree);

/// Elmore delays from a precomputed subtree-capacitance array (as produced
/// by subtree_capacitances()).  Bit-identical to elmore_delays(tree); lets
/// callers that already hold the array (analysis::TreeContext) skip the
/// extra sweep.  O(N).
[[nodiscard]] std::vector<double> elmore_delays_from(const RCTree& tree,
                                                     std::span<const double> ctot);

/// Downstream (subtree) capacitance at every node.  O(N).
[[nodiscard]] std::vector<double> subtree_capacitances(const RCTree& tree);

/// Source-to-node path resistance R_ii at every node.  O(N).
[[nodiscard]] std::vector<double> path_resistances(const RCTree& tree);

/// Transfer-function moments: result[k][i] = m_k at node i, for k = 0..order.
/// m_0 = 1 everywhere; m_1(i) = -T_D(i).  O(N * order).
[[nodiscard]] std::vector<std::vector<double>> transfer_moments(const RCTree& tree,
                                                                std::size_t order);

/// One step of the RICE recurrence: m_k at every node from the m_{k-1}
/// vector.  Exposed so memoizing callers (analysis::TreeContext) extend
/// their moment sets with arithmetic bit-identical to transfer_moments().
[[nodiscard]] std::vector<double> next_transfer_moment(const RCTree& tree,
                                                       const std::vector<double>& prev);

/// Distribution moments M_q(i) = int t^q h_i(t) dt = (-1)^q q! m_q(i);
/// result[q][i], q = 0..order.
[[nodiscard]] std::vector<std::vector<double>> distribution_moments(const RCTree& tree,
                                                                    std::size_t order);

/// The three Penfield-Rubinstein path-tracing terms (eq. 16).
struct PrhTerms {
  double tp;               ///< T_P  = sum_k R_kk C_k (shared by all nodes)
  std::vector<double> td;  ///< T_D(i)
  std::vector<double> tr;  ///< T_R(i) = sum_k R_ki^2 C_k / R_ii
};

/// Computes T_P, T_D, T_R in O(N) total using the ancestor recurrence
/// A(w) = A(parent) + (R_ww^2 - R_vv^2) * Ctot(w) for A(w) = sum_k C_k R_kw^2.
[[nodiscard]] PrhTerms prh_terms(const RCTree& tree);

/// PRH terms from precomputed ctot/rpath/td arrays (as produced by the
/// sibling functions above).  Bit-identical to prh_terms(tree); shares no
/// tree sweeps, so a caller holding the arrays pays only the two O(N)
/// T_P / T_R loops.
[[nodiscard]] PrhTerms prh_terms_from(const RCTree& tree, std::span<const double> ctot,
                                      std::span<const double> rpath,
                                      std::span<const double> td);

/// Reference (quadratic-time) computation of sum_k R_ki^2 C_k used by the
/// test suite to validate the O(N) recurrence.
[[nodiscard]] std::vector<double> squared_common_resistance_slow(const RCTree& tree);

}  // namespace rct::moments
