#pragma once
// analysis::TreeContext — the shared derived-array layer every analysis
// consumes.
//
// Motivation: each analysis layer used to re-derive the same per-tree
// quantities with its own sweeps (subtree capacitances, path resistances,
// Elmore delays, PRH terms, transfer moments), and the per-call RCTree
// accessors (RCTree::depth / RCTree::path_resistance /
// RCTree::subtree_capacitance) walk the tree per call — O(depth) or
// O(subtree) — which made per-node report loops quadratic on line
// topologies.  A TreeContext is built once per tree in a fixed set of O(N)
// passes over contiguous arrays and then shared, including across threads,
// by every consumer.
//
// Contents:
//  * eager (built in the constructor): per-node depth, path resistance,
//    subtree capacitance and Elmore delay; total capacitance; DFS pre-order
//    with contiguous subtree intervals (subtree(i) occupies pre-order
//    positions [subtree_begin(i), subtree_end(i))).
//  * lazy (memoized, thread-safe): transfer moments m_0..m_k up to any
//    requested order, impulse-response central-moment stats, and the
//    Penfield-Rubinstein terms.
//
// All derived values are bit-identical to the corresponding src/moments
// free functions — the context delegates to the exact same recurrences —
// so swapping a call site from `f(tree)` to `f(context)` never perturbs a
// ULP (the engine's determinism tests rely on this).
//
// Thread safety: after construction the context is logically immutable.
// Lazy members are guarded by an internal mutex and their storage is
// reference-stable: a span or reference returned by any accessor stays
// valid for the lifetime of the context, even while other threads trigger
// further lazy extension.  Sharing one context across a thread pool is the
// intended use (see src/engine).
//
// Lifetime: the context borrows the RCTree unless constructed from a
// shared_ptr; in the borrowed case the tree must outlive the context.
// Derived arrays depend only on topology and R/C values — never on node
// names — so a context built from one tree is numerically valid for any
// content-identical tree (the engine's net cache shares contexts between
// stamped-out nets on that basis and re-binds names afterwards).

#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "moments/central.hpp"
#include "moments/path_tracing.hpp"
#include "rctree/rctree.hpp"

namespace rct::analysis {

class TreeContext {
 public:
  /// Builds the eager arrays for `tree` (borrowed; must outlive the
  /// context).  O(N) total.
  explicit TreeContext(const RCTree& tree);

  /// Shared-ownership variant: the context keeps the tree alive.
  explicit TreeContext(std::shared_ptr<const RCTree> tree);

  TreeContext(const TreeContext&) = delete;
  TreeContext& operator=(const TreeContext&) = delete;

  [[nodiscard]] const RCTree& tree() const { return *tree_; }
  [[nodiscard]] std::size_t size() const { return depth_.size(); }

  // --- eager per-node arrays (all O(1) access) --------------------------

  /// Edges from the source to each node (RCTree::depth, precomputed).
  [[nodiscard]] std::span<const std::size_t> depths() const { return depth_; }
  /// Source-to-node path resistance R_ii at every node.
  [[nodiscard]] std::span<const double> path_resistances() const { return rpath_; }
  /// Downstream (subtree) capacitance at every node.
  [[nodiscard]] std::span<const double> subtree_capacitances() const { return ctot_; }
  /// Elmore delay T_D at every node.
  [[nodiscard]] std::span<const double> elmore_delays() const { return td_; }
  /// Sum of all capacitances in the tree.
  [[nodiscard]] double total_capacitance() const { return total_cap_; }

  [[nodiscard]] std::size_t depth(NodeId i) const { return depth_[i]; }
  [[nodiscard]] double path_resistance(NodeId i) const { return rpath_[i]; }
  [[nodiscard]] double subtree_capacitance(NodeId i) const { return ctot_[i]; }
  [[nodiscard]] double elmore_delay(NodeId i) const { return td_[i]; }

  // --- DFS pre-order / subtree intervals --------------------------------

  /// Nodes in DFS pre-order (parents before children, roots first).
  [[nodiscard]] std::span<const NodeId> preorder() const { return pre_; }
  /// Position of each node within preorder().
  [[nodiscard]] std::span<const std::size_t> preorder_index() const { return pre_index_; }
  /// Subtree(i) occupies preorder() positions [subtree_begin, subtree_end).
  [[nodiscard]] std::size_t subtree_begin(NodeId i) const { return pre_index_[i]; }
  [[nodiscard]] std::size_t subtree_end(NodeId i) const { return sub_end_[i]; }
  /// Nodes in the subtree rooted at i (including i).
  [[nodiscard]] std::size_t subtree_size(NodeId i) const { return sub_end_[i] - pre_index_[i]; }
  /// O(1) ancestor-or-self test via the pre-order intervals.
  [[nodiscard]] bool in_subtree(NodeId root, NodeId node) const {
    return pre_index_[node] >= pre_index_[root] && pre_index_[node] < sub_end_[root];
  }

  // --- lazy, memoized, thread-safe derived quantities -------------------

  /// Transfer moments m_0..m_order exist after this call.  Extending is
  /// incremental: already-memoized orders are never recomputed.
  void ensure_moments(std::size_t order) const;

  /// Number of transfer-moment vectors memoized so far (0 = none; k+1 means
  /// m_0..m_k are available without further computation).
  [[nodiscard]] std::size_t moments_computed() const;

  /// The m_k vector (one entry per node); computes m_0..m_k on first use.
  /// The returned reference stays valid for the context's lifetime.
  [[nodiscard]] const std::vector<double>& transfer_moment(std::size_t k) const;

  /// Per-node impulse-response statistics (mean/sigma/skewness...), from
  /// moments m_1..m_3.  Memoized on first use.
  [[nodiscard]] std::span<const moments::ImpulseStats> impulse_stats() const;

  /// The three Penfield-Rubinstein terms T_P / T_D / T_R.  Memoized on
  /// first use; the reference stays valid for the context's lifetime.
  [[nodiscard]] const moments::PrhTerms& prh_terms() const;

 private:
  void build_arrays();
  void ensure_moments_locked(std::size_t order) const;

  std::shared_ptr<const RCTree> owned_;  // engaged only for the owning ctor
  const RCTree* tree_;

  std::vector<std::size_t> depth_;
  std::vector<double> rpath_;
  std::vector<double> ctot_;
  std::vector<double> td_;
  double total_cap_ = 0.0;
  std::vector<NodeId> pre_;
  std::vector<std::size_t> pre_index_;
  std::vector<std::size_t> sub_end_;

  // Lazy state.  The deque gives reference stability under push_back;
  // optionals are emplaced once and never reset.
  mutable std::mutex mutex_;
  mutable std::deque<std::vector<double>> moments_;
  mutable std::optional<std::vector<moments::ImpulseStats>> stats_;
  mutable std::optional<moments::PrhTerms> prh_;
};

}  // namespace rct::analysis
