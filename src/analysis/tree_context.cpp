#include "analysis/tree_context.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rct::analysis {
namespace {

obs::Counter& build_counter() {
  static obs::Counter& c = obs::registry().counter("analysis.context.builds");
  return c;
}
obs::Histogram& build_histogram() {
  static obs::Histogram& h = obs::registry().histogram("analysis.context.build_seconds");
  return h;
}
obs::Counter& moment_extension_counter() {
  static obs::Counter& c = obs::registry().counter("analysis.moments.extensions");
  return c;
}
obs::Gauge& moment_order_gauge() {
  static obs::Gauge& g = obs::registry().gauge("analysis.moments.max_order");
  return g;
}

}  // namespace

TreeContext::TreeContext(const RCTree& tree) : tree_(&tree) { build_arrays(); }

TreeContext::TreeContext(std::shared_ptr<const RCTree> tree)
    : owned_(std::move(tree)), tree_(owned_.get()) {
  if (tree_ == nullptr) throw std::invalid_argument("TreeContext: null tree");
  build_arrays();
}

void TreeContext::build_arrays() {
  const obs::Span span("analysis.context.build", "analysis");
  const obs::ScopedTimer timer(build_histogram());
  build_counter().add();
  const RCTree& t = *tree_;
  const std::size_t n = t.size();

  // depth / path resistance: parents precede children, one forward sweep.
  depth_.resize(n);
  rpath_.resize(n);
  for (NodeId i = 0; i < n; ++i) {
    const NodeId p = t.parent(i);
    depth_[i] = (p == kSource) ? 1 : depth_[p] + 1;
    rpath_[i] = t.resistance(i) + (p == kSource ? 0.0 : rpath_[p]);
  }

  // Subtree capacitance / Elmore delay: same recurrences (and therefore the
  // same floating-point results) as the src/moments free functions.
  ctot_ = moments::subtree_capacitances(t);
  td_ = moments::elmore_delays_from(t, ctot_);
  total_cap_ = t.total_capacitance();

  // DFS pre-order; pushing children in reverse keeps sibling order natural.
  pre_.reserve(n);
  pre_index_.resize(n);
  std::vector<NodeId> stack;
  const auto push_reversed = [&stack](std::span<const NodeId> kids) {
    for (std::size_t k = kids.size(); k-- > 0;) stack.push_back(kids[k]);
  };
  push_reversed(t.children_of_source());
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    pre_index_[v] = pre_.size();
    pre_.push_back(v);
    push_reversed(t.children(v));
  }

  // Subtree sizes by one reverse index sweep (children have larger ids);
  // a DFS subtree is the contiguous pre-order run starting at its root.
  std::vector<std::size_t> sub_size(n, 1);
  for (NodeId i = n; i-- > 0;) {
    const NodeId p = t.parent(i);
    if (p != kSource) sub_size[p] += sub_size[i];
  }
  sub_end_.resize(n);
  for (NodeId i = 0; i < n; ++i) sub_end_[i] = pre_index_[i] + sub_size[i];
}

void TreeContext::ensure_moments_locked(std::size_t order) const {
  if (moments_.empty()) moments_.emplace_back(size(), 1.0);  // m_0 = 1
  while (moments_.size() <= order) {
    moments_.push_back(moments::next_transfer_moment(*tree_, moments_.back()));
    moment_extension_counter().add();
  }
  moment_order_gauge().max_of(static_cast<double>(moments_.size() - 1));
}

void TreeContext::ensure_moments(std::size_t order) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ensure_moments_locked(order);
}

std::size_t TreeContext::moments_computed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return moments_.size();
}

const std::vector<double>& TreeContext::transfer_moment(std::size_t k) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ensure_moments_locked(k);
  return moments_[k];
}

std::span<const moments::ImpulseStats> TreeContext::impulse_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!stats_) {
    ensure_moments_locked(3);
    std::vector<moments::ImpulseStats> s(size());
    for (NodeId i = 0; i < size(); ++i)
      s[i] = moments::stats_from_transfer_moments(moments_[1][i], moments_[2][i], moments_[3][i]);
    stats_.emplace(std::move(s));
  }
  return {stats_->data(), stats_->size()};
}

const moments::PrhTerms& TreeContext::prh_terms() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!prh_) prh_.emplace(moments::prh_terms_from(*tree_, ctot_, rpath_, td_));
  return *prh_;
}

}  // namespace rct::analysis
