#pragma once
// obs tracing — RAII spans collected into per-thread buffers and exported
// as Chrome trace-event JSON (load the file in chrome://tracing or
// https://ui.perfetto.dev).
//
// A Span marks one timed operation.  Its name follows the registry's
// `layer.component.op` convention and its category is the layer
// ("cli", "engine", "analysis", "core", "pool"), which is what the trace
// viewers group and filter by.  An optional detail string (e.g. the net
// name) is emitted as args.detail.
//
// Recording is opt-in at runtime: spans do nothing — not even read the
// clock — until tracer().set_enabled(true) (the CLI arms it for
// --trace-out).  Each recording thread appends to its own buffer behind
// its own (uncontended) mutex; buffers are merged and time-sorted only at
// export.  Buffers are shared_ptr-owned by both the thread and the
// collector, so events survive worker threads that exit before export
// (the engine's pool joins its workers before the CLI writes the file).
//
// Building with -DRCT_OBS_ENABLED=0 compiles spans out entirely: Span
// becomes an empty object and no call site reads the clock, which is the
// "provably near zero disabled overhead" path (see bench/perf_report's
// overhead gate for the measured claim with the default build).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"  // RCT_OBS_ENABLED

namespace rct::obs {

/// One completed span ("X" phase in the Chrome trace format).
struct TraceEvent {
  const char* name;    ///< static string: `layer.component.op`
  const char* cat;     ///< static string: the layer
  std::string detail;  ///< optional args.detail ("" = omitted)
  std::uint64_t ts_ns;   ///< start, relative to the collector epoch
  std::uint64_t dur_ns;  ///< duration
  std::uint32_t tid;     ///< collector-assigned thread id (dense, from 1)
};

class TraceCollector {
 public:
  TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Arms/disarms recording.  Spans constructed while disarmed cost nothing.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds since the collector's epoch (its construction).
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Appends one completed event to the calling thread's buffer.
  void record(const char* name, const char* cat, std::uint64_t ts_ns, std::uint64_t dur_ns,
              std::string detail = {});

  /// All recorded events, merged across threads and sorted by start time.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// Drops every recorded event (buffers stay registered).
  void clear();

  /// {"displayTimeUnit":"ms","traceEvents":[...]} — "X" events with
  /// microsecond ts/dur plus one thread_name metadata event per thread.
  [[nodiscard]] std::string to_chrome_json() const;
  /// Writes to_chrome_json() (plus a trailing newline) to `path`; "-"
  /// means stderr.  False on I/O error.
  bool write_chrome_json(const std::string& path) const;

 private:
  struct Buffer {
    std::mutex mutex;
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
  };

  /// The calling thread's buffer for this collector (registered on first use).
  Buffer& local_buffer();

  const std::uint64_t collector_id_;  ///< distinguishes collectors in TL caches
  std::uint64_t epoch_ns_;            ///< steady_clock epoch, absolute ns
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> next_tid_{1};
  mutable std::mutex mutex_;  ///< guards buffers_ (registration + export)
  std::vector<std::shared_ptr<Buffer>> buffers_;
};

/// The process-global collector every Span records into.
[[nodiscard]] TraceCollector& tracer();

/// True when the timing instrumentation (spans, scoped timers, timestamps)
/// is compiled in.
inline constexpr bool kTimingEnabled = RCT_OBS_ENABLED != 0;

/// Nanoseconds on the global tracer's clock; constant 0 when compiled out
/// (callers guard the matching observe with `if constexpr (kTimingEnabled)`).
[[nodiscard]] inline std::uint64_t timestamp_ns() {
  if constexpr (kTimingEnabled)
    return tracer().now_ns();
  else
    return 0;
}

/// RAII span over the global collector.  `name` and `cat` must be string
/// literals (stored by pointer); `detail` is copied only when recording is
/// armed, so a disarmed span never allocates.
class Span {
 public:
#if RCT_OBS_ENABLED
  explicit Span(const char* name, const char* cat, std::string_view detail = {});
  ~Span();
#else
  explicit Span(const char*, const char*, std::string_view = {}) {}
#endif
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

#if RCT_OBS_ENABLED
 private:
  const char* name_;
  const char* cat_;
  std::string detail_;
  std::uint64_t start_ns_ = 0;
  bool armed_;
#endif
};

}  // namespace rct::obs
