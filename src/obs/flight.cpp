#include "obs/flight.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <unistd.h>

namespace rct::obs::flight {
namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

std::atomic<std::uint64_t> next_recorder_id{1};

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void copy_net_name(char (&dst)[Event::kNetCapacity], std::string_view net) {
  const std::size_t n = std::min(net.size(), Event::kNetCapacity - 1);
  std::memcpy(dst, net.data(), n);
  dst[n] = '\0';
}

/// Renders one event as the fixed-width postmortem row.  Shared by the
/// normal and the signal-path dump, so it must not allocate: the name
/// lookups return views of static strings, spliced in with %.*s.
int format_event_row(char* buf, std::size_t size, const Event& e) {
  const std::string_view outcome = outcome_name(e.outcome);
  const std::string_view code =
      e.code == robust::Code::kNone ? std::string_view{} : robust::code_name(e.code);
  return std::snprintf(
      buf, size, "  %6llu  tid %-3u  %-20s %-10s start %10.6fs  dur %9.3fms  %-9.*s %.*s\n",
      static_cast<unsigned long long>(e.seq), e.tid, e.net, e.phase,
      static_cast<double>(e.start_ns) * 1e-9, static_cast<double>(e.dur_ns) * 1e-6,
      static_cast<int>(outcome.size()), outcome.data(), static_cast<int>(code.size()),
      code.data());
}

}  // namespace

std::string_view outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kRunning: return "running";
    case Outcome::kOk: return "ok";
    case Outcome::kFailed: return "failed";
    case Outcome::kTimeout: return "timeout";
    case Outcome::kCancelled: return "cancelled";
  }
  return "unknown";
}

Recorder::Recorder(std::size_t capacity_per_thread)
    : recorder_id_(next_recorder_id.fetch_add(1)),
      capacity_(capacity_per_thread == 0 ? 1 : capacity_per_thread),
      epoch_ns_(steady_now_ns()) {}

Recorder::Buffer& Recorder::local_buffer() {
  // Same per-thread registration scheme as TraceCollector::local_buffer():
  // a thread-local (recorder id -> buffer) cache, shared ownership so the
  // ring outlives whichever of {thread, recorder} goes first.
  struct TlEntry {
    std::uint64_t recorder_id;
    std::shared_ptr<Buffer> buffer;
  };
  thread_local std::vector<TlEntry> tl_entries;
  for (const TlEntry& e : tl_entries)
    if (e.recorder_id == recorder_id_) return *e.buffer;

  auto buffer = std::make_shared<Buffer>();
  buffer->ring.reserve(capacity_);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffer->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    buffers_.push_back(buffer);
  }
  tl_entries.push_back({recorder_id_, buffer});
  return *buffer;
}

Recorder::Handle Recorder::begin(std::string_view net, const char* phase) {
  if (!enabled()) return {};
  Buffer& buf = local_buffer();
  Event e;
  copy_net_name(e.net, net);
  e.phase = phase;
  e.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  e.start_ns = steady_now_ns() - epoch_ns_;
  e.dur_ns = 0;
  e.outcome = Outcome::kRunning;
  e.code = robust::Code::kNone;
  e.tid = buf.tid;

  Handle h;
  h.buffer = &buf;
  h.seq = e.seq;
  h.start_ns = e.start_ns;
  {
    const std::lock_guard<std::mutex> lock(buf.mutex);
    if (buf.ring.size() < capacity_) {
      h.slot = buf.ring.size();
      buf.ring.push_back(e);
    } else {
      h.slot = buf.next;
      buf.ring[buf.next] = e;
      evicted_.fetch_add(1, std::memory_order_relaxed);
    }
    buf.next = (h.slot + 1) % capacity_;
    ++buf.written;
  }
  return h;
}

void Recorder::end(Handle& handle, Outcome outcome, robust::Code code) {
  if (!handle.buffer) return;
  Buffer& buf = *static_cast<Buffer*>(handle.buffer);
  const std::uint64_t dur = steady_now_ns() - epoch_ns_ - handle.start_ns;
  {
    const std::lock_guard<std::mutex> lock(buf.mutex);
    Event& e = buf.ring[handle.slot];
    if (e.seq == handle.seq) {  // not lapped by the ring in the meantime
      e.outcome = outcome;
      e.code = code;
      e.dur_ns = dur;
    }
  }
  handle.buffer = nullptr;
}

void Recorder::record(std::string_view net, const char* phase, Outcome outcome,
                      robust::Code code, std::uint64_t dur_ns) {
  Handle h = begin(net, phase);
  if (!h.buffer) return;
  Buffer& buf = *static_cast<Buffer*>(h.buffer);
  const std::lock_guard<std::mutex> lock(buf.mutex);
  Event& e = buf.ring[h.slot];
  if (e.seq == h.seq) {
    e.outcome = outcome;
    e.code = code;
    e.dur_ns = dur_ns;
  }
}

std::vector<Event> Recorder::events() const {
  std::vector<Event> all;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buf : buffers_) {
      const std::lock_guard<std::mutex> buf_lock(buf->mutex);
      all.insert(all.end(), buf->ring.begin(), buf->ring.end());
    }
  }
  std::sort(all.begin(), all.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return all;
}

std::string Recorder::format_text() const {
  const std::vector<Event> all = events();
  std::string out = "flight recorder: " + std::to_string(all.size()) + " event(s) retained, " +
                    std::to_string(evicted()) + " evicted (ring capacity " +
                    std::to_string(capacity_) + "/thread)\n";
  char row[192];
  for (const Event& e : all) {
    format_event_row(row, sizeof(row), e);
    out += row;
  }
  return out;
}

std::string Recorder::to_json() const {
  const std::vector<Event> all = events();
  std::string out = "{\"schema_version\":1,\"evicted\":" + std::to_string(evicted()) +
                    ",\"events\":[";
  bool first = true;
  for (const Event& e : all) {
    if (!first) out += ',';
    first = false;
    out += "{\"seq\":" + std::to_string(e.seq);
    out += ",\"tid\":" + std::to_string(e.tid);
    out += ",\"net\":";
    append_json_string(out, e.net);
    out += ",\"phase\":";
    append_json_string(out, e.phase);
    out += ",\"start_ns\":" + std::to_string(e.start_ns);
    out += ",\"dur_ns\":" + std::to_string(e.dur_ns);
    out += ",\"outcome\":";
    append_json_string(out, outcome_name(e.outcome));
    out += ",\"code\":";
    append_json_string(out, robust::code_name(e.code));
    out += '}';
  }
  out += "]}";
  return out;
}

bool Recorder::write(const std::string& path) const {
  if (path == "-") {
    const std::string body = to_json();
    std::fwrite(body.data(), 1, body.size(), stderr);
    std::fputc('\n', stderr);
    return true;
  }
  std::ofstream out(path);
  if (!out) return false;
  out << to_json() << '\n';
  return static_cast<bool>(out);
}

void Recorder::dump_signal(int fd) const {
  // Fatal-signal path: never block, never allocate.  A wait on a mutex a
  // dying thread holds would turn a crash into a hang, so everything is
  // try_lock and fixed stack buffers; skipped rings are reported as such.
  const auto emit = [fd](const char* text, std::size_t n) {
    // A failed write cannot be recovered from here; the cast mutes -Wunused.
    (void)::write(fd, text, n);
  };
  static const char kHeader[] = "flight recorder (signal dump):\n";
  emit(kHeader, sizeof(kHeader) - 1);
  if (!mutex_.try_lock()) {
    static const char kBusy[] = "  <recorder registration lock held; no dump>\n";
    emit(kBusy, sizeof(kBusy) - 1);
    return;
  }
  char row[192];
  for (const auto& buf : buffers_) {
    if (!buf->mutex.try_lock()) {
      const int n = std::snprintf(row, sizeof(row), "  tid %-3u <ring lock held; skipped>\n",
                                  buf->tid);
      emit(row, static_cast<std::size_t>(n));
      continue;
    }
    for (const Event& e : buf->ring) {
      const int n = format_event_row(row, sizeof(row), e);
      emit(row, static_cast<std::size_t>(n));
    }
    buf->mutex.unlock();
  }
  mutex_.unlock();
}

void Recorder::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buf : buffers_) {
    const std::lock_guard<std::mutex> buf_lock(buf->mutex);
    buf->ring.clear();
    buf->next = 0;
    buf->written = 0;
  }
  evicted_.store(0, std::memory_order_relaxed);
}

Recorder& recorder() {
  static Recorder instance;
  return instance;
}

}  // namespace rct::obs::flight
