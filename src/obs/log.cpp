#include "obs/log.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/metrics.hpp"

namespace rct::obs::log {
namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

std::uint64_t wall_now_us() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::system_clock::now().time_since_epoch())
                                        .count());
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_field_value(std::string& out, const Field& field) {
  switch (field.kind) {
    case Field::Kind::kString:
      append_json_string(out, field.str);
      break;
    case Field::Kind::kFloat: {
      if (!std::isfinite(field.f)) {
        out += "null";
        break;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", field.f);
      out += buf;
      break;
    }
    case Field::Kind::kUint:
      out += std::to_string(field.u);
      break;
    case Field::Kind::kInt:
      out += std::to_string(field.i);
      break;
    case Field::Kind::kBool:
      out += field.b ? "true" : "false";
      break;
  }
}

}  // namespace

std::string_view level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: return "off";
  }
  return "info";
}

bool parse_level(std::string_view text, Level& out) {
  for (const Level l : {Level::kDebug, Level::kInfo, Level::kWarn, Level::kError, Level::kOff}) {
    if (text == level_name(l)) {
      out = l;
      return true;
    }
  }
  return false;
}

Logger::~Logger() { close(); }

bool Logger::open(const std::string& path) {
  std::FILE* next = nullptr;
  bool next_is_stderr = false;
  if (path == "-") {
    next = stderr;
    next_is_stderr = true;
  } else {
    next = std::fopen(path.c_str(), "w");
    if (next == nullptr) return false;
  }
  close();
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_ = next;
  sink_is_stderr_ = next_is_stderr;
  tokens_ = static_cast<double>(rate_);
  last_refill_ns_ = steady_now_ns();
  dropped_unreported_ = 0;
  dropped_total_.store(0, std::memory_order_relaxed);
  sink_armed_.store(true, std::memory_order_release);
  return true;
}

void Logger::close() {
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  if (sink_ == nullptr) return;
  sink_armed_.store(false, std::memory_order_release);
  report_drops_locked();
  std::fflush(sink_);
  if (!sink_is_stderr_) std::fclose(sink_);
  sink_ = nullptr;
  sink_is_stderr_ = false;
}

void Logger::set_rate_limit(std::uint64_t events_per_second) {
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  rate_ = events_per_second;
  tokens_ = static_cast<double>(rate_);
  last_refill_ns_ = steady_now_ns();
}

bool Logger::take_token_locked() {
  if (rate_ == 0) return true;
  const std::uint64_t now = steady_now_ns();
  const double elapsed_s = static_cast<double>(now - last_refill_ns_) * 1e-9;
  last_refill_ns_ = now;
  tokens_ = std::min(tokens_ + elapsed_s * static_cast<double>(rate_),
                     static_cast<double>(rate_));  // burst = 1 s of rate
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

void Logger::report_drops_locked() {
  if (dropped_unreported_ == 0 || sink_ == nullptr) return;
  std::string line = "{\"ts_us\":" + std::to_string(wall_now_us()) +
                     ",\"level\":\"warn\",\"event\":\"obs.log.dropped\",\"count\":" +
                     std::to_string(dropped_unreported_) + "}\n";
  std::fwrite(line.data(), 1, line.size(), sink_);
  dropped_unreported_ = 0;
}

void Logger::emit(Level level, const char* event, std::initializer_list<Field> fields) {
  if (!enabled(level)) return;
  write_line(level, event, fields.begin(), fields.size());
}

void Logger::write_line(Level level, const char* event, const Field* fields,
                        std::size_t n_fields) {
  // Serialize outside the lock; the envelope keys come first and caller
  // fields are appended flat (reserved keys: ts_us, level, event).
  std::string line = "{\"ts_us\":" + std::to_string(wall_now_us()) + ",\"level\":\"";
  line += level_name(level);
  line += "\",\"event\":";
  append_json_string(line, event);
  for (std::size_t i = 0; i < n_fields; ++i) {
    line += ',';
    append_json_string(line, fields[i].key);
    line += ':';
    append_field_value(line, fields[i]);
  }
  line += "}\n";

  const std::lock_guard<std::mutex> lock(sink_mutex_);
  if (sink_ == nullptr) return;  // closed between the check and here
  if (!take_token_locked()) {
    ++dropped_unreported_;
    dropped_total_.fetch_add(1, std::memory_order_relaxed);
    static Counter& drop_counter = registry().counter("obs.log.dropped");
    drop_counter.add();
    return;
  }
  report_drops_locked();  // a token freed up; surface any shed interval first
  std::fwrite(line.data(), 1, line.size(), sink_);
}

Logger& logger() {
  static Logger instance;
  return instance;
}

}  // namespace rct::obs::log
