#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace rct::obs {
namespace {

/// JSON number formatter shared by the snapshot writer: shortest round-trip
/// form would be ideal, but %.17g is stable and always parses back exactly.
void append_json_double(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; snapshots use null
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Relaxed CAS add for atomic<double> (fetch_add on floating atomics is
/// C++20 but this spells out the loop the TSan-checked path actually runs).
void atomic_add(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Prometheus metric name for a dotted registry name: `rct_` prefix, every
/// character outside [a-zA-Z0-9_] mapped to '_'.
std::string prometheus_name(std::string_view name) {
  std::string out = "rct_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

/// Writes `body` to `path`, with "-" meaning stderr (pipelines capture
/// telemetry without temp files); false on I/O error.
bool write_text(const std::string& path, const std::string& body) {
  if (path == "-") {
    std::fwrite(body.data(), 1, body.size(), stderr);
    return true;
  }
  std::ofstream out(path);
  if (!out) return false;
  out << body;
  return static_cast<bool>(out);
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
    throw std::invalid_argument("Histogram: bounds must be strictly increasing");
}

void Histogram::observe(double v) {
  // First bucket with bound >= v (le semantics); past-the-end = overflow.
  const std::size_t i = std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::min() const {
  const double m = min_.load(std::memory_order_relaxed);
  return std::isfinite(m) ? m : 0.0;
}

double Histogram::max() const {
  const double m = max_.load(std::memory_order_relaxed);
  return std::isfinite(m) ? m : 0.0;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  // One coherent local copy of the counts: the total is derived from the
  // same loads that position the rank, so a concurrent observe() can only
  // shift the estimate by the in-flight samples, never corrupt it.
  const std::size_t n = bounds_.size();
  std::vector<std::uint64_t> counts(n + 1);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= n; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double lo_obs = min();
  const double hi_obs = max();
  const double rank = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i <= n; ++i) {
    if (counts[i] == 0) continue;
    if (static_cast<double>(cum + counts[i]) >= rank) {
      // The open edges of the distribution (below the first bound, above
      // the last) have no finite bucket width; the observed extrema are
      // the tightest monotone caps available.
      const double lo = i == 0 ? std::min(lo_obs, bounds_.empty() ? lo_obs : bounds_[0])
                               : bounds_[i - 1];
      const double hi = i < n ? bounds_[i] : hi_obs;
      const double frac = (rank - static_cast<double>(cum)) / static_cast<double>(counts[i]);
      return std::clamp(lo + (hi - lo) * frac, lo_obs, hi_obs);
    }
    cum += counts[i];
  }
  return hi_obs;
}

const std::vector<double>& Histogram::default_latency_bounds() {
  // 1-2-5 series, 1 us .. 50 s: per-net analysis sits in the us..ms decades,
  // whole-batch phases in the ms..s decades.
  static const std::vector<double> kBounds = [] {
    std::vector<double> b;
    for (double decade = 1e-6; decade < 20.0; decade *= 10.0)
      for (const double m : {1.0, 2.0, 5.0}) b.push_back(decade * m);
    return b;
  }();
  return kBounds;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return histogram(name, Histogram::default_latency_bounds());
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  return *it->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"schema_version\":1,\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':' + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_json_double(out, g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"buckets\":[";
    const auto bounds = h->bounds();
    for (std::size_t i = 0; i <= bounds.size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"le\":";
      if (i < bounds.size())
        append_json_double(out, bounds[i]);
      else
        out += "\"inf\"";
      out += ",\"count\":" + std::to_string(h->bucket_count(i)) + '}';
    }
    out += "],\"count\":" + std::to_string(h->count());
    out += ",\"sum\":";
    append_json_double(out, h->sum());
    out += ",\"min\":";
    append_json_double(out, h->min());
    out += ",\"max\":";
    append_json_double(out, h->max());
    out += ",\"p50\":";
    append_json_double(out, h->quantile(0.50));
    out += ",\"p95\":";
    append_json_double(out, h->quantile(0.95));
    out += ",\"p99\":";
    append_json_double(out, h->quantile(0.99));
    out += '}';
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::to_prometheus() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  const auto emit_header = [&out](const std::string& prom_name, const std::string& raw_name,
                                  const char* type) {
    out += "# HELP " + prom_name + " rct " + type + " " + raw_name + "\n";
    out += "# TYPE " + prom_name + " " + type + "\n";
  };
  const auto number = [](double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  for (const auto& [name, c] : counters_) {
    const std::string prom = prometheus_name(name);
    emit_header(prom, name, "counter");
    out += prom + ' ' + std::to_string(c->value()) + '\n';
  }
  for (const auto& [name, g] : gauges_) {
    const std::string prom = prometheus_name(name);
    emit_header(prom, name, "gauge");
    out += prom + ' ' + number(g->value()) + '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const std::string prom = prometheus_name(name);
    emit_header(prom, name, "histogram");
    // Prometheus buckets are cumulative, ours are per-bucket: accumulate.
    const auto bounds = h->bounds();
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cum += h->bucket_count(i);
      char le[40];
      std::snprintf(le, sizeof(le), "%g", bounds[i]);
      out += prom + "_bucket{le=\"" + le + "\"} " + std::to_string(cum) + '\n';
    }
    cum += h->bucket_count(bounds.size());
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(cum) + '\n';
    out += prom + "_sum " + number(h->sum()) + '\n';
    // _count repeats the +Inf cumulative count (required equal by the
    // exposition format), not a separate count_ load that could race ahead.
    out += prom + "_count " + std::to_string(cum) + '\n';
  }
  return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  return write_text(path, to_json() + '\n');
}

bool MetricsRegistry::write_prometheus(const std::string& path) const {
  return write_text(path, to_prometheus());
}

MetricsRegistry& registry() {
  static MetricsRegistry instance;
  return instance;
}

#if RCT_OBS_ENABLED
ScopedTimer::ScopedTimer(Histogram& histogram)
    : histogram_(histogram),
      start_ns_(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count())) {}

ScopedTimer::~ScopedTimer() {
  const auto now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  histogram_.observe(static_cast<double>(now - start_ns_) * 1e-9);
}
#endif

}  // namespace rct::obs
