#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

namespace rct::obs {
namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

std::atomic<std::uint64_t> next_collector_id{1};

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Microseconds with nanosecond precision, fixed format (trace viewers do
/// not accept exponents in ts/dur).
void append_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

TraceCollector::TraceCollector()
    : collector_id_(next_collector_id.fetch_add(1)), epoch_ns_(steady_now_ns()) {}

std::uint64_t TraceCollector::now_ns() const { return steady_now_ns() - epoch_ns_; }

TraceCollector::Buffer& TraceCollector::local_buffer() {
  // Per-thread cache of (collector id -> buffer).  A thread touches at most
  // a handful of collectors (the global one plus test-local ones), so a
  // linear scan beats a map.  Entries hold shared_ptrs: the buffer outlives
  // whichever of {thread, collector} goes first.
  struct TlEntry {
    std::uint64_t collector_id;
    std::shared_ptr<Buffer> buffer;
  };
  thread_local std::vector<TlEntry> tl_entries;
  for (const TlEntry& e : tl_entries)
    if (e.collector_id == collector_id_) return *e.buffer;

  auto buffer = std::make_shared<Buffer>();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffer->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    buffers_.push_back(buffer);
  }
  tl_entries.push_back({collector_id_, buffer});
  return *buffer;
}

void TraceCollector::record(const char* name, const char* cat, std::uint64_t ts_ns,
                            std::uint64_t dur_ns, std::string detail) {
  Buffer& buf = local_buffer();
  const std::lock_guard<std::mutex> lock(buf.mutex);  // uncontended except at export
  buf.events.push_back(TraceEvent{name, cat, std::move(detail), ts_ns, dur_ns, buf.tid});
}

std::vector<TraceEvent> TraceCollector::events() const {
  std::vector<TraceEvent> all;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buf : buffers_) {
      const std::lock_guard<std::mutex> buf_lock(buf->mutex);
      all.insert(all.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts_ns < b.ts_ns; });
  return all;
}

void TraceCollector::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buf : buffers_) {
    const std::lock_guard<std::mutex> buf_lock(buf->mutex);
    buf->events.clear();
  }
}

std::string TraceCollector::to_chrome_json() const {
  const std::vector<TraceEvent> all = events();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // One thread_name metadata event per tid that recorded anything.
  std::vector<std::uint32_t> tids;
  for (const TraceEvent& e : all) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  for (const std::uint32_t tid : tids) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"args\":{\"name\":\"rct-thread-" + std::to_string(tid) + "\"}}";
  }
  for (const TraceEvent& e : all) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, e.name);
    out += ",\"cat\":";
    append_json_string(out, e.cat);
    out += ",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(e.tid) + ",\"ts\":";
    append_us(out, e.ts_ns);
    out += ",\"dur\":";
    append_us(out, e.dur_ns);
    if (!e.detail.empty()) {
      out += ",\"args\":{\"detail\":";
      append_json_string(out, e.detail);
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

bool TraceCollector::write_chrome_json(const std::string& path) const {
  if (path == "-") {  // stderr, so pipelines capture the trace without temp files
    const std::string body = to_chrome_json();
    std::fwrite(body.data(), 1, body.size(), stderr);
    std::fputc('\n', stderr);
    return true;
  }
  std::ofstream out(path);
  if (!out) return false;
  out << to_chrome_json() << '\n';
  return static_cast<bool>(out);
}

TraceCollector& tracer() {
  static TraceCollector instance;
  return instance;
}

#if RCT_OBS_ENABLED
Span::Span(const char* name, const char* cat, std::string_view detail)
    : name_(name), cat_(cat), armed_(tracer().enabled()) {
  if (!armed_) return;
  detail_ = std::string(detail);
  start_ns_ = tracer().now_ns();
}

Span::~Span() {
  if (!armed_) return;
  TraceCollector& t = tracer();
  t.record(name_, cat_, start_ns_, t.now_ns() - start_ns_, std::move(detail_));
}
#endif

}  // namespace rct::obs
