#pragma once
// obs::log — leveled, thread-safe, rate-limited structured event log.
//
// Events are JSON lines with a fixed envelope plus flat caller fields:
//
//   {"ts_us":1754640000000000,"level":"warn","event":"engine.net.failed",
//    "net":"clk_mesh_17","code":"timeout","phase":"analyze"}
//
// Event names follow the registry/span convention (`layer.component.op`),
// so a metrics counter, a trace span and a log event about the same
// operation line up by name.  The sink is opt-in at runtime: until
// logger().open() succeeds (the CLI arms it for --log-out) every call site
// is one relaxed atomic load and an early return — no clock read, no field
// materialization beyond building the initializer list, no allocation.
// Call sites that construct expensive field values should guard with
// enabled(level) first; the engine's adoption sites are all on cold paths
// (batch boundaries and failure records), not per-row loops.
//
// Rate limiting: a token bucket (default 10000 events/s, burst = 1s of
// rate) sheds load instead of stalling the engine when a pathological deck
// fails on every net.  Dropped events are counted (obs.log.dropped in the
// metrics registry) and reported as one `obs.log.dropped` event when the
// bucket refills and at close(), so a postmortem can see that — and how
// much — the log lied by omission.
//
// Unlike spans, logging is NOT compiled out by -DRCT_OBS=OFF: like
// counters, it stays runtime-opt-in in every build (the disabled cost is
// one atomic load; the paid cost only exists when the user asked for a
// log).

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>

namespace rct::obs::log {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Stable lowercase name ("debug", "info", "warn", "error").
[[nodiscard]] std::string_view level_name(Level level);

/// Parses a --log-level value; returns false (leaving `out` untouched) on
/// an unknown name.
[[nodiscard]] bool parse_level(std::string_view text, Level& out);

/// One structured field.  Keys must be string literals (stored by
/// pointer); string values are captured by view and serialized before the
/// emitting call returns.
struct Field {
  enum class Kind { kString, kFloat, kUint, kInt, kBool };

  constexpr Field(const char* k, std::string_view v)
      : key(k), kind(Kind::kString), str(v) {}
  constexpr Field(const char* k, const char* v) : key(k), kind(Kind::kString), str(v) {}
  constexpr Field(const char* k, double v) : key(k), kind(Kind::kFloat), f(v) {}
  constexpr Field(const char* k, std::uint64_t v) : key(k), kind(Kind::kUint), u(v) {}
  constexpr Field(const char* k, int v)
      : key(k), kind(Kind::kInt), i(static_cast<std::int64_t>(v)) {}
  constexpr Field(const char* k, bool v) : key(k), kind(Kind::kBool), b(v) {}

  const char* key;
  Kind kind;
  std::string_view str{};
  double f = 0.0;
  std::uint64_t u = 0;
  std::int64_t i = 0;
  bool b = false;
};

class Logger {
 public:
  Logger() = default;
  ~Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Opens the sink: a file path, or "-" for stderr.  Returns false (sink
  /// unchanged) when the path cannot be opened.  Reopening closes the
  /// previous sink first.
  bool open(const std::string& path);

  /// Emits the pending drop summary (if any), flushes and detaches the
  /// sink.  Safe to call with no sink.
  void close();

  void set_level(Level level) { level_.store(static_cast<int>(level), std::memory_order_relaxed); }
  [[nodiscard]] Level level() const {
    return static_cast<Level>(level_.load(std::memory_order_relaxed));
  }

  /// Token-bucket rate limit in events/second; 0 disables the limit.
  void set_rate_limit(std::uint64_t events_per_second);

  /// True when an event at `level` would actually be written.  The cheap
  /// guard for call sites whose fields are expensive to build.
  [[nodiscard]] bool enabled(Level level) const {
    return sink_armed_.load(std::memory_order_relaxed) &&
           static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  /// Writes one event (a JSON line).  `event` must be a static string in
  /// `layer.component.op` form.  No-op when not enabled(level).
  void emit(Level level, const char* event, std::initializer_list<Field> fields = {});

  /// Events shed by the rate limiter since the logger was opened.
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_total_.load(std::memory_order_relaxed);
  }

 private:
  /// Serializes and writes under sink_mutex_; assumes enabled() was checked.
  void write_line(Level level, const char* event, const Field* fields, std::size_t n_fields);
  /// Takes one token; false = shed this event.  Caller holds sink_mutex_.
  bool take_token_locked();
  /// Emits the obs.log.dropped summary event.  Caller holds sink_mutex_.
  void report_drops_locked();

  std::atomic<bool> sink_armed_{false};
  std::atomic<int> level_{static_cast<int>(Level::kInfo)};
  std::atomic<std::uint64_t> dropped_total_{0};

  mutable std::mutex sink_mutex_;
  std::FILE* sink_ = nullptr;   ///< owned unless sink_is_stderr_
  bool sink_is_stderr_ = false;
  // Token bucket (guarded by sink_mutex_): refilled from the steady clock
  // at rate_ tokens/s, capped at a 1-second burst.
  std::uint64_t rate_ = 10000;
  double tokens_ = 0.0;
  std::uint64_t last_refill_ns_ = 0;
  std::uint64_t dropped_unreported_ = 0;
};

/// The process-global logger every layer emits into.
[[nodiscard]] Logger& logger();

// Convenience wrappers over logger().emit().
inline void debug(const char* event, std::initializer_list<Field> fields = {}) {
  logger().emit(Level::kDebug, event, fields);
}
inline void info(const char* event, std::initializer_list<Field> fields = {}) {
  logger().emit(Level::kInfo, event, fields);
}
inline void warn(const char* event, std::initializer_list<Field> fields = {}) {
  logger().emit(Level::kWarn, event, fields);
}
inline void error(const char* event, std::initializer_list<Field> fields = {}) {
  logger().emit(Level::kError, event, fields);
}

}  // namespace rct::obs::log
