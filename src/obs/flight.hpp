#pragma once
// obs::flight — per-thread flight recorder for postmortem triage.
//
// A fixed-capacity ring buffer of recent per-net events (net name, phase,
// duration, outcome, error code) per recording thread.  The engine records
// every analysis attempt while armed; the rings keep only the most recent
// `capacity_per_thread` events per thread, so a million-net batch costs a
// constant few tens of KB and the dump always shows what each worker was
// doing when a run died — no rerun with tracing needed.
//
// Events use fixed-size storage (truncated net name, static phase string):
// record() never allocates, so arming the recorder for every batch run is
// cheap enough to be the CLI default.  Each thread appends to its own
// mutex-guarded ring (uncontended except at dump), the same ownership
// scheme as the trace collector — rings outlive worker threads that exit
// before the dump.
//
// Dumps: format_text() is the human postmortem table (newest last),
// to_json() the machine form; write() accepts "-" for stderr.
// dump_signal() is the last-ditch path for fatal signals: it try_locks
// each ring (skipping any a dying thread still holds), renders into a
// stack buffer and write()s straight to an fd — no allocation, no
// blocking.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "robust/error.hpp"

namespace rct::obs::flight {

/// Where an attempt ended.  kRunning marks an event whose end() has not
/// happened yet — in a dump these are the nets in flight at the time.
enum class Outcome : std::uint8_t {
  kRunning,
  kOk,
  kFailed,
  kTimeout,
  kCancelled,
};

/// Stable lowercase name ("running", "ok", "failed", ...).
[[nodiscard]] std::string_view outcome_name(Outcome outcome);

/// One recorded attempt.  Plain data, fixed size.
struct Event {
  static constexpr std::size_t kNetCapacity = 48;  ///< includes the NUL

  char net[kNetCapacity];  ///< truncated net name, NUL-terminated
  const char* phase;       ///< static string: "analyze", "retry", "cancelled"
  std::uint64_t seq;       ///< global begin order (dense-ish, from 1)
  std::uint64_t start_ns;  ///< steady-clock ns at begin, recorder-epoch-relative
  std::uint64_t dur_ns;    ///< 0 while kRunning
  Outcome outcome;
  robust::Code code;       ///< kNone unless the attempt failed
  std::uint32_t tid;       ///< recorder-assigned thread id (dense, from 1)
};

class Recorder {
 public:
  explicit Recorder(std::size_t capacity_per_thread = 128);
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Arms/disarms recording.  begin()/record() while disarmed cost one
  /// relaxed atomic load.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Ticket connecting a begin() to its end(); must stay on the issuing
  /// thread.  A default-constructed handle (or one from a disarmed
  /// recorder) makes end() a no-op.
  class Handle {
   public:
    Handle() = default;
    [[nodiscard]] explicit operator bool() const { return buffer != nullptr; }

   private:
    friend class Recorder;
    void* buffer = nullptr;   ///< Recorder::Buffer the event lives in
    std::size_t slot = 0;     ///< ring index of the event
    std::uint64_t seq = 0;    ///< guards against the ring lapping the slot
    std::uint64_t start_ns = 0;
  };

  /// Records a kRunning event for (net, phase); end() completes it in
  /// place.  `phase` must be a static string.
  [[nodiscard]] Handle begin(std::string_view net, const char* phase);
  void end(Handle& handle, Outcome outcome, robust::Code code = robust::Code::kNone);

  /// One-shot event with a known duration (e.g. a cancellation record).
  void record(std::string_view net, const char* phase, Outcome outcome, robust::Code code,
              std::uint64_t dur_ns);

  /// All retained events, merged across threads, ordered by begin sequence.
  [[nodiscard]] std::vector<Event> events() const;
  /// Events evicted by ring wrap-around since the last clear().
  [[nodiscard]] std::uint64_t evicted() const { return evicted_.load(std::memory_order_relaxed); }

  /// Human postmortem table, newest event last; names the in-flight and
  /// failed nets with their phase timings.
  [[nodiscard]] std::string format_text() const;
  /// {"schema_version":1,"evicted":n,"events":[{...}]} in begin order.
  [[nodiscard]] std::string to_json() const;
  /// Writes to_json() to `path` ("-" = stderr); false on I/O error.
  bool write(const std::string& path) const;

  /// Best-effort text dump for signal handlers: try_lock per ring, fixed
  /// stack buffers, raw write() to `fd`.  Rings whose lock is held by a
  /// (dying) recording thread are skipped, never waited on.
  void dump_signal(int fd) const;

  void clear();

 private:
  struct Buffer {
    std::mutex mutex;
    std::vector<Event> ring;   ///< capacity-sized once the first event lands
    std::size_t next = 0;      ///< ring write cursor
    std::uint64_t written = 0; ///< total events ever written to this ring
    std::uint32_t tid = 0;
  };

  Buffer& local_buffer();
  /// Appends one event to `buf` (caller fills everything but tid).
  void push(Buffer& buf, const Event& event);

  const std::uint64_t recorder_id_;  ///< distinguishes recorders in TL caches
  const std::size_t capacity_;
  const std::uint64_t epoch_ns_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<std::uint32_t> next_tid_{1};
  std::atomic<std::uint64_t> evicted_{0};
  mutable std::mutex mutex_;  ///< guards buffers_ (registration + dump)
  std::vector<std::shared_ptr<Buffer>> buffers_;
};

/// The process-global recorder the engine records into.
[[nodiscard]] Recorder& recorder();

}  // namespace rct::obs::flight
