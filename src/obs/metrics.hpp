#pragma once
// obs — first-class measurement layer: a process-global MetricsRegistry of
// named counters, gauges and fixed-bucket latency histograms.
//
// Every instrument is a plain struct of atomics mutated with relaxed
// operations, so concurrent updates from a thread pool never take a lock;
// the registry's mutex is touched only on the first lookup of a name (hot
// paths cache the returned reference, typically in a function-local
// static).  References returned by the registry stay valid for the
// registry's lifetime — reset() zeroes values, it never invalidates.
//
// Naming convention (shared with spans, see trace.hpp): dotted
// `layer.component.op[.unit]`, e.g. `engine.cache.hits`,
// `engine.net.analyze_seconds`.  Latency histograms carry a `_seconds`
// suffix and observe seconds.
//
// Snapshots: to_json() serializes every instrument into a stable
// machine-readable schema (schema_version 1, documented in README.md);
// `rct batch --metrics-out FILE` and bench/perf_report write it to disk.
//
// Compile-time switch: building with -DRCT_OBS_ENABLED=0 compiles out the
// *timing* half of the layer (Span / ScopedTimer stop reading the clock or
// recording anything, see trace.hpp) so the disabled overhead is provably
// near zero.  Counters and gauges stay live in both modes: they are one
// relaxed atomic add each and double as the engine's EngineStats source of
// truth.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#ifndef RCT_OBS_ENABLED
#define RCT_OBS_ENABLED 1
#endif

namespace rct::obs {

/// Monotonic event count.  add() is one relaxed atomic add.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level (pool size, max moment order...).  set()/add() are
/// lock-free; add() is a CAS loop so it is exact under contention.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  /// Raises the gauge to v when v is larger (CAS max; high-water marks).
  void max_of(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with Prometheus `le` semantics: a sample lands in
/// the first bucket whose upper bound is >= the value; samples above the
/// last bound land in the implicit +inf overflow bucket.  Bucket counts,
/// count, sum, min and max are all atomics, so observe() never locks.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing; throws otherwise.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  /// Finite upper bounds (the +inf bucket is implicit at index bounds().size()).
  [[nodiscard]] std::span<const double> bounds() const { return bounds_; }
  /// Count in bucket i; i == bounds().size() is the +inf overflow bucket.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest observed value; 0 when count() == 0.
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Quantile estimate (q in [0,1], clamped) by monotone linear
  /// interpolation over the bucket counts, Prometheus histogram_quantile
  /// style: the rank q*count is located in the cumulative distribution and
  /// interpolated between the bucket's edges.  The +inf bucket and the
  /// first bucket's open lower edge are capped at the observed max/min, and
  /// the result is clamped to [min(), max()] so degenerate distributions
  /// (all samples equal) come back exact.  Returns 0 for an empty
  /// histogram.  Safe to call concurrently with observe(): the estimate is
  /// computed from one coherent copy of the bucket counts.
  [[nodiscard]] double quantile(double q) const;

  void reset();

  /// Default bounds for `_seconds` latency histograms: a 1-2-5 series from
  /// 1 microsecond to 50 seconds (24 finite buckets).
  [[nodiscard]] static const std::vector<double>& default_latency_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1 (overflow)
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;  // +inf until first observe
  std::atomic<double> max_;  // -inf until first observe
};

/// Name -> instrument map.  Lookup takes one mutex (cache the reference in
/// hot code); mutation of the returned instruments is lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates; the reference stays valid for the registry's lifetime.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// Histogram with default_latency_bounds().
  [[nodiscard]] Histogram& histogram(std::string_view name);
  /// Histogram with custom bounds; the bounds of an already-existing name win.
  [[nodiscard]] Histogram& histogram(std::string_view name, std::vector<double> upper_bounds);

  /// Current value of a counter, or 0 when no such counter exists (so
  /// readers need not create instruments the writers never touched).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  /// Read-only histogram lookup: nullptr when no such histogram exists, so
  /// display paths (--progress, summaries) never create instruments.
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  /// Zeroes every instrument.  References handed out earlier stay valid.
  void reset();

  /// Full snapshot, schema_version 1:
  ///   {"schema_version":1,"counters":{...},"gauges":{...},
  ///    "histograms":{name:{"buckets":[{"le":b,"count":n}...],
  ///                        "count":n,"sum":s,"min":m,"max":M,
  ///                        "p50":q,"p95":q,"p99":q}}}
  /// Keys are sorted, so the layout is stable for a given instrument set.
  /// (p50/p95/p99 were added additively; consumers of the version-1 schema
  /// ignore unknown keys.)
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition (version 0.0.4): one `# HELP` + `# TYPE`
  /// pair per instrument, names prefixed `rct_` with dots mapped to
  /// underscores, histograms rendered with CUMULATIVE `le` buckets plus
  /// `_sum`/`_count`.  This is the `rct serve` scrape format; `rct batch
  /// --metrics-format prom` writes it instead of the JSON snapshot.
  [[nodiscard]] std::string to_prometheus() const;

  /// Writes to_json() (plus a trailing newline) to `path`; "-" means
  /// stderr.  False on I/O error.
  bool write_json(const std::string& path) const;

  /// Writes to_prometheus() to `path` ("-" = stderr); false on I/O error.
  bool write_prometheus(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  // std::map: reference-stable values, sorted iteration for free.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-global registry every layer records into.
[[nodiscard]] MetricsRegistry& registry();

/// RAII stopwatch: observes its lifetime in seconds into a histogram on
/// destruction.  Compiled to an empty shell when RCT_OBS_ENABLED=0 — no
/// clock read, no observe.
class ScopedTimer {
 public:
#if RCT_OBS_ENABLED
  explicit ScopedTimer(Histogram& histogram);
  ~ScopedTimer();
#else
  explicit ScopedTimer(Histogram&) {}
#endif
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

#if RCT_OBS_ENABLED
 private:
  Histogram& histogram_;
  std::uint64_t start_ns_;
#endif
};

}  // namespace rct::obs
