#pragma once
// Umbrella header: the whole RC-tree timing toolkit with one include.
//
//   #include "rct.hpp"
//
// Layering (each header is independently includable):
//   obs      -> metrics registry + scoped tracing (no deps)
//   linalg   -> numeric kernels
//   rctree   -> circuit model, parsers, generators, transforms
//   moments  -> O(N) moment engine
//   analysis -> shared per-tree derived arrays (TreeContext)
//   sim      -> exact / transient / distributed simulation
//   core     -> the paper's bounds and metrics
//   sta      -> gate-level timing built on the bounds
//   engine   -> parallel batch analysis (thread pool, net cache)

#include "analysis/tree_context.hpp"
#include "core/awe.hpp"
#include "core/bounds.hpp"
#include "core/effective_capacitance.hpp"
#include "core/elmore.hpp"
#include "core/generalized_input.hpp"
#include "core/metrics.hpp"
#include "core/penfield_rubinstein.hpp"
#include "core/pi_model.hpp"
#include "core/prima.hpp"
#include "core/report.hpp"
#include "core/sensitivity.hpp"
#include "core/variation.hpp"
#include "engine/batch.hpp"
#include "engine/net_cache.hpp"
#include "engine/thread_pool.hpp"
#include "moments/admittance.hpp"
#include "moments/central.hpp"
#include "moments/incremental.hpp"
#include "moments/path_tracing.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rctree/circuits.hpp"
#include "rctree/dot_export.hpp"
#include "rctree/generators.hpp"
#include "rctree/netlist_parser.hpp"
#include "rctree/rctree.hpp"
#include "rctree/routing.hpp"
#include "rctree/spef.hpp"
#include "rctree/transform.hpp"
#include "rctree/units.hpp"
#include "sim/ac.hpp"
#include "sim/convolve.hpp"
#include "sim/distributed.hpp"
#include "sim/rlc_line.hpp"
#include "sim/exact.hpp"
#include "sim/mna.hpp"
#include "sim/sources.hpp"
#include "sim/transient.hpp"
#include "sim/waveform.hpp"
#include "sim/waveform_io.hpp"
#include "sta/buffering.hpp"
#include "sta/design.hpp"
#include "sta/gate.hpp"
#include "sta/liberty.hpp"
#include "sta/nldm.hpp"
#include "sta/path_timer.hpp"
