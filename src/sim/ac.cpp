#include "sim/ac.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/root_find.hpp"

namespace rct::sim {

std::complex<double> AcAnalysis::transfer(NodeId node, double freq_hz) const {
  const auto a = exact_->step_coefficients(node);
  const auto& poles = exact_->poles();
  const std::complex<double> s(0.0, 2.0 * M_PI * freq_hz);
  std::complex<double> acc = 0.0;
  for (std::size_t j = 0; j < poles.size(); ++j) acc += a[j] * poles[j] / (s + poles[j]);
  return acc;
}

double AcAnalysis::magnitude(NodeId node, double freq_hz) const {
  return std::abs(transfer(node, freq_hz));
}

double AcAnalysis::phase(NodeId node, double freq_hz) const {
  return std::arg(transfer(node, freq_hz));
}

double AcAnalysis::bandwidth_3db(NodeId node) const {
  const double target = 1.0 / std::sqrt(2.0);
  // The slowest pole sets the scale; |H| is monotone decreasing for RC
  // trees, so bracket upward from f0.
  const double f0 = exact_->poles().front() / (2.0 * M_PI);
  auto f = [&](double freq) { return magnitude(node, freq) - target; };
  const auto root = linalg::bracket_and_solve(f, 0.01 * f0, 1e9 * f0);
  if (!root) throw std::runtime_error("bandwidth_3db: no -3dB crossing found");
  return *root;
}

std::vector<AcAnalysis::BodePoint> AcAnalysis::bode(NodeId node, double f_lo, double f_hi,
                                                    std::size_t points) const {
  if (!(f_lo > 0.0 && f_hi > f_lo) || points < 2)
    throw std::invalid_argument("bode: need 0 < f_lo < f_hi and points >= 2");
  std::vector<BodePoint> out;
  out.reserve(points);
  const double step = std::log(f_hi / f_lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    const double freq = f_lo * std::exp(step * static_cast<double>(i));
    const auto h = transfer(node, freq);
    out.push_back({freq, 20.0 * std::log10(std::abs(h)), std::arg(h) * 180.0 / M_PI});
  }
  return out;
}

}  // namespace rct::sim
