#pragma once
// Modified nodal analysis (MNA) assembly for RC trees:
//
//   C dv/dt = -G v + b * vin(t)
//
// where G is the (SPD) conductance matrix with the ideal source node
// eliminated, C the diagonal capacitance matrix, and b the injection vector
// (b_k = 1/R_k for nodes hanging directly off the source).
//
// Also provides the transfer-function moment series from the MNA view,
//   V(s) = (G + sC)^{-1} b  expanded about s = 0,
// which the test suite cross-checks against O(N) path tracing.

#include <vector>

#include "analysis/tree_context.hpp"
#include "linalg/dense_matrix.hpp"
#include "rctree/rctree.hpp"

namespace rct::sim {

/// Assembled MNA matrices for an RC tree.
struct Mna {
  linalg::Matrix conductance;     ///< G, size N x N
  std::vector<double> capacitance;  ///< diagonal of C
  std::vector<double> injection;    ///< b
};

/// Assembles G, diag(C) and b for the tree.
[[nodiscard]] Mna assemble_mna(const RCTree& tree);

/// Same for a context's tree (assembly reads raw R/C values only, so this
/// is a convenience forwarder for context-based pipelines).
[[nodiscard]] Mna assemble_mna(const analysis::TreeContext& context);

/// Transfer-function moment vectors m_0..m_order at every node from the MNA
/// view: m_0 = G^{-1} b (all ones), m_k = -G^{-1} C m_{k-1}.
/// Result[k][i] is the k-th moment at node i (H_i(s) = sum_k m_k[i] s^k).
[[nodiscard]] std::vector<std::vector<double>> mna_moments(const RCTree& tree, std::size_t order);

/// Same for a context's tree.
[[nodiscard]] std::vector<std::vector<double>> mna_moments(const analysis::TreeContext& context,
                                                           std::size_t order);

}  // namespace rct::sim
