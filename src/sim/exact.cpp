#include "sim/exact.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/root_find.hpp"
#include "linalg/symmetric_eigen.hpp"
#include "sim/mna.hpp"

namespace rct::sim {
namespace {

// -expm1(-x) = 1 - e^{-x}, accurate for small x.
double one_minus_exp(double x) { return -std::expm1(-x); }

}  // namespace

ExactAnalysis::ExactAnalysis(const RCTree& tree) {
  const std::size_t n = tree.size();
  Mna m = assemble_mna(tree);

  // Capacitance floor for zero-cap nodes (see header).
  double cmax = 0.0;
  for (double c : m.capacitance) cmax = std::max(cmax, c);
  if (cmax <= 0.0) throw std::invalid_argument("ExactAnalysis: tree has no capacitance");
  const double floor_c = 1e-9 * cmax;
  for (double& c : m.capacitance) c = std::max(c, floor_c);

  // Symmetrize: A = C^{-1/2} G C^{-1/2}.
  std::vector<double> inv_sqrt_c(n);
  for (std::size_t i = 0; i < n; ++i) inv_sqrt_c[i] = 1.0 / std::sqrt(m.capacitance[i]);
  linalg::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      a(i, j) = m.conductance(i, j) * inv_sqrt_c[i] * inv_sqrt_c[j];

  auto eig = linalg::symmetric_eigen(a);
  lambda_ = std::move(eig.eigenvalues);
  for (double l : lambda_)
    if (!(l > 0.0)) throw std::runtime_error("ExactAnalysis: non-positive pole (bad tree?)");

  // w = Q^T C^{-1/2} b ;  a_ij = inv_sqrt_c_i * Q_ij * w_j / lambda_j.
  std::vector<double> w(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      acc += eig.eigenvectors(i, j) * inv_sqrt_c[i] * m.injection[i];
    w[j] = acc;
  }
  coeff_.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      coeff_[i * n + j] = inv_sqrt_c[i] * eig.eigenvectors(i, j) * w[j] / lambda_[j];
}

std::vector<double> ExactAnalysis::step_coefficients(NodeId node) const {
  return {row(node), row(node) + size()};
}

double ExactAnalysis::step_response(NodeId node, double t) const {
  if (t <= 0.0) return 0.0;
  const double* a = row(node);
  double acc = 0.0;
  for (std::size_t j = 0; j < size(); ++j) acc += a[j] * std::exp(-lambda_[j] * t);
  return 1.0 - acc;
}

double ExactAnalysis::impulse_response(NodeId node, double t) const {
  if (t < 0.0) return 0.0;
  const double* a = row(node);
  double acc = 0.0;
  for (std::size_t j = 0; j < size(); ++j) acc += a[j] * lambda_[j] * std::exp(-lambda_[j] * t);
  return acc;
}

double ExactAnalysis::step_response_integral(NodeId node, double t) const {
  if (t <= 0.0) return 0.0;
  const double* a = row(node);
  double acc = t;
  for (std::size_t j = 0; j < size(); ++j)
    acc -= a[j] / lambda_[j] * one_minus_exp(lambda_[j] * t);
  return acc;
}

double ExactAnalysis::ramp_response(NodeId node, double t, double rise_time) const {
  if (!(rise_time > 0.0)) throw std::invalid_argument("ramp_response: rise_time must be > 0");
  const double upper = step_response_integral(node, t);
  const double lower = step_response_integral(node, t - rise_time);
  return (upper - lower) / rise_time;
}

double ExactAnalysis::response(NodeId node, const Source& input, double t) const {
  if (input.is_step()) return step_response(node, t);
  if (const auto* ramp = dynamic_cast<const SaturatedRampSource*>(&input))
    return ramp_response(node, t, ramp->rise_time());
  if (t <= 0.0) return 0.0;
  // v_o(t) = int_0^min(t, settle) v_i'(tau) s(t - tau) dtau  (+ tail where the
  // source has settled to 1, folded in because value() == 1 there and
  // derivative == 0).  Composite Simpson over the active span.
  const double hi = std::min(t, input.settle_time());
  if (hi <= 0.0) return step_response(node, t);  // source already settled at 0+
  const std::size_t panels = 1 << 13;
  const double h = hi / static_cast<double>(panels);
  auto f = [&](double tau) { return input.derivative(tau) * step_response(node, t - tau); };
  double acc = f(0.0) + f(hi);
  for (std::size_t k = 1; k < panels; ++k) acc += (k % 2 ? 4.0 : 2.0) * f(h * static_cast<double>(k));
  double integral = acc * h / 3.0;
  // If the source settled before t, the remaining input mass is exactly the
  // derivative integral = 1 over [0, hi]; nothing further to add — the step
  // convolution above already accounts for all of v'.
  return integral;
}

double ExactAnalysis::step_delay(NodeId node, double fraction) const {
  if (!(fraction > 0.0 && fraction < 1.0))
    throw std::invalid_argument("step_delay: fraction must be in (0,1)");
  const double tau = dominant_time_constant();
  auto f = [&](double t) { return step_response(node, t) - fraction; };
  linalg::RootOptions opt;
  opt.x_tol = 1e-12 * tau;  // scale-aware: circuits live at ps..us scales
  const auto root = linalg::bracket_and_solve(f, tau, 1e6 * tau, opt);
  if (!root) throw std::runtime_error("step_delay: crossing not found");
  return *root;
}

double ExactAnalysis::response_crossing(NodeId node, const Source& input,
                                        double fraction) const {
  if (input.is_step()) return step_delay(node, fraction);
  if (!(fraction > 0.0 && fraction < 1.0))
    throw std::invalid_argument("response_crossing: fraction must be in (0,1)");
  const double tau = dominant_time_constant() + input.settle_time();
  auto f = [&](double t) { return response(node, input, t) - fraction; };
  linalg::RootOptions opt;
  opt.x_tol = 1e-12 * tau;
  const auto root = linalg::bracket_and_solve(f, tau, 1e6 * tau, opt);
  if (!root) throw std::runtime_error("response_crossing: crossing not found");
  return *root;
}

double ExactAnalysis::delay_50_50(NodeId node, const Source& input) const {
  return response_crossing(node, input, 0.5) - input.crossing_time(0.5);
}

double ExactAnalysis::step_rise_time_10_90(NodeId node) const {
  return step_delay(node, 0.9) - step_delay(node, 0.1);
}

Waveform ExactAnalysis::step_waveform(NodeId node, const std::vector<double>& grid) const {
  std::vector<double> v(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) v[i] = step_response(node, grid[i]);
  return {grid, std::move(v)};
}

Waveform ExactAnalysis::impulse_waveform(NodeId node, const std::vector<double>& grid) const {
  std::vector<double> v(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) v[i] = impulse_response(node, grid[i]);
  return {grid, std::move(v)};
}

Waveform ExactAnalysis::response_waveform(NodeId node, const Source& input,
                                          const std::vector<double>& grid) const {
  std::vector<double> v(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) v[i] = response(node, input, grid[i]);
  return {grid, std::move(v)};
}

std::vector<double> ExactAnalysis::suggested_grid(std::size_t samples, double source_settle,
                                                  double pad) const {
  return uniform_grid(pad * (dominant_time_constant() + source_settle), samples);
}

double ExactAnalysis::distribution_moment(NodeId node, int q) const {
  if (q < 0) throw std::invalid_argument("distribution_moment: q must be >= 0");
  const double* a = row(node);
  double fact = 1.0;
  for (int k = 2; k <= q; ++k) fact *= k;
  double acc = 0.0;
  for (std::size_t j = 0; j < size(); ++j) acc += a[j] / std::pow(lambda_[j], q);
  return fact * acc;
}

}  // namespace rct::sim
