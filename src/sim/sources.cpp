#include "sim/sources.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "rctree/units.hpp"

namespace rct::sim {

SaturatedRampSource::SaturatedRampSource(double rise_time) : tr_(rise_time) {
  if (!(tr_ > 0.0)) throw std::invalid_argument("SaturatedRampSource: rise_time must be > 0");
}

double SaturatedRampSource::value(double t) const {
  if (t <= 0.0) return 0.0;
  if (t >= tr_) return 1.0;
  return t / tr_;
}

double SaturatedRampSource::derivative(double t) const {
  // Endpoint-inclusive (measure-zero choice) so quadrature over [0, tr]
  // integrates the box exactly.
  return (t >= 0.0 && t <= tr_) ? 1.0 / tr_ : 0.0;
}

DerivativeStats SaturatedRampSource::derivative_stats() const {
  // v' is a unit box on [0, tr]: mean tr/2, variance tr^2/12, symmetric.
  return {0.5 * tr_, tr_ * tr_ / 12.0, 0.0};
}

std::string SaturatedRampSource::describe() const {
  return "saturated ramp, tr=" + format_time(tr_);
}

RaisedCosineSource::RaisedCosineSource(double rise_time) : tr_(rise_time) {
  if (!(tr_ > 0.0)) throw std::invalid_argument("RaisedCosineSource: rise_time must be > 0");
}

double RaisedCosineSource::value(double t) const {
  if (t <= 0.0) return 0.0;
  if (t >= tr_) return 1.0;
  return 0.5 * (1.0 - std::cos(M_PI * t / tr_));
}

double RaisedCosineSource::derivative(double t) const {
  if (t <= 0.0 || t >= tr_) return 0.0;
  return 0.5 * M_PI / tr_ * std::sin(M_PI * t / tr_);
}

double RaisedCosineSource::crossing_time(double level) const {
  if (level <= 0.0) return 0.0;
  if (level >= 1.0) return tr_;
  return tr_ / M_PI * std::acos(1.0 - 2.0 * level);
}

DerivativeStats RaisedCosineSource::derivative_stats() const {
  // v'(t) = (pi / 2 tr) sin(pi t / tr) on [0, tr]: symmetric about tr/2 with
  // variance tr^2 (pi^2 - 8) / (4 pi^2).
  const double var = tr_ * tr_ * (M_PI * M_PI - 8.0) / (4.0 * M_PI * M_PI);
  return {0.5 * tr_, var, 0.0};
}

std::string RaisedCosineSource::describe() const {
  return "raised-cosine ramp, tr=" + format_time(tr_);
}

ExponentialSource::ExponentialSource(double tau) : tau_(tau) {
  if (!(tau_ > 0.0)) throw std::invalid_argument("ExponentialSource: tau must be > 0");
}

double ExponentialSource::value(double t) const {
  return t <= 0.0 ? 0.0 : 1.0 - std::exp(-t / tau_);
}

double ExponentialSource::derivative(double t) const {
  return t < 0.0 ? 0.0 : std::exp(-t / tau_) / tau_;
}

double ExponentialSource::crossing_time(double level) const {
  if (level <= 0.0) return 0.0;
  if (level >= 1.0) throw std::invalid_argument("ExponentialSource: level must be < 1");
  return -tau_ * std::log(1.0 - level);
}

DerivativeStats ExponentialSource::derivative_stats() const {
  // v' is an exponential density: mean tau, mu2 = tau^2, mu3 = 2 tau^3.
  return {tau_, tau_ * tau_, 2.0 * tau_ * tau_ * tau_};
}

double ExponentialSource::settle_time() const { return 40.0 * tau_; }

std::string ExponentialSource::describe() const {
  return "exponential, tau=" + format_time(tau_);
}

PwlSource::PwlSource(std::vector<Point> points) : pts_(std::move(points)) {
  if (pts_.size() < 2) throw std::invalid_argument("PwlSource: need >= 2 points");
  if (pts_.front().v != 0.0 || pts_.back().v != 1.0)
    throw std::invalid_argument("PwlSource: transition must go 0 -> 1");
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    if (!(pts_[i].t > pts_[i - 1].t))
      throw std::invalid_argument("PwlSource: times must be strictly increasing");
    if (pts_[i].v < pts_[i - 1].v)
      throw std::invalid_argument("PwlSource: values must be non-decreasing");
  }
}

double PwlSource::value(double t) const {
  if (t <= pts_.front().t) return 0.0;
  if (t >= pts_.back().t) return 1.0;
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    if (t <= pts_[i].t) {
      const double f = (t - pts_[i - 1].t) / (pts_[i].t - pts_[i - 1].t);
      return pts_[i - 1].v + f * (pts_[i].v - pts_[i - 1].v);
    }
  }
  return 1.0;
}

double PwlSource::derivative(double t) const {
  if (t < pts_.front().t || t > pts_.back().t) return 0.0;
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    if (t <= pts_[i].t)
      return (pts_[i].v - pts_[i - 1].v) / (pts_[i].t - pts_[i - 1].t);
  }
  return 0.0;
}

double PwlSource::crossing_time(double level) const {
  if (level <= 0.0) return pts_.front().t;
  if (level >= 1.0) return pts_.back().t;
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    if (pts_[i].v >= level && pts_[i - 1].v < level) {
      const double f = (level - pts_[i - 1].v) / (pts_[i].v - pts_[i - 1].v);
      return pts_[i - 1].t + f * (pts_[i].t - pts_[i - 1].t);
    }
  }
  return pts_.back().t;
}

DerivativeStats PwlSource::derivative_stats() const {
  // v' is piecewise constant; all moments are closed-form per segment.
  auto raw = [&](int k) {
    double acc = 0.0;
    for (std::size_t i = 1; i < pts_.size(); ++i) {
      const double slope = (pts_[i].v - pts_[i - 1].v) / (pts_[i].t - pts_[i - 1].t);
      acc += slope *
             (std::pow(pts_[i].t, k + 1) - std::pow(pts_[i - 1].t, k + 1)) /
             static_cast<double>(k + 1);
    }
    return acc;
  };
  const double m1 = raw(1);
  const double m2 = raw(2);
  const double m3 = raw(3);
  return {m1, m2 - m1 * m1, m3 - 3.0 * m1 * m2 + 2.0 * m1 * m1 * m1};
}

bool PwlSource::derivative_unimodal() const {
  // Slopes must rise to a peak then fall.
  std::vector<double> slopes;
  slopes.reserve(pts_.size() - 1);
  for (std::size_t i = 1; i < pts_.size(); ++i)
    slopes.push_back((pts_[i].v - pts_[i - 1].v) / (pts_[i].t - pts_[i - 1].t));
  std::size_t i = 1;
  while (i < slopes.size() && slopes[i] >= slopes[i - 1]) ++i;
  while (i < slopes.size() && slopes[i] <= slopes[i - 1]) ++i;
  return i == slopes.size();
}

std::string PwlSource::describe() const {
  std::ostringstream os;
  os << "pwl[" << pts_.size() << " pts, " << format_time(pts_.back().t - pts_.front().t) << "]";
  return os.str();
}

}  // namespace rct::sim
