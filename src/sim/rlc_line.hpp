#pragma once
// Uniform RLC ladder — the negative control for the paper's theorem.
//
// The Elmore bound rests on two RC-tree facts: monotone step responses and
// unimodal, positively-skewed impulse responses.  Adding series inductance
// breaks both: responses ring, h(t) oscillates, and the 50% delay is no
// longer bounded by the first moment (which inductance does not even
// enter).  This module simulates a driven uniform R-L-C ladder by
// trapezoidal integration of the state-space equations
//
//   L di_k/dt = v_{k-1} - v_k - R i_k        (v_0 = vin - R_d i_1)
//   C dv_k/dt = i_k - i_{k+1}
//
// so the repository can *measure* the failure instead of asserting it
// (bench/ablation_rlc_counterexample).

#include <cstddef>

#include "sim/waveform.hpp"

namespace rct::sim {

/// A driven uniform RLC ladder with an open far end.
class RlcLine {
 public:
  /// segments >= 1; r_seg >= 0 (0 gives a lossless LC ladder),
  /// l_seg > 0, c_seg > 0, r_driver >= 0.
  RlcLine(std::size_t segments, double r_driver, double r_seg, double l_seg, double c_seg);

  [[nodiscard]] std::size_t segments() const { return n_; }

  /// Elmore delay of the far node computed exactly as for the RC ladder
  /// (inductance does not contribute to the first moment).
  [[nodiscard]] double elmore_delay() const;

  /// A time long enough for the step response to settle (heuristic based on
  /// both the RC and LC timescales).
  [[nodiscard]] double settle_horizon() const;

  /// Far-end unit-step response, trapezoidal integration with `steps`
  /// uniform steps over [0, t_end].
  [[nodiscard]] Waveform step_response(double t_end, std::size_t steps = 4000) const;

  /// First 50% (or `fraction`) crossing of the far-end step response.
  /// Throws std::runtime_error if it never crosses within the horizon.
  [[nodiscard]] double step_delay(double fraction = 0.5) const;

  /// Peak value of the far-end step response (> 1 means overshoot/ringing).
  [[nodiscard]] double overshoot() const;

 private:
  std::size_t n_;
  double rd_;
  double r_;
  double l_;
  double c_;
};

}  // namespace rct::sim
