#pragma once
// Waveform CSV I/O: dump simulated waveforms for external plotting and read
// measured/golden waveforms back for comparison.
//
// Format: a header line "time,<name1>[,<name2>...]" followed by one row per
// sample; scientific notation, comma separated.  All waveforms in one file
// share the time base.

#include <string>
#include <string_view>
#include <vector>

#include "sim/waveform.hpp"

namespace rct::sim {

/// A named waveform bundle sharing one time base.
struct WaveformBundle {
  std::vector<std::string> names;
  std::vector<Waveform> waveforms;  ///< all share times()
};

/// Serializes to CSV.  All waveforms must share the time base exactly.
/// Throws std::invalid_argument on mismatch or empty input.
[[nodiscard]] std::string write_csv(const WaveformBundle& bundle);

/// Parses CSV produced by write_csv (or any conforming file).  Throws
/// std::invalid_argument with a line number on malformed input.
[[nodiscard]] WaveformBundle read_csv(std::string_view text);

/// Convenience: writes to a file; throws std::runtime_error on I/O failure.
void save_csv(const WaveformBundle& bundle, const std::string& path);

/// Convenience: reads from a file.
[[nodiscard]] WaveformBundle load_csv(const std::string& path);

}  // namespace rct::sim
