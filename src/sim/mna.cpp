#include "sim/mna.hpp"

namespace rct::sim {

Mna assemble_mna(const RCTree& tree) {
  const std::size_t n = tree.size();
  Mna m{linalg::Matrix::square(n), std::vector<double>(n), std::vector<double>(n, 0.0)};
  for (NodeId i = 0; i < n; ++i) {
    m.capacitance[i] = tree.capacitance(i);
    const double g = 1.0 / tree.resistance(i);
    m.conductance(i, i) += g;
    const NodeId p = tree.parent(i);
    if (p == kSource) {
      m.injection[i] += g;
    } else {
      m.conductance(p, p) += g;
      m.conductance(i, p) -= g;
      m.conductance(p, i) -= g;
    }
  }
  return m;
}

Mna assemble_mna(const analysis::TreeContext& context) { return assemble_mna(context.tree()); }

std::vector<std::vector<double>> mna_moments(const RCTree& tree, std::size_t order) {
  const Mna m = assemble_mna(tree);
  const linalg::LuFactor lu(m.conductance);
  std::vector<std::vector<double>> out;
  out.reserve(order + 1);
  out.push_back(lu.solve(m.injection));  // m_0 (all ones for an RC tree)
  for (std::size_t k = 1; k <= order; ++k) {
    std::vector<double> rhs(tree.size());
    for (std::size_t i = 0; i < tree.size(); ++i) rhs[i] = -m.capacitance[i] * out.back()[i];
    out.push_back(lu.solve(rhs));
  }
  return out;
}

std::vector<std::vector<double>> mna_moments(const analysis::TreeContext& context,
                                             std::size_t order) {
  return mna_moments(context.tree(), order);
}

}  // namespace rct::sim
