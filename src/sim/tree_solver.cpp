#include "sim/tree_solver.hpp"

#include <stdexcept>

namespace rct::sim {

TreeSystem::TreeSystem(const RCTree& tree, double a) {
  if (a < 0.0) throw std::invalid_argument("TreeSystem: a must be >= 0");
  const std::size_t n = tree.size();
  parent_.resize(n);
  edge_g_.resize(n);
  diag_.assign(n, 0.0);

  for (NodeId i = 0; i < n; ++i) {
    parent_[i] = tree.parent(i);
    const double g = 1.0 / tree.resistance(i);
    edge_g_[i] = g;
    diag_[i] += g + a * tree.capacitance(i);
    if (parent_[i] != kSource) diag_[parent_[i]] += g;
  }

  // Leaf-to-root elimination: children have larger indices than parents, so
  // a reverse index sweep is a valid elimination order.  Eliminating child i
  // updates its parent's diagonal by -g_i^2 / d_i (no other fill).
  for (NodeId i = n; i-- > 0;) {
    if (diag_[i] <= 0.0) throw std::runtime_error("TreeSystem: matrix not positive definite");
    if (parent_[i] != kSource) diag_[parent_[i]] -= edge_g_[i] * edge_g_[i] / diag_[i];
  }
}

void TreeSystem::solve_in_place(std::vector<double>& rhs) const {
  const std::size_t n = diag_.size();
  if (rhs.size() != n) throw std::invalid_argument("TreeSystem::solve: size mismatch");
  // Forward: fold children into parents (L^-1), leaf-to-root.
  for (NodeId i = n; i-- > 0;) {
    rhs[i] /= diag_[i];
    if (parent_[i] != kSource) rhs[parent_[i]] += edge_g_[i] * rhs[i];
  }
  // Backward: root-to-leaf (L^-T).  Note the off-diagonal is -g.
  for (NodeId i = 0; i < n; ++i) {
    if (parent_[i] != kSource) rhs[i] += edge_g_[i] / diag_[i] * rhs[parent_[i]];
  }
}

std::vector<double> TreeSystem::solve(std::vector<double> rhs) const {
  solve_in_place(rhs);
  return rhs;
}

}  // namespace rct::sim
