#pragma once
// Sampled waveform: a (t, v) series with the measurement operations the
// paper's experiments need — threshold crossings, monotonicity and
// unimodality checks, and distribution statistics (mean/median/mode/central
// moments) when the samples are interpreted as a density, as the paper does
// for impulse responses.

#include <cstddef>
#include <optional>
#include <vector>

namespace rct::sim {

/// A sampled waveform.  Time samples are strictly increasing.
class Waveform {
 public:
  Waveform() = default;

  /// Takes ownership of sample arrays.  Throws std::invalid_argument if the
  /// sizes differ, are empty, or times are not strictly increasing.
  Waveform(std::vector<double> t, std::vector<double> v);

  [[nodiscard]] std::size_t size() const { return t_.size(); }
  [[nodiscard]] const std::vector<double>& times() const { return t_; }
  [[nodiscard]] const std::vector<double>& values() const { return v_; }
  [[nodiscard]] double time(std::size_t i) const { return t_[i]; }
  [[nodiscard]] double value(std::size_t i) const { return v_[i]; }
  [[nodiscard]] double t_begin() const { return t_.front(); }
  [[nodiscard]] double t_end() const { return t_.back(); }

  /// Linear interpolation; clamps outside the sampled range.
  [[nodiscard]] double value_at(double t) const;

  /// First time the waveform crosses `level` going upward (linear
  /// interpolation between samples); nullopt if it never does.
  [[nodiscard]] std::optional<double> first_rise_crossing(double level) const;

  /// Last time the waveform crosses `level` in either direction.
  [[nodiscard]] std::optional<double> last_crossing(double level) const;

  /// 10%-90% rise time w.r.t. final value `v_final`; nullopt if either
  /// threshold is never reached.
  [[nodiscard]] std::optional<double> rise_time_10_90(double v_final) const;

  /// True if non-decreasing within absolute slack `tol`.
  [[nodiscard]] bool is_monotone_nondecreasing(double tol = 0.0) const;

  /// True if the samples rise to a single peak then fall (within slack
  /// `tol`), i.e. the sampled function is unimodal in the sense of the
  /// paper's Definition 4.
  [[nodiscard]] bool is_unimodal(double tol = 0.0) const;

  /// Index of the maximum sample.
  [[nodiscard]] std::size_t argmax() const;

  /// Trapezoidal integral over the full span.
  [[nodiscard]] double integrate() const;

  /// Running trapezoidal integral (same time base, starts at 0).
  [[nodiscard]] Waveform integral() const;

  /// Central-difference derivative (same time base).
  [[nodiscard]] Waveform derivative() const;

  // --- density-view statistics (waveform treated as unnormalized density) --

  /// n-th raw moment  ∫ t^n v(t) dt / ∫ v(t) dt  (trapezoidal).
  [[nodiscard]] double density_moment(int n) const;
  /// Mean of the density view.
  [[nodiscard]] double density_mean() const { return density_moment(1); }
  /// n-th central moment of the density view.
  [[nodiscard]] double density_central_moment(int n) const;
  /// Median of the density view (time splitting the area in half).
  [[nodiscard]] double density_median() const;
  /// Mode of the density view (time of maximum sample).
  [[nodiscard]] double density_mode() const { return t_[argmax()]; }
  /// Coefficient of skewness mu3 / mu2^{3/2} of the density view.
  [[nodiscard]] double density_skewness() const;

 private:
  std::vector<double> t_;
  std::vector<double> v_;
};

/// Uniform time grid [0, t_end] with `samples` points (samples >= 2).
[[nodiscard]] std::vector<double> uniform_grid(double t_end, std::size_t samples);

}  // namespace rct::sim
