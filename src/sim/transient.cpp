#include "sim/transient.hpp"

#include <stdexcept>

#include "sim/tree_solver.hpp"

namespace rct::sim {

TransientResult simulate(const RCTree& tree, const Source& input,
                         const std::vector<NodeId>& probes, const TransientOptions& options) {
  if (!(options.t_end > 0.0)) throw std::invalid_argument("simulate: t_end must be > 0");
  if (options.steps < 1) throw std::invalid_argument("simulate: steps must be >= 1");
  for (NodeId p : probes)
    if (p >= tree.size()) throw std::invalid_argument("simulate: probe id out of range");

  const std::size_t n = tree.size();
  const double h = options.t_end / static_cast<double>(options.steps);
  const double a = (options.method == Method::kBackwardEuler) ? 1.0 / h : 2.0 / h;
  const TreeSystem system(tree, a);

  // Per-node constants for the companion-model right-hand side.
  std::vector<double> cap(n);
  std::vector<double> b(n, 0.0);  // injection conductances toward the source
  for (NodeId i = 0; i < n; ++i) {
    cap[i] = tree.capacitance(i);
    if (tree.parent(i) == kSource) b[i] = 1.0 / tree.resistance(i);
  }
  // For trapezoidal we need G*v at the previous step; assemble it on the fly
  // from the tree (O(N)).
  auto apply_g = [&](const std::vector<double>& v, double vin, std::vector<double>& out) {
    std::fill(out.begin(), out.end(), 0.0);
    for (NodeId i = 0; i < n; ++i) {
      const double g = 1.0 / tree.resistance(i);
      const NodeId p = tree.parent(i);
      const double vp = (p == kSource) ? vin : v[p];
      const double current = g * (v[i] - vp);  // current flowing i -> parent
      out[i] += current;
      if (p != kSource) out[p] -= current;
    }
  };

  TransientResult res;
  res.time.resize(options.steps + 1);
  res.values.assign(probes.size(), std::vector<double>(options.steps + 1, 0.0));

  std::vector<double> v(n, 0.0);
  std::vector<double> rhs(n);
  std::vector<double> gv(n);
  res.time[0] = 0.0;
  // Initial condition: the circuit is relaxed (sources are 0 for t < 0), so
  // every node starts at 0 — NOT input.value(0), which is already 1 for an
  // ideal step at t = 0+.
  for (std::size_t pi = 0; pi < probes.size(); ++pi) res.values[pi][0] = 0.0;

  // For trapezoidal companions the t=0 source value is the post-transition
  // one (vin(0+)); backward Euler never reads it.
  double vin_prev = input.value(0.0);
  for (std::size_t k = 1; k <= options.steps; ++k) {
    const double t = h * static_cast<double>(k);
    const double vin = input.value(t);
    if (options.method == Method::kBackwardEuler) {
      // (G + C/h) v_new = C/h v_old + b vin
      for (NodeId i = 0; i < n; ++i) rhs[i] = cap[i] / h * v[i] + b[i] * vin;
    } else {
      // (G + 2C/h) v_new = 2C/h v_old - G v_old + b (vin + vin_prev)
      apply_g(v, vin_prev, gv);
      for (NodeId i = 0; i < n; ++i)
        rhs[i] = 2.0 * cap[i] / h * v[i] - gv[i] + b[i] * vin;
    }
    system.solve_in_place(rhs);
    v.swap(rhs);
    res.time[k] = t;
    for (std::size_t pi = 0; pi < probes.size(); ++pi) res.values[pi][k] = v[probes[pi]];
    vin_prev = vin;
  }
  return res;
}

}  // namespace rct::sim
