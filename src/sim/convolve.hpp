#pragma once
// Numeric convolution on uniform sample grids.
//
// Used by the property tests for the paper's Appendix B facts (central
// moments add under convolution of densities) and as an independent route
// to general-input responses: v_o = h * v_i.

#include "sim/sources.hpp"
#include "sim/waveform.hpp"

namespace rct::sim {

/// Convolves a sampled impulse response (uniform grid starting at 0) with a
/// source waveform: y(t_k) = int h(tau) vin(t_k - tau) dtau, trapezoidal.
/// The result shares the impulse response's time base.
[[nodiscard]] Waveform convolve_response(const Waveform& impulse, const Source& input);

/// Convolves two densities sampled on uniform grids with the same step
/// (both starting at 0).  Result length is len(f) + len(g) - 1.
[[nodiscard]] Waveform convolve_densities(const Waveform& f, const Waveform& g);

}  // namespace rct::sim
