#pragma once
// Exact analysis of a uniform distributed RC line (the URC of
// Protonotarios-Wing [20], the paper's source for the unimodality
// machinery).
//
// A line with total resistance R and capacitance C, driven through a source
// resistance R_d and open at the far end, has the far-end transfer function
//
//   H(s) = 1 / (cosh(theta) + k * theta * sinh(theta)),
//   theta = sqrt(s R C),  k = R_d / R.
//
// All poles are real and negative: s_n = -beta_n^2 / (R C) where beta_n are
// the roots of  cos(beta) = k * beta * sin(beta).  The step response is the
// classical eigenfunction series
//
//   v(t) = 1 - sum_n  a_n exp(s_n t),
//   a_n  = 2 sin(beta_n) / (beta_n + sin(beta_n) cos(beta_n) (1 + ... ))
//
// computed here from the residues of H(s)/s.  This module is the
// convergence target for rctree/transform.hpp's segmented_wire ladders and
// the ground truth for distributed-line Elmore accuracy studies.

#include <cstddef>
#include <vector>

namespace rct::sim {

/// Exact far-end response of a driven, open-ended uniform RC line.
class DistributedLine {
 public:
  /// total_res/total_cap: the line's total R (ohms) and C (farads);
  /// driver_resistance >= 0 ohms.  `modes` controls series truncation
  /// (default ample for 1e-10 accuracy at t > 1e-4 RC).
  DistributedLine(double total_res, double total_cap, double driver_resistance,
                  std::size_t modes = 64);

  /// Elmore delay of the far end (exact first moment):
  ///   T_D = R_d C + R C / 2.
  [[nodiscard]] double elmore_delay() const;

  /// Second central moment of the far-end impulse response (exact):
  /// derived from the series expansion of H(s).
  [[nodiscard]] double mu2() const;

  /// Far-end unit-step response at time t.
  [[nodiscard]] double step_response(double t) const;

  /// Far-end impulse response at time t (t > 0).
  [[nodiscard]] double impulse_response(double t) const;

  /// Exact threshold-crossing delay of the step response.
  [[nodiscard]] double step_delay(double fraction = 0.5) const;

  /// Pole magnitudes beta_n^2/(RC), ascending.
  [[nodiscard]] const std::vector<double>& poles() const { return lambda_; }

 private:
  double rc_;   // R*C
  double k_;    // Rd / R
  double rd_c_; // Rd * C
  std::vector<double> lambda_;  // pole magnitudes
  std::vector<double> coeff_;   // step-response series coefficients a_n
};

}  // namespace rct::sim
