#pragma once
// Exact (to machine precision) analysis of an RC tree by symmetric
// eigendecomposition.
//
// The MNA system C v' = -G v + b u(t) is symmetrized with the congruence
// C^{-1/2} G C^{-1/2}; its eigenvalues are the circuit pole magnitudes and
// the step response at node i takes the closed form
//
//     s_i(t) = 1 - sum_j a_ij exp(-lambda_j t),   sum_j a_ij = 1.
//
// Impulse responses, saturated-ramp responses and responses to arbitrary
// monotone sources (by quadrature against the closed-form step) all follow,
// as do exact threshold-crossing delays via bracketing root search.  This
// engine regenerates every "actual delay" number in the paper's evaluation.
//
// Nodes with zero capacitance are supported by a relative-1e-9 capacitance
// floor (documented substitution: the perturbation is far below the
// reproduction tolerances used anywhere in this repo).

#include <memory>
#include <optional>
#include <vector>

#include "rctree/rctree.hpp"
#include "sim/sources.hpp"
#include "sim/waveform.hpp"

namespace rct::sim {

/// Eigendecomposition-based exact solver for one RC tree.
class ExactAnalysis {
 public:
  /// Decomposes the tree (O(N^3); intended for N up to a few thousand).
  explicit ExactAnalysis(const RCTree& tree);

  [[nodiscard]] std::size_t size() const { return lambda_.size(); }

  /// Circuit pole magnitudes lambda_j (all positive), ascending.
  [[nodiscard]] const std::vector<double>& poles() const { return lambda_; }

  /// Step-response expansion coefficients a_ij at node i (sum to 1).
  [[nodiscard]] std::vector<double> step_coefficients(NodeId node) const;

  /// Slowest time constant 1/lambda_min.
  [[nodiscard]] double dominant_time_constant() const { return 1.0 / lambda_.front(); }

  // --- closed-form responses -------------------------------------------

  /// Unit-step response at `node`, time t.
  [[nodiscard]] double step_response(NodeId node, double t) const;

  /// Unit-impulse response h(t) at `node`.
  [[nodiscard]] double impulse_response(NodeId node, double t) const;

  /// Running integral of the step response, int_0^t s(u) du.
  [[nodiscard]] double step_response_integral(NodeId node, double t) const;

  /// Response to a saturated ramp with rise time tr (closed form).
  [[nodiscard]] double ramp_response(NodeId node, double t, double rise_time) const;

  /// Response to an arbitrary monotone source: quadrature of
  /// v'(tau) s(t - tau) over the source transition (steps and saturated
  /// ramps dispatch to their closed forms).
  [[nodiscard]] double response(NodeId node, const Source& input, double t) const;

  // --- delay / slew measurements ---------------------------------------

  /// Exact time at which the step response crosses `fraction` of its final
  /// value (fraction in (0,1)); the 50% point is the paper's "actual delay".
  [[nodiscard]] double step_delay(NodeId node, double fraction = 0.5) const;

  /// 50%-to-50% delay for an arbitrary source: output crossing minus input
  /// crossing (equals step_delay for a step input).
  [[nodiscard]] double delay_50_50(NodeId node, const Source& input) const;

  /// Threshold crossing of the response to `input` at `fraction`.
  [[nodiscard]] double response_crossing(NodeId node, const Source& input,
                                         double fraction) const;

  /// Exact 10-90% rise time of the step response.
  [[nodiscard]] double step_rise_time_10_90(NodeId node) const;

  // --- sampled waveforms -------------------------------------------------

  [[nodiscard]] Waveform step_waveform(NodeId node, const std::vector<double>& grid) const;
  [[nodiscard]] Waveform impulse_waveform(NodeId node, const std::vector<double>& grid) const;
  [[nodiscard]] Waveform response_waveform(NodeId node, const Source& input,
                                           const std::vector<double>& grid) const;

  /// A grid that comfortably covers the settling of the slowest mode plus
  /// the source transition: [0, pad * (tau_max + settle)] with `samples`
  /// points.
  [[nodiscard]] std::vector<double> suggested_grid(std::size_t samples = 2000,
                                                   double source_settle = 0.0,
                                                   double pad = 12.0) const;

  // --- moment cross-checks ----------------------------------------------

  /// q-th distribution moment  int t^q h(t) dt  in closed form:
  /// sum_j a_ij q! / lambda_j^q.  (q = 1 is the Elmore delay.)
  [[nodiscard]] double distribution_moment(NodeId node, int q) const;

 private:
  std::vector<double> lambda_;         // poles, ascending
  std::vector<double> coeff_;          // a_ij, row-major [node * n + mode]
  [[nodiscard]] const double* row(NodeId node) const { return coeff_.data() + node * size(); }
};

}  // namespace rct::sim
