#pragma once
// Frequency-domain view of an RC tree from its pole/residue decomposition:
//
//   H_i(s) = sum_j a_ij lambda_j / (s + lambda_j)
//
// Provides |H(j w)|, phase, -3 dB bandwidth, and Bode sampling.  Useful for
// validating the time-domain metrics (bandwidth correlates with 1/T_D) and
// for users who think of interconnect as a low-pass filter.

#include <complex>
#include <vector>

#include "rctree/rctree.hpp"
#include "sim/exact.hpp"

namespace rct::sim {

/// Frequency response at one or all nodes of a decomposed RC tree.
class AcAnalysis {
 public:
  /// Borrows `exact` (must outlive this object).
  explicit AcAnalysis(const ExactAnalysis& exact) : exact_(&exact) {}

  /// Complex transfer function H(j*2*pi*f) at `node`.
  [[nodiscard]] std::complex<double> transfer(NodeId node, double freq_hz) const;

  /// Magnitude |H| at `node` (1 at DC for RC trees).
  [[nodiscard]] double magnitude(NodeId node, double freq_hz) const;

  /// Phase in radians (0 at DC, negative thereafter).
  [[nodiscard]] double phase(NodeId node, double freq_hz) const;

  /// -3 dB bandwidth: the frequency where |H| = 1/sqrt(2).  RC-tree
  /// magnitude responses are monotone decreasing, so this is unique.
  [[nodiscard]] double bandwidth_3db(NodeId node) const;

  /// One Bode sample.
  struct BodePoint {
    double freq_hz;
    double magnitude_db;
    double phase_deg;
  };

  /// Log-spaced Bode sweep over [f_lo, f_hi].
  [[nodiscard]] std::vector<BodePoint> bode(NodeId node, double f_lo, double f_hi,
                                            std::size_t points) const;

 private:
  const ExactAnalysis* exact_;
};

}  // namespace rct::sim
