#include "sim/waveform.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rct::sim {

Waveform::Waveform(std::vector<double> t, std::vector<double> v)
    : t_(std::move(t)), v_(std::move(v)) {
  if (t_.size() != v_.size()) throw std::invalid_argument("Waveform: size mismatch");
  if (t_.empty()) throw std::invalid_argument("Waveform: empty");
  for (std::size_t i = 1; i < t_.size(); ++i)
    if (!(t_[i] > t_[i - 1]))
      throw std::invalid_argument("Waveform: times must be strictly increasing");
}

double Waveform::value_at(double t) const {
  if (t <= t_.front()) return v_.front();
  if (t >= t_.back()) return v_.back();
  const auto it = std::upper_bound(t_.begin(), t_.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - t_.begin());
  const std::size_t lo = hi - 1;
  const double f = (t - t_[lo]) / (t_[hi] - t_[lo]);
  return v_[lo] + f * (v_[hi] - v_[lo]);
}

std::optional<double> Waveform::first_rise_crossing(double level) const {
  for (std::size_t i = 1; i < size(); ++i) {
    if (v_[i - 1] < level && v_[i] >= level) {
      const double f = (level - v_[i - 1]) / (v_[i] - v_[i - 1]);
      return t_[i - 1] + f * (t_[i] - t_[i - 1]);
    }
  }
  if (!v_.empty() && v_.front() >= level) return t_.front();
  return std::nullopt;
}

std::optional<double> Waveform::last_crossing(double level) const {
  for (std::size_t i = size(); i-- > 1;) {
    const double a = v_[i - 1] - level;
    const double b = v_[i] - level;
    if ((a <= 0.0 && b > 0.0) || (a >= 0.0 && b < 0.0) || b == 0.0) {
      if (b == 0.0) return t_[i];
      const double f = -a / (b - a);
      return t_[i - 1] + f * (t_[i] - t_[i - 1]);
    }
  }
  return std::nullopt;
}

std::optional<double> Waveform::rise_time_10_90(double v_final) const {
  const auto t10 = first_rise_crossing(0.1 * v_final);
  const auto t90 = first_rise_crossing(0.9 * v_final);
  if (!t10 || !t90) return std::nullopt;
  return *t90 - *t10;
}

bool Waveform::is_monotone_nondecreasing(double tol) const {
  for (std::size_t i = 1; i < size(); ++i)
    if (v_[i] < v_[i - 1] - tol) return false;
  return true;
}

bool Waveform::is_unimodal(double tol) const {
  // Rising phase up to the global max, falling after.
  const std::size_t peak = argmax();
  for (std::size_t i = 1; i <= peak; ++i)
    if (v_[i] < v_[i - 1] - tol) return false;
  for (std::size_t i = peak + 1; i < size(); ++i)
    if (v_[i] > v_[i - 1] + tol) return false;
  return true;
}

std::size_t Waveform::argmax() const {
  return static_cast<std::size_t>(std::max_element(v_.begin(), v_.end()) - v_.begin());
}

double Waveform::integrate() const {
  double acc = 0.0;
  for (std::size_t i = 1; i < size(); ++i)
    acc += 0.5 * (v_[i] + v_[i - 1]) * (t_[i] - t_[i - 1]);
  return acc;
}

Waveform Waveform::integral() const {
  std::vector<double> out(size(), 0.0);
  for (std::size_t i = 1; i < size(); ++i)
    out[i] = out[i - 1] + 0.5 * (v_[i] + v_[i - 1]) * (t_[i] - t_[i - 1]);
  return {t_, std::move(out)};
}

Waveform Waveform::derivative() const {
  const std::size_t n = size();
  std::vector<double> d(n, 0.0);
  if (n == 1) return {t_, std::move(d)};
  d[0] = (v_[1] - v_[0]) / (t_[1] - t_[0]);
  d[n - 1] = (v_[n - 1] - v_[n - 2]) / (t_[n - 1] - t_[n - 2]);
  for (std::size_t i = 1; i + 1 < n; ++i) d[i] = (v_[i + 1] - v_[i - 1]) / (t_[i + 1] - t_[i - 1]);
  return {t_, std::move(d)};
}

double Waveform::density_moment(int n) const {
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 1; i < size(); ++i) {
    const double dt = t_[i] - t_[i - 1];
    num += 0.5 * (std::pow(t_[i], n) * v_[i] + std::pow(t_[i - 1], n) * v_[i - 1]) * dt;
    den += 0.5 * (v_[i] + v_[i - 1]) * dt;
  }
  if (den == 0.0) throw std::runtime_error("Waveform::density_moment: zero total area");
  return num / den;
}

double Waveform::density_central_moment(int n) const {
  const double mu = density_mean();
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 1; i < size(); ++i) {
    const double dt = t_[i] - t_[i - 1];
    num += 0.5 *
           (std::pow(t_[i] - mu, n) * v_[i] + std::pow(t_[i - 1] - mu, n) * v_[i - 1]) * dt;
    den += 0.5 * (v_[i] + v_[i - 1]) * dt;
  }
  return num / den;
}

double Waveform::density_median() const {
  const double total = integrate();
  if (total <= 0.0) throw std::runtime_error("Waveform::density_median: nonpositive area");
  double acc = 0.0;
  for (std::size_t i = 1; i < size(); ++i) {
    const double seg = 0.5 * (v_[i] + v_[i - 1]) * (t_[i] - t_[i - 1]);
    if (acc + seg >= 0.5 * total) {
      // Fill within this segment assuming constant average height —
      // ample at experiment sample densities.
      const double need = 0.5 * total - acc;
      const double frac = (seg > 0.0) ? need / seg : 0.5;
      return t_[i - 1] + frac * (t_[i] - t_[i - 1]);
    }
    acc += seg;
  }
  return t_.back();
}

double Waveform::density_skewness() const {
  const double mu2 = density_central_moment(2);
  const double mu3 = density_central_moment(3);
  if (mu2 <= 0.0) return 0.0;
  return mu3 / std::pow(mu2, 1.5);
}

std::vector<double> uniform_grid(double t_end, std::size_t samples) {
  if (samples < 2) throw std::invalid_argument("uniform_grid: need >= 2 samples");
  if (!(t_end > 0.0)) throw std::invalid_argument("uniform_grid: t_end must be positive");
  std::vector<double> t(samples);
  for (std::size_t i = 0; i < samples; ++i)
    t[i] = t_end * static_cast<double>(i) / static_cast<double>(samples - 1);
  return t;
}

}  // namespace rct::sim
