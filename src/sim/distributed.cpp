#include "sim/distributed.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/root_find.hpp"

namespace rct::sim {

DistributedLine::DistributedLine(double total_res, double total_cap, double driver_resistance,
                                 std::size_t modes) {
  if (!(total_res > 0.0) || !(total_cap > 0.0) || driver_resistance < 0.0 || modes < 1)
    throw std::invalid_argument("DistributedLine: bad parameters");
  rc_ = total_res * total_cap;
  k_ = driver_resistance / total_res;
  rd_c_ = driver_resistance * total_cap;

  lambda_.reserve(modes);
  coeff_.reserve(modes);
  for (std::size_t n = 1; n <= modes; ++n) {
    double beta;
    if (k_ == 0.0) {
      // cos(beta) = 0.
      beta = (2.0 * static_cast<double>(n) - 1.0) * M_PI / 2.0;
    } else {
      // Root of cos(beta) = k beta sin(beta) in ((n-1)pi, (n-1)pi + pi/2).
      const double lo = (static_cast<double>(n) - 1.0) * M_PI + 1e-12;
      const double hi = (static_cast<double>(n) - 1.0) * M_PI + M_PI / 2.0 - 1e-12;
      auto g = [&](double b) { return std::cos(b) - k_ * b * std::sin(b); };
      linalg::RootOptions opt;
      opt.x_tol = 1e-14;
      const auto root = linalg::brent_root(g, lo, hi, opt);
      if (!root) throw std::runtime_error("DistributedLine: eigenvalue bracketing failed");
      beta = *root;
    }
    lambda_.push_back(beta * beta / rc_);
    // Step-series coefficient (residue of H(s)/s at the pole):
    //   a_n = 2 / (beta [(1+k) sin(beta) + k beta cos(beta)]).
    const double denom =
        beta * ((1.0 + k_) * std::sin(beta) + k_ * beta * std::cos(beta));
    coeff_.push_back(2.0 / denom);
  }
}

double DistributedLine::elmore_delay() const { return rd_c_ + 0.5 * rc_; }

double DistributedLine::mu2() const {
  // mu2 = R^2 C^2 (1/6 + 2k/3 + k^2), from the series expansion of H.
  return rc_ * rc_ * (1.0 / 6.0 + 2.0 / 3.0 * k_ + k_ * k_);
}

double DistributedLine::step_response(double t) const {
  if (t <= 0.0) return 0.0;
  double acc = 1.0;
  for (std::size_t n = 0; n < lambda_.size(); ++n)
    acc -= coeff_[n] * std::exp(-lambda_[n] * t);
  return acc;
}

double DistributedLine::impulse_response(double t) const {
  if (t <= 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t n = 0; n < lambda_.size(); ++n)
    acc += coeff_[n] * lambda_[n] * std::exp(-lambda_[n] * t);
  return acc;
}

double DistributedLine::step_delay(double fraction) const {
  if (!(fraction > 0.0 && fraction < 1.0))
    throw std::invalid_argument("DistributedLine: fraction must be in (0,1)");
  const double tau = 1.0 / lambda_.front();
  auto f = [&](double t) { return step_response(t) - fraction; };
  linalg::RootOptions opt;
  opt.x_tol = 1e-12 * tau;
  const auto root = linalg::bracket_and_solve(f, tau, 1e6 * tau, opt);
  if (!root) throw std::runtime_error("DistributedLine: crossing not found");
  return *root;
}

}  // namespace rct::sim
