#pragma once
// O(N) direct solver for "tree + diagonal" SPD systems.
//
// Every transient time step solves (G + a C) x = rhs where G is the RC
// tree's conductance matrix.  Because the sparsity graph is the tree itself,
// Cholesky elimination in reverse topological (leaf-to-root) order produces
// zero fill-in, so factorization and each solve are exactly O(N).

#include <vector>

#include "rctree/rctree.hpp"

namespace rct::sim {

/// Factored SPD system (G + a*C) over an RC tree's node set.
class TreeSystem {
 public:
  /// Builds and factors (G + a*C) for the tree.  `a` >= 0 (a = 0 factors G
  /// itself, which is SPD thanks to the source connection).
  TreeSystem(const RCTree& tree, double a);

  /// Solves (G + a C) x = rhs in place.  rhs.size() == tree size.
  void solve_in_place(std::vector<double>& rhs) const;

  /// Convenience: returns the solution.
  [[nodiscard]] std::vector<double> solve(std::vector<double> rhs) const;

  [[nodiscard]] std::size_t size() const { return diag_.size(); }

 private:
  // Tree structure (parents precede children by RCTree invariant).
  std::vector<NodeId> parent_;
  std::vector<double> edge_g_;  ///< conductance of edge to parent (off-diagonal -g)
  std::vector<double> diag_;    ///< eliminated diagonal D of the LDL^T factor
};

}  // namespace rct::sim
